package clustereval_test

// Ablation benchmarks: each one toggles a single modelled mechanism and
// reports the quantity it moves, quantifying how much of the paper's story
// each design choice carries. Run with:
//
//	go test -bench=Ablation -benchtime=1x

import (
	"testing"

	"clustereval/internal/apps/nemo"
	"clustereval/internal/apps/wrf"
	"clustereval/internal/bench/osu"
	"clustereval/internal/bench/stream"
	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/perfmodel"
	"clustereval/internal/sched"
	"clustereval/internal/toolchain"
	"clustereval/internal/topology"
	"clustereval/internal/units"
)

// BenchmarkAblation_SchedulerPolicy compares the mean communication latency
// of a 48-node job under topology-aware vs random placement — what the
// paper's topology-aware batch scheduler buys.
func BenchmarkAblation_SchedulerPolicy(b *testing.B) {
	arm := machine.CTEArm()
	fab, err := interconnect.NewTofuD(arm, arm.Nodes)
	if err != nil {
		b.Fatal(err)
	}
	topo, err := topology.NewTofuD(arm.Nodes)
	if err != nil {
		b.Fatal(err)
	}
	var alphaTA, alphaRnd units.Seconds
	for i := 0; i < b.N; i++ {
		allocTA, err := sched.New(topo, sched.TopologyAware, 1).Allocate(48)
		if err != nil {
			b.Fatal(err)
		}
		allocRnd, err := sched.New(topo, sched.Random, 1).Allocate(48)
		if err != nil {
			b.Fatal(err)
		}
		alphaTA = perfmodel.NewCommCost(fab, allocTA).Alpha
		alphaRnd = perfmodel.NewCommCost(fab, allocRnd).Alpha
	}
	b.ReportMetric(alphaTA.Micro(), "topo-alpha-us")
	b.ReportMetric(alphaRnd.Micro(), "rand-alpha-us")
	b.ReportMetric(float64(alphaRnd)/float64(alphaTA), "penalty")
}

// BenchmarkAblation_OoOFactor sweeps the A64FX scalar out-of-order factor —
// the single constant behind the application slowdowns — and reports the
// WRF one-node gap at each setting.
func BenchmarkAblation_OoOFactor(b *testing.B) {
	mn4 := machine.MareNostrum4()
	wm, err := wrf.NewModel(mn4, wrf.Iberia4km())
	if err != nil {
		b.Fatal(err)
	}
	tm, err := wm.ElapsedTime(1, true)
	if err != nil {
		b.Fatal(err)
	}
	factors := []float64{0.30, 0.50, 1.00}
	gaps := make([]float64, len(factors))
	for i := 0; i < b.N; i++ {
		for fi, f := range factors {
			arm := machine.CTEArm()
			arm.Node.Core.OoOFactor = f
			wa, err := wrf.NewModel(arm, wrf.Iberia4km())
			if err != nil {
				b.Fatal(err)
			}
			ta, err := wa.ElapsedTime(1, true)
			if err != nil {
				b.Fatal(err)
			}
			gaps[fi] = float64(ta) / float64(tm)
		}
	}
	b.ReportMetric(gaps[0], "gap@OoO=0.30") // the paper's machine: ~2.16
	b.ReportMetric(gaps[1], "gap@OoO=0.50")
	b.ReportMetric(gaps[2], "gap@OoO=1.00") // Skylake-class scalar core
}

// BenchmarkAblation_SVECompiler contrasts the GNU scalar fallback against a
// compiler that emits SVE for application loops (what the Fujitsu compiler
// would deliver if it built the applications).
func BenchmarkAblation_SVECompiler(b *testing.B) {
	arm := machine.CTEArm()
	var gnuRate, fjRate float64
	for i := 0; i < b.N; i++ {
		gnu, err := perfmodel.NewExec(arm, toolchain.GNUArmSVE(), "WRF")
		if err != nil {
			b.Fatal(err)
		}
		fj, err := perfmodel.NewExec(arm, toolchain.FujitsuArm("1.2.26b"), "WRF")
		if err != nil {
			b.Fatal(err)
		}
		gnuRate = float64(gnu.CoreFlops(toolchain.AppLoop)) / 1e9
		fjRate = float64(fj.CoreFlops(toolchain.AppLoop)) / 1e9
	}
	b.ReportMetric(gnuRate, "GNU-GF/core")
	b.ReportMetric(fjRate, "SVE-GF/core")
	b.ReportMetric(fjRate/gnuRate, "speedup")
}

// BenchmarkAblation_FirstTouch gives the A64FX working first-touch NUMA
// placement and remeasures the OpenMP-only STREAM: the whole Fig. 2 story
// hinges on this one OS property.
func BenchmarkAblation_FirstTouch(b *testing.B) {
	var broken, fixed units.BytesPerSecond
	for i := 0; i < b.N; i++ {
		arm := machine.CTEArm()
		s, err := stream.Figure2(arm, toolchain.StreamOpenMPArm(), toolchain.C, 610e6)
		if err != nil {
			b.Fatal(err)
		}
		broken = s.Best.Bandwidth

		armFixed := machine.CTEArm()
		armFixed.Node.FirstTouchNUMA = true
		sF, err := stream.Figure2(armFixed, toolchain.StreamOpenMPArm(), toolchain.C, 610e6)
		if err != nil {
			b.Fatal(err)
		}
		fixed = sF.Best.Bandwidth
	}
	b.ReportMetric(broken.GB(), "default-GB/s")   // ~292 (paper)
	b.ReportMetric(fixed.GB(), "firsttouch-GB/s") // ~860: the lost 3x
	b.ReportMetric(float64(fixed)/float64(broken), "recovered")
}

// BenchmarkAblation_DegradedNode removes the arms0b1-11c fault and verifies
// the detector goes quiet — the heatmap anomaly is entirely the injected
// fault, not an artefact of the torus model.
func BenchmarkAblation_DegradedNode(b *testing.B) {
	arm := machine.CTEArm()
	var withFault, withoutFault int
	for i := 0; i < b.N; i++ {
		fab, err := interconnect.NewTofuD(arm, arm.Nodes)
		if err != nil {
			b.Fatal(err)
		}
		h, err := osu.Figure4(fab, units.Bytes(1<<20), 4)
		if err != nil {
			b.Fatal(err)
		}
		withFault = len(h.DegradedReceivers(0.5))

		fab2, err := interconnect.NewTofuD(arm, arm.Nodes)
		if err != nil {
			b.Fatal(err)
		}
		fab2.DegradedRecv = map[int]float64{}
		h2, err := osu.Figure4(fab2, units.Bytes(1<<20), 4)
		if err != nil {
			b.Fatal(err)
		}
		withoutFault = len(h2.DegradedReceivers(0.5))
	}
	b.ReportMetric(float64(withFault), "with-fault")
	b.ReportMetric(float64(withoutFault), "without-fault")
}

// BenchmarkAblation_MPIBuffers removes the Fujitsu MPI's per-rank memory
// overhead and reports NEMO's memory floor — the mechanism behind the
// paper's "NP" entries.
func BenchmarkAblation_MPIBuffers(b *testing.B) {
	var floorDefault, floorLean int
	for i := 0; i < b.N; i++ {
		arm := machine.CTEArm()
		m, err := nemo.NewModel(arm, nemo.BenchORCA1())
		if err != nil {
			b.Fatal(err)
		}
		floorDefault = m.MinNodes()

		lean := machine.CTEArm()
		lean.MPIBufferPerRank = 0
		m2, err := nemo.NewModel(lean, nemo.BenchORCA1())
		if err != nil {
			b.Fatal(err)
		}
		floorLean = m2.MinNodes()
	}
	b.ReportMetric(float64(floorDefault), "floor-nodes") // paper: 8
	b.ReportMetric(float64(floorLean), "lean-floor-nodes")
}
