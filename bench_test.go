package clustereval_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper. Each benchmark regenerates the artefact's data and reports the
// headline quantity the paper quotes as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation and prints the numbers to compare with
// EXPERIMENTS.md.

import (
	"testing"

	"clustereval/internal/apps/alya"
	"clustereval/internal/apps/gromacs"
	"clustereval/internal/apps/nemo"
	"clustereval/internal/apps/openifs"
	"clustereval/internal/apps/scaling"
	"clustereval/internal/apps/wrf"
	"clustereval/internal/bench/fpu"
	"clustereval/internal/bench/osu"
	"clustereval/internal/bench/stream"
	"clustereval/internal/core"
	"clustereval/internal/des"
	"clustereval/internal/hpcg"
	"clustereval/internal/hpl"
	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/mpisim"
	"clustereval/internal/toolchain"
	"clustereval/internal/units"
)

func pairMachines() (machine.Machine, machine.Machine) {
	return machine.CTEArm(), machine.MareNostrum4()
}

// BenchmarkTable1_HardwareModel validates and re-derives the Table I
// hardware quantities.
func BenchmarkTable1_HardwareModel(b *testing.B) {
	arm, mn4 := pairMachines()
	for i := 0; i < b.N; i++ {
		for _, m := range []machine.Machine{arm, mn4} {
			if err := m.Validate(); err != nil {
				b.Fatal(err)
			}
			_ = m.Node.DoublePeak()
			_ = m.Node.MemoryPeak()
		}
	}
	b.ReportMetric(arm.Node.DoublePeak().Giga(), "CTE-GF/node")
	b.ReportMetric(mn4.Node.DoublePeak().Giga(), "MN4-GF/node")
}

// BenchmarkFig1_FPUKernel runs the six µKernel variants on both machines
// (real lane arithmetic + throughput model).
func BenchmarkFig1_FPUKernel(b *testing.B) {
	arm, mn4 := pairMachines()
	var bars []fpu.Bar
	for i := 0; i < b.N; i++ {
		var err error
		bars, err = fpu.Figure1([]machine.Machine{arm, mn4}, 2000)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, bar := range bars {
		if bar.Supported && bar.Variant.Name() == "vector-double" {
			name := "CTE-GF"
			if bar.Machine != "CTE-Arm" {
				name = "MN4-GF"
			}
			b.ReportMetric(bar.Sustained.Giga(), name)
		}
	}
}

// BenchmarkTable2_StreamBuilds compiles the four STREAM build
// configurations through the toolchain model.
func BenchmarkTable2_StreamBuilds(b *testing.B) {
	arm, mn4 := pairMachines()
	for i := 0; i < b.N; i++ {
		for _, c := range []struct {
			comp toolchain.Compiler
			m    machine.Machine
		}{
			{toolchain.StreamOpenMPArm(), arm},
			{toolchain.StreamHybridArm(), arm},
			{toolchain.StreamMN4(), mn4},
		} {
			if _, err := toolchain.Compile(c.comp, c.m, "STREAM"); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig2_StreamOMP sweeps the OpenMP STREAM curve on both machines.
func BenchmarkFig2_StreamOMP(b *testing.B) {
	arm, mn4 := pairMachines()
	var sArm, sMN4 stream.Series
	for i := 0; i < b.N; i++ {
		var err error
		sArm, err = stream.Figure2(arm, toolchain.StreamOpenMPArm(), toolchain.C, 610e6)
		if err != nil {
			b.Fatal(err)
		}
		sMN4, err = stream.Figure2(mn4, toolchain.StreamMN4(), toolchain.C, 400e6)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sArm.Best.Bandwidth.GB(), "CTE-GB/s")   // paper: 292.0
	b.ReportMetric(sMN4.Best.Bandwidth.GB(), "MN4-GB/s")   // paper: 201.2
	b.ReportMetric(float64(sArm.Best.Threads), "CTE-best") // paper: 24
}

// BenchmarkFig3_StreamHybrid runs the hybrid MPI+OpenMP Triad.
func BenchmarkFig3_StreamHybrid(b *testing.B) {
	arm, _ := pairMachines()
	var f, c stream.HybridSeries
	for i := 0; i < b.N; i++ {
		var err error
		f, err = stream.Figure3(arm, toolchain.StreamHybridArm(), toolchain.Fortran)
		if err != nil {
			b.Fatal(err)
		}
		c, err = stream.Figure3(arm, toolchain.StreamHybridArm(), toolchain.C)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f.Best.Bandwidth.GB(), "Fortran-GB/s") // paper: 862.6
	b.ReportMetric(c.Best.Bandwidth.GB(), "C-GB/s")       // paper: 421.1
}

// BenchmarkFig4_PairBandwidth sweeps all 192x191 ordered node pairs at
// 256 B and locates the degraded receiver.
func BenchmarkFig4_PairBandwidth(b *testing.B) {
	arm, _ := pairMachines()
	fab, err := interconnect.NewTofuD(arm, arm.Nodes)
	if err != nil {
		b.Fatal(err)
	}
	var h *osu.Heatmap
	for i := 0; i < b.N; i++ {
		h, err = osu.Figure4(fab, 256, osu.DefaultIterations)
		if err != nil {
			b.Fatal(err)
		}
	}
	degraded := h.DegradedReceivers(0.5)
	b.ReportMetric(float64(len(degraded)), "degraded-nodes") // paper: 1 (arms0b1-11c)
}

// BenchmarkFig5_BandwidthDistribution bins the bandwidth of all pairs over
// message sizes 2^0..2^24.
func BenchmarkFig5_BandwidthDistribution(b *testing.B) {
	arm, _ := pairMachines()
	fab, err := interconnect.NewTofuD(arm, arm.Nodes)
	if err != nil {
		b.Fatal(err)
	}
	var d *osu.Distribution
	for i := 0; i < b.N; i++ {
		d, err = osu.Figure5(fab, 0, 24, 90, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(d.BimodalSizes(0.12))), "bimodal-sizes")
}

// BenchmarkFig6_Linpack runs the HPL scalability sweep on both machines.
func BenchmarkFig6_Linpack(b *testing.B) {
	arm, mn4 := pairMachines()
	var rArm, rMN4 hpl.Run
	for i := 0; i < b.N; i++ {
		runsA, err := hpl.Figure6(arm, 192)
		if err != nil {
			b.Fatal(err)
		}
		runsM, err := hpl.Figure6(mn4, 192)
		if err != nil {
			b.Fatal(err)
		}
		rArm, rMN4 = runsA[len(runsA)-1], runsM[len(runsM)-1]
	}
	b.ReportMetric(rArm.PercentOfPeak, "CTE-%peak") // paper: 85
	b.ReportMetric(rMN4.PercentOfPeak, "MN4-%peak") // paper: 63
}

// BenchmarkFig6_RealLU factorizes a real matrix per iteration with the HPL
// residual check — the correctness backbone behind Fig. 6.
func BenchmarkFig6_RealLU(b *testing.B) {
	a := hpl.RandomSPDish(192, 7)
	ones := make([]float64, 192)
	for i := range ones {
		ones[i] = 1
	}
	rhs := a.MatVec(ones)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lu, err := hpl.Factorize(a, 48, nil)
		if err != nil {
			b.Fatal(err)
		}
		x, err := lu.Solve(rhs)
		if err != nil {
			b.Fatal(err)
		}
		if r := hpl.Residual(a, x, rhs); r > 16 {
			b.Fatalf("residual %v", r)
		}
	}
	b.ReportMetric(hpl.FlopCount(192)*float64(b.N)/b.Elapsed().Seconds()/1e9, "host-GFlop/s")
}

// BenchmarkFig6_DistributedLU runs the block-column-cyclic LU over the
// simulated MPI runtime (panel broadcasts, distributed swaps and updates)
// and verifies the factors against the HPL residual criterion.
func BenchmarkFig6_DistributedLU(b *testing.B) {
	arm, _ := pairMachines()
	fab, err := interconnect.NewTofuD(arm, 12)
	if err != nil {
		b.Fatal(err)
	}
	a := hpl.RandomSPDish(32, 3)
	ones := make([]float64, 32)
	for i := range ones {
		ones[i] = 1
	}
	rhs := a.MatVec(ones)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := mpisim.NewWorld(fab, 4, 4)
		if err != nil {
			b.Fatal(err)
		}
		lu, _, err := hpl.DistFactorize(w, a, 8)
		if err != nil {
			b.Fatal(err)
		}
		x, err := lu.Solve(rhs)
		if err != nil {
			b.Fatal(err)
		}
		if r := hpl.Residual(a, x, rhs); r > 16 {
			b.Fatalf("residual %v", r)
		}
	}
}

// BenchmarkFig7_HPCG produces the eight bars of Fig. 7.
func BenchmarkFig7_HPCG(b *testing.B) {
	arm, mn4 := pairMachines()
	var runs []hpcg.Run
	for i := 0; i < b.N; i++ {
		var err error
		runs, err = hpcg.Figure7(arm, mn4)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range runs {
		if r.Version == hpcg.Optimized && r.Machine == "CTE-Arm" && r.Nodes == 1 {
			b.ReportMetric(r.PercentOfPeak, "CTE-%peak") // paper: 2.91
		}
	}
}

// BenchmarkFig7_RealCG solves the real 27-point system with the MG
// preconditioner per iteration.
func BenchmarkFig7_RealCG(b *testing.B) {
	prob, err := hpcg.NewProblem(16, 16, 16)
	if err != nil {
		b.Fatal(err)
	}
	mg, err := hpcg.NewMG(prob, 3)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, prob.NRows)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	var iters int
	for i := 0; i < b.N; i++ {
		_, res, err := hpcg.CG(prob, mg, nil, rhs, 50, 1e-9)
		if err != nil || !res.Converged {
			b.Fatalf("cg: %v converged=%v", err, res.Converged)
		}
		iters = res.Iterations
	}
	b.ReportMetric(float64(iters), "cg-iters")
}

// BenchmarkFig7_DistributedCG runs the MPI-decomposed CG (1-D slabs, halo
// exchanges, global reductions) through the simulated runtime — the
// communication structure of the paper's MPI-only HPCG runs.
func BenchmarkFig7_DistributedCG(b *testing.B) {
	arm, _ := pairMachines()
	fab, err := interconnect.NewTofuD(arm, 12)
	if err != nil {
		b.Fatal(err)
	}
	const nx, ny, nz = 4, 4, 8
	rhs := make([]float64, nx*ny*nz)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	var iters int
	for i := 0; i < b.N; i++ {
		w, err := mpisim.NewWorld(fab, 4, 4)
		if err != nil {
			b.Fatal(err)
		}
		_, res, err := hpcg.DistCG(w, nx, ny, nz, rhs, 200, 1e-8)
		if err != nil || !res.Converged {
			b.Fatalf("err=%v converged=%v", err, res.Converged)
		}
		iters = res.Iterations
	}
	b.ReportMetric(float64(iters), "cg-iters")
}

// BenchmarkTable3_AppBuilds compiles every Table III build through the
// toolchain model, including the documented Fujitsu failures.
func BenchmarkTable3_AppBuilds(b *testing.B) {
	arm, _ := pairMachines()
	for i := 0; i < b.N; i++ {
		for _, bc := range toolchain.AppBuilds() {
			m := machine.CTEArm()
			if bc.Machine != m.Name {
				m = machine.MareNostrum4()
			}
			if _, err := toolchain.Compile(bc.Compiler, m, bc.App); err != nil {
				b.Fatal(err)
			}
		}
		// The Fujitsu failures are part of the table's story.
		if _, err := toolchain.Compile(toolchain.FujitsuArm("1.2.26b"), arm, "Alya"); err == nil {
			b.Fatal("Fujitsu Alya build should fail")
		}
	}
}

// BenchmarkFig8_Alya regenerates the Alya time-step scalability and
// reports the 12-16 node slowdown (paper: 3.4x).
func BenchmarkFig8_Alya(b *testing.B) {
	arm, mn4 := pairMachines()
	var slowdown float64
	for i := 0; i < b.N; i++ {
		cte, ref, err := alya.Figure8(arm, mn4)
		if err != nil {
			b.Fatal(err)
		}
		slowdown, err = scaling.Slowdown(cte, ref, 12)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(slowdown, "slowdown@12") // paper: 3.4
}

// BenchmarkFig9_AlyaAssembly reports the Assembly-phase gap (paper: 4.96x).
func BenchmarkFig9_AlyaAssembly(b *testing.B) {
	arm, mn4 := pairMachines()
	var slowdown float64
	var crossover int
	for i := 0; i < b.N; i++ {
		cte, ref, err := alya.Figure9(arm, mn4)
		if err != nil {
			b.Fatal(err)
		}
		slowdown, err = scaling.Slowdown(cte, ref, 12)
		if err != nil {
			b.Fatal(err)
		}
		target, _ := ref.TimeAt(12)
		crossover = scaling.MatchingNodes(cte, target)
	}
	b.ReportMetric(slowdown, "slowdown@12")      // paper: 4.96
	b.ReportMetric(float64(crossover), "xnodes") // paper: 62
}

// BenchmarkFig10_AlyaSolver reports the Solver-phase gap (paper: 1.79x).
func BenchmarkFig10_AlyaSolver(b *testing.B) {
	arm, mn4 := pairMachines()
	var slowdown float64
	var crossover int
	for i := 0; i < b.N; i++ {
		cte, ref, err := alya.Figure10(arm, mn4)
		if err != nil {
			b.Fatal(err)
		}
		slowdown, err = scaling.Slowdown(cte, ref, 12)
		if err != nil {
			b.Fatal(err)
		}
		target, _ := ref.TimeAt(12)
		crossover = scaling.MatchingNodes(cte, target)
	}
	b.ReportMetric(slowdown, "slowdown@12")      // paper: 1.79
	b.ReportMetric(float64(crossover), "xnodes") // paper: 22
}

// BenchmarkFig11_NEMO regenerates the NEMO scalability (paper: MN4
// 1.70-1.79x faster; flattens around 128 CTE nodes).
func BenchmarkFig11_NEMO(b *testing.B) {
	arm, mn4 := pairMachines()
	var slowdown float64
	for i := 0; i < b.N; i++ {
		cte, ref, err := nemo.Figure11(arm, mn4)
		if err != nil {
			b.Fatal(err)
		}
		slowdown, err = scaling.Slowdown(cte, ref, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(slowdown, "slowdown@16") // paper: ~1.79
}

// BenchmarkFig11_RealOcean steps the real distributed ocean proxy through
// the simulated MPI runtime per iteration.
func BenchmarkFig11_RealOcean(b *testing.B) {
	arm, _ := pairMachines()
	fab, err := interconnect.NewTofuD(arm, 12)
	if err != nil {
		b.Fatal(err)
	}
	f, err := nemo.NewField(48, 32)
	if err != nil {
		b.Fatal(err)
	}
	f.Set(24, 16, 1)
	p := nemo.Params{U: 0.5, V: 0.25, Kappa: 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := mpisim.NewWorld(fab, 6, 4)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := nemo.RunDistributed(w, f, p, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12_GromacsNode regenerates the single-node Gromacs study
// (paper: 3.48x at 6 cores, 3.10x full node).
func BenchmarkFig12_GromacsNode(b *testing.B) {
	arm, mn4 := pairMachines()
	ma, err := gromacs.NewModel(arm, gromacs.LignocelluloseRF())
	if err != nil {
		b.Fatal(err)
	}
	mm, err := gromacs.NewModel(mn4, gromacs.LignocelluloseRF())
	if err != nil {
		b.Fatal(err)
	}
	var r6, r48 float64
	for i := 0; i < b.N; i++ {
		l6 := gromacs.Layout{Nodes: 1, Ranks: 1, ThreadsPerRank: 6}
		l48 := gromacs.Layout{Nodes: 1, Ranks: 8, ThreadsPerRank: 6}
		ta6, err := ma.StepTime(l6)
		if err != nil {
			b.Fatal(err)
		}
		tm6, _ := mm.StepTime(l6)
		ta48, _ := ma.StepTime(l48)
		tm48, _ := mm.StepTime(l48)
		r6 = float64(ta6) / float64(tm6)
		r48 = float64(ta48) / float64(tm48)
	}
	b.ReportMetric(r6, "slowdown@6c")   // paper: 3.48
	b.ReportMetric(r48, "slowdown@48c") // paper: 3.10
}

// BenchmarkFig13_GromacsScale regenerates the multi-node study including
// the 16-rank anomaly.
func BenchmarkFig13_GromacsScale(b *testing.B) {
	arm, mn4 := pairMachines()
	var anomaly float64
	for i := 0; i < b.N; i++ {
		cte, _, err := gromacs.Figure13(arm, mn4)
		if err != nil {
			b.Fatal(err)
		}
		t2, _ := cte.TimeAt(2)
		t4, _ := cte.TimeAt(4)
		anomaly = float64(t2) / (2 * float64(t4)) // >1 marks the anomaly
	}
	b.ReportMetric(anomaly, "anomaly-ratio")
}

// BenchmarkFig12_RealMD steps the real Lennard-Jones engine per iteration.
func BenchmarkFig12_RealMD(b *testing.B) {
	s, err := gromacs.NewSystem(256, 0.5, 2.5, 42)
	if err != nil {
		b.Fatal(err)
	}
	s.ComputeForces()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(0.004)
	}
	b.ReportMetric(float64(s.N), "atoms")
}

// BenchmarkFig14_OpenIFSNode regenerates the single-node OpenIFS study
// (paper: 3.72x at 8 ranks, 3.28x full node).
func BenchmarkFig14_OpenIFSNode(b *testing.B) {
	arm, mn4 := pairMachines()
	ma, err := openifs.NewModel(arm, openifs.TL255L91())
	if err != nil {
		b.Fatal(err)
	}
	mm, err := openifs.NewModel(mn4, openifs.TL255L91())
	if err != nil {
		b.Fatal(err)
	}
	var r8, r48 float64
	for i := 0; i < b.N; i++ {
		ta8, err := ma.DayTime(1, 8)
		if err != nil {
			b.Fatal(err)
		}
		tm8, _ := mm.DayTime(1, 8)
		ta48, _ := ma.DayTime(1, 48)
		tm48, _ := mm.DayTime(1, 48)
		r8 = float64(ta8) / float64(tm8)
		r48 = float64(ta48) / float64(tm48)
	}
	b.ReportMetric(r8, "slowdown@8r")   // paper: 3.72
	b.ReportMetric(r48, "slowdown@48r") // paper: 3.28
}

// BenchmarkFig15_OpenIFSScale regenerates the multi-node OpenIFS study
// (paper: 3.55x at 32 nodes, 2.56x at 128).
func BenchmarkFig15_OpenIFSScale(b *testing.B) {
	arm, mn4 := pairMachines()
	var s32, s128 float64
	for i := 0; i < b.N; i++ {
		cte, ref, err := openifs.Figure15(arm, mn4)
		if err != nil {
			b.Fatal(err)
		}
		s32, err = scaling.Slowdown(cte, ref, 32)
		if err != nil {
			b.Fatal(err)
		}
		s128, err = scaling.Slowdown(cte, ref, 128)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s32, "slowdown@32")   // paper: 3.55
	b.ReportMetric(s128, "slowdown@128") // paper: 2.56
}

// BenchmarkFig14_RealFFT runs the real spectral transform per iteration.
func BenchmarkFig14_RealFFT(b *testing.B) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(float64(i%17), float64(i%5))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := openifs.FFT(x); err != nil {
			b.Fatal(err)
		}
		if err := openifs.IFFT(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig16_WRF regenerates the WRF study (paper: 2.16x at 1 node,
// 2.23x at 64; IO on/off nearly identical).
func BenchmarkFig16_WRF(b *testing.B) {
	arm, mn4 := pairMachines()
	ma, err := wrf.NewModel(arm, wrf.Iberia4km())
	if err != nil {
		b.Fatal(err)
	}
	mm, err := wrf.NewModel(mn4, wrf.Iberia4km())
	if err != nil {
		b.Fatal(err)
	}
	var r1, r64, ioDelta float64
	for i := 0; i < b.N; i++ {
		ta1, err := ma.ElapsedTime(1, true)
		if err != nil {
			b.Fatal(err)
		}
		tm1, _ := mm.ElapsedTime(1, true)
		ta64, _ := ma.ElapsedTime(64, true)
		tm64, _ := mm.ElapsedTime(64, true)
		off64, _ := ma.ElapsedTime(64, false)
		r1 = float64(ta1) / float64(tm1)
		r64 = float64(ta64) / float64(tm64)
		ioDelta = (float64(ta64) - float64(off64)) / float64(off64)
	}
	b.ReportMetric(r1, "slowdown@1")   // paper: 2.16
	b.ReportMetric(r64, "slowdown@64") // paper: 2.23
	b.ReportMetric(100*ioDelta, "io-%")
}

// BenchmarkTable4_Speedups regenerates the full Table IV.
func BenchmarkTable4_Speedups(b *testing.B) {
	ev := core.New()
	var rows []core.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = ev.TableIV()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.App == "LINPACK" {
			b.ReportMetric(r.Cells[0].Speedup, "linpack@1") // paper: 1.25
		}
		if r.App == "HPCG" {
			b.ReportMetric(r.Cells[0].Speedup, "hpcg@1") // paper: 2.50
		}
	}
}

// --- Engine-level benchmarks -----------------------------------------------
//
// The benchmarks below measure the simulator itself rather than the paper's
// artefacts: DES event churn, proc spawn/reuse, and mpisim collectives at
// two rank counts. scripts/benchdiff gates the BenchmarkDES_* and
// BenchmarkMPISim_* prefixes hard in CI (the paper-artefact benchmarks
// above stay advisory), so engine regressions fail the build.

// BenchmarkDES_EventChurn measures raw event throughput: a fixed process
// population doing nothing but quantized delays, so the cost is schedule,
// queue, and context-switch — the per-event floor under every simulation.
func BenchmarkDES_EventChurn(b *testing.B) {
	const procs = 64
	const delaysPerProc = 100
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := des.New()
		for p := 0; p < procs; p++ {
			phase := units.Seconds(float64(p%7) * 0.25)
			e.Spawn("churn", func(pr *des.Proc) {
				for d := 0; d < delaysPerProc; d++ {
					pr.Delay(1 + phase)
				}
			})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(procs*delaysPerProc), "events/run")
}

// BenchmarkDES_SpawnReuse measures spawn-heavy workloads: many short-lived
// processes per run, across many runs — the pattern mpisim produces when a
// World is reused, and the case the parked-worker pool exists for.
func BenchmarkDES_SpawnReuse(b *testing.B) {
	const procs = 256
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := des.New()
		for p := 0; p < procs; p++ {
			e.Spawn("ephemeral", func(pr *des.Proc) { pr.Delay(1) })
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAllreduce runs a 4-value Allreduce across the given rank count on
// the CTE-Arm fabric, reusing one World (and its DES engine) for all
// iterations exactly as the experiment kinds do.
func benchAllreduce(b *testing.B, ranks int) {
	arm, _ := pairMachines()
	fab, err := interconnect.NewTofuD(arm, arm.Nodes)
	if err != nil {
		b.Fatal(err)
	}
	w, err := mpisim.NewWorld(fab, ranks, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := w.Run(func(c *mpisim.Comm) {
			data := []float64{float64(c.Rank()), 1, 2, 3}
			c.Allreduce(data, mpisim.OpSum, 32)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMPISim_AllreduceRanks64 is the small-communicator collective.
func BenchmarkMPISim_AllreduceRanks64(b *testing.B) { benchAllreduce(b, 64) }

// BenchmarkMPISim_AllreduceRanks512 is the large-communicator collective:
// rank spawn cost and event-queue pressure dominate here.
func BenchmarkMPISim_AllreduceRanks512(b *testing.B) { benchAllreduce(b, 512) }
