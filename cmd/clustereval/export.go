package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"clustereval/internal/core"
	"clustereval/internal/figures"
	"clustereval/internal/report"
)

// exportAll writes every table and figure of the reproduction as CSV files
// under dir, so the data can be replotted with external tooling.
func exportAll(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, emit func(w io.Writer) error) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	}

	ev := core.New()
	pair := figures.Default()

	tables := map[string]func() (*report.Table, error){
		"table1.csv": func() (*report.Table, error) { return ev.TableI(), nil },
		"table2.csv": func() (*report.Table, error) { return ev.TableII(), nil },
		"table3.csv": func() (*report.Table, error) { return ev.TableIII(), nil },
		"table4.csv": func() (*report.Table, error) {
			rows, err := ev.TableIV()
			if err != nil {
				return nil, err
			}
			return core.RenderTableIV(rows), nil
		},
		"fig1.csv": func() (*report.Table, error) { return pair.Figure1() },
		"fig3.csv": func() (*report.Table, error) {
			t, _, err := pair.Figure3()
			return t, err
		},
		"fig5.csv": func() (*report.Table, error) {
			t, _, err := pair.Figure5()
			return t, err
		},
		"fig7.csv": func() (*report.Table, error) {
			t, _, err := pair.Figure7()
			return t, err
		},
	}
	for name, get := range tables {
		t, err := get()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := write(name, t.CSV); err != nil {
			return err
		}
	}

	plots := map[string]func() (*report.Plot, error){
		"fig2.csv": func() (*report.Plot, error) {
			p, _, err := pair.Figure2()
			return p, err
		},
		"fig6.csv": func() (*report.Plot, error) {
			p, _, err := pair.Figure6()
			return p, err
		},
		"fig8.csv":  pair.Figure8,
		"fig9.csv":  pair.Figure9,
		"fig10.csv": pair.Figure10,
		"fig11.csv": pair.Figure11,
		"fig12.csv": pair.Figure12,
		"fig13.csv": pair.Figure13,
		"fig14.csv": pair.Figure14,
		"fig15.csv": pair.Figure15,
		"fig16.csv": pair.Figure16,
	}
	for name, get := range plots {
		p, err := get()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := write(name, p.CSV); err != nil {
			return err
		}
	}

	hm, _, err := pair.Figure4(256)
	if err != nil {
		return err
	}
	return write("fig4.csv", hm.CSV)
}
