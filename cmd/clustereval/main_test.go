package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clustereval/internal/experiment/cli"
)

// -update regenerates the golden files from current output.
var update = flag.Bool("update", false, "rewrite golden files")

// capture runs f with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	errRun := f()
	w.Close()
	os.Stdout = old
	out := <-done
	if errRun != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", errRun, out)
	}
	return out
}

func TestRunTable4(t *testing.T) {
	out := capture(t, func() error { return cli.Eval(4, 0, false) })
	for _, want := range []string{"LINPACK", "NEMO", "NP", "N/A"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 4 output missing %q", want)
		}
	}
}

func TestRunTable4CSV(t *testing.T) {
	out := capture(t, func() error { return cli.Eval(4, 0, true) })
	if !strings.Contains(out, "Applications,1,16,32,64,128,192") {
		t.Errorf("CSV header missing:\n%s", out)
	}
}

// TestRunTable4CSVGolden pins the exact Table IV CSV byte-for-byte. The
// table aggregates HPL, HPCG and all five application models, so any
// accidental drift anywhere in the simulation stack shows up here as a
// one-line diff. Refresh intentionally with: go test ./cmd/clustereval -update
func TestRunTable4CSVGolden(t *testing.T) {
	out := capture(t, func() error { return cli.Eval(4, 0, true) })
	golden := filepath.Join("testdata", "table4.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("table 4 CSV drifted from golden file %s\n--- got ---\n%s--- want ---\n%s",
			golden, out, want)
	}
}

func TestRunFigure(t *testing.T) {
	out := capture(t, func() error { return cli.Eval(0, 6, false) })
	if !strings.Contains(out, "Linpack scalability") {
		t.Errorf("figure 6 output wrong:\n%s", out)
	}
	out = capture(t, func() error { return cli.Eval(0, 4, false) })
	if !strings.Contains(out, "degraded receiver detected: node 23") {
		t.Errorf("figure 4 should flag node 23:\n%s", out)
	}
}

func TestExportAll(t *testing.T) {
	dir := t.TempDir()
	out := capture(t, func() error { return cli.ExportAll(dir) })
	if !strings.Contains(out, "table4.csv") || !strings.Contains(out, "fig16.csv") {
		t.Errorf("export log incomplete:\n%s", out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 4 tables + 16 figures + the energy-to-solution table.
	if len(entries) != 21 {
		t.Errorf("exported %d files, want 21", len(entries))
	}
	data, err := os.ReadFile(dir + "/fig2.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "series,x,y\n") {
		t.Errorf("fig2.csv header wrong: %.40s", data)
	}
}

func TestRunRejectsBadSelectors(t *testing.T) {
	if err := cli.Eval(9, 0, false); err == nil {
		t.Error("table 9 accepted")
	}
	if err := cli.Eval(0, 99, false); err == nil {
		t.Error("figure 99 accepted")
	}
}

// TestExportGoldenCSVs pins the exported CSVs of the paper's headline
// benchmark figures byte-for-byte: Fig. 2 (STREAM Triad sweep), Fig. 5
// (network bandwidth distribution), Fig. 6 (HPL scalability) and Fig. 7
// (HPCG). Together with table4.golden this covers the memory, network and
// compute layers of the simulation, so any unintended drift anywhere below
// shows up as a CSV diff. Refresh intentionally with:
//
//	go test ./cmd/clustereval -run TestExportGoldenCSVs -update
func TestExportGoldenCSVs(t *testing.T) {
	dir := t.TempDir()
	capture(t, func() error { return cli.ExportAll(dir) })

	for _, name := range []string{"fig2.csv", "fig5.csv", "fig6.csv", "fig7.csv"} {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		golden := filepath.Join("testdata", name+".golden")
		if *update {
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted from %s\n--- got ---\n%s--- want ---\n%s",
				name, golden, got, want)
		}
	}
}
