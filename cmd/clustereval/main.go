// Command clustereval reproduces the full evaluation of "Cluster of
// emerging technology: evaluation of a production HPC system based on
// A64FX" (CLUSTER 2021): every table and figure, printed to stdout.
//
// Usage:
//
//	clustereval               # everything
//	clustereval -table 4      # one table (1..4)
//	clustereval -figure 6     # one figure (1..16)
//	clustereval -csv -table 4 # table as CSV
//	clustereval -out dir      # every table and figure as CSV files
//	clustereval -kind hpl -spec '{"nodes":32}'  # one registry experiment
//
// The -kind mode runs any experiment kind registered in
// internal/experiment — the same registry clusterd serves — and prints
// the result as JSON.
package main

import (
	"os"

	"clustereval/internal/experiment/cli"
)

func main() { cli.Main("clustereval", os.Args[1:]) }
