// Command clustereval reproduces the full evaluation of "Cluster of
// emerging technology: evaluation of a production HPC system based on
// A64FX" (CLUSTER 2021): every table and figure, printed to stdout.
//
// Usage:
//
//	clustereval               # everything
//	clustereval -table 4      # one table (1..4)
//	clustereval -figure 6     # one figure (1..16)
//	clustereval -csv -table 4 # table as CSV
package main

import (
	"flag"
	"fmt"
	"os"

	"clustereval/internal/core"
	"clustereval/internal/figures"
	"clustereval/internal/report"
)

func main() {
	table := flag.Int("table", 0, "render one table (1..4); 0 = all")
	figure := flag.Int("figure", 0, "render one figure (1..16); 0 = all")
	csv := flag.Bool("csv", false, "emit tables as CSV")
	out := flag.String("out", "", "write every table and figure as CSV files into this directory")
	flag.Parse()

	if *out != "" {
		if err := exportAll(*out); err != nil {
			fmt.Fprintln(os.Stderr, "clustereval:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*table, *figure, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "clustereval:", err)
		os.Exit(1)
	}
}

func run(table, figure int, csv bool) error {
	ev := core.New()
	pair := figures.Default()

	emitTable := func(t *report.Table) error {
		if csv {
			return t.CSV(os.Stdout)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		return nil
	}

	tables := map[int]func() (*report.Table, error){
		1: func() (*report.Table, error) { return ev.TableI(), nil },
		2: func() (*report.Table, error) { return ev.TableII(), nil },
		3: func() (*report.Table, error) { return ev.TableIII(), nil },
		4: func() (*report.Table, error) {
			rows, err := ev.TableIV()
			if err != nil {
				return nil, err
			}
			return core.RenderTableIV(rows), nil
		},
	}

	figs := map[int]func() error{
		1: func() error {
			t, err := pair.Figure1()
			if err != nil {
				return err
			}
			return emitTable(t)
		},
		2: func() error {
			plot, _, err := pair.Figure2()
			if err != nil {
				return err
			}
			return plot.Render(os.Stdout)
		},
		3: func() error {
			t, _, err := pair.Figure3()
			if err != nil {
				return err
			}
			return emitTable(t)
		},
		4: func() error {
			hm, raw, err := pair.Figure4(256)
			if err != nil {
				return err
			}
			if err := hm.Render(os.Stdout); err != nil {
				return err
			}
			for _, d := range raw.DegradedReceivers(0.5) {
				fmt.Printf("degraded receiver detected: node %d\n", d)
			}
			return nil
		},
		5: func() error {
			t, _, err := pair.Figure5()
			if err != nil {
				return err
			}
			return emitTable(t)
		},
		6: func() error {
			plot, _, err := pair.Figure6()
			if err != nil {
				return err
			}
			return plot.Render(os.Stdout)
		},
		7: func() error {
			t, _, err := pair.Figure7()
			if err != nil {
				return err
			}
			return emitTable(t)
		},
		8:  plotFig(pair.Figure8),
		9:  plotFig(pair.Figure9),
		10: plotFig(pair.Figure10),
		11: plotFig(pair.Figure11),
		12: plotFig(pair.Figure12),
		13: plotFig(pair.Figure13),
		14: plotFig(pair.Figure14),
		15: plotFig(pair.Figure15),
		16: plotFig(pair.Figure16),
	}

	switch {
	case table > 0:
		f, ok := tables[table]
		if !ok {
			return fmt.Errorf("no table %d (valid: 1..4)", table)
		}
		t, err := f()
		if err != nil {
			return err
		}
		return emitTable(t)
	case figure > 0:
		f, ok := figs[figure]
		if !ok {
			return fmt.Errorf("no figure %d (valid: 1..16)", figure)
		}
		return f()
	default:
		for i := 1; i <= 4; i++ {
			t, err := tables[i]()
			if err != nil {
				return err
			}
			if err := emitTable(t); err != nil {
				return err
			}
		}
		for i := 1; i <= 16; i++ {
			if err := figs[i](); err != nil {
				return err
			}
			fmt.Println()
		}
		// Section VI: the paper's conclusions, re-derived and checked.
		findings, err := ev.Conclusions()
		if err != nil {
			return err
		}
		fmt.Println("Conclusions (Section VI), checked against the models:")
		for _, f := range findings {
			mark := "ok  "
			if !f.Holds {
				mark = "FAIL"
			}
			fmt.Printf("  [%s] %s — %s\n", mark, f.Statement, f.Evidence)
		}
		return nil
	}
}

func plotFig(f func() (*report.Plot, error)) func() error {
	return func() error {
		plot, err := f()
		if err != nil {
			return err
		}
		return plot.Render(os.Stdout)
	}
}
