package main

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// cachedStub answers every submission as a cache hit.
func cachedStub(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"id":"j000001","state":"done"}`))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestRunHappyPath(t *testing.T) {
	srv := cachedStub(t)
	if err := run([]string{"-url", srv.URL, "-jobs", "10", "-json"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunSLOViolationExits(t *testing.T) {
	srv := cachedStub(t)
	err := run([]string{"-url", srv.URL, "-jobs", "10", "-min-throughput", "1e12"})
	if !errors.Is(err, errSLO) {
		t.Fatalf("err = %v, want SLO violation", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-jobs", "0"}); err == nil {
		t.Fatal("zero jobs accepted")
	}
	if err := run([]string{"-url", ""}); err == nil {
		t.Fatal("empty URL accepted")
	}
}
