// Command loadgen drives sustained, reproducible mixed-kind traffic at a
// clusterd daemon or a clusterfleet coordinator and judges the run
// against service-level objectives.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 [-jobs 1000] [-concurrency 8] [-rate 0]
//	        [-seed 1] [-unique 64] [-fault-every 10] [-deadline-every 5]
//	        [-deadline-ms 60000] [-poll-timeout 2m]
//	        [-min-throughput 0] [-max-submit-p99 0] [-max-e2e-p99 0]
//	        [-max-shed-fraction 0] [-json]
//
// The traffic stream is derived purely from -seed: two runs with the same
// seed submit byte-identical specs, including the constant fault-carrying
// spec (every -fault-every submissions) whose consistent-hash placement
// concentrates failures on one shard until its breaker opens, and a
// deadline-bearing tranche (every -deadline-every clean jobs).
//
// After the last submission every accepted job is polled to a terminal
// state. The run report — submission verdicts, terminal outcomes, wall
// time, submit and end-to-end latency percentiles — is printed as text
// (or JSON with -json). SLO flags left at zero are not checked, but the
// invariants always are: no lost jobs, no clean-job failures, no invalid
// specs, no transport errors. Any violation prints to stderr and exits 1.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"clustereval/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

var errSLO = errors.New("SLO violated")

func run(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:8080", "clusterd or clusterfleet base URL")
	jobs := fs.Int("jobs", 1000, "submissions to make")
	concurrency := fs.Int("concurrency", 8, "concurrent submitters")
	rate := fs.Float64("rate", 0, "submissions per second (0 = unthrottled)")
	seed := fs.Uint64("seed", 1, "traffic stream seed; identical seeds submit identical traffic")
	unique := fs.Int("unique", 64, "distinct clean specs in the pool (smaller = more cache hits)")
	faultEvery := fs.Int("fault-every", 10, "every n-th submission carries the fault spec (<0 disables)")
	deadlineEvery := fs.Int("deadline-every", 5, "every n-th clean job carries a deadline (<0 disables)")
	deadlineMS := fs.Int("deadline-ms", 60000, "deadline attached to deadline-bearing jobs")
	pollTimeout := fs.Duration("poll-timeout", 2*time.Minute, "how long to chase accepted jobs after the last submission")
	minThroughput := fs.Float64("min-throughput", 0, "SLO: minimum terminal outcomes per second (0 = unchecked)")
	maxSubmitP99 := fs.Float64("max-submit-p99", 0, "SLO: maximum submit p99 in seconds (0 = unchecked)")
	maxE2EP99 := fs.Float64("max-e2e-p99", 0, "SLO: maximum end-to-end p99 in seconds (0 = unchecked)")
	maxShedFraction := fs.Float64("max-shed-fraction", 0, "SLO: maximum shed+unavailable fraction of submissions (0 = unchecked)")
	jsonOut := fs.Bool("json", false, "print the report as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}

	runner, err := loadgen.NewRunner(loadgen.Config{
		BaseURL:     *url,
		Jobs:        *jobs,
		Concurrency: *concurrency,
		RatePerSec:  *rate,
		PollTimeout: *pollTimeout,
		Mix: loadgen.MixConfig{
			Seed:          *seed,
			UniqueSpecs:   *unique,
			FaultEvery:    *faultEvery,
			DeadlineEvery: *deadlineEvery,
			DeadlineMS:    *deadlineMS,
		},
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	report, err := runner.Run(ctx)
	if err != nil {
		return err
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else {
		report.WriteSummary(os.Stdout)
	}

	violations := report.Check(loadgen.SLO{
		MinThroughputPerSec: *minThroughput,
		MaxSubmitP99Seconds: *maxSubmitP99,
		MaxE2EP99Seconds:    *maxE2EP99,
		MaxShedFraction:     *maxShedFraction,
	})
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "loadgen: SLO violation:", v)
		}
		return errSLO
	}
	fmt.Println("loadgen: SLO satisfied")
	return nil
}
