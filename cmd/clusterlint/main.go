// Clusterlint is the repository's static-analysis suite, run through the
// go vet driver:
//
//	go build -o bin/clusterlint ./cmd/clusterlint
//	go vet -vettool=bin/clusterlint ./...
//
// (or just `make lint`). It enforces the simulator's cross-cutting
// invariants — determinism, context propagation, canonical-encoding
// stability, unit-typed arithmetic, and error wrapping. Run
// `bin/clusterlint help` for the analyzer docs and the suppression
// policy.
package main

import (
	"clustereval/internal/analysis/suite"
	"clustereval/internal/analysis/vetdriver"
)

func main() {
	vetdriver.Main(suite.Analyzers)
}
