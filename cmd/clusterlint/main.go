// Clusterlint is the repository's static-analysis suite, run through the
// go vet driver:
//
//	go build -o bin/clusterlint ./cmd/clusterlint
//	go vet -vettool=bin/clusterlint ./...
//
// (or just `make lint`). It enforces the simulator's cross-cutting
// invariants — determinism (local and taint-tracked through calls),
// context propagation, canonical-encoding stability, lock ordering,
// goroutine exit paths, atomic-field consistency, unit-typed
// arithmetic, and error wrapping. The concurrency analyzers see across
// function and package boundaries through serialized facts. Run
// `bin/clusterlint help` for the analyzer docs and the suppression
// policy; `-json` emits machine-readable diagnostics.
package main

import (
	"clustereval/internal/analysis/suite"
	"clustereval/internal/analysis/vetdriver"
)

func main() {
	vetdriver.Main(suite.Analyzers)
}
