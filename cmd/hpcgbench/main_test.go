package main

import "testing"

func TestVerifyMode(t *testing.T) {
	if err := run(8, 4); err != nil {
		t.Fatalf("verify run failed: %v", err)
	}
}

func TestModelMode(t *testing.T) {
	if err := run(0, 4); err != nil {
		t.Fatalf("model run failed: %v", err)
	}
}
