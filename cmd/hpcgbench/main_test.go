package main

import (
	"testing"

	"clustereval/internal/experiment/cli"
)

func TestVerifyMode(t *testing.T) {
	if err := cli.HPCGBench(8, 4); err != nil {
		t.Fatalf("verify run failed: %v", err)
	}
}

func TestModelMode(t *testing.T) {
	if err := cli.HPCGBench(0, 4); err != nil {
		t.Fatalf("model run failed: %v", err)
	}
}
