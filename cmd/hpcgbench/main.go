// Command hpcgbench runs the HPCG experiment (paper Section IV-B, Fig. 7):
// the vanilla/optimized model on both clusters, and — with -verify — a real
// multigrid-preconditioned CG solve on the 27-point stencil. Flags come
// from the experiment registry's "hpcg" schema plus the driver in
// internal/experiment/cli.
package main

import (
	"os"

	"clustereval/internal/experiment/cli"
)

func main() { cli.Main("hpcgbench", os.Args[1:]) }
