// Command hpcgbench runs the HPCG experiment (paper Section IV-B, Fig. 7):
// the vanilla/optimized model on both clusters, and — with -verify — a real
// multigrid-preconditioned CG solve on the 27-point stencil.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"clustereval/internal/figures"
	"clustereval/internal/hpcg"
	"clustereval/internal/machine"
	"clustereval/internal/omp"
)

func main() {
	verify := flag.Int("verify", 0, "solve a real NxNxN HPCG system and report convergence")
	threads := flag.Int("threads", 8, "worker threads for -verify")
	flag.Parse()

	if err := run(*verify, *threads); err != nil {
		fmt.Fprintln(os.Stderr, "hpcgbench:", err)
		os.Exit(1)
	}
}

func run(verify, threads int) error {
	if verify > 0 {
		team, err := omp.NewTeam(machine.CTEArm().Node, threads, omp.Spread)
		if err != nil {
			return err
		}
		prob, err := hpcg.NewProblem(verify, verify, verify)
		if err != nil {
			return err
		}
		mg, err := hpcg.NewMG(prob, 4)
		if err != nil {
			return err
		}
		b := make([]float64, prob.NRows)
		for i := range b {
			b[i] = 1
		}
		start := time.Now()
		_, res, err := hpcg.CG(prob, mg, team, b, 100, 1e-9)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		fmt.Printf("grid %d^3 (%d rows, %d nonzeros), %d MG levels: converged=%v in %d iterations, %.3gs host time\n",
			verify, prob.NRows, prob.Nonzeros(), mg.Levels(), res.Converged, res.Iterations, elapsed.Seconds())
		for i, r := range res.Residuals {
			fmt.Printf("  iter %2d: ||r|| = %.3e\n", i+1, r)
		}
		if !res.Converged {
			return fmt.Errorf("CG did not converge")
		}
		return nil
	}

	p := figures.Default()
	t, runs, err := p.Figure7()
	if err != nil {
		return err
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	params := hpcg.PaperParameters(machine.CTEArm())
	fmt.Printf("run parameters: nx=%d ny=%d nz=%d rt=%ds, %d ranks/node (MPI-only)\n",
		params.NX, params.NY, params.NZ, params.RuntimeSecs, params.RanksPerNode)
	for k, v := range params.EnvVars {
		fmt.Printf("  %s=%s\n", k, v)
	}
	_ = runs
	return nil
}
