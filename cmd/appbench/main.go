// Command appbench runs the scientific-application experiments of Section V:
// one application per invocation, printing its scalability figures and the
// paper's headline comparisons.
package main

import (
	"flag"
	"fmt"
	"os"

	"clustereval/internal/apps/alya"
	"clustereval/internal/apps/scaling"
	"clustereval/internal/figures"
	"clustereval/internal/report"
)

func main() {
	app := flag.String("app", "", "application: alya | nemo | gromacs | openifs | wrf (empty = all)")
	seed := flag.Uint64("seed", 0, "noise seed for the interconnect models (0 = paper default); identical seeds reproduce identical numbers")
	flag.Parse()

	if err := run(*app, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "appbench:", err)
		os.Exit(1)
	}
}

func run(app string, seed uint64) error {
	p := figures.WithSeed(seed)
	type figFn struct {
		name string
		fn   func() (*report.Plot, error)
	}
	apps := map[string][]figFn{
		"alya": {
			{"Fig. 8", p.Figure8}, {"Fig. 9", p.Figure9}, {"Fig. 10", p.Figure10},
		},
		"nemo":    {{"Fig. 11", p.Figure11}},
		"gromacs": {{"Fig. 12", p.Figure12}, {"Fig. 13", p.Figure13}},
		"openifs": {{"Fig. 14", p.Figure14}, {"Fig. 15", p.Figure15}},
		"wrf":     {{"Fig. 16", p.Figure16}},
	}
	order := []string{"alya", "nemo", "gromacs", "openifs", "wrf"}

	selected := order
	if app != "" {
		if _, ok := apps[app]; !ok {
			return fmt.Errorf("unknown app %q (valid: alya nemo gromacs openifs wrf)", app)
		}
		selected = []string{app}
	}
	for _, name := range selected {
		for _, f := range apps[name] {
			plot, err := f.fn()
			if err != nil {
				return err
			}
			if err := plot.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		if name == "alya" {
			if err := alyaHighlights(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// alyaHighlights prints the equivalence points the paper calls out.
func alyaHighlights(p figures.Pair) error {
	arm, mn4 := p.Arm, p.Ref
	cte, ref, err := alya.Figure8(arm, mn4)
	if err != nil {
		return err
	}
	target, _ := ref.TimeAt(12)
	fmt.Printf("Alya: %d CTE-Arm nodes match 12 MareNostrum 4 nodes (time step)\n",
		scaling.MatchingNodes(cte, target))
	cteA, refA, err := alya.Figure9(arm, mn4)
	if err != nil {
		return err
	}
	targetA, _ := refA.TimeAt(12)
	fmt.Printf("Alya: %d CTE-Arm nodes match 12 MareNostrum 4 nodes (Assembly)\n",
		scaling.MatchingNodes(cteA, targetA))
	cteS, refS, err := alya.Figure10(arm, mn4)
	if err != nil {
		return err
	}
	targetS, _ := refS.TimeAt(12)
	fmt.Printf("Alya: %d CTE-Arm nodes match 12 MareNostrum 4 nodes (Solver)\n\n",
		scaling.MatchingNodes(cteS, targetS))
	return nil
}
