// Command appbench runs the scientific-application experiments of Section
// V: one application per invocation (or all of them), printing each
// scalability figure and the paper's headline comparisons. The -app menu
// comes from the experiment registry's application catalog; flags come
// from the registry's "app" schema plus the driver in
// internal/experiment/cli.
package main

import (
	"os"

	"clustereval/internal/experiment/cli"
)

func main() { cli.Main("appbench", os.Args[1:]) }
