package main

import "testing"

func TestEachApp(t *testing.T) {
	for _, app := range []string{"alya", "nemo", "gromacs", "openifs", "wrf"} {
		if err := run(app, 0); err != nil {
			t.Errorf("app %s: %v", app, err)
		}
	}
}

func TestUnknownApp(t *testing.T) {
	if err := run("linpack", 0); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestSeededRun(t *testing.T) {
	// A nonzero seed must change only the noise realisation, never break a
	// figure; the sweep stays renderable for any seed.
	if err := run("nemo", 42); err != nil {
		t.Errorf("seeded run: %v", err)
	}
}
