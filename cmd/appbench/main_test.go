package main

import "testing"

func TestEachApp(t *testing.T) {
	for _, app := range []string{"alya", "nemo", "gromacs", "openifs", "wrf"} {
		if err := run(app); err != nil {
			t.Errorf("app %s: %v", app, err)
		}
	}
}

func TestUnknownApp(t *testing.T) {
	if err := run("linpack"); err == nil {
		t.Error("unknown app accepted")
	}
}
