package main

import (
	"testing"

	"clustereval/internal/experiment"
	"clustereval/internal/experiment/cli"
)

func TestEachApp(t *testing.T) {
	// The menu is the registry's application catalog, not a local list.
	for _, app := range experiment.AppNames() {
		if err := cli.AppBench(app, 0); err != nil {
			t.Errorf("app %s: %v", app, err)
		}
	}
}

func TestUnknownApp(t *testing.T) {
	if err := cli.AppBench("linpack", 0); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestSeededRun(t *testing.T) {
	// A nonzero seed must change only the noise realisation, never break a
	// figure; the sweep stays renderable for any seed.
	if err := cli.AppBench("nemo", 42); err != nil {
		t.Errorf("seeded run: %v", err)
	}
}
