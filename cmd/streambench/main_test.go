package main

import "testing"

func TestVerifyMode(t *testing.T) {
	if err := run(20000, 4); err != nil {
		t.Fatalf("verify run failed: %v", err)
	}
}

func TestFigureMode(t *testing.T) {
	if err := run(0, 0); err != nil {
		t.Fatalf("figure run failed: %v", err)
	}
}
