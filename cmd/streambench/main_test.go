package main

import (
	"testing"

	"clustereval/internal/experiment/cli"
)

func TestVerifyMode(t *testing.T) {
	if err := cli.StreamBench(20000, 4); err != nil {
		t.Fatalf("verify run failed: %v", err)
	}
}

func TestFigureMode(t *testing.T) {
	if err := cli.StreamBench(0, 0); err != nil {
		t.Fatalf("figure run failed: %v", err)
	}
}
