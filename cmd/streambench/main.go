// Command streambench runs the STREAM experiments (paper Section III-B):
// the Fig. 2 OpenMP thread sweep, the Fig. 3 hybrid MPI+OpenMP sweep, and —
// with -verify — a real concurrent execution of the four kernels validated
// exactly as stream.c validates them.
package main

import (
	"flag"
	"fmt"
	"os"

	"clustereval/internal/bench/stream"
	"clustereval/internal/figures"
	"clustereval/internal/machine"
	"clustereval/internal/omp"
)

func main() {
	verify := flag.Int("verify", 0, "run the real kernels over N elements and validate")
	threads := flag.Int("threads", 8, "threads for -verify")
	flag.Parse()

	if err := run(*verify, *threads); err != nil {
		fmt.Fprintln(os.Stderr, "streambench:", err)
		os.Exit(1)
	}
}

func run(verify, threads int) error {
	if verify > 0 {
		team, err := omp.NewTeam(machine.CTEArm().Node, threads, omp.Spread)
		if err != nil {
			return err
		}
		arr, err := stream.NewArrays(verify)
		if err != nil {
			return err
		}
		const iters = 10
		for i := 0; i < iters; i++ {
			stream.RunIteration(team, arr)
		}
		if err := stream.Validate(arr, iters); err != nil {
			return err
		}
		fmt.Printf("real STREAM kernels: %d elements x %d iterations on %d threads validated\n",
			verify, iters, threads)
		return nil
	}

	p := figures.Default()
	plot, _, err := p.Figure2()
	if err != nil {
		return err
	}
	if err := plot.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	t, _, err := p.Figure3()
	if err != nil {
		return err
	}
	return t.Render(os.Stdout)
}
