// Command streambench runs the STREAM experiments (paper Section III-B):
// the Fig. 2 OpenMP thread sweep, the Fig. 3 hybrid MPI+OpenMP sweep, and —
// with -verify — a real concurrent execution of the four kernels validated
// exactly as stream.c validates them. Flags come from the experiment
// registry's "stream" schema plus the driver in internal/experiment/cli.
package main

import (
	"os"

	"clustereval/internal/experiment/cli"
)

func main() { cli.Main("streambench", os.Args[1:]) }
