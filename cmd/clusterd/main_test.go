package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"clustereval/internal/service"
)

// TestRunServesAndDrains boots the daemon on an ephemeral port, submits a
// real job through the full stack, then cancels the context and verifies a
// clean drain.
func TestRunServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrCh := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, "127.0.0.1:0", service.Config{Workers: 2}, func(a net.Addr) { addrCh <- a })
	}()

	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-errCh:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("listener never came up")
	}

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	body := strings.NewReader(`{"kind":"hpl","machine":"cte-arm","nodes":8}`)
	resp, err = http.Post(base+"/v1/jobs", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var view service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		r, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", base, view.ID))
		if err != nil {
			t.Fatal(err)
		}
		var v service.JobView
		if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if v.State.Terminal() {
			if v.State != service.StateDone || v.Result == nil || v.Result.HPL == nil {
				t.Fatalf("job ended %s (%s)", v.State, v.Error)
			}
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Errorf("run returned %v on graceful shutdown", err)
		}
	case <-time.After(30 * time.Second):
		t.Error("daemon did not drain after cancel")
	}
}

func TestRunBadAddress(t *testing.T) {
	err := run(context.Background(), "256.0.0.1:99999", service.Config{Workers: 1}, nil)
	if err == nil {
		t.Error("run accepted an unlistenable address")
	}
}
