// Command clusterd serves the paper's evaluation suite over HTTP: clients
// POST simulation specs (machine preset, benchmark or application, ranks,
// seed) to /v1/jobs, a bounded worker pool replays the corresponding model,
// and identical specs are answered from a content-addressed result cache.
// Metrics are exposed in Prometheus text format on /v1/metrics, and the
// experiment registry — every job kind with its parameter schema — on
// GET /v1/kinds (or offline via -list-kinds).
//
// Usage:
//
//	clusterd [-addr :8080] [-workers 0] [-queue 256] [-cache 1024] [-job-timeout 2m]
//	         [-retries 2] [-retry-backoff 50ms] [-journal path]
//	         [-drain-timeout 30s] [-shed-threshold 0.9]
//	         [-breaker-threshold 0.5] [-breaker-min-samples 16] [-breaker-cooldown 5s]
//	clusterd -list-kinds
//
// A zero -workers means one worker per CPU (GOMAXPROCS). SIGINT/SIGTERM
// trigger a graceful drain: the listener stops, queued jobs finish up to
// -drain-timeout, then the process exits.
//
// With -journal, every job lifecycle transition is appended to a
// CRC-framed, fsynced write-ahead journal before it is acknowledged. On
// restart the journal is replayed: terminal jobs keep their results,
// jobs that were queued or running when the daemon died are re-enqueued
// and run again. A clean drain leaves a shutdown marker, so recovery
// never re-runs work after an orderly exit.
//
// Specs may carry a "faults" block (see internal/faultsim) injecting
// stragglers, degraded links or node failures into the simulated cluster,
// and a "deadline_ms" bounding the job's lifetime from submission. Jobs
// failing with a retryable fault error are re-executed up to -retries
// times with exponential backoff starting at -retry-backoff before being
// reported degraded. Admission control sheds load with 429 + Retry-After
// once queue saturation reaches -shed-threshold, and a circuit breaker
// over the recent failure rate rejects fault-carrying specs early while
// the simulated cluster is failing; /v1/healthz exposes the saturation,
// failure rate and breaker state so operators can see the service degrade
// rather than flap.
//
// The daemon's flag parsing, validation and serve loop live in
// internal/experiment/cli; this file only wires signals and exit codes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"clustereval/internal/experiment/cli"
)

func main() {
	opts, err := cli.ParseDaemonFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "clusterd:", err)
		os.Exit(2)
	}
	if opts.ListKinds {
		if err := cli.ListKinds(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "clusterd:", err)
			os.Exit(1)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := cli.Daemon(ctx, opts, nil); err != nil {
		fmt.Fprintln(os.Stderr, "clusterd:", err)
		os.Exit(1)
	}
}
