// Command clusterd serves the paper's evaluation suite over HTTP: clients
// POST simulation specs (machine preset, benchmark or application, ranks,
// seed) to /v1/jobs, a bounded worker pool replays the corresponding model,
// and identical specs are answered from a content-addressed result cache.
// Metrics are exposed in Prometheus text format on /v1/metrics.
//
// Usage:
//
//	clusterd [-addr :8080] [-workers 0] [-queue 256] [-cache 1024] [-job-timeout 2m]
//	         [-retries 2] [-retry-backoff 50ms] [-journal path]
//	         [-drain-timeout 30s] [-shed-threshold 0.9]
//	         [-breaker-threshold 0.5] [-breaker-min-samples 16] [-breaker-cooldown 5s]
//
// A zero -workers means one worker per CPU (GOMAXPROCS). SIGINT/SIGTERM
// trigger a graceful drain: the listener stops, queued jobs finish up to
// -drain-timeout, then the process exits.
//
// With -journal, every job lifecycle transition is appended to a
// CRC-framed, fsynced write-ahead journal before it is acknowledged. On
// restart the journal is replayed: terminal jobs keep their results,
// jobs that were queued or running when the daemon died are re-enqueued
// and run again. A clean drain leaves a shutdown marker, so recovery
// never re-runs work after an orderly exit.
//
// Specs may carry a "faults" block (see internal/faultsim) injecting
// stragglers, degraded links or node failures into the simulated cluster,
// and a "deadline_ms" bounding the job's lifetime from submission. Jobs
// failing with a retryable fault error are re-executed up to -retries
// times with exponential backoff starting at -retry-backoff before being
// reported degraded. Admission control sheds load with 429 + Retry-After
// once queue saturation reaches -shed-threshold, and a circuit breaker
// over the recent failure rate rejects fault-carrying specs early while
// the simulated cluster is failing; /v1/healthz exposes the saturation,
// failure rate and breaker state so operators can see the service degrade
// rather than flap.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"clustereval/internal/service"
)

// options is the validated CLI configuration.
type options struct {
	addr         string
	journal      string
	drainTimeout time.Duration

	workers    int
	queue      int
	cache      int
	jobTimeout time.Duration
	retries    int
	backoff    time.Duration

	shedThreshold     float64
	breakerThreshold  float64
	breakerMinSamples int
	breakerCooldown   time.Duration
}

// parseFlags parses args (without the program name) into options. It
// validates everything a typo can break and returns an error instead of
// letting the daemon come up silently misconfigured.
func parseFlags(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("clusterd", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.StringVar(&o.journal, "journal", "", "write-ahead journal path (empty disables durability)")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "how long a graceful drain may run before in-flight jobs are cancelled")
	fs.IntVar(&o.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	fs.IntVar(&o.queue, "queue", 256, "job queue depth")
	fs.IntVar(&o.cache, "cache", 1024, "result cache entries (negative disables)")
	fs.DurationVar(&o.jobTimeout, "job-timeout", 2*time.Minute, "per-job execution timeout")
	fs.IntVar(&o.retries, "retries", 2, "max re-executions of a job failing with a retryable fault (0 disables)")
	fs.DurationVar(&o.backoff, "retry-backoff", 50*time.Millisecond, "base retry backoff, doubled per attempt (0 means no delay)")
	fs.Float64Var(&o.shedThreshold, "shed-threshold", 0.9, "queue saturation in (0,1] at which submissions are load-shed with 429")
	fs.Float64Var(&o.breakerThreshold, "breaker-threshold", 0.5, "recent failure rate in (0,1] at which the circuit breaker opens")
	fs.IntVar(&o.breakerMinSamples, "breaker-min-samples", 16, "outcomes the failure window must hold before the breaker may open")
	fs.DurationVar(&o.breakerCooldown, "breaker-cooldown", 5*time.Second, "how long the breaker stays open before a half-open probe")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if err := o.validate(); err != nil {
		return options{}, err
	}
	return o, nil
}

// validate rejects configurations that would otherwise misbehave
// silently (a negative backoff quietly meaning "none", a shed threshold
// of 0 rejecting every job).
func (o options) validate() error {
	if o.retries < 0 {
		return fmt.Errorf("-retries must be >= 0 (0 disables retries), got %d", o.retries)
	}
	if o.backoff < 0 {
		return fmt.Errorf("-retry-backoff must be >= 0 (0 means no delay), got %v", o.backoff)
	}
	if o.drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", o.drainTimeout)
	}
	if o.jobTimeout <= 0 {
		return fmt.Errorf("-job-timeout must be positive, got %v", o.jobTimeout)
	}
	if o.queue <= 0 {
		return fmt.Errorf("-queue must be positive, got %d", o.queue)
	}
	if o.workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = GOMAXPROCS), got %d", o.workers)
	}
	if o.shedThreshold <= 0 || o.shedThreshold > 1 {
		return fmt.Errorf("-shed-threshold must be in (0, 1], got %g", o.shedThreshold)
	}
	if o.breakerThreshold <= 0 || o.breakerThreshold > 1 {
		return fmt.Errorf("-breaker-threshold must be in (0, 1], got %g", o.breakerThreshold)
	}
	if o.breakerMinSamples <= 0 {
		return fmt.Errorf("-breaker-min-samples must be positive, got %d", o.breakerMinSamples)
	}
	if o.breakerCooldown <= 0 {
		return fmt.Errorf("-breaker-cooldown must be positive, got %v", o.breakerCooldown)
	}
	return nil
}

// config maps the CLI options onto the service configuration. The CLI
// uses 0 for "disabled" where the library uses negative values (its 0
// means "default"), so the translation happens here.
func (o options) config() service.Config {
	cfg := service.Config{
		Workers:           o.workers,
		QueueDepth:        o.queue,
		CacheSize:         o.cache,
		JobTimeout:        o.jobTimeout,
		MaxRetries:        o.retries,
		RetryBackoff:      o.backoff,
		ShedThreshold:     o.shedThreshold,
		BreakerThreshold:  o.breakerThreshold,
		BreakerMinSamples: o.breakerMinSamples,
		BreakerCooldown:   o.breakerCooldown,
	}
	if o.retries == 0 {
		cfg.MaxRetries = -1
	}
	if o.backoff == 0 {
		cfg.RetryBackoff = -1
	}
	return cfg
}

func main() {
	opts, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "clusterd:", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, opts, nil); err != nil {
		fmt.Fprintln(os.Stderr, "clusterd:", err)
		os.Exit(1)
	}
}

// run starts the service and HTTP server, blocks until ctx is cancelled,
// then drains gracefully. onReady, when non-nil, receives the bound
// address once the listener is up (tests use it to learn the port).
func run(ctx context.Context, opts options, onReady func(net.Addr)) error {
	var svc *service.Service
	var err error
	if opts.journal != "" {
		svc, err = service.OpenDurable(opts.config(), opts.journal)
		if err != nil {
			return err
		}
	} else {
		svc = service.New(opts.config())
	}
	srv := &http.Server{Handler: service.NewServer(svc)}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		_ = svc.Close(context.Background())
		return err
	}
	fmt.Printf("clusterd listening on %s (%d workers, queue %d, cache %d)\n",
		ln.Addr(), svc.Workers(), opts.queue, opts.cache)
	if opts.journal != "" {
		fmt.Printf("clusterd: journal %s, %d job(s) recovered\n", opts.journal, svc.RecoveredJobs())
	}
	if onReady != nil {
		onReady(ln.Addr())
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		// Listener failed outright; still tear the pool down.
		_ = svc.Close(context.Background())
		return err
	case <-ctx.Done():
	}

	fmt.Println("clusterd: draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), opts.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := svc.Close(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("clusterd: bye")
	return nil
}
