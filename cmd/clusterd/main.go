// Command clusterd serves the paper's evaluation suite over HTTP: clients
// POST simulation specs (machine preset, benchmark or application, ranks,
// seed) to /v1/jobs, a bounded worker pool replays the corresponding model,
// and identical specs are answered from a content-addressed result cache.
// Metrics are exposed in Prometheus text format on /v1/metrics.
//
// Usage:
//
//	clusterd [-addr :8080] [-workers 0] [-queue 256] [-cache 1024] [-job-timeout 2m]
//	         [-retries 2] [-retry-backoff 50ms]
//
// A zero -workers means one worker per CPU (GOMAXPROCS). SIGINT/SIGTERM
// trigger a graceful drain: the listener stops, queued jobs finish, then
// the process exits.
//
// Specs may carry a "faults" block (see internal/faultsim) injecting
// stragglers, degraded links or node failures into the simulated cluster.
// Jobs failing with a retryable fault error are re-executed up to -retries
// times with exponential backoff starting at -retry-backoff before being
// reported degraded; /v1/healthz exposes queue saturation and the recent
// failure rate so operators can see the service degrade rather than flap.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"clustereval/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 256, "job queue depth")
		cache      = flag.Int("cache", 1024, "result cache entries (negative disables)")
		jobTimeout = flag.Duration("job-timeout", 2*time.Minute, "per-job execution timeout")
		retries    = flag.Int("retries", 2, "max re-executions of a job failing with a retryable fault (negative disables)")
		backoff    = flag.Duration("retry-backoff", 50*time.Millisecond, "base retry backoff, doubled per attempt (negative means none)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := service.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheSize:    *cache,
		JobTimeout:   *jobTimeout,
		MaxRetries:   *retries,
		RetryBackoff: *backoff,
	}
	if err := run(ctx, *addr, cfg, nil); err != nil {
		fmt.Fprintln(os.Stderr, "clusterd:", err)
		os.Exit(1)
	}
}

// run starts the service and HTTP server, blocks until ctx is cancelled,
// then drains gracefully. onReady, when non-nil, receives the bound
// address once the listener is up (tests use it to learn the port).
func run(ctx context.Context, addr string, cfg service.Config, onReady func(net.Addr)) error {
	svc := service.New(cfg)
	srv := &http.Server{Handler: service.NewServer(svc)}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("clusterd listening on %s (%d workers, queue %d, cache %d)\n",
		ln.Addr(), svc.Workers(), cfg.QueueDepth, cfg.CacheSize)
	if onReady != nil {
		onReady(ln.Addr())
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		// Listener failed outright; still tear the pool down.
		_ = svc.Close(context.Background())
		return err
	case <-ctx.Done():
	}

	fmt.Println("clusterd: draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := svc.Close(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("clusterd: bye")
	return nil
}
