// Command clusterfleet runs a sharded clusterd fleet behind one
// consistent-hash coordinator: it spawns N clusterd children (one journal
// each), routes POST /v1/jobs to the shard owning the spec's canonical
// cache key, merges every shard's /v1/metrics and /v1/healthz into
// fleet-wide views, and supervises the children grendel-style — serve,
// watch, restart with exponential backoff.
//
// Usage:
//
//	clusterfleet -bin ./clusterd [-addr :8090] [-shards 3] [-data fleet-data]
//	             [-vnodes 64] [-workers 0] [-queue 256] [-cache 1024]
//	             [-max-restarts 5] [-restart-backoff 100ms] [-probe-interval 250ms]
//	             [-replicas 1] [-ack-quorum 0]
//
// Shard sN journals to <data>/sN.wal. A child that dies is restarted with
// the same journal, so the shard's own crash recovery re-runs its
// in-flight jobs and exactly-once semantics hold across restarts. A child
// that burns through -max-restarts consecutive fast failures is declared
// permanently dead: its key range flows to the ring successors and the
// unfinished jobs in its journal are re-enqueued onto the survivors.
//
// -replicas R > 1 turns on journal replication: each shard moves to its
// own directory (<data>/sN/journal.wal) and streams its journal to its
// R-1 ring-successor followers, which keep the copies alongside their own
// journals (<data>/sN/replica-sM.wal). A submit is acknowledged only
// after -ack-quorum of the R copies fsynced (0 means a majority). If a
// shard's journal directory is destroyed outright, the supervisor
// promotes the deepest follower replica back into a primary journal and
// respawns the child over it — nothing a quorum acknowledged is lost.
//
// The coordinator's own API adds GET /v1/fleet (topology: shards, PIDs,
// liveness, rerouted jobs) next to the clusterd surface it proxies.
// SIGINT/SIGTERM stop the listener and kill the children.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"clustereval/internal/fleet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "clusterfleet:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("clusterfleet", flag.ContinueOnError)
	addr := fs.String("addr", ":8090", "coordinator listen address")
	bin := fs.String("bin", "", "clusterd binary to spawn (required)")
	shards := fs.Int("shards", 3, "number of clusterd shards")
	data := fs.String("data", "fleet-data", "directory for the shards' write-ahead journals")
	vnodes := fs.Int("vnodes", 64, "virtual nodes per shard on the hash ring")
	workers := fs.Int("workers", 0, "worker pool size per shard (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 256, "job queue depth per shard")
	cache := fs.Int("cache", 1024, "result cache entries per shard")
	maxRestarts := fs.Int("max-restarts", 5, "consecutive fast failures before a shard is declared dead")
	restartBackoff := fs.Duration("restart-backoff", 100*time.Millisecond, "first respawn delay, doubled per failure")
	probeInterval := fs.Duration("probe-interval", 250*time.Millisecond, "shard health-probe period")
	replicas := fs.Int("replicas", 1, "copies of each shard's journal across the fleet (1 disables replication)")
	ackQuorum := fs.Int("ack-quorum", 0, "journal copies that must fsync before a submit is acknowledged (0 = majority of -replicas)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bin == "" {
		return fmt.Errorf("-bin is required (path to the clusterd binary)")
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", *shards)
	}
	if *replicas < 1 {
		return fmt.Errorf("-replicas must be >= 1, got %d", *replicas)
	}
	if *replicas > *shards {
		return fmt.Errorf("-replicas %d needs at least that many shards, got %d", *replicas, *shards)
	}
	if *ackQuorum < 0 || *ackQuorum > *replicas {
		return fmt.Errorf("-ack-quorum must be in [0, %d] (0 = majority), got %d", *replicas, *ackQuorum)
	}
	if err := os.MkdirAll(*data, 0o755); err != nil {
		return fmt.Errorf("journal dir: %w", err)
	}

	decls := make([]fleet.Shard, *shards)
	for i := range decls {
		name := "s" + strconv.Itoa(i)
		if *replicas > 1 {
			// Replicated layout: each shard owns a directory holding its
			// journal and the replicas it follows for other shards, so
			// "losing a disk" is one rm -rf away from being tested.
			dir := filepath.Join(*data, name)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return fmt.Errorf("shard dir: %w", err)
			}
			decls[i] = fleet.Shard{
				Name:        name,
				DataDir:     dir,
				JournalPath: filepath.Join(dir, "journal.wal"),
			}
			continue
		}
		decls[i] = fleet.Shard{
			Name:        name,
			JournalPath: filepath.Join(*data, name+".wal"),
		}
	}
	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		VirtualNodes:  *vnodes,
		ProbeInterval: *probeInterval,
		Replicas:      *replicas,
		AckQuorum:     *ackQuorum,
	}, decls)
	if err != nil {
		return err
	}
	sup := fleet.NewSupervisor(fleet.SupervisorConfig{
		Bin: *bin,
		BaseArgs: []string{
			"-workers", strconv.Itoa(*workers),
			"-queue", strconv.Itoa(*queue),
			"-cache", strconv.Itoa(*cache),
		},
		RestartBackoff: *restartBackoff,
		MaxRestarts:    *maxRestarts,
	}, coord)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	replTag := ""
	if *replicas > 1 {
		q := *ackQuorum
		if q == 0 {
			q = *replicas/2 + 1
		}
		replTag = fmt.Sprintf(", replicas %d quorum %d", *replicas, q)
	}
	fmt.Printf("clusterfleet listening on %s (%d shards, bin %s, journals %s%s)\n",
		ln.Addr(), *shards, *bin, *data, replTag)

	supDone := make(chan error, 1)
	go func() { supDone <- sup.Run(ctx) }()
	go coord.Run(ctx)

	srv := &http.Server{Handler: coord}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		stop()
		<-supDone
		return err
	case <-ctx.Done():
	}

	fmt.Println("clusterfleet: shutting down...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	// Children are killed by ctx cancellation; wait for the supervisor
	// loops to report them gone. A permanently-dead shard surfaces here
	// too, but on the way out it is informational, not fatal.
	if err := <-supDone; err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "clusterfleet: supervisor:", err)
	}
	fmt.Println("clusterfleet: bye")
	return nil
}
