package main

import (
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{}); err == nil || !strings.Contains(err.Error(), "-bin") {
		t.Fatalf("missing -bin not rejected: %v", err)
	}
	if err := run([]string{"-bin", "/bin/true", "-shards", "0"}); err == nil || !strings.Contains(err.Error(), "-shards") {
		t.Fatalf("zero shards not rejected: %v", err)
	}
	if err := run([]string{"-bin", "/bin/true", "-replicas", "0"}); err == nil || !strings.Contains(err.Error(), "-replicas") {
		t.Fatalf("zero replicas not rejected: %v", err)
	}
	if err := run([]string{"-bin", "/bin/true", "-shards", "2", "-replicas", "3"}); err == nil || !strings.Contains(err.Error(), "-replicas") {
		t.Fatalf("replicas > shards not rejected: %v", err)
	}
	if err := run([]string{"-bin", "/bin/true", "-replicas", "2", "-ack-quorum", "3"}); err == nil || !strings.Contains(err.Error(), "-ack-quorum") {
		t.Fatalf("ack-quorum > replicas not rejected: %v", err)
	}
	if err := run([]string{"-bin", "/bin/true", "-ack-quorum", "-1"}); err == nil || !strings.Contains(err.Error(), "-ack-quorum") {
		t.Fatalf("negative ack-quorum not rejected: %v", err)
	}
}
