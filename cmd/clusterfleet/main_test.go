package main

import (
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{}); err == nil || !strings.Contains(err.Error(), "-bin") {
		t.Fatalf("missing -bin not rejected: %v", err)
	}
	if err := run([]string{"-bin", "/bin/true", "-shards", "0"}); err == nil || !strings.Contains(err.Error(), "-shards") {
		t.Fatalf("zero shards not rejected: %v", err)
	}
}
