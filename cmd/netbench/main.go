// Command netbench runs the network experiments (paper Section III-C): the
// Fig. 4 all-pairs bandwidth heatmap with degraded-node detection, the
// Fig. 5 bandwidth distribution, and — with -des — a real Sendrecv loop
// through the discrete-event MPI runtime for one node pair. Flags come
// from the experiment registry's "net" schema plus the driver in
// internal/experiment/cli.
package main

import (
	"os"

	"clustereval/internal/experiment/cli"
)

func main() { cli.Main("netbench", os.Args[1:]) }
