// Command netbench runs the network experiments (paper Section III-C): the
// Fig. 4 all-pairs bandwidth heatmap with degraded-node detection, the
// Fig. 5 bandwidth distribution, and — with -des — a real Sendrecv loop
// through the discrete-event MPI runtime for one node pair.
package main

import (
	"flag"
	"fmt"
	"os"

	"clustereval/internal/bench/osu"
	"clustereval/internal/figures"
	"clustereval/internal/interconnect"
	"clustereval/internal/topology"
	"clustereval/internal/units"
)

func main() {
	size := flag.Int("size", 256, "message size in bytes for the heatmap")
	des := flag.Bool("des", false, "also measure one pair through the DES-backed MPI runtime")
	seed := flag.Uint64("seed", 0, "noise seed for the fabric (0 = paper default); identical seeds reproduce identical numbers")
	flag.Parse()

	if err := run(units.Bytes(*size), *des, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "netbench:", err)
		os.Exit(1)
	}
}

func run(size units.Bytes, des bool, seed uint64) error {
	p := figures.WithSeed(seed)
	hm, raw, err := p.Figure4(size)
	if err != nil {
		return err
	}
	if err := hm.Render(os.Stdout); err != nil {
		return err
	}
	for _, d := range raw.DegradedReceivers(0.5) {
		fmt.Printf("degraded receiver: node %d (%s): recv %v vs send %v\n",
			d, topology.TofuNodeName(d), raw.MeanAsReceiver(d), raw.MeanAsSender(d))
	}
	fmt.Println()

	t, dist, err := p.Figure5()
	if err != nil {
		return err
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	bimodal := dist.BimodalSizes(0.12)
	if len(bimodal) > 0 {
		fmt.Printf("bimodal sizes: %v .. %v\n", bimodal[0], bimodal[len(bimodal)-1])
	}

	if des {
		fab, err := interconnect.NewTofuD(p.Arm, 192)
		if err != nil {
			return err
		}
		for _, s := range []units.Bytes{256, 64 * 1024, 4 << 20} {
			bw, err := osu.MeasurePair(fab, 0, 100, s, 64)
			if err != nil {
				return err
			}
			fmt.Printf("DES Sendrecv loop, nodes 0->100, %10v: %v\n", s, bw)
		}
		// osu_latency-style ping-pong sweep through the DES runtime.
		sizes := []units.Bytes{0, 8, 256, 4096, 64 * 1024}
		pts, err := osu.MeasureLatency(fab, 0, 100, sizes, 50)
		if err != nil {
			return err
		}
		fmt.Println("\nDES ping-pong latency (half round trip), nodes 0->100:")
		for _, p := range pts {
			fmt.Printf("  %10v: %v\n", p.Size, p.Latency)
		}
	}
	return nil
}
