package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"

	"clustereval/internal/experiment/cli"
	"clustereval/internal/units"
)

// capture runs f with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	errRun := f()
	w.Close()
	os.Stdout = old
	out := <-done
	if errRun != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", errRun, out)
	}
	return out
}

func TestRunFlagCombinations(t *testing.T) {
	tests := []struct {
		name    string
		size    units.Bytes
		des     bool
		seed    uint64
		want    []string
		notWant []string
	}{
		{
			name: "defaults",
			size: 256,
			want: []string{
				"Fig. 4: bandwidth of all node pairs (msg size 256 B)",
				"degraded receiver: node 23",
				"Fig. 5: bandwidth distribution over all node pairs",
				"bimodal sizes:",
			},
			notWant: []string{"DES Sendrecv loop"},
		},
		{
			name: "large message",
			size: 4 << 20,
			want: []string{"msg size 4 MiB", "degraded receiver: node 23"},
		},
		{
			name: "des loop",
			size: 256,
			des:  true,
			want: []string{
				"DES Sendrecv loop, nodes 0->100",
				"DES ping-pong latency (half round trip), nodes 0->100:",
			},
		},
		{
			name: "seeded",
			size: 256,
			seed: 42,
			// The degraded node is injected, not noise: it must survive any
			// reseeding of the fabric.
			want: []string{"degraded receiver: node 23", "bimodal sizes:"},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			out := capture(t, func() error { return cli.NetBench(tc.size, tc.des, tc.seed) })
			for _, w := range tc.want {
				if !strings.Contains(out, w) {
					t.Errorf("output missing %q:\n%s", w, out)
				}
			}
			for _, nw := range tc.notWant {
				if strings.Contains(out, nw) {
					t.Errorf("output unexpectedly contains %q", nw)
				}
			}
		})
	}
}

// TestSeedReproducibility pins the -seed contract: the same seed yields
// byte-identical output, and the paper seed (0) differs from a reseeded run
// somewhere in the DES bandwidth numbers.
func TestSeedReproducibility(t *testing.T) {
	a := capture(t, func() error { return cli.NetBench(256, true, 7) })
	b := capture(t, func() error { return cli.NetBench(256, true, 7) })
	if a != b {
		t.Error("same seed produced different output")
	}
	c := capture(t, func() error { return cli.NetBench(256, true, 0) })
	if a == c {
		t.Error("seed 7 output identical to paper-default output; seed not plumbed through")
	}
}
