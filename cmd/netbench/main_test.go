package main

import "testing"

func TestRunWithDES(t *testing.T) {
	if err := run(256, true); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}
