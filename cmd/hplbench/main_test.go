package main

import (
	"testing"

	"clustereval/internal/experiment/cli"
)

func TestVerifyMode(t *testing.T) {
	if err := cli.HPLBench(120, 32, 4); err != nil {
		t.Fatalf("verify run failed: %v", err)
	}
}

func TestModelMode(t *testing.T) {
	if err := cli.HPLBench(0, 64, 8); err != nil {
		t.Fatalf("model run failed: %v", err)
	}
}
