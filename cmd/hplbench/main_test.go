package main

import "testing"

func TestVerifyMode(t *testing.T) {
	if err := run(120, 32, 4); err != nil {
		t.Fatalf("verify run failed: %v", err)
	}
}

func TestModelMode(t *testing.T) {
	if err := run(0, 64, 8); err != nil {
		t.Fatalf("model run failed: %v", err)
	}
}
