// Command hplbench runs the LINPACK experiment (paper Section IV-A,
// Fig. 6): the scalability model on both clusters, and — with -verify — a
// real blocked LU factorization with the official HPL residual check.
// Flags come from the experiment registry's "hpl" schema plus the driver
// in internal/experiment/cli.
package main

import (
	"os"

	"clustereval/internal/experiment/cli"
)

func main() { cli.Main("hplbench", os.Args[1:]) }
