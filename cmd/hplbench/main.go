// Command hplbench runs the LINPACK experiment (paper Section IV-A,
// Fig. 6): the scalability model on both clusters, and — with -verify — a
// real blocked LU factorization with the official HPL residual check.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"clustereval/internal/figures"
	"clustereval/internal/hpl"
	"clustereval/internal/machine"
	"clustereval/internal/omp"
)

func main() {
	verify := flag.Int("verify", 0, "factorize a real NxN system and check the HPL residual")
	nb := flag.Int("nb", 64, "block size for -verify")
	threads := flag.Int("threads", 8, "worker threads for -verify")
	flag.Parse()

	if err := run(*verify, *nb, *threads); err != nil {
		fmt.Fprintln(os.Stderr, "hplbench:", err)
		os.Exit(1)
	}
}

func run(verify, nb, threads int) error {
	if verify > 0 {
		team, err := omp.NewTeam(machine.CTEArm().Node, threads, omp.Spread)
		if err != nil {
			return err
		}
		a := hpl.RandomSPDish(verify, 1)
		ones := make([]float64, verify)
		for i := range ones {
			ones[i] = 1
		}
		b := a.MatVec(ones)
		start := time.Now()
		lu, err := hpl.Factorize(a, nb, team)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		x, err := lu.Solve(b)
		if err != nil {
			return err
		}
		resid := hpl.Residual(a, x, b)
		status := "PASSED"
		if resid > 16 {
			status = "FAILED"
		}
		rate := hpl.FlopCount(verify) / elapsed.Seconds() / 1e9
		fmt.Printf("N=%d nb=%d threads=%d: %.2f GFlop/s (host), residual %.3g -> %s\n",
			verify, nb, threads, rate, resid, status)
		if status == "FAILED" {
			return fmt.Errorf("HPL residual check failed")
		}
		return nil
	}

	p := figures.Default()
	plot, runs, err := p.Figure6()
	if err != nil {
		return err
	}
	if err := plot.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	for _, m := range []string{"CTE-Arm", "MareNostrum 4"} {
		for _, r := range runs[m] {
			fmt.Printf("%-16s nodes=%3d N=%8d P x Q=%2dx%-3d %12s  %5.1f%% of peak  (t=%s)\n",
				m, r.Nodes, r.N, r.P, r.Q, r.Perf.String(), r.PercentOfPeak, r.Time)
		}
	}
	return nil
}
