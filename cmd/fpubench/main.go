// Command fpubench runs the FPU µKernel experiment (paper Section III-A,
// Fig. 1): six scalar/vector x half/single/double variants on one core of
// each machine, plus the paper's variability sweeps across cores and
// nodes. Flags come from the experiment registry's "fpu" schema plus the
// driver in internal/experiment/cli.
package main

import (
	"os"

	"clustereval/internal/experiment/cli"
)

func main() { cli.Main("fpubench", os.Args[1:]) }
