// Command fpubench runs the FPU µKernel experiment (paper Section III-A,
// Fig. 1): six scalar/vector x half/single/double variants on one core of
// each machine, plus the paper's variability sweeps across cores and nodes.
package main

import (
	"flag"
	"fmt"
	"os"

	"clustereval/internal/bench/fpu"
	"clustereval/internal/figures"
	"clustereval/internal/machine"
)

func main() {
	iters := flag.Int("iters", fpu.DefaultIterations, "kernel iterations")
	variability := flag.Bool("variability", false, "also run the within-node and across-node variability sweeps")
	flag.Parse()

	if err := run(*iters, *variability); err != nil {
		fmt.Fprintln(os.Stderr, "fpubench:", err)
		os.Exit(1)
	}
}

func run(iters int, variability bool) error {
	machines := []machine.Machine{machine.CTEArm(), machine.MareNostrum4()}
	bars, err := fpu.Figure1(machines, iters)
	if err != nil {
		return err
	}
	p := figures.Default()
	t, err := p.Figure1()
	if err != nil {
		return err
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	// Checksums prove real arithmetic ran.
	fmt.Println()
	for _, b := range bars {
		if b.Supported {
			fmt.Printf("checksum %-14s %-14s %.6g\n", b.Variant.Name(), b.Machine, b.Checksum)
		}
	}

	if variability {
		fmt.Println()
		for _, m := range machines {
			cv, err := fpu.NodeVariability(m, iters, 1)
			if err != nil {
				return err
			}
			fmt.Printf("%-16s within-node variability: %.3f%%\n", m.Name, 100*cv)
			cv, err = fpu.ClusterVariability(m, min(m.Nodes, 192), iters, 1)
			if err != nil {
				return err
			}
			fmt.Printf("%-16s across-node variability: %.3f%%\n", m.Name, 100*cv)
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
