package main

import (
	"testing"

	"clustereval/internal/experiment/cli"
)

func TestRunWithVariability(t *testing.T) {
	if err := cli.FPUBench(500, true); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunRejectsBadIterations(t *testing.T) {
	if err := cli.FPUBench(0, false); err == nil {
		t.Error("zero iterations accepted")
	}
}
