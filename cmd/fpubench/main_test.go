package main

import "testing"

func TestRunWithVariability(t *testing.T) {
	if err := run(500, true); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunRejectsBadIterations(t *testing.T) {
	if err := run(0, false); err == nil {
		t.Error("zero iterations accepted")
	}
}
