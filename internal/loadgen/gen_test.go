package loadgen

import (
	"encoding/json"
	"strings"
	"testing"

	"clustereval/internal/service"
)

func TestGeneratorIsDeterministic(t *testing.T) {
	a := NewGenerator(MixConfig{Seed: 42})
	b := NewGenerator(MixConfig{Seed: 42})
	for i := 0; i < 500; i++ {
		if a.Spec(i) != b.Spec(i) {
			t.Fatalf("spec %d diverged between identically-seeded generators", i)
		}
	}
	c := NewGenerator(MixConfig{Seed: 43})
	same := 0
	for i := 0; i < 500; i++ {
		if a.Spec(i) == c.Spec(i) {
			same++
		}
	}
	// The fault tranche is seed-dependent too, so a different seed should
	// disagree almost everywhere.
	if same > 100 {
		t.Fatalf("seeds 42 and 43 agree on %d/500 specs; stream is not seed-driven", same)
	}
}

func TestGeneratorSpecsAreValid(t *testing.T) {
	g := NewGenerator(MixConfig{Seed: 7})
	for i := 0; i < 400; i++ {
		raw := g.Spec(i)
		var spec service.JobSpec
		if err := json.Unmarshal([]byte(raw), &spec); err != nil {
			t.Fatalf("spec %d is not JSON: %v\n%s", i, err, raw)
		}
		if _, _, err := service.Canonicalize(spec); err != nil {
			t.Fatalf("spec %d does not canonicalize: %v\n%s", i, err, raw)
		}
	}
}

func TestGeneratorFaultTranche(t *testing.T) {
	g := NewGenerator(MixConfig{Seed: 7, FaultEvery: 10})
	fault := g.FaultSpec()
	if !strings.Contains(fault, `"faults"`) || !strings.Contains(fault, `"failed":true`) {
		t.Fatalf("fault spec carries no node failure: %s", fault)
	}
	for i := 0; i < 200; i++ {
		isFault := i > 0 && i%10 == 0
		if g.IsFault(i) != isFault {
			t.Fatalf("IsFault(%d) = %v, want %v", i, g.IsFault(i), isFault)
		}
		if isFault && g.Spec(i) != fault {
			t.Fatalf("fault submission %d differs from the constant fault spec", i)
		}
		if !isFault && g.Spec(i) == fault {
			t.Fatalf("clean submission %d emitted the fault spec", i)
		}
	}
	// Disabled tranche.
	off := NewGenerator(MixConfig{Seed: 7, FaultEvery: -1})
	for i := 0; i < 100; i++ {
		if off.IsFault(i) {
			t.Fatalf("FaultEvery<0 still emits fault at %d", i)
		}
	}
}

func TestGeneratorCacheHitMix(t *testing.T) {
	g := NewGenerator(MixConfig{Seed: 7, UniqueSpecs: 16, FaultEvery: -1, DeadlineEvery: -1})
	seen := map[string]int{}
	for i := 0; i < 400; i++ {
		seen[g.Spec(i)]++
	}
	if len(seen) > 16 {
		t.Fatalf("pool of 16 produced %d distinct specs", len(seen))
	}
	repeats := 0
	for _, n := range seen {
		if n > 1 {
			repeats++
		}
	}
	if repeats == 0 {
		t.Fatal("400 draws from a 16-spec pool produced no repeats; cache hits are impossible")
	}
}

func TestGeneratorDeadlineTranche(t *testing.T) {
	g := NewGenerator(MixConfig{Seed: 7, DeadlineEvery: 5, DeadlineMS: 1234, FaultEvery: -1})
	withDeadline := 0
	for i := 0; i < 100; i++ {
		spec := g.Spec(i)
		if strings.Contains(spec, `"deadline_ms":1234`) {
			withDeadline++
			var parsed service.JobSpec
			if err := json.Unmarshal([]byte(spec), &parsed); err != nil {
				t.Fatalf("deadline spec %d is not JSON: %v\n%s", i, err, spec)
			}
		}
	}
	if withDeadline != 20 {
		t.Fatalf("%d/100 specs carry the deadline, want 20", withDeadline)
	}
}
