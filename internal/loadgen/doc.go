// Package loadgen generates sustained, reproducible load against a
// clusterd daemon or a clusterfleet coordinator and judges the observed
// service levels.
//
// The three pieces compose but stand alone:
//
//   - Generator derives the i-th job spec purely from (seed, i) via the
//     simulator's own xrand streams, so two runs with the same seed
//     submit byte-identical traffic: a mixed-kind clean pool sized to
//     dial the cache hit rate, a single repeated fault-carrying spec
//     (key-affine, so it always lands on — and eventually trips the
//     breaker of — the same shard), and a deadline-bearing tranche.
//   - Limiter paces submissions at a fixed rate through an injected
//     clock, keeping the package clusterlint-clean and the pacing
//     testable without wall-clock sleeps.
//   - Runner drives N concurrent submitters through the Limiter, polls
//     every accepted job to a terminal state, and folds the outcomes
//     into a Report whose Check method asserts SLOs: minimum
//     throughput, latency percentiles, zero lost jobs, zero clean-job
//     failures.
//
// cmd/loadgen wraps Runner in flags; scripts/loadtest builds the SLO
// gate in CI on top of that binary.
package loadgen
