package loadgen

import "time"

// hostNow, hostSince and hostSleep are the load generator's only
// wall-clock access: submit/end-to-end latency measurement, rate-limiter
// pacing and poll intervals. None of it feeds simulated results. Binding
// the functions as package variables keeps every wall-clock read
// auditable at this one declaration — and overridable in tests — which
// is the injected-clock shape the determinism analyzer asks for.
var (
	hostNow   = time.Now
	hostSince = time.Since
	hostSleep = time.Sleep
)
