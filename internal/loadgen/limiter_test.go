package loadgen

import (
	"testing"
	"time"
)

// fakeClock drives a Limiter without wall-clock sleeps: sleeping just
// advances the clock.
type fakeClock struct {
	t      time.Time
	slept  []time.Duration
	asleep time.Duration
}

func (c *fakeClock) now() time.Time { return c.t }

func (c *fakeClock) sleep(d time.Duration) {
	c.slept = append(c.slept, d)
	c.asleep += d
	c.t = c.t.Add(d)
}

func TestLimiterPacesToRate(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	l := newLimiter(100, clk.now, clk.sleep) // 10ms interval

	// First call is immediate; each subsequent call earns one interval.
	for i := 0; i < 10; i++ {
		l.Wait()
	}
	if got, want := clk.asleep, 90*time.Millisecond; got != want {
		t.Fatalf("10 waits at 100/s slept %v total, want %v", got, want)
	}
	for _, d := range clk.slept {
		if d > 10*time.Millisecond {
			t.Fatalf("single wait slept %v, above the 10ms interval", d)
		}
	}
}

func TestLimiterDoesNotAccumulateIdleCredit(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	l := newLimiter(100, clk.now, clk.sleep)
	l.Wait()
	// A long idle gap must not let the next burst run free: slots restart
	// from "now", spaced one interval apart.
	clk.t = clk.t.Add(10 * time.Second)
	before := clk.asleep
	l.Wait() // immediate: slot was long overdue
	l.Wait() // must wait one interval
	if got, want := clk.asleep-before, 10*time.Millisecond; got != want {
		t.Fatalf("post-idle pair slept %v, want %v", got, want)
	}
}

func TestLimiterNilAndUnthrottled(t *testing.T) {
	if l := NewLimiter(0); l != nil {
		t.Fatal("rate 0 should disable the limiter")
	}
	if l := NewLimiter(-3); l != nil {
		t.Fatal("negative rate should disable the limiter")
	}
	var l *Limiter
	l.Wait() // must not panic
}
