package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Config shapes one load run.
type Config struct {
	// BaseURL is the clusterd daemon or clusterfleet coordinator to load.
	BaseURL string
	// Jobs is how many submissions to make.
	Jobs int
	// Concurrency is the number of concurrent submitters; 0 means 8.
	Concurrency int
	// RatePerSec paces submissions fleet-wide; <= 0 means unthrottled.
	RatePerSec float64
	// Mix dials the traffic composition.
	Mix MixConfig
	// PollInterval spaces the completion polls; 0 means 20ms.
	PollInterval time.Duration
	// PollTimeout bounds how long the runner waits for accepted jobs to
	// reach a terminal state after the last submission; 0 means 2m.
	PollTimeout time.Duration
	// Client is the HTTP client; nil means a client with a 30s timeout.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 20 * time.Millisecond
	}
	if c.PollTimeout <= 0 {
		c.PollTimeout = 2 * time.Minute
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return c
}

// Runner executes a load run against one endpoint.
type Runner struct {
	cfg Config
	gen *Generator
	lim *Limiter
}

// NewRunner validates the config and builds the runner.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL is required")
	}
	if cfg.Jobs <= 0 {
		return nil, fmt.Errorf("loadgen: Jobs must be positive, got %d", cfg.Jobs)
	}
	cfg = cfg.withDefaults()
	return &Runner{
		cfg: cfg,
		gen: NewGenerator(cfg.Mix),
		lim: NewLimiter(cfg.RatePerSec),
	}, nil
}

// Generator exposes the runner's spec stream (harnesses use it to aim
// assertions at the fault tranche).
func (r *Runner) Generator() *Generator { return r.gen }

// jobView is the subset of the daemon's job view the runner reads.
type jobView struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error"`
}

// accepted is one queued submission awaiting its terminal state.
type accepted struct {
	id       string
	fault    bool
	submitAt time.Time
}

// Run submits the configured traffic, waits for every accepted job to
// reach a terminal state, and returns the folded Report. It returns an
// error only for harness-level failures (context cancelled); service
// misbehaviour is data, reported in the Report and judged by Check.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	cfg := r.cfg
	rep := &Report{Jobs: cfg.Jobs}
	start := hostNow()

	indices := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var pending []accepted
	e2e := []float64{}
	submitLat := []float64{}

	worker := func() {
		defer wg.Done()
		for i := range indices {
			if ctx.Err() != nil {
				continue // drain the channel; counted as unsubmitted
			}
			r.lim.Wait()
			spec := r.gen.Spec(i)
			fault := r.gen.IsFault(i)
			sentAt := hostNow()
			view, status, err := r.submit(ctx, spec)
			lat := hostSince(sentAt).Seconds()

			mu.Lock()
			if fault {
				rep.FaultJobs++
			}
			switch {
			case err != nil:
				rep.Transport++
			case status == http.StatusOK:
				rep.Submitted++
				rep.Cached++
				submitLat = append(submitLat, lat)
				e2e = append(e2e, lat)
			case status == http.StatusAccepted:
				rep.Submitted++
				rep.Accepted++
				submitLat = append(submitLat, lat)
				pending = append(pending, accepted{id: view.ID, fault: fault, submitAt: sentAt})
			case status == http.StatusTooManyRequests:
				rep.Submitted++
				rep.Shed++
			case status == http.StatusServiceUnavailable:
				rep.Submitted++
				rep.Unavailable++
			case status == http.StatusBadRequest:
				rep.Submitted++
				rep.Invalid++
			default:
				rep.Submitted++
				rep.OtherHTTP++
			}
			mu.Unlock()
		}
	}

	wg.Add(cfg.Concurrency)
	for w := 0; w < cfg.Concurrency; w++ {
		go worker()
	}
	for i := 0; i < cfg.Jobs; i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return rep, err
	}

	// Poll phase: chase every accepted job to a terminal state.
	deadline := hostNow().Add(cfg.PollTimeout)
	shards := splitWork(pending, cfg.Concurrency)
	wg.Add(len(shards))
	for _, part := range shards {
		part := part
		go func() {
			defer wg.Done()
			remaining := part
			for len(remaining) > 0 && ctx.Err() == nil && hostNow().Before(deadline) {
				next := remaining[:0]
				for _, a := range remaining {
					view, ok := r.poll(ctx, a.id)
					if !ok {
						next = append(next, a)
						continue
					}
					switch view.State {
					case "done", "failed", "cancelled":
						lat := hostSince(a.submitAt).Seconds()
						mu.Lock()
						e2e = append(e2e, lat)
						switch view.State {
						case "done":
							rep.Done++
						case "failed":
							rep.Failed++
							if !a.fault {
								rep.CleanFailures++
							}
						case "cancelled":
							rep.Cancelled++
						}
						mu.Unlock()
					default:
						next = append(next, a)
					}
				}
				remaining = next
				if len(remaining) > 0 {
					hostSleep(cfg.PollInterval)
				}
			}
			if len(remaining) > 0 {
				mu.Lock()
				rep.Lost += len(remaining)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return rep, err
	}

	rep.WallSeconds = hostSince(start).Seconds()
	if rep.WallSeconds > 0 {
		rep.ThroughputPerSec = float64(rep.Cached+rep.Done+rep.Failed+rep.Cancelled) / rep.WallSeconds
	}
	rep.SubmitLatency = summarize(submitLat)
	rep.E2ELatency = summarize(e2e)
	return rep, nil
}

// submit POSTs one spec; the returned status is 0 when err != nil.
func (r *Runner) submit(ctx context.Context, spec string) (jobView, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.cfg.BaseURL+"/v1/jobs", strings.NewReader(spec))
	if err != nil {
		return jobView{}, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return jobView{}, 0, err
	}
	defer resp.Body.Close()
	var view jobView
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	_ = json.Unmarshal(body, &view)
	return view, resp.StatusCode, nil
}

// poll GETs one job; ok is false when the answer was not a readable job
// view (transient coordinator 503s during failover land here and are
// simply retried on the next sweep).
func (r *Runner) poll(ctx context.Context, id string) (jobView, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return jobView{}, false
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return jobView{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		return jobView{}, false
	}
	var view jobView
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&view); err != nil {
		return jobView{}, false
	}
	return view, true
}

// splitWork deals the accepted jobs round-robin onto n pollers.
func splitWork(jobs []accepted, n int) [][]accepted {
	if len(jobs) == 0 {
		return nil
	}
	if n > len(jobs) {
		n = len(jobs)
	}
	parts := make([][]accepted, n)
	for i, j := range jobs {
		parts[i%n] = append(parts[i%n], j)
	}
	return parts
}
