package loadgen

import (
	"fmt"
	"io"
	"sort"
)

// LatencySummary condenses a latency population into the percentiles the
// SLOs speak, in seconds.
type LatencySummary struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
	Max   float64 `json:"max_seconds"`
}

// summarize folds a sample slice (seconds) into a LatencySummary.
func summarize(samples []float64) LatencySummary {
	s := LatencySummary{Count: len(samples)}
	if len(samples) == 0 {
		return s
	}
	sorted := append([]float64{}, samples...)
	sort.Float64s(sorted)
	s.P50 = percentile(sorted, 0.50)
	s.P95 = percentile(sorted, 0.95)
	s.P99 = percentile(sorted, 0.99)
	s.Max = sorted[len(sorted)-1]
	return s
}

// percentile reads the p-quantile from an ascending-sorted slice using
// the nearest-rank method.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Report is a load run's complete outcome.
type Report struct {
	Jobs      int `json:"jobs"`      // submissions attempted
	Submitted int `json:"submitted"` // requests that got an HTTP response

	// Submission verdicts.
	Accepted    int `json:"accepted"`    // 202: queued on a shard
	Cached      int `json:"cached"`      // 200: served from the result cache
	Shed        int `json:"shed"`        // 429: admission control or open breaker
	Unavailable int `json:"unavailable"` // 503: queue full / draining
	Invalid     int `json:"invalid"`     // 400: generator produced a bad spec (a bug)
	OtherHTTP   int `json:"other_http"`  // any other status (a bug)
	Transport   int `json:"transport"`   // submissions that died before an HTTP status
	FaultJobs   int `json:"fault_jobs"`  // submissions carrying the fault spec
	Deadlined   int `json:"deadlined"`   // accepted jobs that expired their deadline

	// Terminal outcomes of accepted jobs.
	Done          int `json:"done"`
	Failed        int `json:"failed"`
	Cancelled     int `json:"cancelled"`
	CleanFailures int `json:"clean_failures"` // failed jobs that carried no fault
	Lost          int `json:"lost"`           // accepted but never reached a terminal state

	WallSeconds      float64 `json:"wall_seconds"`
	ThroughputPerSec float64 `json:"throughput_per_sec"` // terminal outcomes per second

	SubmitLatency LatencySummary `json:"submit_latency"` // POST round-trip
	E2ELatency    LatencySummary `json:"e2e_latency"`    // submit -> observed terminal
}

// SLO is the contract a load run is judged against. Zero-valued fields
// are not checked, except the always-on invariants: no lost jobs, no
// clean-job failures, no invalid specs, no unclassified statuses.
type SLO struct {
	// MinThroughputPerSec is the floor on terminal outcomes per second.
	MinThroughputPerSec float64
	// MaxSubmitP99Seconds bounds the submission round-trip p99.
	MaxSubmitP99Seconds float64
	// MaxE2EP99Seconds bounds the submit-to-terminal p99.
	MaxE2EP99Seconds float64
	// MaxShedFraction bounds shed+unavailable as a fraction of
	// submissions; 0 means "not checked" — sheds are an overload signal,
	// not an error.
	MaxShedFraction float64
	// MaxTransportErrors bounds submissions that failed below HTTP.
	// (Checked even when zero: transport errors are never acceptable
	// unless explicitly budgeted.)
	MaxTransportErrors int
}

// Check returns every violated clause, empty when the run met the SLO.
func (r *Report) Check(slo SLO) []string {
	var v []string
	if r.Lost > 0 {
		v = append(v, fmt.Sprintf("%d job(s) were accepted but never reached a terminal state", r.Lost))
	}
	if r.CleanFailures > 0 {
		v = append(v, fmt.Sprintf("%d clean job(s) failed", r.CleanFailures))
	}
	if r.Invalid > 0 {
		v = append(v, fmt.Sprintf("%d submission(s) were rejected as invalid specs", r.Invalid))
	}
	if r.OtherHTTP > 0 {
		v = append(v, fmt.Sprintf("%d submission(s) got an unclassified HTTP status", r.OtherHTTP))
	}
	if r.Transport > slo.MaxTransportErrors {
		v = append(v, fmt.Sprintf("%d transport error(s), budget %d", r.Transport, slo.MaxTransportErrors))
	}
	if slo.MinThroughputPerSec > 0 && r.ThroughputPerSec < slo.MinThroughputPerSec {
		v = append(v, fmt.Sprintf("throughput %.1f/s below SLO %.1f/s", r.ThroughputPerSec, slo.MinThroughputPerSec))
	}
	if slo.MaxSubmitP99Seconds > 0 && r.SubmitLatency.P99 > slo.MaxSubmitP99Seconds {
		v = append(v, fmt.Sprintf("submit p99 %.3fs above SLO %.3fs", r.SubmitLatency.P99, slo.MaxSubmitP99Seconds))
	}
	if slo.MaxE2EP99Seconds > 0 && r.E2ELatency.P99 > slo.MaxE2EP99Seconds {
		v = append(v, fmt.Sprintf("e2e p99 %.3fs above SLO %.3fs", r.E2ELatency.P99, slo.MaxE2EP99Seconds))
	}
	if slo.MaxShedFraction > 0 && r.Submitted > 0 {
		if frac := float64(r.Shed+r.Unavailable) / float64(r.Submitted); frac > slo.MaxShedFraction {
			v = append(v, fmt.Sprintf("shed fraction %.3f above SLO %.3f", frac, slo.MaxShedFraction))
		}
	}
	return v
}

// WriteSummary renders the human-readable run summary.
func (r *Report) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "loadgen: %d submissions in %.2fs — %.1f terminal/s\n",
		r.Jobs, r.WallSeconds, r.ThroughputPerSec)
	fmt.Fprintf(w, "  submit: %d accepted, %d cached, %d shed, %d unavailable, %d invalid, %d transport\n",
		r.Accepted, r.Cached, r.Shed, r.Unavailable, r.Invalid, r.Transport)
	fmt.Fprintf(w, "  outcome: %d done, %d failed (%d clean), %d cancelled, %d lost\n",
		r.Done, r.Failed, r.CleanFailures, r.Cancelled, r.Lost)
	fmt.Fprintf(w, "  submit latency: p50 %.1fms p95 %.1fms p99 %.1fms max %.1fms\n",
		r.SubmitLatency.P50*1e3, r.SubmitLatency.P95*1e3, r.SubmitLatency.P99*1e3, r.SubmitLatency.Max*1e3)
	fmt.Fprintf(w, "  e2e latency:    p50 %.1fms p95 %.1fms p99 %.1fms max %.1fms\n",
		r.E2ELatency.P50*1e3, r.E2ELatency.P95*1e3, r.E2ELatency.P99*1e3, r.E2ELatency.Max*1e3)
}
