package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"clustereval/internal/service"
)

func TestRunnerAgainstService(t *testing.T) {
	svc := service.New(service.Config{Workers: 4, QueueDepth: 512})
	srv := httptest.NewServer(service.NewServer(svc))
	defer srv.Close()
	defer func() { _ = svc.Close(context.Background()) }()

	// DeadlineMS is deliberately huge: under -race the simulations run
	// an order of magnitude slower, and queued jobs expiring a "generous"
	// 60s deadline would read as clean failures.
	r, err := NewRunner(Config{
		BaseURL:     srv.URL,
		Jobs:        200,
		Concurrency: 8,
		Mix:         MixConfig{Seed: 11, UniqueSpecs: 32, FaultEvery: 15, DeadlineMS: 600000},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if rep.Submitted+rep.Transport != rep.Jobs {
		t.Fatalf("submitted %d + transport %d != jobs %d", rep.Submitted, rep.Transport, rep.Jobs)
	}
	if rep.Transport != 0 {
		t.Fatalf("%d transport errors against a local server", rep.Transport)
	}
	if rep.Lost != 0 {
		t.Fatalf("%d jobs lost", rep.Lost)
	}
	if rep.CleanFailures != 0 {
		t.Fatalf("%d clean jobs failed", rep.CleanFailures)
	}
	if rep.Invalid != 0 || rep.OtherHTTP != 0 {
		t.Fatalf("generator produced rejected traffic: %d invalid, %d other", rep.Invalid, rep.OtherHTTP)
	}
	// 200 draws from a 32-spec pool must hit the cache.
	if rep.Cached == 0 {
		t.Fatal("no cache hits in a repeat-heavy mix")
	}
	// The fault tranche ran and failed (or was shed by the breaker once
	// it opened) — it must never be counted as clean failures.
	if rep.FaultJobs == 0 {
		t.Fatal("no fault jobs were submitted")
	}
	if rep.Failed+rep.Shed == 0 {
		t.Fatal("fault tranche produced neither failures nor breaker sheds")
	}
	// Every terminal outcome is accounted for.
	terminal := rep.Cached + rep.Done + rep.Failed + rep.Cancelled
	if terminal+rep.Shed+rep.Unavailable != rep.Submitted {
		t.Fatalf("outcomes don't add up: %d terminal + %d shed + %d unavailable != %d submitted",
			terminal, rep.Shed, rep.Unavailable, rep.Submitted)
	}
	if rep.ThroughputPerSec <= 0 {
		t.Fatalf("throughput %.2f/s", rep.ThroughputPerSec)
	}
	if rep.SubmitLatency.Count == 0 || rep.E2ELatency.Count == 0 {
		t.Fatal("latency populations are empty")
	}

	// The run should pass a sane SLO and fail an absurd one.
	if v := rep.Check(SLO{MinThroughputPerSec: 1, MaxSubmitP99Seconds: 30, MaxE2EP99Seconds: 60}); len(v) != 0 {
		t.Fatalf("sane SLO violated: %v", v)
	}
	if v := rep.Check(SLO{MinThroughputPerSec: 1e9}); len(v) == 0 {
		t.Fatal("absurd throughput SLO not flagged")
	}
}

func TestRunnerCountsSheds(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"shedding load"}`, http.StatusTooManyRequests)
	}))
	defer stub.Close()

	r, err := NewRunner(Config{BaseURL: stub.URL, Jobs: 20, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed != 20 {
		t.Fatalf("shed = %d, want 20", rep.Shed)
	}
	// Sheds are not violations unless the SLO bounds them.
	if v := rep.Check(SLO{}); len(v) != 0 {
		t.Fatalf("all-shed run violated the default SLO: %v", v)
	}
	if v := rep.Check(SLO{MaxShedFraction: 0.5}); len(v) == 0 {
		t.Fatal("shed fraction 1.0 passed a 0.5 bound")
	}
}

func TestRunnerValidation(t *testing.T) {
	if _, err := NewRunner(Config{Jobs: 1}); err == nil {
		t.Fatal("missing BaseURL accepted")
	}
	if _, err := NewRunner(Config{BaseURL: "http://x", Jobs: 0}); err == nil {
		t.Fatal("zero jobs accepted")
	}
}

func TestPercentiles(t *testing.T) {
	s := summarize([]float64{4, 1, 3, 2, 5})
	if s.P50 != 3 || s.Max != 5 || s.Count != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P99 != 5 {
		t.Fatalf("p99 of 5 samples = %g, want the max", s.P99)
	}
	if z := summarize(nil); z.Count != 0 || z.Max != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}
