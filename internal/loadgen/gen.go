package loadgen

import (
	"fmt"

	"clustereval/internal/xrand"
)

// MixConfig dials the traffic mix. The zero value is usable: 64 unique
// clean specs, a fault job every 10 submissions, a deadline on every 5th
// clean job.
type MixConfig struct {
	// Seed anchors the whole stream; identical seeds generate identical
	// traffic.
	Seed uint64
	// UniqueSpecs is the size of the clean spec pool the stream draws
	// from. Smaller pools mean more repeats, i.e. a higher cache hit
	// rate; 0 means 64.
	UniqueSpecs int
	// FaultEvery makes every n-th submission the stream's single
	// fault-carrying spec. The spec is constant, so consistent-hash
	// routing sends every occurrence to the same shard, whose circuit
	// breaker accumulates the failures. 0 means 10; negative disables.
	FaultEvery int
	// DeadlineEvery attaches a deadline_ms to every n-th clean job.
	// 0 means 5; negative disables.
	DeadlineEvery int
	// DeadlineMS is the deadline attached to deadline-bearing jobs.
	// 0 means 60000 — generous, so deadline jobs exercise the deadline
	// plumbing without being expected to expire.
	DeadlineMS int
}

func (c MixConfig) withDefaults() MixConfig {
	if c.UniqueSpecs == 0 {
		c.UniqueSpecs = 64
	}
	if c.FaultEvery == 0 {
		c.FaultEvery = 10
	}
	if c.DeadlineEvery == 0 {
		c.DeadlineEvery = 5
	}
	if c.DeadlineMS == 0 {
		c.DeadlineMS = 60000
	}
	return c
}

// Generator derives job specs purely from (seed, index): no shared
// state, safe for concurrent use, and Spec(i) is the same bytes in every
// run and from every goroutine.
type Generator struct {
	cfg MixConfig
}

// NewGenerator builds a deterministic spec stream for the mix.
func NewGenerator(cfg MixConfig) *Generator {
	return &Generator{cfg: cfg.withDefaults()}
}

// IsFault reports whether submission i carries the fault spec.
func (g *Generator) IsFault(i int) bool {
	return g.cfg.FaultEvery > 0 && i > 0 && i%g.cfg.FaultEvery == 0
}

// Spec returns the i-th submission's JSON body.
func (g *Generator) Spec(i int) string {
	if g.IsFault(i) {
		return g.faultSpec()
	}
	return g.cleanSpec(i)
}

// FaultSpec exposes the stream's constant fault-carrying spec, so a
// harness can compute which shard the fault tranche will converge on.
func (g *Generator) FaultSpec() string { return g.faultSpec() }

// cleanSpec picks a pool entry for submission i. The pool index is a
// hash, not i%N, so repeats are spread through the stream instead of
// arriving in lockstep with the pool size.
func (g *Generator) cleanSpec(i int) string {
	pool := xrand.MixN(g.cfg.Seed, 0x10ad, uint64(i)) % uint64(g.cfg.UniqueSpecs)
	spec := g.poolSpec(pool)
	if g.cfg.DeadlineEvery > 0 && i%g.cfg.DeadlineEvery == 0 {
		spec = spec[:len(spec)-1] + fmt.Sprintf(`,"deadline_ms":%d}`, g.cfg.DeadlineMS)
	}
	return spec
}

// poolSpec materialises pool entry j: the kind rotates through the fast
// experiment kinds and the parameters come from j's own xrand stream, so
// entry j is stable regardless of submission order.
func (g *Generator) poolSpec(j uint64) string {
	r := xrand.New(xrand.MixN(g.cfg.Seed, 0x5bec, j))
	switch j % 4 {
	case 0:
		return fmt.Sprintf(`{"kind":"net","size_bytes":%d,"iters":%d,"dst_node":%d}`,
			1024<<uint(r.Intn(8)), 2+r.Intn(6), 1+r.Intn(31))
	case 1:
		return fmt.Sprintf(`{"kind":"stream","ranks":%d}`, 1+r.Intn(12))
	case 2:
		return fmt.Sprintf(`{"kind":"fpu","iters":%d}`, 1000+1000*r.Intn(20))
	default:
		return fmt.Sprintf(`{"kind":"hpl","nodes":%d}`, 1+r.Intn(16))
	}
}

// faultSpec is the constant fault-carrying spec: a net transfer whose
// destination node is marked failed from sim-time zero, which aborts the
// run with a retryable *NodeFailedError on every attempt.
func (g *Generator) faultSpec() string {
	r := xrand.New(xrand.MixN(g.cfg.Seed, 0xfa01))
	node := 1 + r.Intn(31)
	return fmt.Sprintf(
		`{"kind":"net","size_bytes":%d,"iters":4,"dst_node":%d,"faults":{"nodes":[{"node":%d,"failed":true}]}}`,
		4096, node, node)
}
