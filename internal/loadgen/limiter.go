package loadgen

import (
	"sync"
	"time"
)

// Limiter paces callers to a fixed rate: each Wait reserves the next
// submission slot and sleeps until it. Slots are spaced exactly
// 1/rate apart from the first Wait, so a burst of ready workers drains
// at the configured rate instead of all at once. A nil Limiter (or rate
// <= 0) never blocks.
type Limiter struct {
	interval time.Duration
	now      func() time.Time
	sleep    func(time.Duration)

	mu   sync.Mutex
	next time.Time
}

// NewLimiter builds a limiter for perSecond submissions per second,
// paced on the host clock. perSecond <= 0 returns nil: no throttling.
func NewLimiter(perSecond float64) *Limiter {
	return newLimiter(perSecond, hostNow, hostSleep)
}

// newLimiter is the injected-clock constructor the tests use.
func newLimiter(perSecond float64, now func() time.Time, sleep func(time.Duration)) *Limiter {
	if perSecond <= 0 {
		return nil
	}
	return &Limiter{
		interval: time.Duration(float64(time.Second) / perSecond),
		now:      now,
		sleep:    sleep,
	}
}

// Wait blocks until the caller's reserved slot arrives.
func (l *Limiter) Wait() {
	if l == nil {
		return
	}
	l.mu.Lock()
	now := l.now()
	if l.next.Before(now) {
		l.next = now
	}
	delay := l.next.Sub(now)
	l.next = l.next.Add(l.interval)
	l.mu.Unlock()
	if delay > 0 {
		l.sleep(delay)
	}
}
