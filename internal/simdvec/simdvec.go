// Package simdvec is a software model of the SIMD units the paper's FPU
// µKernel exercises: scalar and vector fused-multiply-add pipelines in
// half, single and double precision, on both the A64FX (NEON/SVE) and
// Skylake (AVX-512).
//
// The package does two things at once:
//
//   - Executes the kernel for real: independent FMA chains over actual
//     lane data (float64/float32/softfloat16), so tests can verify the
//     arithmetic including precision-specific rounding.
//
//   - Prices the kernel: a cycle-accurate throughput model (issue width x
//     lanes x frequency x 2 flops) with a pipeline warm-up term, which is
//     what reproduces Fig. 1's "measurements match almost perfectly with
//     the theoretical values".
package simdvec

import (
	"fmt"

	"clustereval/internal/machine"
	"clustereval/internal/omp"
	"clustereval/internal/units"
)

// fmaLatencyCycles is the FMA pipeline depth assumed for the warm-up term
// (9 cycles on A64FX, 4-6 on Skylake; the difference is invisible at the
// µKernel's iteration counts, so one constant serves both).
const fmaLatencyCycles = 9

// Variant is one of the six µKernel configurations: scalar or vector,
// times half/single/double precision.
type Variant struct {
	Vector    bool
	Precision machine.Precision
}

// Variants returns the six kernel variants in the order Fig. 1 plots them.
func Variants() []Variant {
	return []Variant{
		{false, machine.Half}, {false, machine.Single}, {false, machine.Double},
		{true, machine.Half}, {true, machine.Single}, {true, machine.Double},
	}
}

// Name renders e.g. "vector-double" or "scalar-half".
func (v Variant) Name() string {
	kind := "scalar"
	if v.Vector {
		kind = "vector"
	}
	return kind + "-" + v.Precision.String()
}

// Kernel is a configured FPU µKernel run on one core.
type Kernel struct {
	Core    machine.Core
	Variant Variant
	// ISA is the vector extension used (ignored for scalar variants).
	ISA machine.ISA
	// Chains is the number of independent FMA dependency chains (virtual
	// registers); the real µKernel uses enough to cover the FMA latency.
	Chains int
}

// NewKernel configures the µKernel for the widest unit of the core that
// supports the variant's precision. It returns an error when the core
// cannot execute the variant at all (e.g. half precision on Skylake).
func NewKernel(core machine.Core, v Variant) (*Kernel, error) {
	k := &Kernel{Core: core, Variant: v, Chains: 16}
	if !v.Vector {
		if v.Precision == machine.Half {
			// Scalar FP16 FMA exists only on cores whose vector units do
			// half precision (FEXPA etc. on A64FX); mirror that.
			if core.BestVector(machine.Half) == nil {
				return nil, fmt.Errorf("simdvec: core has no half-precision support")
			}
		}
		k.ISA = machine.ISAScalar
		return k, nil
	}
	best := core.BestVector(v.Precision)
	if best == nil {
		return nil, fmt.Errorf("simdvec: core has no vector unit for %s", v.Precision)
	}
	k.ISA = best.ISA
	return k, nil
}

// Lanes returns the number of elements each FMA instruction processes.
func (k *Kernel) Lanes() int {
	if !k.Variant.Vector {
		return 1
	}
	for _, u := range k.Core.Vector {
		if u.ISA == k.ISA {
			return u.Lanes(k.Variant.Precision)
		}
	}
	return 0
}

// issueWidth returns FMA instructions issued per cycle.
func (k *Kernel) issueWidth() int {
	if !k.Variant.Vector {
		return k.Core.ScalarFMAPerCycle
	}
	for _, u := range k.Core.Vector {
		if u.ISA == k.ISA {
			return u.IssuePerCyc
		}
	}
	return 0
}

// TheoreticalPeak returns Pv = s*i*f*o for this variant (the paper's
// formula in Section III-A).
func (k *Kernel) TheoreticalPeak() units.FlopsPerSecond {
	return units.FlopsPerSecond(float64(k.Lanes()) * float64(k.issueWidth()) *
		k.Core.FrequencyHz * 2)
}

// Result of one kernel execution.
type Result struct {
	Iterations int
	Flops      float64
	Time       units.Seconds
	Sustained  units.FlopsPerSecond
	// Checksum is a reduction over the final chain values, proving the
	// arithmetic really ran (and pinning precision-specific rounding).
	Checksum float64
}

// Run executes iters iterations of the FMA kernel. One iteration issues one
// FMA instruction per chain, matching the unrolled assembly of the real
// µKernel (no data dependencies between chains).
func (k *Kernel) Run(iters int) (Result, error) {
	if iters <= 0 {
		return Result{}, fmt.Errorf("simdvec: iterations must be positive, got %d", iters)
	}
	lanes := k.Lanes()
	if lanes == 0 || k.issueWidth() == 0 {
		return Result{}, fmt.Errorf("simdvec: variant %s not executable", k.Variant.Name())
	}

	checksum := k.execute(iters, lanes)

	// Timing model: iters*Chains instructions over issueWidth pipes, plus
	// pipeline fill. This is what the sustained bar of Fig. 1 reports.
	instructions := float64(iters) * float64(k.Chains)
	cycles := instructions/float64(k.issueWidth()) + fmaLatencyCycles
	t := units.Seconds(cycles / k.Core.FrequencyHz)
	flops := instructions * float64(lanes) * 2
	return Result{
		Iterations: iters,
		Flops:      flops,
		Time:       t,
		Sustained:  units.FlopsPerSecond(flops / float64(t)),
		Checksum:   checksum,
	}, nil
}

// execute performs the real lane arithmetic and returns a checksum.
func (k *Kernel) execute(iters, lanes int) float64 {
	n := k.Chains * lanes
	switch k.Variant.Precision {
	case machine.Double:
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		for i := range a {
			a[i] = 1.0 + 1.0/float64(i+2)
			b[i] = 1.0 - 1.0/float64(i+3)
			c[i] = float64(i%7) * 0.125
		}
		for it := 0; it < iters; it++ {
			for i := 0; i < n; i++ {
				c[i] = a[i]*b[i] + c[i]*0.5
			}
		}
		sum := 0.0
		for _, v := range c {
			sum += v
		}
		return sum
	case machine.Single:
		a := make([]float32, n)
		b := make([]float32, n)
		c := make([]float32, n)
		for i := range a {
			a[i] = 1.0 + 1.0/float32(i+2)
			b[i] = 1.0 - 1.0/float32(i+3)
			c[i] = float32(i%7) * 0.125
		}
		for it := 0; it < iters; it++ {
			for i := 0; i < n; i++ {
				c[i] = a[i]*b[i] + c[i]*0.5
			}
		}
		sum := 0.0
		for _, v := range c {
			sum += float64(v)
		}
		return sum
	default: // Half
		a := make([]F16, n)
		b := make([]F16, n)
		c := make([]F16, n)
		half := F16FromFloat32(0.5)
		for i := range a {
			a[i] = F16FromFloat32(1.0 + 1.0/float32(i+2))
			b[i] = F16FromFloat32(1.0 - 1.0/float32(i+3))
			c[i] = F16FromFloat32(float32(i%7) * 0.125)
		}
		for it := 0; it < iters; it++ {
			for i := 0; i < n; i++ {
				c[i] = fmaF16(a[i], b[i], fmaF16(c[i], half, 0))
			}
		}
		sum := 0.0
		for _, v := range c {
			sum += float64(v.Float32())
		}
		return sum
	}
}

// Efficiency returns sustained/theoretical for a result.
func (k *Kernel) Efficiency(r Result) float64 {
	peak := float64(k.TheoreticalPeak())
	if peak == 0 {
		return 0
	}
	return float64(r.Sustained) / peak
}

// RunParallel executes the kernel once per thread of the team concurrently
// — the multi-threaded µKernel the paper uses to verify there is no
// variability within a node. Each thread runs an independent instance (the
// real kernel touches only registers, so threads never interact); the
// per-thread results are returned in thread order.
func (k *Kernel) RunParallel(team *omp.Team, iters int) ([]Result, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("simdvec: iterations must be positive, got %d", iters)
	}
	results := make([]Result, team.Threads())
	errs := make([]error, team.Threads())
	team.ParallelRanges(team.Threads(), func(_, lo, hi int) {
		for tid := lo; tid < hi; tid++ {
			results[tid], errs[tid] = k.Run(iters)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
