package simdvec

import "math"

// F16 is an IEEE 754 binary16 value. The A64FX executes half precision at
// full rate in SVE (the paper's FPU µKernel includes half-precision
// variants); Go has no native float16, so this softfloat implementation
// provides correctly rounded conversions.
type F16 uint16

// F16FromFloat32 converts with round-to-nearest-even, the IEEE default.
func F16FromFloat32(f float32) F16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127 + 15
	mant := bits & 0x7fffff

	switch {
	case exp >= 0x1f:
		// Overflow or special: Inf/NaN.
		if int32(bits>>23&0xff) == 0xff {
			if mant != 0 {
				return F16(sign | 0x7e00) // NaN (quiet)
			}
			return F16(sign | 0x7c00) // Inf
		}
		return F16(sign | 0x7c00) // overflow to Inf
	case exp <= 0:
		// Subnormal or underflow to zero.
		if exp < -10 {
			return F16(sign)
		}
		// Add the implicit leading 1, then shift into subnormal position
		// with round-to-nearest-even: add (half-1) plus the bit that will
		// become the LSB, so ties round toward even.
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		rounded := (mant + (half - 1) + (mant>>shift)&1) >> shift
		return F16(sign | uint16(rounded))
	default:
		// Normal range: round the 23-bit mantissa to 10 bits.
		rounded := mant + 0xfff + (mant>>13)&1
		if rounded&0x800000 != 0 {
			// Mantissa overflowed into the exponent.
			rounded = 0
			exp++
			if exp >= 0x1f {
				return F16(sign | 0x7c00)
			}
		}
		return F16(sign | uint16(exp)<<10 | uint16(rounded>>13))
	}
}

// Float32 converts back to float32 exactly (binary16 ⊂ binary32).
func (h F16) Float32() float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)

	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Normalize the subnormal.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		if mant == 0 {
			return math.Float32frombits(sign | 0x7f800000)
		}
		return math.Float32frombits(sign | 0x7fc00000 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}

// fmaF16 computes round16(a*b + c): the product and sum are evaluated in
// float32 (exact for binary16 inputs) and rounded once, matching hardware
// fused multiply-add semantics for half precision.
func fmaF16(a, b, c F16) F16 {
	return F16FromFloat32(a.Float32()*b.Float32() + c.Float32())
}
