package simdvec

import (
	"math"
	"testing"
	"testing/quick"

	"clustereval/internal/machine"
	"clustereval/internal/omp"
)

func TestF16RoundTripExactValues(t *testing.T) {
	// Values exactly representable in binary16 must round-trip.
	for _, f := range []float32{0, 1, -1, 0.5, 0.25, 1.5, 2, 1024, -3.75, 65504} {
		h := F16FromFloat32(f)
		if got := h.Float32(); got != f {
			t.Errorf("round trip %v -> %v", f, got)
		}
	}
}

func TestF16Specials(t *testing.T) {
	inf := float32(math.Inf(1))
	if F16FromFloat32(inf).Float32() != inf {
		t.Error("+Inf")
	}
	if F16FromFloat32(-inf).Float32() != float32(math.Inf(-1)) {
		t.Error("-Inf")
	}
	if !math.IsNaN(float64(F16FromFloat32(float32(math.NaN())).Float32())) {
		t.Error("NaN")
	}
	// Overflow to Inf: 65520 rounds up past the max finite 65504.
	if F16FromFloat32(70000).Float32() != inf {
		t.Error("overflow should give +Inf")
	}
	// Underflow to zero.
	if F16FromFloat32(1e-9).Float32() != 0 {
		t.Error("tiny value should flush to zero through rounding")
	}
	// Negative zero keeps its sign.
	if math.Signbit(float64(F16FromFloat32(float32(math.Copysign(0, -1))).Float32())) != true {
		t.Error("-0 sign lost")
	}
}

func TestF16Subnormals(t *testing.T) {
	// Smallest positive subnormal is 2^-24.
	sub := float32(math.Ldexp(1, -24))
	h := F16FromFloat32(sub)
	if h != 0x0001 {
		t.Errorf("2^-24 encodes as %#04x, want 0x0001", uint16(h))
	}
	if h.Float32() != sub {
		t.Errorf("subnormal decode = %v, want %v", h.Float32(), sub)
	}
	// Largest subnormal: (1023/1024) * 2^-14.
	maxSub := float32(math.Ldexp(1023.0/1024.0, -14))
	h = F16FromFloat32(maxSub)
	if h != 0x03ff {
		t.Errorf("max subnormal encodes as %#04x", uint16(h))
	}
}

func TestF16RoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly between 1.0 and 1+2^-10: ties go to even (1.0).
	f := float32(1 + math.Ldexp(1, -11))
	if got := F16FromFloat32(f); got != F16FromFloat32(1) {
		t.Errorf("tie did not round to even: %#04x", uint16(got))
	}
	// 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9: tie rounds to even (1+2^-9).
	f = float32(1 + 3*math.Ldexp(1, -11))
	want := F16FromFloat32(float32(1 + math.Ldexp(1, -9)))
	if got := F16FromFloat32(f); got != want {
		t.Errorf("tie rounding: got %#04x want %#04x", uint16(got), uint16(want))
	}
}

// Property: decode(encode(x)) is within half an ULP of x for normal-range
// values, and encode is monotone.
func TestF16RoundingProperty(t *testing.T) {
	f := func(raw uint16) bool {
		x := float32(raw)/65535*100 - 50 // [-50, 50]
		h := F16FromFloat32(x)
		back := float64(h.Float32())
		// binary16 has 11 significand bits: relative error <= 2^-11.
		return math.Abs(back-float64(x)) <= math.Abs(float64(x))/2048+1e-7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestF16EncodeMonotone(t *testing.T) {
	prev := F16FromFloat32(0).Float32()
	for i := 1; i <= 10000; i++ {
		x := float32(i) * 0.37
		cur := F16FromFloat32(x).Float32()
		if cur < prev {
			t.Fatalf("encode not monotone at %v", x)
		}
		prev = cur
	}
}

func TestVariants(t *testing.T) {
	vs := Variants()
	if len(vs) != 6 {
		t.Fatalf("µKernel has %d variants, want 6", len(vs))
	}
	names := map[string]bool{}
	for _, v := range vs {
		names[v.Name()] = true
	}
	for _, want := range []string{"scalar-half", "scalar-single", "scalar-double",
		"vector-half", "vector-single", "vector-double"} {
		if !names[want] {
			t.Errorf("missing variant %s", want)
		}
	}
}

func TestTheoreticalPeaksA64FX(t *testing.T) {
	core := machine.CTEArm().Node.Core
	cases := []struct {
		v    Variant
		want float64 // GFlop/s
	}{
		{Variant{false, machine.Double}, 8.8},
		{Variant{false, machine.Single}, 8.8},
		{Variant{true, machine.Double}, 70.4},
		{Variant{true, machine.Single}, 140.8},
		{Variant{true, machine.Half}, 281.6},
	}
	for _, c := range cases {
		k, err := NewKernel(core, c.v)
		if err != nil {
			t.Fatalf("%s: %v", c.v.Name(), err)
		}
		if got := k.TheoreticalPeak().Giga(); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s peak = %v GF, want %v", c.v.Name(), got, c.want)
		}
	}
}

func TestSkylakeHasNoHalf(t *testing.T) {
	core := machine.MareNostrum4().Node.Core
	if _, err := NewKernel(core, Variant{true, machine.Half}); err == nil {
		t.Error("Skylake vector-half accepted")
	}
	if _, err := NewKernel(core, Variant{false, machine.Half}); err == nil {
		t.Error("Skylake scalar-half accepted")
	}
}

func TestRunSustainedNearPeak(t *testing.T) {
	// Fig. 1: sustained matches theoretical almost perfectly.
	for _, core := range []machine.Core{machine.CTEArm().Node.Core, machine.MareNostrum4().Node.Core} {
		for _, v := range Variants() {
			k, err := NewKernel(core, v)
			if err != nil {
				continue // unsupported variant (half on Skylake)
			}
			res, err := k.Run(5000)
			if err != nil {
				t.Fatalf("%s: %v", v.Name(), err)
			}
			eff := k.Efficiency(res)
			if eff < 0.985 || eff > 1.0 {
				t.Errorf("%s efficiency = %.4f, want ~0.99+", v.Name(), eff)
			}
		}
	}
}

func TestRunChecksumStableAndPrecisionDependent(t *testing.T) {
	core := machine.CTEArm().Node.Core
	k64, _ := NewKernel(core, Variant{true, machine.Double})
	k32, _ := NewKernel(core, Variant{true, machine.Single})

	a, _ := k64.Run(100)
	b, _ := k64.Run(100)
	if a.Checksum != b.Checksum {
		t.Error("double checksum not deterministic")
	}
	c, _ := k32.Run(100)
	// Same math at different precision must differ (different lane count
	// and rounding) — catching a kernel that ignores precision.
	if a.Checksum == c.Checksum {
		t.Error("single and double checksums identical; precision ignored")
	}
	if math.IsNaN(a.Checksum) || math.IsInf(a.Checksum, 0) {
		t.Errorf("checksum degenerate: %v", a.Checksum)
	}
}

func TestHalfKernelRuns(t *testing.T) {
	core := machine.CTEArm().Node.Core
	k, err := NewKernel(core, Variant{true, machine.Half})
	if err != nil {
		t.Fatal(err)
	}
	res, err := k.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Checksum) || res.Checksum == 0 {
		t.Errorf("half checksum = %v", res.Checksum)
	}
	// 32 lanes x 16 chains x 2 flops x 200 iters.
	want := 32.0 * 16 * 2 * 200
	if res.Flops != want {
		t.Errorf("half flops = %v, want %v", res.Flops, want)
	}
}

func TestRunErrors(t *testing.T) {
	core := machine.CTEArm().Node.Core
	k, _ := NewKernel(core, Variant{true, machine.Double})
	if _, err := k.Run(0); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := k.Run(-3); err == nil {
		t.Error("negative iterations accepted")
	}
}

func TestRunParallelAllThreadsIdentical(t *testing.T) {
	// The multithreaded µKernel: every thread runs the same register-only
	// kernel, so results are identical across threads (the paper's "no
	// variability within a node" at the model level — the OS-noise wiggle
	// is applied by bench/fpu, not here).
	core := machine.CTEArm().Node.Core
	k, err := NewKernel(core, Variant{Vector: true, Precision: machine.Double})
	if err != nil {
		t.Fatal(err)
	}
	team, err := omp.NewTeam(machine.CTEArm().Node, 12, omp.Spread)
	if err != nil {
		t.Fatal(err)
	}
	results, err := k.RunParallel(team, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 12 {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if r.Checksum != results[0].Checksum || r.Sustained != results[0].Sustained {
			t.Fatalf("thread %d diverged", i)
		}
	}
	if _, err := k.RunParallel(team, 0); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestEfficiencyImprovesWithIterations(t *testing.T) {
	// The pipeline warm-up term means short runs are less efficient —
	// exactly how the real µKernel behaves.
	core := machine.MareNostrum4().Node.Core
	k, _ := NewKernel(core, Variant{true, machine.Double})
	short, _ := k.Run(10)
	long, _ := k.Run(10000)
	if !(k.Efficiency(long) > k.Efficiency(short)) {
		t.Errorf("efficiency: short %.4f, long %.4f", k.Efficiency(short), k.Efficiency(long))
	}
}
