package experiment

import (
	"context"
	"errors"
	"testing"
)

// kindSpec returns a fast, valid spec of the given kind for execution
// tests.
func kindSpec(kind string) Spec {
	spec := Spec{Kind: kind}
	switch kind {
	case KindApp:
		spec.App = "alya"
	case KindFPU:
		spec.Iters = 200
	case KindNet:
		spec.SizeBytes = 1024
		spec.Iters = 8
	case KindHPL, KindHPCG:
		spec.Nodes = 2
	case KindStream:
		spec.Ranks = 4
	}
	return spec
}

// TestRunHonoursCancellationPerKind: every registered kind's Run returns
// promptly with the context error when the context is already cancelled —
// the uniform contract clusterd's deadlines and DELETE /v1/jobs rely on.
func TestRunHonoursCancellationPerKind(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			spec, err := kindSpec(kind).Normalize()
			if err != nil {
				t.Fatal(err)
			}

			// Through the dispatcher.
			if _, err := Run(ctx, spec); !errors.Is(err, context.Canceled) {
				t.Errorf("Run with cancelled ctx: err = %v, want context.Canceled", err)
			}

			// And through the kind's own Run, past the dispatcher's entry
			// check, so each implementation is proven ctx-aware itself.
			def, ok := Lookup(kind)
			if !ok {
				t.Fatalf("kind %q not registered", kind)
			}
			m, err := resolveMachine(spec.Machine)
			if err != nil {
				t.Fatal(err)
			}
			p := def.New()
			if err := p.FromSpec(spec, m); err != nil {
				t.Fatal(err)
			}
			res, err := p.Run(ctx, Env{Machine: m, Pair: PairWithSeed(spec.Seed)})
			if !errors.Is(err, context.Canceled) {
				t.Errorf("params.Run with cancelled ctx: res=%v err=%v, want context.Canceled", res, err)
			}
		})
	}
}

// TestRunCompletesPerKind is the positive twin: with a live context every
// kind runs to a result whose Kind and Machine match the spec.
func TestRunCompletesPerKind(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind, func(t *testing.T) {
			spec, err := kindSpec(kind).Normalize()
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(context.Background(), spec)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Kind != kind {
				t.Errorf("result kind %q, want %q", res.Kind, kind)
			}
			if res.Machine != "CTE-Arm" {
				t.Errorf("result machine %q, want CTE-Arm", res.Machine)
			}
			if res.Summary == "" {
				t.Error("empty summary")
			}
		})
	}
}
