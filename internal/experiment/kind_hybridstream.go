package experiment

import (
	"context"
	"fmt"

	"clustereval/internal/machine"
)

func hybridStreamDef() Definition {
	return Definition{
		Kind:   KindHybridStream,
		Title:  "hybrid MPI+OpenMP STREAM Triad sweep",
		Figure: "Fig. 3",
		New:    func() Params { return &HybridStreamParams{} },
		Fields: []Field{
			{Name: "language", Type: "string", Default: "c",
				Usage: "STREAM build language", Enum: []string{"c", "fortran"}},
		},
	}
}

// HybridStreamParams parameterises the Fig. 3 hybrid MPI+OpenMP sweep.
type HybridStreamParams struct {
	Language string
}

// FromSpec implements Params.
func (p *HybridStreamParams) FromSpec(spec Spec, _ machine.Machine) error {
	switch spec.Language {
	case "":
		p.Language = "c"
	case "c", "fortran":
		p.Language = spec.Language
	default:
		return invalidf("unknown language %q (valid: c fortran)", spec.Language)
	}
	return nil
}

// ApplyTo implements Params.
func (p *HybridStreamParams) ApplyTo(spec *Spec) { spec.Language = p.Language }

// Run implements Params.
func (p *HybridStreamParams) Run(ctx context.Context, env Env) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := env.Machine
	series, err := env.Pair.HybridStreamSeriesOn(m, language(p.Language))
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	hr := &HybridResult{
		Language:      p.Language,
		BestConfig:    series.Best.Label(),
		BestGBps:      series.Best.Bandwidth.GB(),
		PercentOfPeak: series.PercentOfPeak,
	}
	member := env.Pair.Member(m)
	_, elements := streamSetup(member)
	energy := streamEnergy(member, elements,
		series.Best.Ranks*series.Best.ThreadsPerRank, series.Best.Bandwidth)
	return &Result{
		Kind: KindHybridStream, Machine: m.Name,
		Summary: fmt.Sprintf("hybrid STREAM Triad on %s (%s): best %s = %.1f GB/s (%.0f%% of peak)",
			m.Name, p.Language, hr.BestConfig, hr.BestGBps, hr.PercentOfPeak),
		Hybrid: hr,
		Energy: energy,
	}, nil
}
