package cli

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"clustereval/internal/experiment"
	"clustereval/internal/service"
)

// testOptions returns a validated default option set bound to addr.
func testOptions(t *testing.T, addr string) DaemonOptions {
	t.Helper()
	o, err := ParseDaemonFlags([]string{"-addr", addr, "-workers", "2"})
	if err != nil {
		t.Fatalf("ParseDaemonFlags: %v", err)
	}
	return o
}

// TestDaemonServesAndDrains boots the daemon on an ephemeral port, submits
// a real job through the full stack, then cancels the context and verifies
// a clean drain.
func TestDaemonServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrCh := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- Daemon(ctx, testOptions(t, "127.0.0.1:0"), func(a net.Addr) { addrCh <- a })
	}()

	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-errCh:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("listener never came up")
	}

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	body := strings.NewReader(`{"kind":"hpl","machine":"cte-arm","nodes":8}`)
	resp, err = http.Post(base+"/v1/jobs", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var view service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d", resp.StatusCode)
	}

	for attempt := 0; ; attempt++ {
		if attempt > 6000 { // ~30s at the 5ms poll interval below
			t.Fatal("job never finished")
		}
		r, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", base, view.ID))
		if err != nil {
			t.Fatal(err)
		}
		var v service.JobView
		if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if v.State.Terminal() {
			if v.State != service.StateDone || v.Result == nil || v.Result.HPL == nil {
				t.Fatalf("job ended %s (%s)", v.State, v.Error)
			}
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Errorf("daemon returned %v on graceful shutdown", err)
		}
	case <-time.After(30 * time.Second):
		t.Error("daemon did not drain after cancel")
	}
}

// TestDaemonDurableRecoversAcrossRestarts drives the full daemon twice
// over one journal: the first incarnation completes a job and drains
// cleanly, the second must rehydrate it with its result intact.
func TestDaemonDurableRecoversAcrossRestarts(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "wal")

	boot := func() (string, context.CancelFunc, chan error) {
		ctx, cancel := context.WithCancel(context.Background())
		addrCh := make(chan net.Addr, 1)
		errCh := make(chan error, 1)
		opts := testOptions(t, "127.0.0.1:0")
		opts.Journal = journalPath
		go func() { errCh <- Daemon(ctx, opts, func(a net.Addr) { addrCh <- a }) }()
		select {
		case a := <-addrCh:
			return "http://" + a.String(), cancel, errCh
		case err := <-errCh:
			cancel()
			t.Fatalf("daemon exited early: %v", err)
		case <-time.After(10 * time.Second):
			cancel()
			t.Fatal("listener never came up")
		}
		return "", nil, nil
	}

	base, cancel, errCh := boot()
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"hpl","nodes":4}`))
	if err != nil {
		t.Fatal(err)
	}
	var view service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for attempt := 0; ; attempt++ {
		if attempt > 6000 { // ~30s at the 5ms poll interval below
			t.Fatal("job never finished")
		}
		r, err := http.Get(base + "/v1/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		var v service.JobView
		if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if v.State.Terminal() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-errCh; err != nil {
		t.Fatalf("first incarnation drain: %v", err)
	}

	base, cancel, errCh = boot()
	defer cancel()
	r, err := http.Get(base + "/v1/jobs/" + view.ID)
	if err != nil {
		t.Fatal(err)
	}
	var rec service.JobView
	if err := json.NewDecoder(r.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if rec.State != service.StateDone || rec.Result == nil || !rec.Recovered {
		t.Errorf("recovered job = state %s, recovered %v, result %v", rec.State, rec.Recovered, rec.Result)
	}
	cancel()
	if err := <-errCh; err != nil {
		t.Errorf("second incarnation drain: %v", err)
	}
}

func TestDaemonBadAddress(t *testing.T) {
	err := Daemon(context.Background(), testOptions(t, "256.0.0.1:99999"), nil)
	if err == nil {
		t.Error("daemon accepted an unlistenable address")
	}
}

// TestDaemonFlagValidation pins the startup validation: every
// misconfiguration must be refused with a clear message instead of
// silently misbehaving.
func TestDaemonFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"negative retries", []string{"-retries", "-1"}, "-retries"},
		{"negative backoff", []string{"-retry-backoff", "-5ms"}, "-retry-backoff"},
		{"zero drain timeout", []string{"-drain-timeout", "0s"}, "-drain-timeout"},
		{"negative drain timeout", []string{"-drain-timeout", "-1s"}, "-drain-timeout"},
		{"zero shed threshold", []string{"-shed-threshold", "0"}, "-shed-threshold"},
		{"shed threshold above one", []string{"-shed-threshold", "1.5"}, "-shed-threshold"},
		{"zero breaker threshold", []string{"-breaker-threshold", "0"}, "-breaker-threshold"},
		{"breaker threshold above one", []string{"-breaker-threshold", "2"}, "-breaker-threshold"},
		{"zero breaker samples", []string{"-breaker-min-samples", "0"}, "-breaker-min-samples"},
		{"zero breaker cooldown", []string{"-breaker-cooldown", "0s"}, "-breaker-cooldown"},
		{"zero queue", []string{"-queue", "0"}, "-queue"},
		{"negative workers", []string{"-workers", "-2"}, "-workers"},
		{"zero job timeout", []string{"-job-timeout", "0s"}, "-job-timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseDaemonFlags(tc.args)
			if err == nil {
				t.Fatalf("ParseDaemonFlags(%v) accepted invalid flags", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name %s", err, tc.want)
			}
		})
	}
}

// TestDaemonFlagDisableTranslation pins the CLI's 0-disables convention
// onto the library's negative-disables one.
func TestDaemonFlagDisableTranslation(t *testing.T) {
	o, err := ParseDaemonFlags([]string{"-retries", "0", "-retry-backoff", "0s"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := o.Config()
	if cfg.MaxRetries >= 0 {
		t.Errorf("retries 0 should map to negative MaxRetries, got %d", cfg.MaxRetries)
	}
	if cfg.RetryBackoff >= 0 {
		t.Errorf("backoff 0 should map to negative RetryBackoff, got %v", cfg.RetryBackoff)
	}
}

// TestListKinds pins the -list-kinds output onto the registry: every kind
// appears with its schema fields, and the shared fields close the list.
func TestListKinds(t *testing.T) {
	var sb strings.Builder
	if err := ListKinds(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, kind := range experiment.Kinds() {
		if !strings.Contains(out, kind) {
			t.Errorf("listing is missing kind %q:\n%s", kind, out)
		}
	}
	for _, want := range []string{"size_bytes", "shared fields", "deadline_ms", "machine"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing is missing %q:\n%s", want, out)
		}
	}
}
