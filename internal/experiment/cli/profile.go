package cli

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// withProfiling runs fn, writing a CPU profile and/or a heap profile to
// the given paths (either may be empty to skip). This backs the
// clustereval tool's -cpuprofile/-memprofile flags and `make profile`: the
// standard way to see where simulated time goes is to profile a full
// figure regeneration and feed the output to `go tool pprof`.
func withProfiling(cpuPath, memPath string, fn func() error) error {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	err := fn()
	if memPath != "" {
		f, merr := os.Create(memPath)
		if merr != nil {
			if err != nil {
				return err
			}
			return fmt.Errorf("memprofile: %w", merr)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows live objects
		if merr := pprof.WriteHeapProfile(f); merr != nil && err == nil {
			return fmt.Errorf("memprofile: %w", merr)
		}
	}
	return err
}
