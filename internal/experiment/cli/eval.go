package cli

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"clustereval/internal/core"
	"clustereval/internal/experiment"
	"clustereval/internal/figures"
	"clustereval/internal/report"
)

func init() {
	registerTool(&Tool{Name: "clustereval",
		Bind: func(fs *flag.FlagSet) func(experiment.Spec) error {
			table := fs.Int("table", 0, "render one table (1..4); 0 = all")
			figure := fs.Int("figure", 0, "render one figure (1..16); 0 = all")
			csv := fs.Bool("csv", false, "emit tables as CSV")
			out := fs.String("out", "", "write every table and figure as CSV files into this directory")
			kind := fs.String("kind", "", "run one experiment kind from the registry and print its result as JSON (see -spec)")
			spec := fs.String("spec", "", `JSON parameters for -kind, e.g. '{"app":"alya","nodes":32}'`)
			cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
			memprofile := fs.String("memprofile", "", "write a heap profile to this file after the run")
			return func(experiment.Spec) error {
				return withProfiling(*cpuprofile, *memprofile, func() error {
					switch {
					case *kind != "":
						return RunKind(context.Background(), *kind, *spec, os.Stdout)
					case *out != "":
						return ExportAll(*out)
					default:
						return Eval(*table, *figure, *csv)
					}
				})
			}
		}})
}

// RunKind executes one registry kind directly — the generic path that
// makes every registered experiment reachable from the clustereval binary
// without a dedicated flag set. params is a JSON object of spec fields
// (without "kind"); the result is printed as indented JSON, preceded by
// the run's summary and the cache key clusterd would file it under.
func RunKind(ctx context.Context, kind, params string, w io.Writer) error {
	var spec experiment.Spec
	if params != "" {
		dec := json.NewDecoder(strings.NewReader(params))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return fmt.Errorf("invalid -spec: %w", err)
		}
	}
	spec.Kind = kind
	norm, key, err := experiment.Canonicalize(spec)
	if err != nil {
		return err
	}
	res, err := experiment.Run(ctx, norm)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# %s\n# cache key %s\n", res.Summary, key)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// Eval reproduces the paper's tables and figures on stdout: everything by
// default, or one table / one figure when selected.
func Eval(table, figure int, csv bool) error {
	ev := core.New()
	pair := figures.Default()

	emitTable := func(t *report.Table) error {
		if csv {
			return t.CSV(os.Stdout)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		return nil
	}

	tables := map[int]func() (*report.Table, error){
		1: func() (*report.Table, error) { return ev.TableI(), nil },
		2: func() (*report.Table, error) { return ev.TableII(), nil },
		3: func() (*report.Table, error) { return ev.TableIII(), nil },
		4: func() (*report.Table, error) {
			rows, err := ev.TableIV()
			if err != nil {
				return nil, err
			}
			return core.RenderTableIV(rows), nil
		},
	}

	figs := map[int]func() error{
		1: func() error {
			t, err := pair.Figure1()
			if err != nil {
				return err
			}
			return emitTable(t)
		},
		2: func() error {
			plot, _, err := pair.Figure2()
			if err != nil {
				return err
			}
			return plot.Render(os.Stdout)
		},
		3: func() error {
			t, _, err := pair.Figure3()
			if err != nil {
				return err
			}
			return emitTable(t)
		},
		4: func() error {
			hm, raw, err := pair.Figure4(256)
			if err != nil {
				return err
			}
			if err := hm.Render(os.Stdout); err != nil {
				return err
			}
			for _, d := range raw.DegradedReceivers(0.5) {
				fmt.Printf("degraded receiver detected: node %d\n", d)
			}
			return nil
		},
		5: func() error {
			t, _, err := pair.Figure5()
			if err != nil {
				return err
			}
			return emitTable(t)
		},
		6: func() error {
			plot, _, err := pair.Figure6()
			if err != nil {
				return err
			}
			return plot.Render(os.Stdout)
		},
		7: func() error {
			t, _, err := pair.Figure7()
			if err != nil {
				return err
			}
			return emitTable(t)
		},
		8:  plotFig(pair.Figure8),
		9:  plotFig(pair.Figure9),
		10: plotFig(pair.Figure10),
		11: plotFig(pair.Figure11),
		12: plotFig(pair.Figure12),
		13: plotFig(pair.Figure13),
		14: plotFig(pair.Figure14),
		15: plotFig(pair.Figure15),
		16: plotFig(pair.Figure16),
	}

	switch {
	case table > 0:
		f, ok := tables[table]
		if !ok {
			return fmt.Errorf("no table %d (valid: 1..4)", table)
		}
		t, err := f()
		if err != nil {
			return err
		}
		return emitTable(t)
	case figure > 0:
		f, ok := figs[figure]
		if !ok {
			return fmt.Errorf("no figure %d (valid: 1..16)", figure)
		}
		return f()
	default:
		for i := 1; i <= 4; i++ {
			t, err := tables[i]()
			if err != nil {
				return err
			}
			if err := emitTable(t); err != nil {
				return err
			}
		}
		for i := 1; i <= 16; i++ {
			if err := figs[i](); err != nil {
				return err
			}
			fmt.Println()
		}
		// Section VI: the paper's conclusions, re-derived and checked.
		findings, err := ev.Conclusions()
		if err != nil {
			return err
		}
		fmt.Println("Conclusions (Section VI), checked against the models:")
		for _, f := range findings {
			mark := "ok  "
			if !f.Holds {
				mark = "FAIL"
			}
			fmt.Printf("  [%s] %s — %s\n", mark, f.Statement, f.Evidence)
		}
		return nil
	}
}

func plotFig(f func() (*report.Plot, error)) func() error {
	return func() error {
		plot, err := f()
		if err != nil {
			return err
		}
		return plot.Render(os.Stdout)
	}
}

// ExportAll writes every table and figure of the reproduction as CSV
// files under dir, so the data can be replotted with external tooling.
func ExportAll(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, emit func(w io.Writer) error) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	}

	ev := core.New()
	pair := figures.Default()

	tables := map[string]func() (*report.Table, error){
		"table1.csv": func() (*report.Table, error) { return ev.TableI(), nil },
		"table2.csv": func() (*report.Table, error) { return ev.TableII(), nil },
		"table3.csv": func() (*report.Table, error) { return ev.TableIII(), nil },
		"table4.csv": func() (*report.Table, error) {
			rows, err := ev.TableIV()
			if err != nil {
				return nil, err
			}
			return core.RenderTableIV(rows), nil
		},
		"fig1.csv": func() (*report.Table, error) { return pair.Figure1() },
		"fig3.csv": func() (*report.Table, error) {
			t, _, err := pair.Figure3()
			return t, err
		},
		"fig5.csv": func() (*report.Table, error) {
			t, _, err := pair.Figure5()
			return t, err
		},
		"fig7.csv": func() (*report.Table, error) {
			t, _, err := pair.Figure7()
			return t, err
		},
		// Beyond the paper: modeled energy-to-solution for every workload
		// on every registered machine preset.
		"energy.csv": func() (*report.Table, error) { return figures.EnergyToSolution() },
	}
	for name, get := range tables {
		t, err := get()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := write(name, t.CSV); err != nil {
			return err
		}
	}

	plots := map[string]func() (*report.Plot, error){
		"fig2.csv": func() (*report.Plot, error) {
			p, _, err := pair.Figure2()
			return p, err
		},
		"fig6.csv": func() (*report.Plot, error) {
			p, _, err := pair.Figure6()
			return p, err
		},
		"fig8.csv":  pair.Figure8,
		"fig9.csv":  pair.Figure9,
		"fig10.csv": pair.Figure10,
		"fig11.csv": pair.Figure11,
		"fig12.csv": pair.Figure12,
		"fig13.csv": pair.Figure13,
		"fig14.csv": pair.Figure14,
		"fig15.csv": pair.Figure15,
		"fig16.csv": pair.Figure16,
	}
	for name, get := range plots {
		p, err := get()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := write(name, p.CSV); err != nil {
			return err
		}
	}

	hm, _, err := pair.Figure4(256)
	if err != nil {
		return err
	}
	return write("fig4.csv", hm.CSV)
}
