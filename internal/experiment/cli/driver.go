// Package cli is the shared driver behind the cmd/* binaries. Each binary
// is registered here as a Tool: its command-line flags are generated from
// its experiment kind's registry schema (internal/experiment.Field), plus
// whatever tool-specific flags the Tool binds itself. A cmd/*/main.go is
// therefore one call — cli.Main(name, os.Args[1:]) — and adding a flag to
// a kind's schema updates the daemon's /v1/kinds listing and the matching
// binary's flag set in the same change.
package cli

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"clustereval/internal/experiment"
)

// Tool describes one command-line binary. Kind names the registry entry
// whose parameter schema becomes the tool's generated flags (empty means
// the tool takes no schema flags). Bind registers any tool-specific flags
// on fs and returns the action to run after parsing; the action receives
// the Spec rebuilt from the generated flags, unnormalised, so a tool can
// distinguish "-iters 0" from the schema default.
type Tool struct {
	Name string
	Kind string
	Bind func(fs *flag.FlagSet) func(spec experiment.Spec) error
}

// tools indexes the registered binaries by name.
var tools = map[string]*Tool{}

// registerTool adds a binary to the driver; duplicates are a programming
// error.
func registerTool(t *Tool) {
	if _, dup := tools[t.Name]; dup {
		panic("cli: tool " + t.Name + " registered twice")
	}
	tools[t.Name] = t
}

// ToolNames returns the registered binary names, sorted.
func ToolNames() []string {
	names := make([]string, 0, len(tools))
	for name := range tools {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// errUsage marks a flag-parse failure whose message the FlagSet already
// printed; Main exits 2 without repeating it.
var errUsage = errors.New("usage error")

// run drives the named tool over args: the kind's schema flags are
// generated, parsed alongside the tool's own flags, folded back into a
// Spec, and handed to the tool's action. It is unexported deliberately:
// the cli package's Run-prefixed entry points are simulation surfaces
// under the ctxflow analyzer, and this is a flag-dispatch layer whose
// public face is Main.
func run(name string, args []string) error {
	t, ok := tools[name]
	if !ok {
		return fmt.Errorf("unknown tool %q (have %s)", name, strings.Join(ToolNames(), " "))
	}
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	var sf *specFlags
	if t.Kind != "" {
		sf = addSpecFlags(fs, t.Kind)
	}
	action := t.Bind(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return flag.ErrHelp
		}
		return errUsage
	}
	var spec experiment.Spec
	if sf != nil {
		var err error
		if spec, err = sf.Spec(); err != nil {
			return err
		}
	}
	return action(spec)
}

// Main is the entry point every cmd/* main wraps: run the tool, map
// errors onto the conventional exit codes (0 for -h, 2 for flag errors,
// 1 for execution failures).
func Main(name string, args []string) {
	switch err := run(name, args); {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		os.Exit(0)
	case errors.Is(err, errUsage):
		os.Exit(2)
	default:
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
}

// specFlags binds one kind's registry schema — its own fields plus the
// shared seed field — onto a FlagSet, and rebuilds a Spec from the parsed
// values. Flag names and defaults come from the schema, so the binaries
// cannot drift from what clusterd's /v1/kinds advertises.
type specFlags struct {
	kind   string
	fields []experiment.Field
	values map[string]any // field name -> *int / *int64 / *uint64 / *string
}

// addSpecFlags registers the kind's schema flags on fs. An unknown kind
// or schema type is a programming error in the tool table, not an input
// error, so it panics.
func addSpecFlags(fs *flag.FlagSet, kind string) *specFlags {
	def, ok := experiment.Lookup(kind)
	if !ok {
		panic("cli: tool bound to unregistered kind " + kind)
	}
	fields := append([]experiment.Field{}, def.Fields...)
	for _, f := range experiment.SharedFields() {
		// Of the shared fields only the seed makes sense on a local run:
		// the machine pair is fixed by the paper and deadlines belong to
		// the service's queue, not a foreground process.
		if f.Name == "seed" {
			fields = append(fields, f)
		}
	}
	sf := &specFlags{kind: kind, fields: fields, values: map[string]any{}}
	for _, f := range fields {
		usage := f.Usage
		if len(f.Enum) > 0 {
			usage += " (" + strings.Join(f.Enum, " | ") + ")"
		}
		switch f.Type {
		case "int":
			sf.values[f.Name] = fs.Int(f.FlagName(), atoi(f.Default), usage)
		case "int64":
			sf.values[f.Name] = fs.Int64(f.FlagName(), int64(atoi(f.Default)), usage)
		case "uint64":
			sf.values[f.Name] = fs.Uint64(f.FlagName(), uint64(atoi(f.Default)), usage)
		case "string", "json":
			sf.values[f.Name] = fs.String(f.FlagName(), f.Default, usage)
		default:
			panic("cli: field " + f.Name + " has unsupported schema type " + f.Type)
		}
	}
	return sf
}

// atoi parses a schema default; empty means zero.
func atoi(s string) int {
	if s == "" {
		return 0
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		panic("cli: non-numeric schema default " + s)
	}
	return n
}

// Spec folds the parsed flag values back into a job spec, exactly as if
// the same parameters had been POSTed to clusterd. Zero values are
// omitted so kind defaults keep applying during normalisation.
func (sf *specFlags) Spec() (experiment.Spec, error) {
	m := map[string]any{"kind": sf.kind}
	for _, f := range sf.fields {
		switch v := sf.values[f.Name].(type) {
		case *int:
			if *v != 0 {
				m[f.Name] = *v
			}
		case *int64:
			if *v != 0 {
				m[f.Name] = *v
			}
		case *uint64:
			if *v != 0 {
				m[f.Name] = *v
			}
		case *string:
			if *v == "" {
				continue
			}
			if f.Type == "json" {
				if !json.Valid([]byte(*v)) {
					return experiment.Spec{}, fmt.Errorf("flag -%s: invalid JSON %q", f.FlagName(), *v)
				}
				m[f.Name] = json.RawMessage(*v)
			} else {
				m[f.Name] = *v
			}
		}
	}
	buf, err := json.Marshal(m)
	if err != nil {
		return experiment.Spec{}, err
	}
	var spec experiment.Spec
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return experiment.Spec{}, fmt.Errorf("rebuilding spec from flags: %w", err)
	}
	return spec, nil
}
