package cli

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"reflect"
	"strings"
	"testing"

	"clustereval/internal/experiment"
)

// minimalArgs returns the smallest flag list that makes the kind's spec
// valid (only "app" has a required field).
func minimalArgs(kind string) []string {
	if kind == experiment.KindApp {
		return []string{"-app", "alya"}
	}
	return nil
}

// minimalSpec is the wire-side twin of minimalArgs.
func minimalSpec(kind string) experiment.Spec {
	spec := experiment.Spec{Kind: kind}
	if kind == experiment.KindApp {
		spec.App = "alya"
	}
	return spec
}

// TestSchemaFlagDefaultsRoundTrip pins the driver's core contract: for
// every registered kind, generating flags from the schema, parsing
// nothing, and folding the values back into a spec normalises to exactly
// what a bare spec of that kind normalises to. A schema default that
// drifts from the kind's FromSpec default would split the CLI's
// parameters from the daemon's here.
func TestSchemaFlagDefaultsRoundTrip(t *testing.T) {
	for _, kind := range experiment.Kinds() {
		t.Run(kind, func(t *testing.T) {
			fs := flag.NewFlagSet(kind, flag.ContinueOnError)
			sf := addSpecFlags(fs, kind)
			if err := fs.Parse(minimalArgs(kind)); err != nil {
				t.Fatal(err)
			}
			spec, err := sf.Spec()
			if err != nil {
				t.Fatal(err)
			}
			got, err := spec.Normalize()
			if err != nil {
				t.Fatalf("flag-built spec does not normalise: %v", err)
			}
			want, err := minimalSpec(kind).Normalize()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("flag defaults drifted from registry defaults:\n flags %+v\n bare  %+v", got, want)
			}
		})
	}
}

// TestSchemaFlagOverridesRoundTrip drives non-default values through the
// generated flags and checks they land in the typed params unchanged.
func TestSchemaFlagOverridesRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("netbench", flag.ContinueOnError)
	sf := addSpecFlags(fs, experiment.KindNet)
	if err := fs.Parse([]string{"-size", "4096", "-iters", "7", "-src_node", "3", "-dst_node", "9", "-seed", "11"}); err != nil {
		t.Fatal(err)
	}
	spec, err := sf.Spec()
	if err != nil {
		t.Fatal(err)
	}
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	want := experiment.Spec{
		Kind: experiment.KindNet, Machine: "cte-arm",
		SizeBytes: 4096, Iters: 7, SrcNode: 3, DstNode: 9, Seed: 11,
	}
	if !reflect.DeepEqual(norm, want) {
		t.Errorf("parsed spec = %+v, want %+v", norm, want)
	}
}

// TestSchemaFlagFaultsJSON checks the "json"-typed faults field: valid
// JSON flows into the spec, invalid JSON is refused with the flag named.
func TestSchemaFlagFaultsJSON(t *testing.T) {
	fs := flag.NewFlagSet("netbench", flag.ContinueOnError)
	sf := addSpecFlags(fs, experiment.KindNet)
	if err := fs.Parse([]string{"-faults", `{"nodes":[{"node":3,"failed":true}]}`}); err != nil {
		t.Fatal(err)
	}
	spec, err := sf.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Faults == nil || len(spec.Faults.Nodes) != 1 {
		t.Errorf("faults flag not decoded: %+v", spec.Faults)
	}

	fs = flag.NewFlagSet("netbench", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	sf = addSpecFlags(fs, experiment.KindNet)
	if err := fs.Parse([]string{"-faults", `{not json`}); err != nil {
		t.Fatal(err)
	}
	if _, err := sf.Spec(); err == nil || !strings.Contains(err.Error(), "-faults") {
		t.Errorf("invalid faults JSON error = %v, want one naming -faults", err)
	}
}

// TestEveryToolParses proves each registered binary's flag set builds
// without collisions between schema-generated and tool-specific flags:
// -h must reach flag.ErrHelp, which means every flag registered cleanly.
func TestEveryToolParses(t *testing.T) {
	// clusterd is the eighth binary; it parses through ParseDaemonFlags
	// and is covered by the daemon tests.
	want := []string{"appbench", "clustereval", "fpubench", "hpcgbench", "hplbench", "netbench", "streambench"}
	names := ToolNames()
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("registered tools = %v, want %v", names, want)
	}
	for _, name := range names {
		if err := run(name, []string{"-h"}); !errors.Is(err, flag.ErrHelp) {
			t.Errorf("Run(%s, -h) = %v, want flag.ErrHelp", name, err)
		}
	}
}

// TestRunUnknownToolAndBadFlag pins the driver's error classification.
func TestRunUnknownToolAndBadFlag(t *testing.T) {
	if err := run("nosuchtool", nil); err == nil || !strings.Contains(err.Error(), "nosuchtool") {
		t.Errorf("unknown tool error = %v", err)
	}
	// Silence the FlagSet's own report; the driver must classify it as a
	// usage error either way.
	if err := run("fpubench", []string{"-definitely-not-a-flag"}); !errors.Is(err, errUsage) {
		t.Errorf("bad flag error = %v, want errUsage", err)
	}
}

// TestRunKindReachesEveryKind is the registry-completeness half of the
// CLI contract: every registered kind must be runnable from the
// clustereval binary's -kind mode and print a well-formed JSON result.
func TestRunKindReachesEveryKind(t *testing.T) {
	params := map[string]string{
		experiment.KindStream:       `{"ranks":4}`,
		experiment.KindHybridStream: ``,
		experiment.KindFPU:          `{"iters":200}`,
		experiment.KindNet:          `{"size_bytes":1024,"iters":8}`,
		experiment.KindHPL:          `{"nodes":2}`,
		experiment.KindHPCG:         `{"nodes":2}`,
		experiment.KindApp:          `{"app":"alya"}`,
	}
	for _, kind := range experiment.Kinds() {
		t.Run(kind, func(t *testing.T) {
			p, ok := params[kind]
			if !ok {
				t.Fatalf("kind %q added to the registry without a -kind reachability case", kind)
			}
			var sb strings.Builder
			if err := RunKind(context.Background(), kind, p, &sb); err != nil {
				t.Fatalf("RunKind: %v", err)
			}
			out := sb.String()
			if !strings.Contains(out, "cache key ") {
				t.Errorf("output missing cache key line:\n%s", out)
			}
			// The JSON body follows the two comment lines.
			idx := strings.Index(out, "{")
			if idx < 0 {
				t.Fatalf("no JSON in output:\n%s", out)
			}
			var res experiment.Result
			if err := json.Unmarshal([]byte(out[idx:]), &res); err != nil {
				t.Fatalf("result does not decode: %v\n%s", err, out)
			}
			if res.Kind != kind || res.Summary == "" {
				t.Errorf("result kind %q / summary %q", res.Kind, res.Summary)
			}
		})
	}

	if err := RunKind(context.Background(), "nosuch", "", io.Discard); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := RunKind(context.Background(), experiment.KindHPL, `{"bogus":1}`, io.Discard); err == nil {
		t.Error("unknown -spec field accepted")
	}
}
