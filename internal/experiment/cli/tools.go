package cli

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"clustereval/internal/apps/alya"
	"clustereval/internal/apps/scaling"
	"clustereval/internal/bench/fpu"
	"clustereval/internal/bench/osu"
	"clustereval/internal/bench/stream"
	"clustereval/internal/experiment"
	"clustereval/internal/figures"
	"clustereval/internal/hpcg"
	"clustereval/internal/hpl"
	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/omp"
	"clustereval/internal/report"
	"clustereval/internal/topology"
	"clustereval/internal/units"
)

func init() {
	registerTool(&Tool{Name: "streambench", Kind: experiment.KindStream,
		Bind: func(fs *flag.FlagSet) func(experiment.Spec) error {
			verify := fs.Int("verify", 0, "run the real kernels over N elements and validate")
			threads := fs.Int("threads", 8, "threads for -verify")
			return func(experiment.Spec) error { return StreamBench(*verify, *threads) }
		}})
	registerTool(&Tool{Name: "fpubench", Kind: experiment.KindFPU,
		Bind: func(fs *flag.FlagSet) func(experiment.Spec) error {
			variability := fs.Bool("variability", false, "also run the within-node and across-node variability sweeps")
			return func(spec experiment.Spec) error { return FPUBench(spec.Iters, *variability) }
		}})
	registerTool(&Tool{Name: "netbench", Kind: experiment.KindNet,
		Bind: func(fs *flag.FlagSet) func(experiment.Spec) error {
			des := fs.Bool("des", false, "also measure one pair through the DES-backed MPI runtime")
			return func(spec experiment.Spec) error {
				return NetBench(units.Bytes(spec.SizeBytes), *des, spec.Seed)
			}
		}})
	registerTool(&Tool{Name: "hplbench", Kind: experiment.KindHPL,
		Bind: func(fs *flag.FlagSet) func(experiment.Spec) error {
			verify := fs.Int("verify", 0, "factorize a real NxN system and check the HPL residual")
			nb := fs.Int("nb", 64, "block size for -verify")
			threads := fs.Int("threads", 8, "worker threads for -verify")
			return func(experiment.Spec) error { return HPLBench(*verify, *nb, *threads) }
		}})
	registerTool(&Tool{Name: "hpcgbench", Kind: experiment.KindHPCG,
		Bind: func(fs *flag.FlagSet) func(experiment.Spec) error {
			verify := fs.Int("verify", 0, "solve a real NxNxN HPCG system and report convergence")
			threads := fs.Int("threads", 8, "worker threads for -verify")
			return func(experiment.Spec) error { return HPCGBench(*verify, *threads) }
		}})
	registerTool(&Tool{Name: "appbench", Kind: experiment.KindApp,
		Bind: func(fs *flag.FlagSet) func(experiment.Spec) error {
			return func(spec experiment.Spec) error { return AppBench(spec.App, spec.Seed) }
		}})
}

// StreamBench runs the STREAM experiments (paper Section III-B): the
// Fig. 2 OpenMP thread sweep, the Fig. 3 hybrid MPI+OpenMP sweep, and —
// with verify > 0 — a real concurrent execution of the four kernels
// validated exactly as stream.c validates them.
func StreamBench(verify, threads int) error {
	if verify > 0 {
		team, err := omp.NewTeam(machine.CTEArm().Node, threads, omp.Spread)
		if err != nil {
			return err
		}
		arr, err := stream.NewArrays(verify)
		if err != nil {
			return err
		}
		const iters = 10
		for i := 0; i < iters; i++ {
			stream.RunIteration(team, arr)
		}
		if err := stream.Validate(arr, iters); err != nil {
			return err
		}
		fmt.Printf("real STREAM kernels: %d elements x %d iterations on %d threads validated\n",
			verify, iters, threads)
		return nil
	}

	p := figures.Default()
	plot, _, err := p.Figure2()
	if err != nil {
		return err
	}
	if err := plot.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	t, _, err := p.Figure3()
	if err != nil {
		return err
	}
	return t.Render(os.Stdout)
}

// FPUBench runs the FPU µKernel experiment (paper Section III-A, Fig. 1):
// six scalar/vector x half/single/double variants on one core of each
// machine, plus — with variability — the paper's sweeps across cores and
// nodes.
func FPUBench(iters int, variability bool) error {
	machines := []machine.Machine{machine.CTEArm(), machine.MareNostrum4()}
	bars, err := fpu.Figure1(machines, iters)
	if err != nil {
		return err
	}
	p := figures.Default()
	t, err := p.Figure1()
	if err != nil {
		return err
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	// Checksums prove real arithmetic ran.
	fmt.Println()
	for _, b := range bars {
		if b.Supported {
			fmt.Printf("checksum %-14s %-14s %.6g\n", b.Variant.Name(), b.Machine, b.Checksum)
		}
	}

	if variability {
		fmt.Println()
		for _, m := range machines {
			cv, err := fpu.NodeVariability(m, iters, 1)
			if err != nil {
				return err
			}
			fmt.Printf("%-16s within-node variability: %.3f%%\n", m.Name, 100*cv)
			cv, err = fpu.ClusterVariability(m, min(m.Nodes, 192), iters, 1)
			if err != nil {
				return err
			}
			fmt.Printf("%-16s across-node variability: %.3f%%\n", m.Name, 100*cv)
		}
	}
	return nil
}

// NetBench runs the network experiments (paper Section III-C): the Fig. 4
// all-pairs bandwidth heatmap with degraded-node detection, the Fig. 5
// bandwidth distribution, and — with des — a real Sendrecv loop through
// the discrete-event MPI runtime for one node pair.
func NetBench(size units.Bytes, des bool, seed uint64) error {
	p := figures.WithSeed(seed)
	hm, raw, err := p.Figure4(size)
	if err != nil {
		return err
	}
	if err := hm.Render(os.Stdout); err != nil {
		return err
	}
	for _, d := range raw.DegradedReceivers(0.5) {
		fmt.Printf("degraded receiver: node %d (%s): recv %v vs send %v\n",
			d, topology.TofuNodeName(d), raw.MeanAsReceiver(d), raw.MeanAsSender(d))
	}
	fmt.Println()

	t, dist, err := p.Figure5()
	if err != nil {
		return err
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	bimodal := dist.BimodalSizes(0.12)
	if len(bimodal) > 0 {
		fmt.Printf("bimodal sizes: %v .. %v\n", bimodal[0], bimodal[len(bimodal)-1])
	}

	if des {
		fab, err := interconnect.NewTofuD(p.Arm, 192)
		if err != nil {
			return err
		}
		for _, s := range []units.Bytes{256, 64 * 1024, 4 << 20} {
			bw, err := osu.MeasurePair(fab, 0, 100, s, 64)
			if err != nil {
				return err
			}
			fmt.Printf("DES Sendrecv loop, nodes 0->100, %10v: %v\n", s, bw)
		}
		// osu_latency-style ping-pong sweep through the DES runtime.
		sizes := []units.Bytes{0, 8, 256, 4096, 64 * 1024}
		pts, err := osu.MeasureLatency(fab, 0, 100, sizes, 50)
		if err != nil {
			return err
		}
		fmt.Println("\nDES ping-pong latency (half round trip), nodes 0->100:")
		for _, p := range pts {
			fmt.Printf("  %10v: %v\n", p.Size, p.Latency)
		}
	}
	return nil
}

// HPLBench runs the LINPACK experiment (paper Section IV-A, Fig. 6): the
// scalability model on both clusters, and — with verify > 0 — a real
// blocked LU factorization with the official HPL residual check.
func HPLBench(verify, nb, threads int) error {
	if verify > 0 {
		team, err := omp.NewTeam(machine.CTEArm().Node, threads, omp.Spread)
		if err != nil {
			return err
		}
		a := hpl.RandomSPDish(verify, 1)
		ones := make([]float64, verify)
		for i := range ones {
			ones[i] = 1
		}
		b := a.MatVec(ones)
		start := hostNow()
		lu, err := hpl.Factorize(a, nb, team)
		if err != nil {
			return err
		}
		elapsed := hostSince(start)
		x, err := lu.Solve(b)
		if err != nil {
			return err
		}
		resid := hpl.Residual(a, x, b)
		status := "PASSED"
		if resid > 16 {
			status = "FAILED"
		}
		rate := hpl.FlopCount(verify) / elapsed.Seconds() / 1e9
		fmt.Printf("N=%d nb=%d threads=%d: %.2f GFlop/s (host), residual %.3g -> %s\n",
			verify, nb, threads, rate, resid, status)
		if status == "FAILED" {
			return fmt.Errorf("HPL residual check failed")
		}
		return nil
	}

	p := figures.Default()
	plot, runs, err := p.Figure6()
	if err != nil {
		return err
	}
	if err := plot.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	for _, m := range []string{"CTE-Arm", "MareNostrum 4"} {
		for _, r := range runs[m] {
			fmt.Printf("%-16s nodes=%3d N=%8d P x Q=%2dx%-3d %12s  %5.1f%% of peak  (t=%s)\n",
				m, r.Nodes, r.N, r.P, r.Q, r.Perf.String(), r.PercentOfPeak, r.Time)
		}
	}
	return nil
}

// HPCGBench runs the HPCG experiment (paper Section IV-B, Fig. 7): the
// vanilla/optimized model on both clusters, and — with verify > 0 — a
// real multigrid-preconditioned CG solve on the 27-point stencil.
func HPCGBench(verify, threads int) error {
	if verify > 0 {
		team, err := omp.NewTeam(machine.CTEArm().Node, threads, omp.Spread)
		if err != nil {
			return err
		}
		prob, err := hpcg.NewProblem(verify, verify, verify)
		if err != nil {
			return err
		}
		mg, err := hpcg.NewMG(prob, 4)
		if err != nil {
			return err
		}
		b := make([]float64, prob.NRows)
		for i := range b {
			b[i] = 1
		}
		start := hostNow()
		_, res, err := hpcg.CG(prob, mg, team, b, 100, 1e-9)
		if err != nil {
			return err
		}
		elapsed := hostSince(start)
		fmt.Printf("grid %d^3 (%d rows, %d nonzeros), %d MG levels: converged=%v in %d iterations, %.3gs host time\n",
			verify, prob.NRows, prob.Nonzeros(), mg.Levels(), res.Converged, res.Iterations, elapsed.Seconds())
		for i, r := range res.Residuals {
			fmt.Printf("  iter %2d: ||r|| = %.3e\n", i+1, r)
		}
		if !res.Converged {
			return fmt.Errorf("CG did not converge")
		}
		return nil
	}

	p := figures.Default()
	t, runs, err := p.Figure7()
	if err != nil {
		return err
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	params := hpcg.PaperParameters(machine.CTEArm())
	fmt.Printf("run parameters: nx=%d ny=%d nz=%d rt=%ds, %d ranks/node (MPI-only)\n",
		params.NX, params.NY, params.NZ, params.RuntimeSecs, params.RanksPerNode)
	envKeys := make([]string, 0, len(params.EnvVars))
	for k := range params.EnvVars {
		envKeys = append(envKeys, k)
	}
	sort.Strings(envKeys)
	for _, k := range envKeys {
		fmt.Printf("  %s=%s\n", k, params.EnvVars[k])
	}
	_ = runs
	return nil
}

// AppBench runs the scientific-application experiments of Section V: one
// application per invocation (empty app = all of them), printing each
// scalability figure and the paper's headline comparisons. The menu and
// its order come from the experiment registry's application catalog — the
// same source the "app" job kind validates against.
func AppBench(app string, seed uint64) error {
	p := figures.WithSeed(seed)
	type figFn struct {
		name string
		fn   func() (*report.Plot, error)
	}
	apps := map[string][]figFn{
		"alya": {
			{"Fig. 8", p.Figure8}, {"Fig. 9", p.Figure9}, {"Fig. 10", p.Figure10},
		},
		"nemo":    {{"Fig. 11", p.Figure11}},
		"gromacs": {{"Fig. 12", p.Figure12}, {"Fig. 13", p.Figure13}},
		"openifs": {{"Fig. 14", p.Figure14}, {"Fig. 15", p.Figure15}},
		"wrf":     {{"Fig. 16", p.Figure16}},
	}
	order := experiment.AppNames()

	selected := order
	if app != "" {
		if _, ok := experiment.AppByName(app); !ok {
			return fmt.Errorf("unknown app %q (valid: %s)", app, strings.Join(order, " "))
		}
		selected = []string{app}
	}
	for _, name := range selected {
		for _, f := range apps[name] {
			plot, err := f.fn()
			if err != nil {
				return err
			}
			if err := plot.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		if name == "alya" {
			if err := alyaHighlights(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// alyaHighlights prints the equivalence points the paper calls out.
func alyaHighlights(p figures.Pair) error {
	arm, mn4 := p.Arm, p.Ref
	cte, ref, err := alya.Figure8(arm, mn4)
	if err != nil {
		return err
	}
	target, _ := ref.TimeAt(12)
	fmt.Printf("Alya: %d CTE-Arm nodes match 12 MareNostrum 4 nodes (time step)\n",
		scaling.MatchingNodes(cte, target))
	cteA, refA, err := alya.Figure9(arm, mn4)
	if err != nil {
		return err
	}
	targetA, _ := refA.TimeAt(12)
	fmt.Printf("Alya: %d CTE-Arm nodes match 12 MareNostrum 4 nodes (Assembly)\n",
		scaling.MatchingNodes(cteA, targetA))
	cteS, refS, err := alya.Figure10(arm, mn4)
	if err != nil {
		return err
	}
	targetS, _ := refS.TimeAt(12)
	fmt.Printf("Alya: %d CTE-Arm nodes match 12 MareNostrum 4 nodes (Solver)\n\n",
		scaling.MatchingNodes(cteS, targetS))
	return nil
}
