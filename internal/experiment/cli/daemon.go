package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"clustereval/internal/experiment"
	"clustereval/internal/service"
)

// DaemonOptions is clusterd's validated CLI configuration.
type DaemonOptions struct {
	Addr         string
	Journal      string
	ReplicaDir   string
	Shard        string
	DrainTimeout time.Duration

	Workers    int
	Queue      int
	Cache      int
	JobTimeout time.Duration
	Retries    int
	Backoff    time.Duration

	ShedThreshold     float64
	BreakerThreshold  float64
	BreakerMinSamples int
	BreakerCooldown   time.Duration

	// ListKinds makes the binary print the experiment registry and exit
	// instead of serving.
	ListKinds bool
}

// ParseDaemonFlags parses args (without the program name) into options.
// It validates everything a typo can break and returns an error instead
// of letting the daemon come up silently misconfigured.
func ParseDaemonFlags(args []string) (DaemonOptions, error) {
	var o DaemonOptions
	fs := flag.NewFlagSet("clusterd", flag.ContinueOnError)
	fs.StringVar(&o.Addr, "addr", ":8080", "listen address")
	fs.StringVar(&o.Journal, "journal", "", "write-ahead journal path (empty disables durability)")
	fs.StringVar(&o.ReplicaDir, "replica-dir", "", "directory for follower replicas of other shards' journals (requires -journal; set by clusterfleet)")
	fs.StringVar(&o.Shard, "shard", "", "fleet shard identity (set by clusterfleet; reported on /v1/healthz)")
	fs.DurationVar(&o.DrainTimeout, "drain-timeout", 30*time.Second, "how long a graceful drain may run before in-flight jobs are cancelled")
	fs.IntVar(&o.Workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	fs.IntVar(&o.Queue, "queue", 256, "job queue depth")
	fs.IntVar(&o.Cache, "cache", 1024, "result cache entries (negative disables)")
	fs.DurationVar(&o.JobTimeout, "job-timeout", 2*time.Minute, "per-job execution timeout")
	fs.IntVar(&o.Retries, "retries", 2, "max re-executions of a job failing with a retryable fault (0 disables)")
	fs.DurationVar(&o.Backoff, "retry-backoff", 50*time.Millisecond, "base retry backoff, doubled per attempt (0 means no delay)")
	fs.Float64Var(&o.ShedThreshold, "shed-threshold", 0.9, "queue saturation in (0,1] at which submissions are load-shed with 429")
	fs.Float64Var(&o.BreakerThreshold, "breaker-threshold", 0.5, "recent failure rate in (0,1] at which the circuit breaker opens")
	fs.IntVar(&o.BreakerMinSamples, "breaker-min-samples", 16, "outcomes the failure window must hold before the breaker may open")
	fs.DurationVar(&o.BreakerCooldown, "breaker-cooldown", 5*time.Second, "how long the breaker stays open before a half-open probe")
	fs.BoolVar(&o.ListKinds, "list-kinds", false, "print the experiment kinds the daemon serves, with their parameter schemas, and exit")
	if err := fs.Parse(args); err != nil {
		return DaemonOptions{}, err
	}
	if err := o.validate(); err != nil {
		return DaemonOptions{}, err
	}
	return o, nil
}

// validate rejects configurations that would otherwise misbehave
// silently (a negative backoff quietly meaning "none", a shed threshold
// of 0 rejecting every job).
func (o DaemonOptions) validate() error {
	if o.Retries < 0 {
		return fmt.Errorf("-retries must be >= 0 (0 disables retries), got %d", o.Retries)
	}
	if o.Backoff < 0 {
		return fmt.Errorf("-retry-backoff must be >= 0 (0 means no delay), got %v", o.Backoff)
	}
	if o.DrainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", o.DrainTimeout)
	}
	if o.JobTimeout <= 0 {
		return fmt.Errorf("-job-timeout must be positive, got %v", o.JobTimeout)
	}
	if o.Queue <= 0 {
		return fmt.Errorf("-queue must be positive, got %d", o.Queue)
	}
	if o.Workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = GOMAXPROCS), got %d", o.Workers)
	}
	if o.ShedThreshold <= 0 || o.ShedThreshold > 1 {
		return fmt.Errorf("-shed-threshold must be in (0, 1], got %g", o.ShedThreshold)
	}
	if o.BreakerThreshold <= 0 || o.BreakerThreshold > 1 {
		return fmt.Errorf("-breaker-threshold must be in (0, 1], got %g", o.BreakerThreshold)
	}
	if o.BreakerMinSamples <= 0 {
		return fmt.Errorf("-breaker-min-samples must be positive, got %d", o.BreakerMinSamples)
	}
	if o.BreakerCooldown <= 0 {
		return fmt.Errorf("-breaker-cooldown must be positive, got %v", o.BreakerCooldown)
	}
	if o.ReplicaDir != "" && o.Journal == "" {
		return errors.New("-replica-dir requires -journal: a shard holding replicas for others must be durable itself")
	}
	return nil
}

// Config maps the CLI options onto the service configuration. The CLI
// uses 0 for "disabled" where the library uses negative values (its 0
// means "default"), so the translation happens here.
func (o DaemonOptions) Config() service.Config {
	cfg := service.Config{
		ShardName:         o.Shard,
		ReplicaDir:        o.ReplicaDir,
		Workers:           o.Workers,
		QueueDepth:        o.Queue,
		CacheSize:         o.Cache,
		JobTimeout:        o.JobTimeout,
		MaxRetries:        o.Retries,
		RetryBackoff:      o.Backoff,
		ShedThreshold:     o.ShedThreshold,
		BreakerThreshold:  o.BreakerThreshold,
		BreakerMinSamples: o.BreakerMinSamples,
		BreakerCooldown:   o.BreakerCooldown,
	}
	if o.Retries == 0 {
		cfg.MaxRetries = -1
	}
	if o.Backoff == 0 {
		cfg.RetryBackoff = -1
	}
	return cfg
}

// ListKinds prints the experiment registry's menu to w: one block per
// kind — name, paper figure, title — followed by the kind's parameter
// schema and, at the end, the shared fields every kind accepts. It is the
// offline twin of the daemon's GET /v1/kinds.
func ListKinds(w io.Writer) error {
	for _, d := range experiment.Definitions() {
		if _, err := fmt.Fprintf(w, "%-14s %-10s %s\n", d.Kind, d.Figure, d.Title); err != nil {
			return err
		}
		for _, f := range d.Fields {
			if err := printField(w, f); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintln(w, "shared fields (every kind):"); err != nil {
		return err
	}
	for _, f := range experiment.SharedFields() {
		if err := printField(w, f); err != nil {
			return err
		}
	}
	return nil
}

func printField(w io.Writer, f experiment.Field) error {
	usage := f.Usage
	if len(f.Enum) > 0 {
		usage += " (" + strings.Join(f.Enum, " | ") + ")"
	}
	if f.Default != "" {
		usage += " [default " + f.Default + "]"
	}
	_, err := fmt.Fprintf(w, "    %-12s %-7s %s\n", f.Name, f.Type, usage)
	return err
}

// Daemon starts the evaluation service and HTTP server, blocks until ctx
// is cancelled, then drains gracefully. onReady, when non-nil, receives
// the bound address once the listener is up (tests use it to learn the
// port).
func Daemon(ctx context.Context, opts DaemonOptions, onReady func(net.Addr)) error {
	var svc *service.Service
	var err error
	if opts.Journal != "" {
		svc, err = service.OpenDurable(opts.Config(), opts.Journal)
		if err != nil {
			return err
		}
	} else {
		svc = service.New(opts.Config())
	}
	srv := &http.Server{Handler: service.NewServer(svc)}

	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		_ = svc.Close(context.Background())
		return err
	}
	shardTag := ""
	if opts.Shard != "" {
		shardTag = ", shard " + opts.Shard
	}
	fmt.Printf("clusterd listening on %s (%d workers, queue %d, cache %d%s)\n",
		ln.Addr(), svc.Workers(), opts.Queue, opts.Cache, shardTag)
	if opts.Journal != "" {
		fmt.Printf("clusterd: journal %s, %d job(s) recovered\n", opts.Journal, svc.RecoveredJobs())
	}
	if onReady != nil {
		onReady(ln.Addr())
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		// Listener failed outright; still tear the pool down.
		_ = svc.Close(context.Background())
		return err
	case <-ctx.Done():
	}

	fmt.Println("clusterd: draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), opts.DrainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := svc.Close(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("clusterd: bye")
	return nil
}
