package cli

import "time"

// hostNow and hostSince are the cli layer's only wall-clock access,
// used to time *host* kernel runs (the -verify LU / CG executions),
// never simulated results. Binding them as variables keeps every
// wall-clock read auditable at this one declaration — and overridable
// in tests — which is the injected-clock shape the determinism
// analyzer asks for.
var (
	hostNow   = time.Now
	hostSince = time.Since
)
