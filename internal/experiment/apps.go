package experiment

import (
	"strings"

	"clustereval/internal/apps/alya"
	"clustereval/internal/apps/gromacs"
	"clustereval/internal/apps/nemo"
	"clustereval/internal/apps/openifs"
	"clustereval/internal/apps/scaling"
	"clustereval/internal/apps/wrf"
	"clustereval/internal/machine"
)

// AppInfo is one Section V application in the catalog: its name, the
// primary scalability figure Table IV scores it by, the model run
// producing that figure's series for both paper machines, and the
// single-machine sweep used for machines outside the pair.
type AppInfo struct {
	Name     string
	Figure   string
	Series   func(Pair) ([]scaling.Series, error)
	SeriesOn func(machine.Machine) ([]scaling.Series, error)
}

// maxAppPartition caps the partition an application model schedules onto:
// the Section V jobs are a few thousand nodes at most, so on a
// Fugaku-scale system the model builds its fabric over one scheduler
// partition instead of all ~159k nodes.
const maxAppPartition = 6144

// appPartition returns m capped to maxAppPartition nodes. The machine's
// global topology shape no longer covers the capped count, so the
// partition falls back to the interconnect's derived shape.
func appPartition(m machine.Machine) machine.Machine {
	if m.Nodes > maxAppPartition {
		m.Nodes = maxAppPartition
		m.Topology.Dims = nil
		m.Topology.Wrap = nil
	}
	return m
}

// two adapts the common (cte, ref, err) figure signature to a series slice.
func two(cte, ref scaling.Series, err error) ([]scaling.Series, error) {
	if err != nil {
		return nil, err
	}
	return []scaling.Series{cte, ref}, nil
}

// appCatalog is the single source of truth for the applications the "app"
// kind accepts, in the paper's order: spec validation, cmd/appbench's menu
// and the per-app figure labels all derive from it. Adding an application
// here is the only step needed to expose it everywhere.
var appCatalog = []AppInfo{
	{"alya", "Fig. 8",
		func(p Pair) ([]scaling.Series, error) { return two(alya.Figure8(p.Arm, p.Ref)) },
		alya.SweepOn},
	{"nemo", "Fig. 11",
		func(p Pair) ([]scaling.Series, error) { return two(nemo.Figure11(p.Arm, p.Ref)) },
		nemo.SweepOn},
	{"gromacs", "Fig. 13",
		func(p Pair) ([]scaling.Series, error) { return two(gromacs.Figure13(p.Arm, p.Ref)) },
		gromacs.SweepOn},
	{"openifs", "Fig. 15",
		func(p Pair) ([]scaling.Series, error) { return two(openifs.Figure15(p.Arm, p.Ref)) },
		openifs.SweepOn},
	{"wrf", "Fig. 16",
		func(p Pair) ([]scaling.Series, error) { return wrf.Figure16(p.Arm, p.Ref) },
		wrf.SweepOn},
}

// AppNames returns the catalog's application names in the paper's order.
func AppNames() []string {
	out := make([]string, len(appCatalog))
	for i, a := range appCatalog {
		out[i] = a.Name
	}
	return out
}

// AppByName looks an application up in the catalog.
func AppByName(name string) (AppInfo, bool) {
	for _, a := range appCatalog {
		if a.Name == name {
			return a, true
		}
	}
	return AppInfo{}, false
}

func appNamesJoined() string { return strings.Join(AppNames(), " ") }
