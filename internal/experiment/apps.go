package experiment

import (
	"strings"

	"clustereval/internal/apps/alya"
	"clustereval/internal/apps/gromacs"
	"clustereval/internal/apps/nemo"
	"clustereval/internal/apps/openifs"
	"clustereval/internal/apps/scaling"
	"clustereval/internal/apps/wrf"
)

// AppInfo is one Section V application in the catalog: its name, the
// primary scalability figure Table IV scores it by, and the model run
// producing that figure's series for both machines.
type AppInfo struct {
	Name   string
	Figure string
	Series func(Pair) ([]scaling.Series, error)
}

// two adapts the common (cte, ref, err) figure signature to a series slice.
func two(cte, ref scaling.Series, err error) ([]scaling.Series, error) {
	if err != nil {
		return nil, err
	}
	return []scaling.Series{cte, ref}, nil
}

// appCatalog is the single source of truth for the applications the "app"
// kind accepts, in the paper's order: spec validation, cmd/appbench's menu
// and the per-app figure labels all derive from it. Adding an application
// here is the only step needed to expose it everywhere.
var appCatalog = []AppInfo{
	{"alya", "Fig. 8", func(p Pair) ([]scaling.Series, error) { return two(alya.Figure8(p.Arm, p.Ref)) }},
	{"nemo", "Fig. 11", func(p Pair) ([]scaling.Series, error) { return two(nemo.Figure11(p.Arm, p.Ref)) }},
	{"gromacs", "Fig. 13", func(p Pair) ([]scaling.Series, error) { return two(gromacs.Figure13(p.Arm, p.Ref)) }},
	{"openifs", "Fig. 15", func(p Pair) ([]scaling.Series, error) { return two(openifs.Figure15(p.Arm, p.Ref)) }},
	{"wrf", "Fig. 16", func(p Pair) ([]scaling.Series, error) { return wrf.Figure16(p.Arm, p.Ref) }},
}

// AppNames returns the catalog's application names in the paper's order.
func AppNames() []string {
	out := make([]string, len(appCatalog))
	for i, a := range appCatalog {
		out[i] = a.Name
	}
	return out
}

// AppByName looks an application up in the catalog.
func AppByName(name string) (AppInfo, bool) {
	for _, a := range appCatalog {
		if a.Name == name {
			return a, true
		}
	}
	return AppInfo{}, false
}

func appNamesJoined() string { return strings.Join(AppNames(), " ") }
