package experiment

import (
	"context"
	"fmt"

	"clustereval/internal/machine"
	"clustereval/internal/toolchain"
)

func streamDef() Definition {
	return Definition{
		Kind:   KindStream,
		Title:  "OpenMP STREAM Triad thread sweep",
		Figure: "Fig. 2",
		New:    func() Params { return &StreamParams{} },
		Fields: []Field{
			{Name: "language", Type: "string", Default: "c",
				Usage: "STREAM build language", Enum: []string{"c", "fortran"}},
			{Name: "ranks", Type: "int", Default: "0",
				Usage: "restrict the sweep to one thread count (0 = full sweep 1..cores)"},
		},
	}
}

// StreamParams parameterises the Fig. 2 OpenMP STREAM Triad sweep.
type StreamParams struct {
	Language string
	Ranks    int
}

// FromSpec implements Params.
func (p *StreamParams) FromSpec(spec Spec, m machine.Machine) error {
	switch spec.Language {
	case "":
		p.Language = "c"
	case "c", "fortran":
		p.Language = spec.Language
	default:
		return invalidf("unknown language %q (valid: c fortran)", spec.Language)
	}
	if spec.Ranks < 0 || spec.Ranks > m.Node.Cores() {
		return invalidf("ranks %d out of [0, %d] on %s", spec.Ranks, m.Node.Cores(), m.Name)
	}
	p.Ranks = spec.Ranks
	return nil
}

// ApplyTo implements Params.
func (p *StreamParams) ApplyTo(spec *Spec) {
	spec.Language = p.Language
	spec.Ranks = p.Ranks
}

// language maps the wire value onto the toolchain enum.
func language(s string) toolchain.Language {
	if s == "fortran" {
		return toolchain.Fortran
	}
	return toolchain.C
}

// Run implements Params.
func (p *StreamParams) Run(ctx context.Context, env Env) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := env.Machine
	series, err := env.Pair.StreamSeriesOn(m, language(p.Language))
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sr := &StreamResult{
		Language:      p.Language,
		Elements:      series.Elements,
		BestThreads:   series.Best.Threads,
		BestGBps:      series.Best.Bandwidth.GB(),
		PercentOfPeak: series.PercentOfPeak,
	}
	for _, pt := range series.Points {
		if p.Ranks != 0 && pt.Threads != p.Ranks {
			continue
		}
		sr.Points = append(sr.Points, StreamPoint{Threads: pt.Threads, GBps: pt.Bandwidth.GB()})
	}
	summary := fmt.Sprintf("STREAM Triad on %s (%s): best %.1f GB/s @ %d threads (%.0f%% of peak)",
		m.Name, p.Language, sr.BestGBps, sr.BestThreads, sr.PercentOfPeak)
	if p.Ranks != 0 && len(sr.Points) == 1 {
		summary = fmt.Sprintf("STREAM Triad on %s (%s): %.1f GB/s @ %d threads",
			m.Name, p.Language, sr.Points[0].GBps, p.Ranks)
	}
	energy := streamEnergy(env.Pair.Member(m), series.Elements, series.Best.Threads, series.Best.Bandwidth)
	return &Result{Kind: KindStream, Machine: m.Name, Summary: summary, Stream: sr, Energy: energy}, nil
}
