package experiment

import (
	"context"
	"fmt"

	"clustereval/internal/hpcg"
	"clustereval/internal/machine"
)

func hpcgDef() Definition {
	return Definition{
		Kind:   KindHPCG,
		Title:  "HPCG performance prediction (vanilla and optimized)",
		Figure: "Fig. 7",
		New:    func() Params { return &HPCGParams{} },
		Fields: []Field{
			{Name: "nodes", Type: "int", Default: "1",
				Usage: "node count of the predicted run"},
			{Name: "version", Type: "string", Default: "optimized",
				Usage: "HPCG code version", Enum: []string{"vanilla", "optimized"}},
		},
	}
}

// HPCGParams parameterises one Fig. 7 HPCG prediction.
type HPCGParams struct {
	Nodes   int
	Version string
}

// FromSpec implements Params.
func (p *HPCGParams) FromSpec(spec Spec, m machine.Machine) error {
	if spec.Nodes < 0 || spec.Nodes > m.Nodes {
		return invalidf("nodes %d out of [0, %d] on %s", spec.Nodes, m.Nodes, m.Name)
	}
	p.Nodes = spec.Nodes
	if p.Nodes == 0 {
		p.Nodes = 1
	}
	switch spec.Version {
	case "":
		p.Version = "optimized"
	case "vanilla", "optimized":
		p.Version = spec.Version
	default:
		return invalidf("unknown hpcg version %q (valid: vanilla optimized)", spec.Version)
	}
	return nil
}

// ApplyTo implements Params.
func (p *HPCGParams) ApplyTo(spec *Spec) {
	spec.Nodes = p.Nodes
	spec.Version = p.Version
}

// Run implements Params.
func (p *HPCGParams) Run(ctx context.Context, env Env) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := env.Machine
	v := hpcg.Optimized
	if p.Version == "vanilla" {
		v = hpcg.Vanilla
	}
	run, err := hpcg.Predict(m, v, p.Nodes)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	hr := &HPCGResult{
		Nodes: run.Nodes, Version: p.Version,
		GFlops:        run.Perf.Giga(),
		PercentOfPeak: run.PercentOfPeak,
	}
	return &Result{
		Kind: KindHPCG, Machine: m.Name,
		Summary: fmt.Sprintf("HPCG (%s) on %d %s nodes: %.1f GFlop/s (%.2f%% of peak)",
			hr.Version, hr.Nodes, m.Name, hr.GFlops, hr.PercentOfPeak),
		HPCG:   hr,
		Energy: hpcgEnergy(env.Pair.Member(m), run.Nodes, run.PercentOfPeak),
	}, nil
}
