package experiment

import (
	"fmt"

	"clustereval/internal/apps/scaling"
	"clustereval/internal/bench/stream"
	"clustereval/internal/machine"
	"clustereval/internal/toolchain"
	"clustereval/internal/xrand"
)

// Pair holds the two machines under evaluation. The per-kind entry points
// below (StreamSeries, HybridStreamSeries, AppSeries) are the registry's
// wiring of each experiment to its paper configuration — Table II builds,
// array sizes, per-app figure selection — defined once and shared by the
// figure renderers, the evaluation service and the CLI tools, so all
// three produce bit-identical numbers.
type Pair struct {
	Arm, Ref machine.Machine
}

// DefaultPair returns the paper's machine pair.
func DefaultPair() Pair {
	return Pair{Arm: machine.CTEArm(), Ref: machine.MareNostrum4()}
}

// PairWithSeed returns the paper's machine pair with an alternative noise
// seed plumbed into both machines' network descriptors. Seed 0 keeps the
// built-in seeds that reproduce the paper bit-for-bit; any other value
// yields a different — but equally deterministic — realisation of the
// interconnect noise, so repeated runs with the same seed agree exactly.
// Per-machine streams are derived through xrand so the two fabrics never
// share a noise stream.
func PairWithSeed(seed uint64) Pair {
	p := DefaultPair()
	if seed != 0 {
		p.Arm.Network.Seed = xrand.MixN(seed, 1)
		p.Ref.Network.Seed = xrand.MixN(seed, 2)
	}
	return p
}

// streamSetup returns the STREAM build and array size used on machine m.
// The paper machines get their Table II rows keyed by silicon — any A64FX
// system builds like CTE-Arm, any x86 one like MareNostrum 4 — and other
// Armv8 systems get the GNU/NEON build with the x86 sizing rule.
func streamSetup(m machine.Machine) (toolchain.Compiler, int) {
	switch {
	case m.CPUName == "A64FX":
		return toolchain.StreamOpenMPArm(), 610e6
	case m.Arch == "Armv8":
		return toolchain.StreamGNUArm(), 400e6
	default:
		return toolchain.StreamMN4(), 400e6
	}
}

// hybridStreamCompiler returns the Fig. 3 MPI+OpenMP STREAM build for m,
// with the same silicon-keyed fallbacks as streamSetup.
func hybridStreamCompiler(m machine.Machine) toolchain.Compiler {
	switch {
	case m.CPUName == "A64FX":
		return toolchain.StreamHybridArm()
	case m.Arch == "Armv8":
		return toolchain.StreamGNUArm()
	default:
		return toolchain.StreamMN4()
	}
}

// MachineByName resolves one of the pair's machines from its Table I name,
// preserving any seed plumbed in by PairWithSeed.
func (p Pair) MachineByName(name string) (machine.Machine, error) {
	switch name {
	case p.Arm.Name:
		return p.Arm, nil
	case p.Ref.Name:
		return p.Ref, nil
	default:
		return machine.Machine{}, fmt.Errorf("experiment: unknown machine %q (have %q, %q)",
			name, p.Arm.Name, p.Ref.Name)
	}
}

// Member resolves m against the pair: the pair's own copy (carrying any
// PairWithSeed noise seed) when m is one of the paper machines, and m
// itself — already seeded by the run layer — otherwise. This is what lets
// every experiment kind run on machines outside the paper's pair.
func (p Pair) Member(m machine.Machine) machine.Machine {
	switch m.Name {
	case p.Arm.Name:
		return p.Arm
	case p.Ref.Name:
		return p.Ref
	}
	return m
}

// StreamSeries runs the Fig. 2 OpenMP thread sweep for a single machine and
// language, with exactly the build and array size the full figure uses —
// the evaluation service serves per-machine STREAM jobs through this entry
// point so they match the CLI numbers bit-for-bit.
func (p Pair) StreamSeries(machineName string, lang toolchain.Language) (stream.Series, error) {
	m, err := p.MachineByName(machineName)
	if err != nil {
		return stream.Series{}, err
	}
	return p.StreamSeriesOn(m, lang)
}

// StreamSeriesOn is StreamSeries for an arbitrary machine descriptor,
// resolving paper machines through the pair and others directly.
func (p Pair) StreamSeriesOn(m machine.Machine, lang toolchain.Language) (stream.Series, error) {
	m = p.Member(m)
	comp, elements := streamSetup(m)
	return stream.Figure2(m, comp, lang, elements)
}

// HybridStreamSeries runs the Fig. 3 hybrid MPI+OpenMP sweep for a single
// machine and language, using the full figure's build configuration.
func (p Pair) HybridStreamSeries(machineName string, lang toolchain.Language) (stream.HybridSeries, error) {
	m, err := p.MachineByName(machineName)
	if err != nil {
		return stream.HybridSeries{}, err
	}
	return p.HybridStreamSeriesOn(m, lang)
}

// HybridStreamSeriesOn is HybridStreamSeries for an arbitrary machine.
func (p Pair) HybridStreamSeriesOn(m machine.Machine, lang toolchain.Language) (stream.HybridSeries, error) {
	m = p.Member(m)
	return stream.Figure3(m, hybridStreamCompiler(m), lang)
}

// AppSeries returns the scalability series of an application's primary
// figure — the curve Table IV scores it by — for both machines, resolved
// through the application catalog in apps.go.
func (p Pair) AppSeries(app string) ([]scaling.Series, error) {
	info, ok := AppByName(app)
	if !ok {
		return nil, fmt.Errorf("experiment: unknown app %q (valid: %s)", app, appNamesJoined())
	}
	return info.Series(p)
}
