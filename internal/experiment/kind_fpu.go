package experiment

import (
	"context"
	"fmt"
	"strconv"

	"clustereval/internal/bench/fpu"
	"clustereval/internal/machine"
)

// defaultFPUIters is the canonical iteration count of the FPU µKernel,
// matching fpu.DefaultIterations.
const defaultFPUIters = 20000

func fpuDef() Definition {
	return Definition{
		Kind:   KindFPU,
		Title:  "FPU µKernel scalar/vector variants on one core",
		Figure: "Fig. 1",
		New:    func() Params { return &FPUParams{} },
		Fields: []Field{
			{Name: "iters", Type: "int", Default: strconv.Itoa(defaultFPUIters),
				Usage: "kernel iterations"},
		},
	}
}

// FPUParams parameterises the Fig. 1 FPU µKernel run.
type FPUParams struct {
	Iters int
}

// FromSpec implements Params.
func (p *FPUParams) FromSpec(spec Spec, _ machine.Machine) error {
	if spec.Iters < 0 {
		return invalidf("negative iters %d", spec.Iters)
	}
	p.Iters = spec.Iters
	if p.Iters == 0 {
		p.Iters = defaultFPUIters
	}
	return nil
}

// ApplyTo implements Params.
func (p *FPUParams) ApplyTo(spec *Spec) { spec.Iters = p.Iters }

// Run implements Params.
func (p *FPUParams) Run(ctx context.Context, env Env) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := env.Machine
	bars, err := fpu.Figure1([]machine.Machine{m}, p.Iters)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []FPUBar
	best := 0.0
	for _, b := range bars {
		fb := FPUBar{Variant: b.Variant.Name(), Supported: b.Supported}
		if b.Supported {
			fb.SustainedGFlops = b.Sustained.Giga()
			fb.PeakGFlops = b.Peak.Giga()
			fb.PercentOfPeak = b.PercentOfPeak
			fb.TimeSeconds = float64(b.Time)
			if fb.SustainedGFlops > best {
				best = fb.SustainedGFlops
			}
		}
		out = append(out, fb)
	}
	return &Result{
		Kind: KindFPU, Machine: m.Name,
		Summary: fmt.Sprintf("FPU µKernel on %s: %d variants, best %.1f GFlop/s sustained", m.Name, len(out), best),
		FPU:     out,
		Energy:  fpuEnergy(env.Pair.Member(m), out),
	}, nil
}
