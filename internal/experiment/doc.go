// Package experiment is the single registration point for the paper's
// evaluation menu. Each job kind — stream, hybrid-stream, fpu, net, hpl,
// hpcg, app — is defined exactly once here: its name, its typed parameter
// struct with defaults, its validation and canonicalisation rules (the
// input to clusterd's content-addressed cache keys), and its
// Run(ctx, env) function against the simulation layers.
//
// Every consumer is a thin client of this registry:
//
//   - internal/service derives spec validation, canonical cache keys and
//     runner dispatch from it (the keys are byte-stable: the golden
//     fixtures under testdata/ pin them across refactors);
//   - internal/figures renders the paper's figures by driving the same
//     per-kind entry points (Pair.StreamSeries, Pair.AppSeries, ...);
//   - the cmd/* binaries collapse onto the generic driver in
//     internal/experiment/cli, which generates their flags from each
//     kind's parameter schema.
//
// Registering a new kind makes it simultaneously available to the HTTP
// API (POST /v1/jobs, discoverable via GET /v1/kinds), the clustereval
// -kind runner, and the CLI flag generator — no per-consumer wiring.
package experiment
