package experiment

import (
	"context"
	"fmt"

	"clustereval/internal/hpl"
	"clustereval/internal/machine"
)

func hplDef() Definition {
	return Definition{
		Kind:   KindHPL,
		Title:  "Linpack (HPL) performance prediction",
		Figure: "Fig. 6",
		New:    func() Params { return &HPLParams{} },
		Fields: []Field{
			{Name: "nodes", Type: "int", Default: "1",
				Usage: "node count of the predicted run"},
		},
	}
}

// HPLParams parameterises one Fig. 6 Linpack prediction.
type HPLParams struct {
	Nodes int
}

// FromSpec implements Params.
func (p *HPLParams) FromSpec(spec Spec, m machine.Machine) error {
	if spec.Nodes < 0 || spec.Nodes > m.Nodes {
		return invalidf("nodes %d out of [0, %d] on %s", spec.Nodes, m.Nodes, m.Name)
	}
	p.Nodes = spec.Nodes
	if p.Nodes == 0 {
		p.Nodes = 1
	}
	return nil
}

// ApplyTo implements Params.
func (p *HPLParams) ApplyTo(spec *Spec) { spec.Nodes = p.Nodes }

// Run implements Params.
func (p *HPLParams) Run(ctx context.Context, env Env) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := env.Machine
	run, err := hpl.Predict(m, p.Nodes)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	hr := &HPLResult{
		Nodes: run.Nodes, N: run.N, P: run.P, Q: run.Q,
		TimeSeconds:   float64(run.Time),
		GFlops:        run.Perf.Giga(),
		PercentOfPeak: run.PercentOfPeak,
	}
	return &Result{
		Kind: KindHPL, Machine: m.Name,
		Summary: fmt.Sprintf("HPL on %d %s nodes: N=%d, %.0f GFlop/s (%.0f%% of peak)",
			hr.Nodes, m.Name, hr.N, hr.GFlops, hr.PercentOfPeak),
		HPL:    hr,
		Energy: hplEnergy(env.Pair.Member(m), run.Nodes, run.Time, run.PercentOfPeak),
	}, nil
}
