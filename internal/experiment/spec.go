package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"clustereval/internal/faultsim"
	"clustereval/internal/machine"
)

// Spec is the canonical description of one simulation job. Two specs that
// normalise to the same canonical form are the same deterministic
// simulation, so their results are interchangeable — that property is what
// makes clusterd's result cache safe.
//
// The field order is load-bearing: the canonical cache key is the SHA-256
// of this struct's JSON encoding, so reordering or re-tagging fields
// silently invalidates every existing cache entry and journal. The golden
// fixtures in testdata/cachekeys.json pin the encoding.
type Spec struct {
	// Kind selects the experiment; see Kinds().
	Kind string `json:"kind"`
	// Machine is a preset slug ("cte-arm", "mn4", or an alias).
	Machine string `json:"machine,omitempty"`
	// App names the application for kind "app".
	App string `json:"app,omitempty"`
	// Language is "c" or "fortran" for the STREAM kinds.
	Language string `json:"language,omitempty"`
	// Version is "vanilla" or "optimized" for kind "hpcg".
	Version string `json:"version,omitempty"`
	// Nodes is the node count for "hpl" and "hpcg", and an optional probe
	// point for "app" (0 = whole paper sweep).
	Nodes int `json:"nodes,omitempty"`
	// Ranks restricts the "stream" sweep to one thread count (0 = full
	// sweep 1..cores).
	Ranks int `json:"ranks,omitempty"`
	// SizeBytes is the message size for kind "net".
	SizeBytes int64 `json:"size_bytes,omitempty"`
	// Iters is the iteration count for "net" and "fpu" (0 = default).
	Iters int `json:"iters,omitempty"`
	// SrcNode and DstNode are the endpoints for kind "net".
	SrcNode int `json:"src_node,omitempty"`
	DstNode int `json:"dst_node,omitempty"`
	// Seed reseeds the deterministic interconnect noise (0 = paper
	// default). Identical spec+seed always produce identical results.
	Seed uint64 `json:"seed,omitempty"`
	// Faults injects a deterministic fault scenario (straggler nodes,
	// degraded links, hard node failures) into the simulated cluster for
	// kinds that run through the interconnect ("net", "app"). A spec whose
	// faults have no effect canonicalizes to nil, so it shares a cache
	// entry with the unfaulted job.
	Faults *faultsim.Spec `json:"faults,omitempty"`
	// DeadlineMS bounds the job's total lifetime — queue wait plus
	// execution — in milliseconds from submission; 0 means no deadline
	// (the service's JobTimeout still applies). Every kind accepts it.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// ValidationError marks a spec the registry refuses to run; clusterd's
// HTTP layer turns it into a 400.
type ValidationError struct{ msg string }

func (e *ValidationError) Error() string { return e.msg }

func invalidf(format string, args ...any) error {
	return &ValidationError{msg: fmt.Sprintf(format, args...)}
}

// Normalize validates the spec against its kind's registry definition and
// returns its canonical form: names folded to their canonical slugs and
// every defaultable field filled in, so equal simulations map to equal
// specs.
func (s Spec) Normalize() (Spec, error) {
	n := s
	n.Kind = strings.ToLower(strings.TrimSpace(s.Kind))
	n.App = strings.ToLower(strings.TrimSpace(s.App))
	n.Language = strings.ToLower(strings.TrimSpace(s.Language))
	n.Version = strings.ToLower(strings.TrimSpace(s.Version))

	def, ok := Lookup(n.Kind)
	if !ok {
		return Spec{}, invalidf("unknown kind %q (valid: %s)", s.Kind, strings.Join(Kinds(), " "))
	}

	m, err := resolveMachine(n.Machine)
	if err != nil {
		return Spec{}, err
	}
	n.Machine = canonicalSlug(n.Machine)

	if err := rejectUnusedFields(n, def); err != nil {
		return Spec{}, err
	}
	if def.uses("faults") && n.Faults != nil {
		if err := n.Faults.Validate(m.Nodes); err != nil {
			return Spec{}, invalidf("invalid fault spec on %s: %v", m.Name, err)
		}
	}
	// Canonicalize the fault spec: entries sorted, no-op entries dropped,
	// and an effect-free spec folded to nil so it cannot split the cache.
	n.Faults = n.Faults.Canonical()

	if n.DeadlineMS < 0 {
		return Spec{}, invalidf("negative deadline_ms %d", n.DeadlineMS)
	}

	// Kind-specific validation and defaults through the typed params.
	p := def.New()
	if err := p.FromSpec(n, m); err != nil {
		return Spec{}, err
	}
	p.ApplyTo(&n)
	return n, nil
}

// rejectUnusedFields refuses nonzero values in fields the kind does not
// consume. Silently dropping them would let two different-looking specs
// collide on one cache entry.
func rejectUnusedFields(n Spec, def *Definition) error {
	if !def.uses("app") && n.App != "" {
		return invalidf("field app not used by kind %q", n.Kind)
	}
	if !def.uses("language") && n.Language != "" {
		return invalidf("field language not used by kind %q", n.Kind)
	}
	if !def.uses("version") && n.Version != "" {
		return invalidf("field version not used by kind %q", n.Kind)
	}
	if !def.uses("nodes") && n.Nodes != 0 {
		return invalidf("field nodes not used by kind %q", n.Kind)
	}
	if !def.uses("ranks") && n.Ranks != 0 {
		return invalidf("field ranks not used by kind %q", n.Kind)
	}
	if !def.uses("size_bytes") && n.SizeBytes != 0 {
		return invalidf("field size_bytes not used by kind %q", n.Kind)
	}
	if !def.uses("iters") && n.Iters != 0 {
		return invalidf("field iters not used by kind %q", n.Kind)
	}
	if !def.uses("src_node") && (n.SrcNode != 0 || n.DstNode != 0) {
		return invalidf("fields src_node/dst_node not used by kind %q", n.Kind)
	}
	if !def.uses("faults") && !n.Faults.Zero() {
		return invalidf("field faults not used by kind %q", n.Kind)
	}
	return nil
}

// resolveMachine maps the spec's machine field (empty = cte-arm) to its
// preset descriptor.
func resolveMachine(name string) (machine.Machine, error) {
	if name == "" {
		name = "cte-arm"
	}
	m, ok := machine.Preset(name)
	if !ok {
		return machine.Machine{}, invalidf("unknown machine %q (valid: %s)",
			name, strings.Join(machine.PresetNames(), " "))
	}
	return m, nil
}

// canonicalSlug folds a machine name/alias to its canonical preset slug.
func canonicalSlug(name string) string {
	if name == "" {
		name = "cte-arm"
	}
	if slug, ok := machine.PresetSlug(name); ok {
		return slug
	}
	return strings.ToLower(strings.TrimSpace(name))
}

// Canonicalize normalises the spec and derives its content address: the
// SHA-256 of the canonical JSON encoding. The address is the cache key, so
// any two submissions of the same deterministic simulation — whatever
// aliases or omitted defaults they used — collapse onto one cache entry.
//
// The deadline is stripped before hashing: it can only change *whether* a
// job finishes, never what result it produces, and only successful runs
// — where the deadline demonstrably did not change the outcome — are
// ever cached. Folding it away lets a deadlined resubmission of a
// previously completed spec answer from the cache in microseconds.
func Canonicalize(spec Spec) (Spec, string, error) {
	n, err := spec.Normalize()
	if err != nil {
		return Spec{}, "", err
	}
	keySpec := n
	keySpec.DeadlineMS = 0
	buf, err := json.Marshal(keySpec)
	if err != nil {
		return Spec{}, "", fmt.Errorf("experiment: encoding canonical spec: %w", err)
	}
	sum := sha256.Sum256(buf)
	return n, hex.EncodeToString(sum[:]), nil
}
