package experiment

import (
	"context"
	"fmt"
	"strconv"

	"clustereval/internal/bench/osu"
	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/units"
)

// Canonical defaults of the "net" kind.
const (
	defaultNetSize  = 256
	defaultNetIters = 100
)

func netDef() Definition {
	return Definition{
		Kind:   KindNet,
		Title:  "OSU-style point-to-point bandwidth between two nodes",
		Figure: "Fig. 4/5",
		New:    func() Params { return &NetParams{} },
		Fields: []Field{
			{Name: "size_bytes", Flag: "size", Type: "int64", Default: strconv.Itoa(defaultNetSize),
				Usage: "message size in bytes"},
			{Name: "iters", Type: "int", Default: strconv.Itoa(defaultNetIters),
				Usage: "Sendrecv iterations"},
			{Name: "src_node", Type: "int", Default: "0",
				Usage: "source node of the measured pair"},
			{Name: "dst_node", Type: "int", Default: "1",
				Usage: "destination node of the measured pair"},
			{Name: "faults", Type: "json", Default: "",
				Usage: "fault scenario injected into the simulated cluster (see internal/faultsim)"},
		},
	}
}

// NetParams parameterises one OSU-style point-to-point measurement.
type NetParams struct {
	SizeBytes int64
	Iters     int
	SrcNode   int
	DstNode   int
}

// FromSpec implements Params.
func (p *NetParams) FromSpec(spec Spec, m machine.Machine) error {
	if spec.SizeBytes < 0 {
		return invalidf("negative size_bytes %d", spec.SizeBytes)
	}
	p.SizeBytes = spec.SizeBytes
	if p.SizeBytes == 0 {
		p.SizeBytes = defaultNetSize
	}
	if spec.Iters < 0 {
		return invalidf("negative iters %d", spec.Iters)
	}
	p.Iters = spec.Iters
	if p.Iters == 0 {
		p.Iters = defaultNetIters
	}
	if spec.SrcNode < 0 || spec.SrcNode >= m.Nodes || spec.DstNode < 0 || spec.DstNode >= m.Nodes {
		return invalidf("endpoints %d->%d out of [0, %d) on %s",
			spec.SrcNode, spec.DstNode, m.Nodes, m.Name)
	}
	p.SrcNode, p.DstNode = spec.SrcNode, spec.DstNode
	if p.SrcNode == 0 && p.DstNode == 0 {
		// Unspecified endpoints default to a node pair; same-node
		// transfers are still reachable via any src == dst != 0.
		p.DstNode = 1
	}
	return nil
}

// ApplyTo implements Params.
func (p *NetParams) ApplyTo(spec *Spec) {
	spec.SizeBytes = p.SizeBytes
	spec.Iters = p.Iters
	spec.SrcNode = p.SrcNode
	spec.DstNode = p.DstNode
}

// Run implements Params.
func (p *NetParams) Run(ctx context.Context, env Env) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Use the seeded pair's descriptor so the fabric noise follows the
	// spec's seed exactly like the CLI -seed flag; machines outside the
	// pair arrive pre-seeded from the run layer.
	seeded := env.Pair.Member(env.Machine)
	fab, err := interconnect.New(seeded, seeded.Nodes)
	if err != nil {
		return nil, err
	}
	// The context reaches the DES event loop: a deadline aborts the
	// simulated Sendrecv loop mid-run, not at the next attempt boundary.
	bw, err := osu.MeasurePairContext(ctx, fab, p.SrcNode, p.DstNode, units.Bytes(p.SizeBytes), p.Iters)
	if err != nil {
		return nil, err
	}
	nr := &NetResult{
		SrcNode: p.SrcNode, DstNode: p.DstNode,
		SizeBytes: p.SizeBytes, Iters: p.Iters,
		BandwidthGBps: bw.GB(),
		LatencyMicros: fab.Latency(p.SrcNode, p.DstNode).Micro(),
	}
	return &Result{
		Kind: KindNet, Machine: env.Machine.Name,
		Summary: fmt.Sprintf("%s nodes %d->%d, %v x %d iters: %.2f GB/s, %.2f us zero-byte latency",
			env.Machine.Name, nr.SrcNode, nr.DstNode, units.Bytes(nr.SizeBytes), nr.Iters, nr.BandwidthGBps, nr.LatencyMicros),
		Net:    nr,
		Energy: netEnergy(seeded, p.SizeBytes, p.Iters, float64(bw)),
	}, nil
}
