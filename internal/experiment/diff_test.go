package experiment_test

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"clustereval/internal/des"
	"clustereval/internal/experiment"
)

// diffCases is one modest spec per registered kind — small enough that the
// full kinds × seeds × two-schedulers matrix stays in test-suite budget,
// but every kind still routes through the DES engine's full feature set
// (mpisim collectives, Cond wake-ups, Resource contention).
func diffCases(t *testing.T) []experiment.Spec {
	t.Helper()
	byKind := map[string]experiment.Spec{
		"stream":        {Kind: "stream", Ranks: 4},
		"hybrid-stream": {Kind: "hybrid-stream"},
		"fpu":           {Kind: "fpu"},
		"net":           {Kind: "net", Iters: 20},
		"hpl":           {Kind: "hpl", Nodes: 2},
		"hpcg":          {Kind: "hpcg", Nodes: 2},
		"app":           {Kind: "app", App: "nemo", Nodes: 8},
	}
	kinds := experiment.Kinds()
	cases := make([]experiment.Spec, 0, len(kinds))
	for _, k := range kinds {
		spec, ok := byKind[k]
		if !ok {
			t.Fatalf("kind %q has no differential case: add one so new kinds stay covered", k)
		}
		cases = append(cases, spec)
	}
	return cases
}

// runCanonical canonicalizes and runs spec, returning the result's
// deterministic JSON encoding.
func runCanonical(t *testing.T, spec experiment.Spec) []byte {
	t.Helper()
	canon, _, err := experiment.Canonicalize(spec)
	if err != nil {
		t.Fatalf("canonicalize %+v: %v", spec, err)
	}
	res, err := experiment.Run(context.Background(), canon)
	if err != nil {
		t.Fatalf("run %+v: %v", canon, err)
	}
	buf, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestDifferentialSchedulers is the experiment-level half of the
// differential harness: every registered kind, run at several seeds under
// the reference heap scheduler and under the calendar-queue fast path,
// must produce byte-identical canonical results. This is the
// bit-reproducibility contract of the whole PR — if the fast path
// reorders even one equal-timestamp wake-up anywhere in a simulation,
// some kind's result bytes shift and this test names it.
func TestDifferentialSchedulers(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is not short")
	}
	defer des.UseReferenceQueue(false)
	for _, spec := range diffCases(t) {
		spec := spec
		for seed := uint64(0); seed < 3; seed++ {
			spec.Seed = seed
			spec := spec
			t.Run(fmt.Sprintf("%s/seed%d", spec.Kind, seed), func(t *testing.T) {
				des.UseReferenceQueue(true)
				ref := runCanonical(t, spec)
				des.UseReferenceQueue(false)
				fast := runCanonical(t, spec)
				if string(ref) != string(fast) {
					t.Errorf("scheduler-dependent result for %s seed %d:\nreference: %s\nfast:      %s",
						spec.Kind, seed, ref, fast)
				}
			})
		}
	}
}
