package experiment

import (
	"strings"

	"clustereval/internal/machine"
	"clustereval/internal/perfmodel"
	"clustereval/internal/units"
)

// EnergyResult is the canonical energy-to-solution block every kind
// attaches to its result when the machine has a power layer. It is
// additive on the wire: machines without a power model (or results
// recorded before one existed) simply omit it.
type EnergyResult struct {
	Nodes          int     `json:"nodes"`
	ModeledSeconds float64 `json:"modeled_seconds"`
	AvgWatts       float64 `json:"avg_watts"`
	Joules         float64 `json:"joules"`
	CoreJoules     float64 `json:"core_joules"`
	MemoryJoules   float64 `json:"memory_joules"`
	NetworkJoules  float64 `json:"network_joules"`
	BaseJoules     float64 `json:"base_joules"`
	// EDP is the energy-delay product (J*s), the figure of merit that
	// rewards finishing both fast and frugally.
	EDP float64 `json:"edp"`
}

// energyResult derives the canonical block for a job of `nodes` nodes
// running t under activity a, or nil when the machine has no power layer.
func energyResult(m machine.Machine, nodes int, t units.Seconds, a machine.Activity) *EnergyResult {
	return energyFromBreakdown(perfmodel.EnergyToSolution(m, nodes, t, a), nodes, t)
}

// energyFromBreakdown lifts an already-integrated breakdown into the wire
// block. Nil when the breakdown is empty.
func energyFromBreakdown(e machine.EnergyBreakdown, nodes int, t units.Seconds) *EnergyResult {
	total := e.Total()
	if total <= 0 || t <= 0 {
		return nil
	}
	return &EnergyResult{
		Nodes:          nodes,
		ModeledSeconds: float64(t),
		AvgWatts:       float64(total) / float64(t),
		Joules:         float64(total),
		CoreJoules:     float64(e.Core),
		MemoryJoules:   float64(e.Memory),
		NetworkJoules:  float64(e.Network),
		BaseJoules:     float64(e.Base),
		EDP:            perfmodel.EDP(total, t),
	}
}

// wideISA returns the widest double-precision vector ISA of the machine,
// or scalar when it has no vector unit.
func wideISA(m machine.Machine) machine.ISA {
	if v := m.Node.Core.BestVector(machine.Double); v != nil {
		return v.ISA
	}
	return machine.ISAScalar
}

// meanStreamEff averages the memory domains' STREAM efficiency — the
// bandwidth-rail utilisation of a memory-saturating workload.
func meanStreamEff(m machine.Machine) float64 {
	if len(m.Node.Domains) == 0 {
		return 0
	}
	var sum float64
	for _, d := range m.Node.Domains {
		sum += d.StreamEff
	}
	return sum / float64(len(m.Node.Domains))
}

// streamNTimes is the STREAM kernel's repetition count (the reference
// implementation's NTIMES): the measurement window the energy block
// integrates.
const streamNTimes = 10

// streamEnergy models the energy of a Triad sweep's best point: NTIMES
// passes over the three arrays at the measured bandwidth. Triad performs
// 2 flops per 24 bytes, so the compute pipes run at bw/12 flop/s — a sliver
// of peak, which is exactly why STREAM draws so differently from HPL.
func streamEnergy(m machine.Machine, elements, threads int, bw units.BytesPerSecond) *EnergyResult {
	if bw <= 0 || threads <= 0 {
		return nil
	}
	bytes := 3 * 8 * float64(elements) * streamNTimes
	t := units.Seconds(bytes / float64(bw))
	computePeak := float64(m.Node.Core.DoublePeak()) * float64(threads)
	a := machine.Activity{
		ActiveCores: threads,
		ISA:         wideISA(m),
		MemBWFrac:   float64(bw) / float64(m.Node.MemoryPeak()),
	}
	if computePeak > 0 {
		a.ComputeFrac = (float64(bw) / 12) / computePeak
	}
	return energyResult(m, 1, t, a)
}

// fpuEnergy sums the per-variant kernel energies: one core, compute
// pipes saturated, negligible memory traffic (the chains live in
// registers). Vector variants draw on the wide-ISA rail, scalar ones on
// the scalar rail.
func fpuEnergy(m machine.Machine, bars []FPUBar) *EnergyResult {
	var sum machine.EnergyBreakdown
	var total units.Seconds
	for _, b := range bars {
		if !b.Supported || b.TimeSeconds <= 0 {
			continue
		}
		isa := machine.ISAScalar
		if strings.HasPrefix(b.Variant, "vector") {
			isa = wideISA(m)
		}
		a := machine.Activity{ActiveCores: 1, ISA: isa, ComputeFrac: b.PercentOfPeak / 100}
		e := m.NodeEnergy(a, units.Seconds(b.TimeSeconds))
		sum.Core += e.Core
		sum.Memory += e.Memory
		sum.Network += e.Network
		sum.Base += e.Base
		total += units.Seconds(b.TimeSeconds)
	}
	return energyFromBreakdown(sum, 1, total)
}

// netEnergy models the point-to-point measurement: two endpoints, one
// busy core each, NIC rails up, compute pipes idle while the cores sit in
// the MPI progress loop.
func netEnergy(m machine.Machine, sizeBytes int64, iters int, bwBps float64) *EnergyResult {
	if bwBps <= 0 {
		return nil
	}
	t := units.Seconds(float64(sizeBytes) * float64(iters) / bwBps)
	a := machine.Activity{
		ActiveCores: 1,
		ISA:         machine.ISAScalar,
		MemBWFrac:   bwBps / float64(m.Node.MemoryPeak()),
		Network:     true,
	}
	return energyResult(m, 2, t, a)
}

// hplEnergy integrates the full-load run: every core in the wide pipes at
// the achieved fraction of peak, DGEMM's blocked reuse keeping the memory
// rails at a fraction of STREAM.
func hplEnergy(m machine.Machine, nodes int, t units.Seconds, pctOfPeak float64) *EnergyResult {
	a := machine.Activity{
		ActiveCores: m.Node.Cores(),
		ISA:         wideISA(m),
		ComputeFrac: pctOfPeak / 100,
		MemBWFrac:   0.3 * meanStreamEff(m),
		Network:     nodes > 1,
	}
	return energyResult(m, nodes, t, a)
}

// hpcgSteadyStateWindow is the measurement window the HPCG energy block
// integrates. HPCG reports throughput, not time-to-solution, so the block
// prices one minute of the benchmark's bandwidth-saturating steady state.
const hpcgSteadyStateWindow = 60 * units.Seconds(1)

// hpcgEnergy integrates the steady state: memory rails saturated at the
// STREAM efficiency, compute pipes nearly idle — the mirror image of HPL.
func hpcgEnergy(m machine.Machine, nodes int, pctOfPeak float64) *EnergyResult {
	a := machine.Activity{
		ActiveCores: m.Node.Cores(),
		ISA:         wideISA(m),
		ComputeFrac: pctOfPeak / 100,
		MemBWFrac:   meanStreamEff(m),
		Network:     nodes > 1,
	}
	return energyResult(m, nodes, hpcgSteadyStateWindow, a)
}

// appEnergy integrates one iteration unit (a time step, a simulated day)
// at the given node count with a mixed compute/memory profile: full
// nodes, the wide pipes moderately busy, the memory rails at most of
// their sustainable bandwidth.
func appEnergy(m machine.Machine, nodes int, t units.Seconds) *EnergyResult {
	a := machine.Activity{
		ActiveCores: m.Node.Cores(),
		ISA:         wideISA(m),
		ComputeFrac: 0.4,
		MemBWFrac:   0.8 * meanStreamEff(m),
		Network:     nodes > 1,
	}
	return energyResult(m, nodes, t, a)
}
