package experiment

import (
	"context"
	"fmt"
	"sort"

	"clustereval/internal/machine"
)

// Job kinds the registry defines. Each maps onto one of the repo's
// evaluation layers.
const (
	KindStream       = "stream"        // Fig. 2 OpenMP STREAM Triad sweep
	KindHybridStream = "hybrid-stream" // Fig. 3 MPI+OpenMP STREAM Triad sweep
	KindFPU          = "fpu"           // Fig. 1 FPU µKernel variants
	KindNet          = "net"           // OSU-style point-to-point bandwidth
	KindHPL          = "hpl"           // Fig. 6 Linpack prediction
	KindHPCG         = "hpcg"          // Fig. 7 HPCG prediction
	KindApp          = "app"           // Section V application scalability
)

// Params is the typed parameter struct of one experiment kind. A kind's
// Definition produces a fresh value via New; FromSpec extracts the kind's
// fields from a spec, validates them against the target machine, and
// fills defaults; ApplyTo writes the canonical values back into a spec
// (the input to cache keys); Run executes the experiment.
type Params interface {
	FromSpec(spec Spec, m machine.Machine) error
	ApplyTo(spec *Spec)
	Run(ctx context.Context, env Env) (*Result, error)
}

// Field describes one kind-specific parameter in the Spec wire format.
// The schema drives three things at once: rejection of stray fields
// during normalisation, CLI flag generation in experiment/cli, and the
// GET /v1/kinds serialisation.
type Field struct {
	// Name is the field's JSON name in Spec (e.g. "size_bytes").
	Name string `json:"name"`
	// Flag is the published CLI flag (defaults to Name when empty).
	Flag string `json:"flag,omitempty"`
	// Type is the wire type: "string", "int", "int64" or "uint64".
	Type string `json:"type"`
	// Default is the canonical default as a string; empty means the zero
	// value (or, for required fields, no default).
	Default string `json:"default,omitempty"`
	// Usage is a one-line description, reused as the generated flag's help.
	Usage string `json:"usage"`
	// Enum lists the valid values when the domain is closed.
	Enum []string `json:"enum,omitempty"`
}

// FlagName returns the CLI flag the field is published under.
func (f Field) FlagName() string {
	if f.Flag != "" {
		return f.Flag
	}
	return f.Name
}

// Definition is one registered experiment kind — the single place the
// kind's name, schema, validation and execution are wired.
type Definition struct {
	// Kind is the spec's kind string.
	Kind string
	// Title is a short human description (shown by /v1/kinds and
	// clusterd -list-kinds).
	Title string
	// Figure names the paper artefact the kind reproduces.
	Figure string
	// New returns a fresh zero-value typed parameter struct.
	New func() Params
	// Fields is the kind-specific parameter schema, beyond the shared
	// fields (machine, seed, deadline_ms) every kind accepts.
	Fields []Field

	fieldSet map[string]bool
}

// uses reports whether the kind consumes the named spec field.
func (d *Definition) uses(field string) bool { return d.fieldSet[field] }

// registry holds the definitions in registration order: the paper's menu
// (Fig. 2, 3, 1, network, 6, 7, Section V), matching the original
// service.Kinds() order that clients and tests observe.
var registry []*Definition

func init() {
	register(streamDef())
	register(hybridStreamDef())
	register(fpuDef())
	register(netDef())
	register(hplDef())
	register(hpcgDef())
	register(appDef())
}

// register adds a definition; duplicate kinds are a programming error.
func register(d Definition) {
	for _, have := range registry {
		if have.Kind == d.Kind {
			panic(fmt.Sprintf("experiment: kind %q registered twice", d.Kind))
		}
	}
	d.fieldSet = map[string]bool{}
	for _, f := range d.Fields {
		d.fieldSet[f.Name] = true
	}
	registry = append(registry, &d)
}

// Lookup returns the definition of a kind.
func Lookup(kind string) (*Definition, bool) {
	for _, d := range registry {
		if d.Kind == kind {
			return d, true
		}
	}
	return nil, false
}

// Kinds returns every registered kind in the registry's stable order.
func Kinds() []string {
	out := make([]string, len(registry))
	for i, d := range registry {
		out[i] = d.Kind
	}
	return out
}

// Definitions returns the registered definitions in stable order.
func Definitions() []*Definition {
	out := make([]*Definition, len(registry))
	copy(out, registry)
	return out
}

// SharedFields returns the schema of the fields every kind accepts, in
// wire order. They are part of each kind's effective parameter set even
// though no Definition lists them.
func SharedFields() []Field {
	return []Field{
		{Name: "machine", Type: "string", Default: "cte-arm",
			Usage: "machine preset slug or alias", Enum: presetEnum()},
		{Name: "seed", Type: "uint64", Default: "0",
			Usage: "noise seed for the interconnect models (0 = paper default); identical seeds reproduce identical numbers"},
		{Name: "deadline_ms", Type: "int64", Default: "0",
			Usage: "job lifetime bound in milliseconds from submission (0 = none)"},
	}
}

func presetEnum() []string {
	names := machine.PresetNames()
	sort.Strings(names)
	return names
}
