package experiment

import (
	"reflect"
	"testing"
)

// TestKindsOrder pins the registry order clients observe (the /v1/kinds
// listing and the "unknown kind" error message).
func TestKindsOrder(t *testing.T) {
	want := []string{"stream", "hybrid-stream", "fpu", "net", "hpl", "hpcg", "app"}
	if got := Kinds(); !reflect.DeepEqual(got, want) {
		t.Errorf("Kinds() = %v, want %v", got, want)
	}
}

// TestDefinitionsComplete checks every definition is fully wired: title,
// figure, params constructor and a schema whose fields name real Spec
// JSON fields.
func TestDefinitionsComplete(t *testing.T) {
	specFields := map[string]bool{}
	typ := reflect.TypeOf(Spec{})
	for i := 0; i < typ.NumField(); i++ {
		tag := typ.Field(i).Tag.Get("json")
		for j := 0; j < len(tag); j++ {
			if tag[j] == ',' {
				tag = tag[:j]
				break
			}
		}
		specFields[tag] = true
	}
	for _, d := range Definitions() {
		if d.Title == "" || d.Figure == "" {
			t.Errorf("kind %q: missing title or figure", d.Kind)
		}
		if d.New == nil {
			t.Fatalf("kind %q: nil params constructor", d.Kind)
		}
		if d.New() == nil {
			t.Errorf("kind %q: New returned nil", d.Kind)
		}
		for _, f := range d.Fields {
			if !specFields[f.Name] {
				t.Errorf("kind %q: schema field %q is not a Spec JSON field", d.Kind, f.Name)
			}
			if f.Usage == "" {
				t.Errorf("kind %q: field %q has no usage text", d.Kind, f.Name)
			}
			if f.Type == "" {
				t.Errorf("kind %q: field %q has no type", d.Kind, f.Name)
			}
		}
	}
	for _, f := range SharedFields() {
		if !specFields[f.Name] {
			t.Errorf("shared schema field %q is not a Spec JSON field", f.Name)
		}
	}
}

// TestNormalizeIdempotent: normalising a normalised spec is a no-op for
// every kind's defaults — the property the cache-key contract rests on.
func TestNormalizeIdempotent(t *testing.T) {
	for _, kind := range Kinds() {
		spec := Spec{Kind: kind}
		if kind == KindApp {
			spec.App = "alya"
		}
		n, err := spec.Normalize()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		again, err := n.Normalize()
		if err != nil {
			t.Fatalf("%s: re-normalise: %v", kind, err)
		}
		if !reflect.DeepEqual(n, again) {
			t.Errorf("%s: Normalize not idempotent: %+v -> %+v", kind, n, again)
		}
	}
}

// TestAppCatalogIsSingleSource: the app schema enum, AppNames and the
// validation error all come from the same catalog.
func TestAppCatalogIsSingleSource(t *testing.T) {
	def, ok := Lookup(KindApp)
	if !ok {
		t.Fatal("app kind not registered")
	}
	var enum []string
	for _, f := range def.Fields {
		if f.Name == "app" {
			enum = f.Enum
		}
	}
	if !reflect.DeepEqual(enum, AppNames()) {
		t.Errorf("app field enum %v != AppNames() %v", enum, AppNames())
	}
	want := []string{"alya", "nemo", "gromacs", "openifs", "wrf"}
	if !reflect.DeepEqual(AppNames(), want) {
		t.Errorf("AppNames() = %v, want %v", AppNames(), want)
	}
	if _, err := (Spec{Kind: "app", App: "lammps"}).Normalize(); err == nil {
		t.Error("unknown app accepted")
	}
}
