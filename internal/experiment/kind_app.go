package experiment

import (
	"context"
	"fmt"

	"clustereval/internal/apps/scaling"
	"clustereval/internal/machine"
	"clustereval/internal/units"
)

func appDef() Definition {
	return Definition{
		Kind:   KindApp,
		Title:  "Section V application scalability sweep",
		Figure: "Fig. 8-16",
		New:    func() Params { return &AppParams{} },
		Fields: []Field{
			{Name: "app", Type: "string",
				Usage: "application to evaluate", Enum: AppNames()},
			{Name: "nodes", Type: "int", Default: "0",
				Usage: "probe one node count of the sweep (0 = whole paper sweep)"},
			{Name: "faults", Type: "json", Default: "",
				Usage: "fault scenario injected into the simulated cluster (see internal/faultsim)"},
		},
	}
}

// AppParams parameterises one Section V application scalability job.
type AppParams struct {
	App   string
	Nodes int
}

// FromSpec implements Params.
func (p *AppParams) FromSpec(spec Spec, m machine.Machine) error {
	if _, ok := AppByName(spec.App); !ok {
		return invalidf("unknown app %q (valid: %s)", spec.App, appNamesJoined())
	}
	p.App = spec.App
	if spec.Nodes < 0 || spec.Nodes > m.Nodes {
		return invalidf("nodes %d out of [0, %d] on %s", spec.Nodes, m.Nodes, m.Name)
	}
	p.Nodes = spec.Nodes
	return nil
}

// ApplyTo implements Params.
func (p *AppParams) ApplyTo(spec *Spec) {
	spec.App = p.App
	spec.Nodes = p.Nodes
}

// Run implements Params.
func (p *AppParams) Run(ctx context.Context, env Env) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	info, _ := AppByName(p.App)
	var series []scaling.Series
	var err error
	if env.Machine.Name == env.Pair.Arm.Name || env.Machine.Name == env.Pair.Ref.Name {
		series, err = env.Pair.AppSeries(p.App)
	} else {
		// Machines outside the paper pair run the app's single-machine
		// sweep on a bounded scheduler partition.
		series, err = info.SeriesOn(appPartition(env.Pair.Member(env.Machine)))
	}
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := env.Machine
	ar := &AppResult{App: p.App, Figure: info.Figure}
	for _, s := range series {
		if s.Machine != m.Name {
			continue
		}
		as := AppSeries{Label: s.Label}
		for _, pt := range s.Sorted() {
			as.Points = append(as.Points, AppPoint{Nodes: pt.Nodes, Seconds: float64(pt.Time)})
		}
		ar.Series = append(ar.Series, as)
	}
	if len(ar.Series) == 0 {
		return nil, fmt.Errorf("experiment: %s has no %s series", p.App, m.Name)
	}
	summary := fmt.Sprintf("%s (%s) on %s: %d-point scalability sweep",
		p.App, ar.Figure, m.Name, len(ar.Series[0].Points))
	// Energy-to-solution at the probed node count, or the sweep's largest.
	energyNodes := p.Nodes
	if energyNodes == 0 {
		for _, pt := range ar.Series[0].Points {
			if pt.Nodes > energyNodes {
				energyNodes = pt.Nodes
			}
		}
	}
	if p.Nodes > 0 {
		t, ok := timeAt(series, m.Name, p.Nodes)
		if !ok {
			return nil, invalidf("%s has no %d-node point on %s in the paper's sweep",
				p.App, p.Nodes, m.Name)
		}
		ar.TimeAtNodes = float64(t)
		summary = fmt.Sprintf("%s (%s) on %d %s nodes: %v per iteration unit",
			p.App, ar.Figure, p.Nodes, m.Name, t)
	}
	var energy *EnergyResult
	if t, ok := timeAt(series, m.Name, energyNodes); ok {
		energy = appEnergy(env.Pair.Member(m), energyNodes, t)
	}
	return &Result{Kind: KindApp, Machine: m.Name, Summary: summary, App: ar, Energy: energy}, nil
}

// timeAt finds the sweep time of machineName's first series at nodes.
func timeAt(series []scaling.Series, machineName string, nodes int) (units.Seconds, bool) {
	for _, s := range series {
		if s.Machine != machineName {
			continue
		}
		if t, ok := s.TimeAt(nodes); ok {
			return t, true
		}
	}
	return 0, false
}
