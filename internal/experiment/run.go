package experiment

import (
	"context"

	"clustereval/internal/machine"
	"clustereval/internal/xrand"
)

// Env is the resolved execution environment of one run: the target
// machine (with any compiled fault model attached) and the seeded machine
// pair the per-kind entry points resolve descriptors from.
type Env struct {
	Machine machine.Machine
	Pair    Pair
}

// Run executes one normalised job spec against the evaluation layers. It
// is a pure function of the spec: identical specs produce identical
// results, the invariant the result cache relies on. The context is
// honoured between model phases; the individual model calls are seconds at
// worst, so cancellation latency is bounded by the longest single phase.
func Run(ctx context.Context, spec Spec) (*Result, error) {
	return RunAttempt(ctx, spec, 0)
}

// RunAttempt is Run with an explicit 0-based attempt number: the attempt
// salts the *stochastic* part of the spec's fault scenario (FailProb and
// OSNoise draws), so a retry of a transiently failed job re-rolls the dice
// while explicitly injected faults — a named dead node, a pinned slow link
// — persist across attempts, exactly like real hardware. With a nil or
// effect-free fault spec every attempt is the same pure function of the
// spec that Run documents.
func RunAttempt(ctx context.Context, spec Spec, attempt int) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m, err := resolveMachine(spec.Machine)
	if err != nil {
		return nil, err
	}
	pair := PairWithSeed(spec.Seed)
	if spec.Seed != 0 && m.Name != pair.Arm.Name && m.Name != pair.Ref.Name {
		// Machines outside the paper pair carry their own derived noise
		// stream; stream 3 keeps it disjoint from both pair fabrics.
		m.Network.Seed = xrand.MixN(spec.Seed, 3)
	}

	if spec.Faults != nil {
		model, err := spec.Faults.Compile(m.Nodes, attempt)
		if err != nil {
			return nil, invalidf("fault spec: %v", err)
		}
		m.Faults = model
		// The pair's copy of the machine is what the net and app kinds
		// resolve, so the compiled scenario has to ride on it too.
		switch m.Name {
		case pair.Arm.Name:
			pair.Arm.Faults = model
		case pair.Ref.Name:
			pair.Ref.Faults = model
		}
	}

	def, ok := Lookup(spec.Kind)
	if !ok {
		return nil, invalidf("unknown kind %q", spec.Kind)
	}
	p := def.New()
	if err := p.FromSpec(spec, m); err != nil {
		return nil, err
	}
	return p.Run(ctx, Env{Machine: m, Pair: pair})
}
