package experiment

// Result is the JSON payload of a completed job. Exactly one of the typed
// sub-results is populated, matching the spec's kind. The wire format is
// served verbatim by clusterd and persisted in its journal, so renames
// here are protocol changes.
type Result struct {
	Kind    string        `json:"kind"`
	Machine string        `json:"machine"`
	Summary string        `json:"summary"`
	Stream  *StreamResult `json:"stream,omitempty"`
	Hybrid  *HybridResult `json:"hybrid,omitempty"`
	FPU     []FPUBar      `json:"fpu,omitempty"`
	Net     *NetResult    `json:"net,omitempty"`
	HPL     *HPLResult    `json:"hpl,omitempty"`
	HPCG    *HPCGResult   `json:"hpcg,omitempty"`
	App     *AppResult    `json:"app,omitempty"`
	// Energy is the canonical energy-to-solution block, present whenever
	// the machine has a power layer (additive: absent otherwise).
	Energy *EnergyResult `json:"energy,omitempty"`
}

// StreamPoint is one thread count of the Fig. 2 sweep.
type StreamPoint struct {
	Threads int     `json:"threads"`
	GBps    float64 `json:"gbps"`
}

// StreamResult is the Fig. 2 OpenMP sweep for one machine/language.
type StreamResult struct {
	Language      string        `json:"language"`
	Elements      int           `json:"elements"`
	Points        []StreamPoint `json:"points"`
	BestThreads   int           `json:"best_threads"`
	BestGBps      float64       `json:"best_gbps"`
	PercentOfPeak float64       `json:"percent_of_peak"`
}

// HybridResult is the Fig. 3 hybrid MPI+OpenMP sweep outcome.
type HybridResult struct {
	Language      string  `json:"language"`
	BestConfig    string  `json:"best_config"` // "ranks x threads"
	BestGBps      float64 `json:"best_gbps"`
	PercentOfPeak float64 `json:"percent_of_peak"`
}

// FPUBar is one variant of the Fig. 1 µKernel run.
type FPUBar struct {
	Variant         string  `json:"variant"`
	Supported       bool    `json:"supported"`
	SustainedGFlops float64 `json:"sustained_gflops,omitempty"`
	PeakGFlops      float64 `json:"peak_gflops,omitempty"`
	PercentOfPeak   float64 `json:"percent_of_peak,omitempty"`
	TimeSeconds     float64 `json:"time_seconds,omitempty"`
}

// NetResult is one OSU-style point-to-point measurement.
type NetResult struct {
	SrcNode       int     `json:"src_node"`
	DstNode       int     `json:"dst_node"`
	SizeBytes     int64   `json:"size_bytes"`
	Iters         int     `json:"iters"`
	BandwidthGBps float64 `json:"bandwidth_gbps"`
	LatencyMicros float64 `json:"latency_us"` // zero-byte latency
}

// HPLResult is one Fig. 6 Linpack prediction.
type HPLResult struct {
	Nodes         int     `json:"nodes"`
	N             int     `json:"n"`
	P             int     `json:"p"`
	Q             int     `json:"q"`
	TimeSeconds   float64 `json:"time_seconds"`
	GFlops        float64 `json:"gflops"`
	PercentOfPeak float64 `json:"percent_of_peak"`
}

// HPCGResult is one Fig. 7 HPCG prediction.
type HPCGResult struct {
	Nodes         int     `json:"nodes"`
	Version       string  `json:"version"`
	GFlops        float64 `json:"gflops"`
	PercentOfPeak float64 `json:"percent_of_peak"`
}

// AppPoint is one node count of an application scalability sweep.
type AppPoint struct {
	Nodes   int     `json:"nodes"`
	Seconds float64 `json:"seconds"`
}

// AppSeries is one curve of an application figure (WRF contributes two per
// machine: with and without IO).
type AppSeries struct {
	Label  string     `json:"label,omitempty"`
	Points []AppPoint `json:"points"`
}

// AppResult is the paper's scalability sweep for one application on one
// machine.
type AppResult struct {
	App         string      `json:"app"`
	Figure      string      `json:"figure"`
	Series      []AppSeries `json:"series"`
	TimeAtNodes float64     `json:"time_at_nodes,omitempty"` // set when the spec probed one node count
}
