package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("sibling splits produced identical first output")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) covered %d values, want 7", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestJitterClamped(t *testing.T) {
	r := New(17)
	const eps = 0.05
	for i := 0; i < 100000; i++ {
		j := r.Jitter(eps)
		if j < 1-3*eps-1e-12 || j > 1+3*eps+1e-12 {
			t.Fatalf("Jitter out of clamp: %v", j)
		}
	}
}

func TestSlowJitterOneSided(t *testing.T) {
	r := New(23)
	const eps = 0.2
	sum := 0.0
	for i := 0; i < 100000; i++ {
		j := r.SlowJitter(eps)
		if j < 1 || j > 1+3*eps+1e-12 {
			t.Fatalf("SlowJitter out of [1, 1+3eps]: %v", j)
		}
		sum += j
	}
	// Mean of 1 + eps*|N| is 1 + eps*sqrt(2/pi) ~ 1.16.
	mean := sum / 100000
	if math.Abs(mean-(1+eps*math.Sqrt(2/math.Pi))) > 0.01 {
		t.Errorf("SlowJitter mean = %v", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMix64Distinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if seen[h] {
			t.Fatalf("Mix64 collision at %d", i)
		}
		seen[h] = true
	}
}

func TestMixNOrderSensitive(t *testing.T) {
	if MixN(1, 2) == MixN(2, 1) {
		t.Error("MixN should be order sensitive")
	}
	if MixN(1, 2, 3) == MixN(1, 2) {
		t.Error("MixN should be length sensitive")
	}
}
