// Package xrand implements small, fast, deterministic pseudo-random number
// generators used across the simulator. Determinism is a hard requirement:
// every figure in the reproduction must be bit-identical across runs, so the
// simulator never touches math/rand's global state or the OS entropy pool.
//
// Two generators are provided:
//
//   - SplitMix64: a tiny stateless-feeling mixer used to seed streams and to
//     hash coordinates into noise.
//   - Xoshiro256** ("Rand"): the workhorse generator with a Split method so
//     each simulated rank/node can own an independent, reproducible stream.
package xrand

import "math"

// splitmix64 advances the state and returns the next mixed output.
// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
// generators", OOPSLA 2014.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 hashes x through the SplitMix64 finalizer. It is used to derive
// per-entity noise from stable identifiers (node index, message size, ...)
// without any shared state.
func Mix64(x uint64) uint64 {
	s := x
	return splitmix64(&s)
}

// MixN hashes a sequence of values into a single 64-bit output, so callers
// can build stable stream identities such as MixN(seed, node, pairIndex).
func MixN(vs ...uint64) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, v := range vs {
		h = Mix64(h ^ v)
	}
	return h
}

// Rand is a xoshiro256** generator. The zero value is NOT valid; construct
// with New (a zero state would be a fixed point of the transition function).
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64, following the
// reference initialization recommended by the xoshiro authors.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// Guard against the (astronomically unlikely) all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is independent of (and
// deterministic with respect to) the parent's current state.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xa5a5a5a5deadbeef)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be overkill here;
	// simple modulo bias is < 2^-40 for the n values used by the simulator.
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal deviate using the Box-Muller
// transform (polar form avoided to keep the call count deterministic).
func (r *Rand) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Jitter returns a multiplicative noise factor 1 + eps*N(0,1), clamped to
// [1-3eps, 1+3eps] so extreme tails cannot flip the sign of a duration.
// It is the standard way the simulator models run-to-run variability.
func (r *Rand) Jitter(eps float64) float64 {
	j := 1 + eps*r.NormFloat64()
	lo, hi := 1-3*eps, 1+3*eps
	if j < lo {
		return lo
	}
	if j > hi {
		return hi
	}
	return j
}

// SlowJitter returns a one-sided multiplicative noise factor
// 1 + eps*|N(0,1)|, clamped to [1, 1+3eps]. It models contention and system
// noise, which can only ever slow an operation down — two-sided noise would
// let effective bandwidth exceed the physical link peak.
func (r *Rand) SlowJitter(eps float64) float64 {
	n := r.NormFloat64()
	if n < 0 {
		n = -n
	}
	j := 1 + eps*n
	if hi := 1 + 3*eps; j > hi {
		return hi
	}
	return j
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
