package machine

import (
	"testing"

	"clustereval/internal/units"
)

// FuzzPresetValidate mutates the layer composition of a registered
// preset and checks the validator's contract: it never panics, it is
// deterministic, and the derived-peak accessors stay total (no panics,
// no NaN-driven crashes) on any composition the validator accepts.
func FuzzPresetValidate(f *testing.F) {
	names := PresetNames()
	// Seed with the identity mutation of each preset plus a few
	// deliberately broken compositions.
	f.Add(uint8(0), int64(192), int16(0), int16(0), int16(0), 40.0, 1.7, 8.0, int8(4), uint8(2))
	f.Add(uint8(1), int64(3456), int16(0), int16(0), int16(0), 60.0, 3.5, 15.0, int8(0), uint8(2))
	f.Add(uint8(2), int64(40), int16(0), int16(0), int16(0), 50.0, 3.0, 18.0, int8(0), uint8(2))
	f.Add(uint8(3), int64(158976), int16(24), int16(23), int16(24), 40.0, 1.7, 8.0, int8(4), uint8(2))
	f.Add(uint8(0), int64(0), int16(1), int16(1), int16(1), -5.0, 0.0, 0.0, int8(-1), uint8(0))
	f.Add(uint8(3), int64(7), int16(2), int16(3), int16(0), 1e18, -1.0, 3.6e6, int8(120), uint8(7))

	f.Fuzz(func(t *testing.T, which uint8, nodes int64,
		d0, d1, d2 int16, nodeBase, coreActive, memActive float64,
		sectorWays int8, ports uint8) {
		m, ok := Preset(names[int(which)%len(names)])
		if !ok {
			t.Fatal("registered preset vanished")
		}
		m.Nodes = int(nodes)
		if d0 != 0 || d1 != 0 || d2 != 0 {
			m.Topology.Dims = []int{int(d0), int(d1), int(d2)}
			m.Topology.Wrap = []bool{true, true, true}
		}
		m.Power.NodeBase = units.Watts(nodeBase)
		m.Power.CoreActive[m.SIMD[0]] = units.Watts(coreActive)
		m.Power.MemActive = units.Watts(memActive)
		m.Node.SectorCacheWays = int(sectorWays)
		if n := int(ports) % 8; n != len(m.Node.Core.Ports) {
			mut := make([]FPPort, n)
			for i := range mut {
				mut[i] = FPPort{Name: "P" + string(rune('0'+i)), FMA: true}
			}
			m.Node.Core.Ports = mut
		}

		err1 := m.Validate()
		err2 := m.Validate()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("Validate not deterministic: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		// Accepted compositions must keep every derived quantity total.
		_ = m.Node.DoublePeak()
		_ = m.Node.MemoryPeak()
		_ = m.ClusterPeak(m.Nodes)
		_ = m.FullLoadPower()
		e := m.NodeEnergy(Activity{
			ActiveCores: m.Node.Cores(), ISA: m.SIMD[0],
			ComputeFrac: 1, MemBWFrac: 1, Network: true,
		}, 1)
		if e.Total() < 0 {
			t.Fatalf("accepted composition yields negative energy: %+v", e)
		}
	})
}
