package machine

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"clustereval/internal/units"
)

// relClose reports |got-want|/|want| <= tol.
func relClose(got, want, tol float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/math.Abs(want) <= tol
}

func TestPresetNamesSortedAndStable(t *testing.T) {
	first := PresetNames()
	if !sort.StringsAreSorted(first) {
		t.Errorf("PresetNames() = %v, not sorted", first)
	}
	want := []string{"cte-arm", "fugaku", "mn4", "thunderx2"}
	if !reflect.DeepEqual(first, want) {
		t.Errorf("PresetNames() = %v, want %v", first, want)
	}
	// Deterministic across calls, and callers mutating the returned
	// slice must not corrupt the registry.
	got := PresetNames()
	got[0] = "mutated"
	if again := PresetNames(); !reflect.DeepEqual(again, first) {
		t.Errorf("PresetNames() after caller mutation = %v, want %v", again, first)
	}
}

func TestPresetSlugRoundTrip(t *testing.T) {
	for _, def := range presetDefs {
		// The slug resolves to itself.
		if got, ok := PresetSlug(def.Slug); !ok || got != def.Slug {
			t.Errorf("PresetSlug(%q) = %q, %v; want the slug back", def.Slug, got, ok)
		}
		// Every alias, the full system name, and case variants resolve
		// to the canonical slug.
		names := append([]string{def.Name, def.Slug}, def.Aliases...)
		for _, n := range names {
			for _, v := range []string{n, "  " + n + " "} {
				got, ok := PresetSlug(v)
				if !ok || got != def.Slug {
					t.Errorf("PresetSlug(%q) = %q, %v; want %q", v, got, ok, def.Slug)
				}
			}
		}
		// And the resolved machine's own Name round-trips to the slug,
		// so results can always be mapped back to their preset.
		m, ok := Preset(def.Slug)
		if !ok {
			t.Fatalf("Preset(%q) missing", def.Slug)
		}
		if got, ok := PresetSlug(m.Name); !ok || got != def.Slug {
			t.Errorf("PresetSlug(%q) = %q, %v; want %q", m.Name, got, ok, def.Slug)
		}
	}
	if _, ok := PresetSlug("summit"); ok {
		t.Error("PresetSlug accepted an unregistered name")
	}
}

func TestPresetBuildIsolation(t *testing.T) {
	a := ThunderX2()
	a.Node.Domains[0].PeakBW = 1
	a.Power.CoreActive[ISANEON] = 999
	a.SIMD[0] = ISAAVX512
	b := ThunderX2()
	if b.Node.Domains[0].PeakBW == 1 || b.Power.CoreActive[ISANEON] == 999 || b.SIMD[0] == ISAAVX512 {
		t.Error("mutating one built preset leaked into the next build")
	}
}

func TestAllPresetsValidate(t *testing.T) {
	for _, name := range PresetNames() {
		m, ok := Preset(name)
		if !ok {
			t.Fatalf("Preset(%q) missing", name)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if !m.Power.Defined() {
			t.Errorf("%s: no power model — energy figures would be silently zero", name)
		}
	}
}

// TestThunderX2CrossValidation pins the derived ThunderX2 numbers
// against the Dibona study (arxiv 2007.04868). Like TestTableI, every
// value is *derived* from the layer inputs; the tolerances state how
// closely the study's measurements constrain the model.
func TestThunderX2CrossValidation(t *testing.T) {
	m := ThunderX2()
	checks := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		// 128-bit NEON, 2 FMA pipes, 2 GHz: 2 lanes * 2 pipes * 2 flops
		// * 2.0e9 = 16 GFlop/s per core, exactly.
		{"DP peak per core (GFlop/s)", m.Node.Core.DoublePeak().Giga(), 16.0, 1e-12},
		// 2 x 32 cores: 1.024 TFlop/s per node, exactly.
		{"DP peak per node (GFlop/s)", m.Node.DoublePeak().Giga(), 1024.0, 1e-12},
		// 16 channels of DDR4-2666: the study quotes 170.7 GB/s per socket.
		{"peak memory BW per node (GB/s)", m.Node.MemoryPeak().GB(), 341.4, 1e-12},
		// Full-node Triad: the study measures ~215 GB/s (63 % of peak).
		{"STREAM-sustained BW per node (GB/s)",
			m.Node.MemoryPeak().GB() * m.Node.Domains[0].StreamEff, 215.0, 0.02},
		// Full-load node draw: two ~175 W sockets plus DDR4 and chassis
		// floor. The study's wall measurements put the node near 350 W.
		{"full-load node power (W)", float64(m.FullLoadPower()), 350.0, 0.10},
	}
	for _, c := range checks {
		if !relClose(c.got, c.want, c.tol) {
			t.Errorf("%s = %.4g, want %.4g within %.1f%%", c.name, c.got, c.want, 100*c.tol)
		}
	}

	// Energy efficiency at full DP load: peak/power ~= 3.1 GFlop/s/W.
	// The study's core result is that ThunderX2 trails Skylake on
	// compute-bound energy-to-solution but closes the gap on
	// bandwidth-bound codes; our derived ratios must reproduce both
	// orderings.
	gfw := m.Node.DoublePeak().Giga() / float64(m.FullLoadPower())
	if gfw < 2.5 || gfw > 3.5 {
		t.Errorf("ThunderX2 peak efficiency = %.3g GFlop/s/W, want within [2.5, 3.5]", gfw)
	}
	mn4 := MareNostrum4()
	mn4GFW := mn4.Node.DoublePeak().Giga() / float64(mn4.FullLoadPower())
	if gfw >= mn4GFW {
		t.Errorf("compute-bound: ThunderX2 %.3g GFlop/s/W should trail Skylake %.3g", gfw, mn4GFW)
	}
	// Bandwidth per watt: 16 DDR4 channels vs 12 give ThunderX2 the edge.
	txBWW := m.Node.MemoryPeak().GB() * m.Node.Domains[0].StreamEff / float64(m.FullLoadPower())
	mnBWW := mn4.Node.MemoryPeak().GB() * mn4.Node.Domains[0].StreamEff / float64(mn4.FullLoadPower())
	if txBWW <= mnBWW {
		t.Errorf("bandwidth-bound: ThunderX2 %.3g GB/s/W should beat Skylake %.3g", txBWW, mnBWW)
	}
}

// TestFugakuScale pins the Fugaku-scale preset: same A64FX node as
// CTE-Arm, three orders of magnitude more of them, on the production
// 6-D Tofu-D shape.
func TestFugakuScale(t *testing.T) {
	fugaku := Fugaku()
	cte := CTEArm()
	// Same chip: the core and memory layers must be identical.
	if !reflect.DeepEqual(fugaku.Node.Core, cte.Node.Core) {
		t.Error("Fugaku core layer differs from CTE-Arm's A64FX")
	}
	if !reflect.DeepEqual(fugaku.Node.MemoryModel, cte.Node.MemoryModel) {
		t.Error("Fugaku memory layer differs from CTE-Arm's A64FX")
	}
	if fugaku.Nodes != 158976 {
		t.Errorf("Fugaku nodes = %d, want 158976", fugaku.Nodes)
	}
	product := 1
	for _, d := range fugaku.Topology.Dims {
		product *= d
	}
	if product != fugaku.Nodes {
		t.Errorf("Tofu-D dims %v cover %d nodes, want %d", fugaku.Topology.Dims, product, fugaku.Nodes)
	}
	// Full system DP peak: 158976 * 3.3792 TFlop/s = 537 PFlop/s.
	peak := fugaku.ClusterPeak(fugaku.Nodes)
	if !relClose(peak.Tera()/1e3, 537.2, 0.01) {
		t.Errorf("Fugaku cluster peak = %.4g PFlop/s, want ~537", peak.Tera()/1e3)
	}
	// Full-load power: ~187 W per node -> ~30 MW system, and ~15 GF/W
	// on an HPL-class run (85 % of peak), the A64FX's Green500 band.
	system := float64(fugaku.FullLoadPower()) * float64(fugaku.Nodes)
	if system < 25e6 || system > 35e6 {
		t.Errorf("Fugaku full-load draw = %.3g MW, want within [25, 35]", system/1e6)
	}
	gfw := 0.85 * peak.Giga() / system
	if gfw < 13 || gfw > 17 {
		t.Errorf("Fugaku HPL-class efficiency = %.3g GFlop/s/W, want within [13, 17]", gfw)
	}
}

func TestNodeEnergyBreakdown(t *testing.T) {
	m := CTEArm()
	full := Activity{ActiveCores: 48, ISA: ISASVE, ComputeFrac: 1, MemBWFrac: 0.851, Network: true}
	e := m.NodeEnergy(full, 10)
	if e.Core <= 0 || e.Memory <= 0 || e.Network <= 0 || e.Base <= 0 {
		t.Fatalf("full-load breakdown has a zero component: %+v", e)
	}
	wantTotal := units.EnergyFor(m.NodePower(full), 10)
	if !relClose(float64(e.Total()), float64(wantTotal), 1e-12) {
		t.Errorf("breakdown total %v != NodePower integral %v", e.Total(), wantTotal)
	}
	// Idle node: only the floor and idle rails draw.
	idle := m.NodeEnergy(Activity{}, 10)
	if idle.Network != 0 {
		t.Errorf("idle node drew NIC energy %v", idle.Network)
	}
	if idle.Total() >= e.Total() {
		t.Error("idle energy not below full-load energy")
	}
	// Degenerate inputs never go negative.
	if got := m.NodeEnergy(Activity{ActiveCores: -5, ComputeFrac: -2, MemBWFrac: 7}, 10); got.Total() < 0 {
		t.Errorf("negative energy from degenerate activity: %+v", got)
	}
	if got := m.NodeEnergy(full, -1); got.Total() != 0 {
		t.Errorf("negative interval produced energy: %+v", got)
	}
	// A machine without a power layer reports zero joules, not garbage.
	var bare Machine
	bare.Node = m.Node
	if got := bare.NodeEnergy(full, 10); got.Total() != 0 {
		t.Errorf("power-less machine produced energy: %+v", got)
	}
}

func TestValidateLayerErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Machine)
	}{
		{"port/issue-width mismatch", func(m *Machine) {
			m.Node.Core.Ports = m.Node.Core.Ports[:1]
		}},
		{"unnamed port", func(m *Machine) {
			m.Node.Core.Ports[0].Name = ""
		}},
		{"negative sector-cache ways", func(m *Machine) {
			m.Node.SectorCacheWays = -1
		}},
		{"topology dims do not cover nodes", func(m *Machine) {
			m.Topology.Dims = []int{2, 3}
		}},
		{"non-positive topology dim", func(m *Machine) {
			m.Topology.Dims = []int{m.Nodes, 1, 0}
		}},
		{"wrap length mismatch", func(m *Machine) {
			m.Topology.Dims = []int{m.Nodes}
			m.Topology.Wrap = []bool{true, false}
		}},
		{"negative leaf size", func(m *Machine) {
			m.Topology.LeafSize = -4
		}},
		{"negative power rail", func(m *Machine) {
			m.Power.NIC = -1
		}},
		{"negative ISA rail", func(m *Machine) {
			m.Power.CoreActive[ISASVE] = -1
		}},
		{"missing scalar rail", func(m *Machine) {
			delete(m.Power.CoreActive, ISAScalar)
		}},
		{"missing node floor", func(m *Machine) {
			m.Power.NodeBase = 0
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := CTEArm()
			tc.mutate(&m)
			if m.Validate() == nil {
				t.Errorf("Validate accepted %s", tc.name)
			}
		})
	}
}
