package machine

import "strings"

// presetEntry binds the canonical preset name to its constructor. Presets
// are constructed on demand so callers can mutate the returned Machine
// (e.g. set Network.Seed) without affecting other callers.
type presetEntry struct {
	name    string
	aliases []string
	build   func() Machine
}

// presets is the registry of the machines the evaluation knows how to
// model. The canonical names are the lower-case slugs the service API and
// the CLIs accept.
var presets = []presetEntry{
	{
		name:    "cte-arm",
		aliases: []string{"ctearm", "cte_arm", "a64fx", "CTE-Arm"},
		build:   CTEArm,
	},
	{
		name:    "mn4",
		aliases: []string{"marenostrum4", "marenostrum-4", "marenostrum 4", "skylake", "MareNostrum 4"},
		build:   MareNostrum4,
	},
}

// normalizePreset folds a user-supplied machine name to lookup form.
func normalizePreset(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// Preset returns the machine registered under name (canonical slug, full
// Table I name, or a common alias, case-insensitively). The boolean is
// false when no preset matches.
func Preset(name string) (Machine, bool) {
	slug, ok := PresetSlug(name)
	if !ok {
		return Machine{}, false
	}
	for _, p := range presets {
		if p.name == slug {
			return p.build(), true
		}
	}
	return Machine{}, false
}

// PresetSlug resolves name (slug, alias, or Table I name) to the preset's
// canonical slug. The boolean is false when no preset matches.
func PresetSlug(name string) (string, bool) {
	want := normalizePreset(name)
	for _, p := range presets {
		if p.name == want {
			return p.name, true
		}
		for _, a := range p.aliases {
			if normalizePreset(a) == want {
				return p.name, true
			}
		}
	}
	return "", false
}

// PresetNames returns the canonical slugs of all registered presets, in
// registry order.
func PresetNames() []string {
	names := make([]string, len(presets))
	for i, p := range presets {
		names[i] = p.name
	}
	return names
}
