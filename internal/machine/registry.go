package machine

import (
	"sort"
	"strings"
)

// The registry resolves user-supplied machine names (service API specs,
// CLI flags) to the declarative preset definitions in presets.go.
// Presets are constructed on demand so callers can mutate the returned
// Machine (e.g. set Network.Seed) without affecting other callers.

// normalizePreset folds a user-supplied machine name to lookup form.
func normalizePreset(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// Preset returns the machine registered under name (canonical slug, full
// system name, or a common alias, case-insensitively). The boolean is
// false when no preset matches.
func Preset(name string) (Machine, bool) {
	slug, ok := PresetSlug(name)
	if !ok {
		return Machine{}, false
	}
	for _, p := range presetDefs {
		if p.Slug == slug {
			return p.Build(), true
		}
	}
	return Machine{}, false
}

// PresetDefByName resolves name to the full declarative definition, for
// callers that want the layers rather than the composed Machine.
func PresetDefByName(name string) (PresetDef, bool) {
	slug, ok := PresetSlug(name)
	if !ok {
		return PresetDef{}, false
	}
	for _, p := range presetDefs {
		if p.Slug == slug {
			return p, true
		}
	}
	return PresetDef{}, false
}

// PresetSlug resolves name (slug, alias, or full system name) to the
// preset's canonical slug. The boolean is false when no preset matches.
func PresetSlug(name string) (string, bool) {
	want := normalizePreset(name)
	for _, p := range presetDefs {
		if p.Slug == want {
			return p.Slug, true
		}
		for _, a := range p.Aliases {
			if normalizePreset(a) == want {
				return p.Slug, true
			}
		}
	}
	return "", false
}

// PresetNames returns the canonical slugs of all registered presets,
// sorted, so -list output and error messages are stable regardless of
// registration order.
func PresetNames() []string {
	names := make([]string, len(presetDefs))
	for i, p := range presetDefs {
		names[i] = p.Slug
	}
	sort.Strings(names)
	return names
}
