package machine

import (
	"math"
	"testing"
	"testing/quick"

	"clustereval/internal/units"
)

func TestTableI(t *testing.T) {
	// Every derived quantity must reproduce Table I of the paper.
	arm := CTEArm()
	mn4 := MareNostrum4()

	checks := []struct {
		name      string
		got, want float64
	}{
		{"CTE-Arm freq GHz", arm.Node.Core.FrequencyHz / 1e9, 2.20},
		{"MN4 freq GHz", mn4.Node.Core.FrequencyHz / 1e9, 2.10},
		{"CTE-Arm sockets", float64(arm.Node.Sockets), 1},
		{"MN4 sockets", float64(mn4.Node.Sockets), 2},
		{"CTE-Arm cores/node", float64(arm.Node.Cores()), 48},
		{"MN4 cores/node", float64(mn4.Node.Cores()), 48},
		{"CTE-Arm DP peak/core GF", arm.Node.Core.DoublePeak().Giga(), 70.40},
		{"MN4 DP peak/core GF", mn4.Node.Core.DoublePeak().Giga(), 67.20},
		{"CTE-Arm DP peak/node GF", arm.Node.DoublePeak().Giga(), 3379.20},
		{"MN4 DP peak/node GF", mn4.Node.DoublePeak().Giga(), 3225.60},
		{"CTE-Arm memory GB", arm.Node.MemoryBytes / units.Giga, 32},
		{"MN4 memory GB", mn4.Node.MemoryBytes / units.Giga, 96},
		{"CTE-Arm mem channels", float64(len(arm.Node.Domains) * arm.Node.Domains[0].Channels), 4},
		{"MN4 mem channels/socket", float64(mn4.Node.Domains[0].Channels), 6},
		{"CTE-Arm peak mem BW GB/s", arm.Node.MemoryPeak().GB(), 1024},
		{"MN4 peak mem BW GB/s", mn4.Node.MemoryPeak().GB(), 256},
		{"CTE-Arm nodes", float64(arm.Nodes), 192},
		{"MN4 nodes", float64(mn4.Nodes), 3456},
		{"CTE-Arm net BW GB/s", arm.Network.LinkPeak.GB(), 6.80},
		{"MN4 net BW GB/s", mn4.Network.LinkPeak.GB(), 12.00},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-9*math.Abs(c.want)+1e-12 {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}

	if arm.Network.Kind != TofuD {
		t.Errorf("CTE-Arm interconnect = %v", arm.Network.Kind)
	}
	if mn4.Network.Kind != OmniPath {
		t.Errorf("MN4 interconnect = %v", mn4.Network.Kind)
	}
}

func TestCacheSizes(t *testing.T) {
	arm := CTEArm()
	if got := arm.Node.Core.Caches[0].SizeBytes; got != 64*units.KiB {
		t.Errorf("A64FX L1 = %v", got)
	}
	// Table I reports "32 MB" L2 per node (8 MB per CMG x 4 CMGs).
	l2PerNode := arm.Node.Core.Caches[1].SizeBytes * float64(len(arm.Node.Domains))
	if l2PerNode != 32*units.MiB {
		t.Errorf("A64FX L2/node = %v, want 32 MiB", l2PerNode)
	}
	mn4 := MareNostrum4()
	if got := mn4.Node.Core.Caches[0].SizeBytes; got != 32*units.KiB {
		t.Errorf("SKL L1 = %v", got)
	}
	if got := mn4.Node.Core.Caches[2].SizeBytes; got != 33*units.MiB {
		t.Errorf("SKL L3 = %v", got)
	}
}

func TestVectorPeaks(t *testing.T) {
	arm := CTEArm().Node.Core
	mn4 := MareNostrum4().Node.Core

	cases := []struct {
		name string
		got  units.FlopsPerSecond
		want float64 // GFlop/s
	}{
		{"A64FX SVE double", arm.VectorPeak(ISASVE, Double), 70.4},
		{"A64FX SVE single", arm.VectorPeak(ISASVE, Single), 140.8},
		{"A64FX SVE half", arm.VectorPeak(ISASVE, Half), 281.6},
		{"A64FX NEON double", arm.VectorPeak(ISANEON, Double), 17.6},
		{"A64FX NEON single", arm.VectorPeak(ISANEON, Single), 35.2},
		{"SKL AVX512 double", mn4.VectorPeak(ISAAVX512, Double), 67.2},
		{"SKL AVX512 single", mn4.VectorPeak(ISAAVX512, Single), 134.4},
		{"SKL AVX512 half", mn4.VectorPeak(ISAAVX512, Half), 0}, // no FP16
	}
	for _, c := range cases {
		if math.Abs(c.got.Giga()-c.want) > 1e-9 {
			t.Errorf("%s = %v GF, want %v", c.name, c.got.Giga(), c.want)
		}
	}
}

func TestScalarPeaks(t *testing.T) {
	arm := CTEArm().Node.Core
	if got := arm.ScalarPeak().Giga(); math.Abs(got-8.8) > 1e-9 {
		t.Errorf("A64FX scalar peak = %v GF, want 8.8", got)
	}
	mn4 := MareNostrum4().Node.Core
	if got := mn4.ScalarPeak().Giga(); math.Abs(got-8.4) > 1e-9 {
		t.Errorf("SKL scalar peak = %v GF, want 8.4", got)
	}
}

func TestBestVector(t *testing.T) {
	arm := CTEArm().Node.Core
	if v := arm.BestVector(Double); v == nil || v.ISA != ISASVE {
		t.Errorf("A64FX best double unit = %+v, want SVE", v)
	}
	if v := arm.BestVector(Half); v == nil || v.ISA != ISASVE {
		t.Errorf("A64FX best half unit = %+v, want SVE", v)
	}
	mn4 := MareNostrum4().Node.Core
	if v := mn4.BestVector(Half); v != nil {
		t.Errorf("SKL should have no half-precision unit, got %+v", v)
	}
}

func TestDomainOf(t *testing.T) {
	arm := CTEArm().Node
	cases := []struct{ core, dom int }{
		{0, 0}, {11, 0}, {12, 1}, {23, 1}, {24, 2}, {36, 3}, {47, 3},
	}
	for _, c := range cases {
		if got := arm.DomainOf(c.core); got != c.dom {
			t.Errorf("DomainOf(%d) = %d, want %d", c.core, got, c.dom)
		}
	}
	mn4 := MareNostrum4().Node
	if mn4.DomainOf(0) != 0 || mn4.DomainOf(23) != 0 || mn4.DomainOf(24) != 1 {
		t.Error("MN4 socket mapping wrong")
	}
}

func TestDomainOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("DomainOf(-1) did not panic")
		}
	}()
	CTEArm().Node.DomainOf(-1)
}

func TestValidatePresets(t *testing.T) {
	for _, m := range []Machine{CTEArm(), MareNostrum4()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	m := CTEArm()
	m.Nodes = 0
	if m.Validate() == nil {
		t.Error("zero nodes accepted")
	}

	m = CTEArm()
	m.Node.Domains[0].Cores = 13 // domains no longer cover node cores
	if m.Validate() == nil {
		t.Error("inconsistent domain cores accepted")
	}

	m = CTEArm()
	m.Network.LinkPeak = 0
	if m.Validate() == nil {
		t.Error("zero link bandwidth accepted")
	}

	m = CTEArm()
	m.Node.Core.FrequencyHz = 0
	if m.Validate() == nil {
		t.Error("zero frequency accepted")
	}

	m = CTEArm()
	m.Node.Domains[0].PeakBW = 0
	if m.Validate() == nil {
		t.Error("zero domain bandwidth accepted")
	}
}

func TestClusterPeak(t *testing.T) {
	arm := CTEArm()
	// 192 nodes x 3379.2 GF = 648.8 TF.
	got := arm.ClusterPeak(192).Tera()
	if math.Abs(got-648.8064) > 1e-6 {
		t.Errorf("CTE-Arm 192-node peak = %v TF", got)
	}
}

func TestPrecisionBits(t *testing.T) {
	if Half.Bits() != 16 || Single.Bits() != 32 || Double.Bits() != 64 {
		t.Error("precision bit widths wrong")
	}
	if Half.String() != "half" || Single.String() != "single" || Double.String() != "double" {
		t.Error("precision names wrong")
	}
}

// Property: vector peak scales linearly with lane count across precisions
// whenever both precisions are supported.
func TestVectorPeakScalingProperty(t *testing.T) {
	f := func(widthRaw, issueRaw uint8) bool {
		width := (int(widthRaw%4) + 1) * 128 // 128..512
		issue := int(issueRaw%4) + 1
		c := Core{
			FrequencyHz: 2e9,
			Vector: []VectorUnit{{
				ISA: ISASVE, WidthBits: width, IssuePerCyc: issue,
				FMA: true, SupportsHalf: true,
			}},
		}
		d := float64(c.VectorPeak(ISASVE, Double))
		s := float64(c.VectorPeak(ISASVE, Single))
		h := float64(c.VectorPeak(ISASVE, Half))
		return math.Abs(s-2*d) < 1e-6 && math.Abs(h-4*d) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
