package machine

import "clustereval/internal/units"

// The registered systems, as declarative layer compositions. The two
// paper machines (Table I) keep every value they have always had — all
// headline numbers are *derived* from these micro-architectural inputs
// and TestTableI asserts the derivations reproduce the table. The
// ThunderX2 and Fugaku-scale presets extend the same schema to the
// related work (arxiv 2007.04868 and 2304.11002); their derived peaks
// are cross-validated in presets_test.go.

// PresetDef is one declarative preset: identity, the four hardware
// layers, and the registry slug/aliases it answers to. Build composes
// the layers into a Machine; the table below is the single source of
// truth for every registered system.
type PresetDef struct {
	Slug    string
	Aliases []string

	Name       string
	Integrator string
	CPUName    string
	Arch       string
	SIMD       []ISA

	Sockets        int
	CoresPerSocket int
	Core           CoreModel
	Memory         MemoryModel
	OSNoise        float64

	Nodes            int
	MPIBufferPerRank float64
	Network          Network
	Topology         TopologyModel
	Power            PowerModel
}

// Build composes the layers into a Machine. Slices and maps are cloned
// so callers can mutate the returned Machine (e.g. set Network.Seed)
// without affecting other callers — the same on-demand-construction
// contract the old per-preset constructor functions gave.
func (p PresetDef) Build() Machine {
	core := p.Core
	core.Vector = append([]VectorUnit(nil), p.Core.Vector...)
	core.Caches = append([]Cache(nil), p.Core.Caches...)
	core.Ports = append([]FPPort(nil), p.Core.Ports...)
	mem := p.Memory
	mem.Domains = append([]MemoryDomain(nil), p.Memory.Domains...)
	power := p.Power
	if p.Power.CoreActive != nil {
		power.CoreActive = make(map[ISA]units.Watts, len(p.Power.CoreActive))
		for isa, w := range p.Power.CoreActive {
			power.CoreActive[isa] = w
		}
	}
	topo := p.Topology
	topo.Dims = append([]int(nil), p.Topology.Dims...)
	topo.Wrap = append([]bool(nil), p.Topology.Wrap...)
	return Machine{
		Name:       p.Name,
		Integrator: p.Integrator,
		CPUName:    p.CPUName,
		Arch:       p.Arch,
		SIMD:       append([]ISA(nil), p.SIMD...),
		Node: Node{
			Sockets:        p.Sockets,
			CoresPerSocket: p.CoresPerSocket,
			Core:           core,
			MemoryModel:    mem,
			OSNoise:        p.OSNoise,
		},
		Nodes:            p.Nodes,
		MPIBufferPerRank: p.MPIBufferPerRank,
		Network:          p.Network,
		Topology:         topo,
		Power:            power,
	}
}

// domains replicates one MemoryDomain n times with numbered names —
// the A64FX's four identical CMGs, a Xeon's two identical sockets.
func domains(n int, prefix string, d MemoryDomain) []MemoryDomain {
	ds := make([]MemoryDomain, n)
	for i := range ds {
		ds[i] = d
		ds[i].Name = prefix + string(rune('0'+i))
	}
	return ds
}

// a64fxCore is the A64FX core layer, shared verbatim by the CTE-Arm and
// Fugaku-scale presets: same chip, very different cluster around it.
var a64fxCore = CoreModel{
	FrequencyHz: 2.20e9,
	Vector: []VectorUnit{
		// 512-bit SVE, two FMA pipes, full-rate FP16.
		{ISA: ISASVE, WidthBits: 512, IssuePerCyc: 2, FMA: true, SupportsHalf: true},
		// 128-bit NEON executed on the same two pipes.
		{ISA: ISANEON, WidthBits: 128, IssuePerCyc: 2, FMA: true, SupportsHalf: true},
	},
	ScalarFMAPerCycle: 2,
	// The A64FX scalar core is a much shallower out-of-order design than
	// Skylake (smaller ROB, fewer AGUs, longer L1 latency); on irregular
	// unvectorized code it sustains roughly 30 % of Skylake's per-core
	// scalar IPC at equal frequency. This one constant is what drives
	// the paper's 2-4x application slowdowns.
	OoOFactor: 0.30,
	Caches: []Cache{
		{Level: 1, SizeBytes: 64 * units.KiB, Shared: false},
		{Level: 2, SizeBytes: 8 * units.MiB, Shared: true}, // per CMG; 32 MB/node
	},
	// SimEng's a64fx.yaml port map: FLA executes the full SVE set, FLB
	// the simple/multiply subset; both issue FMAs, matching IssuePerCyc.
	Ports: []FPPort{
		{Name: "FLA", FMA: true, FullVector: true},
		{Name: "FLB", FMA: true, FullVector: false},
	},
}

// a64fxMemory is the A64FX node memory layer (32 GiB HBM2 over 4 CMGs),
// shared by CTE-Arm and Fugaku-scale.
var a64fxMemory = MemoryModel{
	Domains: domains(4, "CMG", MemoryDomain{
		Cores:      12,
		Channels:   1, // one HBM2 stack per CMG
		PeakBW:     units.BytesPerSecond(256 * units.Giga),
		Technology: "HBM2",
		// One MPI rank per CMG with OpenMP inside sustains ~85 % of
		// peak on the Fortran Triad (paper Fig. 3: 862.6 GB/s of 1024).
		StreamEff:  0.851,
		SingleCore: units.BytesPerSecond(19 * units.Giga),
	}),
	MemoryBytes: 32 * units.Giga,
	// Default paging scatters a single process's pages across CMGs;
	// the ring bus then caps aggregate bandwidth at ~29 % of peak
	// (Fig. 2: 292 of 1024 GB/s).
	FirstTouchNUMA:    false,
	InterleaveCap:     units.BytesPerSecond(294 * units.Giga),
	InterleavedCoreBW: units.BytesPerSecond(12.3 * units.Giga),
	OversubSlope:      0.002,
	// The A64FX sector cache can pin up to 4 of the 16 L2 ways for
	// streaming data; the production clusters run 2 MiB pages.
	SectorCacheWays: 4,
	HugePages:       true,
}

// a64fxPower is the A64FX node power layer. Full load comes to ~187 W
// per node — 48 cores in SVE at ~1.7 W above idle dominate — which puts
// the chip at ~18 GFlop/s/W of DP peak, landing HPL near the ~15 GF/W
// the A64FX holds on the Green500.
var a64fxPower = PowerModel{
	NodeBase: 40,
	CoreIdle: 0.25,
	CoreActive: map[ISA]units.Watts{
		ISAScalar: 0.6,
		ISANEON:   1.0,
		ISASVE:    1.7,
	},
	MemIdle:   4, // per HBM2 stack
	MemActive: 8,
	NIC:       10,
}

// presetDefs is the data-driven registry: adding a machine is adding a
// literal here, and every experiment kind can run on it immediately.
var presetDefs = []PresetDef{
	{
		// CTE-Arm: 192 nodes, one Fujitsu A64FX (48 cores, 4 CMGs,
		// HBM2) per node, TofuD interconnect.
		Slug:    "cte-arm",
		Aliases: []string{"ctearm", "cte_arm", "a64fx", "CTE-Arm"},

		Name:       "CTE-Arm",
		Integrator: "Fujitsu",
		CPUName:    "A64FX",
		Arch:       "Armv8",
		SIMD:       []ISA{ISANEON, ISASVE},

		Sockets:        1,
		CoresPerSocket: 48,
		Core:           a64fxCore,
		Memory:         a64fxMemory,
		OSNoise:        0.004,

		Nodes:            192,
		MPIBufferPerRank: 0.43 * units.Giga, // Fujitsu MPI eager buffers
		Network: Network{
			Kind:           TofuD,
			LinkPeak:       units.BytesPerSecond(6.8 * units.Giga),
			BaseLatency:    units.Seconds(0.49e-6),
			PerHopLatency:  units.Seconds(0.10e-6),
			InjectionLinks: 6, // six TNIs per node
		},
		Power: a64fxPower,
	},
	{
		// MareNostrum 4: 3456 nodes, two Intel Xeon Platinum 8160
		// (Skylake, 24 cores) per node, OmniPath fabric.
		Slug:    "mn4",
		Aliases: []string{"marenostrum4", "marenostrum-4", "marenostrum 4", "skylake", "MareNostrum 4"},

		Name:       "MareNostrum 4",
		Integrator: "Lenovo",
		CPUName:    "Intel Xeon Platinum 8160",
		Arch:       "Intel x86",
		SIMD:       []ISA{ISAAVX512},

		Sockets:        2,
		CoresPerSocket: 24,
		Core: CoreModel{
			FrequencyHz: 2.10e9,
			Vector: []VectorUnit{
				// Two 512-bit AVX-512 FMA units; no FP16 arithmetic.
				{ISA: ISAAVX512, WidthBits: 512, IssuePerCyc: 2, FMA: true, SupportsHalf: false},
			},
			ScalarFMAPerCycle: 2,
			OoOFactor:         1.0, // reference
			Caches: []Cache{
				{Level: 1, SizeBytes: 32 * units.KiB, Shared: false},
				{Level: 2, SizeBytes: 1 * units.MiB, Shared: false},
				{Level: 3, SizeBytes: 33 * units.MiB, Shared: true},
			},
			// Skylake issues FMAs on ports 0 and 5; both run the full
			// AVX-512 set once the second FMA unit powers up.
			Ports: []FPPort{
				{Name: "P0", FMA: true, FullVector: true},
				{Name: "P5", FMA: true, FullVector: true},
			},
		},
		Memory: MemoryModel{
			Domains: domains(2, "Socket", MemoryDomain{
				Cores:      24,
				Channels:   6,
				PeakBW:     units.BytesPerSecond(128 * units.Giga), // 6 x DDR4-2666
				Technology: "DDR4-2666",
				// Skylake sustains ~79 % of DDR4 peak on Triad with a full
				// socket of threads (paper Fig. 2: 201.2 of 256 GB/s).
				StreamEff:  0.79,
				SingleCore: units.BytesPerSecond(12.5 * units.Giga),
			}),
			MemoryBytes: 96 * units.Giga,
			// Linux first-touch places pages locally, so OpenMP-only
			// STREAM on MareNostrum 4 is not NUMA-penalized, and Skylake's
			// memory controllers do not degrade under full threading.
			FirstTouchNUMA: true,
			OversubSlope:   0,
		},
		OSNoise: 0.006,

		Nodes:            3456,
		MPIBufferPerRank: 0.10 * units.Giga,
		Network: Network{
			Kind:           OmniPath,
			LinkPeak:       units.BytesPerSecond(12.0 * units.Giga),
			BaseLatency:    units.Seconds(1.10e-6),
			PerHopLatency:  units.Seconds(0.15e-6),
			InjectionLinks: 1,
		},
		// Two 150 W sockets plus DDR4 and chassis floor: ~335 W per node
		// at full AVX-512 load, ~9.6 GFlop/s/W of DP peak — the Skylake
		// side of the ThunderX2 study's energy comparison.
		Power: PowerModel{
			NodeBase: 60,
			CoreIdle: 1.0,
			CoreActive: map[ISA]units.Watts{
				ISAScalar: 2.0,
				ISAAVX512: 3.5,
			},
			MemIdle:   10, // per socket's 6 DDR4 channels
			MemActive: 15,
			NIC:       15,
		},
	},
	{
		// Marvell ThunderX2 (the Dibona cluster of arxiv 2007.04868):
		// 2 x 32-core CN9980 per node, 8-channel DDR4-2666 per socket,
		// NEON only (no SVE), Infiniband EDR fat tree.
		Slug:    "thunderx2",
		Aliases: []string{"tx2", "thunder-x2", "dibona", "ThunderX2"},

		Name:       "ThunderX2",
		Integrator: "Atos",
		CPUName:    "Marvell ThunderX2 CN9980",
		Arch:       "Armv8",
		SIMD:       []ISA{ISANEON},

		Sockets:        2,
		CoresPerSocket: 32,
		Core: CoreModel{
			FrequencyHz: 2.00e9,
			Vector: []VectorUnit{
				// Two 128-bit NEON FMA pipes; no FP16 arithmetic in FP units.
				{ISA: ISANEON, WidthBits: 128, IssuePerCyc: 2, FMA: true, SupportsHalf: false},
			},
			ScalarFMAPerCycle: 2,
			// Vulcan's out-of-order core is far closer to Skylake than the
			// A64FX's: the Dibona study measures near-parity per-core on
			// irregular scalar code at equal frequency.
			OoOFactor: 0.90,
			Caches: []Cache{
				{Level: 1, SizeBytes: 32 * units.KiB, Shared: false},
				{Level: 2, SizeBytes: 256 * units.KiB, Shared: false},
				{Level: 3, SizeBytes: 32 * units.MiB, Shared: true}, // distributed L3 per socket
			},
			Ports: []FPPort{
				{Name: "FP0", FMA: true, FullVector: true},
				{Name: "FP1", FMA: true, FullVector: true},
			},
		},
		Memory: MemoryModel{
			Domains: domains(2, "Socket", MemoryDomain{
				Cores:      32,
				Channels:   8,
				PeakBW:     units.BytesPerSecond(170.7 * units.Giga), // 8 x DDR4-2666
				Technology: "DDR4-2666",
				// Dibona's full-socket Triad sustains ~63 % of peak
				// (2007.04868: ~215 GB/s of 341 across the node).
				StreamEff:  0.63,
				SingleCore: units.BytesPerSecond(11 * units.Giga),
			}),
			MemoryBytes:    256 * units.Giga,
			FirstTouchNUMA: true,
			OversubSlope:   0.001,
		},
		OSNoise: 0.005,

		Nodes:            40, // Dibona: 40 compute nodes
		MPIBufferPerRank: 0.12 * units.Giga,
		Network: Network{
			Kind:           Infiniband,
			LinkPeak:       units.BytesPerSecond(12.5 * units.Giga), // EDR 100 Gb/s
			BaseLatency:    units.Seconds(1.00e-6),
			PerHopLatency:  units.Seconds(0.12e-6),
			InjectionLinks: 1,
		},
		Topology: TopologyModel{LeafSize: 20},
		// The study reports ~175 W per socket under HPL-class load; with
		// 16 DDR4 channels and the chassis floor the node lands at ~335 W,
		// ~3.1 GFlop/s/W of DP peak — NEON-bound, so ThunderX2 wins on
		// energy only where bandwidth, not flops, is the bottleneck.
		Power: PowerModel{
			NodeBase: 50,
			CoreIdle: 0.5,
			CoreActive: map[ISA]units.Watts{
				ISAScalar: 2.0,
				ISANEON:   3.0,
			},
			MemIdle:   12, // per socket's 8 DDR4 channels
			MemActive: 18,
			NIC:       15,
		},
	},
	{
		// Fugaku-scale: the same A64FX node replicated 158,976 times on
		// the full-system 6-D Tofu-D (arxiv 2304.11002 runs a 20M-cell
		// stellar merger across this fabric). Core, memory and power
		// layers are shared verbatim with CTE-Arm — same chip — while
		// the cluster layers scale three orders of magnitude.
		Slug:    "fugaku",
		Aliases: []string{"fugaku-scale", "Fugaku"},

		Name:       "Fugaku",
		Integrator: "Fujitsu",
		CPUName:    "A64FX",
		Arch:       "Armv8",
		SIMD:       []ISA{ISANEON, ISASVE},

		Sockets:        1,
		CoresPerSocket: 48,
		Core:           a64fxCore,
		Memory:         a64fxMemory,
		OSNoise:        0.004,

		Nodes:            158976,
		MPIBufferPerRank: 0.43 * units.Giga,
		Network: Network{
			Kind:           TofuD,
			LinkPeak:       units.BytesPerSecond(6.8 * units.Giga),
			BaseLatency:    units.Seconds(0.49e-6),
			PerHopLatency:  units.Seconds(0.10e-6),
			InjectionLinks: 6,
		},
		// The production (X, Y, Z, a, b, c) shape: 24 x 23 x 24 racks of
		// 2 x 3 x 2 node groups = 158,976 nodes.
		Topology: TopologyModel{
			Dims: []int{24, 23, 24, 2, 3, 2},
			Wrap: []bool{true, true, true, false, true, false},
		},
		Power: a64fxPower,
	},
}

// CTEArm returns the descriptor of the CTE-Arm cluster (Table I).
func CTEArm() Machine { return mustPreset("cte-arm") }

// MareNostrum4 returns the descriptor of MareNostrum 4 (Table I).
func MareNostrum4() Machine { return mustPreset("mn4") }

// ThunderX2 returns the descriptor of the Dibona ThunderX2 cluster
// (arxiv 2007.04868).
func ThunderX2() Machine { return mustPreset("thunderx2") }

// Fugaku returns the Fugaku-scale descriptor: A64FX nodes on the full
// 6-D Tofu-D (arxiv 2304.11002).
func Fugaku() Machine { return mustPreset("fugaku") }

func mustPreset(slug string) Machine {
	m, ok := Preset(slug)
	if !ok {
		panic("machine: preset " + slug + " not registered")
	}
	return m
}
