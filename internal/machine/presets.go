package machine

import "clustereval/internal/units"

// The two systems of the paper (Table I). All headline numbers in Table I
// are *derived* from these micro-architectural inputs; TestTableI asserts
// the derivations reproduce the table.

// CTEArm returns the descriptor of the CTE-Arm cluster: 192 nodes, one
// Fujitsu A64FX (48 cores, 4 CMGs, HBM2) per node, TofuD interconnect.
func CTEArm() Machine {
	core := Core{
		FrequencyHz: 2.20e9,
		Vector: []VectorUnit{
			// 512-bit SVE, two FMA pipes, full-rate FP16.
			{ISA: ISASVE, WidthBits: 512, IssuePerCyc: 2, FMA: true, SupportsHalf: true},
			// 128-bit NEON executed on the same two pipes.
			{ISA: ISANEON, WidthBits: 128, IssuePerCyc: 2, FMA: true, SupportsHalf: true},
		},
		ScalarFMAPerCycle: 2,
		// The A64FX scalar core is a much shallower out-of-order design than
		// Skylake (smaller ROB, fewer AGUs, longer L1 latency); on irregular
		// unvectorized code it sustains roughly 30 % of Skylake's per-core
		// scalar IPC at equal frequency. This one constant is what drives
		// the paper's 2-4x application slowdowns.
		OoOFactor: 0.30,
		Caches: []Cache{
			{Level: 1, SizeBytes: 64 * units.KiB, Shared: false},
			{Level: 2, SizeBytes: 8 * units.MiB, Shared: true}, // per CMG; 32 MB/node
		},
	}
	domains := make([]MemoryDomain, 4)
	for i := range domains {
		domains[i] = MemoryDomain{
			Name:       "CMG" + string(rune('0'+i)),
			Cores:      12,
			Channels:   1, // one HBM2 stack per CMG
			PeakBW:     units.BytesPerSecond(256 * units.Giga),
			Technology: "HBM2",
			// One MPI rank per CMG with OpenMP inside sustains ~85 % of
			// peak on the Fortran Triad (paper Fig. 3: 862.6 GB/s of 1024).
			StreamEff:  0.851,
			SingleCore: units.BytesPerSecond(19 * units.Giga),
		}
	}
	return Machine{
		Name:       "CTE-Arm",
		Integrator: "Fujitsu",
		CPUName:    "A64FX",
		Arch:       "Armv8",
		SIMD:       []ISA{ISANEON, ISASVE},
		Node: Node{
			Sockets:        1,
			CoresPerSocket: 48,
			Core:           core,
			Domains:        domains,
			MemoryBytes:    32 * units.Giga,
			// Default paging scatters a single process's pages across CMGs;
			// the ring bus then caps aggregate bandwidth at ~29 % of peak
			// (Fig. 2: 292 of 1024 GB/s).
			FirstTouchNUMA:    false,
			InterleaveCap:     units.BytesPerSecond(294 * units.Giga),
			InterleavedCoreBW: units.BytesPerSecond(12.3 * units.Giga),
			OversubSlope:      0.002,
			OSNoise:           0.004,
		},
		Nodes:            192,
		MPIBufferPerRank: 0.43 * units.Giga, // Fujitsu MPI eager buffers
		Network: Network{
			Kind:           TofuD,
			LinkPeak:       units.BytesPerSecond(6.8 * units.Giga),
			BaseLatency:    units.Seconds(0.49e-6),
			PerHopLatency:  units.Seconds(0.10e-6),
			InjectionLinks: 6, // six TNIs per node
		},
	}
}

// MareNostrum4 returns the descriptor of MareNostrum 4: 3456 nodes, two
// Intel Xeon Platinum 8160 (Skylake, 24 cores) per node, OmniPath fabric.
func MareNostrum4() Machine {
	core := Core{
		FrequencyHz: 2.10e9,
		Vector: []VectorUnit{
			// Two 512-bit AVX-512 FMA units; no FP16 arithmetic.
			{ISA: ISAAVX512, WidthBits: 512, IssuePerCyc: 2, FMA: true, SupportsHalf: false},
		},
		ScalarFMAPerCycle: 2,
		OoOFactor:         1.0, // reference
		Caches: []Cache{
			{Level: 1, SizeBytes: 32 * units.KiB, Shared: false},
			{Level: 2, SizeBytes: 1 * units.MiB, Shared: false},
			{Level: 3, SizeBytes: 33 * units.MiB, Shared: true},
		},
	}
	domains := make([]MemoryDomain, 2)
	for i := range domains {
		domains[i] = MemoryDomain{
			Name:       "Socket" + string(rune('0'+i)),
			Cores:      24,
			Channels:   6,
			PeakBW:     units.BytesPerSecond(128 * units.Giga), // 6 x DDR4-2666
			Technology: "DDR4-2666",
			// Skylake sustains ~79 % of DDR4 peak on Triad with a full
			// socket of threads (paper Fig. 2: 201.2 of 256 GB/s).
			StreamEff:  0.79,
			SingleCore: units.BytesPerSecond(12.5 * units.Giga),
		}
	}
	return Machine{
		Name:       "MareNostrum 4",
		Integrator: "Lenovo",
		CPUName:    "Intel Xeon Platinum 8160",
		Arch:       "Intel x86",
		SIMD:       []ISA{ISAAVX512},
		Node: Node{
			Sockets:        2,
			CoresPerSocket: 24,
			Core:           core,
			Domains:        domains,
			MemoryBytes:    96 * units.Giga,
			// Linux first-touch places pages locally, so OpenMP-only
			// STREAM on MareNostrum 4 is not NUMA-penalized, and Skylake's
			// memory controllers do not degrade under full threading.
			FirstTouchNUMA: true,
			OversubSlope:   0,
			OSNoise:        0.006,
		},
		Nodes:            3456,
		MPIBufferPerRank: 0.10 * units.Giga,
		Network: Network{
			Kind:           OmniPath,
			LinkPeak:       units.BytesPerSecond(12.0 * units.Giga),
			BaseLatency:    units.Seconds(1.10e-6),
			PerHopLatency:  units.Seconds(0.15e-6),
			InjectionLinks: 1,
		},
	}
}
