package machine_test

import (
	"fmt"

	"clustereval/internal/machine"
)

// The two machine presets encode Table I of the paper; every headline
// quantity is derived from micro-architectural inputs.
func Example() {
	arm := machine.CTEArm()
	mn4 := machine.MareNostrum4()
	fmt.Printf("%s: %d nodes, %.2f GFlop/s per node, %s memory BW\n",
		arm.Name, arm.Nodes, arm.Node.DoublePeak().Giga(), arm.Node.MemoryPeak())
	fmt.Printf("%s: %d nodes, %.2f GFlop/s per node, %s memory BW\n",
		mn4.Name, mn4.Nodes, mn4.Node.DoublePeak().Giga(), mn4.Node.MemoryPeak())
	// Output:
	// CTE-Arm: 192 nodes, 3379.20 GFlop/s per node, 1024 GB/s memory BW
	// MareNostrum 4: 3456 nodes, 3225.60 GFlop/s per node, 256 GB/s memory BW
}

// VectorPeak evaluates the paper's formula Pv = s*i*f*o.
func ExampleCore_VectorPeak() {
	core := machine.CTEArm().Node.Core
	fmt.Println("SVE double:", core.VectorPeak(machine.ISASVE, machine.Double))
	fmt.Println("SVE half:  ", core.VectorPeak(machine.ISASVE, machine.Half))
	// Output:
	// SVE double: 70.4 GFlop/s
	// SVE half:   281.6 GFlop/s
}
