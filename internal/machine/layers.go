package machine

import (
	"fmt"

	"clustereval/internal/units"
)

// This file defines the composable layers a Machine is assembled from.
// Each layer answers one question about the hardware:
//
//   - CoreModel (machine.go): what can one core retire per cycle?
//   - MemoryModel: how fast can a node move data, and from where?
//   - TopologyModel: how are the nodes wired together?
//   - PowerModel: what does all of the above draw from the wall?
//
// Presets (presets.go) are declarative literals of these layers; Build
// composes them into the flat Machine the performance models consume,
// and Machine.Validate checks the composition is self-consistent.

// FPPort describes one floating-point issue port of the core, at the
// granularity of SimEng's A64FX model (FLA executes the full SVE set,
// FLB only the simple/multiply subset). The port list is descriptive
// detail behind IssuePerCyc: Validate cross-checks that the number of
// FMA-capable ports matches the issue width the peak formula uses, so
// the two views of the pipeline cannot drift apart.
type FPPort struct {
	Name string // "FLA", "FLB", "P0", "P5", ...
	// FMA reports whether the port executes fused multiply-adds (and so
	// contributes to the s*i*f*o peak).
	FMA bool
	// FullVector reports whether the port executes the complete vector
	// instruction set of the widest unit; false models a reduced port
	// (A64FX FLB: no SVE divides, predicated ops, gathers).
	FullVector bool
}

// MemoryModel is the node-level memory layer: NUMA domains, capacity,
// paging policy and the tuning knobs the A64FX exposes.
type MemoryModel struct {
	Domains     []MemoryDomain
	MemoryBytes float64
	// FirstTouchNUMA reports whether the OS places pages on the domain of
	// the touching thread. True on MareNostrum 4; effectively false on
	// CTE-Arm's default paging policy, where a single shared-memory process
	// sees its pages scattered across CMGs regardless of binding — the root
	// cause of the poor OpenMP-only STREAM result of Fig. 2.
	FirstTouchNUMA bool
	// InterleaveCap is the aggregate bandwidth a single process whose pages
	// are interleaved across domains can reach (ring-bus bound on A64FX).
	// Unused when FirstTouchNUMA is true.
	InterleaveCap units.BytesPerSecond
	// InterleavedCoreBW is the streaming bandwidth one thread extracts when
	// its pages are interleaved across remote domains.
	InterleavedCoreBW units.BytesPerSecond
	// OversubSlope is the relative bandwidth loss per extra thread beyond a
	// domain's saturation point (memory-controller queue contention).
	OversubSlope float64
	// SectorCacheWays is the number of L2 ways the A64FX sector cache can
	// pin for streaming data (0 = feature absent or unused). Purely
	// descriptive today: a knob later models can price.
	SectorCacheWays int
	// HugePages reports whether the preset assumes large pages are in use
	// (the A64FX tuning guides recommend 2 MiB pages to cut TLB pressure).
	HugePages bool
}

// TopologyModel pins the interconnect's shape when the preset knows it
// exactly. A zero value means "derive a plausible shape from the node
// count", which is what the original two presets always did.
type TopologyModel struct {
	// Dims are the torus dimensions (Tofu-D: 6 entries, X*Y*Z*2*3*2 =
	// Nodes). Empty for fat-tree fabrics or derived shapes.
	Dims []int
	// Wrap marks which dimensions are rings rather than meshes; must have
	// the same length as Dims when set.
	Wrap []bool
	// LeafSize is the nodes-per-edge-switch of a fat tree (0 = default).
	LeafSize int
}

// PowerModel is the per-component power layer: everything is a draw in
// watts that EnergyBreakdown integrates over modeled time. The split
// (cores by ISA activity, memory by bandwidth utilization, NIC, node
// floor) follows the component methodology of the ThunderX2 evaluation
// (arxiv 2007.04868), which measures exactly these rails.
type PowerModel struct {
	// NodeBase is the always-on node floor: chassis, fans, VRM losses,
	// the idle draw of everything not modeled below.
	NodeBase units.Watts
	// CoreIdle is the per-core draw of an idle (clock-gated) core.
	CoreIdle units.Watts
	// CoreActive maps an ISA to the *additional* per-core draw at full
	// activity in that ISA. Wide vector units burn more than scalar code:
	// on the A64FX the SVE pipes dominate the socket budget.
	CoreActive map[ISA]units.Watts
	// MemIdle is the per-domain draw of an idle memory subsystem
	// (refresh, PHY).
	MemIdle units.Watts
	// MemActive is the per-domain additional draw at 100 % bandwidth
	// utilization; actual draw scales linearly with achieved/peak BW.
	MemActive units.Watts
	// NIC is the per-node draw of the network interface(s) when the node
	// is exchanging traffic.
	NIC units.Watts
}

// Defined reports whether the preset carries a power model at all.
func (p PowerModel) Defined() bool {
	return p.NodeBase > 0 || p.CoreIdle > 0 || len(p.CoreActive) > 0
}

// Activity describes what a node is doing during an interval, as
// fractions the power layer can price. The zero value is an idle node.
type Activity struct {
	// ActiveCores is how many cores are executing (the rest idle).
	ActiveCores int
	// ISA is the instruction mix of the active cores.
	ISA ISA
	// ComputeFrac is the fraction of the interval the active cores spend
	// retiring instructions (vs stalled on memory or communication).
	ComputeFrac float64
	// MemBWFrac is achieved/peak memory bandwidth during the interval.
	MemBWFrac float64
	// Network reports whether the NIC is exchanging traffic.
	Network bool
}

// clampFrac bounds a modeled fraction into [0, 1]: fault-degraded or
// extrapolated models must never drive a power rail negative or past
// its component's full-activity draw.
func clampFrac(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// EnergyBreakdown is per-component energy for one node over an interval.
type EnergyBreakdown struct {
	Core    units.Joules
	Memory  units.Joules
	Network units.Joules
	Base    units.Joules
}

// Total sums the components.
func (e EnergyBreakdown) Total() units.Joules {
	return e.Core + e.Memory + e.Network + e.Base
}

// Scale multiplies every component by f — e.g. by the node count to lift
// a per-node breakdown to a whole job.
func (e EnergyBreakdown) Scale(f float64) EnergyBreakdown {
	return EnergyBreakdown{
		Core:    units.Joules(float64(e.Core) * f),
		Memory:  units.Joules(float64(e.Memory) * f),
		Network: units.Joules(float64(e.Network) * f),
		Base:    units.Joules(float64(e.Base) * f),
	}
}

// NodePower returns the draw of one node under activity a.
func (m Machine) NodePower(a Activity) units.Watts {
	p := m.Power
	cores := a.ActiveCores
	if cores < 0 {
		cores = 0
	}
	if max := m.Node.Cores(); cores > max {
		cores = max
	}
	idleCores := m.Node.Cores() - cores
	w := p.NodeBase
	w += units.Watts(float64(idleCores)) * p.CoreIdle
	active := p.CoreActive[a.ISA]
	if active == 0 && a.ISA != "" {
		// Unknown mix: price it as scalar so energy is never silently zero.
		active = p.CoreActive[ISAScalar]
	}
	w += units.Watts(float64(cores)) * (p.CoreIdle + active*units.Watts(clampFrac(a.ComputeFrac)))
	domains := units.Watts(float64(len(m.Node.Domains)))
	w += domains * (p.MemIdle + p.MemActive*units.Watts(clampFrac(a.MemBWFrac)))
	if a.Network {
		w += p.NIC
	}
	return w
}

// NodeEnergy integrates NodePower over an interval, split by component.
func (m Machine) NodeEnergy(a Activity, t units.Seconds) EnergyBreakdown {
	if t <= 0 || !m.Power.Defined() {
		return EnergyBreakdown{}
	}
	p := m.Power
	cores := a.ActiveCores
	if cores < 0 {
		cores = 0
	}
	if max := m.Node.Cores(); cores > max {
		cores = max
	}
	active := p.CoreActive[a.ISA]
	if active == 0 && a.ISA != "" {
		active = p.CoreActive[ISAScalar]
	}
	corePower := units.Watts(float64(m.Node.Cores()))*p.CoreIdle +
		units.Watts(float64(cores))*active*units.Watts(clampFrac(a.ComputeFrac))
	domains := units.Watts(float64(len(m.Node.Domains)))
	memPower := domains * (p.MemIdle + p.MemActive*units.Watts(clampFrac(a.MemBWFrac)))
	var nicPower units.Watts
	if a.Network {
		nicPower = p.NIC
	}
	return EnergyBreakdown{
		Core:    units.EnergyFor(corePower, t),
		Memory:  units.EnergyFor(memPower, t),
		Network: units.EnergyFor(nicPower, t),
		Base:    units.EnergyFor(p.NodeBase, t),
	}
}

// FullLoadPower is the draw of one node with every core busy in the
// strongest ISA, memory at STREAM-sustained utilization, NIC active —
// the "LINPACK rail" the ThunderX2 study reports per node.
func (m Machine) FullLoadPower() units.Watts {
	best := m.Node.Core.BestVector(Double)
	isa := ISAScalar
	if best != nil {
		isa = best.ISA
	}
	var eff float64
	for _, d := range m.Node.Domains {
		eff += d.StreamEff
	}
	if n := len(m.Node.Domains); n > 0 {
		eff /= float64(n)
	}
	return m.NodePower(Activity{
		ActiveCores: m.Node.Cores(),
		ISA:         isa,
		ComputeFrac: 1,
		MemBWFrac:   eff,
		Network:     true,
	})
}

// validateLayers checks the layer composition beyond the flat-field
// checks Validate has always done.
func (m Machine) validateLayers() error {
	// Port list, when present, must agree with the issue width that the
	// peak formula Pv = s*i*f*o uses.
	if ports := m.Node.Core.Ports; len(ports) > 0 {
		fma := 0
		for _, p := range ports {
			if p.Name == "" {
				return fmt.Errorf("machine %s: unnamed FP port", m.Name)
			}
			if p.FMA {
				fma++
			}
		}
		maxIssue := m.Node.Core.ScalarFMAPerCycle
		for _, v := range m.Node.Core.Vector {
			if v.IssuePerCyc > maxIssue {
				maxIssue = v.IssuePerCyc
			}
		}
		if fma != maxIssue {
			return fmt.Errorf("machine %s: %d FMA-capable FP ports but issue width %d",
				m.Name, fma, maxIssue)
		}
	}
	if m.Node.SectorCacheWays < 0 {
		return fmt.Errorf("machine %s: negative sector-cache ways", m.Name)
	}
	// Topology, when pinned, must cover exactly the machine's nodes.
	if dims := m.Topology.Dims; len(dims) > 0 {
		product := 1
		for i, d := range dims {
			if d <= 0 {
				return fmt.Errorf("machine %s: topology dim %d is %d", m.Name, i, d)
			}
			product *= d
		}
		if product != m.Nodes {
			return fmt.Errorf("machine %s: topology dims cover %d nodes, machine has %d",
				m.Name, product, m.Nodes)
		}
		if w := m.Topology.Wrap; len(w) != 0 && len(w) != len(dims) {
			return fmt.Errorf("machine %s: %d wrap flags for %d topology dims",
				m.Name, len(w), len(dims))
		}
	}
	if m.Topology.LeafSize < 0 {
		return fmt.Errorf("machine %s: negative fat-tree leaf size", m.Name)
	}
	// Power rails must be non-negative; a defined model must price at
	// least scalar activity so no experiment kind yields zero energy.
	p := m.Power
	if p.NodeBase < 0 || p.CoreIdle < 0 || p.MemIdle < 0 || p.MemActive < 0 || p.NIC < 0 {
		return fmt.Errorf("machine %s: negative power rail", m.Name)
	}
	for isa, w := range p.CoreActive {
		if w < 0 {
			return fmt.Errorf("machine %s: negative active-core power for %s", m.Name, isa)
		}
	}
	if p.Defined() {
		if _, ok := p.CoreActive[ISAScalar]; !ok {
			return fmt.Errorf("machine %s: power model misses the scalar-ISA rail", m.Name)
		}
		if p.NodeBase <= 0 {
			return fmt.Errorf("machine %s: power model has no node floor", m.Name)
		}
	}
	return nil
}
