// Package machine describes the hardware of the two clusters the paper
// evaluates: CTE-Arm (Fujitsu A64FX) and MareNostrum 4 (Intel Skylake).
// The descriptors are the single source of truth for every performance
// model in the simulator; each field of Table I in the paper maps onto a
// field here, and theoretical peaks are *derived*, never hard-coded, so a
// mismatch between the model and the paper's table is caught by tests.
package machine

import (
	"fmt"

	"clustereval/internal/faultsim"
	"clustereval/internal/units"
)

// ISA identifies a SIMD instruction-set extension.
type ISA string

// SIMD extensions appearing in Table I.
const (
	ISAScalar ISA = "scalar"
	ISANEON   ISA = "NEON"   // 128-bit Armv8 Advanced SIMD
	ISASVE    ISA = "SVE"    // Scalable Vector Extension (512-bit on A64FX)
	ISAAVX512 ISA = "AVX512" // 512-bit Intel AVX-512
)

// Precision identifies a floating-point element width.
type Precision int

// Floating-point precisions exercised by the FPU µKernel.
const (
	Half Precision = iota // 16-bit (A64FX supports it in SVE; Skylake does not)
	Single
	Double
)

// Bits returns the element width in bits.
func (p Precision) Bits() int {
	switch p {
	case Half:
		return 16
	case Single:
		return 32
	default:
		return 64
	}
}

func (p Precision) String() string {
	switch p {
	case Half:
		return "half"
	case Single:
		return "single"
	default:
		return "double"
	}
}

// VectorUnit describes one SIMD extension of a core.
type VectorUnit struct {
	ISA          ISA
	WidthBits    int  // architectural vector length
	IssuePerCyc  int  // FMA instructions issued per cycle (pipes)
	FMA          bool // fused multiply-add available (2 flops/element/op)
	SupportsHalf bool // can the unit do FP16 arithmetic at full rate?
}

// Lanes returns how many elements of precision p one vector holds.
func (v VectorUnit) Lanes(p Precision) int {
	if p == Half && !v.SupportsHalf {
		return 0
	}
	return v.WidthBits / p.Bits()
}

// Cache describes one level of the data-cache hierarchy.
type Cache struct {
	Level     int
	SizeBytes float64
	Shared    bool // shared across the cores of a NUMA domain
}

// CoreModel is the per-core micro-architecture layer.
type CoreModel struct {
	FrequencyHz float64
	// Vector units available, strongest first. The FPU µKernel picks the
	// widest; application code uses whatever the compiler managed to emit.
	Vector []VectorUnit
	// ScalarFMAPerCycle is the number of scalar FMA instructions the core
	// can retire per cycle (2 FP pipes on both A64FX and Skylake).
	ScalarFMAPerCycle int
	// OoOFactor captures the relative strength of the out-of-order engine
	// on irregular scalar code, normalized to Skylake = 1.0. The paper's
	// conclusion attributes the 2-4x application slowdown to "the weaker
	// out-of-order capabilities of the scalar core of the A64FX".
	OoOFactor float64
	Caches    []Cache
	// Ports, when present, names the FP issue ports behind IssuePerCyc
	// (SimEng's A64FX model: FLA full-SVE, FLB reduced). Validate checks
	// the port list agrees with the issue width the peak formula uses.
	Ports []FPPort
}

// Core is the historical name of the per-core layer; the two are the
// same type.
type Core = CoreModel

// ScalarPeak returns the peak scalar FMA throughput of one core.
func (c Core) ScalarPeak() units.FlopsPerSecond {
	return units.FlopsPerSecond(float64(c.ScalarFMAPerCycle) * c.FrequencyHz * 2)
}

// VectorPeak returns the theoretical peak Pv = s*i*f*o of the named unit for
// precision p, following the paper's formula (Section III-A). A zero return
// means the unit cannot process that precision.
func (c Core) VectorPeak(isa ISA, p Precision) units.FlopsPerSecond {
	for _, v := range c.Vector {
		if v.ISA != isa {
			continue
		}
		s := v.Lanes(p)
		if s == 0 {
			return 0
		}
		o := 1.0
		if v.FMA {
			o = 2.0
		}
		return units.FlopsPerSecond(float64(s) * float64(v.IssuePerCyc) * c.FrequencyHz * o)
	}
	return 0
}

// BestVector returns the widest vector unit supporting precision p, or nil.
func (c Core) BestVector(p Precision) *VectorUnit {
	var best *VectorUnit
	var bestPeak units.FlopsPerSecond
	for i := range c.Vector {
		v := &c.Vector[i]
		if v.Lanes(p) == 0 {
			continue
		}
		if pk := c.VectorPeak(v.ISA, p); pk > bestPeak {
			best, bestPeak = v, pk
		}
	}
	return best
}

// DoublePeak returns the per-core double-precision peak (Table I row
// "DP Peak / core").
func (c Core) DoublePeak() units.FlopsPerSecond {
	best := c.ScalarPeak()
	for _, v := range c.Vector {
		if pk := c.VectorPeak(v.ISA, Double); pk > best {
			best = pk
		}
	}
	return best
}

// MemoryDomain is a NUMA domain: a CMG on the A64FX, a socket on Skylake.
type MemoryDomain struct {
	Name       string
	Cores      int
	Channels   int
	PeakBW     units.BytesPerSecond // aggregate peak of this domain
	Technology string               // "HBM2", "DDR4-2666"
	StreamEff  float64              // fraction of peak STREAM sustains from local threads
	SingleCore units.BytesPerSecond // streaming bandwidth one core extracts from local memory
}

// Node describes one compute node: socket counts, the core layer, and
// the embedded memory layer (whose fields — Domains, MemoryBytes,
// FirstTouchNUMA, InterleaveCap, InterleavedCoreBW, OversubSlope and
// the sector-cache/hugepage knobs — promote to Node, so consumers read
// n.Domains exactly as before the layering).
type Node struct {
	Sockets        int
	CoresPerSocket int
	Core           CoreModel
	MemoryModel
	// OSNoise is the relative magnitude of system-noise jitter per run.
	OSNoise float64
}

// Cores returns the total core count of the node.
func (n Node) Cores() int { return n.Sockets * n.CoresPerSocket }

// DoublePeak returns the node-level DP peak (Table I row "DP Peak / node").
func (n Node) DoublePeak() units.FlopsPerSecond {
	return units.FlopsPerSecond(float64(n.Cores()) * float64(n.Core.DoublePeak()))
}

// MemoryPeak returns the aggregate node memory bandwidth (Table I row
// "Peak memory bandwidth").
func (n Node) MemoryPeak() units.BytesPerSecond {
	var bw units.BytesPerSecond
	for _, d := range n.Domains {
		bw += d.PeakBW
	}
	return bw
}

// DomainOf returns the index of the memory domain owning core c.
func (n Node) DomainOf(core int) int {
	if core < 0 || core >= n.Cores() {
		panic(fmt.Sprintf("machine: core %d out of range [0,%d)", core, n.Cores()))
	}
	acc := 0
	for i, d := range n.Domains {
		acc += d.Cores
		if core < acc {
			return i
		}
	}
	return len(n.Domains) - 1
}

// InterconnectKind names a cluster network technology.
type InterconnectKind string

// Interconnect technologies of the registered presets.
const (
	TofuD      InterconnectKind = "TofuD"
	OmniPath   InterconnectKind = "Intel OmniPath"
	Infiniband InterconnectKind = "Infiniband" // EDR fat tree (Dibona/ThunderX2)
)

// Network describes the cluster interconnect at the level Table I reports.
type Network struct {
	Kind InterconnectKind
	// LinkPeak is the peak point-to-point bandwidth per direction.
	LinkPeak units.BytesPerSecond
	// BaseLatency is the zero-hop (same switch / one hop) end-to-end latency.
	BaseLatency units.Seconds
	// PerHopLatency is the additional latency per traversed link.
	PerHopLatency units.Seconds
	// InjectionLinks is the number of independent network interfaces per
	// node (TofuD exposes 6 TNIs; OmniPath nodes have a single port).
	// Aggregate injection bandwidth is InjectionLinks * LinkPeak.
	InjectionLinks int
	// Seed, when nonzero, overrides the fabric's built-in deterministic
	// noise seed. It is how callers (CLI -seed flags, service job specs)
	// request an alternative — but still fully reproducible — realisation
	// of the network's contention and buffer-lottery noise.
	Seed uint64
}

// InjectionBW returns the aggregate per-node injection bandwidth.
func (n Network) InjectionBW() units.BytesPerSecond {
	return units.BytesPerSecond(float64(n.InjectionLinks) * float64(n.LinkPeak))
}

// Machine is a full cluster description.
type Machine struct {
	Name       string
	Integrator string
	CPUName    string
	Arch       string
	SIMD       []ISA
	Node       Node
	Nodes      int
	Network    Network
	// Topology pins the exact interconnect shape when the preset knows
	// it (Fugaku's 6-D Tofu-D); the zero value derives a shape from the
	// node count as before.
	Topology TopologyModel
	// Power is the per-component power layer; the zero value models no
	// energy (every energy figure reports zero joules).
	Power PowerModel
	// Faults, when non-nil, is a compiled fault-injection scenario
	// (internal/faultsim) that every fabric and simulated MPI world built
	// from this descriptor inherits — the same plumbing style as
	// Network.Seed. nil means the pristine cluster of the paper.
	Faults *faultsim.Model
	// MPIBufferPerRank is the per-rank memory the MPI runtime claims
	// (eager buffers, registration caches). The Fujitsu MPI is notoriously
	// hungry here; with 48 ranks per node it eats a large slice of the
	// A64FX's 32 GB, which is what drives the paper's "single node memory
	// limitations" (Alya, OpenIFS and NEMO cannot run on few nodes).
	MPIBufferPerRank float64
}

// UsableMemory returns the node memory left for the application when
// running ranksPerNode MPI ranks.
func (m Machine) UsableMemory(ranksPerNode int) float64 {
	u := m.Node.MemoryBytes - float64(ranksPerNode)*m.MPIBufferPerRank
	if u < 0 {
		return 0
	}
	return u
}

// TotalCores returns the core count of the whole machine.
func (m Machine) TotalCores() int { return m.Nodes * m.Node.Cores() }

// ClusterPeak returns the aggregate DP peak of n nodes.
func (m Machine) ClusterPeak(n int) units.FlopsPerSecond {
	return units.FlopsPerSecond(float64(n) * float64(m.Node.DoublePeak()))
}

// Validate checks internal consistency of the descriptor.
func (m Machine) Validate() error {
	if m.Nodes <= 0 {
		return fmt.Errorf("machine %s: non-positive node count %d", m.Name, m.Nodes)
	}
	if m.Node.Cores() <= 0 {
		return fmt.Errorf("machine %s: node has no cores", m.Name)
	}
	domCores := 0
	for _, d := range m.Node.Domains {
		if d.Cores <= 0 {
			return fmt.Errorf("machine %s: domain %s has no cores", m.Name, d.Name)
		}
		if d.PeakBW <= 0 {
			return fmt.Errorf("machine %s: domain %s has no bandwidth", m.Name, d.Name)
		}
		domCores += d.Cores
	}
	if domCores != m.Node.Cores() {
		return fmt.Errorf("machine %s: domains cover %d cores, node has %d",
			m.Name, domCores, m.Node.Cores())
	}
	if m.Node.Core.FrequencyHz <= 0 {
		return fmt.Errorf("machine %s: non-positive frequency", m.Name)
	}
	if m.Network.LinkPeak <= 0 {
		return fmt.Errorf("machine %s: non-positive link bandwidth", m.Name)
	}
	return m.validateLayers()
}
