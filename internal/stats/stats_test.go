package stats

import (
	"math"
	"testing"
	"testing/quick"

	"clustereval/internal/xrand"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("bad extremes: %+v", s)
	}
	if !almost(s.Mean, 5, 1e-12) {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	if !almost(s.Stddev, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("stddev = %v", s.Stddev)
	}
	if !almost(s.Median, 4.5, 1e-12) {
		t.Errorf("median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {110, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if cv := CoefficientOfVariation([]float64{5, 5, 5}); cv != 0 {
		t.Errorf("constant sample cv = %v", cv)
	}
	cv := CoefficientOfVariation([]float64{9, 10, 11})
	if !almost(cv, 1.0/10.0, 1e-12) {
		t.Errorf("cv = %v, want 0.1", cv)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0.5, 1, 2.5, 9.9, -3, 42} {
		h.Add(x)
	}
	if h.Total() != 6 {
		t.Errorf("total = %d, want 6", h.Total())
	}
	if h.Counts[0] != 3 { // 0.5, 1, and clamped -3
		t.Errorf("bin 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.9 and clamped 42
		t.Errorf("bin 4 = %d, want 2", h.Counts[4])
	}
	if !almost(h.BinCenter(0), 1, 1e-12) || !almost(h.BinCenter(4), 9, 1e-12) {
		t.Error("bin centers wrong")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
		func() { NewHistogram(7, 2, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramModesBimodal(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	r := xrand.New(1)
	for i := 0; i < 5000; i++ {
		h.Add(2.5 + 0.5*r.NormFloat64())
		h.Add(7.5 + 0.5*r.NormFloat64())
	}
	modes := h.Modes(0.3)
	if len(modes) != 2 {
		t.Fatalf("modes = %v, want two", modes)
	}
	if !almost(h.BinCenter(modes[0]), 2.5, 1.0) || !almost(h.BinCenter(modes[1]), 7.5, 1.0) {
		t.Errorf("mode centers: %v %v", h.BinCenter(modes[0]), h.BinCenter(modes[1]))
	}
}

func TestHistogramModesEmpty(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if m := h.Modes(0.5); m != nil {
		t.Errorf("empty histogram modes = %v", m)
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x+1
	f, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(f.Slope, 2, 1e-12) || !almost(f.Intercept, 1, 1e-12) || !almost(f.R2, 1, 1e-12) {
		t.Errorf("fit = %+v", f)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestFitLineConstantY(t *testing.T) {
	f, err := FitLine([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(f.Slope, 0, 1e-12) || !almost(f.R2, 1, 1e-12) {
		t.Errorf("constant-y fit = %+v", f)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); !almost(g, 4, 1e-12) {
		t.Errorf("geomean = %v, want 4", g)
	}
	if g := GeoMean([]float64{1, -2}); g != 0 {
		t.Errorf("geomean with negative = %v, want 0", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("geomean empty = %v, want 0", g)
	}
}

// Property: min <= median <= max and min <= mean <= max.
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		r := xrand.New(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()*200 - 100
		}
		s := Summarize(xs)
		return s.Min <= s.Median+1e-12 && s.Median <= s.Max+1e-12 &&
			s.Min <= s.Mean+1e-12 && s.Mean <= s.Max+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentile is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		r := xrand.New(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 1000
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
