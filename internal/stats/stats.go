// Package stats provides the descriptive statistics used by the evaluation
// harness: summary moments, percentiles, histograms (for the Fig. 5 density
// map) and least-squares fits (for scalability slope analysis).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Stddev float64
	Median float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	ss := 0.0
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	return s
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. The input need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CoefficientOfVariation returns stddev/mean, the paper's measure of
// run-to-run variability ("we verified that the variability is negligible").
func CoefficientOfVariation(xs []float64) float64 {
	s := Summarize(xs)
	if s.Mean == 0 {
		return 0
	}
	return s.Stddev / math.Abs(s.Mean)
}

// Histogram is a fixed-width binning of a sample, as used for the Fig. 5
// bandwidth-density map.
type Histogram struct {
	Lo, Hi float64 // domain; values outside are clamped into edge bins
	Counts []int
}

// NewHistogram builds a histogram with nbins bins over [lo, hi).
// It panics on a degenerate domain or non-positive bin count.
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if !(hi > lo) {
		panic("stats: histogram domain must satisfy hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := h.binOf(x)
	h.Counts[i]++
}

func (h *Histogram) binOf(x float64) int {
	n := len(h.Counts)
	i := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Modes returns the indices of local maxima whose count is at least
// minFraction of the global maximum. It is used to assert the bimodal
// bandwidth distribution the paper observes for mid-size messages.
func (h *Histogram) Modes(minFraction float64) []int {
	maxc := 0
	for _, c := range h.Counts {
		if c > maxc {
			maxc = c
		}
	}
	if maxc == 0 {
		return nil
	}
	threshold := int(minFraction * float64(maxc))
	var modes []int
	for i, c := range h.Counts {
		if c < threshold || c == 0 {
			continue
		}
		left := 0
		if i > 0 {
			left = h.Counts[i-1]
		}
		right := 0
		if i < len(h.Counts)-1 {
			right = h.Counts[i+1]
		}
		if c >= left && c >= right && (c > left || c > right) {
			modes = append(modes, i)
		}
	}
	return modes
}

// LinearFit holds a least-squares line y = Slope*x + Intercept.
type LinearFit struct {
	Slope, Intercept, R2 float64
}

// FitLine computes the ordinary least squares fit of ys on xs.
// It returns an error when the inputs are mismatched or degenerate.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: mismatched lengths %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, fmt.Errorf("stats: need at least 2 points, got %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	sxx, sxy, syy := 0.0, 0.0, 0.0
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: degenerate fit, all x equal")
	}
	f := LinearFit{Slope: sxy / sxx}
	f.Intercept = my - f.Slope*mx
	if syy > 0 {
		f.R2 = sxy * sxy / (sxx * syy)
	} else {
		f.R2 = 1 // all y equal and the fit passes through them
	}
	return f, nil
}

// GeoMean returns the geometric mean of strictly positive xs; it returns 0
// when any input is non-positive or the sample is empty.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	acc := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		acc += math.Log(x)
	}
	return math.Exp(acc / float64(len(xs)))
}
