// Package omp is a small OpenMP-like fork-join runtime. It serves two roles
// in the reproduction:
//
//   - Real execution: ParallelFor and ParallelReduce actually run loop
//     bodies concurrently on goroutines with the OpenMP scheduling policies
//     (static/dynamic/guided), so numerical kernels built on the package
//     (STREAM, stencils) compute real results under real concurrency.
//
//   - Placement modelling: a Team carries a thread→core binding (spread or
//     close, the policies the paper uses) over a machine.Node, which the
//     memory model consumes to decide how many threads stream from each
//     NUMA domain.
package omp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"clustereval/internal/machine"
)

// Schedule selects the loop-iteration scheduling policy.
type Schedule int

// OpenMP scheduling policies.
const (
	Static Schedule = iota
	Dynamic
	Guided
)

func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	default:
		return "guided"
	}
}

// Binding selects the thread→core placement policy (OMP_PROC_BIND).
type Binding int

// Thread binding policies. The paper's STREAM runs use spread.
const (
	Spread Binding = iota
	Close
)

func (b Binding) String() string {
	if b == Spread {
		return "spread"
	}
	return "close"
}

// Team is a set of threads bound onto the cores of one node.
type Team struct {
	node    machine.Node
	threads int
	binding Binding
}

// NewTeam creates a team of n threads on the node with the given binding.
// It returns an error when n exceeds the node's cores (the paper never
// oversubscribes) or is not positive.
func NewTeam(node machine.Node, n int, binding Binding) (*Team, error) {
	if n <= 0 {
		return nil, fmt.Errorf("omp: team size %d must be positive", n)
	}
	if n > node.Cores() {
		return nil, fmt.Errorf("omp: team size %d exceeds %d cores", n, node.Cores())
	}
	return &Team{node: node, threads: n, binding: binding}, nil
}

// Threads returns the team size.
func (t *Team) Threads() int { return t.threads }

// Binding returns the team's binding policy.
func (t *Team) Binding() Binding { return t.binding }

// Node returns the node the team runs on.
func (t *Team) Node() machine.Node { return t.node }

// CoreOf returns the core index thread tid is bound to.
//
// Close packs threads onto consecutive cores (0, 1, 2, ...). Spread places
// them at maximal distance, like OMP_PROC_BIND=spread: thread i sits at
// floor(i * cores / threads).
func (t *Team) CoreOf(tid int) int {
	if tid < 0 || tid >= t.threads {
		panic(fmt.Sprintf("omp: thread %d out of team [0,%d)", tid, t.threads))
	}
	if t.binding == Close {
		return tid
	}
	return tid * t.node.Cores() / t.threads
}

// ThreadsPerDomain returns how many team threads are bound to each memory
// domain of the node.
func (t *Team) ThreadsPerDomain() []int {
	counts := make([]int, len(t.node.Domains))
	for tid := 0; tid < t.threads; tid++ {
		counts[t.node.DomainOf(t.CoreOf(tid))]++
	}
	return counts
}

// ParallelFor executes body(i) for every i in [0, n) across the team using
// the given schedule. It blocks until all iterations complete. chunk is the
// chunk size for Dynamic (and the minimum chunk for Guided); pass 0 for the
// default.
func (t *Team) ParallelFor(n int, sched Schedule, chunk int, body func(i int)) {
	if n <= 0 {
		return
	}
	workers := t.threads
	if workers > n {
		workers = n
	}
	switch sched {
	case Static:
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			lo, hi := staticRange(n, workers, w)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					body(i)
				}
			}(lo, hi)
		}
		wg.Wait()
	case Dynamic:
		if chunk <= 0 {
			chunk = 1
		}
		var next int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
					if lo >= n {
						return
					}
					hi := lo + chunk
					if hi > n {
						hi = n
					}
					for i := lo; i < hi; i++ {
						body(i)
					}
				}
			}()
		}
		wg.Wait()
	case Guided:
		if chunk <= 0 {
			chunk = 1
		}
		var mu sync.Mutex
		remainingLo := 0
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					mu.Lock()
					lo := remainingLo
					if lo >= n {
						mu.Unlock()
						return
					}
					size := (n - lo + workers - 1) / workers
					if size < chunk {
						size = chunk
					}
					hi := lo + size
					if hi > n {
						hi = n
					}
					remainingLo = hi
					mu.Unlock()
					for i := lo; i < hi; i++ {
						body(i)
					}
				}
			}()
		}
		wg.Wait()
	default:
		panic(fmt.Sprintf("omp: unknown schedule %d", sched))
	}
}

// staticRange returns the half-open iteration range of worker w under the
// balanced static schedule (the first n%workers workers get one extra).
func staticRange(n, workers, w int) (lo, hi int) {
	base := n / workers
	extra := n % workers
	lo = w*base + min(w, extra)
	hi = lo + base
	if w < extra {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ParallelReduce computes the sum of body(i) over [0, n) across the team
// with a per-thread partial accumulator (no atomics in the hot path), as an
// OpenMP reduction(+) would.
func (t *Team) ParallelReduce(n int, body func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	workers := t.threads
	if workers > n {
		workers = n
	}
	partial := make([]float64, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo, hi := staticRange(n, workers, w)
		go func(w, lo, hi int) {
			defer wg.Done()
			acc := 0.0
			for i := lo; i < hi; i++ {
				acc += body(i)
			}
			partial[w] = acc
		}(w, lo, hi)
	}
	wg.Wait()
	sum := 0.0
	for _, p := range partial {
		sum += p
	}
	return sum
}

// ParallelRanges calls body(w, lo, hi) once per worker with that worker's
// static range — the fast path for slice kernels that want per-thread loops
// without per-iteration closure overhead (how the STREAM kernels run).
func (t *Team) ParallelRanges(n int, body func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := t.threads
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo, hi := staticRange(n, workers, w)
		go func(w, lo, hi int) {
			defer wg.Done()
			body(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}
