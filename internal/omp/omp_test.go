package omp

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"clustereval/internal/machine"
)

func team(t *testing.T, n int, b Binding) *Team {
	t.Helper()
	tm, err := NewTeam(machine.CTEArm().Node, n, b)
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestNewTeamValidation(t *testing.T) {
	node := machine.CTEArm().Node
	if _, err := NewTeam(node, 0, Spread); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := NewTeam(node, 49, Spread); err == nil {
		t.Error("oversubscription accepted")
	}
	if _, err := NewTeam(node, 48, Close); err != nil {
		t.Errorf("full node rejected: %v", err)
	}
}

func TestCloseBinding(t *testing.T) {
	tm := team(t, 12, Close)
	for tid := 0; tid < 12; tid++ {
		if got := tm.CoreOf(tid); got != tid {
			t.Errorf("close CoreOf(%d) = %d", tid, got)
		}
	}
	// All 12 threads land on CMG0.
	per := tm.ThreadsPerDomain()
	if per[0] != 12 || per[1] != 0 {
		t.Errorf("close 12 threads per domain = %v", per)
	}
}

func TestSpreadBinding(t *testing.T) {
	// 4 threads spread over 48 cores: cores 0, 12, 24, 36 — one per CMG.
	tm := team(t, 4, Spread)
	wantCores := []int{0, 12, 24, 36}
	for tid, want := range wantCores {
		if got := tm.CoreOf(tid); got != want {
			t.Errorf("spread CoreOf(%d) = %d, want %d", tid, got, want)
		}
	}
	per := tm.ThreadsPerDomain()
	for d, k := range per {
		if k != 1 {
			t.Errorf("domain %d has %d threads, want 1", d, k)
		}
	}
}

func TestSpreadBalanced(t *testing.T) {
	// 24 threads spread on A64FX: 6 per CMG (this is the paper's best
	// OpenMP STREAM configuration).
	tm := team(t, 24, Spread)
	for d, k := range tm.ThreadsPerDomain() {
		if k != 6 {
			t.Errorf("domain %d has %d threads, want 6", d, k)
		}
	}
	// MN4: 24 spread threads = 12 per socket.
	tm2, err := NewTeam(machine.MareNostrum4().Node, 24, Spread)
	if err != nil {
		t.Fatal(err)
	}
	for d, k := range tm2.ThreadsPerDomain() {
		if k != 12 {
			t.Errorf("MN4 socket %d has %d threads, want 12", d, k)
		}
	}
}

func TestCoreOfPanics(t *testing.T) {
	tm := team(t, 4, Spread)
	for _, tid := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CoreOf(%d) did not panic", tid)
				}
			}()
			tm.CoreOf(tid)
		}()
	}
}

func TestParallelForCoversAllIterations(t *testing.T) {
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		tm := team(t, 8, Spread)
		const n = 1000
		var hits [n]int32
		tm.ParallelFor(n, sched, 4, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("%v: iteration %d executed %d times", sched, i, h)
			}
		}
	}
}

func TestParallelForEmpty(t *testing.T) {
	tm := team(t, 4, Close)
	ran := false
	tm.ParallelFor(0, Static, 0, func(i int) { ran = true })
	tm.ParallelFor(-5, Dynamic, 0, func(i int) { ran = true })
	if ran {
		t.Error("body ran for empty loop")
	}
}

func TestParallelForFewerIterationsThanThreads(t *testing.T) {
	tm := team(t, 16, Spread)
	var count int32
	tm.ParallelFor(3, Static, 0, func(i int) { atomic.AddInt32(&count, 1) })
	if count != 3 {
		t.Errorf("count = %d", count)
	}
}

func TestStaticRangeBalanced(t *testing.T) {
	// 10 iterations over 4 workers: 3,3,2,2.
	sizes := []int{}
	covered := 0
	for w := 0; w < 4; w++ {
		lo, hi := staticRange(10, 4, w)
		if lo != covered {
			t.Errorf("worker %d starts at %d, want %d", w, lo, covered)
		}
		sizes = append(sizes, hi-lo)
		covered = hi
	}
	if covered != 10 {
		t.Errorf("covered %d of 10", covered)
	}
	want := []int{3, 3, 2, 2}
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("sizes = %v, want %v", sizes, want)
		}
	}
}

func TestParallelReduce(t *testing.T) {
	tm := team(t, 7, Close)
	const n = 10000
	got := tm.ParallelReduce(n, func(i int) float64 { return float64(i) })
	want := float64(n*(n-1)) / 2
	if got != want {
		t.Errorf("reduce = %v, want %v", got, want)
	}
	if got := tm.ParallelReduce(0, func(i int) float64 { return 1 }); got != 0 {
		t.Errorf("empty reduce = %v", got)
	}
}

func TestParallelReduceNumericallyStable(t *testing.T) {
	tm := team(t, 5, Close)
	const n = 5000
	got := tm.ParallelReduce(n, func(i int) float64 { return 1.0 / float64(i+1) })
	want := 0.0
	for i := 0; i < n; i++ {
		want += 1.0 / float64(i+1)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("harmonic sum = %v, serial %v", got, want)
	}
}

func TestParallelRanges(t *testing.T) {
	tm := team(t, 6, Spread)
	const n = 100
	var total int64
	seen := make([]int32, n)
	tm.ParallelRanges(n, func(w, lo, hi int) {
		atomic.AddInt64(&total, int64(hi-lo))
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	if total != n {
		t.Errorf("ranges covered %d of %d", total, n)
	}
	for i, s := range seen {
		if s != 1 {
			t.Fatalf("iteration %d covered %d times", i, s)
		}
	}
}

// Property: ThreadsPerDomain sums to the team size and never exceeds each
// domain's core count, for every size and binding.
func TestThreadsPerDomainProperty(t *testing.T) {
	node := machine.CTEArm().Node
	f := func(nRaw uint8, bRaw bool) bool {
		n := int(nRaw)%node.Cores() + 1
		binding := Spread
		if bRaw {
			binding = Close
		}
		tm, err := NewTeam(node, n, binding)
		if err != nil {
			return false
		}
		per := tm.ThreadsPerDomain()
		sum := 0
		for d, k := range per {
			if k < 0 || k > node.Domains[d].Cores {
				return false
			}
			sum += k
		}
		return sum == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScheduleBindingStrings(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Guided.String() != "guided" {
		t.Error("schedule names")
	}
	if Spread.String() != "spread" || Close.String() != "close" {
		t.Error("binding names")
	}
}
