package hpl_test

import (
	"fmt"

	"clustereval/internal/hpl"
	"clustereval/internal/machine"
)

// Predict models one HPL run; at 192 nodes the two clusters land at the
// paper's 85 % / 63 % of peak.
func ExamplePredict() {
	arm, _ := hpl.Predict(machine.CTEArm(), 192)
	mn4, _ := hpl.Predict(machine.MareNostrum4(), 192)
	fmt.Printf("CTE-Arm: %.0f%% of peak\n", arm.PercentOfPeak)
	fmt.Printf("MareNostrum 4: %.0f%% of peak\n", mn4.PercentOfPeak)
	// Output:
	// CTE-Arm: 85% of peak
	// MareNostrum 4: 63% of peak
}

// The real factorization passes the official HPL residual criterion.
func ExampleFactorize() {
	a := hpl.RandomSPDish(64, 1)
	ones := make([]float64, 64)
	for i := range ones {
		ones[i] = 1
	}
	b := a.MatVec(ones)
	lu, err := hpl.Factorize(a, 16, nil)
	if err != nil {
		panic(err)
	}
	x, err := lu.Solve(b)
	if err != nil {
		panic(err)
	}
	fmt.Println("HPL residual check passed:", hpl.Residual(a, x, b) < 16)
	// Output:
	// HPL residual check passed: true
}
