package hpl

import (
	"math"
	"testing"
	"testing/quick"

	"clustereval/internal/machine"
)

// Property: for random well-conditioned systems of any small size and any
// block size, the factorization passes the HPL residual criterion and
// solves reconstruct the right-hand side.
func TestFactorizeSolveProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed uint64, nRaw, nbRaw uint8) bool {
		n := int(nRaw%40) + 2
		nb := int(nbRaw%16) + 1
		a := RandomSPDish(n, seed)
		lu, err := Factorize(a, nb, nil)
		if err != nil {
			// Random matrices are almost surely nonsingular; treat a
			// singularity report as a failure.
			return false
		}
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = float64(i%5) - 2
		}
		b := a.MatVec(x0)
		x, err := lu.Solve(b)
		if err != nil {
			return false
		}
		return Residual(a, x, b) < 16
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: row permutation invariance — P*A = L*U reconstructs A's rows.
func TestReconstructionProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		a := RandomSPDish(n, seed)
		lu, err := Factorize(a, 4, nil)
		if err != nil {
			return false
		}
		// Build P*A by replaying the pivots on a copy.
		pa := a.Clone()
		for k := 0; k < n; k++ {
			if p := lu.Pivots[k]; p != k {
				swapRows(pa, k, p)
			}
		}
		// Multiply L*U.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				acc := 0.0
				kmax := i
				if j < i {
					kmax = j
				}
				for k := 0; k <= kmax; k++ {
					l := lu.F.At(i, k)
					if k == i {
						l = 1
					}
					if k <= j {
						acc += l * lu.F.At(k, j)
					}
				}
				if math.Abs(acc-pa.At(i, j)) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the HPL problem-size rule keeps memory use in (75%, 100%] of
// the aggregate for every node count on both machines.
func TestProblemSizeProperty(t *testing.T) {
	f := func(nodesRaw uint8) bool {
		nodes := int(nodesRaw%192) + 1
		for _, m := range machines() {
			n := ProblemSize(m, nodes)
			if n <= 0 || n%240 != 0 {
				return false
			}
			bytes := 8 * float64(n) * float64(n)
			total := float64(nodes) * m.Node.MemoryBytes
			if bytes > total || bytes < 0.70*total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: PQ always factors exactly with P <= Q.
func TestPQProperty(t *testing.T) {
	f := func(raw uint16) bool {
		ranks := int(raw%4096) + 1
		p, q := PQ(ranks)
		return p*q == ranks && p <= q && p >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// machines lists the two presets for property sweeps.
func machines() []machine.Machine {
	return []machine.Machine{machine.CTEArm(), machine.MareNostrum4()}
}
