package hpl

import (
	"fmt"
	"math"

	"clustereval/internal/mpisim"
	"clustereval/internal/units"
)

// Distributed LU: a 1-D block-column-cyclic right-looking factorization
// over the simulated MPI runtime — the communication skeleton of HPL
// (panel factorization by the owning process, panel broadcast, distributed
// row swaps and trailing update), with real data so the result can be
// checked against the serial factorization bit for bit.

// DistLUResult reports a distributed factorization.
type DistLUResult struct {
	Elapsed units.Seconds // virtual time of the factorization
	Panels  int
}

// DistFactorize factorizes A (n x n) with block size nb over the world's
// ranks, block-column-cyclic: global column block j belongs to rank
// j mod P. It returns the assembled factors and pivots, identical to the
// serial Factorize.
func DistFactorize(w *mpisim.World, a *Dense, nb int) (*LU, DistLUResult, error) {
	if a.Rows != a.Cols {
		return nil, DistLUResult{}, fmt.Errorf("hpl: matrix must be square")
	}
	if nb <= 0 {
		return nil, DistLUResult{}, fmt.Errorf("hpl: block size must be positive")
	}
	n := a.Rows
	ranks := w.Size()
	nBlocks := (n + nb - 1) / nb
	ownerOf := func(block int) int { return block % ranks }

	parts := make([]map[int][]float64, ranks) // rank -> globalCol -> column
	pivots := make([]int, n)
	var result DistLUResult
	resultSet := false

	err := w.Run(func(c *mpisim.Comm) {
		r := c.Rank()
		// Local storage: owned global columns, each a length-n vector.
		local := map[int][]float64{}
		for b := 0; b < nBlocks; b++ {
			if ownerOf(b) != r {
				continue
			}
			for col := b * nb; col < (b+1)*nb && col < n; col++ {
				v := make([]float64, n)
				for i := 0; i < n; i++ {
					v[i] = a.At(i, col)
				}
				local[col] = v
			}
		}

		start := c.Now()
		panels := 0
		for b := 0; b < nBlocks; b++ {
			k := b * nb
			kb := nb
			if k+kb > n {
				kb = n - k
			}
			owner := ownerOf(b)
			var panel []float64 // pivots (kb) + kb columns of rows k..n

			if r == owner {
				// Panel factorization on the owned columns.
				piv := make([]float64, kb)
				for j := k; j < k+kb; j++ {
					col := local[j]
					p, maxAbs := j, math.Abs(col[j])
					for i := j + 1; i < n; i++ {
						if ab := math.Abs(col[i]); ab > maxAbs {
							p, maxAbs = i, ab
						}
					}
					if maxAbs == 0 {
						panic(fmt.Sprintf("hpl: singular at column %d", j))
					}
					piv[j-k] = float64(p)
					if p != j {
						for _, v := range local {
							v[j], v[p] = v[p], v[j]
						}
					}
					d := col[j]
					for i := j + 1; i < n; i++ {
						col[i] /= d
					}
					// Update the remaining panel columns.
					for jj := j + 1; jj < k+kb; jj++ {
						cc := local[jj]
						ljj := cc[j]
						if ljj == 0 {
							continue
						}
						for i := j + 1; i < n; i++ {
							cc[i] -= col[i] * ljj
						}
					}
				}
				// Pack pivots plus the panel columns (rows k..n).
				panel = make([]float64, 0, kb+(n-k)*kb)
				panel = append(panel, piv...)
				for j := k; j < k+kb; j++ {
					panel = append(panel, local[j][k:]...)
				}
			}
			bytes := units.Bytes(8 * (kb + (n-k)*kb))
			out := c.Bcast(owner, bytes, panel)
			panel = out.([]float64)
			panels++

			piv := panel[:kb]
			panelCol := func(j int) []float64 { // rows k..n of panel column k+j
				return panel[kb+j*(n-k) : kb+(j+1)*(n-k)]
			}

			if r != owner {
				// Apply the panel's row swaps to the local columns.
				for j := 0; j < kb; j++ {
					p := int(piv[j])
					if p != k+j {
						for _, v := range local {
							v[k+j], v[p] = v[p], v[k+j]
						}
					}
				}
			}

			// Update owned columns strictly right of the panel:
			// triangular solve for U12 then the GEMM on the trailing rows.
			for col, v := range local {
				if col < k+kb {
					continue
				}
				for j := 0; j < kb; j++ {
					lcol := panelCol(j)
					u := v[k+j]
					if u == 0 {
						continue
					}
					// Subtract u * L(:, k+j) below row k+j.
					for i := k + j + 1; i < n; i++ {
						v[i] -= lcol[i-k] * u
					}
				}
			}
			if r == 0 {
				for j := 0; j < kb; j++ {
					pivots[k+j] = int(piv[j])
				}
			}
		}
		parts[r] = local
		if r == 0 {
			result = DistLUResult{Elapsed: c.Now() - start, Panels: panels}
			resultSet = true
		}
	})
	if err != nil {
		return nil, DistLUResult{}, err
	}
	if !resultSet {
		return nil, DistLUResult{}, fmt.Errorf("hpl: no result produced")
	}

	// Assemble the packed factors.
	f := NewDense(n, n)
	for _, local := range parts {
		for col, v := range local {
			for i := 0; i < n; i++ {
				f.Set(i, col, v[i])
			}
		}
	}
	return &LU{N: n, F: f, Pivots: pivots}, result, nil
}
