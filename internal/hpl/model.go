package hpl

import (
	"fmt"
	"math"

	"clustereval/internal/machine"
	"clustereval/internal/units"
)

// Vendor-library DGEMM efficiencies. Both clusters run a vendor-provided
// binary (Section IV-A): Fujitsu's SSL2 on the A64FX, Intel MKL via the
// shipped binary on MareNostrum 4. The values reproduce the paper's single-
// node efficiencies (the 1-node point of Fig. 6 and the 1.25 speedup of
// Table IV).
const (
	dgemmEffA64FX   = 0.905
	dgemmEffSkylake = 0.760
)

// kappaComm scales the HPL communication term per interconnect. TofuD's
// RDMA engines and hardware barriers overlap communication far better than
// OmniPath's onloaded PSM2 stack, which is what lets CTE-Arm hold 85 % of
// peak at 192 nodes while MareNostrum 4 drops to 63 %.
func kappaComm(kind machine.InterconnectKind) float64 {
	if kind == machine.TofuD {
		return 0.025
	}
	return 0.0513
}

// RanksPerNode returns the paper's process mapping: 4 ranks per node on
// CTE-Arm (one per CMG) and 1 rank per node on MareNostrum 4 (Intel's
// recommended configuration).
func RanksPerNode(m machine.Machine) int {
	if m.Network.Kind == machine.TofuD {
		return 4
	}
	return 1
}

// ProblemSize returns the HPL N for a given node count following the
// paper's rule: the problem occupies >= 80 % of the aggregate memory,
// N = sqrt(0.80 * nodes * mem / 8), rounded down to a multiple of the
// block size 240.
func ProblemSize(m machine.Machine, nodes int) int {
	const nb = 240
	n := int(math.Sqrt(0.80 * float64(nodes) * m.Node.MemoryBytes / 8))
	return n - n%nb
}

// PQ returns the most square process grid P x Q = ranks with P <= Q,
// the paper's grid rule.
func PQ(ranks int) (p, q int) {
	p = int(math.Sqrt(float64(ranks)))
	for ranks%p != 0 {
		p--
	}
	return p, ranks / p
}

// Run is one point of Fig. 6.
type Run struct {
	Nodes         int
	N             int
	P, Q          int
	Time          units.Seconds
	Perf          units.FlopsPerSecond
	Peak          units.FlopsPerSecond
	PercentOfPeak float64
}

// Predict models one HPL execution on `nodes` nodes of m.
//
// The model is the standard HPL decomposition: the O(2N³/3) trailing-update
// DGEMM at the vendor library's efficiency, plus a communication term for
// panel broadcasts and row swaps proportional to N²·(3+log₂(2·nodes))
// divided by the node injection bandwidth.
func Predict(m machine.Machine, nodes int) (Run, error) {
	if nodes <= 0 || nodes > m.Nodes {
		return Run{}, fmt.Errorf("hpl: node count %d out of [1, %d]", nodes, m.Nodes)
	}
	n := ProblemSize(m, nodes)
	ranks := nodes * RanksPerNode(m)
	p, q := PQ(ranks)

	eff := dgemmEffSkylake
	if m.Network.Kind == machine.TofuD {
		eff = dgemmEffA64FX
	}
	nf := float64(n)
	flops := 2 * nf * nf * nf / 3
	computeRate := float64(nodes) * float64(m.Node.DoublePeak()) * eff
	tCompute := flops / computeRate

	kappa := kappaComm(m.Network.Kind)
	inj := float64(m.Network.InjectionBW())
	tComm := kappa * (8 * nf * nf / inj) * (3 + math.Log2(2*float64(nodes)))

	t := units.Seconds(tCompute + tComm)
	perf := units.FlopsPerSecond(flops / float64(t))
	peak := m.ClusterPeak(nodes)
	return Run{
		Nodes: nodes, N: n, P: p, Q: q,
		Time: t, Perf: perf, Peak: peak,
		PercentOfPeak: units.Percent(float64(perf), float64(peak)),
	}, nil
}

// Figure6 sweeps node counts (powers of two plus the 192-node full system,
// as the paper plots) for one machine.
func Figure6(m machine.Machine, maxNodes int) ([]Run, error) {
	if maxNodes <= 0 || maxNodes > m.Nodes {
		return nil, fmt.Errorf("hpl: maxNodes %d out of range", maxNodes)
	}
	var runs []Run
	for _, n := range NodeSweep(maxNodes) {
		r, err := Predict(m, n)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	return runs, nil
}

// NodeSweep returns 1, 2, 4, ... up to max, always including max.
func NodeSweep(max int) []int {
	var out []int
	for n := 1; n < max; n *= 2 {
		out = append(out, n)
	}
	return append(out, max)
}
