package hpl

import (
	"math"
	"testing"

	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/mpisim"
)

func luWorld(t *testing.T, ranks int) *mpisim.World {
	t.Helper()
	fab, err := interconnect.NewTofuD(machine.CTEArm(), 12)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpisim.NewWorld(fab, ranks, 4)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestDistFactorizeMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ n, nb, ranks int }{
		{24, 8, 1},
		{24, 8, 3},
		{30, 7, 2}, // ragged final block
		{32, 4, 4},
		{19, 5, 5},
	} {
		a := RandomSPDish(tc.n, uint64(tc.n*31+tc.nb))
		serial, err := Factorize(a, tc.nb, nil)
		if err != nil {
			t.Fatal(err)
		}
		w := luWorld(t, tc.ranks)
		dist, res, err := DistFactorize(w, a, tc.nb)
		if err != nil {
			t.Fatalf("n=%d nb=%d p=%d: %v", tc.n, tc.nb, tc.ranks, err)
		}
		if res.Panels != (tc.n+tc.nb-1)/tc.nb {
			t.Errorf("panels = %d", res.Panels)
		}
		for k, p := range serial.Pivots {
			if dist.Pivots[k] != p {
				t.Fatalf("n=%d nb=%d p=%d: pivot %d differs: %d vs %d",
					tc.n, tc.nb, tc.ranks, k, dist.Pivots[k], p)
			}
		}
		for i := range serial.F.Data {
			if math.Abs(serial.F.Data[i]-dist.F.Data[i]) > 1e-10 {
				t.Fatalf("n=%d nb=%d p=%d: factor differs at %d: %v vs %v",
					tc.n, tc.nb, tc.ranks, i, dist.F.Data[i], serial.F.Data[i])
			}
		}
	}
}

func TestDistFactorizeSolves(t *testing.T) {
	const n = 28
	a := RandomSPDish(n, 99)
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i%4) - 1.5
	}
	b := a.MatVec(want)

	w := luWorld(t, 4)
	lu, res, err := DistFactorize(w, a, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Error("no virtual time accounted")
	}
	x, err := lu.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, x, b); r > 16 {
		t.Errorf("HPL residual %v", r)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestDistFactorizeCommunicationGrows(t *testing.T) {
	// The same factorization across more nodes pays more broadcast time.
	a := RandomSPDish(32, 5)
	w1 := luWorld(t, 1)
	_, r1, err := DistFactorize(w1, a, 8)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := interconnect.NewTofuD(machine.CTEArm(), 12)
	if err != nil {
		t.Fatal(err)
	}
	w4, err := mpisim.NewWorld(fab, 4, 1) // four ranks on four nodes
	if err != nil {
		t.Fatal(err)
	}
	_, r4, err := DistFactorize(w4, a, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Elapsed <= r1.Elapsed {
		t.Errorf("inter-node factorization should pay for panel broadcasts: %v vs %v",
			r4.Elapsed, r1.Elapsed)
	}
}

func TestDistFactorizeValidation(t *testing.T) {
	w := luWorld(t, 2)
	if _, _, err := DistFactorize(w, NewDense(4, 5), 2); err == nil {
		t.Error("non-square accepted")
	}
	if _, _, err := DistFactorize(w, NewDense(4, 4), 0); err == nil {
		t.Error("zero block accepted")
	}
	// Singular matrices surface as an engine error (owner rank panics).
	if _, _, err := DistFactorize(luWorld(t, 2), NewDense(6, 6), 2); err == nil {
		t.Error("singular matrix accepted")
	}
}
