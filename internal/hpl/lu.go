package hpl

import (
	"fmt"
	"math"

	"clustereval/internal/omp"
)

// LU holds an in-place blocked LU factorization with partial pivoting:
// P*A = L*U, with L unit-lower-triangular and U upper-triangular packed
// into the factored matrix.
type LU struct {
	N      int
	F      *Dense // packed L\U factors
	Pivots []int  // row swapped with row k at step k
}

// Factorize computes the blocked right-looking LU factorization of A
// (overwriting a copy) with block size nb, optionally parallelizing the
// trailing update over the team. It fails on singular matrices.
func Factorize(a *Dense, nb int, team *omp.Team) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("hpl: matrix must be square, got %dx%d", a.Rows, a.Cols)
	}
	if nb <= 0 {
		return nil, fmt.Errorf("hpl: block size %d must be positive", nb)
	}
	n := a.Rows
	f := a.Clone()
	piv := make([]int, n)

	for k := 0; k < n; k += nb {
		kb := nb
		if k+kb > n {
			kb = n - k
		}
		// Panel factorization: unblocked LU with partial pivoting on the
		// panel columns k..k+kb, rows k..n. Row swaps apply to the full
		// matrix (left and right of the panel), as HPL does.
		for j := k; j < k+kb; j++ {
			p := j
			maxAbs := math.Abs(f.At(j, j))
			for i := j + 1; i < n; i++ {
				if a := math.Abs(f.At(i, j)); a > maxAbs {
					maxAbs, p = a, i
				}
			}
			if maxAbs == 0 {
				return nil, fmt.Errorf("hpl: matrix is singular at column %d", j)
			}
			piv[j] = p
			if p != j {
				swapRows(f, j, p)
			}
			d := f.At(j, j)
			for i := j + 1; i < n; i++ {
				lij := f.At(i, j) / d
				f.Set(i, j, lij)
				// Update the remaining panel columns only.
				for c := j + 1; c < k+kb; c++ {
					f.Set(i, c, f.At(i, c)-lij*f.At(j, c))
				}
			}
		}

		if k+kb >= n {
			break
		}
		// Triangular solve: U12 = L11^{-1} * A12 (unit lower).
		for j := k; j < k+kb; j++ {
			for i := k; i < j; i++ {
				lji := f.At(j, i)
				if lji == 0 {
					continue
				}
				for c := k + kb; c < n; c++ {
					f.Set(j, c, f.At(j, c)-lji*f.At(i, c))
				}
			}
		}
		// Trailing update: A22 -= L21 * U12 — the DGEMM that dominates
		// HPL's runtime.
		m := n - (k + kb)
		gemmUpdate(team, f, k+kb, k+kb, m, m, f, k+kb, k, kb, f, k, k+kb)
	}
	return &LU{N: n, F: f, Pivots: piv}, nil
}

func swapRows(m *Dense, a, b int) {
	ra := m.Data[a*m.Cols : (a+1)*m.Cols]
	rb := m.Data[b*m.Cols : (b+1)*m.Cols]
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

// Solve returns x with A*x = b, using the factorization.
func (lu *LU) Solve(b []float64) ([]float64, error) {
	if len(b) != lu.N {
		return nil, fmt.Errorf("hpl: rhs length %d, want %d", len(b), lu.N)
	}
	n := lu.N
	x := append([]float64(nil), b...)
	// Apply pivots.
	for k := 0; k < n; k++ {
		if p := lu.Pivots[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution (unit lower).
	for i := 0; i < n; i++ {
		row := lu.F.Data[i*n : i*n+i]
		acc := x[i]
		for j, l := range row {
			acc -= l * x[j]
		}
		x[i] = acc
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := lu.F.Data[i*n : (i+1)*n]
		acc := x[i]
		for j := i + 1; j < n; j++ {
			acc -= row[j] * x[j]
		}
		x[i] = acc / row[i]
	}
	return x, nil
}

// Residual computes the scaled HPL residual
// ||Ax-b||_inf / (eps * (||A||_inf ||x||_inf + ||b||_inf) * n),
// which the benchmark requires to be O(1) (HPL passes below 16).
func Residual(a *Dense, x, b []float64) float64 {
	ax := a.MatVec(x)
	maxDiff := 0.0
	for i := range ax {
		if d := math.Abs(ax[i] - b[i]); d > maxDiff {
			maxDiff = d
		}
	}
	n := float64(a.Rows)
	denom := math.SmallestNonzeroFloat64
	if d := (a.InfNorm()*VecInfNorm(x) + VecInfNorm(b)) * n * 2.220446049250313e-16; d > denom {
		denom = d
	}
	return maxDiff / denom
}

// FlopCount returns the LU+solve flop count 2n^3/3 + 2n^2 that HPL credits.
func FlopCount(n int) float64 {
	nf := float64(n)
	return 2*nf*nf*nf/3 + 2*nf*nf
}
