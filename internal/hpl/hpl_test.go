package hpl

import (
	"math"
	"testing"

	"clustereval/internal/machine"
	"clustereval/internal/omp"
)

func TestFactorizeResidualSmall(t *testing.T) {
	for _, n := range []int{5, 32, 64, 97} {
		for _, nb := range []int{1, 8, 32} {
			a := RandomSPDish(n, uint64(n*100+nb))
			lu, err := Factorize(a, nb, nil)
			if err != nil {
				t.Fatalf("n=%d nb=%d: %v", n, nb, err)
			}
			// Build b = A * ones, solve, and apply the HPL residual check.
			ones := make([]float64, n)
			for i := range ones {
				ones[i] = 1
			}
			b := a.MatVec(ones)
			x, err := lu.Solve(b)
			if err != nil {
				t.Fatal(err)
			}
			r := Residual(a, x, b)
			if r > 16 {
				t.Errorf("n=%d nb=%d: HPL residual %.2f exceeds 16", n, nb, r)
			}
			for i := range x {
				if math.Abs(x[i]-1) > 1e-6 {
					t.Errorf("n=%d nb=%d: x[%d] = %v, want 1", n, nb, i, x[i])
					break
				}
			}
		}
	}
}

func TestBlockedMatchesUnblocked(t *testing.T) {
	// The blocked factorization must produce the same factors as nb=1.
	a := RandomSPDish(48, 7)
	lu1, err := Factorize(a, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	lu2, err := Factorize(a, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lu1.F.Data {
		if math.Abs(lu1.F.Data[i]-lu2.F.Data[i]) > 1e-10 {
			t.Fatalf("factors differ at %d: %v vs %v", i, lu1.F.Data[i], lu2.F.Data[i])
		}
	}
	for k, p := range lu1.Pivots {
		if lu2.Pivots[k] != p {
			t.Fatalf("pivots differ at %d", k)
		}
	}
}

func TestFactorizeParallelMatchesSerial(t *testing.T) {
	team, err := omp.NewTeam(machine.CTEArm().Node, 8, omp.Spread)
	if err != nil {
		t.Fatal(err)
	}
	a := RandomSPDish(96, 11)
	serial, err := Factorize(a, 24, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Factorize(a, 24, team)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.F.Data {
		if serial.F.Data[i] != parallel.F.Data[i] {
			t.Fatalf("parallel trailing update diverged at %d", i)
		}
	}
}

func TestFactorizeSingular(t *testing.T) {
	a := NewDense(4, 4) // all zeros
	if _, err := Factorize(a, 2, nil); err == nil {
		t.Error("singular matrix accepted")
	}
	// A matrix with a duplicate row is singular too.
	b := RandomSPDish(6, 3)
	for j := 0; j < 6; j++ {
		b.Set(5, j, b.At(4, j))
	}
	if _, err := Factorize(b, 2, nil); err == nil {
		t.Error("rank-deficient matrix accepted")
	}
}

func TestFactorizeValidation(t *testing.T) {
	if _, err := Factorize(NewDense(3, 4), 2, nil); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := Factorize(NewDense(4, 4), 0, nil); err == nil {
		t.Error("zero block size accepted")
	}
}

func TestSolveValidation(t *testing.T) {
	a := RandomSPDish(8, 1)
	lu, _ := Factorize(a, 4, nil)
	if _, err := lu.Solve(make([]float64, 5)); err == nil {
		t.Error("wrong rhs length accepted")
	}
}

func TestPivotingActuallyHappens(t *testing.T) {
	// A matrix with a tiny leading pivot must be factored accurately —
	// without partial pivoting this loses all precision.
	a := NewDense(2, 2)
	a.Set(0, 0, 1e-20)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	lu, err := Factorize(a, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lu.Pivots[0] != 1 {
		t.Error("no pivot swap for tiny leading element")
	}
	b := a.MatVec([]float64{1, 2})
	x, _ := lu.Solve(b)
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-2) > 1e-9 {
		t.Errorf("solution %v inaccurate despite pivoting", x)
	}
}

func TestFlopCount(t *testing.T) {
	if got, want := FlopCount(100), 2e6/3.0+2e4; math.Abs(got-want) > 1 {
		t.Errorf("FlopCount(100) = %v, want %v", got, want)
	}
}

func TestProblemSize(t *testing.T) {
	arm := machine.CTEArm()
	// sqrt(0.8*32e9/8) = 56568, rounded down to a multiple of 240.
	n := ProblemSize(arm, 1)
	if n%240 != 0 {
		t.Errorf("N=%d not a block multiple", n)
	}
	if n < 56000 || n > 56568 {
		t.Errorf("1-node N = %d, want ~56.3k", n)
	}
	// Memory footprint stays within 80-100 % of aggregate memory.
	for _, nodes := range []int{1, 16, 192} {
		n := ProblemSize(arm, nodes)
		bytes := 8 * float64(n) * float64(n)
		memTotal := float64(nodes) * arm.Node.MemoryBytes
		if bytes > memTotal {
			t.Errorf("nodes=%d: N=%d exceeds memory", nodes, n)
		}
		if bytes < 0.75*memTotal {
			t.Errorf("nodes=%d: N=%d uses only %.0f%% of memory", nodes, n, 100*bytes/memTotal)
		}
	}
}

func TestPQ(t *testing.T) {
	cases := []struct{ ranks, p, q int }{
		{1, 1, 1}, {4, 2, 2}, {16, 4, 4}, {48, 6, 8}, {768, 24, 32}, {7, 1, 7},
	}
	for _, c := range cases {
		p, q := PQ(c.ranks)
		if p*q != c.ranks || p != c.p || q != c.q {
			t.Errorf("PQ(%d) = %dx%d, want %dx%d", c.ranks, p, q, c.p, c.q)
		}
	}
}

func TestRanksPerNode(t *testing.T) {
	if RanksPerNode(machine.CTEArm()) != 4 {
		t.Error("CTE-Arm should map 4 ranks/node (one per CMG)")
	}
	if RanksPerNode(machine.MareNostrum4()) != 1 {
		t.Error("MN4 should map 1 rank/node")
	}
}

func TestFig6Anchors(t *testing.T) {
	arm := machine.CTEArm()
	mn4 := machine.MareNostrum4()

	// Paper: at 192 nodes CTE-Arm reaches 85 % of peak, MN4 63 %.
	rArm, err := Predict(arm, 192)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rArm.PercentOfPeak-85) > 1.5 {
		t.Errorf("CTE-Arm 192-node efficiency = %.1f%%, paper 85%%", rArm.PercentOfPeak)
	}
	rMN4, err := Predict(mn4, 192)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rMN4.PercentOfPeak-63) > 1.5 {
		t.Errorf("MN4 192-node efficiency = %.1f%%, paper 63%%", rMN4.PercentOfPeak)
	}

	// Fugaku recorded 82 % in the Nov 2020 list; the paper notes CTE-Arm
	// lands ~3 % above that.
	if d := rArm.PercentOfPeak - 82; d < 1 || d > 5 {
		t.Errorf("CTE-Arm vs Fugaku gap = %.1f points, paper ~3", d)
	}
}

func TestTableIVLinpackRow(t *testing.T) {
	// Table IV row LINPACK: speedups of CTE-Arm over MN4 at equal node
	// counts. The paper's 128-node entry (1.70) is a measurement outlier;
	// the model reproduces the surrounding trend.
	want := map[int]float64{1: 1.25, 16: 1.28, 32: 1.38, 64: 1.35, 192: 1.40}
	for nodes, wantSpeedup := range want {
		a, err := Predict(machine.CTEArm(), nodes)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Predict(machine.MareNostrum4(), nodes)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(a.Perf) / float64(m.Perf)
		if math.Abs(got-wantSpeedup) > 0.08*wantSpeedup {
			t.Errorf("nodes=%d: speedup %.3f, paper %.2f", nodes, got, wantSpeedup)
		}
	}
}

func TestFigure6Sweep(t *testing.T) {
	runs, err := Figure6(machine.CTEArm(), 192)
	if err != nil {
		t.Fatal(err)
	}
	if runs[len(runs)-1].Nodes != 192 {
		t.Error("sweep must end at the full system")
	}
	// Performance grows with node count; efficiency declines.
	for i := 1; i < len(runs); i++ {
		if runs[i].Perf <= runs[i-1].Perf {
			t.Errorf("performance not increasing at %d nodes", runs[i].Nodes)
		}
		if runs[i].PercentOfPeak > runs[i-1].PercentOfPeak {
			t.Errorf("efficiency increased at %d nodes", runs[i].Nodes)
		}
	}
	// Never above peak.
	for _, r := range runs {
		if float64(r.Perf) > float64(r.Peak) {
			t.Errorf("nodes=%d: perf above peak", r.Nodes)
		}
	}
}

func TestPredictErrors(t *testing.T) {
	if _, err := Predict(machine.CTEArm(), 0); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := Predict(machine.CTEArm(), 500); err == nil {
		t.Error("more nodes than cluster accepted")
	}
	if _, err := Figure6(machine.CTEArm(), 0); err == nil {
		t.Error("bad sweep accepted")
	}
}

func TestNodeSweep(t *testing.T) {
	got := NodeSweep(192)
	want := []int{1, 2, 4, 8, 16, 32, 64, 128, 192}
	if len(got) != len(want) {
		t.Fatalf("sweep = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep = %v, want %v", got, want)
		}
	}
	if s := NodeSweep(1); len(s) != 1 || s[0] != 1 {
		t.Errorf("NodeSweep(1) = %v", s)
	}
}
