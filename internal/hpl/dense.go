// Package hpl implements the LINPACK benchmark of Section IV-A: a real
// blocked LU factorization with partial pivoting (correctness-tested with
// the official HPL residual criterion) and a distributed performance model
// that regenerates Fig. 6's scalability curves for both clusters.
package hpl

import (
	"fmt"
	"math"

	"clustereval/internal/omp"
	"clustereval/internal/xrand"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewDense allocates an r x c zero matrix.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("hpl: invalid dimensions %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// RandomSPDish fills an n x n matrix with the HPL-style random entries in
// [-0.5, 0.5) plus a diagonal boost that keeps the system comfortably
// conditioned for testing.
func RandomSPDish(n int, seed uint64) *Dense {
	r := xrand.New(seed)
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, r.Float64()-0.5)
		}
	}
	return m
}

// MatVec computes y = A*x.
func (m *Dense) MatVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("hpl: dimension mismatch in MatVec")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		acc := 0.0
		for j, v := range row {
			acc += v * x[j]
		}
		y[i] = acc
	}
	return y
}

// InfNorm returns the infinity norm (max absolute row sum).
func (m *Dense) InfNorm() float64 {
	max := 0.0
	for i := 0; i < m.Rows; i++ {
		sum := 0.0
		for _, v := range m.Data[i*m.Cols : (i+1)*m.Cols] {
			sum += math.Abs(v)
		}
		if sum > max {
			max = sum
		}
	}
	return max
}

// VecInfNorm returns max |x_i|.
func VecInfNorm(x []float64) float64 {
	max := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// gemmUpdate computes C -= A*B for the trailing update, where A is m x k,
// B is k x n and C is m x n, each a rectangular view into dst at the given
// offsets. A team parallelizes over C's rows; a nil team runs serially.
func gemmUpdate(team *omp.Team, dst *Dense, ci, cj, m, n int, a *Dense, ai, aj, k int, b *Dense, bi, bj int) {
	body := func(i int) {
		crow := dst.Data[(ci+i)*dst.Cols+cj:]
		arow := a.Data[(ai+i)*a.Cols+aj:]
		for kk := 0; kk < k; kk++ {
			aik := arow[kk]
			if aik == 0 {
				continue
			}
			brow := b.Data[(bi+kk)*b.Cols+bj:]
			for j := 0; j < n; j++ {
				crow[j] -= aik * brow[j]
			}
		}
	}
	if team == nil || m < 2 {
		for i := 0; i < m; i++ {
			body(i)
		}
		return
	}
	team.ParallelFor(m, omp.Static, 0, body)
}
