package toolchain

import (
	"errors"
	"strings"
	"testing"

	"clustereval/internal/machine"
)

func TestTableII(t *testing.T) {
	// The four STREAM build rows of Table II.
	omp := StreamOpenMPArm()
	if omp.Vendor != Fujitsu || omp.Version != "1.2.26b" {
		t.Errorf("CTE-Arm OpenMP compiler = %s", omp)
	}
	for _, f := range []string{"-Kfast,parallel", "-KSVE", "-Kopenmp", "-Kzfill=100", "-mcmodel=large"} {
		if !omp.HasFlag(f) {
			t.Errorf("CTE-Arm OpenMP build missing flag %s", f)
		}
	}

	hyb := StreamHybridArm()
	if hyb.HasFlag("-mcmodel=large") {
		t.Error("hybrid build should not carry -mcmodel=large")
	}
	if !hyb.HasFlag("-Kzfill=100") {
		t.Error("hybrid build lost its tuning flags")
	}
	// The hybrid derivation must not mutate the OpenMP flag list.
	if !StreamOpenMPArm().HasFlag("-mcmodel=large") {
		t.Error("StreamHybridArm mutated the base build")
	}

	mn4 := StreamMN4()
	if mn4.Vendor != Intel || mn4.Version != "19.1.1.217" {
		t.Errorf("MN4 compiler = %s", mn4)
	}
	for _, f := range []string{"-O3", "-xHost", "-qopenmp"} {
		if !mn4.HasFlag(f) {
			t.Errorf("MN4 build missing flag %s", f)
		}
	}
}

func TestTableIII(t *testing.T) {
	builds := AppBuilds()
	if len(builds) != 10 {
		t.Fatalf("Table III has %d rows, want 10 (5 apps x 2 machines)", len(builds))
	}
	apps := map[string]int{}
	for _, b := range builds {
		apps[b.App]++
	}
	for _, app := range []string{"Alya", "NEMO", "Gromacs", "OpenIFS", "WRF"} {
		if apps[app] != 2 {
			t.Errorf("app %s has %d rows, want 2", app, apps[app])
		}
	}

	// Spot checks against the paper's table.
	alya, ok := AppBuildFor("Alya", "CTE-Arm")
	if !ok || alya.Compiler.Version != "8.3.1-sve" || alya.MPIFlavor != "Fujitsu/1.1.18" {
		t.Errorf("Alya CTE-Arm row = %+v", alya)
	}
	gmx, ok := AppBuildFor("Gromacs", "CTE-Arm")
	if !ok || gmx.Compiler.Version != "11.0.0" {
		t.Errorf("Gromacs CTE-Arm compiler = %s (paper: GNU 11.0.0 because 8.3.1-sve is too old)", gmx.Compiler)
	}
	nemoMN4, ok := AppBuildFor("NEMO", "MareNostrum 4")
	if !ok || nemoMN4.Compiler.Vendor != Intel || !nemoMN4.Compiler.HasFlag("-xCORE-AVX512") {
		t.Errorf("NEMO MN4 row = %+v", nemoMN4)
	}
	if _, ok := AppBuildFor("HPL", "CTE-Arm"); ok {
		t.Error("AppBuildFor invented a row")
	}

	// Every CTE-Arm application row uses GNU + Fujitsu MPI: the paper notes
	// only the Fujitsu MPI supports Tofu.
	for _, b := range builds {
		if b.Machine != "CTE-Arm" {
			continue
		}
		if b.Compiler.Vendor != GNU {
			t.Errorf("%s on CTE-Arm built with %s, paper fell back to GNU for all apps", b.App, b.Compiler.Vendor)
		}
		if !strings.HasPrefix(b.MPIFlavor, "Fujitsu/") {
			t.Errorf("%s on CTE-Arm uses MPI %s, want Fujitsu", b.App, b.MPIFlavor)
		}
	}
}

func TestFujitsuCompileFailures(t *testing.T) {
	arm := machine.CTEArm()
	fj := FujitsuArm("1.2.26b")
	for app, wantStage := range map[string]string{
		"Alya": "compile", "NEMO": "compile", "Gromacs": "cmake", "OpenIFS": "runtime",
	} {
		_, err := Compile(fj, arm, app)
		if err == nil {
			t.Errorf("Fujitsu compiler built %s; the paper reports failure", app)
			continue
		}
		var ce *CompileError
		if !errors.As(err, &ce) {
			t.Errorf("error type = %T", err)
			continue
		}
		if ce.Stage != wantStage {
			t.Errorf("%s failure stage = %s, want %s", app, ce.Stage, wantStage)
		}
	}
	// WRF is not in the Fujitsu failure list (the paper only reports GNU
	// numbers for it, but no Fujitsu failure either) — HPL/HPCG also build.
	if _, err := Compile(fj, arm, "HPCG"); err != nil {
		t.Errorf("Fujitsu should build HPCG: %v", err)
	}
}

func TestIntelTargetsX86Only(t *testing.T) {
	_, err := Compile(IntelMN4(), machine.CTEArm(), "NEMO")
	if err == nil {
		t.Error("Intel compiler accepted Armv8 target")
	}
}

func TestGNUOnArmScalarFallback(t *testing.T) {
	arm := machine.CTEArm()
	b, err := Compile(GNUArmSVE(), arm, "Alya")
	if err != nil {
		t.Fatal(err)
	}
	if got := b.VectorISA(AppLoop); got != machine.ISAScalar {
		t.Errorf("GNU-on-Arm app loops use %s, paper says SVE is not leveraged (scalar)", got)
	}
	if got := b.VectorISA(RegularLoop); got != machine.ISASVE {
		t.Errorf("GNU-on-Arm regular loops use %s, want SVE", got)
	}
	if got := b.VectorISA(IrregularCode); got != machine.ISAScalar {
		t.Errorf("irregular code ISA = %s", got)
	}
}

func TestIntelOnMN4Vectorizes(t *testing.T) {
	mn4 := machine.MareNostrum4()
	b, err := Compile(IntelMN4(), mn4, "NEMO")
	if err != nil {
		t.Fatal(err)
	}
	if got := b.VectorISA(AppLoop); got != machine.ISAAVX512 {
		t.Errorf("Intel app loops use %s, want AVX512", got)
	}
}

func TestSustainedFlopsRatio(t *testing.T) {
	// The composed model must yield the paper's application-level gap: on
	// compute-bound app loops, one A64FX core (GNU, scalar fallback) is
	// roughly 3-5x slower than one Skylake core (Intel, AVX-512).
	arm := machine.CTEArm()
	mn4 := machine.MareNostrum4()
	bArm, err := Compile(GNUArmSVE(), arm, "Alya")
	if err != nil {
		t.Fatal(err)
	}
	bMN4, err := Compile(IntelMN4(), mn4, "Alya")
	if err != nil {
		t.Fatal(err)
	}
	fArm := SustainedFlops(bArm, arm, AppLoop)
	fMN4 := SustainedFlops(bMN4, mn4, AppLoop)
	ratio := fMN4 / fArm
	if ratio < 3 || ratio > 20 {
		t.Errorf("per-core app-loop ratio MN4/CTE = %.2f, want within [3, 20]", ratio)
	}
	// On hand-tuned code the A64FX must win (Fig. 1: higher peak).
	fArmAsm := SustainedFlops(bArm, arm, HandTunedAsm)
	fMN4Asm := SustainedFlops(bMN4, mn4, HandTunedAsm)
	if fArmAsm <= fMN4Asm {
		t.Errorf("hand-tuned: CTE %v <= MN4 %v, but A64FX has the higher peak", fArmAsm, fMN4Asm)
	}
}

func TestStreamLanguageFactors(t *testing.T) {
	arm := machine.CTEArm()
	// Fujitsu hybrid: Fortran must be ~2x the C bandwidth (Fig. 3).
	bF, err := Compile(StreamHybridArm(), arm, "STREAM")
	if err != nil {
		t.Fatal(err)
	}
	ratio := bF.StreamFactor(Fortran) / bF.StreamFactor(C)
	if ratio < 1.8 || ratio > 2.3 {
		t.Errorf("Fujitsu Fortran/C stream factor = %.2f, want ~2.05", ratio)
	}
	// Fujitsu OpenMP-only build (-mcmodel=large): C ~10 % faster than
	// Fortran (Fig. 2).
	bO, err := Compile(StreamOpenMPArm(), arm, "STREAM")
	if err != nil {
		t.Fatal(err)
	}
	rO := bO.StreamFactor(C) / bO.StreamFactor(Fortran)
	if rO < 1.05 || rO > 1.15 {
		t.Errorf("Fujitsu OpenMP C/Fortran stream factor = %.2f, want ~1.10", rO)
	}
	// GNU on Arm shows the same mild C advantage.
	bG, err := Compile(GNUArmSVE(), arm, "STREAM")
	if err != nil {
		t.Fatal(err)
	}
	r2 := bG.StreamFactor(C) / bG.StreamFactor(Fortran)
	if r2 < 1.05 || r2 > 1.15 {
		t.Errorf("GNU C/Fortran stream factor = %.2f, want ~1.10", r2)
	}
}

func TestStreamFactorDefault(t *testing.T) {
	b := &Build{langStream: map[Language]float64{}}
	if b.StreamFactor(C) != 1.0 {
		t.Error("missing language should default to 1.0")
	}
}

func TestCompileUnknownVendor(t *testing.T) {
	_, err := Compile(Compiler{Vendor: "Cray"}, machine.MareNostrum4(), "X")
	if err == nil {
		t.Error("unknown vendor accepted")
	}
}

func TestCompileErrorMessage(t *testing.T) {
	_, err := Compile(FujitsuArm("1.2.26b"), machine.CTEArm(), "Gromacs")
	if err == nil || !strings.Contains(err.Error(), "cmake") {
		t.Errorf("error = %v, want cmake stage mentioned", err)
	}
}

func TestLanguageString(t *testing.T) {
	if C.String() != "C" || Fortran.String() != "Fortran" {
		t.Error("language names wrong")
	}
}
