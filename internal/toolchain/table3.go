package toolchain

import (
	"strings"

	"clustereval/internal/machine"
)

// AppBuildConfig is one row-group of Table III: how an application was built
// on one machine.
type AppBuildConfig struct {
	App          string
	Machine      string
	Compiler     Compiler
	MPIFlavor    string
	Dependencies []string
}

// AppBuilds returns the full content of Table III: the build configuration
// of each application on each machine, exactly as the paper reports them.
func AppBuilds() []AppBuildConfig {
	return []AppBuildConfig{
		{
			App: "Alya", Machine: "CTE-Arm",
			Compiler: GNUArmSVE("-ffree-line-length-512", "-DNDIMEPAR",
				"-DVECTOR_SIZE=16", "-DMETIS"),
			MPIFlavor:    "Fujitsu/1.1.18",
			Dependencies: []string{"metis/4.0"},
		},
		{
			App: "Alya", Machine: "MareNostrum 4",
			Compiler: Compiler{
				Vendor: GNU, Version: "8.4.2",
				Flags: []string{"-O3", "-march=skylake-avx512", "-ffree-line-length-none",
					"-fimplicit-none", "-DNDIMEPAR", "-DVECTOR_SIZE=16", "-DMETIS"},
			},
			MPIFlavor:    "OpenMPI/4.0.2",
			Dependencies: []string{"metis/4.0"},
		},
		{
			App: "NEMO", Machine: "CTE-Arm",
			Compiler: GNUArmSVE("-fdefault-real-8", "-funroll-all-loops",
				"-fcray-pointer", "-ffree-line-length-none"),
			MPIFlavor:    "Fujitsu/1.2.26b",
			Dependencies: []string{"HDF5/1.12.0", "NetCDF-C/4.7.4", "NetCDF-F/4.5.3"},
		},
		{
			App: "NEMO", Machine: "MareNostrum 4",
			Compiler: Compiler{
				Vendor: Intel, Version: "2017.4",
				Flags: []string{"-O3", "-g", "-i4", "-r8", "-xCORE-AVX512",
					"-mtune=skylake", "-fp-model", "strict", "-fno-alias", "-traceback"},
			},
			MPIFlavor:    "Intel/2018.4",
			Dependencies: []string{"HDF5/1.8.19", "NetCDF-C/4.2", "NetCDF-F/4.2"},
		},
		{
			App: "Gromacs", Machine: "CTE-Arm",
			Compiler:     GNU11Arm(),
			MPIFlavor:    "Fujitsu/1.2.26b",
			Dependencies: []string{"fftw3/3.3.9-sve", "Fujitsu SSL2/1.2.26b"},
		},
		{
			App: "Gromacs", Machine: "MareNostrum 4",
			Compiler: Compiler{
				Vendor: Intel, Version: "2018.4",
				Flags: []string{"-O3", "-qopenmp", "-xCORE-AVX512", "-qopt-zmm-usage=high"},
			},
			MPIFlavor:    "Intel/2018.4",
			Dependencies: []string{"fftw/3.3.8", "MKL/2018.4"},
		},
		{
			App: "OpenIFS", Machine: "CTE-Arm",
			Compiler: GNUArmSVE("-O2", "-fconvert=big-endian", "-fopenmp",
				"-ffree-line-length-none", "-fdefault-real-8", "-fdefault-double-8"),
			MPIFlavor: "Fujitsu/1.2.26b",
			Dependencies: []string{"HDF5/1.12.0", "NetCDF-C/4.7.4", "NetCDF-F/4.5.3",
				"eccodes/2.18.0", "BLAS/Internal", "LAPACK/Internal"},
		},
		{
			App: "OpenIFS", Machine: "MareNostrum 4",
			Compiler: Compiler{
				Vendor: Intel, Version: "2018.4",
				Flags: []string{"-O0", "-m64", "-O2", "-fpe0", "-fp-model", "precise",
					"-fp-speculation=safe", "-convert", "big_endian", "-r8"},
			},
			MPIFlavor: "Intel/2018.4",
			Dependencies: []string{"HDF5/1.8.19", "NetCDF-C/4.4.1.1", "NetCDF-F/4.4.1.1",
				"eccodes/2.18.0", "MKL/2018.4"},
		},
		{
			App: "WRF", Machine: "CTE-Arm",
			Compiler: GNUArmSVE("-w", "-O3", "-c", "-O2", "-ftree-vectorize",
				"-funroll-loops", "-fconvert=big-endian", "-frecord-marker=4"),
			MPIFlavor:    "Fujitsu/1.2.26b",
			Dependencies: []string{"NETCDF/4.2", "HDF5/1.8.19"},
		},
		{
			App: "WRF", Machine: "MareNostrum 4",
			Compiler: Compiler{
				Vendor: Intel, Version: "2017.4",
				Flags: []string{"-w", "-O3", "-ip", "-fp-model", "precise",
					"-convert", "big_endian"},
			},
			MPIFlavor:    "Intel/2017.4",
			Dependencies: []string{"NETCDF/4.4.1.1", "HDF5/1.8.19"},
		},
	}
}

// AppBuildFor returns the Table III configuration for (app, machine), or
// false when the paper has no such row.
func AppBuildFor(app, machineName string) (AppBuildConfig, bool) {
	for _, b := range AppBuilds() {
		if b.App == app && b.Machine == machineName {
			return b, true
		}
	}
	return AppBuildConfig{}, false
}

// AppBuildOn resolves the build configuration for app on an arbitrary
// machine descriptor. Machines with an exact Table III row get it
// verbatim; other systems inherit the row of the paper machine with the
// same silicon (any A64FX cluster reuses the CTE-Arm builds, any x86
// cluster the MareNostrum 4 ones), and remaining Armv8 systems — the
// ThunderX2 — get the GNU toolchain the Dibona study used, with the
// same app-specific flags as the CTE-Arm rows minus the SVE request.
func AppBuildOn(app string, m machine.Machine) (AppBuildConfig, bool) {
	if b, ok := AppBuildFor(app, m.Name); ok {
		return b, true
	}
	proxy := ""
	switch {
	case m.CPUName == "A64FX":
		proxy = "CTE-Arm"
	case m.Arch == "Intel x86":
		proxy = "MareNostrum 4"
	}
	if proxy != "" {
		if b, ok := AppBuildFor(app, proxy); ok {
			b.Machine = m.Name
			return b, true
		}
		return AppBuildConfig{}, false
	}
	if m.Arch != "Armv8" {
		return AppBuildConfig{}, false
	}
	base, ok := AppBuildFor(app, "CTE-Arm")
	if !ok {
		return AppBuildConfig{}, false
	}
	// Rebase the CTE-Arm row onto plain Armv8: same GNU flag set with
	// the SVE codegen requests dropped, generic OpenMPI instead of the
	// Fujitsu MPI.
	c := base.Compiler
	c.Vendor = GNU
	c.SVECapable = false
	flags := make([]string, 0, len(c.Flags))
	for _, f := range c.Flags {
		if strings.HasPrefix(f, "-march=armv8.2-a+sve") || strings.HasPrefix(f, "-msve-vector-bits") {
			continue
		}
		flags = append(flags, f)
	}
	c.Flags = append(flags, "-mcpu=thunderx2t99")
	return AppBuildConfig{
		App: app, Machine: m.Name, Compiler: c,
		MPIFlavor:    "OpenMPI/4.0.2",
		Dependencies: base.Dependencies,
	}, true
}
