package toolchain

// AppBuildConfig is one row-group of Table III: how an application was built
// on one machine.
type AppBuildConfig struct {
	App          string
	Machine      string
	Compiler     Compiler
	MPIFlavor    string
	Dependencies []string
}

// AppBuilds returns the full content of Table III: the build configuration
// of each application on each machine, exactly as the paper reports them.
func AppBuilds() []AppBuildConfig {
	return []AppBuildConfig{
		{
			App: "Alya", Machine: "CTE-Arm",
			Compiler: GNUArmSVE("-ffree-line-length-512", "-DNDIMEPAR",
				"-DVECTOR_SIZE=16", "-DMETIS"),
			MPIFlavor:    "Fujitsu/1.1.18",
			Dependencies: []string{"metis/4.0"},
		},
		{
			App: "Alya", Machine: "MareNostrum 4",
			Compiler: Compiler{
				Vendor: GNU, Version: "8.4.2",
				Flags: []string{"-O3", "-march=skylake-avx512", "-ffree-line-length-none",
					"-fimplicit-none", "-DNDIMEPAR", "-DVECTOR_SIZE=16", "-DMETIS"},
			},
			MPIFlavor:    "OpenMPI/4.0.2",
			Dependencies: []string{"metis/4.0"},
		},
		{
			App: "NEMO", Machine: "CTE-Arm",
			Compiler: GNUArmSVE("-fdefault-real-8", "-funroll-all-loops",
				"-fcray-pointer", "-ffree-line-length-none"),
			MPIFlavor:    "Fujitsu/1.2.26b",
			Dependencies: []string{"HDF5/1.12.0", "NetCDF-C/4.7.4", "NetCDF-F/4.5.3"},
		},
		{
			App: "NEMO", Machine: "MareNostrum 4",
			Compiler: Compiler{
				Vendor: Intel, Version: "2017.4",
				Flags: []string{"-O3", "-g", "-i4", "-r8", "-xCORE-AVX512",
					"-mtune=skylake", "-fp-model", "strict", "-fno-alias", "-traceback"},
			},
			MPIFlavor:    "Intel/2018.4",
			Dependencies: []string{"HDF5/1.8.19", "NetCDF-C/4.2", "NetCDF-F/4.2"},
		},
		{
			App: "Gromacs", Machine: "CTE-Arm",
			Compiler:     GNU11Arm(),
			MPIFlavor:    "Fujitsu/1.2.26b",
			Dependencies: []string{"fftw3/3.3.9-sve", "Fujitsu SSL2/1.2.26b"},
		},
		{
			App: "Gromacs", Machine: "MareNostrum 4",
			Compiler: Compiler{
				Vendor: Intel, Version: "2018.4",
				Flags: []string{"-O3", "-qopenmp", "-xCORE-AVX512", "-qopt-zmm-usage=high"},
			},
			MPIFlavor:    "Intel/2018.4",
			Dependencies: []string{"fftw/3.3.8", "MKL/2018.4"},
		},
		{
			App: "OpenIFS", Machine: "CTE-Arm",
			Compiler: GNUArmSVE("-O2", "-fconvert=big-endian", "-fopenmp",
				"-ffree-line-length-none", "-fdefault-real-8", "-fdefault-double-8"),
			MPIFlavor: "Fujitsu/1.2.26b",
			Dependencies: []string{"HDF5/1.12.0", "NetCDF-C/4.7.4", "NetCDF-F/4.5.3",
				"eccodes/2.18.0", "BLAS/Internal", "LAPACK/Internal"},
		},
		{
			App: "OpenIFS", Machine: "MareNostrum 4",
			Compiler: Compiler{
				Vendor: Intel, Version: "2018.4",
				Flags: []string{"-O0", "-m64", "-O2", "-fpe0", "-fp-model", "precise",
					"-fp-speculation=safe", "-convert", "big_endian", "-r8"},
			},
			MPIFlavor: "Intel/2018.4",
			Dependencies: []string{"HDF5/1.8.19", "NetCDF-C/4.4.1.1", "NetCDF-F/4.4.1.1",
				"eccodes/2.18.0", "MKL/2018.4"},
		},
		{
			App: "WRF", Machine: "CTE-Arm",
			Compiler: GNUArmSVE("-w", "-O3", "-c", "-O2", "-ftree-vectorize",
				"-funroll-loops", "-fconvert=big-endian", "-frecord-marker=4"),
			MPIFlavor:    "Fujitsu/1.2.26b",
			Dependencies: []string{"NETCDF/4.2", "HDF5/1.8.19"},
		},
		{
			App: "WRF", Machine: "MareNostrum 4",
			Compiler: Compiler{
				Vendor: Intel, Version: "2017.4",
				Flags: []string{"-w", "-O3", "-ip", "-fp-model", "precise",
					"-convert", "big_endian"},
			},
			MPIFlavor:    "Intel/2017.4",
			Dependencies: []string{"NETCDF/4.4.1.1", "HDF5/1.8.19"},
		},
	}
}

// AppBuildFor returns the Table III configuration for (app, machine), or
// false when the paper has no such row.
func AppBuildFor(app, machineName string) (AppBuildConfig, bool) {
	for _, b := range AppBuilds() {
		if b.App == app && b.Machine == machineName {
			return b, true
		}
	}
	return AppBuildConfig{}, false
}
