// Package toolchain models the compiler stacks of the paper. The paper's
// central finding — applications run 2-4x slower on the A64FX — is traced to
// the toolchain: the Fujitsu compiler fails to build most applications, the
// fallback GNU compiler rarely emits SVE for real application loops, and the
// code then executes on the A64FX's weak scalar core. This package encodes
// that causal chain: which compiler builds which code, which ISA its output
// uses, and with what efficiency.
package toolchain

import (
	"fmt"
	"strings"

	"clustereval/internal/machine"
)

// Vendor identifies a compiler family.
type Vendor string

// Compiler vendors appearing in Tables II and III.
const (
	Fujitsu Vendor = "Fujitsu"
	GNU     Vendor = "GNU"
	Intel   Vendor = "Intel"
)

// Compiler is one toolchain installation (vendor + version + flags).
type Compiler struct {
	Vendor  Vendor
	Version string
	Flags   []string
	// SVECapable marks builds whose flags request SVE code generation.
	SVECapable bool
}

// String renders "Vendor/version".
func (c Compiler) String() string { return string(c.Vendor) + "/" + c.Version }

// HasFlag reports whether the flag list contains s (exact match).
func (c Compiler) HasFlag(s string) bool {
	for _, f := range c.Flags {
		if f == s {
			return true
		}
	}
	return false
}

// CodeKind classifies source code by how amenable it is to compiler
// auto-vectorization. The FPU µKernel is hand-written assembly; STREAM is
// trivially vectorizable; application hot loops are a mix.
type CodeKind int

// Code kinds, from fully hand-tuned down to irregular scalar code.
const (
	HandTunedAsm  CodeKind = iota // intrinsics/asm: always uses the full vector unit
	RegularLoop                   // STREAM-like: every compiler vectorizes it
	CompactLoop                   // dense inner kernels (DGEMM-like): vendor libs vectorize
	AppLoop                       // real application loops: aliasing, calls, branches
	IrregularCode                 // pointer chasing, indirection: never vectorized
)

// Language of a translation unit. The paper measures consistent C-vs-Fortran
// differences (STREAM: C 10 % faster than Fortran with OpenMP on A64FX, but
// Fortran 2x faster than C in the hybrid Triad).
type Language int

// Source languages used by the paper's benchmarks.
const (
	C Language = iota
	Fortran
)

func (l Language) String() string {
	if l == C {
		return "C"
	}
	return "Fortran"
}

// CompileError describes a build failure, reproducing the paper's
// experience reports (Section V).
type CompileError struct {
	Compiler Compiler
	App      string
	Stage    string // "compile", "cmake", "link", "runtime"
	Detail   string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("toolchain: %s failed to build %s at %s stage: %s",
		e.Compiler, e.App, e.Stage, e.Detail)
}

// Build is the result of "compiling" a code with a toolchain for a machine:
// the efficiency model the performance layer consumes.
type Build struct {
	Compiler Compiler
	Machine  string
	// VectorISA is the SIMD extension the generated hot loops actually use
	// for a given code kind; ISAScalar means vectorization failed.
	vectorISA map[CodeKind]machine.ISA
	// VectorEfficiency is the fraction of the chosen unit's peak that the
	// generated code sustains for each code kind.
	vectorEff map[CodeKind]float64
	// LanguageStreamFactor scales streaming bandwidth per language,
	// capturing codegen differences (non-temporal stores, zfill, ...).
	langStream map[Language]float64
}

// VectorISA returns the SIMD extension used for code of kind k.
func (b *Build) VectorISA(k CodeKind) machine.ISA { return b.vectorISA[k] }

// VectorEfficiency returns the sustained fraction of peak for kind k.
func (b *Build) VectorEfficiency(k CodeKind) float64 { return b.vectorEff[k] }

// StreamFactor returns the language bandwidth factor (1.0 = nominal).
func (b *Build) StreamFactor(l Language) float64 {
	if f, ok := b.langStream[l]; ok {
		return f
	}
	return 1.0
}

// Table II build configurations for STREAM.

// StreamOpenMPArm returns the CTE-Arm OpenMP STREAM build (Fujitsu 1.2.26b).
func StreamOpenMPArm() Compiler {
	return Compiler{
		Vendor: Fujitsu, Version: "1.2.26b", SVECapable: true,
		Flags: []string{
			"-Kfast,parallel", "-KA64FX", "-KSVE", "-KARMV8_3_A", "-Kopenmp",
			"-Kzfill=100", "-Kprefetch_sequential=soft", "-Kprefetch_iteration=8",
			"-Kprefetch_iteration_L2=16", "-Knounroll", "-mcmodel=large",
		},
	}
}

// StreamHybridArm returns the CTE-Arm MPI+OpenMP STREAM build.
func StreamHybridArm() Compiler {
	c := StreamOpenMPArm()
	// Identical except -mcmodel=large is dropped (Table II).
	flags := c.Flags[:0:0]
	for _, f := range c.Flags {
		if f != "-mcmodel=large" {
			flags = append(flags, f)
		}
	}
	c.Flags = flags
	return c
}

// StreamMN4 returns the MareNostrum 4 STREAM build (Intel 19.1.1.217), used
// for both the OpenMP and hybrid variants.
func StreamMN4() Compiler {
	return Compiler{
		Vendor: Intel, Version: "19.1.1.217", SVECapable: false,
		Flags: []string{"-O3", "-xHost", "-qopenmp-link=static", "-qopenmp"},
	}
}

// StreamGNUArm returns the STREAM build for Armv8 systems without SVE
// (the ThunderX2 class): GNU with NEON autovectorisation, the toolchain
// the Dibona evaluation used.
func StreamGNUArm() Compiler {
	return Compiler{
		Vendor: GNU, Version: "8.2.0", SVECapable: false,
		Flags: []string{"-O3", "-fopenmp", "-mcpu=thunderx2t99", "-funroll-loops"},
	}
}

// GNUArmSVE returns the GNU 8.3.1-sve toolchain used for Alya, NEMO,
// OpenIFS and WRF on CTE-Arm (Table III).
func GNUArmSVE(extraFlags ...string) Compiler {
	return Compiler{
		Vendor: GNU, Version: "8.3.1-sve", SVECapable: true,
		Flags: append([]string{"-O3", "-march=armv8.2-a+sve", "-msve-vector-bits=512"}, extraFlags...),
	}
}

// GNU11Arm returns the GNU 11.0.0 toolchain used for Gromacs on CTE-Arm.
func GNU11Arm() Compiler {
	return Compiler{
		Vendor: GNU, Version: "11.0.0", SVECapable: true,
		Flags: []string{"-O3", "-fopenmp", "-march=armv8.2-a+sve", "-msve-vector-bits=512"},
	}
}

// IntelMN4 returns the Intel 2018.4-era toolchain used on MareNostrum 4.
func IntelMN4(extraFlags ...string) Compiler {
	return Compiler{
		Vendor: Intel, Version: "2018.4", SVECapable: false,
		Flags: append([]string{"-O3", "-xCORE-AVX512"}, extraFlags...),
	}
}

// FujitsuArm returns the Fujitsu trad-mode compiler.
func FujitsuArm(version string) Compiler {
	return Compiler{
		Vendor: Fujitsu, Version: version, SVECapable: true,
		Flags: []string{"-Kfast", "-KA64FX", "-KSVE"},
	}
}

// fujitsuAppFailures records the build attempts of Section V: every
// application except OpenIFS fails outright with the Fujitsu compiler, and
// OpenIFS compiles but then fails at runtime.
var fujitsuAppFailures = map[string]struct{ stage, detail string }{
	"Alya":    {"compile", "compiler hangs on the most complex Fortran modules"},
	"NEMO":    {"compile", "several compilation errors in Fortran 90 sources"},
	"Gromacs": {"cmake", "error in the cmake step of the build process"},
	"OpenIFS": {"runtime", "compiles after minimal source changes but fails during execution"},
}

// Compile models building application app with compiler c for machine m.
// It returns the efficiency model of the generated code or the documented
// build failure.
func Compile(c Compiler, m machine.Machine, app string) (*Build, error) {
	if c.Vendor == Fujitsu {
		if f, ok := fujitsuAppFailures[app]; ok {
			return nil, &CompileError{Compiler: c, App: app, Stage: f.stage, Detail: f.detail}
		}
		if m.CPUName != "A64FX" {
			return nil, &CompileError{Compiler: c, App: app, Stage: "compile",
				Detail: "Fujitsu compiler targets the A64FX only"}
		}
	}
	if c.Vendor == Intel && m.Arch != "Intel x86" {
		return nil, &CompileError{Compiler: c, App: app, Stage: "compile",
			Detail: "Intel compiler targets x86 only"}
	}
	if (c.Vendor == Fujitsu || strings.HasSuffix(c.Version, "-sve")) && m.Arch != "Armv8" &&
		c.Vendor != GNU {
		return nil, &CompileError{Compiler: c, App: app, Stage: "compile",
			Detail: "Arm cross toolchain cannot target " + m.Arch}
	}

	b := &Build{
		Compiler:   c,
		Machine:    m.Name,
		vectorISA:  make(map[CodeKind]machine.ISA),
		vectorEff:  make(map[CodeKind]float64),
		langStream: make(map[Language]float64),
	}

	// The "wide" ISA is whatever the machine's strongest vector unit
	// speaks: SVE on the A64FX, AVX-512 on Skylake, NEON on a ThunderX2
	// (which has no SVE). The per-arch defaults are kept as fallback for
	// hypothetical descriptors with no vector units at all.
	arm := m.Arch == "Armv8"
	wide := machine.ISAAVX512
	if arm {
		wide = machine.ISASVE
	}
	if best := m.Node.Core.BestVector(machine.Double); best != nil {
		wide = best.ISA
	}

	// Hand-tuned code always reaches the full unit.
	b.vectorISA[HandTunedAsm] = wide
	b.vectorEff[HandTunedAsm] = 0.99

	// Regular streaming loops: everyone vectorizes them; efficiency there is
	// bandwidth-bound anyway so the ISA matters little.
	b.vectorISA[RegularLoop] = wide
	b.vectorEff[RegularLoop] = 0.95

	switch c.Vendor {
	case Fujitsu:
		b.vectorISA[CompactLoop] = wide
		b.vectorEff[CompactLoop] = 0.90
		b.vectorISA[AppLoop] = wide
		b.vectorEff[AppLoop] = 0.15
		// The paper measures opposite language effects in its two STREAM
		// builds (Table II) and offers no explanation; we encode the
		// observation keyed on the build variant. The OpenMP-only build
		// (-mcmodel=large) runs C ~10 % faster than Fortran (Fig. 2),
		// while the hybrid build's C Triad reaches only half the Fortran
		// bandwidth (Fig. 3: 421.1 vs 862.6 GB/s).
		if c.HasFlag("-mcmodel=large") {
			b.langStream[C] = 1.0
			b.langStream[Fortran] = 0.91
		} else {
			b.langStream[Fortran] = 1.0
			b.langStream[C] = 0.49
		}
	case Intel:
		b.vectorISA[CompactLoop] = wide
		b.vectorEff[CompactLoop] = 0.92
		// Real application hot loops with AVX-512 sustain ~20 % of the
		// vector peak (~13 GFlop/s per Skylake core). Against the A64FX
		// scalar fallback (~2.6 GFlop/s) this yields the ~5x compute-bound
		// gap of the Alya assembly phase (Fig. 9).
		b.vectorISA[AppLoop] = wide
		b.vectorEff[AppLoop] = 0.195
		b.langStream[C] = 1.0
		b.langStream[Fortran] = 0.97
	case GNU:
		switch {
		case arm && wide == machine.ISASVE:
			// The paper's conclusion: "the compiler could not leverage the
			// SVE unit in several cases, leaving the performance to be
			// delivered by the scalar core". GCC 8's SVE auto-vectorizer
			// handles textbook loops only.
			b.vectorISA[CompactLoop] = wide
			b.vectorEff[CompactLoop] = 0.45
			b.vectorISA[AppLoop] = machine.ISAScalar
			b.vectorEff[AppLoop] = 1.0 // of the *scalar* pipe
			// OpenMP-only STREAM: C about 10 % faster than Fortran (Fig. 2).
			b.langStream[C] = 1.0
			b.langStream[Fortran] = 0.91
		case arm:
			// NEON-only Armv8 (ThunderX2): GCC's Advanced-SIMD vectorizer
			// is a decade more mature than its SVE one and does reach real
			// application loops — the Dibona study's central contrast with
			// the A64FX toolchain experience.
			b.vectorISA[CompactLoop] = wide
			b.vectorEff[CompactLoop] = 0.80
			b.vectorISA[AppLoop] = wide
			b.vectorEff[AppLoop] = 0.30
			b.langStream[C] = 1.0
			b.langStream[Fortran] = 0.95
		default:
			// GNU on x86 vectorizes regular application loops about as
			// well as ICC (-march=skylake-avx512); Alya's 4.96x assembly
			// gap (Fig. 9) pins this against the A64FX scalar fallback.
			b.vectorISA[CompactLoop] = wide
			b.vectorEff[CompactLoop] = 0.80
			b.vectorISA[AppLoop] = wide
			b.vectorEff[AppLoop] = 0.195
			b.langStream[C] = 1.0
			b.langStream[Fortran] = 0.97
		}
	default:
		return nil, fmt.Errorf("toolchain: unknown vendor %q", c.Vendor)
	}

	// Irregular code never vectorizes anywhere.
	b.vectorISA[IrregularCode] = machine.ISAScalar
	b.vectorEff[IrregularCode] = 1.0

	return b, nil
}

// SustainedFlops returns the floating-point rate one core of m sustains on
// code of kind k produced by build b, composing the ISA choice, the
// vectorization efficiency and — for scalar fallback — the OoO factor.
func SustainedFlops(b *Build, m machine.Machine, k CodeKind) float64 {
	core := m.Node.Core
	isa := b.VectorISA(k)
	eff := b.VectorEfficiency(k)
	if isa == machine.ISAScalar {
		return float64(core.ScalarPeak()) * eff * core.OoOFactor
	}
	return float64(core.VectorPeak(isa, machine.Double)) * eff
}
