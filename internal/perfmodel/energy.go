package perfmodel

import (
	"clustereval/internal/machine"
	"clustereval/internal/units"
)

// EnergyToSolution integrates m's power model over a job of `nodes` nodes
// running for t under activity a, returning the whole-job per-component
// breakdown. Zero when the machine has no power layer or the job shape is
// degenerate — callers can treat a zero total as "no energy model".
func EnergyToSolution(m machine.Machine, nodes int, t units.Seconds, a machine.Activity) machine.EnergyBreakdown {
	if nodes <= 0 || t <= 0 || !m.Power.Defined() {
		return machine.EnergyBreakdown{}
	}
	return m.NodeEnergy(a, t).Scale(float64(nodes))
}

// EDP is the energy-delay product, the figure of merit that rewards both
// finishing fast and finishing frugally: joules times seconds.
func EDP(e units.Joules, t units.Seconds) float64 {
	if e <= 0 || t <= 0 {
		return 0
	}
	return float64(e) * float64(t)
}
