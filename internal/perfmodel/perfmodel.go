// Package perfmodel composes the machine, toolchain and interconnect models
// into execution-time predictions for full-scale runs. The DES-backed MPI
// runtime (internal/mpisim) prices programs message by message, which is
// exact but impractical for the paper's 9216-rank application runs; this
// package provides the closed-form layer used at paper scale:
//
//   - a roofline: a phase is compute-bound or memory-bound, whichever is
//     slower, with the sustained rates coming from the toolchain build
//     (vectorized vs scalar fallback) and the memory model;
//   - α-β collective costs with the textbook algorithm shapes;
//   - a load-imbalance model for partitioned workloads.
package perfmodel

import (
	"fmt"
	"math"

	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/toolchain"
	"clustereval/internal/units"
)

// Work describes the resource demands of one phase on one rank.
type Work struct {
	Flops float64            // floating-point operations
	Bytes float64            // DRAM traffic in bytes
	Kind  toolchain.CodeKind // how vectorizable the phase's loops are
}

// Exec binds a machine to a compiled build; it prices Work.
type Exec struct {
	Machine machine.Machine
	Build   *toolchain.Build
}

// NewExec compiles app with the given compiler for m and returns the
// executable model.
func NewExec(m machine.Machine, c toolchain.Compiler, app string) (*Exec, error) {
	b, err := toolchain.Compile(c, m, app)
	if err != nil {
		return nil, err
	}
	return &Exec{Machine: m, Build: b}, nil
}

// CoreFlops returns the sustained per-core floating-point rate for loops of
// kind k under this build.
func (e *Exec) CoreFlops(k toolchain.CodeKind) units.FlopsPerSecond {
	return units.FlopsPerSecond(toolchain.SustainedFlops(e.Build, e.Machine, k))
}

// NodeStreamBW returns the aggregate sustainable memory bandwidth of one
// node under MPI-style placement (ranks pinned, memory local).
func (e *Exec) NodeStreamBW() units.BytesPerSecond {
	var sum float64
	for _, d := range e.Machine.Node.Domains {
		sum += float64(d.PeakBW) * d.StreamEff
	}
	return units.BytesPerSecond(sum)
}

// Time prices one phase executing on `cores` cores of a node (the cores of
// one rank), sharing the node's memory bandwidth proportionally. The
// roofline rule applies: the phase takes the maximum of its compute time
// and its memory time.
func (e *Exec) Time(w Work, cores int) units.Seconds {
	if cores <= 0 {
		panic(fmt.Sprintf("perfmodel: non-positive core count %d", cores))
	}
	if w.Flops < 0 || w.Bytes < 0 {
		panic("perfmodel: negative work")
	}
	nodeCores := e.Machine.Node.Cores()
	if cores > nodeCores {
		cores = nodeCores
	}
	flopRate := float64(e.CoreFlops(w.Kind)) * float64(cores)
	bwShare := float64(e.NodeStreamBW()) * float64(cores) / float64(nodeCores)

	tc := 0.0
	if w.Flops > 0 {
		tc = w.Flops / flopRate
	}
	tm := 0.0
	if w.Bytes > 0 {
		tm = w.Bytes / bwShare
	}
	return units.Seconds(math.Max(tc, tm))
}

// Bound reports whether work w on this machine/build is memory-bound.
func (e *Exec) MemoryBound(w Work, cores int) bool {
	nodeCores := e.Machine.Node.Cores()
	if cores > nodeCores {
		cores = nodeCores
	}
	flopRate := float64(e.CoreFlops(w.Kind)) * float64(cores)
	bwShare := float64(e.NodeStreamBW()) * float64(cores) / float64(nodeCores)
	return w.Bytes/bwShare > w.Flops/flopRate
}

// CommCost is the α-β closed-form communication model for one allocation.
type CommCost struct {
	Alpha units.Seconds // representative one-way point-to-point latency
	Beta  float64       // seconds per byte on one link
}

// NewCommCost derives α and β from a fabric and the set of allocated nodes:
// α is the mean pairwise latency over the allocation (sampled exhaustively
// up to 64 nodes, then on a deterministic stride), β is 1/link-peak.
func NewCommCost(f *interconnect.Fabric, nodes []int) CommCost {
	if len(nodes) == 0 {
		panic("perfmodel: empty allocation")
	}
	stride := 1
	if len(nodes) > 64 {
		stride = len(nodes) / 64
	}
	var sum float64
	var count int
	for i := 0; i < len(nodes); i += stride {
		for j := i + stride; j < len(nodes); j += stride {
			sum += float64(f.Latency(nodes[i], nodes[j]))
			count++
		}
	}
	alpha := f.Net.BaseLatency
	if count > 0 {
		alpha = units.Seconds(sum / float64(count))
	}
	return CommCost{Alpha: alpha, Beta: 1 / float64(f.Net.LinkPeak)}
}

// PtToPt returns the one-way cost of a b-byte message.
func (c CommCost) PtToPt(b units.Bytes) units.Seconds {
	return c.Alpha + units.Seconds(float64(b)*c.Beta)
}

// log2ceil returns ceil(log2(p)) with log2ceil(1) = 0.
func log2ceil(p int) float64 {
	if p <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(p)))
}

// Allreduce prices a recursive-doubling allreduce of b bytes over p ranks.
func (c CommCost) Allreduce(p int, b units.Bytes) units.Seconds {
	return units.Seconds(log2ceil(p)) * c.PtToPt(b)
}

// Bcast prices a binomial-tree broadcast.
func (c CommCost) Bcast(p int, b units.Bytes) units.Seconds {
	return units.Seconds(log2ceil(p)) * c.PtToPt(b)
}

// Allgather prices a ring allgather of per-rank blocks of b bytes.
func (c CommCost) Allgather(p int, b units.Bytes) units.Seconds {
	if p <= 1 {
		return 0
	}
	return units.Seconds(float64(p-1)) * c.PtToPt(b)
}

// Alltoall prices a pairwise-exchange all-to-all with per-pair blocks of b
// bytes.
func (c CommCost) Alltoall(p int, b units.Bytes) units.Seconds {
	if p <= 1 {
		return 0
	}
	return units.Seconds(float64(p-1)) * c.PtToPt(b)
}

// HaloExchange prices a nearest-neighbour exchange with `neighbors` faces of
// b bytes each, assuming sends overlap but each message pays full cost in
// sequence per direction pair (the conservative non-overlapped model real
// stencil codes usually exhibit).
func (c CommCost) HaloExchange(neighbors int, b units.Bytes) units.Seconds {
	if neighbors <= 0 {
		return 0
	}
	return units.Seconds(float64(neighbors)) * c.PtToPt(b)
}

// Barrier prices a dissemination barrier.
func (c CommCost) Barrier(p int) units.Seconds {
	return units.Seconds(log2ceil(p)) * c.PtToPt(8)
}

// Imbalance returns the expected max-over-mean ratio when a workload is
// split into p parts whose sizes vary with coefficient of variation sigma
// (extreme-value approximation: 1 + sigma*sqrt(2 ln p)).
func Imbalance(p int, sigma float64) float64 {
	if p <= 1 || sigma <= 0 {
		return 1
	}
	return 1 + sigma*math.Sqrt(2*math.Log(float64(p)))
}

// Amdahl returns the speedup of p workers when fraction serial of the work
// cannot parallelize.
func Amdahl(serial float64, p int) float64 {
	if p < 1 {
		panic("perfmodel: worker count must be >= 1")
	}
	if serial < 0 || serial > 1 {
		panic("perfmodel: serial fraction out of [0,1]")
	}
	return 1 / (serial + (1-serial)/float64(p))
}
