package perfmodel

import (
	"math"
	"testing"

	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/toolchain"
	"clustereval/internal/units"
)

func execArm(t *testing.T) *Exec {
	t.Helper()
	e, err := NewExec(machine.CTEArm(), toolchain.GNUArmSVE(), "WRF")
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func execMN4(t *testing.T) *Exec {
	t.Helper()
	e, err := NewExec(machine.MareNostrum4(), toolchain.IntelMN4(), "WRF")
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewExecPropagatesCompileFailure(t *testing.T) {
	_, err := NewExec(machine.CTEArm(), toolchain.FujitsuArm("1.2.26b"), "Alya")
	if err == nil {
		t.Error("Fujitsu Alya build should fail")
	}
}

func TestComputeBoundTime(t *testing.T) {
	e := execMN4(t)
	// Pure compute: 1 GFlop of app-loop work on one core.
	w := Work{Flops: 1e9, Kind: toolchain.AppLoop}
	got := float64(e.Time(w, 1))
	want := 1e9 / float64(e.CoreFlops(toolchain.AppLoop))
	if math.Abs(got-want) > 1e-12*want {
		t.Errorf("compute time = %v, want %v", got, want)
	}
}

func TestMemoryBoundTime(t *testing.T) {
	e := execArm(t)
	// Pure streaming: 1 GB over a full node.
	w := Work{Bytes: 1e9, Kind: toolchain.RegularLoop}
	got := float64(e.Time(w, 48))
	want := 1e9 / float64(e.NodeStreamBW())
	if math.Abs(got-want) > 1e-12*want {
		t.Errorf("memory time = %v, want %v", got, want)
	}
}

func TestRooflineTakesMax(t *testing.T) {
	e := execMN4(t)
	w := Work{Flops: 1e9, Bytes: 1e9, Kind: toolchain.AppLoop}
	combined := e.Time(w, 4)
	onlyC := e.Time(Work{Flops: 1e9, Kind: toolchain.AppLoop}, 4)
	onlyM := e.Time(Work{Bytes: 1e9, Kind: toolchain.AppLoop}, 4)
	if float64(combined) < math.Max(float64(onlyC), float64(onlyM))-1e-15 {
		t.Error("roofline lower bound violated")
	}
}

func TestScalarFallbackGap(t *testing.T) {
	// The paper's core finding: compute-bound app loops run 3-5x slower on
	// CTE-Arm (GNU scalar fallback + weak OoO) than on MN4 (Intel AVX-512).
	arm, mn4 := execArm(t), execMN4(t)
	w := Work{Flops: 1e12, Kind: toolchain.AppLoop}
	tArm := float64(arm.Time(w, 48))
	tMN4 := float64(mn4.Time(w, 48))
	ratio := tArm / tMN4
	if ratio < 3 || ratio > 20 {
		t.Errorf("app-loop node ratio = %.2f, want in [3, 20]", ratio)
	}
}

func TestMemoryBoundFavorsA64FX(t *testing.T) {
	// HBM vs DDR4: memory-bound phases must run ~3-4x faster per node on
	// CTE-Arm (the paper's Alya Solver observation).
	arm, mn4 := execArm(t), execMN4(t)
	w := Work{Bytes: 1e12, Kind: toolchain.AppLoop}
	tArm := float64(arm.Time(w, 48))
	tMN4 := float64(mn4.Time(w, 48))
	if r := tMN4 / tArm; r < 3 || r > 5.5 {
		t.Errorf("memory-bound ratio MN4/CTE = %.2f, want ~4.3", r)
	}
}

func TestMemoryBoundPredicate(t *testing.T) {
	e := execArm(t)
	if e.MemoryBound(Work{Flops: 1e12, Bytes: 1, Kind: toolchain.AppLoop}, 48) {
		t.Error("flop-heavy work classified memory-bound")
	}
	if !e.MemoryBound(Work{Flops: 1, Bytes: 1e12, Kind: toolchain.AppLoop}, 48) {
		t.Error("byte-heavy work classified compute-bound")
	}
}

func TestTimePanics(t *testing.T) {
	e := execArm(t)
	for _, f := range []func(){
		func() { e.Time(Work{Flops: 1}, 0) },
		func() { e.Time(Work{Flops: -1}, 1) },
		func() { e.Time(Work{Bytes: -1}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCoresClampedToNode(t *testing.T) {
	e := execArm(t)
	w := Work{Flops: 1e9, Kind: toolchain.AppLoop}
	if e.Time(w, 48) != e.Time(w, 1000) {
		t.Error("core count should clamp at node size")
	}
}

func commCost(t *testing.T, nodes int) CommCost {
	t.Helper()
	f, err := interconnect.NewTofuD(machine.CTEArm(), 192)
	if err != nil {
		t.Fatal(err)
	}
	alloc := make([]int, nodes)
	for i := range alloc {
		alloc[i] = i
	}
	return NewCommCost(f, alloc)
}

func TestCommCostAlphaReasonable(t *testing.T) {
	c := commCost(t, 48)
	// α must be within the fabric's physical latency range.
	if c.Alpha < units.Seconds(0.49e-6) || c.Alpha > units.Seconds(2e-6) {
		t.Errorf("alpha = %v out of TofuD range", c.Alpha)
	}
	// β is 1/6.8GB/s.
	if math.Abs(c.Beta-1/(6.8e9)) > 1e-15 {
		t.Errorf("beta = %v", c.Beta)
	}
}

func TestCommCostGrowsWithAllocation(t *testing.T) {
	small := commCost(t, 12)
	large := commCost(t, 192)
	if large.Alpha <= small.Alpha {
		t.Errorf("larger allocation should have larger mean latency: %v vs %v",
			small.Alpha, large.Alpha)
	}
}

func TestCollectiveShapes(t *testing.T) {
	c := CommCost{Alpha: 1e-6, Beta: 1e-9}
	// Allreduce scales with log2(p).
	if got := c.Allreduce(8, 8); math.Abs(float64(got)/float64(c.PtToPt(8))-3) > 1e-9 {
		t.Errorf("allreduce(8) = %v, want 3 rounds", got)
	}
	if c.Allreduce(1, 8) != 0 {
		t.Error("allreduce of one rank should be free")
	}
	// Non-power-of-two takes ceil.
	if got := c.Allreduce(9, 8); math.Abs(float64(got)/float64(c.PtToPt(8))-4) > 1e-9 {
		t.Errorf("allreduce(9) = %v, want 4 rounds", got)
	}
	// Alltoall and allgather scale with p-1.
	if got := c.Alltoall(16, 100); math.Abs(float64(got)/float64(c.PtToPt(100))-15) > 1e-9 {
		t.Errorf("alltoall(16) = %v", got)
	}
	if got := c.Allgather(4, 100); math.Abs(float64(got)/float64(c.PtToPt(100))-3) > 1e-9 {
		t.Errorf("allgather(4) = %v", got)
	}
	if c.Alltoall(1, 100) != 0 || c.Allgather(1, 100) != 0 {
		t.Error("single-rank collectives should be free")
	}
	// Halo exchange is linear in face count.
	if got := c.HaloExchange(6, 100); math.Abs(float64(got)-6*float64(c.PtToPt(100))) > 1e-18 {
		t.Errorf("halo = %v", got)
	}
	if c.HaloExchange(0, 100) != 0 {
		t.Error("no neighbours should be free")
	}
	if got := c.Barrier(32); math.Abs(float64(got)-5*float64(c.PtToPt(8))) > 1e-18 {
		t.Errorf("barrier = %v", got)
	}
}

func TestNewCommCostPanicsOnEmpty(t *testing.T) {
	f, _ := interconnect.NewTofuD(machine.CTEArm(), 192)
	defer func() {
		if recover() == nil {
			t.Error("empty allocation accepted")
		}
	}()
	NewCommCost(f, nil)
}

func TestImbalance(t *testing.T) {
	if Imbalance(1, 0.5) != 1 {
		t.Error("single part has no imbalance")
	}
	if Imbalance(100, 0) != 1 {
		t.Error("zero sigma has no imbalance")
	}
	i16 := Imbalance(16, 0.1)
	i256 := Imbalance(256, 0.1)
	if !(i256 > i16 && i16 > 1) {
		t.Errorf("imbalance not growing: %v %v", i16, i256)
	}
	// Against the closed form.
	want := 1 + 0.1*math.Sqrt(2*math.Log(16))
	if math.Abs(i16-want) > 1e-12 {
		t.Errorf("imbalance(16, 0.1) = %v, want %v", i16, want)
	}
}

func TestAmdahl(t *testing.T) {
	if Amdahl(0, 16) != 16 {
		t.Error("fully parallel should scale linearly")
	}
	if Amdahl(1, 16) != 1 {
		t.Error("fully serial should not scale")
	}
	got := Amdahl(0.1, 10)
	want := 1 / (0.1 + 0.9/10)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("amdahl = %v, want %v", got, want)
	}
	for _, f := range []func(){
		func() { Amdahl(-0.1, 4) },
		func() { Amdahl(1.1, 4) },
		func() { Amdahl(0.5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
