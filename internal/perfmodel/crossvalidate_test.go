package perfmodel

import (
	"testing"

	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/mpisim"
	"clustereval/internal/units"
)

// The closed-form collective costs exist so paper-scale runs need not spawn
// 9216 DES processes. These tests cross-validate them against the actual
// simulated-MPI collectives on small worlds: the closed form must track the
// DES measurement within a factor of two across sizes and rank counts
// (the algorithms match; the closed form ignores pipelining, software
// overheads and jitter).

func desWorld(t *testing.T, ranks int) (*mpisim.World, CommCost) {
	t.Helper()
	fab, err := interconnect.NewTofuD(machine.CTEArm(), 24)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpisim.NewWorld(fab, ranks, 1) // one rank per node
	if err != nil {
		t.Fatal(err)
	}
	alloc := make([]int, ranks)
	for i := range alloc {
		alloc[i] = i
	}
	return w, NewCommCost(fab, alloc)
}

func within(t *testing.T, name string, measured, predicted units.Seconds, factor float64) {
	t.Helper()
	lo, hi := float64(predicted)/factor, float64(predicted)*factor
	if float64(measured) < lo || float64(measured) > hi {
		t.Errorf("%s: DES %v vs closed form %v (outside %gx band)",
			name, measured, predicted, factor)
	}
}

func TestAllreduceCostCrossValidation(t *testing.T) {
	for _, ranks := range []int{4, 8, 16} {
		for _, bytesPer := range []units.Bytes{8, 4096} {
			w, cost := desWorld(t, ranks)
			n := int(bytesPer / 8)
			err := w.Run(func(c *mpisim.Comm) {
				data := make([]float64, n)
				c.Allreduce(data, mpisim.OpSum, 8)
			})
			if err != nil {
				t.Fatal(err)
			}
			within(t, "allreduce", w.Elapsed(), cost.Allreduce(ranks, bytesPer), 2.6)
		}
	}
}

func TestBcastCostCrossValidation(t *testing.T) {
	for _, ranks := range []int{4, 8, 16} {
		w, cost := desWorld(t, ranks)
		payload := make([]float64, 512)
		err := w.Run(func(c *mpisim.Comm) {
			var p interface{}
			if c.Rank() == 0 {
				p = payload
			}
			c.Bcast(0, 4096, p)
		})
		if err != nil {
			t.Fatal(err)
		}
		within(t, "bcast", w.Elapsed(), cost.Bcast(ranks, 4096), 2.6)
	}
}

func TestBarrierCostCrossValidation(t *testing.T) {
	for _, ranks := range []int{4, 8, 16} {
		w, cost := desWorld(t, ranks)
		err := w.Run(func(c *mpisim.Comm) { c.Barrier() })
		if err != nil {
			t.Fatal(err)
		}
		within(t, "barrier", w.Elapsed(), cost.Barrier(ranks), 2.6)
	}
}

func TestAlltoallCostCrossValidation(t *testing.T) {
	for _, ranks := range []int{4, 8} {
		w, cost := desWorld(t, ranks)
		err := w.Run(func(c *mpisim.Comm) {
			blocks := make([][]float64, c.Size())
			for i := range blocks {
				blocks[i] = make([]float64, 128)
			}
			c.Alltoall(blocks, 8)
		})
		if err != nil {
			t.Fatal(err)
		}
		within(t, "alltoall", w.Elapsed(), cost.Alltoall(ranks, 1024), 2.6)
	}
}

func TestPtToPtCostCrossValidation(t *testing.T) {
	for _, size := range []units.Bytes{256, 64 * 1024, 1 << 20} {
		w, cost := desWorld(t, 2)
		err := w.Run(func(c *mpisim.Comm) {
			if c.Rank() == 0 {
				c.Send(1, 0, size, nil)
			} else {
				c.Recv(0, 0)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		within(t, "pt2pt", w.Elapsed(), cost.PtToPt(size), 2.6)
	}
}
