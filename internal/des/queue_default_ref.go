//go:build desrefqueue

package des

// newDefaultQueue under the desrefqueue build tag pins every engine to the
// reference container/heap scheduler (internal/des/refqueue): the
// build-time switch the differential harness uses to run the whole test
// suite on the pre-rewrite scheduler.
func newDefaultQueue() eventQueue { return newRefQueue() }
