package des

import (
	"fmt"
	"testing"

	"clustereval/internal/units"
	"clustereval/internal/xrand"
)

// runScripted executes a seeded synthetic workload on eng and returns the
// event trace: one line per observable step, in execution order. Every
// process draws from its own generator (seeded by workload seed and process
// index, not by execution order), so two engines that schedule identically
// produce byte-identical traces — and any divergence in the queue
// discipline shows up as a trace diff, not a flaky hang.
//
// The workload deliberately crosses every scheduling feature: quantized
// delays (equal-timestamp batches), mid-run spawns, a shared Cond with
// signal and broadcast wakers, and a capacity-limited Resource.
func runScripted(t *testing.T, eng *Engine, seed uint64) []string {
	t.Helper()
	var trace []string
	log := func(p *Proc, what string) {
		trace = append(trace, fmt.Sprintf("t=%.6f %s %s", float64(p.Now()), p.Name, what))
	}
	cond := eng.NewCond("diff")
	res := eng.NewResource("diff", 2)
	const nProcs = 8

	var spawnWorker func(name string, r *xrand.Rand, depth int)
	spawnWorker = func(name string, r *xrand.Rand, depth int) {
		eng.Spawn(name, func(p *Proc) {
			steps := 4 + r.Intn(8)
			for s := 0; s < steps; s++ {
				switch r.Intn(5) {
				case 0, 1:
					d := units.Seconds(float64(r.Intn(10)) * 0.25)
					p.Delay(d)
					log(p, fmt.Sprintf("delay[%d]", s))
				case 2:
					res.Acquire(p)
					log(p, "acquired")
					p.Delay(units.Seconds(float64(1+r.Intn(4)) * 0.25))
					res.Release()
					log(p, "released")
				case 3:
					if depth < 2 && r.Intn(2) == 0 {
						child := name + "." + string(rune('a'+s))
						spawnWorker(child, xrand.New(xrand.MixN(seed, uint64(depth+1), uint64(s))), depth+1)
						log(p, "spawned "+child)
					} else {
						p.Delay(0.5)
						log(p, "delay-alt")
					}
				case 4:
					cond.Wait(p)
					log(p, "woken")
				}
			}
			log(p, "done")
		})
	}
	for i := 0; i < nProcs; i++ {
		spawnWorker(fmt.Sprintf("w%d", i), xrand.New(xrand.MixN(seed, uint64(i))), 0)
	}
	// The waker keeps Cond waiters from deadlocking: it alternates Signal
	// and Broadcast on a fixed cadence, then broadcasts until nobody waits.
	eng.Spawn("waker", func(p *Proc) {
		for tick := 0; tick < 400; tick++ {
			p.Delay(0.25)
			if tick%3 == 0 {
				cond.Broadcast()
			} else {
				cond.Signal()
			}
		}
		for cond.NumWaiters() > 0 {
			cond.Broadcast()
			p.Delay(0.25)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return trace
}

// TestDifferentialEngines is the engine-level half of the differential
// harness: the calendar-queue fast path must schedule bit-identically to
// the reference heap on seeded workloads covering delays, equal-time
// batches, mid-run spawns, Cond wake-ups, and Resource contention.
func TestDifferentialEngines(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			fast := runScripted(t, New(), seed)
			ref := runScripted(t, NewReference(), seed)
			if len(fast) != len(ref) {
				t.Fatalf("trace length: fast %d, reference %d", len(fast), len(ref))
			}
			for i := range ref {
				if fast[i] != ref[i] {
					t.Fatalf("trace diverges at step %d:\n  fast: %s\n  ref:  %s", i, fast[i], ref[i])
				}
			}
			if len(fast) == 0 {
				t.Fatal("empty trace: workload did nothing")
			}
		})
	}
}

// TestDifferentialEnginesClockAgree pins that both engines also agree on
// the final clock, not just the step order.
func TestDifferentialEnginesClockAgree(t *testing.T) {
	fast, ref := New(), NewReference()
	runScripted(t, fast, 42)
	runScripted(t, ref, 42)
	if fast.Now() != ref.Now() {
		t.Fatalf("final clock: fast %v, reference %v", fast.Now(), ref.Now())
	}
}

// TestCondSignalBoundedGrowth is the regression test for the Signal
// slice-shift fix: churning many signals through a Cond must not grow the
// waiter backing array beyond a small multiple of the peak concurrent
// waiter count. (The old `waiters = waiters[1:]` re-slice let append keep
// shift-copying into an array that crept along its backing storage.)
func TestCondSignalBoundedGrowth(t *testing.T) {
	e := New()
	c := e.NewCond("churn")
	const waiters = 4
	const rounds = 2000
	for i := 0; i < waiters; i++ {
		e.Spawn(fmt.Sprintf("waiter%d", i), func(p *Proc) {
			for r := 0; r < rounds; r++ {
				c.Wait(p)
			}
		})
	}
	e.Spawn("signaller", func(p *Proc) {
		for r := 0; r < rounds; r++ {
			p.Delay(1)
			for i := 0; i < waiters; i++ {
				c.Signal()
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.waitersCap(); got > 4*waiters {
		t.Fatalf("waiter backing array grew to %d after %d signal rounds; want <= %d (peak %d waiters)",
			got, rounds, 4*waiters, waiters)
	}
}

// TestWorkerReuse pins the proc-pool contract: goroutines parked after one
// engine run are reused by the next, instead of every Spawn starting a
// fresh goroutine.
func TestWorkerReuse(t *testing.T) {
	const procs = 64
	runOnce := func() {
		e := New()
		for i := 0; i < procs; i++ {
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) { p.Delay(1) })
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	runOnce()
	after1 := idleWorkers()
	if after1 < procs {
		t.Fatalf("idle workers after first run = %d, want >= %d (finished procs must park)", after1, procs)
	}
	for i := 0; i < 5; i++ {
		runOnce()
	}
	if after6 := idleWorkers(); after6 > after1 {
		t.Fatalf("idle workers grew from %d to %d across reruns: pool is not reusing parked goroutines", after1, after6)
	}
}
