//go:build !desrefqueue

package des

// newDefaultQueue selects the engine's event queue: the calendar-queue
// fast path by default; build with -tags desrefqueue to pin the whole
// binary to the reference heap scheduler instead (the differential CI job
// runs the des tests both ways).
func newDefaultQueue() eventQueue { return newFastQueue() }
