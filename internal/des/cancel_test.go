package des

import (
	"context"
	"errors"
	"testing"
)

func TestRunContextPreCancelled(t *testing.T) {
	e := New()
	ran := false
	e.Spawn("a", func(p *Proc) {
		ran = true
		p.Delay(1)
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := e.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext(cancelled) = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("process body ran despite pre-cancelled context")
	}
	if e.Now() != 0 {
		t.Errorf("clock advanced to %v on an aborted run", e.Now())
	}
}

// TestRunContextAbortsMidRun cancels from inside the simulation: the
// engine must stop within one event step, leaving the virtual clock at
// the abort point rather than simulating the remaining thousand seconds.
func TestRunContextAbortsMidRun(t *testing.T) {
	e := New()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e.Spawn("long", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			p.Delay(1)
		}
	})
	e.Spawn("canceller", func(p *Proc) {
		p.Delay(5)
		cancel()
	})
	err := e.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if e.Now() < 5 || e.Now() > 7 {
		t.Errorf("aborted at t=%v, want just past the cancel at t=5", e.Now())
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	build := func() *Engine {
		e := New()
		e.Spawn("a", func(p *Proc) { p.Delay(2); p.Delay(3) })
		return e
	}
	e1, e2 := build(), build()
	if err := e1.Run(); err != nil {
		t.Fatal(err)
	}
	if err := e2.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e1.Now() != e2.Now() {
		t.Errorf("Run ends at %v, RunContext at %v", e1.Now(), e2.Now())
	}
}
