package des

import (
	"clustereval/internal/des/calq"
	"clustereval/internal/des/refqueue"
	"clustereval/internal/units"
)

// fastQueue adapts the generic calendar queue (internal/des/calq) to the
// engine's eventQueue. The scratch slice is reused across batch pops so
// steady-state delivery allocates nothing.
type fastQueue struct {
	q       *calq.Queue[*Proc]
	scratch []calq.Item[*Proc]
}

func newFastQueue() eventQueue { return &fastQueue{q: calq.New[*Proc]()} }

func (f *fastQueue) Len() int      { return f.q.Len() }
func (f *fastQueue) Push(ev event) { f.q.Push(float64(ev.at), ev.seq, ev.proc) }
func (f *fastQueue) PopBatch(dst []event) []event {
	f.scratch = f.q.PopBatch(f.scratch[:0])
	for i := range f.scratch {
		it := &f.scratch[i]
		dst = append(dst, event{at: units.Seconds(it.At), seq: it.Seq, proc: it.V})
		it.V = nil
	}
	return dst
}

// heapQueue adapts the reference heap (internal/des/refqueue), the
// pre-rewrite scheduler retained for differential testing.
type heapQueue struct {
	q       *refqueue.Queue[*Proc]
	scratch []refqueue.Item[*Proc]
}

func newRefQueue() eventQueue { return &heapQueue{q: refqueue.New[*Proc]()} }

func (h *heapQueue) Len() int      { return h.q.Len() }
func (h *heapQueue) Push(ev event) { h.q.Push(float64(ev.at), ev.seq, ev.proc) }
func (h *heapQueue) PopBatch(dst []event) []event {
	h.scratch = h.q.PopBatch(h.scratch[:0])
	for i := range h.scratch {
		it := &h.scratch[i]
		dst = append(dst, event{at: units.Seconds(it.At), seq: it.Seq, proc: it.V})
		it.V = nil
	}
	return dst
}
