package calq

import (
	"sort"
	"testing"

	"clustereval/internal/xrand"
)

// oracle is the trivially-correct model: a sorted slice.
type oracle struct{ items []Item[int] }

func (o *oracle) push(at float64, seq int64, v int) {
	o.items = append(o.items, Item[int]{At: at, Seq: seq, V: v})
	sort.Slice(o.items, func(i, j int) bool { return less(o.items[i], o.items[j]) })
}

func (o *oracle) popBatch() []Item[int] {
	if len(o.items) == 0 {
		return nil
	}
	at := o.items[0].At
	k := 1
	for k < len(o.items) && o.items[k].At == at {
		k++
	}
	out := append([]Item[int](nil), o.items[:k]...)
	o.items = append(o.items[:0], o.items[k:]...)
	return out
}

// drive runs an op sequence against queue and oracle, failing on the first
// divergence. ops: push amounts come from next(); a negative draw pops.
func drive(t *testing.T, ops int, nextAt func(i int) (at float64, pop bool)) {
	t.Helper()
	q := New[int]()
	o := &oracle{}
	var seq int64
	var scratch []Item[int]
	for i := 0; i < ops; i++ {
		at, pop := nextAt(i)
		if pop {
			scratch = q.PopBatch(scratch[:0])
			want := o.popBatch()
			if len(scratch) != len(want) {
				t.Fatalf("op %d: batch len %d, oracle %d (oracle %v, got %v)", i, len(scratch), len(want), want, scratch)
			}
			for j := range want {
				if scratch[j] != want[j] {
					t.Fatalf("op %d item %d: got %+v, oracle %+v", i, j, scratch[j], want[j])
				}
			}
			continue
		}
		seq++
		q.Push(at, seq, int(seq))
		o.push(at, seq, int(seq))
		if q.Len() != len(o.items) {
			t.Fatalf("op %d: len %d, oracle %d", i, q.Len(), len(o.items))
		}
	}
	// Drain: every remaining batch must match.
	for q.Len() > 0 {
		scratch = q.PopBatch(scratch[:0])
		want := o.popBatch()
		if len(scratch) != len(want) {
			t.Fatalf("drain: batch len %d, oracle %d", len(scratch), len(want))
		}
		for j := range want {
			if scratch[j] != want[j] {
				t.Fatalf("drain item %d: got %+v, oracle %+v", j, scratch[j], want[j])
			}
		}
	}
	if len(o.items) != 0 {
		t.Fatalf("oracle still holds %d items after drain", len(o.items))
	}
}

// TestOracleRandom cross-checks random push/pop interleavings, with
// quantized times so equal-timestamp batches actually occur. The
// generator deliberately includes pushes behind the last popped time —
// the out-of-contract input the queue promises to survive.
func TestOracleRandom(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		r := xrand.New(seed)
		clock := 0.0
		name := "seed" + string(rune('A'+int(seed)))
		t.Run(name, func(t *testing.T) {
			drive(t, 2000, func(i int) (float64, bool) {
				if r.Float64() < 0.4 {
					return 0, true
				}
				// Quantize to multiples of 0.01 across several decades of
				// scale so batches collide and widths must adapt.
				scale := []float64{0.01, 0.5, 40}[r.Intn(3)]
				at := clock + float64(r.Intn(40))*scale
				if r.Intn(8) == 0 {
					clock = at // advance the floor occasionally
				}
				return at, false
			})
		})
	}
}

// TestOracleBurstsAndGaps stresses the resize paths: dense equal-time
// bursts, then a jump years ahead, then a drain.
func TestOracleBurstsAndGaps(t *testing.T) {
	r := xrand.New(7)
	base := 0.0
	drive(t, 5000, func(i int) (float64, bool) {
		switch {
		case i%97 == 96:
			base += 1e6 // far jump: direct-search territory
			return 0, true
		case r.Intn(3) == 0:
			return 0, true
		default:
			return base + float64(r.Intn(5))*1e-6, false
		}
	})
}

// TestOutOfContractPush pins the robustness promise: pushing a time
// earlier than the last pop re-anchors instead of losing or reordering
// items relative to the total order of what remains.
func TestOutOfContractPush(t *testing.T) {
	q := New[int]()
	q.Push(100, 1, 1)
	var got []Item[int]
	got = q.PopBatch(got[:0])
	if len(got) != 1 || got[0].At != 100 {
		t.Fatalf("pop = %v", got)
	}
	q.Push(5, 2, 2) // behind the last pop
	q.Push(50, 3, 3)
	got = q.PopBatch(got[:0])
	if len(got) != 1 || got[0].At != 5 {
		t.Fatalf("behind-cursor item lost: pop = %v", got)
	}
	got = q.PopBatch(got[:0])
	if len(got) != 1 || got[0].At != 50 {
		t.Fatalf("pop = %v", got)
	}
}

// TestEqualTimeFIFO pins the seq tie-break across a resize.
func TestEqualTimeFIFO(t *testing.T) {
	q := New[int]()
	for i := 0; i < 100; i++ { // forces several grows
		q.Push(1.5, int64(i), i)
	}
	got := q.PopBatch(nil)
	if len(got) != 100 {
		t.Fatalf("batch size %d, want 100", len(got))
	}
	for i, it := range got {
		if it.Seq != int64(i) {
			t.Fatalf("batch[%d].Seq = %d, want %d (FIFO broken)", i, it.Seq, i)
		}
	}
}
