// Package calq implements a calendar queue (R. Brown, CACM 31(10), 1988):
// the priority queue behind the DES engine's fast path. Items are totally
// ordered by (At, Seq) — virtual time first, then insertion sequence — so
// equal-time items pop FIFO, the invariant bit-reproducible simulation
// rests on.
//
// Items hash into width-sized time buckets arranged in a circular "year".
// A pop scans forward from the bucket holding the last popped time and
// takes the earliest item whose time falls inside the scan's current
// one-bucket window; when a whole year passes without a hit (the next
// event is far in the future) a direct search over all buckets re-anchors
// the scan. Bucket count doubles or halves with the live population and
// the bucket width is re-estimated from sampled inter-event gaps on every
// resize, so bucket chains stay O(1) for both bursty and uniform event
// streams. In steady state (fixed population, as in an mpisim world where
// each rank owns one pending wake-up) pushes and pops allocate nothing.
//
// The queue tolerates arbitrary inputs — pushing a time earlier than the
// last pop re-anchors the scan rather than losing the item — but the DES
// engine never does that: schedule times are >= the current clock.
package calq

import (
	"math"
	"sort"
)

// Item is one queued entry: a payload V ordered by (At, Seq).
type Item[V any] struct {
	At  float64
	Seq int64
	V   V
}

// less is the queue's total order: time, then insertion sequence.
func less[V any](a, b Item[V]) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.Seq < b.Seq
}

const minBuckets = 4

// maxSlot caps the slot index so slot arithmetic stays in the exact
// integer range of float64. Times beyond maxSlot*width all share the last
// slot — still correctly ordered within it, just without O(1) spreading.
const maxSlot = float64(1 << 52)

// Queue is a calendar queue. The zero value is not ready; use New.
type Queue[V any] struct {
	buckets [][]Item[V]
	width   float64 // virtual-time width of one slot
	n       int     // live items
	cur     int     // bucket the next pop scans first
	curSlot float64 // slot the next pop scans first (integer-valued)
	lastAt  float64 // time of the last pop (or earliest known item)
}

// New returns an empty queue.
func New[V any]() *Queue[V] {
	return &Queue[V]{buckets: make([][]Item[V], minBuckets), width: 1}
}

// Len returns the number of queued items.
func (q *Queue[V]) Len() int { return q.n }

// slot maps a time onto its integer slot index, floor(at/width), clamped
// into [0, maxSlot]. Both the bucket mapping and the pop scan derive from
// this one function, so they can never disagree about which slot a time
// belongs to — the float-rounding hazard of computing windows and bucket
// indices through separate arithmetic.
func (q *Queue[V]) slot(at float64) float64 {
	s := math.Floor(at / q.width)
	if !(s > 0) { // negative times (and NaN) collapse into slot 0
		return 0
	}
	if s > maxSlot {
		return maxSlot
	}
	return s
}

// bucketOf maps an integer slot onto its bucket in the circular year.
// The bucket count is always a power of two (minBuckets, then doubled or
// halved), so the modulo is a mask; s is integer-valued and <= maxSlot,
// so the int64 conversion is exact.
func (q *Queue[V]) bucketOf(s float64) int {
	return int(int64(s) & int64(len(q.buckets)-1))
}

// anchor points the pop scan at the slot containing at.
func (q *Queue[V]) anchor(at float64) {
	q.curSlot = q.slot(at)
	q.cur = q.bucketOf(q.curSlot)
}

// Push inserts an item.
func (q *Queue[V]) Push(at float64, seq int64, v V) {
	if q.n == 0 || at < q.lastAt {
		// First item, or an out-of-contract insert behind the scan
		// position: re-anchor so the scan cannot miss it.
		q.lastAt = at
		q.anchor(at)
	}
	i := q.bucketOf(q.slot(at))
	q.buckets[i] = insertSorted(q.buckets[i], Item[V]{At: at, Seq: seq, V: v})
	q.n++
	if q.n > 2*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
}

// insertSorted places it into bucket b keeping (At, Seq) ascending order.
// The common DES case — times arriving in increasing order — appends.
func insertSorted[V any](b []Item[V], it Item[V]) []Item[V] {
	n := len(b)
	if n == 0 || !less(it, b[n-1]) {
		return append(b, it)
	}
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if less(b[mid], it) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	var zero Item[V]
	b = append(b, zero)
	copy(b[lo+1:], b[lo:])
	b[lo] = it
	return b
}

// PopBatch removes every item sharing the earliest time and appends them
// to dst in Seq order. An empty queue returns dst unchanged.
func (q *Queue[V]) PopBatch(dst []Item[V]) []Item[V] {
	if q.n == 0 {
		return dst
	}
	nb := len(q.buckets)
	for i := 0; i < nb; i++ {
		b := q.buckets[q.cur]
		// <= rather than ==: clamped slots and defensive tolerance for a
		// front that is somehow behind the scan both resolve to "pop now".
		if len(b) > 0 && q.slot(b[0].At) <= q.curSlot {
			return q.popFrom(q.cur, dst)
		}
		q.cur++
		if q.cur == nb {
			q.cur = 0
		}
		q.curSlot++
	}
	// A full year without a hit: the next event is more than a year away.
	// Find it directly and re-anchor the scan on its slot.
	min := -1
	for i, b := range q.buckets {
		if len(b) == 0 {
			continue
		}
		if min < 0 || less(b[0], q.buckets[min][0]) {
			min = i
		}
	}
	return q.popFrom(min, dst)
}

// popFrom removes the front run of equal-time items from bucket i.
func (q *Queue[V]) popFrom(i int, dst []Item[V]) []Item[V] {
	b := q.buckets[i]
	at := b[0].At
	k := 1
	for k < len(b) && b[k].At == at {
		k++
	}
	dst = append(dst, b[:k]...)
	m := copy(b, b[k:])
	var zero Item[V]
	for j := m; j < len(b); j++ {
		b[j] = zero // release payload references
	}
	q.buckets[i] = b[:m]
	q.n -= k
	q.lastAt = at
	q.cur = i
	q.curSlot = q.slot(at)
	if q.n < len(q.buckets)/2 && len(q.buckets) > minBuckets {
		q.resize(len(q.buckets) / 2)
	}
	return dst
}

// resize rebuilds the calendar with nb buckets and a width re-estimated
// from the current item spacing, then re-anchors the scan on the earliest
// item.
func (q *Queue[V]) resize(nb int) {
	if nb < minBuckets {
		nb = minBuckets
	}
	old := q.buckets
	q.width = q.estimateWidth()
	q.buckets = make([][]Item[V], nb)
	minAt := math.Inf(1)
	for _, b := range old {
		for _, it := range b {
			i := q.bucketOf(q.slot(it.At))
			q.buckets[i] = insertSorted(q.buckets[i], it)
			if it.At < minAt {
				minAt = it.At
			}
		}
	}
	if q.n > 0 {
		if minAt < q.lastAt {
			q.lastAt = minAt
		}
		// Anchor on lastAt, not minAt: future pushes only promise to be
		// >= lastAt, and anchoring ahead of that would let a later push
		// land behind the scan and be popped out of order. Anchoring
		// "too early" merely costs scan steps (the direct-search
		// fallback and popFrom's re-anchor recover immediately).
		q.anchor(q.lastAt)
	}
}

// estimateWidth returns a bucket width of three times the average gap
// between consecutive distinct event times, from a bounded sample. With no
// distinct gaps in the sample (all times equal, or <2 items) the current
// width is kept: any width is correct, adaptation just tunes the scan.
func (q *Queue[V]) estimateWidth() float64 {
	const maxSample = 64
	sample := make([]float64, 0, maxSample)
	for _, b := range q.buckets {
		for _, it := range b {
			sample = append(sample, it.At)
			if len(sample) == maxSample {
				break
			}
		}
		if len(sample) == maxSample {
			break
		}
	}
	sort.Float64s(sample)
	var sum float64
	var cnt int
	for i := 1; i < len(sample); i++ {
		if d := sample[i] - sample[i-1]; d > 0 {
			sum += d
			cnt++
		}
	}
	if cnt == 0 {
		return q.width
	}
	w := 3 * sum / float64(cnt)
	if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
		return q.width
	}
	return w
}
