package calq

import "testing"

// FuzzQueue fuzzes the calendar queue against the sorted-slice oracle.
// Input bytes decode two at a time into (op, arg) pairs: pops, quantized
// forward pushes, out-of-contract pushes behind the cursor, far jumps
// (direct-search territory), and tiny-gap bursts at large absolute times —
// the mix that exercises bucket mapping, year scanning, both resize
// directions, and the float-alignment edge the slot design exists for.
// Every divergence from the oracle is a scheduling-order bug in the fast
// path, so keep the decoded op space pointed at the queue's edge cases.
func FuzzQueue(f *testing.F) {
	// Seeds mirror the table-driven oracle tests: a pop-heavy mix, a
	// burst-then-jump sequence, and behind-cursor inserts.
	f.Add([]byte{0x01, 0x04, 0x01, 0x04, 0x00, 0x00, 0x01, 0x09, 0x00, 0x00})
	f.Add([]byte{0x04, 0x03, 0x04, 0x03, 0x04, 0x05, 0x03, 0x02, 0x04, 0x01, 0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{0x01, 0x20, 0x00, 0x00, 0x02, 0x10, 0x01, 0x08, 0x00, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip("need at least one (op, arg) pair")
		}
		base := 0.0
		drive(t, len(data)/2, func(i int) (float64, bool) {
			op, arg := data[2*i], data[2*i+1]
			switch op % 5 {
			case 0: // pop and compare against the oracle
				return 0, true
			case 1: // quantized forward push: equal-time batches
				return base + float64(arg)*0.25, false
			case 2: // out-of-contract push behind the cursor
				return base - float64(arg)*0.125, false
			case 3: // far jump: next event more than a year ahead
				base += float64(arg) * 1e5
				return base, false
			default: // tiny gaps at large absolute time: float alignment
				return base + float64(arg%8)*1e-6, false
			}
		})
	})
}
