// Package des implements a deterministic discrete-event simulation engine.
//
// Simulated processes are ordinary Go functions running in goroutines, but
// only one process executes at a time: a process runs until it blocks on a
// Delay, a Cond, or a Resource, then hands control to the engine's
// scheduler, which advances the virtual clock to the next scheduled event.
// Events at equal times fire in scheduling order, so a simulation is
// bit-reproducible — a property every figure of the reproduction depends
// on, proven by the differential harness (diff_test.go and
// internal/experiment's scheduler test) against the retained reference
// scheduler.
//
// The hot path is built for throughput:
//
//   - Events live in an allocation-free calendar queue
//     (internal/des/calq) keyed on (time, seq); the original
//     container/heap queue is retained in internal/des/refqueue and
//     selected engine-wide by the desrefqueue build tag, or per-engine via
//     NewReference, for differential testing.
//   - All events sharing a timestamp are popped in one batch, so
//     equal-time wake-ups are delivered in one queue scan, in seq order.
//   - Control transfers are a single rendezvous: the yielding process pops
//     the next event itself and resumes that process directly — one
//     channel handoff per event instead of the former two (yield to the
//     engine goroutine, then engine resumes the next process).
//   - Process goroutines come from a shared free list (worker.go) and park
//     for reuse when a body returns, so mpisim's spawn-per-rank-per-run
//     pattern recycles goroutines across World runs instead of spawning.
//
// The engine powers the simulated MPI runtime (internal/mpisim): each rank
// is a Proc, message matching uses Conds, and link bandwidth is modelled
// with Delays computed by the interconnect cost model.
package des

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"clustereval/internal/units"
)

// event is a scheduled process wake-up.
type event struct {
	at   units.Seconds
	seq  int64 // tie-breaker: FIFO among equal times
	proc *Proc
}

// eventQueue orders events by (at, seq). Two implementations exist: the
// calendar-queue fast path and the reference heap (see queue.go); the
// differential harness proves them interchangeable.
type eventQueue interface {
	Len() int
	Push(ev event)
	// PopBatch removes every event sharing the earliest timestamp and
	// appends them to dst in seq order.
	PopBatch(dst []event) []event
}

// Engine owns the virtual clock and the event queue.
//
// During a run exactly one goroutine — the process resumed by the last
// event, or the Run caller before the first and after the last — holds the
// control token, and only the holder touches engine state. The token moves
// through channel sends (worker resume channels and the driver's done
// channel), so every access is ordered by a happens-before edge and the
// engine needs no locks.
type Engine struct {
	now units.Seconds
	q   eventQueue
	seq int64

	// batch holds the same-timestamp events currently being delivered;
	// batchPos is the next undelivered index. The slice is reused across
	// batches, so steady-state delivery allocates nothing.
	batch    []event
	batchPos int

	ctx     context.Context
	done    chan struct{} // returns the control token to RunContext
	alive   int           // processes spawned and not yet finished
	waiting map[*Proc]string
	failure error
}

// refForced pins engines created by New to the reference queue at runtime.
// It exists for the differential harness in internal/experiment, which
// re-runs whole experiments — their engines buried inside mpisim worlds —
// on the reference scheduler. Flip it only around serialized test runs.
var refForced atomic.Bool

// UseReferenceQueue forces every subsequently created engine onto the
// reference heap queue (true) or back to the build default (false). Test
// hook for differential runs; see also the desrefqueue build tag and
// NewReference.
func UseReferenceQueue(on bool) { refForced.Store(on) }

// New returns an engine with the clock at zero, using the build-default
// event queue (the calendar queue, or the reference heap under the
// desrefqueue build tag).
func New() *Engine {
	if refForced.Load() {
		return newEngine(newRefQueue())
	}
	return newEngine(newDefaultQueue())
}

// NewReference returns an engine pinned to the reference heap queue
// regardless of build tags: the baseline side of differential tests.
func NewReference() *Engine { return newEngine(newRefQueue()) }

func newEngine(q eventQueue) *Engine {
	return &Engine{
		q:       q,
		ctx:     context.Background(),
		done:    make(chan struct{}, 1),
		waiting: make(map[*Proc]string),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() units.Seconds { return e.now }

// Proc is a simulated process. Its methods must only be called from within
// the process's own body function while the simulation is running.
type Proc struct {
	Name      string
	eng       *Engine
	w         *worker
	scheduled bool
}

// Spawn registers a new process that starts (at the current virtual time)
// when Run is called, or immediately if the simulation is already running.
// The process body runs on a pooled goroutine reused across processes and
// engines.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{Name: name, eng: e, w: getWorker()}
	e.alive++
	p.w.assign <- assignment{p: p, body: body}
	e.schedule(p, e.now)
	return p
}

// schedule enqueues a wake-up for p at time at. A process blocked in one
// place can only be woken once, so a second schedule (e.g. a Broadcast
// racing a Signal) is ignored.
func (e *Engine) schedule(p *Proc, at units.Seconds) {
	if p.scheduled {
		return
	}
	p.scheduled = true
	e.seq++
	e.q.Push(event{at: at, seq: e.seq, proc: p})
}

// dispatch hands control to the next runnable process. It is called by
// whichever goroutine holds the control token — a yielding or finishing
// process, or RunContext entering the run — and either resumes the next
// event's process directly (the single rendezvous) or returns the token to
// the driver when the run is over, aborted, or broken.
func (e *Engine) dispatch() {
	if err := e.ctx.Err(); err != nil {
		e.failure = fmt.Errorf("des: run aborted at t=%v: %w", float64(e.now), err)
		e.done <- struct{}{}
		return
	}
	if e.batchPos == len(e.batch) {
		e.batch = e.batch[:0]
		e.batchPos = 0
		if e.q.Len() == 0 {
			e.done <- struct{}{}
			return
		}
		e.batch = e.q.PopBatch(e.batch)
	}
	ev := e.batch[e.batchPos]
	e.batch[e.batchPos].proc = nil // release once delivered
	e.batchPos++
	if ev.at < e.now {
		e.failure = fmt.Errorf("des: time went backwards: %v < %v", ev.at, e.now)
		e.done <- struct{}{}
		return
	}
	e.now = ev.at
	ev.proc.scheduled = false
	ev.proc.w.resume <- struct{}{}
}

// procFinished is called by a worker whose process body returned: the
// process leaves the simulation and control passes to the next event.
func (e *Engine) procFinished(p *Proc) {
	e.alive--
	e.dispatch()
}

// procPanicked aborts the run, reporting the panic as the run's error. A
// process aborting with an error value (e.g. a typed fault-injection
// failure) stays unwrappable via errors.As.
func (e *Engine) procPanicked(p *Proc, r interface{}) {
	if perr, ok := r.(error); ok {
		e.failure = fmt.Errorf("des: process %q panicked: %w", p.Name, perr)
	} else {
		e.failure = fmt.Errorf("des: process %q panicked: %v", p.Name, r)
	}
	e.done <- struct{}{}
}

// Run executes the simulation until no events remain. It returns an error
// when a process panicked or when live processes remain blocked forever
// (deadlock), naming the stuck processes.
func (e *Engine) Run() error { return e.RunContext(context.Background()) }

// RunContext is Run with cooperative cancellation: the context is
// checked between event steps, so a deadline or cancel aborts the
// simulation mid-run — within one event — rather than only at its end.
// An aborted run returns an error wrapping ctx.Err(); the virtual clock
// stops at the abort point. As with a process panic, goroutines of still
// -blocked processes are abandoned (they hold no external resources, and
// their pooled workers are simply never recycled).
func (e *Engine) RunContext(ctx context.Context) error {
	e.ctx = ctx
	e.failure = nil
	e.dispatch() // cede the control token into the simulation
	<-e.done     // and wait for it to come back
	e.ctx = context.Background()
	if e.failure != nil {
		return e.failure
	}
	if e.alive > 0 {
		names := make([]string, 0, len(e.waiting))
		//lint:allow determinism names are sorted below before the error is formatted
		for p, what := range e.waiting {
			names = append(names, fmt.Sprintf("%s (on %s)", p.Name, what))
		}
		sort.Strings(names)
		e.failure = fmt.Errorf("des: deadlock: %d process(es) blocked forever: %v", e.alive, names)
		return e.failure
	}
	return nil
}

// yieldAndWait hands the control token to the next runnable process and
// blocks until rescheduled.
func (p *Proc) yieldAndWait() {
	p.eng.dispatch()
	<-p.w.resume
}

// Now returns the current virtual time.
func (p *Proc) Now() units.Seconds { return p.eng.now }

// Delay advances the process by d of virtual time. Negative or non-finite
// delays panic: they always indicate a broken cost model.
func (p *Proc) Delay(d units.Seconds) {
	if d < 0 || math.IsNaN(float64(d)) || math.IsInf(float64(d), 0) {
		panic(fmt.Sprintf("des: invalid delay %v", float64(d)))
	}
	p.eng.schedule(p, p.eng.now+d)
	p.yieldAndWait()
}

// Cond is a waitable condition: processes Wait on it and other processes
// wake them with Signal or Broadcast. Unlike sync.Cond there is no
// associated lock — the engine's run-one-process-at-a-time discipline makes
// state changes atomic.
type Cond struct {
	eng     *Engine
	name    string
	waiters []*Proc
	head    int // index of the longest waiter; see Signal
}

// NewCond returns a condition bound to the engine.
func (e *Engine) NewCond(name string) *Cond {
	return &Cond{eng: e, name: name}
}

// Wait blocks the calling process until the condition is signalled.
// The caller must re-check its predicate after waking (wake-ups are hints,
// exactly as with sync.Cond).
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	c.eng.waiting[p] = c.name
	p.yieldAndWait()
	delete(c.eng.waiting, p)
}

// Signal wakes the longest-waiting process, if any. Consumed slots are
// skipped with a head index rather than re-slicing (waiters[1:] would pin
// the backing array while shift-copying on append), and the live tail is
// copied down once the dead prefix reaches half the slice — so the backing
// array stays proportional to the peak number of concurrent waiters no
// matter how many signals pass through.
func (c *Cond) Signal() {
	if c.head == len(c.waiters) {
		return
	}
	p := c.waiters[c.head]
	c.waiters[c.head] = nil
	c.head++
	switch {
	case c.head == len(c.waiters):
		c.waiters = c.waiters[:0]
		c.head = 0
	case 2*c.head >= len(c.waiters):
		n := copy(c.waiters, c.waiters[c.head:])
		for i := n; i < len(c.waiters); i++ {
			c.waiters[i] = nil
		}
		c.waiters = c.waiters[:n]
		c.head = 0
	}
	c.eng.schedule(p, c.eng.now)
}

// Broadcast wakes every waiting process.
func (c *Cond) Broadcast() {
	for i := c.head; i < len(c.waiters); i++ {
		c.eng.schedule(c.waiters[i], c.eng.now)
		c.waiters[i] = nil
	}
	c.waiters = c.waiters[:0]
	c.head = 0
}

// NumWaiters returns how many processes are blocked on the condition.
func (c *Cond) NumWaiters() int { return len(c.waiters) - c.head }

// waitersCap reports the backing-array size of the waiter slice, for the
// regression test pinning Signal's bounded-growth contract.
func (c *Cond) waitersCap() int { return cap(c.waiters) }

// Resource is a counted resource (a semaphore) with FIFO fairness, used to
// model entities with finite concurrency such as network injection ports.
type Resource struct {
	cap   int
	inUse int
	cond  *Cond
}

// NewResource returns a resource with the given capacity.
func (e *Engine) NewResource(name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("des: resource capacity must be positive")
	}
	return &Resource{cap: capacity, cond: e.NewCond("resource " + name)}
}

// Acquire blocks p until a unit of the resource is free, then takes it.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.cap {
		r.cond.Wait(p)
	}
	r.inUse++
}

// Release returns a unit of the resource and wakes one waiter.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("des: release of an idle resource")
	}
	r.inUse--
	r.cond.Signal()
}

// InUse reports the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }
