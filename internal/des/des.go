// Package des implements a deterministic discrete-event simulation engine.
//
// Simulated processes are ordinary Go functions running in goroutines, but
// only one process executes at a time: a process runs until it blocks on a
// Delay, a Cond, or a Resource, then hands control back to the engine, which
// advances the virtual clock to the next scheduled event. Events at equal
// times fire in scheduling order, so a simulation is bit-reproducible — a
// property every figure of the reproduction depends on.
//
// The engine powers the simulated MPI runtime (internal/mpisim): each rank
// is a Proc, message matching uses Conds, and link bandwidth is modelled
// with Delays computed by the interconnect cost model.
package des

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"

	"clustereval/internal/units"
)

// event is a scheduled process wake-up.
type event struct {
	at   units.Seconds
	seq  int64 // tie-breaker: FIFO among equal times
	proc *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine owns the virtual clock and the event queue.
type Engine struct {
	now     units.Seconds
	events  eventHeap
	seq     int64
	yield   chan yieldMsg
	alive   int // processes spawned and not yet finished
	waiting map[*Proc]string
	failure error
}

type yieldMsg struct {
	proc     *Proc
	finished bool
	panicked interface{}
}

// New returns an engine with the clock at zero.
func New() *Engine {
	return &Engine{
		yield:   make(chan yieldMsg),
		waiting: make(map[*Proc]string),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() units.Seconds { return e.now }

// Proc is a simulated process. Its methods must only be called from within
// the process's own body function while the simulation is running.
type Proc struct {
	Name      string
	eng       *Engine
	resume    chan struct{}
	scheduled bool
}

// Spawn registers a new process that starts (at the current virtual time)
// when Run is called, or immediately if the simulation is already running.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{Name: name, eng: e, resume: make(chan struct{})}
	e.alive++
	go func() {
		<-p.resume // wait for first scheduling
		defer func() {
			if r := recover(); r != nil {
				e.yield <- yieldMsg{proc: p, finished: true, panicked: r}
				return
			}
			e.yield <- yieldMsg{proc: p, finished: true}
		}()
		body(p)
	}()
	e.schedule(p, e.now)
	return p
}

// schedule enqueues a wake-up for p at time at. A process blocked in one
// place can only be woken once, so a second schedule (e.g. a Broadcast
// racing a Signal) is ignored.
func (e *Engine) schedule(p *Proc, at units.Seconds) {
	if p.scheduled {
		return
	}
	p.scheduled = true
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, proc: p})
}

// Run executes the simulation until no events remain. It returns an error
// when a process panicked or when live processes remain blocked forever
// (deadlock), naming the stuck processes.
func (e *Engine) Run() error { return e.RunContext(context.Background()) }

// RunContext is Run with cooperative cancellation: the context is
// checked between event steps, so a deadline or cancel aborts the
// simulation mid-run — within one event — rather than only at its end.
// An aborted run returns an error wrapping ctx.Err(); the virtual clock
// stops at the abort point. As with a process panic, goroutines of still
// -blocked processes are abandoned (they hold no external resources).
func (e *Engine) RunContext(ctx context.Context) error {
	for len(e.events) > 0 {
		if err := ctx.Err(); err != nil {
			e.failure = fmt.Errorf("des: run aborted at t=%v: %w", float64(e.now), err)
			return e.failure
		}
		ev := heap.Pop(&e.events).(event)
		if ev.at < e.now {
			return fmt.Errorf("des: time went backwards: %v < %v", ev.at, e.now)
		}
		e.now = ev.at
		ev.proc.scheduled = false
		ev.proc.resume <- struct{}{}
		msg := <-e.yield
		if msg.panicked != nil {
			// A process aborting with an error value (e.g. a typed
			// fault-injection failure) stays unwrappable via errors.As.
			if perr, ok := msg.panicked.(error); ok {
				e.failure = fmt.Errorf("des: process %q panicked: %w", msg.proc.Name, perr)
			} else {
				e.failure = fmt.Errorf("des: process %q panicked: %v", msg.proc.Name, msg.panicked)
			}
			return e.failure
		}
		if msg.finished {
			e.alive--
		}
	}
	if e.alive > 0 {
		names := make([]string, 0, len(e.waiting))
		//lint:allow determinism names are sorted below before the error is formatted
		for p, what := range e.waiting {
			names = append(names, fmt.Sprintf("%s (on %s)", p.Name, what))
		}
		sort.Strings(names)
		e.failure = fmt.Errorf("des: deadlock: %d process(es) blocked forever: %v", e.alive, names)
		return e.failure
	}
	return nil
}

// yieldAndWait hands control back to the engine and blocks until rescheduled.
func (p *Proc) yieldAndWait() {
	p.eng.yield <- yieldMsg{proc: p}
	<-p.resume
}

// Now returns the current virtual time.
func (p *Proc) Now() units.Seconds { return p.eng.now }

// Delay advances the process by d of virtual time. Negative or non-finite
// delays panic: they always indicate a broken cost model.
func (p *Proc) Delay(d units.Seconds) {
	if d < 0 || math.IsNaN(float64(d)) || math.IsInf(float64(d), 0) {
		panic(fmt.Sprintf("des: invalid delay %v", float64(d)))
	}
	p.eng.schedule(p, p.eng.now+d)
	p.yieldAndWait()
}

// Cond is a waitable condition: processes Wait on it and other processes
// wake them with Signal or Broadcast. Unlike sync.Cond there is no
// associated lock — the engine's run-one-process-at-a-time discipline makes
// state changes atomic.
type Cond struct {
	eng     *Engine
	name    string
	waiters []*Proc
}

// NewCond returns a condition bound to the engine.
func (e *Engine) NewCond(name string) *Cond {
	return &Cond{eng: e, name: name}
}

// Wait blocks the calling process until the condition is signalled.
// The caller must re-check its predicate after waking (wake-ups are hints,
// exactly as with sync.Cond).
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	c.eng.waiting[p] = c.name
	p.yieldAndWait()
	delete(c.eng.waiting, p)
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.eng.schedule(p, c.eng.now)
}

// Broadcast wakes every waiting process.
func (c *Cond) Broadcast() {
	for _, p := range c.waiters {
		c.eng.schedule(p, c.eng.now)
	}
	c.waiters = c.waiters[:0]
}

// NumWaiters returns how many processes are blocked on the condition.
func (c *Cond) NumWaiters() int { return len(c.waiters) }

// Resource is a counted resource (a semaphore) with FIFO fairness, used to
// model entities with finite concurrency such as network injection ports.
type Resource struct {
	cap   int
	inUse int
	cond  *Cond
}

// NewResource returns a resource with the given capacity.
func (e *Engine) NewResource(name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("des: resource capacity must be positive")
	}
	return &Resource{cap: capacity, cond: e.NewCond("resource " + name)}
}

// Acquire blocks p until a unit of the resource is free, then takes it.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.cap {
		r.cond.Wait(p)
	}
	r.inUse++
}

// Release returns a unit of the resource and wakes one waiter.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("des: release of an idle resource")
	}
	r.inUse--
	r.cond.Signal()
}

// InUse reports the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }
