package refqueue

import (
	"sort"
	"testing"

	"clustereval/internal/xrand"
)

// TestOrderAndBatching pins the reference contract the fast queue is
// measured against: pops come out in (At, Seq) order and each PopBatch
// returns exactly the front equal-time run.
func TestOrderAndBatching(t *testing.T) {
	q := New[int]()
	r := xrand.New(3)
	var all []Item[int]
	for seq := int64(0); seq < 500; seq++ {
		at := float64(r.Intn(50)) * 0.5 // quantized: equal times happen often
		q.Push(at, seq, int(seq))
		all = append(all, Item[int]{At: at, Seq: seq, V: int(seq)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].At != all[j].At {
			return all[i].At < all[j].At
		}
		return all[i].Seq < all[j].Seq
	})
	var got []Item[int]
	for q.Len() > 0 {
		n := len(got)
		got = q.PopBatch(got)
		batch := got[n:]
		for i := 1; i < len(batch); i++ {
			if batch[i].At != batch[0].At {
				t.Fatalf("batch mixes times %v and %v", batch[0].At, batch[i].At)
			}
		}
		if q.Len() > 0 {
			peek := q.PopBatch(nil)
			if peek[0].At == batch[0].At {
				t.Fatalf("batch at t=%v was not exhaustive", batch[0].At)
			}
			for _, it := range peek { // put the peeked batch back
				q.Push(it.At, it.Seq, it.V)
			}
		}
	}
	if len(got) != len(all) {
		t.Fatalf("popped %d items, pushed %d", len(got), len(all))
	}
	for i := range all {
		if got[i] != all[i] {
			t.Fatalf("item %d: got %+v, want %+v", i, got[i], all[i])
		}
	}
}

// TestEmptyPop pins that popping an empty queue leaves dst unchanged.
func TestEmptyPop(t *testing.T) {
	q := New[string]()
	dst := []Item[string]{{At: 1, Seq: 1, V: "keep"}}
	if out := q.PopBatch(dst); len(out) != 1 || out[0].V != "keep" {
		t.Fatalf("empty pop mutated dst: %+v", out)
	}
}
