// Package refqueue is the reference DES event queue: the container/heap
// binary heap the engine used before the calendar-queue fast path,
// retained on purpose — interface{} boxing and all — as the baseline side
// of the differential harness. The engine pins itself to this queue under
// the desrefqueue build tag (see internal/des), and the differential
// tests run both queues over identical workloads asserting byte-identical
// results. Do not optimise this package: its value is being the known-good
// original, not being fast.
package refqueue

import "container/heap"

// Item is one queued entry: a payload V ordered by (At, Seq) — time
// first, then insertion sequence, so equal-time items pop FIFO.
type Item[V any] struct {
	At  float64
	Seq int64
	V   V
}

// boxedHeap is the original heap.Interface implementation, boxing every
// pushed and popped item through interface{} exactly as the pre-rewrite
// engine did.
type boxedHeap[V any] []Item[V]

func (h boxedHeap[V]) Len() int { return len(h) }
func (h boxedHeap[V]) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].Seq < h[j].Seq
}
func (h boxedHeap[V]) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *boxedHeap[V]) Push(x interface{}) { *h = append(*h, x.(Item[V])) }
func (h *boxedHeap[V]) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Queue is the reference priority queue over (At, Seq).
type Queue[V any] struct{ h boxedHeap[V] }

// New returns an empty queue.
func New[V any]() *Queue[V] { return &Queue[V]{} }

// Len returns the number of queued items.
func (q *Queue[V]) Len() int { return len(q.h) }

// Push inserts an item.
func (q *Queue[V]) Push(at float64, seq int64, v V) {
	heap.Push(&q.h, Item[V]{At: at, Seq: seq, V: v})
}

// PopBatch removes every item sharing the earliest time and appends them
// to dst in Seq order. An empty queue returns dst unchanged.
func (q *Queue[V]) PopBatch(dst []Item[V]) []Item[V] {
	if len(q.h) == 0 {
		return dst
	}
	first := heap.Pop(&q.h).(Item[V])
	dst = append(dst, first)
	for len(q.h) > 0 && q.h[0].At == first.At {
		dst = append(dst, heap.Pop(&q.h).(Item[V]))
	}
	return dst
}
