package des

import "sync"

// A worker is a reusable goroutine hosting process bodies. Spawn binds a
// worker to one Proc via its assign channel; the worker parks on its
// resume channel until the process's first scheduled event, runs the body
// (which yields and resumes through the same channel), and when the body
// returns hands the control token onward and parks back on assign for the
// next Spawn — possibly on a different engine. Reuse makes mpisim's
// spawn-per-rank-per-run pattern cheap across World runs: steady state
// starts zero goroutines.
//
// Both channels are buffered (capacity 1) so the sender of a token never
// blocks waiting for the Go scheduler to wake the receiver: at most one
// assignment and one resume token can be outstanding per worker, and each
// send happens-before the matching receive, which is what carries the
// engine's single-control-token discipline across goroutines.
type worker struct {
	assign chan assignment
	resume chan struct{}
}

// assignment binds a worker to one process for one lifetime.
type assignment struct {
	p    *Proc
	body func(*Proc)
}

// maxIdleWorkers bounds the parked free list: beyond it a finishing worker
// exits instead of parking. The pool bounds idle goroutine cost; it is not
// a concurrency limit — getWorker always returns a worker.
const maxIdleWorkers = 1024

// workerPool is the process-wide free list of parked workers. Engines may
// run concurrently (clusterd executes jobs in parallel), so access is
// mutex-guarded; which worker a Spawn gets is invisible to simulation
// results, so sharing costs no determinism.
var workerPool struct {
	mu   sync.Mutex
	free []*worker
}

// getWorker pops a parked worker, or starts a fresh goroutine.
func getWorker() *worker {
	workerPool.mu.Lock()
	if n := len(workerPool.free); n > 0 {
		w := workerPool.free[n-1]
		workerPool.free[n-1] = nil
		workerPool.free = workerPool.free[:n-1]
		workerPool.mu.Unlock()
		return w
	}
	workerPool.mu.Unlock()
	w := &worker{assign: make(chan assignment, 1), resume: make(chan struct{}, 1)}
	go w.loop()
	return w
}

// putWorker parks w for reuse; false means the pool is full and the worker
// should exit.
func putWorker(w *worker) bool {
	workerPool.mu.Lock()
	defer workerPool.mu.Unlock()
	if len(workerPool.free) >= maxIdleWorkers {
		return false
	}
	workerPool.free = append(workerPool.free, w)
	return true
}

// idleWorkers reports the free-list size, for the reuse tests.
func idleWorkers() int {
	workerPool.mu.Lock()
	defer workerPool.mu.Unlock()
	return len(workerPool.free)
}

func (w *worker) loop() {
	for a := range w.assign {
		<-w.resume // the process's first scheduled event
		w.run(a)
		if !putWorker(w) {
			return
		}
	}
}

// run executes one process body, then passes the control token onward: to
// the next event when the body returned, or back to the run driver when it
// panicked. Processes abandoned mid-body (deadlock, abort, panic elsewhere)
// never reach this hand-back; their workers stay parked on resume forever
// and are simply not recycled, exactly as the pre-pool engine leaked their
// goroutines.
func (w *worker) run(a assignment) {
	e := a.p.eng
	defer func() {
		if r := recover(); r != nil {
			e.procPanicked(a.p, r)
		} else {
			e.procFinished(a.p)
		}
	}()
	a.body(a.p)
}
