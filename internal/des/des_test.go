package des

import (
	"strings"
	"testing"

	"clustereval/internal/units"
)

func TestSingleProcessDelay(t *testing.T) {
	e := New()
	var end units.Seconds
	e.Spawn("a", func(p *Proc) {
		p.Delay(1.5)
		p.Delay(0.5)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 2.0 {
		t.Errorf("end time = %v, want 2.0", end)
	}
	if e.Now() != 2.0 {
		t.Errorf("engine clock = %v", e.Now())
	}
}

func TestInterleaving(t *testing.T) {
	e := New()
	var order []string
	log := func(s string) { order = append(order, s) }
	e.Spawn("slow", func(p *Proc) {
		p.Delay(2)
		log("slow@2")
		p.Delay(2)
		log("slow@4")
	})
	e.Spawn("fast", func(p *Proc) {
		p.Delay(1)
		log("fast@1")
		p.Delay(2)
		log("fast@3")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "fast@1,slow@2,fast@3,slow@4"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("order = %s, want %s", got, want)
	}
}

func TestEqualTimesFIFO(t *testing.T) {
	e := New()
	var order []string
	for _, name := range []string{"p0", "p1", "p2"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			p.Delay(1)
			order = append(order, name)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "p0,p1,p2" {
		t.Errorf("equal-time order = %s, want spawn order", got)
	}
}

func TestZeroDelayAllowed(t *testing.T) {
	e := New()
	ran := false
	e.Spawn("z", func(p *Proc) {
		p.Delay(0)
		ran = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("zero delay blocked forever")
	}
}

func TestNegativeDelayPanicsProcess(t *testing.T) {
	e := New()
	e.Spawn("bad", func(p *Proc) { p.Delay(-1) })
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("err = %v, want panic propagation", err)
	}
}

func TestCondSignal(t *testing.T) {
	e := New()
	c := e.NewCond("data")
	ready := false
	var consumedAt units.Seconds
	e.Spawn("consumer", func(p *Proc) {
		for !ready {
			c.Wait(p)
		}
		consumedAt = p.Now()
	})
	e.Spawn("producer", func(p *Proc) {
		p.Delay(3)
		ready = true
		c.Signal()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if consumedAt != 3 {
		t.Errorf("consumed at %v, want 3", consumedAt)
	}
}

func TestCondBroadcast(t *testing.T) {
	e := New()
	c := e.NewCond("go")
	released := false
	woken := 0
	for i := 0; i < 5; i++ {
		e.Spawn("w", func(p *Proc) {
			for !released {
				c.Wait(p)
			}
			woken++
		})
	}
	e.Spawn("release", func(p *Proc) {
		p.Delay(1)
		released = true
		c.Broadcast()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 5 {
		t.Errorf("woken = %d, want 5", woken)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := New()
	c := e.NewCond("never")
	e.Spawn("stuck", func(p *Proc) { c.Wait(p) })
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v, want deadlock", err)
	}
	if !strings.Contains(err.Error(), "stuck") || !strings.Contains(err.Error(), "never") {
		t.Errorf("deadlock report should name process and condition: %v", err)
	}
}

func TestResourceSerializes(t *testing.T) {
	e := New()
	r := e.NewResource("link", 1)
	var finish []units.Seconds
	for i := 0; i < 3; i++ {
		e.Spawn("u", func(p *Proc) {
			r.Acquire(p)
			p.Delay(10)
			r.Release()
			finish = append(finish, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []units.Seconds{10, 20, 30}
	for i, w := range want {
		if finish[i] != w {
			t.Errorf("finish[%d] = %v, want %v", i, finish[i], w)
		}
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := New()
	r := e.NewResource("ports", 2)
	var finish []units.Seconds
	for i := 0; i < 4; i++ {
		e.Spawn("u", func(p *Proc) {
			r.Acquire(p)
			p.Delay(10)
			r.Release()
			finish = append(finish, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []units.Seconds{10, 10, 20, 20}
	for i, w := range want {
		if finish[i] != w {
			t.Errorf("finish[%d] = %v, want %v", i, finish[i], w)
		}
	}
}

func TestResourceMisuse(t *testing.T) {
	e := New()
	r := e.NewResource("x", 1)
	e.Spawn("bad", func(p *Proc) { r.Release() })
	if err := e.Run(); err == nil {
		t.Error("release of idle resource not reported")
	}
	defer func() {
		if recover() == nil {
			t.Error("zero-capacity resource accepted")
		}
	}()
	e.NewResource("y", 0)
}

func TestSpawnDuringRun(t *testing.T) {
	e := New()
	var childEnd units.Seconds
	e.Spawn("parent", func(p *Proc) {
		p.Delay(5)
		e.Spawn("child", func(q *Proc) {
			q.Delay(3)
			childEnd = q.Now()
		})
		p.Delay(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childEnd != 8 {
		t.Errorf("child ended at %v, want 8 (spawned at 5 + 3)", childEnd)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []units.Seconds {
		e := New()
		c := e.NewCond("c")
		var times []units.Seconds
		turn := 0
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn("p", func(p *Proc) {
				for turn != i {
					c.Wait(p)
				}
				p.Delay(units.Seconds(float64(i) * 0.1))
				times = append(times, p.Now())
				turn++
				c.Broadcast()
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property-style check: across many random-ish workloads, events never fire
// at decreasing virtual times.
func TestMonotoneClock(t *testing.T) {
	e := New()
	last := units.Seconds(-1)
	for i := 0; i < 50; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			for j := 0; j < 20; j++ {
				d := units.Seconds(float64((i*31+j*17)%13) * 0.01)
				p.Delay(d)
				if p.Now() < last {
					t.Errorf("clock moved backwards: %v after %v", p.Now(), last)
				}
				last = p.Now()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
