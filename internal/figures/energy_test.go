package figures

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates the golden file from current output.
var update = flag.Bool("update", false, "rewrite golden files")

// TestEnergyToSolutionGolden pins the energy-to-solution figure — every
// workload on every registered preset — byte-for-byte. The table exercises
// the whole power-model stack (per-kind activity profiles, preset power
// rails, EDP derivation), so any drift in the energy path shows up here as
// a one-line CSV diff. Refresh intentionally with:
// go test ./internal/figures -update
func TestEnergyToSolutionGolden(t *testing.T) {
	tbl, err := EnergyToSolution()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "energy_to_solution.csv")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("energy figure drifted from golden file %s\n--- got ---\n%s--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}
