// Package figures regenerates every figure of the paper as a renderable
// report object. The command-line tools and examples are thin wrappers over
// this package; the benchmark harness (bench_test.go) drives the same entry
// points so that `go test -bench` reproduces the full evaluation.
package figures

import (
	"fmt"

	"clustereval/internal/apps/alya"
	"clustereval/internal/apps/gromacs"
	"clustereval/internal/apps/nemo"
	"clustereval/internal/apps/openifs"
	"clustereval/internal/apps/scaling"
	"clustereval/internal/apps/wrf"
	"clustereval/internal/bench/fpu"
	"clustereval/internal/bench/osu"
	"clustereval/internal/bench/stream"
	"clustereval/internal/hpcg"
	"clustereval/internal/hpl"
	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/report"
	"clustereval/internal/toolchain"
	"clustereval/internal/units"
	"clustereval/internal/xrand"
)

// Pair holds the two machines under evaluation.
type Pair struct {
	Arm, Ref machine.Machine
}

// Default returns the paper's machine pair.
func Default() Pair {
	return Pair{Arm: machine.CTEArm(), Ref: machine.MareNostrum4()}
}

// WithSeed returns the paper's machine pair with an alternative noise seed
// plumbed into both machines' network descriptors. Seed 0 keeps the
// built-in seeds that reproduce the paper bit-for-bit; any other value
// yields a different — but equally deterministic — realisation of the
// interconnect noise, so repeated runs with the same seed agree exactly.
// Per-machine streams are derived through xrand so the two fabrics never
// share a noise stream.
func WithSeed(seed uint64) Pair {
	p := Default()
	if seed != 0 {
		p.Arm.Network.Seed = xrand.MixN(seed, 1)
		p.Ref.Network.Seed = xrand.MixN(seed, 2)
	}
	return p
}

// streamSetup returns the Table II STREAM build and array size the paper
// uses on machine m. The element counts follow the paper's sizing rule on
// each system's memory.
func (p Pair) streamSetup(m machine.Machine) (toolchain.Compiler, int) {
	if m.Name == p.Arm.Name {
		return toolchain.StreamOpenMPArm(), 610e6
	}
	return toolchain.StreamMN4(), 400e6
}

// MachineByName resolves one of the pair's machines from its Table I name,
// preserving any seed plumbed in by WithSeed.
func (p Pair) MachineByName(name string) (machine.Machine, error) {
	switch name {
	case p.Arm.Name:
		return p.Arm, nil
	case p.Ref.Name:
		return p.Ref, nil
	default:
		return machine.Machine{}, fmt.Errorf("figures: unknown machine %q (have %q, %q)",
			name, p.Arm.Name, p.Ref.Name)
	}
}

// AppSeries returns the scalability series of an application's primary
// figure — the curve Table IV scores it by — for both machines: Fig. 8 for
// Alya, Fig. 11 for NEMO, Fig. 13 for Gromacs, Fig. 15 for OpenIFS and
// Fig. 16 for WRF (which contributes an IO and a no-IO curve per machine).
func (p Pair) AppSeries(app string) ([]scaling.Series, error) {
	two := func(cte, ref scaling.Series, err error) ([]scaling.Series, error) {
		if err != nil {
			return nil, err
		}
		return []scaling.Series{cte, ref}, nil
	}
	switch app {
	case "alya":
		return two(alya.Figure8(p.Arm, p.Ref))
	case "nemo":
		return two(nemo.Figure11(p.Arm, p.Ref))
	case "gromacs":
		return two(gromacs.Figure13(p.Arm, p.Ref))
	case "openifs":
		return two(openifs.Figure15(p.Arm, p.Ref))
	case "wrf":
		return wrf.Figure16(p.Arm, p.Ref)
	default:
		return nil, fmt.Errorf("figures: unknown app %q (valid: alya nemo gromacs openifs wrf)", app)
	}
}

// StreamSeries runs the Fig. 2 OpenMP thread sweep for a single machine and
// language, with exactly the build and array size the full figure uses —
// the evaluation service serves per-machine STREAM jobs through this entry
// point so they match the CLI numbers bit-for-bit.
func (p Pair) StreamSeries(machineName string, lang toolchain.Language) (stream.Series, error) {
	m, err := p.MachineByName(machineName)
	if err != nil {
		return stream.Series{}, err
	}
	comp, elements := p.streamSetup(m)
	return stream.Figure2(m, comp, lang, elements)
}

// HybridStreamSeries runs the Fig. 3 hybrid MPI+OpenMP sweep for a single
// machine and language, using the full figure's build configuration.
func (p Pair) HybridStreamSeries(machineName string, lang toolchain.Language) (stream.HybridSeries, error) {
	m, err := p.MachineByName(machineName)
	if err != nil {
		return stream.HybridSeries{}, err
	}
	comp := toolchain.StreamMN4()
	if m.Name == p.Arm.Name {
		comp = toolchain.StreamHybridArm()
	}
	return stream.Figure3(m, comp, lang)
}

// Figure1 runs the FPU µKernel and tabulates sustained performance per
// variant and machine.
func (p Pair) Figure1() (*report.Table, error) {
	bars, err := fpu.Figure1([]machine.Machine{p.Arm, p.Ref}, fpu.DefaultIterations)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Fig. 1: FPU µKernel sustained performance (one core)",
		Headers: []string{"Variant", "Machine", "Sustained", "Peak", "% of peak"},
	}
	for _, b := range bars {
		if !b.Supported {
			t.AddRow(b.Variant.Name(), b.Machine, "unsupported", "-", "-")
			continue
		}
		t.AddRow(b.Variant.Name(), b.Machine,
			b.Sustained.String(), b.Peak.String(), fmt.Sprintf("%.1f", b.PercentOfPeak))
	}
	return t, nil
}

// Figure2 sweeps STREAM Triad over OpenMP thread counts.
func (p Pair) Figure2() (*report.Plot, []stream.Series, error) {
	var all []stream.Series
	plot := &report.Plot{
		Title:  "Fig. 2: STREAM Triad bandwidth, OpenMP (spread binding)",
		XLabel: "threads", YLabel: "GB/s",
	}
	for _, cfg := range []struct {
		m    machine.Machine
		lang toolchain.Language
	}{
		{p.Arm, toolchain.C},
		{p.Arm, toolchain.Fortran},
		{p.Ref, toolchain.C},
		{p.Ref, toolchain.Fortran},
	} {
		s, err := p.StreamSeries(cfg.m.Name, cfg.lang)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, s)
		var xs, ys []float64
		for _, pt := range s.Points {
			xs = append(xs, float64(pt.Threads))
			ys = append(ys, pt.Bandwidth.GB())
		}
		plot.Series = append(plot.Series, report.Series{
			Name: fmt.Sprintf("%s %s (best %.1f GB/s @ %d)", s.Machine, s.Language, s.Best.Bandwidth.GB(), s.Best.Threads),
			X:    xs, Y: ys,
		})
	}
	return plot, all, nil
}

// Figure3 runs the hybrid MPI+OpenMP STREAM Triad.
func (p Pair) Figure3() (*report.Table, []stream.HybridSeries, error) {
	t := &report.Table{
		Title:   "Fig. 3: STREAM Triad bandwidth, MPI+OpenMP (1 rank per NUMA domain)",
		Headers: []string{"Machine", "Language", "Best config", "Bandwidth", "% of peak"},
	}
	var all []stream.HybridSeries
	for _, cfg := range []struct {
		m    machine.Machine
		lang toolchain.Language
	}{
		{p.Arm, toolchain.Fortran},
		{p.Arm, toolchain.C},
		{p.Ref, toolchain.Fortran},
		{p.Ref, toolchain.C},
	} {
		s, err := p.HybridStreamSeries(cfg.m.Name, cfg.lang)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, s)
		t.AddRow(s.Machine, s.Language.String(), s.Best.Label(),
			s.Best.Bandwidth.String(), fmt.Sprintf("%.0f", s.PercentOfPeak))
	}
	return t, all, nil
}

// Figure4 produces the all-pairs bandwidth heatmap of the CTE-Arm torus.
func (p Pair) Figure4(size units.Bytes) (*report.Heatmap, *osu.Heatmap, error) {
	fab, err := interconnect.NewTofuD(p.Arm, p.Arm.Nodes)
	if err != nil {
		return nil, nil, err
	}
	h, err := osu.Figure4(fab, size, osu.DefaultIterations)
	if err != nil {
		return nil, nil, err
	}
	vals := make([][]float64, h.Nodes())
	for s := range h.BW {
		vals[s] = make([]float64, h.Nodes())
		for r, bw := range h.BW[s] {
			vals[s][r] = bw.GB()
		}
	}
	hm := &report.Heatmap{
		Title:      fmt.Sprintf("Fig. 4: bandwidth of all node pairs (msg size %v)", size),
		Values:     vals,
		Downsample: 2,
	}
	return hm, h, nil
}

// Figure5 computes the bandwidth distribution across message sizes.
func (p Pair) Figure5() (*report.Table, *osu.Distribution, error) {
	fab, err := interconnect.NewTofuD(p.Arm, p.Arm.Nodes)
	if err != nil {
		return nil, nil, err
	}
	d, err := osu.Figure5(fab, 0, 24, 90, 4)
	if err != nil {
		return nil, nil, err
	}
	t := &report.Table{
		Title:   "Fig. 5: bandwidth distribution over all node pairs",
		Headers: []string{"Msg size", "Modes", "p95/p5 spread"},
	}
	for i, size := range d.Sizes {
		modes := len(d.Hist[i].Modes(0.12))
		t.AddRow(units.Bytes(size).String(), fmt.Sprint(modes),
			fmt.Sprintf("%.2fx", d.SpreadAt(i)))
	}
	return t, d, nil
}

// Figure6 sweeps HPL over node counts on both machines.
func (p Pair) Figure6() (*report.Plot, map[string][]hpl.Run, error) {
	plot := &report.Plot{
		Title:  "Fig. 6: Linpack scalability",
		XLabel: "nodes", YLabel: "GFlop/s",
		LogX: true, LogY: true,
	}
	out := map[string][]hpl.Run{}
	for _, m := range []machine.Machine{p.Arm, p.Ref} {
		runs, err := hpl.Figure6(m, 192)
		if err != nil {
			return nil, nil, err
		}
		out[m.Name] = runs
		var xs, ys []float64
		for _, r := range runs {
			xs = append(xs, float64(r.Nodes))
			ys = append(ys, r.Perf.Giga())
		}
		last := runs[len(runs)-1]
		plot.Series = append(plot.Series, report.Series{
			Name: fmt.Sprintf("%s (192 nodes: %.0f%% of peak)", m.Name, last.PercentOfPeak),
			X:    xs, Y: ys,
		})
	}
	return plot, out, nil
}

// Figure7 tabulates HPCG for both versions at 1 and 192 nodes.
func (p Pair) Figure7() (*report.Table, []hpcg.Run, error) {
	runs, err := hpcg.Figure7(p.Arm, p.Ref)
	if err != nil {
		return nil, nil, err
	}
	t := &report.Table{
		Title:   "Fig. 7: HPCG performance",
		Headers: []string{"Nodes", "Machine", "Version", "Performance", "% of peak"},
	}
	for _, r := range runs {
		t.AddRow(fmt.Sprint(r.Nodes), r.Machine, r.Version.String(),
			r.Perf.String(), fmt.Sprintf("%.2f", r.PercentOfPeak))
	}
	return t, runs, nil
}

// scalingPlot converts scaling series into a log-log plot.
func scalingPlot(title, ylabel string, series ...scaling.Series) *report.Plot {
	plot := &report.Plot{Title: title, XLabel: "nodes", YLabel: ylabel, LogX: true, LogY: true}
	for _, s := range series {
		name := s.Machine
		if s.Label != "" {
			name += " (" + s.Label + ")"
		}
		var xs, ys []float64
		for _, pt := range s.Sorted() {
			xs = append(xs, float64(pt.Nodes))
			ys = append(ys, float64(pt.Time))
		}
		plot.Series = append(plot.Series, report.Series{Name: name, X: xs, Y: ys})
	}
	return plot
}

// Figure8 returns Alya's time-step scalability.
func (p Pair) Figure8() (*report.Plot, error) {
	cte, ref, err := alya.Figure8(p.Arm, p.Ref)
	if err != nil {
		return nil, err
	}
	return scalingPlot("Fig. 8: Alya average time step [s]", "seconds", cte, ref), nil
}

// Figure9 returns Alya's Assembly-phase scalability.
func (p Pair) Figure9() (*report.Plot, error) {
	cte, ref, err := alya.Figure9(p.Arm, p.Ref)
	if err != nil {
		return nil, err
	}
	return scalingPlot("Fig. 9: Alya Assembly phase [s]", "seconds", cte, ref), nil
}

// Figure10 returns Alya's Solver-phase scalability.
func (p Pair) Figure10() (*report.Plot, error) {
	cte, ref, err := alya.Figure10(p.Arm, p.Ref)
	if err != nil {
		return nil, err
	}
	return scalingPlot("Fig. 10: Alya Solver phase [s]", "seconds", cte, ref), nil
}

// Figure11 returns NEMO's scalability.
func (p Pair) Figure11() (*report.Plot, error) {
	cte, ref, err := nemo.Figure11(p.Arm, p.Ref)
	if err != nil {
		return nil, err
	}
	return scalingPlot("Fig. 11: NEMO execution time [s]", "seconds", cte, ref), nil
}

// Figure12 returns Gromacs single-node scalability (days/ns vs cores).
func (p Pair) Figure12() (*report.Plot, error) {
	cte, ref, err := gromacs.Figure12(p.Arm, p.Ref)
	if err != nil {
		return nil, err
	}
	plot := scalingPlot("Fig. 12: Gromacs single node [days/ns]", "days/ns", cte, ref)
	plot.XLabel = "cores"
	return plot, nil
}

// Figure13 returns Gromacs multi-node scalability.
func (p Pair) Figure13() (*report.Plot, error) {
	cte, ref, err := gromacs.Figure13(p.Arm, p.Ref)
	if err != nil {
		return nil, err
	}
	return scalingPlot("Fig. 13: Gromacs across nodes [days/ns]", "days/ns", cte, ref), nil
}

// Figure14 returns OpenIFS single-node scalability (seconds/day vs ranks).
func (p Pair) Figure14() (*report.Plot, error) {
	cte, ref, err := openifs.Figure14(p.Arm, p.Ref)
	if err != nil {
		return nil, err
	}
	plot := scalingPlot("Fig. 14: OpenIFS TL255L91, one node [s/day]", "s/day", cte, ref)
	plot.XLabel = "ranks"
	return plot, nil
}

// Figure15 returns OpenIFS multi-node scalability.
func (p Pair) Figure15() (*report.Plot, error) {
	cte, ref, err := openifs.Figure15(p.Arm, p.Ref)
	if err != nil {
		return nil, err
	}
	return scalingPlot("Fig. 15: OpenIFS TC0511L91 across nodes [s/day]", "s/day", cte, ref), nil
}

// Figure16 returns WRF scalability with and without IO.
func (p Pair) Figure16() (*report.Plot, error) {
	series, err := wrf.Figure16(p.Arm, p.Ref)
	if err != nil {
		return nil, err
	}
	return scalingPlot("Fig. 16: WRF elapsed time [s]", "seconds", series...), nil
}
