// Package figures regenerates every figure of the paper as a renderable
// report object. The per-kind experiment wiring — machine pair, Table II
// builds, application catalog — lives in the internal/experiment registry;
// this package drives those same registry entry points and adds only the
// presentation (plots, tables, heatmaps). The command-line tools and
// examples are thin wrappers over this package; the benchmark harness
// (bench_test.go) drives the same entry points so that `go test -bench`
// reproduces the full evaluation.
package figures

import (
	"fmt"

	"clustereval/internal/apps/alya"
	"clustereval/internal/apps/gromacs"
	"clustereval/internal/apps/nemo"
	"clustereval/internal/apps/openifs"
	"clustereval/internal/apps/scaling"
	"clustereval/internal/apps/wrf"
	"clustereval/internal/bench/fpu"
	"clustereval/internal/bench/osu"
	"clustereval/internal/bench/stream"
	"clustereval/internal/experiment"
	"clustereval/internal/hpcg"
	"clustereval/internal/hpl"
	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/report"
	"clustereval/internal/toolchain"
	"clustereval/internal/units"
)

// Pair holds the two machines under evaluation. It embeds the registry's
// experiment.Pair, so the per-kind entry points (StreamSeries,
// HybridStreamSeries, AppSeries, MachineByName) are the registry's own —
// the figure renderers below add presentation, not wiring.
type Pair struct {
	experiment.Pair
}

// Default returns the paper's machine pair.
func Default() Pair {
	return Pair{experiment.DefaultPair()}
}

// WithSeed returns the paper's machine pair with an alternative noise seed
// plumbed into both machines' network descriptors; see
// experiment.PairWithSeed.
func WithSeed(seed uint64) Pair {
	return Pair{experiment.PairWithSeed(seed)}
}

// Figure1 runs the FPU µKernel and tabulates sustained performance per
// variant and machine.
func (p Pair) Figure1() (*report.Table, error) {
	bars, err := fpu.Figure1([]machine.Machine{p.Arm, p.Ref}, fpu.DefaultIterations)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Fig. 1: FPU µKernel sustained performance (one core)",
		Headers: []string{"Variant", "Machine", "Sustained", "Peak", "% of peak"},
	}
	for _, b := range bars {
		if !b.Supported {
			t.AddRow(b.Variant.Name(), b.Machine, "unsupported", "-", "-")
			continue
		}
		t.AddRow(b.Variant.Name(), b.Machine,
			b.Sustained.String(), b.Peak.String(), fmt.Sprintf("%.1f", b.PercentOfPeak))
	}
	return t, nil
}

// Figure2 sweeps STREAM Triad over OpenMP thread counts.
func (p Pair) Figure2() (*report.Plot, []stream.Series, error) {
	var all []stream.Series
	plot := &report.Plot{
		Title:  "Fig. 2: STREAM Triad bandwidth, OpenMP (spread binding)",
		XLabel: "threads", YLabel: "GB/s",
	}
	for _, cfg := range []struct {
		m    machine.Machine
		lang toolchain.Language
	}{
		{p.Arm, toolchain.C},
		{p.Arm, toolchain.Fortran},
		{p.Ref, toolchain.C},
		{p.Ref, toolchain.Fortran},
	} {
		s, err := p.StreamSeries(cfg.m.Name, cfg.lang)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, s)
		var xs, ys []float64
		for _, pt := range s.Points {
			xs = append(xs, float64(pt.Threads))
			ys = append(ys, pt.Bandwidth.GB())
		}
		plot.Series = append(plot.Series, report.Series{
			Name: fmt.Sprintf("%s %s (best %.1f GB/s @ %d)", s.Machine, s.Language, s.Best.Bandwidth.GB(), s.Best.Threads),
			X:    xs, Y: ys,
		})
	}
	return plot, all, nil
}

// Figure3 runs the hybrid MPI+OpenMP STREAM Triad.
func (p Pair) Figure3() (*report.Table, []stream.HybridSeries, error) {
	t := &report.Table{
		Title:   "Fig. 3: STREAM Triad bandwidth, MPI+OpenMP (1 rank per NUMA domain)",
		Headers: []string{"Machine", "Language", "Best config", "Bandwidth", "% of peak"},
	}
	var all []stream.HybridSeries
	for _, cfg := range []struct {
		m    machine.Machine
		lang toolchain.Language
	}{
		{p.Arm, toolchain.Fortran},
		{p.Arm, toolchain.C},
		{p.Ref, toolchain.Fortran},
		{p.Ref, toolchain.C},
	} {
		s, err := p.HybridStreamSeries(cfg.m.Name, cfg.lang)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, s)
		t.AddRow(s.Machine, s.Language.String(), s.Best.Label(),
			s.Best.Bandwidth.String(), fmt.Sprintf("%.0f", s.PercentOfPeak))
	}
	return t, all, nil
}

// Figure4 produces the all-pairs bandwidth heatmap of the CTE-Arm torus.
func (p Pair) Figure4(size units.Bytes) (*report.Heatmap, *osu.Heatmap, error) {
	fab, err := interconnect.NewTofuD(p.Arm, p.Arm.Nodes)
	if err != nil {
		return nil, nil, err
	}
	h, err := osu.Figure4(fab, size, osu.DefaultIterations)
	if err != nil {
		return nil, nil, err
	}
	vals := make([][]float64, h.Nodes())
	for s := range h.BW {
		vals[s] = make([]float64, h.Nodes())
		for r, bw := range h.BW[s] {
			vals[s][r] = bw.GB()
		}
	}
	hm := &report.Heatmap{
		Title:      fmt.Sprintf("Fig. 4: bandwidth of all node pairs (msg size %v)", size),
		Values:     vals,
		Downsample: 2,
	}
	return hm, h, nil
}

// Figure5 computes the bandwidth distribution across message sizes.
func (p Pair) Figure5() (*report.Table, *osu.Distribution, error) {
	fab, err := interconnect.NewTofuD(p.Arm, p.Arm.Nodes)
	if err != nil {
		return nil, nil, err
	}
	d, err := osu.Figure5(fab, 0, 24, 90, 4)
	if err != nil {
		return nil, nil, err
	}
	t := &report.Table{
		Title:   "Fig. 5: bandwidth distribution over all node pairs",
		Headers: []string{"Msg size", "Modes", "p95/p5 spread"},
	}
	for i, size := range d.Sizes {
		modes := len(d.Hist[i].Modes(0.12))
		t.AddRow(units.Bytes(size).String(), fmt.Sprint(modes),
			fmt.Sprintf("%.2fx", d.SpreadAt(i)))
	}
	return t, d, nil
}

// Figure6 sweeps HPL over node counts on both machines.
func (p Pair) Figure6() (*report.Plot, map[string][]hpl.Run, error) {
	plot := &report.Plot{
		Title:  "Fig. 6: Linpack scalability",
		XLabel: "nodes", YLabel: "GFlop/s",
		LogX: true, LogY: true,
	}
	out := map[string][]hpl.Run{}
	for _, m := range []machine.Machine{p.Arm, p.Ref} {
		runs, err := hpl.Figure6(m, 192)
		if err != nil {
			return nil, nil, err
		}
		out[m.Name] = runs
		var xs, ys []float64
		for _, r := range runs {
			xs = append(xs, float64(r.Nodes))
			ys = append(ys, r.Perf.Giga())
		}
		last := runs[len(runs)-1]
		plot.Series = append(plot.Series, report.Series{
			Name: fmt.Sprintf("%s (192 nodes: %.0f%% of peak)", m.Name, last.PercentOfPeak),
			X:    xs, Y: ys,
		})
	}
	return plot, out, nil
}

// Figure7 tabulates HPCG for both versions at 1 and 192 nodes.
func (p Pair) Figure7() (*report.Table, []hpcg.Run, error) {
	runs, err := hpcg.Figure7(p.Arm, p.Ref)
	if err != nil {
		return nil, nil, err
	}
	t := &report.Table{
		Title:   "Fig. 7: HPCG performance",
		Headers: []string{"Nodes", "Machine", "Version", "Performance", "% of peak"},
	}
	for _, r := range runs {
		t.AddRow(fmt.Sprint(r.Nodes), r.Machine, r.Version.String(),
			r.Perf.String(), fmt.Sprintf("%.2f", r.PercentOfPeak))
	}
	return t, runs, nil
}

// scalingPlot converts scaling series into a log-log plot.
func scalingPlot(title, ylabel string, series ...scaling.Series) *report.Plot {
	plot := &report.Plot{Title: title, XLabel: "nodes", YLabel: ylabel, LogX: true, LogY: true}
	for _, s := range series {
		name := s.Machine
		if s.Label != "" {
			name += " (" + s.Label + ")"
		}
		var xs, ys []float64
		for _, pt := range s.Sorted() {
			xs = append(xs, float64(pt.Nodes))
			ys = append(ys, float64(pt.Time))
		}
		plot.Series = append(plot.Series, report.Series{Name: name, X: xs, Y: ys})
	}
	return plot
}

// Figure8 returns Alya's time-step scalability.
func (p Pair) Figure8() (*report.Plot, error) {
	cte, ref, err := alya.Figure8(p.Arm, p.Ref)
	if err != nil {
		return nil, err
	}
	return scalingPlot("Fig. 8: Alya average time step [s]", "seconds", cte, ref), nil
}

// Figure9 returns Alya's Assembly-phase scalability.
func (p Pair) Figure9() (*report.Plot, error) {
	cte, ref, err := alya.Figure9(p.Arm, p.Ref)
	if err != nil {
		return nil, err
	}
	return scalingPlot("Fig. 9: Alya Assembly phase [s]", "seconds", cte, ref), nil
}

// Figure10 returns Alya's Solver-phase scalability.
func (p Pair) Figure10() (*report.Plot, error) {
	cte, ref, err := alya.Figure10(p.Arm, p.Ref)
	if err != nil {
		return nil, err
	}
	return scalingPlot("Fig. 10: Alya Solver phase [s]", "seconds", cte, ref), nil
}

// Figure11 returns NEMO's scalability.
func (p Pair) Figure11() (*report.Plot, error) {
	cte, ref, err := nemo.Figure11(p.Arm, p.Ref)
	if err != nil {
		return nil, err
	}
	return scalingPlot("Fig. 11: NEMO execution time [s]", "seconds", cte, ref), nil
}

// Figure12 returns Gromacs single-node scalability (days/ns vs cores).
func (p Pair) Figure12() (*report.Plot, error) {
	cte, ref, err := gromacs.Figure12(p.Arm, p.Ref)
	if err != nil {
		return nil, err
	}
	plot := scalingPlot("Fig. 12: Gromacs single node [days/ns]", "days/ns", cte, ref)
	plot.XLabel = "cores"
	return plot, nil
}

// Figure13 returns Gromacs multi-node scalability.
func (p Pair) Figure13() (*report.Plot, error) {
	cte, ref, err := gromacs.Figure13(p.Arm, p.Ref)
	if err != nil {
		return nil, err
	}
	return scalingPlot("Fig. 13: Gromacs across nodes [days/ns]", "days/ns", cte, ref), nil
}

// Figure14 returns OpenIFS single-node scalability (seconds/day vs ranks).
func (p Pair) Figure14() (*report.Plot, error) {
	cte, ref, err := openifs.Figure14(p.Arm, p.Ref)
	if err != nil {
		return nil, err
	}
	plot := scalingPlot("Fig. 14: OpenIFS TL255L91, one node [s/day]", "s/day", cte, ref)
	plot.XLabel = "ranks"
	return plot, nil
}

// Figure15 returns OpenIFS multi-node scalability.
func (p Pair) Figure15() (*report.Plot, error) {
	cte, ref, err := openifs.Figure15(p.Arm, p.Ref)
	if err != nil {
		return nil, err
	}
	return scalingPlot("Fig. 15: OpenIFS TC0511L91 across nodes [s/day]", "s/day", cte, ref), nil
}

// Figure16 returns WRF scalability with and without IO.
func (p Pair) Figure16() (*report.Plot, error) {
	series, err := wrf.Figure16(p.Arm, p.Ref)
	if err != nil {
		return nil, err
	}
	return scalingPlot("Fig. 16: WRF elapsed time [s]", "seconds", series...), nil
}
