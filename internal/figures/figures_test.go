package figures

import (
	"bytes"
	"strings"
	"testing"

	"clustereval/internal/report"
	"clustereval/internal/units"
)

func renderOK(t *testing.T, name string, render func(*bytes.Buffer) error, wants ...string) {
	t.Helper()
	var buf bytes.Buffer
	if err := render(&buf); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	out := buf.String()
	if len(out) == 0 {
		t.Fatalf("%s: empty output", name)
	}
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("%s: output missing %q", name, w)
		}
	}
}

func TestAllFiguresRender(t *testing.T) {
	p := Default()

	t1, err := p.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, "fig1", func(b *bytes.Buffer) error { return t1.Render(b) },
		"vector-double", "CTE-Arm", "unsupported")

	plot2, series2, err := p.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(series2) != 4 {
		t.Errorf("fig2: %d series, want 4", len(series2))
	}
	renderOK(t, "fig2", func(b *bytes.Buffer) error { return plot2.Render(b) }, "GB/s @ 24", "GB/s @ 48")

	t3, series3, err := p.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(series3) != 4 {
		t.Errorf("fig3: %d series", len(series3))
	}
	renderOK(t, "fig3", func(b *bytes.Buffer) error { return t3.Render(b) }, "4x12", "Fortran")

	hm, raw4, err := p.Figure4(256)
	if err != nil {
		t.Fatal(err)
	}
	if raw4.Nodes() != 192 {
		t.Errorf("fig4 heatmap over %d nodes", raw4.Nodes())
	}
	renderOK(t, "fig4", func(b *bytes.Buffer) error { return hm.Render(b) }, "scale:")

	t5, d5, err := p.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(d5.Sizes) != 25 {
		t.Errorf("fig5: %d sizes, want 25 (2^0..2^24)", len(d5.Sizes))
	}
	renderOK(t, "fig5", func(b *bytes.Buffer) error { return t5.Render(b) }, "Msg size")

	plot6, runs6, err := p.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs6["CTE-Arm"]) == 0 {
		t.Error("fig6: missing CTE-Arm runs")
	}
	renderOK(t, "fig6", func(b *bytes.Buffer) error { return plot6.Render(b) }, "85% of peak", "63% of peak")

	t7, runs7, err := p.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs7) != 8 {
		t.Errorf("fig7: %d runs", len(runs7))
	}
	renderOK(t, "fig7", func(b *bytes.Buffer) error { return t7.Render(b) }, "vanilla", "optimized")

	for name, f := range map[string]func() (*report.Plot, error){
		"fig8": p.Figure8, "fig9": p.Figure9, "fig10": p.Figure10,
		"fig11": p.Figure11, "fig12": p.Figure12, "fig13": p.Figure13,
		"fig14": p.Figure14, "fig15": p.Figure15, "fig16": p.Figure16,
	} {
		plot, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		renderOK(t, name, func(b *bytes.Buffer) error { return plot.Render(b) }, "CTE-Arm", "MareNostrum 4")
	}
}

func TestFigure4SizeIsConfigurable(t *testing.T) {
	p := Default()
	_, raw, err := p.Figure4(units.Bytes(64 * 1024))
	if err != nil {
		t.Fatal(err)
	}
	if raw.Size != units.Bytes(64*1024) {
		t.Errorf("size = %v", raw.Size)
	}
}
