package figures

import (
	"context"
	"fmt"

	"clustereval/internal/experiment"
	"clustereval/internal/machine"
	"clustereval/internal/report"
)

// energyWorkloads is the canonical workload set of the energy-to-solution
// figure: the node-level benchmarks plus the five Section V applications,
// mirroring the per-app energy comparison of the ThunderX2 study
// (arxiv 2007.04868). Benchmarks pin one node so machines of very
// different scale stay comparable; applications run their scalability
// sweep and report energy at the sweep's largest point.
var energyWorkloads = []struct {
	label string
	spec  experiment.Spec
}{
	{"STREAM Triad (best threads)", experiment.Spec{Kind: "stream"}},
	{"HPL (1 node)", experiment.Spec{Kind: "hpl", Nodes: 1}},
	{"HPCG optimized (1 node)", experiment.Spec{Kind: "hpcg", Nodes: 1}},
	{"Alya", experiment.Spec{Kind: "app", App: "alya"}},
	{"NEMO", experiment.Spec{Kind: "app", App: "nemo"}},
	{"Gromacs", experiment.Spec{Kind: "app", App: "gromacs"}},
	{"OpenIFS", experiment.Spec{Kind: "app", App: "openifs"}},
	{"WRF", experiment.Spec{Kind: "app", App: "wrf"}},
}

// EnergyToSolution tabulates modeled energy-to-solution for the canonical
// workload set across machine presets. Each cell carries kilojoules and
// the node count the energy was integrated over; a final row gives the
// single-node HPL energy-delay product, the metric the ThunderX2 study
// argues actually ranks Arm HPC systems. With no arguments, every
// registered preset is evaluated in slug order.
func EnergyToSolution(machines ...string) (*report.Table, error) {
	if len(machines) == 0 {
		machines = machine.PresetNames()
	}
	t := &report.Table{
		Title:   "Energy to solution by workload and machine (modeled)",
		Headers: append([]string{"Workload"}, machines...),
	}
	edpRow := []string{"HPL EDP [J*s]"}
	for _, w := range energyWorkloads {
		row := []string{w.label}
		for _, name := range machines {
			spec := w.spec
			spec.Machine = name
			res, err := experiment.Run(context.Background(), spec)
			if err != nil {
				return nil, fmt.Errorf("energy %s on %s: %w", w.spec.Kind, name, err)
			}
			if res.Energy == nil {
				row = append(row, "n/a")
				continue
			}
			row = append(row, fmt.Sprintf("%.4g kJ / %d nd", res.Energy.Joules/1e3, res.Energy.Nodes))
			if w.spec.Kind == "hpl" {
				edpRow = append(edpRow, fmt.Sprintf("%.4g", res.Energy.EDP))
			}
		}
		t.AddRow(row...)
	}
	if len(edpRow) == len(machines)+1 {
		t.AddRow(edpRow...)
	}
	return t, nil
}
