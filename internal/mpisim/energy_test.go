package mpisim

import (
	"testing"

	"clustereval/internal/machine"
	"clustereval/internal/units"
)

func TestWorldEnergy(t *testing.T) {
	m := machine.CTEArm()
	w := newTofuWorld(t, 4, 2)

	// Before any run the accounting is empty.
	if e := w.Energy(m, 0.5); e.Total() != 0 {
		t.Fatalf("energy before Run: %+v", e)
	}

	err := w.Run(func(c *Comm) {
		c.Compute(1e-3)
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	compute, comm := w.BusyTime()
	if compute < 4e-3 {
		t.Errorf("compute busy time = %v, want >= 4 rank-ms", compute)
	}
	if comm <= 0 {
		t.Errorf("comm busy time = %v, want > 0", comm)
	}

	e := w.Energy(m, 0.5)
	if e.Core <= 0 || e.Memory <= 0 || e.Network <= 0 || e.Base <= 0 {
		t.Fatalf("breakdown has a zero component: %+v", e)
	}
	// Two nodes for the elapsed window bound the total from both sides:
	// at least the idle floor, at most full load.
	elapsed := w.Elapsed()
	floor := 2 * float64(units.EnergyFor(m.NodePower(machine.Activity{}), elapsed))
	ceil := 2 * float64(units.EnergyFor(m.FullLoadPower(), elapsed))
	if got := float64(e.Total()); got < floor || got > ceil {
		t.Errorf("total %v outside [idle %v, full %v]", got, floor, ceil)
	}

	// A machine without a power layer yields zero, not garbage.
	var bare machine.Machine
	bare.Node = m.Node
	if e := w.Energy(bare, 0.5); e.Total() != 0 {
		t.Errorf("power-less machine produced energy: %+v", e)
	}
}
