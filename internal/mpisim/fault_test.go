package mpisim

import (
	"errors"
	"testing"

	"clustereval/internal/faultsim"
	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/units"
)

// faultedTofuWorld builds a TofuD world whose fabric carries the compiled
// fault model (nil spec = pristine cluster).
func faultedTofuWorld(t *testing.T, ranks, ranksPerNode int, spec *faultsim.Spec) *World {
	t.Helper()
	nodes := (ranks + ranksPerNode - 1) / ranksPerNode
	fabNodes := ((nodes + 11) / 12) * 12
	if fabNodes < 12 {
		fabNodes = 12
	}
	m := machine.CTEArm()
	model, err := spec.Compile(fabNodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Faults = model
	f, err := interconnect.NewTofuD(m, fabNodes)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(f, ranks, ranksPerNode)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestComputeSlowdown(t *testing.T) {
	const span = units.Seconds(1e-3)
	elapsed := func(spec *faultsim.Spec) units.Seconds {
		w := faultedTofuWorld(t, 1, 1, spec)
		if err := w.Run(func(c *Comm) { c.Compute(span) }); err != nil {
			t.Fatal(err)
		}
		return w.Elapsed()
	}

	base := elapsed(nil)
	slow := elapsed(&faultsim.Spec{Nodes: []faultsim.NodeFault{{Node: 0, Slowdown: 3}}})
	if got, want := float64(slow), 3*float64(base); got < want*0.999 || got > want*1.001 {
		t.Errorf("3x straggler: elapsed %v, want %v", slow, want)
	}
}

// TestZeroFaultBitIdentical is the metamorphic anchor: a fault spec with
// zero magnitude (slowdown exactly 1) must leave every timing bit-for-bit
// identical to the pristine run — not merely close.
func TestZeroFaultBitIdentical(t *testing.T) {
	run := func(spec *faultsim.Spec) units.Seconds {
		w := faultedTofuWorld(t, 8, 2, spec)
		if err := w.Run(func(c *Comm) {
			c.Compute(units.Seconds(1e-6))
			c.Allreduce([]float64{float64(c.Rank())}, OpSum, 8)
			c.Barrier()
		}); err != nil {
			t.Fatal(err)
		}
		return w.Elapsed()
	}
	base := run(nil)
	noop := run(&faultsim.Spec{
		Seed:  99, // must be ignored: no stochastic knobs set
		Nodes: []faultsim.NodeFault{{Node: 0, Slowdown: 1}, {Node: 1, Slowdown: 1}},
		Links: []faultsim.LinkFault{{Src: 0, Dst: 1, BandwidthFactor: 1}},
	})
	if base != noop {
		t.Errorf("zero-magnitude faults changed elapsed: %v != %v", noop, base)
	}
}

func TestFailedNodeAborts(t *testing.T) {
	w := faultedTofuWorld(t, 4, 1, &faultsim.Spec{
		Nodes: []faultsim.NodeFault{{Node: 2, Failed: true}},
	})
	err := w.Run(func(c *Comm) {
		c.Allreduce([]float64{1}, OpSum, 8)
	})
	if err == nil {
		t.Fatal("collective over a dead node succeeded")
	}
	var nf *faultsim.NodeFailedError
	if !errors.As(err, &nf) {
		t.Fatalf("error %v does not wrap *NodeFailedError", err)
	}
	if nf.Node != 2 {
		t.Errorf("failed node = %d, want 2", nf.Node)
	}
	if !faultsim.Retryable(err) {
		t.Error("node failure not classified Retryable")
	}
}

func TestScheduledFailure(t *testing.T) {
	spec := &faultsim.Spec{Nodes: []faultsim.NodeFault{{Node: 0, FailAtSeconds: 0.5}}}

	// A run finishing before the scheduled failure is untouched.
	w := faultedTofuWorld(t, 2, 1, spec)
	if err := w.Run(func(c *Comm) {
		c.Compute(units.Seconds(1e-3))
		c.Barrier()
	}); err != nil {
		t.Fatalf("run ending before the failure errored: %v", err)
	}

	// Computing past the failure time, the next operation on node 0 dies.
	w = faultedTofuWorld(t, 2, 1, spec)
	err := w.Run(func(c *Comm) {
		c.Compute(units.Seconds(1)) // sails past t=0.5
		c.Barrier()                 // rank 0 is on the dead node now
	})
	var nf *faultsim.NodeFailedError
	if !errors.As(err, &nf) || nf.Node != 0 {
		t.Fatalf("expected node 0 failure after t=0.5, got %v", err)
	}
	if nf.At != units.Seconds(0.5) {
		t.Errorf("failure time = %v, want 0.5", nf.At)
	}
}

func TestSendToDeadNodeAborts(t *testing.T) {
	w := faultedTofuWorld(t, 2, 1, &faultsim.Spec{
		Nodes: []faultsim.NodeFault{{Node: 1, Failed: true}},
	})
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, 1024, nil)
		} else {
			c.Recv(0, 0)
		}
	})
	var nf *faultsim.NodeFailedError
	if !errors.As(err, &nf) || nf.Node != 1 {
		t.Fatalf("expected node 1 failure, got %v", err)
	}
}

func TestLinkDegradationSlowsTransfer(t *testing.T) {
	// 1 MiB across a 10x-degraded 0->1 link must take measurably longer;
	// the reverse direction is untouched (link faults are directed).
	const size = units.Bytes(1 << 20)
	elapsed := func(spec *faultsim.Spec, src, dst int) units.Seconds {
		w := faultedTofuWorld(t, 2, 1, spec)
		if err := w.Run(func(c *Comm) {
			if c.Rank() == src {
				c.Send(dst, 0, size, nil)
			} else {
				c.Recv(src, 0)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return w.Elapsed()
	}
	spec := &faultsim.Spec{Links: []faultsim.LinkFault{{Src: 0, Dst: 1, BandwidthFactor: 0.1}}}

	base := elapsed(nil, 0, 1)
	degraded := elapsed(spec, 0, 1)
	if float64(degraded) < 2*float64(base) {
		t.Errorf("10x link degradation: elapsed %v vs base %v, want clearly slower", degraded, base)
	}
	// Reverse direction unaffected: bit-identical to the pristine run.
	if got, want := elapsed(spec, 1, 0), elapsed(nil, 1, 0); got != want {
		t.Errorf("reverse direction changed: %v != %v", got, want)
	}
}

func TestLinkExtraLatency(t *testing.T) {
	const extra = 5e-3 // huge against the µs-scale base latency
	elapsed := func(spec *faultsim.Spec) units.Seconds {
		w := faultedTofuWorld(t, 2, 1, spec)
		if err := w.Run(func(c *Comm) {
			if c.Rank() == 0 {
				c.Send(1, 0, 8, nil)
			} else {
				c.Recv(0, 0)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return w.Elapsed()
	}
	base := elapsed(nil)
	laggy := elapsed(&faultsim.Spec{Links: []faultsim.LinkFault{{Src: 0, Dst: 1, ExtraLatencySeconds: extra}}})
	if float64(laggy-base) < extra {
		t.Errorf("extra latency not applied: %v - %v < %v", laggy, base, extra)
	}
}

func TestStochasticFaultsDeterministic(t *testing.T) {
	spec := &faultsim.Spec{Seed: 77, OSNoise: 0.2}
	run := func() units.Seconds {
		w := faultedTofuWorld(t, 8, 2, spec)
		if err := w.Run(func(c *Comm) {
			c.Compute(units.Seconds(1e-4))
			c.Barrier()
		}); err != nil {
			t.Fatal(err)
		}
		return w.Elapsed()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed, different elapsed: %v != %v", a, b)
	}
	// OS noise can only slow the job down.
	basew := faultedTofuWorld(t, 8, 2, nil)
	if err := basew.Run(func(c *Comm) {
		c.Compute(units.Seconds(1e-4))
		c.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
	if a < basew.Elapsed() {
		t.Errorf("OS noise sped the job up: %v < %v", a, basew.Elapsed())
	}
}
