package mpisim

import (
	"context"
	"errors"
	"testing"

	"clustereval/internal/units"
)

// TestRunContextAbortsProgram cancels mid-program: the run must return an
// error wrapping context.Canceled instead of completing the message loop.
func TestRunContextAbortsProgram(t *testing.T) {
	w := newTofuWorld(t, 2, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	iterations := 0
	err := w.RunContext(ctx, func(c *Comm) {
		peer := 1 - c.Rank()
		for i := 0; i < 10000; i++ {
			c.Sendrecv(peer, 0, units.Bytes(256), nil, peer, 0)
			if c.Rank() == 0 {
				iterations = i + 1
				if i == 10 {
					cancel()
				}
			}
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if iterations >= 10000 {
		t.Error("program ran to completion despite cancellation")
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	w := newTofuWorld(t, 2, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := w.RunContext(ctx, func(c *Comm) {
		t.Error("program ran despite pre-cancelled context")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext(cancelled) = %v, want context.Canceled", err)
	}
}
