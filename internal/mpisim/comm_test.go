package mpisim

import (
	"math"
	"testing"

	"clustereval/internal/units"
)

func TestSplitEvenOdd(t *testing.T) {
	w := newTofuWorld(t, 9, 4)
	newRanks := make([]int, 9)
	newSizes := make([]int, 9)
	sums := make([]float64, 9)
	err := w.Run(func(c *Comm) {
		sub := c.Split(c.Rank()%2, c.Rank())
		if sub == nil {
			t.Errorf("rank %d got nil sub-communicator", c.Rank())
			return
		}
		newRanks[c.Rank()] = sub.Rank()
		newSizes[c.Rank()] = sub.Size()
		// A collective inside the sub-communicator sums only its members.
		sums[c.Rank()] = sub.AllreduceScalar(float64(c.Rank()), OpSum)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Evens: ranks 0,2,4,6,8 (size 5); odds: 1,3,5,7 (size 4).
	evenSum, oddSum := 0.0+2+4+6+8, 1.0+3+5+7
	for r := 0; r < 9; r++ {
		wantSize, wantSum := 5, evenSum
		if r%2 == 1 {
			wantSize, wantSum = 4, oddSum
		}
		if newSizes[r] != wantSize {
			t.Errorf("rank %d: sub size %d, want %d", r, newSizes[r], wantSize)
		}
		if sums[r] != wantSum {
			t.Errorf("rank %d: sub allreduce %v, want %v", r, sums[r], wantSum)
		}
		if newRanks[r] != r/2 {
			t.Errorf("rank %d: new rank %d, want %d", r, newRanks[r], r/2)
		}
	}
}

func TestSplitKeyOrdering(t *testing.T) {
	// Reversed keys reverse the rank order within the new communicator.
	w := newTofuWorld(t, 4, 4)
	newRanks := make([]int, 4)
	err := w.Run(func(c *Comm) {
		sub := c.Split(0, -c.Rank())
		newRanks[c.Rank()] = sub.Rank()
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if newRanks[r] != 3-r {
			t.Errorf("rank %d: new rank %d, want %d", r, newRanks[r], 3-r)
		}
	}
}

func TestSplitUndefined(t *testing.T) {
	w := newTofuWorld(t, 4, 4)
	err := w.Run(func(c *Comm) {
		color := 0
		if c.Rank() == 3 {
			color = UndefinedColor
		}
		sub := c.Split(color, 0)
		if c.Rank() == 3 {
			if sub != nil {
				t.Error("UndefinedColor should yield nil")
			}
			return
		}
		if sub.Size() != 3 {
			t.Errorf("sub size %d, want 3", sub.Size())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitIsolation(t *testing.T) {
	// Point-to-point in a sub-communicator must not match world traffic
	// with the same (source, tag).
	w := newTofuWorld(t, 4, 4)
	got := make([]float64, 4)
	err := w.Run(func(c *Comm) {
		sub := c.Split(c.Rank()/2, c.Rank()) // {0,1} and {2,3}
		switch sub.Rank() {
		case 0:
			// World rank 0 sends on the world comm; sub rank 0 sends on sub.
			if c.Rank() == 0 {
				c.Send(1, 5, 64, []float64{100}) // world send to world rank 1
			}
			sub.Send(1, 5, 64, []float64{float64(10 + c.Rank())})
		case 1:
			// Receive on the sub-communicator first: must get the sub
			// message even though a world message with same tag may exist.
			msg := sub.Recv(0, 5)
			got[c.Rank()] = msg.Payload.([]float64)[0]
			if c.Rank() == 1 {
				c.Recv(0, 5) // drain the world message
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 10 {
		t.Errorf("sub {0,1}: rank 1 got %v, want 10 (not the world message)", got[1])
	}
	if got[3] != 12 {
		t.Errorf("sub {2,3}: rank 3 got %v, want 12", got[3])
	}
}

func TestNestedSplit(t *testing.T) {
	w := newTofuWorld(t, 8, 4)
	sizes := make([]int, 8)
	err := w.Run(func(c *Comm) {
		half := c.Split(c.Rank()/4, c.Rank())   // two groups of 4
		quarter := half.Split(half.Rank()/2, 0) // four groups of 2
		sizes[c.Rank()] = quarter.Size()
		if got := quarter.AllreduceScalar(1, OpSum); got != 2 {
			t.Errorf("rank %d: nested allreduce %v, want 2", c.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range sizes {
		if s != 2 {
			t.Errorf("rank %d: nested size %d, want 2", r, s)
		}
	}
}

func TestGlobalRankMapping(t *testing.T) {
	w := newTofuWorld(t, 6, 3)
	err := w.Run(func(c *Comm) {
		sub := c.Split(c.Rank()%3, 0)
		if sub.GlobalRank() != c.Rank() {
			t.Errorf("global rank %d != world rank %d", sub.GlobalRank(), c.Rank())
		}
		if sub.Node() != c.Node() {
			t.Error("node changed across Split")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScan(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8, 13} {
		w := newTofuWorld(t, p, 4)
		results := make([]float64, p)
		err := w.Run(func(c *Comm) {
			results[c.Rank()] = c.Scan([]float64{float64(c.Rank() + 1)}, OpSum, 8)[0]
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for r, got := range results {
			want := float64((r + 1) * (r + 2) / 2) // 1+2+...+(r+1)
			if got != want {
				t.Errorf("p=%d rank %d: scan = %v, want %v", p, r, got, want)
			}
		}
	}
}

func TestScanMax(t *testing.T) {
	w := newTofuWorld(t, 6, 3)
	vals := []float64{3, 1, 4, 1, 5, 2}
	results := make([]float64, 6)
	err := w.Run(func(c *Comm) {
		results[c.Rank()] = c.Scan([]float64{vals[c.Rank()]}, OpMax, 8)[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 3, 4, 4, 5, 5}
	for r := range want {
		if results[r] != want[r] {
			t.Errorf("rank %d: running max %v, want %v", r, results[r], want[r])
		}
	}
}

func TestReduceScatter(t *testing.T) {
	for _, p := range []int{1, 2, 4, 6} {
		w := newTofuWorld(t, p, 4)
		results := make([][]float64, p)
		err := w.Run(func(c *Comm) {
			blocks := make([][]float64, p)
			for i := range blocks {
				blocks[i] = []float64{float64(c.Rank()*100 + i), 1}
			}
			results[c.Rank()] = c.ReduceScatter(blocks, OpSum, 8)
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for r, res := range results {
			// sum over ranks s of (s*100 + r).
			want := 100.0*float64(p*(p-1))/2 + float64(r*p)
			if math.Abs(res[0]-want) > 1e-12 || res[1] != float64(p) {
				t.Errorf("p=%d rank %d: reduce-scatter %v, want [%v %v]", p, r, res, want, p)
			}
		}
	}
}

func TestReduceScatterPanicsOnArity(t *testing.T) {
	w := newTofuWorld(t, 2, 2)
	err := w.Run(func(c *Comm) {
		defer func() {
			if recover() == nil {
				t.Error("wrong block count accepted")
			}
			// Unblock the partner so the run does not deadlock: send what
			// it expects.
			panic("rethrow") // propagate to the engine as a controlled failure
		}()
		c.ReduceScatter([][]float64{{1}}, OpSum, 8)
	})
	if err == nil {
		t.Error("expected engine error from panicking ranks")
	}
}

func TestInjectionLimitsSerializeSends(t *testing.T) {
	// 12 ranks on one node all blocking-send a large message to ranks on
	// another node. With 6 injection links the sends proceed in two waves;
	// without limits they all overlap.
	elapsed := func(links int) units.Seconds {
		w := newTofuWorld(t, 24, 12)
		if links > 0 {
			if err := w.EnableInjectionLimits(links); err != nil {
				t.Fatal(err)
			}
		}
		err := w.Run(func(c *Comm) {
			const size = units.Bytes(8 * units.MiB)
			if c.Rank() < 12 {
				c.Send(c.Rank()+12, 0, size, nil)
			} else {
				c.Recv(c.Rank()-12, 0)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Elapsed()
	}
	unlimited := elapsed(0)
	sixLinks := elapsed(6)
	oneLink := elapsed(1)
	if sixLinks < units.Seconds(1.7)*unlimited {
		t.Errorf("6 links should roughly double the makespan: %v vs %v", sixLinks, unlimited)
	}
	if oneLink < units.Seconds(5)*sixLinks {
		t.Errorf("1 link should serialize far beyond 6 links: %v vs %v", oneLink, sixLinks)
	}
}

func TestInjectionLimitsValidation(t *testing.T) {
	w := newTofuWorld(t, 2, 2)
	if err := w.EnableInjectionLimits(0); err == nil {
		t.Error("zero links accepted")
	}
}

func TestSubCommTimingStillPhysical(t *testing.T) {
	// Messages inside a sub-communicator still pay real network costs.
	w := newTofuWorld(t, 4, 1) // one rank per node
	var elapsed units.Seconds
	err := w.Run(func(c *Comm) {
		sub := c.Split(c.Rank()%2, 0)
		start := c.Now()
		if sub.Rank() == 0 {
			sub.Send(1, 0, units.Bytes(1*units.MiB), nil)
		} else {
			sub.Recv(0, 0)
			if c.Rank() == 2 || c.Rank() == 3 {
				elapsed = c.Now() - start
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 MiB at 6.8 GB/s is ~154 us minimum.
	if elapsed < units.Seconds(100e-6) {
		t.Errorf("sub-communicator transfer too fast: %v", elapsed)
	}
}
