package mpisim

import (
	"fmt"

	"clustereval/internal/units"
)

// Collective tags live in a reserved negative range so user point-to-point
// traffic (tags >= 0) can never match collective traffic.
const (
	tagBarrier = -100 - iota
	tagBcast
	tagReduce
	tagAllreduce
	tagAllgather
	tagAlltoall
	tagGather
	tagScan
	tagReduceScatter
)

// Op is a reduction operator over float64 vectors.
type Op func(dst, src []float64)

// cloned returns a private copy of xs. Reduction collectives mutate their
// accumulator in place after sending it, and a simulated message may be
// received (in virtual time) after that mutation — so every send must ship
// a snapshot, exactly as a real MPI implementation copies or fences the
// user buffer.
func cloned(xs []float64) []float64 { return append([]float64(nil), xs...) }

// OpSum accumulates src into dst element-wise.
func OpSum(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// OpMax keeps the element-wise maximum in dst.
func OpMax(dst, src []float64) {
	for i := range dst {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

// OpMin keeps the element-wise minimum in dst.
func OpMin(dst, src []float64) {
	for i := range dst {
		if src[i] < dst[i] {
			dst[i] = src[i]
		}
	}
}

// Barrier blocks until every rank has entered it. It uses the dissemination
// algorithm: ceil(log2 p) rounds of paired messages.
func (c *Comm) Barrier() {
	p := c.Size()
	if p == 1 {
		return
	}
	const probe = units.Bytes(8)
	for dist := 1; dist < p; dist *= 2 {
		dst := (c.rank + dist) % p
		src := (c.rank - dist + p) % p
		req := c.Isend(dst, tagBarrier, probe, nil)
		c.Recv(src, tagBarrier)
		c.Wait(req)
	}
}

// Bcast broadcasts payload (of the given size) from root using a binomial
// tree and returns the payload on every rank.
func (c *Comm) Bcast(root int, bytes units.Bytes, payload interface{}) interface{} {
	p := c.Size()
	if p == 1 {
		return payload
	}
	if root < 0 || root >= p {
		panic(fmt.Sprintf("mpisim: Bcast root %d out of range", root))
	}
	// Rotate so the root is virtual rank 0. In the binomial tree, a
	// non-root virtual rank receives from its parent (vrank minus its
	// lowest set bit) and then serves the subtrees below that bit.
	vrank := (c.rank - root + p) % p
	if vrank != 0 {
		parent := vrank - (vrank & -vrank)
		msg := c.Recv((parent+root)%p, tagBcast)
		payload = msg.Payload
		bytes = msg.Bytes
	}
	mask := 1
	for mask < p {
		mask <<= 1
	}
	mask >>= 1
	limit := vrank & (-vrank)
	if vrank == 0 {
		limit = mask << 1
	}
	for m := mask; m >= 1; m >>= 1 {
		if m >= limit {
			continue
		}
		child := vrank + m
		if child < p {
			c.Send((child+root)%p, tagBcast, bytes, payload)
		}
	}
	return payload
}

// Reduce combines each rank's vector with op onto root. Every rank must pass
// a vector of equal length; the reduced vector is returned on root (other
// ranks get nil). bytesPer is the modelled wire size per element.
func (c *Comm) Reduce(root int, data []float64, op Op, bytesPer units.Bytes) []float64 {
	p := c.Size()
	acc := append([]float64(nil), data...)
	if p == 1 {
		return acc
	}
	vrank := (c.rank - root + p) % p
	size := units.Bytes(float64(bytesPer) * float64(len(data)))
	// Binomial tree reduction toward virtual rank 0.
	for m := 1; m < p; m <<= 1 {
		if vrank&m != 0 {
			c.Send((vrank-m+root)%p, tagReduce, size, cloned(acc))
			return nil
		}
		partner := vrank + m
		if partner < p {
			msg := c.Recv((partner+root)%p, tagReduce)
			op(acc, msg.Payload.([]float64))
		}
	}
	return acc
}

// Allreduce combines every rank's vector with op and returns the result on
// all ranks, via recursive doubling with a pre-fold for non-power-of-two
// rank counts (the Rabenseifner small-vector scheme).
func (c *Comm) Allreduce(data []float64, op Op, bytesPer units.Bytes) []float64 {
	p := c.Size()
	acc := append([]float64(nil), data...)
	if p == 1 {
		return acc
	}
	size := units.Bytes(float64(bytesPer) * float64(len(data)))

	// Largest power of two <= p.
	pof2 := 1
	for pof2*2 <= p {
		pof2 *= 2
	}
	rem := p - pof2

	// Fold the remainder: ranks [pof2, p) send to [0, rem) and sit out.
	newRank := -1
	switch {
	case c.rank >= pof2:
		c.Send(c.rank-pof2, tagAllreduce, size, cloned(acc))
	case c.rank < rem:
		msg := c.Recv(c.rank+pof2, tagAllreduce)
		op(acc, msg.Payload.([]float64))
		newRank = c.rank
	default:
		newRank = c.rank
	}

	if newRank >= 0 {
		for m := 1; m < pof2; m <<= 1 {
			partner := newRank ^ m
			msg := c.Sendrecv(partner, tagAllreduce, size, cloned(acc), partner, tagAllreduce)
			op(acc, msg.Payload.([]float64))
		}
	}

	// Unfold: ranks [0, rem) return results to [pof2, p).
	if c.rank < rem {
		c.Send(c.rank+pof2, tagAllreduce, size, cloned(acc))
	} else if c.rank >= pof2 {
		msg := c.Recv(c.rank-pof2, tagAllreduce)
		acc = msg.Payload.([]float64)
	}
	return acc
}

// AllreduceScalar reduces a single float64 with op on all ranks.
func (c *Comm) AllreduceScalar(x float64, op Op) float64 {
	return c.Allreduce([]float64{x}, op, 8)[0]
}

// Allgather collects each rank's vector onto every rank, concatenated in
// rank order, using the ring algorithm (p-1 steps of neighbour exchange).
func (c *Comm) Allgather(data []float64, bytesPer units.Bytes) [][]float64 {
	p := c.Size()
	out := make([][]float64, p)
	out[c.rank] = append([]float64(nil), data...)
	if p == 1 {
		return out
	}
	size := units.Bytes(float64(bytesPer) * float64(len(data)))
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	// In step s we forward the block that originated at rank - s.
	for s := 0; s < p-1; s++ {
		blk := (c.rank - s + p) % p
		msg := c.Sendrecv(right, tagAllgather, size, out[blk], left, tagAllgather)
		from := (c.rank - s - 1 + p) % p
		out[from] = msg.Payload.([]float64)
	}
	return out
}

// Alltoall exchanges blocks[i] with every rank i (blocks has one entry per
// rank) using pairwise exchange, and returns the received blocks in rank
// order. The wire size of each block is bytesPer * len(block).
func (c *Comm) Alltoall(blocks [][]float64, bytesPer units.Bytes) [][]float64 {
	p := c.Size()
	if len(blocks) != p {
		panic(fmt.Sprintf("mpisim: Alltoall needs %d blocks, got %d", p, len(blocks)))
	}
	out := make([][]float64, p)
	out[c.rank] = blocks[c.rank]
	for step := 1; step < p; step++ {
		// Rotation schedule: in step s, send the block destined for
		// rank+s while receiving from rank-s. Works for any p.
		sendTo := (c.rank + step) % p
		recvFrom := (c.rank - step + p) % p
		sendBlk := blocks[sendTo]
		size := units.Bytes(float64(bytesPer) * float64(len(sendBlk)))
		msg := c.Sendrecv(sendTo, tagAlltoall, size, sendBlk, recvFrom, tagAlltoall)
		out[recvFrom] = msg.Payload.([]float64)
	}
	return out
}

// Scan computes the inclusive prefix reduction: rank r receives
// op(data_0, ..., data_r), via the binomial up-chain (each rank receives
// from rank - 2^k partners below it).
func (c *Comm) Scan(data []float64, op Op, bytesPer units.Bytes) []float64 {
	p := c.Size()
	acc := append([]float64(nil), data...)
	if p == 1 {
		return acc
	}
	size := units.Bytes(float64(bytesPer) * float64(len(data)))
	// Hillis-Steele: at step 2^k, rank r sends its running value to r+2^k
	// and receives from r-2^k. The received value covers exactly the
	// prefix below the sender, so the result is the inclusive prefix.
	for d := 1; d < p; d <<= 1 {
		var req *Request
		if c.rank+d < p {
			req = c.Isend(c.rank+d, tagScan, size, cloned(acc))
		}
		if c.rank-d >= 0 {
			msg := c.Recv(c.rank-d, tagScan)
			op(acc, msg.Payload.([]float64))
		}
		if req != nil {
			c.Wait(req)
		}
	}
	return acc
}

// ReduceScatter reduces blocks (one per rank, all the same length) with op
// and scatters the results: rank r receives the reduction of every rank's
// blocks[r]. Implemented as reduce-to-root plus scatter via point-to-point,
// the simple algorithm small vectors use.
func (c *Comm) ReduceScatter(blocks [][]float64, op Op, bytesPer units.Bytes) []float64 {
	p := c.Size()
	if len(blocks) != p {
		panic(fmt.Sprintf("mpisim: ReduceScatter needs %d blocks, got %d", p, len(blocks)))
	}
	// Flatten, reduce onto rank 0, then scatter the slices.
	flat := make([]float64, 0, p*len(blocks[0]))
	for _, blk := range blocks {
		flat = append(flat, blk...)
	}
	blockLen := len(blocks[0])
	reduced := c.Reduce(0, flat, op, bytesPer)
	size := units.Bytes(float64(bytesPer) * float64(blockLen))
	if c.rank == 0 {
		for r := 1; r < p; r++ {
			c.Send(r, tagReduceScatter, size, cloned(reduced[r*blockLen:(r+1)*blockLen]))
		}
		return reduced[:blockLen]
	}
	msg := c.Recv(0, tagReduceScatter)
	return msg.Payload.([]float64)
}

// Gather collects each rank's vector onto root in rank order; non-root
// ranks receive nil.
func (c *Comm) Gather(root int, data []float64, bytesPer units.Bytes) [][]float64 {
	p := c.Size()
	size := units.Bytes(float64(bytesPer) * float64(len(data)))
	if c.rank != root {
		c.Send(root, tagGather, size, append([]float64(nil), data...))
		return nil
	}
	out := make([][]float64, p)
	out[root] = append([]float64(nil), data...)
	for i := 0; i < p-1; i++ {
		msg := c.Recv(AnySource, tagGather)
		out[msg.Source] = msg.Payload.([]float64)
	}
	return out
}
