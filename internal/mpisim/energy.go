package mpisim

import (
	"clustereval/internal/machine"
	"clustereval/internal/units"
)

// Energy integrates m's power model over the last Run: the job occupies
// the distinct nodes of the placement for the elapsed virtual time, with
// the ranks' accumulated Compute spans setting the compute-pipe activity
// and the caller estimating memory-bandwidth utilisation (the simulator
// prices messages, not cache misses). The NIC rail draws whenever the
// ranks spent time in communication. Returns a zero breakdown when m has
// no power layer or the world has not run.
func (w *World) Energy(m machine.Machine, memBWFrac float64) machine.EnergyBreakdown {
	if w.elapsed <= 0 || !m.Power.Defined() {
		return machine.EnergyBreakdown{}
	}
	seen := make(map[int]bool, len(w.rankNode))
	for _, n := range w.rankNode {
		seen[n] = true
	}
	nodes := len(seen)
	ranksPerNode := (w.ranks + nodes - 1) / nodes

	// Compute fraction: busy compute time over the ranks' total
	// wall-clock budget. Blocking communication keeps the core out of
	// the FP pipes, so it draws at the idle-core rail, not the active one.
	frac := float64(w.compute) / (float64(w.elapsed) * float64(w.ranks))

	isa := machine.ISAScalar
	if v := m.Node.Core.BestVector(machine.Double); v != nil {
		isa = v.ISA
	}
	a := machine.Activity{
		ActiveCores: ranksPerNode,
		ISA:         isa,
		ComputeFrac: frac,
		MemBWFrac:   memBWFrac,
		Network:     w.comm > 0,
	}
	return m.NodeEnergy(a, w.elapsed).Scale(float64(nodes))
}

// BusyTime returns the accumulated (compute, communication) rank-seconds
// of the last Run.
func (w *World) BusyTime() (compute, comm units.Seconds) {
	return w.compute, w.comm
}
