// Package mpisim is a simulated MPI runtime. Rank programs are ordinary Go
// functions that call Send/Recv/collectives on a Comm handle; they execute
// as discrete-event processes (internal/des), and every message is priced by
// the interconnect cost model, so a program's elapsed *virtual* time is the
// prediction of its communication behaviour on the modelled cluster, while
// its payloads move for real — solvers running on mpisim compute correct
// numerical results.
//
// Semantics follow MPI where it matters to the reproduction: blocking
// standard-mode sends, non-overtaking point-to-point ordering per (source,
// destination) pair, tag matching with wildcards, and collectives built from
// the textbook algorithms (binomial trees, recursive doubling, ring,
// pairwise exchange) so their cost scales as the real implementations do.
package mpisim

import (
	"context"
	"fmt"

	"clustereval/internal/des"
	"clustereval/internal/faultsim"
	"clustereval/internal/interconnect"
	"clustereval/internal/trace"
	"clustereval/internal/units"
	"clustereval/internal/xrand"
	"sort"
)

// AnySource matches any sending rank in Recv.
const AnySource = -1

// AnyTag matches any message tag in Recv.
const AnyTag = -1

// Message is a delivered point-to-point message.
type Message struct {
	Source  int
	Tag     int
	Bytes   units.Bytes
	Payload interface{}
}

// pending is a message sitting in a destination mailbox, possibly still in
// flight (readyAt in the future).
type pending struct {
	msg     Message
	ctx     uint64 // communicator context: messages never match across comms
	readyAt units.Seconds
}

// World is one simulated MPI job: a set of ranks placed on cluster nodes.
type World struct {
	eng      *des.Engine
	fabric   *interconnect.Fabric
	ranks    int
	rankNode []int
	rankName []string // "rank<r>", built once; Run re-spawns every rank per call

	mailbox  [][]pending
	newMail  []*des.Cond
	trial    []uint64 // per-rank message counter decorrelating noise
	overhead units.Seconds

	elapsed  units.Seconds
	recorder *trace.Recorder
	// compute and comm accumulate the ranks' busy time across the last
	// Run: every Compute span and every blocking communication span adds
	// its duration. Energy integrates the power model over them.
	compute units.Seconds
	comm    units.Seconds
	// faults is the fabric's injected fault scenario (nil = none): Compute
	// spans scale by the per-node slowdown, and any operation touching a
	// failed node aborts the run with a typed *faultsim.NodeFailedError.
	faults *faultsim.Model
	// injection, when non-nil, holds one DES resource per node whose
	// capacity is the node's injection-link count: concurrent blocking
	// sends from ranks of one node then serialize once the links are
	// saturated.
	injection []*des.Resource
}

// EnableInjectionLimits turns on per-node injection contention: a node has
// only Network.InjectionLinks concurrent send ports (6 TNIs on TofuD, one
// on OmniPath), so blocking sends beyond that queue. Call before Run.
func (w *World) EnableInjectionLimits(links int) error {
	if links <= 0 {
		return fmt.Errorf("mpisim: injection links must be positive, got %d", links)
	}
	w.injection = make([]*des.Resource, w.fabric.Topo.Nodes())
	for n := range w.injection {
		w.injection[n] = w.eng.NewResource(fmt.Sprintf("inject[%d]", n), links)
	}
	return nil
}

// AttachRecorder enables POP-style tracing: every Compute span and every
// blocking communication span of every rank is recorded. Pass nil to
// detach. The recorder must cover at least Size() ranks.
func (w *World) AttachRecorder(r *trace.Recorder) error {
	if r != nil && r.Ranks() < w.ranks {
		return fmt.Errorf("mpisim: recorder covers %d ranks, world has %d", r.Ranks(), w.ranks)
	}
	w.recorder = r
	return nil
}

// NewWorld creates a world of ranks placed block-wise onto the fabric's
// nodes: rank r runs on node r/ranksPerNode. It returns an error when the
// ranks do not fit the fabric.
func NewWorld(fabric *interconnect.Fabric, ranks, ranksPerNode int) (*World, error) {
	if ranks <= 0 || ranksPerNode <= 0 {
		return nil, fmt.Errorf("mpisim: need positive ranks (%d) and ranksPerNode (%d)", ranks, ranksPerNode)
	}
	nodesNeeded := (ranks + ranksPerNode - 1) / ranksPerNode
	if nodesNeeded > fabric.Topo.Nodes() {
		return nil, fmt.Errorf("mpisim: %d ranks at %d/node need %d nodes, fabric has %d",
			ranks, ranksPerNode, nodesNeeded, fabric.Topo.Nodes())
	}
	placement := make([]int, ranks)
	for r := range placement {
		placement[r] = r / ranksPerNode
	}
	return NewWorldPlaced(fabric, placement)
}

// NewWorldPlaced creates a world with an explicit rank→node placement.
func NewWorldPlaced(fabric *interconnect.Fabric, rankNode []int) (*World, error) {
	if len(rankNode) == 0 {
		return nil, fmt.Errorf("mpisim: empty placement")
	}
	for r, n := range rankNode {
		if n < 0 || n >= fabric.Topo.Nodes() {
			return nil, fmt.Errorf("mpisim: rank %d placed on node %d, fabric has %d nodes",
				r, n, fabric.Topo.Nodes())
		}
	}
	w := &World{
		eng:      des.New(),
		fabric:   fabric,
		ranks:    len(rankNode),
		rankNode: append([]int(nil), rankNode...),
		mailbox:  make([][]pending, len(rankNode)),
		newMail:  make([]*des.Cond, len(rankNode)),
		trial:    make([]uint64, len(rankNode)),
		overhead: units.Seconds(0.15e-6), // local send/recv software overhead
		faults:   fabric.Faults,
	}
	for r := range w.newMail {
		w.newMail[r] = w.eng.NewCond(fmt.Sprintf("mailbox[%d]", r))
	}
	w.rankName = make([]string, len(rankNode))
	for r := range w.rankName {
		w.rankName[r] = fmt.Sprintf("rank%d", r)
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.ranks }

// NodeOf returns the node hosting rank r.
func (w *World) NodeOf(r int) int { return w.rankNode[r] }

// Elapsed returns the virtual time the last Run took.
func (w *World) Elapsed() units.Seconds { return w.elapsed }

// Run executes program once per rank and drives the simulation to
// completion. It returns the engine's error (deadlock, panic) if any; when
// fault injection fails a node mid-run, the error wraps a
// *faultsim.NodeFailedError recoverable with errors.As.
func (w *World) Run(program func(c *Comm)) error {
	return w.RunContext(context.Background(), program)
}

// RunContext is Run under a context: the DES event loop checks ctx
// between event steps, so a deadline or cancellation aborts the
// simulation promptly mid-run — clusterd's per-job deadlines interrupt a
// running collective, not just the boundary between retry attempts. An
// aborted run's error wraps ctx.Err(); Elapsed reports virtual time up
// to the abort.
func (w *World) RunContext(ctx context.Context, program func(c *Comm)) error {
	start := w.eng.Now()
	w.compute, w.comm = 0, 0
	for r := 0; r < w.ranks; r++ {
		r := r
		comm := &Comm{w: w, rank: r}
		comm.proc = w.eng.Spawn(w.rankName[r], func(p *des.Proc) {
			comm.proc = p
			program(comm)
		})
	}
	err := w.eng.RunContext(ctx)
	w.elapsed = w.eng.Now() - start
	return err
}

// Comm is the per-rank communicator handle passed to rank programs. The
// handle a program receives from Run is the world communicator; Split
// derives sub-communicators, like MPI_Comm_split.
type Comm struct {
	w    *World
	rank int // rank within this communicator
	proc *des.Proc
	rng  *xrand.Rand

	ctx    uint64 // communicator context id (0 = world)
	group  []int  // global ranks of the members; nil = identity (world)
	splits int    // Split calls issued on this communicator
}

// Rank returns the calling rank within this communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in this communicator.
func (c *Comm) Size() int {
	if c.group == nil {
		return c.w.ranks
	}
	return len(c.group)
}

// global maps a communicator-local rank to a world rank.
func (c *Comm) global(r int) int {
	if c.group == nil {
		return r
	}
	return c.group[r]
}

// GlobalRank returns this process's rank in the world communicator.
func (c *Comm) GlobalRank() int { return c.global(c.rank) }

// Node returns the node index hosting this rank.
func (c *Comm) Node() int { return c.w.rankNode[c.GlobalRank()] }

// Now returns the current virtual time.
func (c *Comm) Now() units.Seconds { return c.proc.Now() }

// Rand returns this rank's deterministic random stream.
func (c *Comm) Rand() *xrand.Rand {
	if c.rng == nil {
		c.rng = xrand.New(xrand.MixN(0xc0117, uint64(c.GlobalRank())))
	}
	return c.rng
}

// record accumulates the span into the world's energy accounting and
// emits it to the attached recorder, if any.
func (c *Comm) record(kind trace.Kind, start units.Seconds) {
	if d := c.Now() - start; d > 0 {
		if kind == trace.Compute {
			c.w.compute += d
		} else {
			c.w.comm += d
		}
	}
	if rec := c.w.recorder; rec != nil {
		// Ranks and times are valid by construction; ignore the error.
		_ = rec.Record(c.GlobalRank(), kind, start, c.Now())
	}
}

// failIfDown aborts the run with a typed *faultsim.NodeFailedError when the
// given node has failed by the current sim-time. The panic is recovered by
// the DES engine and surfaces as World.Run's error; failure is observed
// lazily, at the next operation touching the dead node, like a real MPI job
// discovering a peer is gone only when it communicates.
func (c *Comm) failIfDown(node int) {
	if at, ok := c.w.faults.FailTime(node); ok && c.Now() >= at {
		panic(&faultsim.NodeFailedError{Node: node, At: at})
	}
}

// Compute advances this rank's clock by d, modelling local computation.
// Injected per-node slowdown (OS noise, straggler nodes) scales the span.
func (c *Comm) Compute(d units.Seconds) {
	c.failIfDown(c.Node())
	if f := c.w.faults.Slowdown(c.Node()); f != 1 {
		d = units.Seconds(float64(d) * f)
	}
	start := c.Now()
	c.proc.Delay(d)
	c.record(trace.Compute, start)
}

// Send performs a blocking standard-mode send: the caller is occupied for
// the full wire time and the message becomes visible to the receiver when
// it lands.
func (c *Comm) Send(dst, tag int, bytes units.Bytes, payload interface{}) {
	start := c.Now()
	if inj := c.w.injection; inj != nil {
		// Queue for one of the node's injection links for the duration of
		// the wire transfer.
		port := inj[c.Node()]
		port.Acquire(c.proc)
		defer port.Release()
	}
	t := c.transitTime(dst, bytes)
	c.deliver(dst, tag, bytes, payload, c.Now()+t)
	c.proc.Delay(t)
	c.record(trace.Comm, start)
}

// Request represents an outstanding non-blocking operation.
type Request struct {
	readyAt units.Seconds
}

// Isend starts a non-blocking send. The caller pays only the software
// overhead; the transfer itself completes in the background at the returned
// request's ready time.
func (c *Comm) Isend(dst, tag int, bytes units.Bytes, payload interface{}) *Request {
	start := c.Now()
	t := c.transitTime(dst, bytes)
	ready := c.Now() + t
	c.deliver(dst, tag, bytes, payload, ready)
	c.proc.Delay(c.w.overhead)
	c.record(trace.Comm, start)
	return &Request{readyAt: ready}
}

// Wait blocks until the request's transfer has completed.
func (c *Comm) Wait(r *Request) {
	if d := r.readyAt - c.Now(); d > 0 {
		start := c.Now()
		c.proc.Delay(d)
		c.record(trace.Comm, start)
	}
}

// WaitAll waits for every request.
func (c *Comm) WaitAll(rs []*Request) {
	var latest units.Seconds
	for _, r := range rs {
		if r.readyAt > latest {
			latest = r.readyAt
		}
	}
	if d := latest - c.Now(); d > 0 {
		start := c.Now()
		c.proc.Delay(d)
		c.record(trace.Comm, start)
	}
}

// transitTime prices one message from this rank to local rank dst.
func (c *Comm) transitTime(dst int, bytes units.Bytes) units.Seconds {
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("mpisim: rank %d sends to invalid rank %d", c.rank, dst))
	}
	c.failIfDown(c.Node())
	c.failIfDown(c.w.rankNode[c.global(dst)])
	g := c.GlobalRank()
	c.w.trial[g]++
	return c.w.fabric.MessageTime(c.Node(), c.w.rankNode[c.global(dst)], bytes, c.w.trial[g])
}

// deliver places a message into dst's (local rank) mailbox and wakes any
// waiting Recv.
func (c *Comm) deliver(dst, tag int, bytes units.Bytes, payload interface{}, readyAt units.Seconds) {
	w := c.w
	gdst := c.global(dst)
	w.mailbox[gdst] = append(w.mailbox[gdst], pending{
		msg:     Message{Source: c.rank, Tag: tag, Bytes: bytes, Payload: payload},
		ctx:     c.ctx,
		readyAt: readyAt,
	})
	w.newMail[gdst].Broadcast()
}

// Recv blocks until a message matching (src, tag) within this communicator
// is available, honouring AnySource / AnyTag wildcards, and returns it.
// Matching is FIFO in send order, so point-to-point ordering per pair is
// non-overtaking.
func (c *Comm) Recv(src, tag int) Message {
	w := c.w
	self := c.GlobalRank()
	c.failIfDown(c.Node())
	start := c.Now()
	defer func() { c.record(trace.Comm, start) }()
	for {
		for i, p := range w.mailbox[self] {
			if p.ctx != c.ctx ||
				(src != AnySource && p.msg.Source != src) ||
				(tag != AnyTag && p.msg.Tag != tag) {
				continue
			}
			if d := p.readyAt - c.Now(); d > 0 {
				// The matching message is still in flight; wait for it.
				c.proc.Delay(d)
				c.failIfDown(c.Node()) // the node may have died while waiting
			}
			w.mailbox[self] = append(w.mailbox[self][:i], w.mailbox[self][i+1:]...)
			c.proc.Delay(w.overhead)
			return p.msg
		}
		w.newMail[self].Wait(c.proc)
	}
}

// Sendrecv exchanges messages with two (possibly equal) partners without
// serializing the two transfers, like MPI_Sendrecv.
func (c *Comm) Sendrecv(dst, sendTag int, bytes units.Bytes, payload interface{}, src, recvTag int) Message {
	req := c.Isend(dst, sendTag, bytes, payload)
	msg := c.Recv(src, recvTag)
	c.Wait(req)
	return msg
}

// UndefinedColor excludes the caller from every new communicator in Split,
// like MPI_UNDEFINED.
const UndefinedColor = -1

// Split partitions this communicator like MPI_Comm_split: ranks passing
// the same color form a new communicator, ordered by (key, old rank). It is
// collective — every member must call it. Ranks passing UndefinedColor
// receive nil.
func (c *Comm) Split(color, key int) *Comm {
	c.splits++
	// All members derive the same context ids deterministically from the
	// parent context, the split sequence number, and their color.
	baseCtx := xrand.MixN(c.ctx+1, uint64(c.splits))

	triples := c.Allgather([]float64{float64(color), float64(key), float64(c.rank)}, 8)
	type member struct{ color, key, oldRank int }
	var mine []member
	for _, t := range triples {
		m := member{color: int(t[0]), key: int(t[1]), oldRank: int(t[2])}
		if m.color == color && color != UndefinedColor {
			mine = append(mine, m)
		}
	}
	if color == UndefinedColor {
		return nil
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].key != mine[j].key {
			return mine[i].key < mine[j].key
		}
		return mine[i].oldRank < mine[j].oldRank
	})
	group := make([]int, len(mine))
	newRank := -1
	for i, m := range mine {
		group[i] = c.global(m.oldRank)
		if m.oldRank == c.rank {
			newRank = i
		}
	}
	return &Comm{
		w:     c.w,
		rank:  newRank,
		proc:  c.proc,
		ctx:   xrand.MixN(baseCtx, uint64(uint32(color))),
		group: group,
	}
}
