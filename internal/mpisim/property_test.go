package mpisim

import (
	"testing"

	"clustereval/internal/faultsim"
	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/units"
)

// quietFabric builds a TofuD fabric with every stochastic effect disabled —
// no buffer lottery, no contention jitter — so message time is a pure
// function of (hops, size) and the metamorphic properties below hold
// exactly rather than statistically. The injected fault model, if any,
// stays on.
func quietFabric(t *testing.T, nodes int, spec *faultsim.Spec) *interconnect.Fabric {
	t.Helper()
	m := machine.CTEArm()
	model, err := spec.Compile(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Faults = model
	f, err := interconnect.NewTofuD(m, nodes)
	if err != nil {
		t.Fatal(err)
	}
	f.SlowPathProb = 0
	f.NoiseSmall = 0
	f.NoiseLarge = 0
	f.DegradedRecv = map[int]float64{}
	return f
}

// collective is one collective under property test, parameterised by the
// per-element payload size.
type collective struct {
	name string
	run  func(c *Comm, bytesPer units.Bytes)
}

func collectives() []collective {
	return []collective{
		{"allreduce", func(c *Comm, b units.Bytes) {
			c.Allreduce([]float64{float64(c.Rank())}, OpSum, b)
		}},
		{"bcast", func(c *Comm, b units.Bytes) {
			c.Bcast(0, b, nil)
		}},
		{"alltoall", func(c *Comm, b units.Bytes) {
			blocks := make([][]float64, c.Size())
			for i := range blocks {
				blocks[i] = []float64{float64(c.Rank()*100 + i)}
			}
			c.Alltoall(blocks, b)
		}},
	}
}

// elapsedFor runs one collective at one payload size on a fresh quiet world
// and returns the simulated elapsed time.
func elapsedFor(t *testing.T, col collective, bytesPer units.Bytes, spec *faultsim.Spec) units.Seconds {
	t.Helper()
	f := quietFabric(t, 12, spec)
	w, err := NewWorld(f, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(c *Comm) { col.run(c, bytesPer) }); err != nil {
		t.Fatal(err)
	}
	return w.Elapsed()
}

// TestCollectiveMonotonicInSize: on a quiet fabric, growing the payload can
// never make a collective finish earlier — with or without an injected link
// degradation.
func TestCollectiveMonotonicInSize(t *testing.T) {
	sizes := []units.Bytes{64, 1 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
	specs := map[string]*faultsim.Spec{
		"pristine": nil,
		"degraded-link": {Links: []faultsim.LinkFault{
			{Src: 0, Dst: 1, BandwidthFactor: 0.25, ExtraLatencySeconds: 2e-6},
			{Src: 3, Dst: 7, BandwidthFactor: 0.5},
		}},
	}
	for specName, spec := range specs {
		for _, col := range collectives() {
			prev := units.Seconds(-1)
			prevSize := units.Bytes(0)
			for _, size := range sizes {
				e := elapsedFor(t, col, size, spec)
				if e < prev {
					t.Errorf("%s/%s: elapsed dropped from %v (%v) to %v (%v)",
						specName, col.name, prev, prevSize, e, size)
				}
				prev, prevSize = e, size
			}
		}
	}
}

// TestCollectiveFaultMetamorphic: a zero-magnitude fault spec must leave
// every collective's elapsed time bit-for-bit identical to the pristine
// run, while a real degradation can only slow it down.
func TestCollectiveFaultMetamorphic(t *testing.T) {
	noop := &faultsim.Spec{
		Seed:  123, // ignored without stochastic knobs
		Nodes: []faultsim.NodeFault{{Node: 2, Slowdown: 1}},
		Links: []faultsim.LinkFault{{Src: 0, Dst: 1, BandwidthFactor: 1}},
	}
	hurt := &faultsim.Spec{
		Links: []faultsim.LinkFault{{Src: 0, Dst: 1, BandwidthFactor: 0.1}},
	}
	const size = units.Bytes(64 << 10)
	for _, col := range collectives() {
		base := elapsedFor(t, col, size, nil)
		if got := elapsedFor(t, col, size, noop); got != base {
			t.Errorf("%s: zero-magnitude faults changed elapsed %v -> %v", col.name, base, got)
		}
		if got := elapsedFor(t, col, size, hurt); got < base {
			t.Errorf("%s: degrading a link sped the collective up: %v < %v", col.name, got, base)
		}
	}
}

// TestCollectiveRankPermutationResults: the numeric outcome of a collective
// is a property of the data, not the placement — permuting which node hosts
// which rank must not change any result value.
func TestCollectiveRankPermutationResults(t *testing.T) {
	placements := [][]int{
		{0, 1, 2, 3},
		{3, 2, 1, 0},
		{5, 0, 9, 2},
		{1, 1, 4, 4}, // two ranks per node
	}
	for _, placement := range placements {
		f := quietFabric(t, 12, nil)
		w, err := NewWorldPlaced(f, placement)
		if err != nil {
			t.Fatal(err)
		}
		sums := make([]float64, len(placement))
		blocks := make([][][]float64, len(placement))
		if err := w.Run(func(c *Comm) {
			sums[c.Rank()] = c.Allreduce([]float64{float64(c.Rank() + 1)}, OpSum, 8)[0]
			in := make([][]float64, c.Size())
			for i := range in {
				in[i] = []float64{float64(c.Rank()*100 + i)}
			}
			blocks[c.Rank()] = c.Alltoall(in, 8)
		}); err != nil {
			t.Fatal(err)
		}
		wantSum := float64(len(placement) * (len(placement) + 1) / 2)
		for r, got := range sums {
			if got != wantSum {
				t.Errorf("placement %v rank %d: allreduce sum %v, want %v", placement, r, got, wantSum)
			}
		}
		for r, bs := range blocks {
			for src, b := range bs {
				if want := float64(src*100 + r); b[0] != want {
					t.Errorf("placement %v rank %d: alltoall block from %d = %v, want %v",
						placement, r, src, b[0], want)
				}
			}
		}
	}
}

// TestCollectiveRankPermutationElapsed: swapping two symmetric groups of
// ranks across their nodes cannot change the elapsed time on a quiet fabric
// — hop distance is symmetric, and with the noise off it is all that
// differentiates a placement.
func TestCollectiveRankPermutationElapsed(t *testing.T) {
	const size = units.Bytes(32 << 10)
	run := func(placement []int, col collective) units.Seconds {
		f := quietFabric(t, 12, nil)
		w, err := NewWorldPlaced(f, placement)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(func(c *Comm) { col.run(c, size) }); err != nil {
			t.Fatal(err)
		}
		return w.Elapsed()
	}
	for _, col := range collectives() {
		// Two ranks per node on nodes {4, 6}; mirroring the groups is a
		// fabric automorphism, so timing must agree exactly.
		a := run([]int{4, 4, 6, 6}, col)
		b := run([]int{6, 6, 4, 4}, col)
		if a != b {
			t.Errorf("%s: mirrored placement changed elapsed: %v != %v", col.name, a, b)
		}
	}
}
