package mpisim

import (
	"math"
	"sync/atomic"
	"testing"

	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/trace"
	"clustereval/internal/units"
)

func newTofuWorld(t *testing.T, ranks, ranksPerNode int) *World {
	t.Helper()
	nodes := (ranks + ranksPerNode - 1) / ranksPerNode
	// Round up to a valid TofuD size.
	fabNodes := ((nodes + 11) / 12) * 12
	if fabNodes < 12 {
		fabNodes = 12
	}
	f, err := interconnect.NewTofuD(machine.CTEArm(), fabNodes)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(f, ranks, ranksPerNode)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPingPong(t *testing.T) {
	w := newTofuWorld(t, 2, 1)
	var rtt units.Seconds
	err := w.Run(func(c *Comm) {
		const iters = 10
		if c.Rank() == 0 {
			start := c.Now()
			for i := 0; i < iters; i++ {
				c.Send(1, 0, 1024, nil)
				c.Recv(1, 1)
			}
			rtt = (c.Now() - start) / iters
		} else {
			for i := 0; i < iters; i++ {
				c.Recv(0, 0)
				c.Send(0, 1, 1024, nil)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 {
		t.Fatal("non-positive round trip")
	}
	// RTT must be at least twice the one-way latency between the nodes.
	minRTT := 2 * w.fabric.Latency(0, 1)
	if rtt < minRTT {
		t.Errorf("rtt %v below physical floor %v", rtt, minRTT)
	}
}

func TestPayloadDelivery(t *testing.T) {
	w := newTofuWorld(t, 2, 2)
	got := 0.0
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, 64, []float64{3.5})
		} else {
			msg := c.Recv(0, 7)
			got = msg.Payload.([]float64)[0]
			if msg.Source != 0 || msg.Tag != 7 || msg.Bytes != 64 {
				t.Errorf("metadata wrong: %+v", msg)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3.5 {
		t.Errorf("payload = %v", got)
	}
}

func TestNonOvertaking(t *testing.T) {
	w := newTofuWorld(t, 2, 1)
	var order []int
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 5; i++ {
				c.Send(1, 0, units.Bytes(1024*(5-i)), []float64{float64(i)})
			}
		} else {
			for i := 0; i < 5; i++ {
				msg := c.Recv(0, 0)
				order = append(order, int(msg.Payload.([]float64)[0]))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("messages overtook: %v", order)
		}
	}
}

func TestWildcards(t *testing.T) {
	w := newTofuWorld(t, 3, 3)
	var sources []int
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < 2; i++ {
				msg := c.Recv(AnySource, AnyTag)
				sources = append(sources, msg.Source)
			}
		default:
			c.Compute(units.Seconds(float64(c.Rank()) * 1e-6))
			c.Send(0, c.Rank()*10, 64, nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != 2 || sources[0] == sources[1] {
		t.Errorf("sources = %v", sources)
	}
}

func TestTagSelectivity(t *testing.T) {
	w := newTofuWorld(t, 2, 2)
	var first int
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, 64, []float64{1})
			c.Send(1, 2, 64, []float64{2})
		} else {
			// Receive tag 2 first even though tag 1 arrived earlier.
			msg := c.Recv(0, 2)
			first = int(msg.Payload.([]float64)[0])
			c.Recv(0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != 2 {
		t.Errorf("tag matching broken: got payload %d", first)
	}
}

func TestDeadlockReported(t *testing.T) {
	w := newTofuWorld(t, 2, 2)
	err := w.Run(func(c *Comm) {
		c.Recv(1-c.Rank(), 0) // both wait, nobody sends
	})
	if err == nil {
		t.Fatal("deadlock not detected")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	w := newTofuWorld(t, 7, 4)
	after := make([]units.Seconds, 7)
	slowest := units.Seconds(7e-6)
	err := w.Run(func(c *Comm) {
		c.Compute(units.Seconds(float64(c.Rank()+1) * 1e-6))
		c.Barrier()
		after[c.Rank()] = c.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, ts := range after {
		if ts < slowest {
			t.Errorf("rank %d left barrier at %v, before slowest entry %v", r, ts, slowest)
		}
	}
}

func TestBcastValues(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8, 13} {
		w := newTofuWorld(t, p, 4)
		got := make([]float64, p)
		err := w.Run(func(c *Comm) {
			var payload interface{}
			if c.Rank() == 2%p {
				payload = []float64{42}
			}
			out := c.Bcast(2%p, 1024, payload)
			got[c.Rank()] = out.([]float64)[0]
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for r, v := range got {
			if v != 42 {
				t.Errorf("p=%d rank %d got %v", p, r, v)
			}
		}
	}
}

func TestBcastBackToBack(t *testing.T) {
	// Two consecutive broadcasts from different roots must not cross-match.
	w := newTofuWorld(t, 6, 3)
	bad := int32(0)
	err := w.Run(func(c *Comm) {
		var p1, p2 interface{}
		if c.Rank() == 0 {
			p1 = []float64{1}
		}
		if c.Rank() == 3 {
			p2 = []float64{2}
		}
		a := c.Bcast(0, 512, p1)
		b := c.Bcast(3, 512, p2)
		if a.([]float64)[0] != 1 || b.([]float64)[0] != 2 {
			atomic.AddInt32(&bad, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Errorf("%d ranks saw crossed broadcast payloads", bad)
	}
}

func TestReduceSum(t *testing.T) {
	for _, p := range []int{1, 2, 6, 9, 16} {
		w := newTofuWorld(t, p, 4)
		var result []float64
		err := w.Run(func(c *Comm) {
			data := []float64{float64(c.Rank() + 1), 1}
			out := c.Reduce(0, data, OpSum, 8)
			if c.Rank() == 0 {
				result = out
			} else if out != nil {
				t.Errorf("non-root rank %d got non-nil reduce result", c.Rank())
			}
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		wantSum := float64(p*(p+1)) / 2
		if result[0] != wantSum || result[1] != float64(p) {
			t.Errorf("p=%d: reduce = %v, want [%v %v]", p, result, wantSum, p)
		}
	}
}

func TestAllreduce(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8, 12} {
		w := newTofuWorld(t, p, 4)
		results := make([][]float64, p)
		err := w.Run(func(c *Comm) {
			data := []float64{float64(c.Rank()), 1}
			results[c.Rank()] = c.Allreduce(data, OpSum, 8)
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		wantSum := float64(p*(p-1)) / 2
		for r, res := range results {
			if res[0] != wantSum || res[1] != float64(p) {
				t.Errorf("p=%d rank %d: allreduce = %v, want [%v %v]", p, r, res, wantSum, p)
			}
		}
	}
}

func TestAllreduceMax(t *testing.T) {
	w := newTofuWorld(t, 5, 4)
	results := make([]float64, 5)
	err := w.Run(func(c *Comm) {
		results[c.Rank()] = c.AllreduceScalar(float64((c.Rank()*3)%5), OpMax)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range results {
		if v != 4 {
			t.Errorf("rank %d max = %v, want 4", r, v)
		}
	}
}

func TestOpMin(t *testing.T) {
	dst := []float64{3, 1, 5}
	OpMin(dst, []float64{2, 4, 4})
	if dst[0] != 2 || dst[1] != 1 || dst[2] != 4 {
		t.Errorf("OpMin = %v", dst)
	}
}

func TestAllgather(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		w := newTofuWorld(t, p, 4)
		results := make([][][]float64, p)
		err := w.Run(func(c *Comm) {
			results[c.Rank()] = c.Allgather([]float64{float64(c.Rank() * 10)}, 8)
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for r := 0; r < p; r++ {
			for src := 0; src < p; src++ {
				if results[r][src][0] != float64(src*10) {
					t.Errorf("p=%d rank %d block %d = %v", p, r, src, results[r][src])
				}
			}
		}
	}
}

func TestAlltoall(t *testing.T) {
	for _, p := range []int{1, 2, 4, 5, 8} {
		w := newTofuWorld(t, p, 4)
		results := make([][][]float64, p)
		err := w.Run(func(c *Comm) {
			blocks := make([][]float64, p)
			for i := range blocks {
				blocks[i] = []float64{float64(c.Rank()*100 + i)}
			}
			results[c.Rank()] = c.Alltoall(blocks, 8)
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for r := 0; r < p; r++ {
			for src := 0; src < p; src++ {
				want := float64(src*100 + r)
				if results[r][src][0] != want {
					t.Errorf("p=%d: rank %d block from %d = %v, want %v",
						p, r, src, results[r][src][0], want)
				}
			}
		}
	}
}

func TestGather(t *testing.T) {
	w := newTofuWorld(t, 6, 3)
	var rows [][]float64
	err := w.Run(func(c *Comm) {
		out := c.Gather(2, []float64{float64(c.Rank())}, 8)
		if c.Rank() == 2 {
			rows = out
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		if row[0] != float64(i) {
			t.Errorf("gather row %d = %v", i, row)
		}
	}
}

func TestIsendOverlap(t *testing.T) {
	// A rank that Isends a large message and computes meanwhile should
	// finish sooner than one that blocks in Send.
	elapsed := func(blocking bool) units.Seconds {
		w := newTofuWorld(t, 2, 1)
		err := w.Run(func(c *Comm) {
			size := units.Bytes(8 * units.MiB)
			work := units.Seconds(5e-3)
			if c.Rank() == 0 {
				if blocking {
					c.Send(1, 0, size, nil)
					c.Compute(work)
				} else {
					req := c.Isend(1, 0, size, nil)
					c.Compute(work)
					c.Wait(req)
				}
			} else {
				c.Recv(0, 0)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Elapsed()
	}
	b, nb := elapsed(true), elapsed(false)
	if nb >= b {
		t.Errorf("overlap gained nothing: blocking %v, isend %v", b, nb)
	}
}

func TestWaitAll(t *testing.T) {
	w := newTofuWorld(t, 3, 1)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			var reqs []*Request
			for dst := 1; dst <= 2; dst++ {
				reqs = append(reqs, c.Isend(dst, 0, units.Bytes(1*units.MiB), nil))
			}
			c.WaitAll(reqs)
		} else {
			c.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicElapsed(t *testing.T) {
	run := func() units.Seconds {
		w := newTofuWorld(t, 8, 4)
		if err := w.Run(func(c *Comm) {
			x := c.AllreduceScalar(float64(c.Rank()), OpSum)
			c.Compute(units.Seconds(x * 1e-9))
			c.Barrier()
		}); err != nil {
			t.Fatal(err)
		}
		return w.Elapsed()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic elapsed: %v vs %v", a, b)
	}
}

func TestWorldValidation(t *testing.T) {
	f, err := interconnect.NewTofuD(machine.CTEArm(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWorld(f, 0, 1); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := NewWorld(f, 10, 0); err == nil {
		t.Error("zero ranks/node accepted")
	}
	if _, err := NewWorld(f, 1000, 1); err == nil {
		t.Error("overflowing placement accepted")
	}
	if _, err := NewWorldPlaced(f, nil); err == nil {
		t.Error("empty placement accepted")
	}
	if _, err := NewWorldPlaced(f, []int{0, 99}); err == nil {
		t.Error("out-of-range placement accepted")
	}
}

func TestRanksShareNodes(t *testing.T) {
	w := newTofuWorld(t, 4, 2)
	if w.NodeOf(0) != 0 || w.NodeOf(1) != 0 || w.NodeOf(2) != 1 || w.NodeOf(3) != 1 {
		t.Errorf("placement: %v %v %v %v", w.NodeOf(0), w.NodeOf(1), w.NodeOf(2), w.NodeOf(3))
	}
	// Intra-node traffic must be cheaper than inter-node.
	var intra, inter units.Seconds
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			start := c.Now()
			c.Send(1, 0, units.Bytes(1*units.MiB), nil)
			intra = c.Now() - start
			start = c.Now()
			c.Send(2, 0, units.Bytes(1*units.MiB), nil)
			inter = c.Now() - start
		case 1:
			c.Recv(0, 0)
		case 2:
			c.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if intra >= inter {
		t.Errorf("intra-node %v should beat inter-node %v", intra, inter)
	}
}

func TestTracingPOPMetrics(t *testing.T) {
	w := newTofuWorld(t, 4, 2)
	rec, err := trace.NewRecorder(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AttachRecorder(rec); err != nil {
		t.Fatal(err)
	}
	// Imbalanced program: rank r computes (r+1) units, then all barrier.
	err = w.Run(func(c *Comm) {
		c.Compute(units.Seconds(float64(c.Rank()+1) * 1e-3))
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := rec.Profile().Metrics()
	if err != nil {
		t.Fatal(err)
	}
	// mean compute = 2.5ms, max = 4ms: LB = 0.625 (barrier comm is tiny).
	if math.Abs(m.LoadBalance-0.625) > 0.01 {
		t.Errorf("load balance = %.3f, want ~0.625", m.LoadBalance)
	}
	if m.CommunicationEff < 0.95 || m.CommunicationEff > 1 {
		t.Errorf("comm efficiency = %.3f, want ~1 (tiny barrier)", m.CommunicationEff)
	}
	if m.ParallelEfficiency >= m.LoadBalance+1e-9 {
		t.Error("parallel efficiency must not exceed load balance")
	}

	// A recorder that is too small must be rejected.
	small, _ := trace.NewRecorder(2)
	if err := w.AttachRecorder(small); err == nil {
		t.Error("undersized recorder accepted")
	}
}

func TestTracingCommBoundProgram(t *testing.T) {
	w := newTofuWorld(t, 2, 1)
	rec, _ := trace.NewRecorder(2)
	if err := w.AttachRecorder(rec); err != nil {
		t.Fatal(err)
	}
	err := w.Run(func(c *Comm) {
		c.Compute(1e-6)
		peer := 1 - c.Rank()
		for i := 0; i < 10; i++ {
			c.Sendrecv(peer, 0, units.Bytes(4*units.MiB), nil, peer, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := rec.Profile().Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.CommunicationEff > 0.2 {
		t.Errorf("comm efficiency = %.3f; this program is communication-bound", m.CommunicationEff)
	}
}

func TestAllreduceAssociativityTolerance(t *testing.T) {
	// The reduction result must match a serial sum to FP tolerance for
	// every rank count (the invariant DESIGN.md lists).
	for _, p := range []int{3, 6, 10} {
		w := newTofuWorld(t, p, 4)
		var got float64
		err := w.Run(func(c *Comm) {
			v := math.Sqrt(float64(c.Rank() + 1))
			got = c.AllreduceScalar(v, OpSum)
		})
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for i := 1; i <= p; i++ {
			want += math.Sqrt(float64(i))
		}
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("p=%d: allreduce sum = %v, serial = %v", p, got, want)
		}
	}
}
