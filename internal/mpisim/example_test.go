package mpisim_test

import (
	"fmt"

	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/mpisim"
)

// A minimal simulated MPI program: four ranks on the CTE-Arm fabric sum
// their ranks with a real allreduce. The elapsed virtual time is the
// modelled communication cost on the TofuD torus.
func Example() {
	fabric, err := interconnect.NewTofuD(machine.CTEArm(), 12)
	if err != nil {
		panic(err)
	}
	world, err := mpisim.NewWorld(fabric, 4, 2) // 4 ranks, 2 per node
	if err != nil {
		panic(err)
	}
	var sum float64
	err = world.Run(func(c *mpisim.Comm) {
		s := c.AllreduceScalar(float64(c.Rank()), mpisim.OpSum)
		if c.Rank() == 0 {
			sum = s
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("allreduce sum:", sum)
	fmt.Println("virtual time > 0:", world.Elapsed() > 0)
	// Output:
	// allreduce sum: 6
	// virtual time > 0: true
}

// Split partitions a communicator like MPI_Comm_split; collectives inside
// the sub-communicator involve only its members.
func ExampleComm_Split() {
	fabric, _ := interconnect.NewTofuD(machine.CTEArm(), 12)
	world, _ := mpisim.NewWorld(fabric, 6, 3)
	sums := make([]float64, 6)
	if err := world.Run(func(c *mpisim.Comm) {
		sub := c.Split(c.Rank()%2, c.Rank()) // evens and odds
		sums[c.Rank()] = sub.AllreduceScalar(float64(c.Rank()), mpisim.OpSum)
	}); err != nil {
		panic(err)
	}
	fmt.Println("even group sum:", sums[0])
	fmt.Println("odd group sum: ", sums[1])
	// Output:
	// even group sum: 6
	// odd group sum:  9
}
