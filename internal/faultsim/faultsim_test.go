package faultsim

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"clustereval/internal/units"
)

func TestZero(t *testing.T) {
	cases := []struct {
		name string
		spec *Spec
		want bool
	}{
		{"nil", nil, true},
		{"empty", &Spec{}, true},
		{"seed only", &Spec{Seed: 7}, true},
		{"no-op node", &Spec{Nodes: []NodeFault{{Node: 3}}}, true},
		{"slowdown exactly 1", &Spec{Nodes: []NodeFault{{Node: 3, Slowdown: 1}}}, true},
		{"no-op link", &Spec{Links: []LinkFault{{Src: 0, Dst: 1, BandwidthFactor: 1}}}, true},
		{"fail prob", &Spec{FailProb: 0.1}, false},
		{"os noise", &Spec{OSNoise: 0.05}, false},
		{"straggler", &Spec{Nodes: []NodeFault{{Node: 0, Slowdown: 2}}}, false},
		{"failed node", &Spec{Nodes: []NodeFault{{Node: 0, Failed: true}}}, false},
		{"scheduled failure", &Spec{Nodes: []NodeFault{{Node: 0, FailAtSeconds: 1}}}, false},
		{"degraded link", &Spec{Links: []LinkFault{{Src: 0, Dst: 1, BandwidthFactor: 0.5}}}, false},
		{"laggy link", &Spec{Links: []LinkFault{{Src: 0, Dst: 1, ExtraLatencySeconds: 1e-6}}}, false},
	}
	for _, c := range cases {
		if got := c.spec.Zero(); got != c.want {
			t.Errorf("%s: Zero() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"fail_prob negative", Spec{FailProb: -0.1}},
		{"fail_prob one", Spec{FailProb: 1}},
		{"os_noise negative", Spec{OSNoise: -0.1}},
		{"os_noise above one", Spec{OSNoise: 1.5}},
		{"node out of range", Spec{Nodes: []NodeFault{{Node: 8}}}},
		{"node negative", Spec{Nodes: []NodeFault{{Node: -1}}}},
		{"duplicate node", Spec{Nodes: []NodeFault{{Node: 1, Slowdown: 2}, {Node: 1, Failed: true}}}},
		{"slowdown below 1", Spec{Nodes: []NodeFault{{Node: 1, Slowdown: 0.5}}}},
		{"failed and fail_at", Spec{Nodes: []NodeFault{{Node: 1, Failed: true, FailAtSeconds: 2}}}},
		{"fail_at negative", Spec{Nodes: []NodeFault{{Node: 1, FailAtSeconds: -1}}}},
		{"link out of range", Spec{Links: []LinkFault{{Src: 0, Dst: 99, BandwidthFactor: 0.5}}}},
		{"self link", Spec{Links: []LinkFault{{Src: 2, Dst: 2, BandwidthFactor: 0.5}}}},
		{"duplicate link", Spec{Links: []LinkFault{{Src: 0, Dst: 1, BandwidthFactor: 0.5}, {Src: 0, Dst: 1, ExtraLatencySeconds: 1}}}},
		{"bandwidth factor negative", Spec{Links: []LinkFault{{Src: 0, Dst: 1, BandwidthFactor: -0.5}}}},
		{"bandwidth factor above 1", Spec{Links: []LinkFault{{Src: 0, Dst: 1, BandwidthFactor: 1.5}}}},
		{"extra latency negative", Spec{Links: []LinkFault{{Src: 0, Dst: 1, ExtraLatencySeconds: -1}}}},
	}
	for _, c := range cases {
		if err := c.spec.Validate(8); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.spec)
		}
	}
	ok := Spec{
		Seed: 42, FailProb: 0.2, OSNoise: 0.1,
		Nodes: []NodeFault{{Node: 3, Slowdown: 2}, {Node: 5, Failed: true}},
		Links: []LinkFault{{Src: 0, Dst: 1, BandwidthFactor: 0.5, ExtraLatencySeconds: 1e-6}},
	}
	if err := ok.Validate(8); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if err := (&Spec{}).Validate(0); err == nil {
		t.Error("Validate accepted non-positive node count")
	}
}

func TestCanonical(t *testing.T) {
	if got := (&Spec{Seed: 9}).Canonical(); got != nil {
		t.Errorf("effect-free spec canonicalized to %+v, want nil", got)
	}

	// Ordering, no-op dropping, and seed folding.
	s := &Spec{
		Seed: 99, // no stochastic knobs: must be dropped
		Nodes: []NodeFault{
			{Node: 5, Slowdown: 2},
			{Node: 2}, // no-op
			{Node: 1, Failed: true},
		},
		Links: []LinkFault{
			{Src: 3, Dst: 0, BandwidthFactor: 0.5},
			{Src: 0, Dst: 2, BandwidthFactor: 1}, // no-op
			{Src: 0, Dst: 1, ExtraLatencySeconds: 1e-6},
		},
	}
	got := s.Canonical()
	want := &Spec{
		Nodes: []NodeFault{{Node: 1, Failed: true}, {Node: 5, Slowdown: 2}},
		Links: []LinkFault{{Src: 0, Dst: 1, ExtraLatencySeconds: 1e-6}, {Src: 3, Dst: 0, BandwidthFactor: 0.5}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Canonical() = %+v, want %+v", got, want)
	}

	// Seed survives when a stochastic knob is on.
	s2 := &Spec{Seed: 99, OSNoise: 0.1}
	if got := s2.Canonical(); got == nil || got.Seed != 99 {
		t.Errorf("Canonical() dropped the seed of a stochastic spec: %+v", got)
	}

	// Canonicalization is idempotent.
	if again := got.Canonical(); !reflect.DeepEqual(again, got) {
		t.Errorf("Canonical not idempotent: %+v vs %+v", again, got)
	}
}

func TestCompileNilAndZero(t *testing.T) {
	var nilSpec *Spec
	if m, err := nilSpec.Compile(8, 0); err != nil || m != nil {
		t.Errorf("nil spec: Compile = (%v, %v), want (nil, nil)", m, err)
	}
	if m, err := (&Spec{Seed: 3}).Compile(8, 0); err != nil || m != nil {
		t.Errorf("effect-free spec: Compile = (%v, %v), want (nil, nil)", m, err)
	}
	if _, err := (&Spec{}).Compile(8, -1); err == nil {
		t.Error("Compile accepted a negative attempt")
	}
}

func TestCompileExplicitFaults(t *testing.T) {
	s := &Spec{
		Nodes: []NodeFault{
			{Node: 1, Slowdown: 3},
			{Node: 2, Failed: true},
			{Node: 4, FailAtSeconds: 1.5},
		},
		Links: []LinkFault{{Src: 0, Dst: 3, BandwidthFactor: 0.25, ExtraLatencySeconds: 2e-6}},
	}
	m, err := s.Compile(8, 0)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if got := m.Slowdown(1); got != 3 {
		t.Errorf("Slowdown(1) = %v, want 3", got)
	}
	if got := m.Slowdown(0); got != 1 {
		t.Errorf("Slowdown(0) = %v, want 1 (healthy default)", got)
	}
	if at, ok := m.FailTime(2); !ok || at != 0 {
		t.Errorf("FailTime(2) = (%v, %v), want (0, true)", at, ok)
	}
	if at, ok := m.FailTime(4); !ok || at != units.Seconds(1.5) {
		t.Errorf("FailTime(4) = (%v, %v), want (1.5, true)", at, ok)
	}
	if _, ok := m.FailTime(0); ok {
		t.Error("FailTime(0) reported a failure on a healthy node")
	}
	le, ok := m.Link(0, 3)
	if !ok || le.BandwidthFactor != 0.25 || le.ExtraLatency != units.Seconds(2e-6) {
		t.Errorf("Link(0,3) = (%+v, %v)", le, ok)
	}
	if _, ok := m.Link(3, 0); ok {
		t.Error("Link(3,0): link faults must be directed")
	}
	if got, want := m.FailedNodes(), []int{2, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("FailedNodes() = %v, want %v", got, want)
	}

	// Explicit faults are attempt-independent.
	m2, err := s.Compile(8, 5)
	if err != nil {
		t.Fatalf("Compile attempt 5: %v", err)
	}
	if m.Slowdown(1) != m2.Slowdown(1) || !reflect.DeepEqual(m.FailedNodes(), m2.FailedNodes()) {
		t.Error("explicit faults changed across attempts")
	}
}

func TestCompileStochasticDeterminism(t *testing.T) {
	s := &Spec{Seed: 1234, FailProb: 0.3, OSNoise: 0.2}
	const nodes = 64

	a, err := s.Compile(nodes, 0)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	b, err := s.Compile(nodes, 0)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for n := 0; n < nodes; n++ {
		if a.Slowdown(n) != b.Slowdown(n) {
			t.Fatalf("node %d: slowdown differs across identical compiles", n)
		}
		_, fa := a.FailTime(n)
		_, fb := b.FailTime(n)
		if fa != fb {
			t.Fatalf("node %d: failure differs across identical compiles", n)
		}
	}

	// A different attempt re-draws: expect at least one node to differ.
	c, err := s.Compile(nodes, 1)
	if err != nil {
		t.Fatalf("Compile attempt 1: %v", err)
	}
	differs := false
	for n := 0; n < nodes; n++ {
		_, fa := a.FailTime(n)
		_, fc := c.FailTime(n)
		if a.Slowdown(n) != c.Slowdown(n) || fa != fc {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("attempt salt had no effect on 64 stochastic draws")
	}

	// OSNoise slowdowns respect the clamp [1, 1+3*eps].
	for n := 0; n < nodes; n++ {
		sl := a.Slowdown(n)
		if sl < 1 || sl > 1+3*s.OSNoise+1e-12 {
			t.Errorf("node %d: slowdown %v outside [1, %v]", n, sl, 1+3*s.OSNoise)
		}
	}
}

func TestCompileStochasticOnExplicit(t *testing.T) {
	// OSNoise multiplies onto an explicit slowdown rather than replacing it.
	s := &Spec{Seed: 7, OSNoise: 0.1, Nodes: []NodeFault{{Node: 0, Slowdown: 4}}}
	m, err := s.Compile(4, 0)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if sl := m.Slowdown(0); sl < 4 {
		t.Errorf("Slowdown(0) = %v, want >= 4 (noise on top of explicit straggler)", sl)
	}
	// An explicitly failed node stays failed whatever FailProb draws.
	s2 := &Spec{Seed: 7, FailProb: 0.5, Nodes: []NodeFault{{Node: 1, FailAtSeconds: 2}}}
	m2, err := s2.Compile(4, 3)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if at, ok := m2.FailTime(1); !ok || at != units.Seconds(2) {
		t.Errorf("FailTime(1) = (%v, %v), want (2, true): explicit schedule must win", at, ok)
	}
}

func TestNilModelLookups(t *testing.T) {
	var m *Model
	if m.Slowdown(3) != 1 {
		t.Error("nil model Slowdown != 1")
	}
	if _, ok := m.FailTime(3); ok {
		t.Error("nil model reported a failure")
	}
	if _, ok := m.Link(0, 1); ok {
		t.Error("nil model reported a link effect")
	}
	if m.FailedNodes() != nil {
		t.Error("nil model reported failed nodes")
	}
}

func TestNodeFailedError(t *testing.T) {
	base := &NodeFailedError{Node: 23, At: units.Seconds(1.5)}
	wrapped := fmt.Errorf("sim run: %w", base)

	if !Retryable(wrapped) {
		t.Error("wrapped NodeFailedError not Retryable")
	}
	if Retryable(errors.New("disk on fire")) {
		t.Error("ordinary error reported Retryable")
	}
	if Retryable(nil) {
		t.Error("nil error reported Retryable")
	}
	var nf *NodeFailedError
	if !errors.As(wrapped, &nf) || nf.Node != 23 {
		t.Errorf("errors.As lost the node: %+v", nf)
	}
	want := "faultsim: node 23 failed at t=1.5s"
	if got := base.Error(); got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := &Spec{
		Seed: 11, FailProb: 0.1, OSNoise: 0.05,
		Nodes: []NodeFault{{Node: 2, Slowdown: 1.5}, {Node: 3, Failed: true}},
		Links: []LinkFault{{Src: 0, Dst: 1, BandwidthFactor: 0.5, ExtraLatencySeconds: 1e-6}},
	}
	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Spec
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(&back, s) {
		t.Errorf("round trip changed the spec: %+v vs %+v", &back, s)
	}
}
