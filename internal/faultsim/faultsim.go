// Package faultsim is the deterministic fault-injection subsystem of the
// simulator. A Spec describes a perturbation of a cluster — straggler nodes
// (OS noise / slow compute), degraded links (reduced bandwidth, added
// latency) and hard node failures at a scheduled sim-time — and compiles
// into an immutable Model the cost layers consult:
//
//   - internal/interconnect applies link bandwidth factors and extra
//     latency per (src, dst) node pair;
//   - internal/mpisim scales Compute spans by the per-node slowdown and
//     aborts a run with a typed *NodeFailedError when an operation touches
//     a failed node.
//
// Everything is seed-driven and reproducible: a Spec plus an attempt number
// fully determines the Model, so a clusterd retry can deterministically
// re-draw the stochastic faults (FailProb, OSNoise) while explicit faults
// stay fixed — exactly the behaviour of resubmitting a job on a production
// system where the same sick node is still sick but transient noise has
// moved on.
package faultsim

import (
	"errors"
	"fmt"
	"sort"

	"clustereval/internal/units"
	"clustereval/internal/xrand"
)

// NodeFault perturbs one node.
type NodeFault struct {
	// Node is the cluster node index.
	Node int `json:"node"`
	// Slowdown multiplies every Compute span of ranks on this node.
	// 0 means unset (no slowdown); values below 1 are invalid — system
	// noise only ever slows a node down.
	Slowdown float64 `json:"slowdown,omitempty"`
	// Failed marks the node dead from sim-time zero.
	Failed bool `json:"failed,omitempty"`
	// FailAtSeconds schedules a hard failure at the given sim-time (> 0).
	// Mutually exclusive with Failed.
	FailAtSeconds float64 `json:"fail_at_seconds,omitempty"`
}

// LinkFault perturbs the directed link (pair path) src -> dst.
type LinkFault struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
	// BandwidthFactor is the fraction of bandwidth the link retains,
	// in (0, 1]. 0 means unset (full bandwidth).
	BandwidthFactor float64 `json:"bandwidth_factor,omitempty"`
	// ExtraLatencySeconds is added to every message on the link.
	ExtraLatencySeconds float64 `json:"extra_latency_seconds,omitempty"`
}

// Spec is the serializable description of a fault scenario. The zero value
// injects nothing: compiling it yields a nil Model and every result is
// bit-identical to an unperturbed run.
type Spec struct {
	// Seed anchors the stochastic faults (FailProb, OSNoise). It is
	// ignored — and canonicalized away — when neither is set.
	Seed uint64 `json:"seed,omitempty"`
	// FailProb fails each node independently from sim-time zero with this
	// probability, drawn deterministically from (Seed, attempt, node).
	FailProb float64 `json:"fail_prob,omitempty"`
	// OSNoise gives each node a deterministic slowdown 1 + OSNoise*|N(0,1)|
	// (clamped to 1 + 3*OSNoise), modelling per-node system noise.
	OSNoise float64 `json:"os_noise,omitempty"`
	// Nodes and Links are explicit, attempt-independent faults.
	Nodes []NodeFault `json:"nodes,omitempty"`
	Links []LinkFault `json:"links,omitempty"`
}

// zeroNode reports whether the entry perturbs nothing.
func zeroNode(nf NodeFault) bool {
	return !nf.Failed && nf.FailAtSeconds == 0 && (nf.Slowdown == 0 || nf.Slowdown == 1)
}

// zeroLink reports whether the entry perturbs nothing.
func zeroLink(lf LinkFault) bool {
	return (lf.BandwidthFactor == 0 || lf.BandwidthFactor == 1) && lf.ExtraLatencySeconds == 0
}

// Zero reports whether the spec injects no faults at all.
func (s *Spec) Zero() bool {
	if s == nil {
		return true
	}
	if s.FailProb != 0 || s.OSNoise != 0 {
		return false
	}
	for _, nf := range s.Nodes {
		if !zeroNode(nf) {
			return false
		}
	}
	for _, lf := range s.Links {
		if !zeroLink(lf) {
			return false
		}
	}
	return true
}

// Validate checks the spec against a cluster of the given node count.
func (s *Spec) Validate(nodes int) error {
	if s == nil {
		return nil
	}
	if nodes <= 0 {
		return fmt.Errorf("faultsim: non-positive node count %d", nodes)
	}
	if s.FailProb < 0 || s.FailProb >= 1 {
		return fmt.Errorf("faultsim: fail_prob %v outside [0, 1)", s.FailProb)
	}
	if s.OSNoise < 0 || s.OSNoise > 1 {
		return fmt.Errorf("faultsim: os_noise %v outside [0, 1]", s.OSNoise)
	}
	seenNode := map[int]bool{}
	for _, nf := range s.Nodes {
		if nf.Node < 0 || nf.Node >= nodes {
			return fmt.Errorf("faultsim: node %d out of [0, %d)", nf.Node, nodes)
		}
		if seenNode[nf.Node] {
			return fmt.Errorf("faultsim: duplicate node fault for node %d", nf.Node)
		}
		seenNode[nf.Node] = true
		if nf.Slowdown != 0 && nf.Slowdown < 1 {
			return fmt.Errorf("faultsim: node %d slowdown %v below 1", nf.Node, nf.Slowdown)
		}
		if nf.FailAtSeconds < 0 {
			return fmt.Errorf("faultsim: node %d fail_at_seconds %v negative", nf.Node, nf.FailAtSeconds)
		}
		if nf.Failed && nf.FailAtSeconds > 0 {
			return fmt.Errorf("faultsim: node %d sets both failed and fail_at_seconds", nf.Node)
		}
	}
	seenLink := map[[2]int]bool{}
	for _, lf := range s.Links {
		if lf.Src < 0 || lf.Src >= nodes || lf.Dst < 0 || lf.Dst >= nodes {
			return fmt.Errorf("faultsim: link %d->%d out of [0, %d)", lf.Src, lf.Dst, nodes)
		}
		if lf.Src == lf.Dst {
			return fmt.Errorf("faultsim: link fault %d->%d is not a link (src == dst)", lf.Src, lf.Dst)
		}
		k := [2]int{lf.Src, lf.Dst}
		if seenLink[k] {
			return fmt.Errorf("faultsim: duplicate link fault for %d->%d", lf.Src, lf.Dst)
		}
		seenLink[k] = true
		if lf.BandwidthFactor < 0 || lf.BandwidthFactor > 1 {
			return fmt.Errorf("faultsim: link %d->%d bandwidth_factor %v outside (0, 1]", lf.Src, lf.Dst, lf.BandwidthFactor)
		}
		if lf.ExtraLatencySeconds < 0 {
			return fmt.Errorf("faultsim: link %d->%d extra_latency_seconds %v negative", lf.Src, lf.Dst, lf.ExtraLatencySeconds)
		}
	}
	return nil
}

// Canonical returns the canonical form of a validated spec: entries with no
// effect dropped, the rest sorted (nodes by index, links by src then dst),
// unused knobs zeroed, and nil for a spec that injects nothing. Two specs
// describing the same perturbation canonicalize to the same value, the
// property clusterd's content-addressed cache keys rely on.
func (s *Spec) Canonical() *Spec {
	if s.Zero() {
		return nil
	}
	c := &Spec{FailProb: s.FailProb, OSNoise: s.OSNoise}
	// The seed only feeds the stochastic knobs; drop it when they are off
	// so otherwise-identical specs share a cache entry.
	if s.FailProb != 0 || s.OSNoise != 0 {
		c.Seed = s.Seed
	}
	for _, nf := range s.Nodes {
		if zeroNode(nf) {
			continue
		}
		c.Nodes = append(c.Nodes, nf)
	}
	for _, lf := range s.Links {
		if zeroLink(lf) {
			continue
		}
		c.Links = append(c.Links, lf)
	}
	sort.Slice(c.Nodes, func(i, j int) bool { return c.Nodes[i].Node < c.Nodes[j].Node })
	sort.Slice(c.Links, func(i, j int) bool {
		if c.Links[i].Src != c.Links[j].Src {
			return c.Links[i].Src < c.Links[j].Src
		}
		return c.Links[i].Dst < c.Links[j].Dst
	})
	return c
}

// LinkEffect is a compiled perturbation of one directed link.
type LinkEffect struct {
	BandwidthFactor float64
	ExtraLatency    units.Seconds
}

// Model is a compiled fault scenario: constant-time lookups for the cost
// layers. A nil *Model means no faults and must behave exactly like the
// absence of the subsystem.
type Model struct {
	slow   map[int]float64
	failAt map[int]units.Seconds
	links  map[[2]int]LinkEffect
}

// Compile resolves the spec against a cluster of the given node count into
// a Model. The attempt number salts the stochastic draws (FailProb,
// OSNoise) so a retry sees a fresh — but still deterministic — fault
// realisation; explicit Nodes/Links entries are attempt-independent.
// A nil or effect-free spec compiles to a nil Model.
func (s *Spec) Compile(nodes, attempt int) (*Model, error) {
	if s == nil {
		return nil, nil
	}
	if err := s.Validate(nodes); err != nil {
		return nil, err
	}
	if attempt < 0 {
		return nil, fmt.Errorf("faultsim: negative attempt %d", attempt)
	}
	m := &Model{
		slow:   map[int]float64{},
		failAt: map[int]units.Seconds{},
		links:  map[[2]int]LinkEffect{},
	}
	for _, nf := range s.Nodes {
		if nf.Slowdown != 0 {
			m.slow[nf.Node] = nf.Slowdown
		}
		if nf.Failed {
			m.failAt[nf.Node] = 0
		} else if nf.FailAtSeconds > 0 {
			m.failAt[nf.Node] = units.Seconds(nf.FailAtSeconds)
		}
	}
	for _, lf := range s.Links {
		m.links[[2]int{lf.Src, lf.Dst}] = LinkEffect{
			BandwidthFactor: lf.BandwidthFactor,
			ExtraLatency:    units.Seconds(lf.ExtraLatencySeconds),
		}
	}
	if s.FailProb > 0 || s.OSNoise > 0 {
		const salt = 0xfa0175ed
		for n := 0; n < nodes; n++ {
			r := xrand.New(xrand.MixN(salt, s.Seed, uint64(attempt), uint64(n)))
			if s.FailProb > 0 && r.Float64() < s.FailProb {
				if _, explicit := m.failAt[n]; !explicit {
					m.failAt[n] = 0
				}
			}
			if s.OSNoise > 0 {
				j := r.SlowJitter(s.OSNoise)
				if prev, ok := m.slow[n]; ok {
					m.slow[n] = prev * j
				} else {
					m.slow[n] = j
				}
			}
		}
	}
	if len(m.slow) == 0 && len(m.failAt) == 0 && len(m.links) == 0 {
		return nil, nil
	}
	return m, nil
}

// Slowdown returns the compute slowdown factor of a node (1 when healthy).
func (m *Model) Slowdown(node int) float64 {
	if m == nil {
		return 1
	}
	if f, ok := m.slow[node]; ok {
		return f
	}
	return 1
}

// FailTime returns the sim-time at which the node fails, and whether it
// fails at all.
func (m *Model) FailTime(node int) (units.Seconds, bool) {
	if m == nil {
		return 0, false
	}
	at, ok := m.failAt[node]
	return at, ok
}

// Link returns the perturbation of the directed link src -> dst, if any.
func (m *Model) Link(src, dst int) (LinkEffect, bool) {
	if m == nil {
		return LinkEffect{}, false
	}
	e, ok := m.links[[2]int{src, dst}]
	return e, ok
}

// FailedNodes returns the sorted indices of every node that fails at some
// sim-time under this model.
func (m *Model) FailedNodes() []int {
	if m == nil {
		return nil
	}
	out := make([]int, 0, len(m.failAt))
	for n := range m.failAt {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// NodeFailedError reports an MPI operation touching a failed node. It
// propagates out of mpisim.World.Run and is the retryable class of fault
// errors clusterd's retry policy acts on.
type NodeFailedError struct {
	Node int
	At   units.Seconds
}

func (e *NodeFailedError) Error() string {
	return fmt.Sprintf("faultsim: node %d failed at t=%.9gs", e.Node, float64(e.At))
}

// Retryable reports whether err is a fault-injection failure that a retry
// with a fresh fault realisation might avoid.
func Retryable(err error) bool {
	var nf *NodeFailedError
	return errors.As(err, &nf)
}
