// Package fpu implements the paper's FPU_µKernel experiment (Section III-A,
// Fig. 1): six kernel variants — scalar/vector × half/single/double — run on
// one core of each machine, reported as sustained performance and percent of
// the theoretical peak Pv = s·i·f·o. It also reproduces the paper's two
// sanity sweeps: no variability across the cores of a node, and none across
// the nodes of the cluster.
package fpu

import (
	"fmt"

	"clustereval/internal/machine"
	"clustereval/internal/simdvec"
	"clustereval/internal/stats"
	"clustereval/internal/units"
	"clustereval/internal/xrand"
)

// DefaultIterations is enough for the pipeline warm-up to be negligible,
// like the real µKernel's long unrolled loops.
const DefaultIterations = 20000

// Bar is one bar of Fig. 1.
type Bar struct {
	Machine       string
	Variant       simdvec.Variant
	Supported     bool
	Sustained     units.FlopsPerSecond
	Peak          units.FlopsPerSecond
	PercentOfPeak float64
	Checksum      float64
	// Time is the kernel's modeled runtime — what the energy accounting
	// integrates the core's power draw over.
	Time units.Seconds
}

// Figure1 runs the six µKernel variants on one core of each machine.
func Figure1(machines []machine.Machine, iters int) ([]Bar, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("fpu: iterations must be positive")
	}
	var bars []Bar
	for _, v := range simdvec.Variants() {
		for _, m := range machines {
			bar := Bar{Machine: m.Name, Variant: v}
			k, err := simdvec.NewKernel(m.Node.Core, v)
			if err != nil {
				// Unsupported (e.g. half precision on Skylake): the figure
				// shows an absent bar.
				bars = append(bars, bar)
				continue
			}
			res, err := k.Run(iters)
			if err != nil {
				return nil, fmt.Errorf("fpu: %s on %s: %w", v.Name(), m.Name, err)
			}
			bar.Supported = true
			bar.Sustained = res.Sustained
			bar.Peak = k.TheoreticalPeak()
			bar.PercentOfPeak = 100 * k.Efficiency(res)
			bar.Checksum = res.Checksum
			bar.Time = res.Time
			bars = append(bars, bar)
		}
	}
	return bars, nil
}

// NodeVariability runs the vector-double variant on every core of a node
// (multi-threaded µKernel) and returns the coefficient of variation of the
// per-core sustained rates, including each core's OS-noise jitter. The
// paper: "we verified there is no variability of the performance within a
// node".
func NodeVariability(m machine.Machine, iters int, seed uint64) (float64, error) {
	perCore, err := coreRates(m, iters, seed, 0)
	if err != nil {
		return 0, err
	}
	return stats.CoefficientOfVariation(perCore), nil
}

// ClusterVariability runs the kernel on one core of each of n nodes and
// returns the coefficient of variation across nodes.
func ClusterVariability(m machine.Machine, nodes, iters int, seed uint64) (float64, error) {
	if nodes <= 0 || nodes > m.Nodes {
		return 0, fmt.Errorf("fpu: node count %d out of range [1,%d]", nodes, m.Nodes)
	}
	rates := make([]float64, nodes)
	for node := 0; node < nodes; node++ {
		per, err := coreRates(m, iters, seed, uint64(node))
		if err != nil {
			return 0, err
		}
		rates[node] = per[0]
	}
	return stats.CoefficientOfVariation(rates), nil
}

// coreRates returns the jittered sustained rate of every core of one node.
func coreRates(m machine.Machine, iters int, seed, node uint64) ([]float64, error) {
	k, err := simdvec.NewKernel(m.Node.Core, simdvec.Variant{Vector: true, Precision: machine.Double})
	if err != nil {
		return nil, err
	}
	res, err := k.Run(iters)
	if err != nil {
		return nil, err
	}
	rates := make([]float64, m.Node.Cores())
	for core := range rates {
		r := xrand.New(xrand.MixN(seed, node, uint64(core)))
		// The FPU kernel runs entirely from registers, so OS noise is the
		// only perturbation — and it is tiny.
		rates[core] = float64(res.Sustained) / r.SlowJitter(m.Node.OSNoise)
	}
	return rates, nil
}
