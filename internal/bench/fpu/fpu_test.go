package fpu

import (
	"math"
	"testing"

	"clustereval/internal/machine"
	"clustereval/internal/simdvec"
)

func TestFigure1Shape(t *testing.T) {
	machines := []machine.Machine{machine.CTEArm(), machine.MareNostrum4()}
	bars, err := Figure1(machines, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// 6 variants x 2 machines.
	if len(bars) != 12 {
		t.Fatalf("%d bars, want 12", len(bars))
	}

	byKey := map[string]Bar{}
	for _, b := range bars {
		byKey[b.Machine+"/"+b.Variant.Name()] = b
	}

	// Paper anchor points (theoretical peaks, sustained ~matching).
	anchors := []struct {
		key  string
		peak float64 // GFlop/s
	}{
		{"CTE-Arm/vector-double", 70.4},
		{"CTE-Arm/vector-single", 140.8},
		{"CTE-Arm/vector-half", 281.6},
		{"MareNostrum 4/vector-double", 67.2},
		{"MareNostrum 4/vector-single", 134.4},
		{"CTE-Arm/scalar-double", 8.8},
		{"MareNostrum 4/scalar-double", 8.4},
	}
	for _, a := range anchors {
		b, ok := byKey[a.key]
		if !ok || !b.Supported {
			t.Errorf("missing bar %s", a.key)
			continue
		}
		if math.Abs(b.Peak.Giga()-a.peak) > 1e-9 {
			t.Errorf("%s peak = %v, want %v", a.key, b.Peak.Giga(), a.peak)
		}
		// "Measurements match almost perfectly with the theoretical values."
		if b.PercentOfPeak < 98.5 || b.PercentOfPeak > 100 {
			t.Errorf("%s percent = %.2f, want ~99+", a.key, b.PercentOfPeak)
		}
	}

	// Skylake has no half-precision bars.
	for _, v := range []string{"scalar-half", "vector-half"} {
		if byKey["MareNostrum 4/"+v].Supported {
			t.Errorf("MN4 %s should be unsupported", v)
		}
	}

	// A64FX vector bars beat the corresponding MN4 bars (higher peak).
	for _, prec := range []string{"double", "single"} {
		arm := byKey["CTE-Arm/vector-"+prec]
		mn4 := byKey["MareNostrum 4/vector-"+prec]
		if arm.Sustained <= mn4.Sustained {
			t.Errorf("vector-%s: CTE %v should beat MN4 %v", prec, arm.Sustained, mn4.Sustained)
		}
	}

	// Checksums prove the kernels really executed.
	for _, b := range bars {
		if b.Supported && b.Checksum == 0 {
			t.Errorf("%s/%s has zero checksum", b.Machine, b.Variant.Name())
		}
	}
}

func TestFigure1Errors(t *testing.T) {
	if _, err := Figure1(nil, 0); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestNodeVariabilityNegligible(t *testing.T) {
	for _, m := range []machine.Machine{machine.CTEArm(), machine.MareNostrum4()} {
		cv, err := NodeVariability(m, 2000, 1)
		if err != nil {
			t.Fatal(err)
		}
		// The paper verified there is no within-node variability.
		if cv > 0.01 {
			t.Errorf("%s within-node cv = %.4f, want < 1%%", m.Name, cv)
		}
		if cv == 0 {
			t.Errorf("%s cv exactly zero — noise model not applied", m.Name)
		}
	}
}

func TestClusterVariabilityNegligible(t *testing.T) {
	m := machine.CTEArm()
	cv, err := ClusterVariability(m, 192, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cv > 0.01 {
		t.Errorf("across-node cv = %.4f, want < 1%%", cv)
	}
}

func TestClusterVariabilityErrors(t *testing.T) {
	m := machine.CTEArm()
	if _, err := ClusterVariability(m, 0, 100, 1); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := ClusterVariability(m, 500, 100, 1); err == nil {
		t.Error("more nodes than the cluster accepted")
	}
}

func TestDeterministic(t *testing.T) {
	m := []machine.Machine{machine.CTEArm()}
	a, err := Figure1(m, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure1(m, 500)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Sustained != b[i].Sustained || a[i].Checksum != b[i].Checksum {
			t.Fatalf("bar %d differs between runs", i)
		}
	}
}

func TestVariantOrderMatchesFigure(t *testing.T) {
	bars, err := Figure1([]machine.Machine{machine.CTEArm()}, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"scalar-half", "scalar-single", "scalar-double",
		"vector-half", "vector-single", "vector-double"}
	for i, b := range bars {
		if b.Variant.Name() != want[i] {
			t.Errorf("bar %d = %s, want %s", i, b.Variant.Name(), want[i])
		}
	}
	_ = simdvec.Variants()
}
