package osu

import (
	"context"
	"errors"
	"math"
	"testing"

	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/topology"
	"clustereval/internal/units"
)

func tofu(t *testing.T, nodes int) *interconnect.Fabric {
	t.Helper()
	f, err := interconnect.NewTofuD(machine.CTEArm(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestMeasurePairAgainstModel(t *testing.T) {
	// The DES-backed measurement and the direct cost model must agree:
	// the DES adds only the software overheads.
	f := tofu(t, 24)
	for _, size := range []units.Bytes{256, 64 * 1024, 4 << 20} {
		des, err := MeasurePair(f, 0, 7, size, 8)
		if err != nil {
			t.Fatal(err)
		}
		direct := f.SustainedBandwidth(0, 7, size, 8)
		// The Sendrecv loop overlaps the two directions; the reported
		// bandwidth can exceed the one-way model slightly but must be
		// within a small factor.
		ratio := float64(des) / float64(direct)
		if ratio < 0.5 || ratio > 1.5 {
			t.Errorf("size %v: DES %v vs model %v (ratio %.2f)", size, des, direct, ratio)
		}
	}
}

func TestMeasurePairErrors(t *testing.T) {
	f := tofu(t, 12)
	if _, err := MeasurePair(f, 0, 1, 256, 0); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := MeasurePair(f, 0, 99, 256, 4); err == nil {
		t.Error("invalid node accepted")
	}
}

func TestFigure4DegradedNode(t *testing.T) {
	// Fig. 4's finding: arms0b1-11c (node 23) is slow as a receiver but
	// fine as a sender. Use a large size where the effect dominates.
	f := tofu(t, 192)
	h, err := Figure4(f, units.Bytes(1<<20), 4)
	if err != nil {
		t.Fatal(err)
	}
	degraded := h.DegradedReceivers(0.5)
	if len(degraded) != 1 || degraded[0] != 23 {
		t.Fatalf("degraded receivers = %v, want [23]", degraded)
	}
	if topology.TofuNodeName(degraded[0]) != "arms0b1-11c" {
		t.Errorf("degraded node name = %s", topology.TofuNodeName(degraded[0]))
	}
	// Sender side healthy: within 20 % of the median sender.
	sender := float64(h.MeanAsSender(23))
	other := float64(h.MeanAsSender(24))
	if math.Abs(sender-other)/other > 0.2 {
		t.Errorf("node 23 as sender %.3g differs from healthy %.3g", sender, other)
	}
}

func TestFigure4DiagonalBanding(t *testing.T) {
	// The diagonal profile must correlate with hop distance: offsets whose
	// torus distance is small show higher bandwidth.
	f := tofu(t, 192)
	h, err := Figure4(f, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	prof := h.DiagonalProfile()
	if len(prof) != 191 {
		t.Fatalf("profile length %d", len(prof))
	}
	// Mean hop count per offset.
	hops := make([]float64, 191)
	for k := 1; k < 192; k++ {
		sum := 0.0
		for s := 0; s < 192; s++ {
			sum += float64(f.Topo.Hops(s, (s+k)%192))
		}
		hops[k-1] = sum / 192
	}
	// Rank correlation proxy: the offset with the fewest hops must have
	// higher bandwidth than the offset with the most hops.
	minK, maxK := 0, 0
	for k := range hops {
		if hops[k] < hops[minK] {
			minK = k
		}
		if hops[k] > hops[maxK] {
			maxK = k
		}
	}
	if prof[minK] <= prof[maxK] {
		t.Errorf("banding absent: near offset %.3g <= far offset %.3g", prof[minK], prof[maxK])
	}
}

func TestFigure4Errors(t *testing.T) {
	f := tofu(t, 12)
	if _, err := Figure4(f, 256, 0); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestHeatmapMeans(t *testing.T) {
	f := tofu(t, 12)
	h, err := Figure4(f, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Nodes() != 12 {
		t.Fatalf("nodes = %d", h.Nodes())
	}
	for i := 0; i < 12; i++ {
		if h.BW[i][i] != 0 {
			t.Errorf("diagonal entry %d not zero", i)
		}
		if h.MeanAsSender(i) <= 0 || h.MeanAsReceiver(i) <= 0 {
			t.Errorf("node %d has non-positive mean bandwidth", i)
		}
	}
}

func TestFigure5Bimodality(t *testing.T) {
	// Paper: bimodal distribution for 1 kB..256 kB; wide variability >1 MB.
	f := tofu(t, 48)
	d, err := Figure5(f, 6, 24, 120, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Sizes) != 19 {
		t.Fatalf("%d sizes", len(d.Sizes))
	}
	bimodal := d.BimodalSizes(0.12)
	foundMid := false
	for _, s := range bimodal {
		if s >= 1024 && s <= 256*1024 {
			foundMid = true
		}
	}
	if !foundMid {
		t.Errorf("no bimodal size in 1kB..256kB; bimodal set: %v", bimodal)
	}

	// Spread grows with message size past 1 MB.
	idxOf := func(size units.Bytes) int {
		for i, s := range d.Sizes {
			if s == size {
				return i
			}
		}
		t.Fatalf("size %v missing", size)
		return -1
	}
	spreadSmall := d.SpreadAt(idxOf(256))
	spreadLarge := d.SpreadAt(idxOf(units.Bytes(1 << 23)))
	if spreadLarge <= spreadSmall {
		t.Errorf("large-message spread %.2f not above small %.2f", spreadLarge, spreadSmall)
	}
}

func TestFigure5Errors(t *testing.T) {
	f := tofu(t, 12)
	if _, err := Figure5(f, 10, 5, 10, 4); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := Figure5(f, -1, 5, 10, 4); err == nil {
		t.Error("negative exponent accepted")
	}
	if _, err := Figure5(f, 0, 4, 0, 4); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := Figure5(f, 0, 4, 10, 0); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestMeasureLatency(t *testing.T) {
	f := tofu(t, 24)
	sizes := []units.Bytes{0, 8, 1024, 64 * 1024}
	pts, err := MeasureLatency(f, 0, 7, sizes, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(sizes) {
		t.Fatalf("%d points", len(pts))
	}
	// Zero-byte latency must sit at/above the physical one-way latency and
	// below a few microseconds.
	floor := float64(f.Latency(0, 7))
	if float64(pts[0].Latency) < floor {
		t.Errorf("0B latency %v below physical floor %v", pts[0].Latency, units.Seconds(floor))
	}
	if pts[0].Latency > 5e-6 {
		t.Errorf("0B latency implausibly high: %v", pts[0].Latency)
	}
	// Latency grows with size, modulo the small persistent per-size
	// jitter (a real OSU run wiggles the same way at tiny sizes).
	for i := 1; i < len(pts); i++ {
		if float64(pts[i].Latency) < 0.95*float64(pts[i-1].Latency) {
			t.Errorf("latency dropped at size %v: %v after %v",
				pts[i].Size, pts[i].Latency, pts[i-1].Latency)
		}
	}
	// And the large size clearly dominates the small one.
	if pts[len(pts)-1].Latency < 2*pts[0].Latency {
		t.Error("64 KiB latency should far exceed 0 B latency")
	}
}

func TestMeasureLatencyErrors(t *testing.T) {
	f := tofu(t, 12)
	if _, err := MeasureLatency(f, 0, 1, []units.Bytes{8}, 0); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := MeasureLatency(f, 0, 1, nil, 4); err == nil {
		t.Error("no sizes accepted")
	}
	if _, err := MeasureLatency(f, 0, 99, []units.Bytes{8}, 4); err == nil {
		t.Error("invalid node accepted")
	}
}

func TestDeterminism(t *testing.T) {
	f1, f2 := tofu(t, 24), tofu(t, 24)
	h1, _ := Figure4(f1, 256, 4)
	h2, _ := Figure4(f2, 256, 4)
	for s := range h1.BW {
		for r := range h1.BW[s] {
			if h1.BW[s][r] != h2.BW[s][r] {
				t.Fatalf("heatmap not deterministic at (%d,%d)", s, r)
			}
		}
	}
}

func TestMeasurePairContextCancelled(t *testing.T) {
	f := tofu(t, 12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MeasurePairContext(ctx, f, 0, 1, 256, 8); !errors.Is(err, context.Canceled) {
		t.Errorf("MeasurePairContext(cancelled) = %v, want context.Canceled", err)
	}
	// The context-free entry point must still work unchanged.
	if _, err := MeasurePair(f, 0, 1, 256, 8); err != nil {
		t.Errorf("MeasurePair: %v", err)
	}
}
