// Package osu implements the paper's network micro-benchmark (Section
// III-C), a custom OSU-style point-to-point test: N iterations of
// MPI_Sendrecv at fixed message size s, bandwidth B = s*N/(te-ts).
//
// Two measurement paths exist and are tested to agree: MeasurePair drives a
// real two-rank program through the simulated MPI runtime (every message
// schedules through the DES), while the Heatmap/Distribution generators
// price messages directly with the fabric cost model so that the full
// 192x191-pair sweeps of Figs. 4 and 5 stay fast.
package osu

import (
	"context"
	"fmt"
	"math"
	"sort"

	"clustereval/internal/interconnect"
	"clustereval/internal/mpisim"
	"clustereval/internal/stats"
	"clustereval/internal/units"
)

// DefaultIterations matches the short inner loop of the paper's test.
const DefaultIterations = 16

// MeasurePair runs the real Sendrecv loop between two nodes through the
// simulated MPI runtime and returns the observed bandwidth.
func MeasurePair(f *interconnect.Fabric, sender, receiver int, size units.Bytes, iters int) (units.BytesPerSecond, error) {
	return MeasurePairContext(context.Background(), f, sender, receiver, size, iters)
}

// MeasurePairContext is MeasurePair under a context: a deadline or
// cancellation aborts the simulated run between DES events, which is how
// clusterd's per-job deadlines cut a network measurement short mid-run.
func MeasurePairContext(ctx context.Context, f *interconnect.Fabric, sender, receiver int, size units.Bytes, iters int) (units.BytesPerSecond, error) {
	if iters <= 0 {
		return 0, fmt.Errorf("osu: iterations must be positive")
	}
	w, err := mpisim.NewWorldPlaced(f, []int{sender, receiver})
	if err != nil {
		return 0, err
	}
	var bw units.BytesPerSecond
	err = w.RunContext(ctx, func(c *mpisim.Comm) {
		peer := 1 - c.Rank()
		start := c.Now()
		for i := 0; i < iters; i++ {
			c.Sendrecv(peer, 0, size, nil, peer, 0)
		}
		if c.Rank() == 0 {
			elapsed := c.Now() - start
			bw = units.BytesPerSecond(float64(size) * float64(iters) / float64(elapsed))
		}
	})
	if err != nil {
		return 0, err
	}
	return bw, nil
}

// LatencyPoint is one entry of the osu_latency-style sweep.
type LatencyPoint struct {
	Size    units.Bytes
	Latency units.Seconds // half round-trip, the OSU convention
}

// MeasureLatency runs the classic ping-pong through the simulated MPI
// runtime between two nodes: rank 0 sends, rank 1 echoes; the reported
// latency per size is half the mean round trip.
func MeasureLatency(f *interconnect.Fabric, a, bNode int, sizes []units.Bytes, iters int) ([]LatencyPoint, error) {
	return MeasureLatencyContext(context.Background(), f, a, bNode, sizes, iters)
}

// MeasureLatencyContext is MeasureLatency under a context: the sweep
// aborts between simulated events when ctx is cancelled, which is how
// clusterd's job deadlines cut a long sweep short.
func MeasureLatencyContext(ctx context.Context, f *interconnect.Fabric, a, bNode int, sizes []units.Bytes, iters int) ([]LatencyPoint, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("osu: iterations must be positive")
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("osu: need at least one message size")
	}
	w, err := mpisim.NewWorldPlaced(f, []int{a, bNode})
	if err != nil {
		return nil, err
	}
	out := make([]LatencyPoint, 0, len(sizes))
	err = w.RunContext(ctx, func(c *mpisim.Comm) {
		peer := 1 - c.Rank()
		for _, size := range sizes {
			start := c.Now()
			for i := 0; i < iters; i++ {
				if c.Rank() == 0 {
					c.Send(peer, 0, size, nil)
					c.Recv(peer, 1)
				} else {
					c.Recv(peer, 0)
					c.Send(peer, 1, size, nil)
				}
			}
			if c.Rank() == 0 {
				rtt := (c.Now() - start) / units.Seconds(iters)
				out = append(out, LatencyPoint{Size: size, Latency: rtt / 2})
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Heatmap is the Fig. 4 data: bandwidth for every ordered (sender,
// receiver) pair at one message size.
type Heatmap struct {
	Size  units.Bytes
	Iters int
	// BW[s][r] is the bandwidth from node s to node r; the diagonal is 0
	// (a node does not message itself in this test).
	BW [][]units.BytesPerSecond
}

// Figure4 sweeps all ordered node pairs of the fabric at the given message
// size (the paper uses 256 B as "representative of medium message sizes").
func Figure4(f *interconnect.Fabric, size units.Bytes, iters int) (*Heatmap, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("osu: iterations must be positive")
	}
	n := f.Topo.Nodes()
	h := &Heatmap{Size: size, Iters: iters, BW: make([][]units.BytesPerSecond, n)}
	for s := 0; s < n; s++ {
		h.BW[s] = make([]units.BytesPerSecond, n)
		for r := 0; r < n; r++ {
			if s == r {
				continue
			}
			h.BW[s][r] = f.SustainedBandwidth(s, r, size, iters)
		}
	}
	return h, nil
}

// Nodes returns the node count of the heatmap.
func (h *Heatmap) Nodes() int { return len(h.BW) }

// MeanAsSender returns a node's mean bandwidth over all its outgoing pairs.
func (h *Heatmap) MeanAsSender(node int) units.BytesPerSecond {
	var sum float64
	for r, bw := range h.BW[node] {
		if r != node {
			sum += float64(bw)
		}
	}
	return units.BytesPerSecond(sum / float64(h.Nodes()-1))
}

// MeanAsReceiver returns a node's mean bandwidth over all incoming pairs.
func (h *Heatmap) MeanAsReceiver(node int) units.BytesPerSecond {
	var sum float64
	for s := range h.BW {
		if s != node {
			sum += float64(h.BW[s][node])
		}
	}
	return units.BytesPerSecond(sum / float64(h.Nodes()-1))
}

// DegradedReceivers returns nodes whose mean receive bandwidth falls below
// threshold times the median node's — the analysis that exposes
// arms0b1-11c in Fig. 4.
func (h *Heatmap) DegradedReceivers(threshold float64) []int {
	n := h.Nodes()
	means := make([]float64, n)
	for i := 0; i < n; i++ {
		means[i] = float64(h.MeanAsReceiver(i))
	}
	med := stats.Percentile(means, 50)
	var out []int
	for i, m := range means {
		if m < threshold*med {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// DiagonalProfile returns the mean bandwidth at each sender-receiver index
// offset k (1..n-1): the quantity whose periodic structure produces the
// diagonal banding visible in Fig. 4.
func (h *Heatmap) DiagonalProfile() []float64 {
	n := h.Nodes()
	prof := make([]float64, n-1)
	for k := 1; k < n; k++ {
		var sum float64
		var cnt int
		for s := 0; s < n; s++ {
			r := (s + k) % n
			sum += float64(h.BW[s][r])
			cnt++
		}
		prof[k-1] = sum / float64(cnt)
	}
	return prof
}

// Distribution is the Fig. 5 data: for each message size, a histogram of
// the bandwidth achieved across all node pairs (log10 GB/s bins).
type Distribution struct {
	Sizes []units.Bytes
	// Hist[i] bins log10(bandwidth in GB/s) for Sizes[i].
	Hist []*stats.Histogram
	// LogLo and LogHi bound the common histogram domain.
	LogLo, LogHi float64
}

// Figure5 sweeps message sizes (powers of two from 2^minExp to 2^maxExp)
// over all ordered node pairs and bins the resulting bandwidths.
func Figure5(f *interconnect.Fabric, minExp, maxExp, bins, iters int) (*Distribution, error) {
	if minExp < 0 || maxExp < minExp {
		return nil, fmt.Errorf("osu: bad exponent range [%d, %d]", minExp, maxExp)
	}
	if bins <= 0 {
		return nil, fmt.Errorf("osu: need positive bin count")
	}
	if iters <= 0 {
		return nil, fmt.Errorf("osu: iterations must be positive")
	}
	d := &Distribution{LogLo: -4, LogHi: 1.2}
	n := f.Topo.Nodes()
	for exp := minExp; exp <= maxExp; exp++ {
		size := units.Bytes(math.Pow(2, float64(exp)))
		h := stats.NewHistogram(d.LogLo, d.LogHi, bins)
		for s := 0; s < n; s++ {
			for r := 0; r < n; r++ {
				if s == r {
					continue
				}
				bw := f.SustainedBandwidth(s, r, size, iters)
				h.Add(math.Log10(bw.GB()))
			}
		}
		d.Sizes = append(d.Sizes, size)
		d.Hist = append(d.Hist, h)
	}
	return d, nil
}

// BimodalSizes returns the message sizes whose bandwidth distribution has
// at least two modes above minFraction of the dominant mode — the paper's
// observation for the 1 kB - 256 kB range.
func (d *Distribution) BimodalSizes(minFraction float64) []units.Bytes {
	var out []units.Bytes
	for i, h := range d.Hist {
		if len(h.Modes(minFraction)) >= 2 {
			out = append(out, d.Sizes[i])
		}
	}
	return out
}

// SpreadAt returns the ratio between the 95th and 5th percentile bandwidth
// for size index i — the variability measure for the >1 MB observation.
func (d *Distribution) SpreadAt(i int) float64 {
	h := d.Hist[i]
	var samples []float64
	for b, c := range h.Counts {
		for k := 0; k < c; k++ {
			samples = append(samples, h.BinCenter(b))
		}
	}
	if len(samples) == 0 {
		return 0
	}
	lo := stats.Percentile(samples, 5)
	hi := stats.Percentile(samples, 95)
	return math.Pow(10, hi-lo) // ratio in linear space
}
