package stream

import (
	"math"
	"testing"

	"clustereval/internal/machine"
	"clustereval/internal/memsim"
	"clustereval/internal/omp"
	"clustereval/internal/toolchain"
)

func TestRealKernelsValidate(t *testing.T) {
	// The actual STREAM loops, run concurrently, must pass the official
	// validation for several iteration counts and team sizes.
	node := machine.CTEArm().Node
	for _, threads := range []int{1, 7, 48} {
		team, err := omp.NewTeam(node, threads, omp.Spread)
		if err != nil {
			t.Fatal(err)
		}
		arr, err := NewArrays(10000)
		if err != nil {
			t.Fatal(err)
		}
		const iters = 10
		for i := 0; i < iters; i++ {
			RunIteration(team, arr)
		}
		if err := Validate(arr, iters); err != nil {
			t.Errorf("threads=%d: %v", threads, err)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	team, _ := omp.NewTeam(machine.CTEArm().Node, 4, omp.Close)
	arr, _ := NewArrays(100)
	RunIteration(team, arr)
	arr.A[50] += 1
	if err := Validate(arr, 1); err == nil {
		t.Error("corrupted array passed validation")
	}
}

func TestNewArraysErrors(t *testing.T) {
	if _, err := NewArrays(0); err == nil {
		t.Error("zero-size array accepted")
	}
}

func TestFigure2CTEArmAnchors(t *testing.T) {
	m := machine.CTEArm()
	// Paper: E = 610e6 elements, C version, best 292.0 GB/s at 24 threads
	// (29 % of peak).
	s, err := Figure2(m, toolchain.StreamOpenMPArm(), toolchain.C, 610e6)
	if err != nil {
		t.Fatal(err)
	}
	if s.Best.Threads != 24 {
		t.Errorf("best thread count = %d, paper: 24", s.Best.Threads)
	}
	if math.Abs(s.Best.Bandwidth.GB()-292.0) > 0.02*292.0 {
		t.Errorf("best bandwidth = %.1f GB/s, paper 292.0", s.Best.Bandwidth.GB())
	}
	if math.Abs(s.PercentOfPeak-29) > 2 {
		t.Errorf("percent of peak = %.1f, paper 29", s.PercentOfPeak)
	}
	// C runs ~10 % faster than Fortran on this build.
	sf, err := Figure2(m, toolchain.StreamOpenMPArm(), toolchain.Fortran, 610e6)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(s.Best.Bandwidth) / float64(sf.Best.Bandwidth)
	if ratio < 1.05 || ratio > 1.15 {
		t.Errorf("C/Fortran = %.3f, paper ~1.10", ratio)
	}
}

func TestFigure2MN4Anchors(t *testing.T) {
	m := machine.MareNostrum4()
	s, err := Figure2(m, toolchain.StreamMN4(), toolchain.C, 400e6)
	if err != nil {
		t.Fatal(err)
	}
	if s.Best.Threads != 48 {
		t.Errorf("best thread count = %d, paper: 48", s.Best.Threads)
	}
	if math.Abs(s.Best.Bandwidth.GB()-201.2) > 0.01*201.2 {
		t.Errorf("best = %.1f GB/s, paper 201.2", s.Best.Bandwidth.GB())
	}
}

func TestFigure2SizeRule(t *testing.T) {
	m := machine.CTEArm()
	if _, err := Figure2(m, toolchain.StreamOpenMPArm(), toolchain.C, 1e6); err == nil {
		t.Error("undersized array accepted (paper's E rule)")
	}
	_ = memsim.MinimumElements(m.Node)
}

func TestFigure2CurveShape(t *testing.T) {
	m := machine.CTEArm()
	s, err := Figure2(m, toolchain.StreamOpenMPArm(), toolchain.C, 610e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 48 {
		t.Fatalf("%d points, want 48", len(s.Points))
	}
	// Rising at the start, declining after the peak.
	if !(s.Points[5].Bandwidth > s.Points[0].Bandwidth) {
		t.Error("curve not rising at low thread counts")
	}
	last := s.Points[47].Bandwidth
	if !(last < s.Best.Bandwidth) {
		t.Error("A64FX curve should decline after 24 threads")
	}
}

func TestKernelSeriesOrdering(t *testing.T) {
	m := machine.CTEArm()
	best := map[memsim.Kernel]float64{}
	for _, k := range []memsim.Kernel{memsim.Copy, memsim.Scale, memsim.Add, memsim.Triad} {
		s, err := KernelSeries(m, toolchain.StreamOpenMPArm(), toolchain.C, 610e6, k)
		if err != nil {
			t.Fatal(err)
		}
		best[k] = float64(s.Best.Bandwidth)
		if s.Best.Threads != 24 {
			t.Errorf("%v: best threads %d, want 24", k, s.Best.Threads)
		}
	}
	if !(best[memsim.Copy] > best[memsim.Scale] &&
		best[memsim.Scale] > best[memsim.Triad] &&
		best[memsim.Triad] > best[memsim.Add]) {
		t.Errorf("kernel ordering wrong: %v", best)
	}
	// Triad through KernelSeries equals Figure2 exactly.
	f2, _ := Figure2(m, toolchain.StreamOpenMPArm(), toolchain.C, 610e6)
	if best[memsim.Triad] != float64(f2.Best.Bandwidth) {
		t.Error("Triad kernel series diverged from Figure2")
	}
}

func TestFigure3CTEArmAnchors(t *testing.T) {
	m := machine.CTEArm()
	// Fortran hybrid: 862.6 GB/s (84 % of peak) at 4 ranks x 12 threads.
	f, err := Figure3(m, toolchain.StreamHybridArm(), toolchain.Fortran)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Best.Bandwidth.GB()-862.6) > 0.02*862.6 {
		t.Errorf("Fortran hybrid best = %.1f GB/s, paper 862.6", f.Best.Bandwidth.GB())
	}
	if f.Best.Ranks != 4 || f.Best.ThreadsPerRank != 12 {
		t.Errorf("best config = %s, want 4x12", f.Best.Label())
	}
	if math.Abs(f.PercentOfPeak-84) > 2 {
		t.Errorf("percent = %.1f, paper 84", f.PercentOfPeak)
	}
	// The C hybrid reaches only ~421 GB/s.
	c, err := Figure3(m, toolchain.StreamHybridArm(), toolchain.C)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Best.Bandwidth.GB()-421.1) > 0.03*421.1 {
		t.Errorf("C hybrid best = %.1f GB/s, paper 421.1", c.Best.Bandwidth.GB())
	}
}

func TestFigure3MN4(t *testing.T) {
	m := machine.MareNostrum4()
	s, err := Figure3(m, toolchain.StreamMN4(), toolchain.C)
	if err != nil {
		t.Fatal(err)
	}
	// Hybrid on MN4 matches the OpenMP-only result (~201 GB/s): first
	// touch already places pages correctly.
	if math.Abs(s.Best.Bandwidth.GB()-201.2) > 0.02*201.2 {
		t.Errorf("MN4 hybrid best = %.1f GB/s, want ~201", s.Best.Bandwidth.GB())
	}
	if s.Best.Ranks != 2 || s.Best.ThreadsPerRank != 24 {
		t.Errorf("best config = %s, want 2x24", s.Best.Label())
	}
}

func TestFigure3HybridVsOpenMPGap(t *testing.T) {
	// The paper's motivation for Fig. 3: hybrid STREAM on the A64FX is ~3x
	// the OpenMP-only result; on MN4 they are equal.
	arm := machine.CTEArm()
	omp2, _ := Figure2(arm, toolchain.StreamOpenMPArm(), toolchain.Fortran, 610e6)
	hyb, _ := Figure3(arm, toolchain.StreamHybridArm(), toolchain.Fortran)
	if r := float64(hyb.Best.Bandwidth) / float64(omp2.Best.Bandwidth); r < 2.5 || r > 4 {
		t.Errorf("A64FX hybrid/OpenMP ratio = %.2f, want ~3.2", r)
	}
}

func TestHybridLabel(t *testing.T) {
	p := HybridPoint{Ranks: 4, ThreadsPerRank: 12}
	if p.Label() != "4x12" {
		t.Errorf("label = %s", p.Label())
	}
}

func TestThreadSteps(t *testing.T) {
	got := threadSteps(12)
	want := []int{1, 2, 4, 8, 12}
	if len(got) != len(want) {
		t.Fatalf("steps = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("steps = %v, want %v", got, want)
		}
	}
	got = threadSteps(24)
	if got[len(got)-1] != 24 {
		t.Errorf("steps must end with the full domain: %v", got)
	}
}
