// Package stream implements the paper's STREAM experiments (Section III-B):
// the four McCalpin kernels run for real over the omp runtime (validated
// exactly as stream.c validates), and the bandwidth model regenerates
// Fig. 2 (OpenMP-only thread sweep) and Fig. 3 (hybrid MPI+OpenMP Triad).
package stream

import (
	"fmt"
	"math"

	"clustereval/internal/machine"
	"clustereval/internal/memsim"
	"clustereval/internal/omp"
	"clustereval/internal/toolchain"
	"clustereval/internal/units"
)

// scalarConst is STREAM's scalar (stream.c uses 3.0).
const scalarConst = 3.0

// Arrays holds the three STREAM vectors.
type Arrays struct {
	A, B, C []float64
}

// NewArrays allocates and initializes the vectors exactly like stream.c:
// a=1, b=2, c=0, then a *= 2 in the first timing pass convention (we keep
// plain a=1 and fold the convention into Validate).
func NewArrays(n int) (*Arrays, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stream: array size %d must be positive", n)
	}
	arr := &Arrays{
		A: make([]float64, n),
		B: make([]float64, n),
		C: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		arr.A[i] = 1
		arr.B[i] = 2
		arr.C[i] = 0
	}
	return arr, nil
}

// RunIteration executes one full STREAM iteration — Copy, Scale, Add, Triad
// in order — across the team, mutating the arrays like the C reference:
//
//	c = a; b = s*c; c = a + b; a = b + s*c
func RunIteration(team *omp.Team, arr *Arrays) {
	n := len(arr.A)
	a, b, c := arr.A, arr.B, arr.C
	team.ParallelRanges(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			c[i] = a[i]
		}
	})
	team.ParallelRanges(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			b[i] = scalarConst * c[i]
		}
	})
	team.ParallelRanges(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			c[i] = a[i] + b[i]
		}
	})
	team.ParallelRanges(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] = b[i] + scalarConst*c[i]
		}
	})
}

// Validate checks the arrays after iters iterations, mirroring stream.c's
// checkSTREAMresults: evolve scalar replicas of a, b, c and compare.
func Validate(arr *Arrays, iters int) error {
	aj, bj, cj := 1.0, 2.0, 0.0
	for i := 0; i < iters; i++ {
		cj = aj
		bj = scalarConst * cj
		cj = aj + bj
		aj = bj + scalarConst*cj
	}
	const epsilon = 1e-13
	for i, v := range arr.A {
		if math.Abs(v-aj) > epsilon*math.Abs(aj) {
			return fmt.Errorf("stream: a[%d] = %v, want %v", i, v, aj)
		}
	}
	for i, v := range arr.B {
		if math.Abs(v-bj) > epsilon*math.Abs(bj) {
			return fmt.Errorf("stream: b[%d] = %v, want %v", i, v, bj)
		}
	}
	for i, v := range arr.C {
		if math.Abs(v-cj) > epsilon*math.Abs(cj) {
			return fmt.Errorf("stream: c[%d] = %v, want %v", i, v, cj)
		}
	}
	return nil
}

// Point is one measurement of the Fig. 2 thread sweep.
type Point struct {
	Threads   int
	Bandwidth units.BytesPerSecond
}

// Series is one curve of Fig. 2: a (machine, language) combination swept
// over OpenMP thread counts with spread binding.
type Series struct {
	Machine  string
	Language toolchain.Language
	Elements int
	Points   []Point
	// Best is the highest-bandwidth point (what the paper quotes:
	// 292.0 GB/s at 24 threads for CTE-Arm, 201.2 at 48 for MN4).
	Best          Point
	PercentOfPeak float64
}

// Figure2 sweeps OpenMP thread counts 1..cores for the Triad kernel with
// spread binding, using the Table II build for the machine.
func Figure2(m machine.Machine, comp toolchain.Compiler, lang toolchain.Language, elements int) (Series, error) {
	if elements < memsim.MinimumElements(m.Node) {
		return Series{}, fmt.Errorf("stream: %d elements violates the paper's size rule (min %d)",
			elements, memsim.MinimumElements(m.Node))
	}
	build, err := toolchain.Compile(comp, m, "STREAM")
	if err != nil {
		return Series{}, err
	}
	s := Series{Machine: m.Name, Language: lang, Elements: elements}
	for threads := 1; threads <= m.Node.Cores(); threads++ {
		team, err := omp.NewTeam(m.Node, threads, omp.Spread)
		if err != nil {
			return Series{}, err
		}
		bw, err := memsim.TeamBandwidth(team, true, build.StreamFactor(lang))
		if err != nil {
			return Series{}, err
		}
		p := Point{Threads: threads, Bandwidth: bw}
		s.Points = append(s.Points, p)
		if bw > s.Best.Bandwidth {
			s.Best = p
		}
	}
	s.PercentOfPeak = units.Percent(float64(s.Best.Bandwidth), float64(m.Node.MemoryPeak()))
	return s, nil
}

// KernelSeries is the Fig. 2 curve of one specific STREAM kernel. Figure2
// reports the Triad; the full figure plots all four kernels, whose achieved
// bandwidths differ by a few percent in the order Copy > Scale > Triad >
// Add.
func KernelSeries(m machine.Machine, comp toolchain.Compiler, lang toolchain.Language, elements int, kernel memsim.Kernel) (Series, error) {
	s, err := Figure2(m, comp, lang, elements)
	if err != nil {
		return Series{}, err
	}
	f := kernel.BandwidthFactor()
	for i := range s.Points {
		s.Points[i].Bandwidth = units.BytesPerSecond(float64(s.Points[i].Bandwidth) * f)
	}
	s.Best.Bandwidth = units.BytesPerSecond(float64(s.Best.Bandwidth) * f)
	s.PercentOfPeak = units.Percent(float64(s.Best.Bandwidth), float64(m.Node.MemoryPeak()))
	return s, nil
}

// HybridPoint is one configuration of the Fig. 3 hybrid sweep.
type HybridPoint struct {
	Ranks          int
	ThreadsPerRank int
	Bandwidth      units.BytesPerSecond
}

// Label renders the paper's "ranks x threads" annotation.
func (p HybridPoint) Label() string {
	return fmt.Sprintf("%dx%d", p.Ranks, p.ThreadsPerRank)
}

// HybridSeries is one machine/language curve of Fig. 3.
type HybridSeries struct {
	Machine       string
	Language      toolchain.Language
	Points        []HybridPoint
	Best          HybridPoint
	PercentOfPeak float64
}

// Figure3 runs the hybrid MPI+OpenMP Triad: at most one rank per NUMA
// domain (CMG on CTE-Arm, socket on MN4), threads filling each rank's
// domain, exactly the pinning the paper describes.
func Figure3(m machine.Machine, comp toolchain.Compiler, lang toolchain.Language) (HybridSeries, error) {
	build, err := toolchain.Compile(comp, m, "STREAM")
	if err != nil {
		return HybridSeries{}, err
	}
	s := HybridSeries{Machine: m.Name, Language: lang}
	domains := len(m.Node.Domains)
	coresPerDomain := m.Node.Domains[0].Cores
	for ranks := 1; ranks <= domains; ranks++ {
		for _, threads := range threadSteps(coresPerDomain) {
			perDomain := make([]int, domains)
			for r := 0; r < ranks; r++ {
				perDomain[r] = threads
			}
			bw, err := memsim.StreamBandwidth(m.Node, perDomain, false, build.StreamFactor(lang))
			if err != nil {
				return HybridSeries{}, err
			}
			p := HybridPoint{Ranks: ranks, ThreadsPerRank: threads, Bandwidth: bw}
			s.Points = append(s.Points, p)
			if bw > s.Best.Bandwidth {
				s.Best = p
			}
		}
	}
	s.PercentOfPeak = units.Percent(float64(s.Best.Bandwidth), float64(m.Node.MemoryPeak()))
	return s, nil
}

// threadSteps returns the thread counts swept inside one domain: powers of
// two plus the full domain.
func threadSteps(cores int) []int {
	var steps []int
	for t := 1; t < cores; t *= 2 {
		steps = append(steps, t)
	}
	return append(steps, cores)
}
