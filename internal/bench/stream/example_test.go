package stream_test

import (
	"fmt"

	"clustereval/internal/bench/stream"
	"clustereval/internal/machine"
	"clustereval/internal/toolchain"
)

// Figure2 reproduces the paper's OpenMP-only STREAM story on the A64FX:
// best bandwidth at 24 threads, only ~29 % of the HBM2 peak.
func ExampleFigure2() {
	s, err := stream.Figure2(machine.CTEArm(), toolchain.StreamOpenMPArm(), toolchain.C, 610e6)
	if err != nil {
		panic(err)
	}
	fmt.Printf("best: %.0f GB/s at %d threads (%.0f%% of peak)\n",
		s.Best.Bandwidth.GB(), s.Best.Threads, s.PercentOfPeak)
	// Output:
	// best: 292 GB/s at 24 threads (29% of peak)
}

// Figure3 shows what NUMA-correct placement recovers: one MPI rank per
// CMG reaches 84 % of peak.
func ExampleFigure3() {
	s, err := stream.Figure3(machine.CTEArm(), toolchain.StreamHybridArm(), toolchain.Fortran)
	if err != nil {
		panic(err)
	}
	fmt.Printf("best: %.0f GB/s at %s (%.0f%% of peak)\n",
		s.Best.Bandwidth.GB(), s.Best.Label(), s.PercentOfPeak)
	// Output:
	// best: 862 GB/s at 4x12 (84% of peak)
}
