package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"clustereval/internal/service"
)

// testFleet spins up n real in-process shards (service.Server over
// httptest) behind a coordinator.
type testFleet struct {
	coord   *Coordinator
	servers map[string]*httptest.Server
	svcs    map[string]*service.Service
}

func newTestFleet(t *testing.T, n int) *testFleet {
	t.Helper()
	tf := &testFleet{servers: map[string]*httptest.Server{}, svcs: map[string]*service.Service{}}
	shards := make([]Shard, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("s%d", i)
		svc := service.New(service.Config{Workers: 2, QueueDepth: 64, ShardName: name})
		srv := httptest.NewServer(service.NewServer(svc))
		tf.svcs[name] = svc
		tf.servers[name] = srv
		shards = append(shards, Shard{Name: name, BaseURL: srv.URL})
	}
	coord, err := NewCoordinator(CoordinatorConfig{VirtualNodes: 32}, shards)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	tf.coord = coord
	t.Cleanup(func() {
		for _, srv := range tf.servers {
			srv.Close()
		}
		for _, svc := range tf.svcs {
			_ = svc.Close(context.Background())
		}
	})
	return tf
}

func (tf *testFleet) front(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(tf.coord)
	t.Cleanup(srv.Close)
	return srv
}

type fleetJobView struct {
	ID    string          `json:"id"`
	State string          `json:"state"`
	Shard string          `json:"shard"`
	Error string          `json:"error"`
	Spec  json.RawMessage `json:"spec"`
}

func postJob(t *testing.T, base, spec string) (fleetJobView, *http.Response) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var v fleetJobView
	body, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(body, &v)
	return v, resp
}

func getJob(t *testing.T, base, id string) (fleetJobView, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET /v1/jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	var v fleetJobView
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return v, resp.StatusCode
}

// waitDone polls (bounded iterations, not wall-clock deadlines) until the
// job is terminal.
func waitDone(t *testing.T, base, id string) fleetJobView {
	t.Helper()
	for i := 0; i < 500; i++ {
		v, code := getJob(t, base, id)
		if code == http.StatusOK {
			switch v.State {
			case "done", "failed", "cancelled":
				return v
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return fleetJobView{}
}

func netSpec(i int) string {
	return fmt.Sprintf(`{"kind":"net","size_bytes":%d,"iters":5,"dst_node":%d}`, 1024+i*256, 1+i%30)
}

func TestCoordinatorRoutesByCanonicalKey(t *testing.T) {
	tf := newTestFleet(t, 3)
	front := tf.front(t)

	seenShards := map[string]int{}
	ids := []string{}
	for i := 0; i < 30; i++ {
		v, resp := postJob(t, front.URL, netSpec(i))
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("job %d: HTTP %d", i, resp.StatusCode)
		}
		shard, _, ok := splitFleetID(v.ID)
		if !ok {
			t.Fatalf("job %d: id %q is not a fleet id", i, v.ID)
		}
		if v.Shard != shard {
			t.Fatalf("job %d: shard field %q disagrees with id %q", i, v.Shard, v.ID)
		}
		seenShards[shard]++
		ids = append(ids, v.ID)
	}
	if len(seenShards) < 2 {
		t.Fatalf("30 distinct specs all landed on %v; consistent hashing is not spreading", seenShards)
	}
	for _, id := range ids {
		if v := waitDone(t, front.URL, id); v.State != "done" {
			t.Fatalf("job %s ended %q (%s)", id, v.State, v.Error)
		}
	}
}

// The same canonical spec must route to the same shard every time, so
// the second submission is a cache hit (HTTP 200, not 202).
func TestCoordinatorCacheAffinity(t *testing.T) {
	tf := newTestFleet(t, 3)
	front := tf.front(t)
	spec := `{"kind":"net","size_bytes":32768,"iters":5,"dst_node":3}`

	v1, resp1 := postJob(t, front.URL, spec)
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission: HTTP %d, want 202", resp1.StatusCode)
	}
	waitDone(t, front.URL, v1.ID)

	v2, resp2 := postJob(t, front.URL, spec)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second submission: HTTP %d, want 200 (cache hit)", resp2.StatusCode)
	}
	s1, _, _ := splitFleetID(v1.ID)
	s2, _, _ := splitFleetID(v2.ID)
	if s1 != s2 {
		t.Fatalf("same spec routed to %s then %s; cache affinity broken", s1, s2)
	}
}

func TestCoordinatorRejectsInvalidSpecLocally(t *testing.T) {
	tf := newTestFleet(t, 2)
	front := tf.front(t)
	_, resp := postJob(t, front.URL, `{"kind":"no-such-kind"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec: HTTP %d, want 400", resp.StatusCode)
	}
	// The 400 must come from the coordinator, not a proxy hop.
	if got := tf.coord.forwarded.Value(); got != 0 {
		t.Fatalf("invalid spec was forwarded %d time(s)", got)
	}
}

func TestCoordinatorMergedListing(t *testing.T) {
	tf := newTestFleet(t, 3)
	front := tf.front(t)
	want := map[string]bool{}
	for i := 0; i < 12; i++ {
		v, _ := postJob(t, front.URL, netSpec(i))
		want[v.ID] = true
		waitDone(t, front.URL, v.ID)
	}
	resp, err := http.Get(front.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Jobs []fleetJobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, j := range body.Jobs {
		got[j.ID] = true
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("merged listing is missing job %s (got %d jobs)", id, len(body.Jobs))
		}
	}
}

// A shard that dies at the transport layer must be marked down and its
// key range served by a ring successor on the very next attempt.
func TestCoordinatorFailsOverOnTransportError(t *testing.T) {
	tf := newTestFleet(t, 3)
	front := tf.front(t)

	// Find a spec whose key the ring places on s1, then kill s1's
	// listener outright.
	victim := "s1"
	var spec string
	for i := 0; ; i++ {
		candidate := fmt.Sprintf(`{"kind":"net","size_bytes":%d,"iters":5,"dst_node":7}`, 1024+i*64)
		key := canonicalKeyForTest(t, candidate)
		if owner, _ := tf.coord.ring.Lookup(key); owner == victim {
			spec = candidate
			break
		}
	}

	tf.servers[victim].Close()
	v, resp := postJob(t, front.URL, spec)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submission with %s down: HTTP %d", victim, resp.StatusCode)
	}
	shard, _, _ := splitFleetID(v.ID)
	if shard == victim {
		t.Fatalf("job landed on dead shard %s", victim)
	}
	if tf.coord.forwardErrors.Value() == 0 {
		t.Fatal("transport failure was not counted")
	}
	if live := tf.coord.ring.Shards()[victim]; live {
		t.Fatalf("shard %s still marked live after a transport failure", victim)
	}
	if done := waitDone(t, front.URL, v.ID); done.State != "done" {
		t.Fatalf("failed-over job ended %q (%s)", done.State, done.Error)
	}
}

// canonicalKeyForTest derives the cache key the coordinator will route
// on, via the same registry path.
func canonicalKeyForTest(t *testing.T, specJSON string) string {
	t.Helper()
	var spec service.JobSpec
	if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
		t.Fatalf("bad test spec: %v", err)
	}
	_, key, err := service.Canonicalize(spec)
	if err != nil {
		t.Fatalf("canonicalize: %v", err)
	}
	return key
}

// The coordinator must relay the owning shard's 429 verbatim — same
// Retry-After, no synthesis — and count it on fleet_forward_shed_total.
func TestCoordinatorRelaysShedVerdict(t *testing.T) {
	shed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintln(w, `{"error":"service: shedding load: queue saturation 0.95 >= 0.90"}`)
	}))
	defer shed.Close()

	coord, err := NewCoordinator(CoordinatorConfig{}, []Shard{{Name: "s0", BaseURL: shed.URL}})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(coord)
	defer front.Close()

	resp, err := http.Post(front.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"net","size_bytes":4096,"iters":5,"dst_node":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d, want 429 relayed", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After %q, want the shard's own %q relayed", ra, "7")
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "shedding load") {
		t.Fatalf("shard's shed reason was not relayed: %s", body)
	}
	if got := coord.forwardShed.Value(); got != 1 {
		t.Fatalf("fleet_forward_shed_total = %d, want 1", got)
	}
}

// GETs against a down (but not dead) shard answer 503 + Retry-After:
// the job is journaled and will come back, so 404 would be a lie.
func TestCoordinatorJobGetWhileShardDown(t *testing.T) {
	tf := newTestFleet(t, 2)
	front := tf.front(t)
	v, _ := postJob(t, front.URL, netSpec(1))
	waitDone(t, front.URL, v.ID)

	shard, _, _ := splitFleetID(v.ID)
	tf.coord.SetShardLive(shard, false)
	resp, err := http.Get(front.URL + "/v1/jobs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("HTTP %d, want 503 while shard down", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	tf.coord.SetShardLive(shard, true)
	if got, code := getJob(t, front.URL, v.ID); code != http.StatusOK || got.State != "done" {
		t.Fatalf("after revival: HTTP %d state %q", code, got.State)
	}
}

func TestCoordinatorProbeRevivesShard(t *testing.T) {
	tf := newTestFleet(t, 2)
	tf.coord.SetShardLive("s0", false)
	tf.coord.ProbeOnce(context.Background())
	if !tf.coord.ring.Shards()["s0"] {
		t.Fatal("probe did not revive a healthy shard")
	}
}

func TestCoordinatorFleetEndpoint(t *testing.T) {
	tf := newTestFleet(t, 3)
	front := tf.front(t)
	resp, err := http.Get(front.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Shards []struct {
			Name string `json:"name"`
			Live bool   `json:"live"`
		} `json:"shards"`
		VirtualNodes int `json:"virtual_nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Shards) != 3 || body.VirtualNodes != 32 {
		t.Fatalf("fleet topology = %+v", body)
	}
	for _, s := range body.Shards {
		if !s.Live {
			t.Fatalf("shard %s reported not live", s.Name)
		}
	}
}
