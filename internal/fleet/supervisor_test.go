package fleet

import (
	"context"
	"io"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildClusterd compiles the real daemon binary for supervisor tests.
func buildClusterd(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping child-process supervision test in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "clusterd")
	cmd := exec.Command("go", "build", "-o", bin, "clustereval/cmd/clusterd")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building clusterd: %v\n%s", err, out)
	}
	return bin
}

// waitLive polls until the named shard is (or is not) live.
func waitLive(t *testing.T, c *Coordinator, shard string, want bool) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		for _, st := range c.allShards() {
			st.mu.Lock()
			name, live := st.decl.Name, st.live
			st.mu.Unlock()
			if name == shard && live == want {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("shard %s never became live=%v", shard, want)
}

// restartBackoff must be a pure function of (shard, attempt): same
// inputs, same delay — reproducible restart schedules — while different
// shards desynchronize so a fleet-wide crash doesn't respawn everyone on
// the same instant.
func TestRestartBackoffDeterministicJitter(t *testing.T) {
	base, max := 100*time.Millisecond, 5*time.Second
	for attempt := 1; attempt <= 10; attempt++ {
		got := restartBackoff(base, max, "s0", attempt)
		if again := restartBackoff(base, max, "s0", attempt); again != got {
			t.Fatalf("attempt %d: %v then %v; jitter must be deterministic", attempt, got, again)
		}
		exp := base
		for i := 1; i < attempt && exp < max; i++ {
			exp *= 2
		}
		if exp > max {
			exp = max
		}
		lo, hi := time.Duration(float64(exp)*0.75), time.Duration(float64(exp)*1.25)
		if got < lo || got >= hi {
			t.Fatalf("attempt %d: delay %v outside jitter band [%v, %v)", attempt, got, lo, hi)
		}
	}
	diverged := false
	for attempt := 1; attempt <= 10 && !diverged; attempt++ {
		diverged = restartBackoff(base, max, "s0", attempt) != restartBackoff(base, max, "s1", attempt)
	}
	if !diverged {
		t.Fatal("s0 and s1 share an identical 10-attempt backoff schedule; jitter is not shard-seeded")
	}
}

// Clock-injected supervision: hostSleep is overridden to record delays,
// the child is a binary that exits instantly without a banner, and the
// recorded sleeps must match restartBackoff's predicted schedule exactly.
func TestSupervisorSleepsJitteredSchedule(t *testing.T) {
	var mu sync.Mutex
	var slept []time.Duration
	origSleep := hostSleep
	hostSleep = func(d time.Duration) {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
	}
	defer func() { hostSleep = origSleep }()

	coord, err := NewCoordinator(CoordinatorConfig{VirtualNodes: 8}, []Shard{{Name: "s0"}})
	if err != nil {
		t.Fatal(err)
	}
	const base, max = 10 * time.Millisecond, 40 * time.Millisecond
	sup := NewSupervisor(SupervisorConfig{
		Bin:            "/bin/false", // exits 1 immediately, never announces
		RestartBackoff: base,
		MaxBackoff:     max,
		MaxRestarts:    3,
		Stdout:         io.Discard,
		Stderr:         io.Discard,
	}, coord)
	err = sup.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "shard dead after 3 restarts") {
		t.Fatalf("Run = %v, want restart-budget exhaustion", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(slept) != 3 {
		t.Fatalf("recorded %d sleeps (%v), want one per consumed restart (3)", len(slept), slept)
	}
	for i, d := range slept {
		if want := restartBackoff(base, max, "s0", i+1); d != want {
			t.Fatalf("restart %d slept %v, want the deterministic schedule's %v", i+1, d, want)
		}
	}
}

// End-to-end through real processes: the supervisor spawns clusterd
// children, learns their addresses from the banner, restarts a SIGKILLed
// shard with the same journal, and the killed shard's jobs stay
// resolvable under their original fleet IDs.
func TestSupervisorRestartsKilledShard(t *testing.T) {
	bin := buildClusterd(t)
	dir := t.TempDir()

	coord, err := NewCoordinator(CoordinatorConfig{VirtualNodes: 32}, []Shard{
		{Name: "s0", JournalPath: filepath.Join(dir, "s0.wal")},
		{Name: "s1", JournalPath: filepath.Join(dir, "s1.wal")},
	})
	if err != nil {
		t.Fatal(err)
	}
	sup := NewSupervisor(SupervisorConfig{
		Bin:            bin,
		BaseArgs:       []string{"-workers", "2", "-queue", "64"},
		RestartBackoff: 50 * time.Millisecond,
		Stdout:         io.Discard,
		Stderr:         io.Discard,
	}, coord)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	supDone := make(chan error, 1)
	go func() { supDone <- sup.Run(ctx) }()

	waitLive(t, coord, "s0", true)
	waitLive(t, coord, "s1", true)

	front := httptest.NewServer(coord)
	defer front.Close()

	// Land one job on each shard and wait for both results.
	ids := map[string]string{}
	for i := 0; len(ids) < 2 && i < 400; i++ {
		v, resp := postJob(t, front.URL, netSpec(i))
		if resp.StatusCode != 200 && resp.StatusCode != 202 {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		shard, _, _ := splitFleetID(v.ID)
		if _, ok := ids[shard]; !ok {
			ids[shard] = v.ID
		}
	}
	if len(ids) < 2 {
		t.Fatal("could not land jobs on both shards")
	}
	for _, id := range ids {
		if v := waitDone(t, front.URL, id); v.State != "done" {
			t.Fatalf("job %s ended %q", id, v.State)
		}
	}

	// SIGKILL s1's child. The supervisor must notice, restart it with the
	// same journal, and republish its (new) address.
	pid := sup.PID("s1")
	if pid == 0 {
		t.Fatal("no PID recorded for s1")
	}
	if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
		t.Fatalf("kill s1 (pid %d): %v", pid, err)
	}
	waitLive(t, coord, "s1", false)
	waitLive(t, coord, "s1", true)
	if sup.PID("s1") == pid {
		t.Fatal("s1 was not respawned: same PID after SIGKILL")
	}
	if coord.restarts.Value() == 0 {
		t.Fatal("fleet_shard_restarts_total not incremented")
	}

	// The journal-recovered shard must still resolve its pre-kill job
	// under the original fleet ID — exactly-once across a restart.
	if v := waitDone(t, front.URL, ids["s1"]); v.State != "done" {
		t.Fatalf("job %s not recovered after restart: %q", ids["s1"], v.State)
	}
	// And fresh work routed at s1 completes on the new child.
	v, resp := postJob(t, front.URL, netSpec(900))
	if resp.StatusCode != 200 && resp.StatusCode != 202 {
		t.Fatalf("post-restart submit: HTTP %d", resp.StatusCode)
	}
	if got := waitDone(t, front.URL, v.ID); got.State != "done" {
		t.Fatalf("post-restart job ended %q", got.State)
	}

	cancel()
	select {
	case <-supDone:
	case <-time.After(10 * time.Second):
		t.Fatal("supervisor did not exit after cancel")
	}
}
