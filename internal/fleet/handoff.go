package fleet

import (
	"encoding/json"
	"fmt"
	"os"

	"clustereval/internal/journal"
)

// Unfinished is one job a dead shard accepted but never finished: the
// raw material of a handoff. Spec is the canonical spec JSON exactly as
// the shard journaled it, so resubmitting it reproduces the same cache
// key on the new owner.
type Unfinished struct {
	ID   string // the dead shard's local job ID
	Key  string // canonical cache key
	Spec json.RawMessage
}

// UnfinishedJobs reads a shard's write-ahead journal without opening it
// for append and returns every job that was submitted but reached no
// terminal state, in submission order. A journal ending in a clean
// shutdown marker yields nothing: a drained shard finishes or cancels
// everything before writing the marker, so an unfinished job there is a
// bookkeeping casualty the shard's own recovery would cancel, not work
// to move.
//
// A torn tail (the append the shard died inside) is skipped exactly the
// way journal.Open would truncate it; mid-file corruption is refused —
// a handoff must never invent work.
func UnfinishedJobs(path string) ([]Unfinished, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil // never wrote a record: nothing to move
		}
		return nil, fmt.Errorf("fleet: reading journal %s: %w", path, err)
	}
	recs, _, _, err := journal.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("fleet: decoding journal %s: %w", path, err)
	}
	if len(recs) == 0 {
		return nil, nil
	}
	if recs[len(recs)-1].Type == journal.TypeShutdown {
		return nil, nil
	}

	submitted := map[string]Unfinished{}
	terminal := map[string]bool{}
	var order []string
	for _, r := range recs {
		switch r.Type {
		case journal.TypeSubmitted:
			if _, dup := submitted[r.JobID]; !dup {
				order = append(order, r.JobID)
			}
			submitted[r.JobID] = Unfinished{ID: r.JobID, Key: r.Key, Spec: r.Spec}
			terminal[r.JobID] = false
		case journal.TypeDone, journal.TypeFailed, journal.TypeCancelled:
			terminal[r.JobID] = true
		}
	}
	var out []Unfinished
	for _, id := range order {
		if !terminal[id] {
			out = append(out, submitted[id])
		}
	}
	return out, nil
}
