package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"

	"clustereval/internal/journal"
	"clustereval/internal/service"
)

// This file is the fleet half of journal replication. The service layer
// (internal/service/replication.go) knows how to ship framed journal
// records to a peer set and refuse submits that miss their write quorum;
// the fleet layer decides WHO those peers are (deterministic ring
// successors), keeps every primary's peer set pointed at the children's
// current ephemeral ports, and — after a disk loss — rebuilds the
// primary's journal from the best surviving follower replica so the
// revived child replays under its original identity.

// ErrNoReplica reports that no follower holds any replica of a shard's
// journal — promotion has nothing to recover from, and a fresh journal
// is the correct (empty) restart state.
var ErrNoReplica = errors.New("fleet: no follower holds a replica")

// ReplicationEnabled reports whether this fleet ships journal replicas
// (Replicas > 1). With replication off every path below is a no-op and
// the fleet behaves exactly like the unreplicated seed.
func (c *Coordinator) ReplicationEnabled() bool { return c.cfg.Replicas > 1 }

// Followers returns the shards replicating name's journal: its
// Replicas-1 distinct ring successors, in ring order. Deterministic for
// a given fleet membership, and independent of liveness — a follower
// that is briefly down keeps its assignment (and its on-disk replica).
func (c *Coordinator) Followers(name string) []string {
	if !c.ReplicationEnabled() {
		return nil
	}
	return c.ring.Successors(name, c.cfg.Replicas-1)
}

// SyncReplication (re)points every live shard's replication at its
// followers' current addresses. The supervisor calls it after each child
// banner: children restart on ephemeral ports, so any announce can
// invalidate peer sets fleet-wide. Push failures are counted, not fatal
// — a shard that cannot be synced keeps its previous peer set, and a
// stale peer URL surfaces as a missed quorum (503, retryable) rather
// than silent data loss.
func (c *Coordinator) SyncReplication(ctx context.Context) {
	if !c.ReplicationEnabled() {
		return
	}
	for _, st := range c.liveShards() {
		st.mu.Lock()
		name := st.decl.Name
		st.mu.Unlock()
		if err := c.pushPeers(ctx, name); err != nil {
			c.replSyncErrors.Inc()
		}
	}
}

// pushPeers PUTs one primary's follower set. Followers are included as
// long as they are not permanently dead and have ever announced an
// address — a down-but-restarting follower keeps its (possibly stale)
// URL on purpose, trading availability for durability: ships to it fail,
// submits bounce with 503 until the supervisor brings it back, and
// nothing is acknowledged on fewer copies than the quorum promises.
func (c *Coordinator) pushPeers(ctx context.Context, name string) error {
	st := c.shard(name)
	if st == nil {
		return fmt.Errorf("fleet: unknown shard %q", name)
	}
	peers := []service.Peer{}
	for _, f := range c.Followers(name) {
		fst := c.shard(f)
		if fst == nil {
			continue
		}
		fst.mu.Lock()
		url := fst.baseURL
		dead := fst.dead
		fst.mu.Unlock()
		if dead || url == "" {
			continue
		}
		peers = append(peers, service.Peer{Shard: f, URL: url})
	}
	body, err := json.Marshal(map[string]any{"quorum": c.cfg.AckQuorum, "peers": peers})
	if err != nil {
		return fmt.Errorf("fleet: encoding peer set for %s: %w", name, err)
	}
	reqCtx, cancel := context.WithTimeout(ctx, c.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPut, st.url()+"/v1/replication/peers", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("fleet: building peer push for %s: %w", name, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return fmt.Errorf("fleet: pushing peers to %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("fleet: shard %s rejected peer set: HTTP %d: %s", name, resp.StatusCode, snippet)
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	return nil
}

// PromoteShard rebuilds a shard's lost journal from the best follower
// replica: every follower's replica-<shard>.wal is read, the one holding
// the highest sequence wins (ties keep the earliest successor), and its
// records are rewritten as a plain journal at the shard's declared
// JournalPath — the next child spawn replays it through the normal
// durable-recovery path under the shard's original identity. Returns the
// records recovered and the follower they came from; ErrNoReplica when
// no follower has anything.
//
// Promotion reads follower replicas directly from disk: this fleet's
// children all run on the supervisor's host, the same assumption the
// journal-handoff path already makes.
func (c *Coordinator) PromoteShard(name string) (int, string, error) {
	st := c.shard(name)
	if st == nil {
		return 0, "", fmt.Errorf("fleet: unknown shard %q", name)
	}
	if !c.ReplicationEnabled() {
		return 0, "", fmt.Errorf("%w: replication is disabled", ErrNoReplica)
	}
	st.mu.Lock()
	journalPath := st.decl.JournalPath
	dead := st.dead
	st.mu.Unlock()
	if dead {
		return 0, "", fmt.Errorf("fleet: shard %s is permanently dead", name)
	}
	if journalPath == "" {
		return 0, "", fmt.Errorf("fleet: shard %s declares no journal", name)
	}

	var bestFrom, bestPath string
	var bestSeq uint64
	found := false
	for _, f := range c.Followers(name) {
		fst := c.shard(f)
		if fst == nil {
			continue
		}
		fst.mu.Lock()
		dir := fst.decl.DataDir
		fst.mu.Unlock()
		if dir == "" {
			continue
		}
		path := journal.ReplicaPath(dir, name)
		if _, err := os.Stat(path); err != nil {
			continue
		}
		_, lastSeq, err := journal.ReadReplica(path)
		if err != nil {
			// A damaged replica loses the vote; another follower may
			// still hold a clean copy.
			continue
		}
		if !found || lastSeq > bestSeq {
			found, bestFrom, bestPath, bestSeq = true, f, path, lastSeq
		}
	}
	if !found {
		return 0, "", fmt.Errorf("%w of shard %s", ErrNoReplica, name)
	}
	if err := os.MkdirAll(filepath.Dir(journalPath), 0o755); err != nil {
		return 0, "", fmt.Errorf("fleet: recreating shard %s data dir: %w", name, err)
	}
	n, err := journal.PromoteReplica(bestPath, journalPath)
	if err != nil {
		return 0, "", fmt.Errorf("fleet: promoting %s replica held by %s: %w", name, bestFrom, err)
	}
	c.promotions.Inc()
	c.promotedRecs.Add(uint64(n))
	return n, bestFrom, nil
}
