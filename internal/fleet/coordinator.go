package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"clustereval/internal/experiment"
	"clustereval/internal/service"
)

// Shard declares one clusterd the coordinator routes to. BaseURL may be
// empty at construction (a supervised shard learns its ephemeral port
// only once the child prints its banner) and set later via SetShardURL.
type Shard struct {
	// Name is the shard's stable identity ("s0"); it prefixes fleet job
	// IDs and survives restarts, so it must match ^[a-z0-9]+$.
	Name string
	// BaseURL is "http://host:port" of the shard's clusterd.
	BaseURL string
	// JournalPath, when non-empty, locates the shard's write-ahead
	// journal for handoff after permanent death.
	JournalPath string
	// DataDir, when non-empty, is the shard's on-disk home. With
	// replication enabled the child also keeps the replica journals it
	// follows for other shards here (replica-<src>.wal), which is where
	// promotion looks after a disk loss.
	DataDir string
}

var shardNameRe = regexp.MustCompile(`^[a-z0-9]+$`)

// shardState tracks one shard's routing view.
type shardState struct {
	mu      sync.Mutex
	decl    Shard
	live    bool
	dead    bool // permanently failed; never routable again
	pid     int  // supervised child PID, 0 when unknown
	baseURL string
}

func (s *shardState) url() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.baseURL
}

// route records where a fleet job ID actually lives — normally the shard
// its name encodes, but handoff moves crash victims of a dead shard onto
// survivors without changing their public ID.
type route struct {
	shard   string
	localID string
}

// CoordinatorConfig sizes the coordinator.
type CoordinatorConfig struct {
	// VirtualNodes per shard on the hash ring; 0 means 64.
	VirtualNodes int
	// ForwardTimeout bounds one proxied request; 0 means 30s. Submissions
	// answer fast (202/200 on enqueue or cache hit), so this is a
	// transport bound, not a job-duration bound.
	ForwardTimeout time.Duration
	// ProbeInterval paces the background health poll Run drives; 0 means
	// 250ms.
	ProbeInterval time.Duration
	// Replicas is how many copies of each shard's journal the fleet
	// keeps: the primary plus Replicas-1 ring-successor followers.
	// 0 or 1 disables replication entirely (the seed behavior).
	Replicas int
	// AckQuorum is how many of those copies must fsync before a submit
	// is acknowledged; 0 means a majority (Replicas/2 + 1). Must satisfy
	// 1 <= AckQuorum <= Replicas.
	AckQuorum int
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 30 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.AckQuorum <= 0 {
		c.AckQuorum = c.Replicas/2 + 1
	}
	return c
}

// Coordinator fronts a fleet of clusterd shards: it owns the hash ring,
// proxies the job API, merges observability, and re-enqueues a dead
// shard's journal. It is an http.Handler serving the same /v1 surface as
// a single clusterd, plus /v1/fleet for topology.
type Coordinator struct {
	cfg    CoordinatorConfig
	ring   *Ring
	client *http.Client
	mux    *http.ServeMux
	start  time.Time

	mu     sync.Mutex
	shards map[string]*shardState
	routes map[string]route

	reg            *service.Registry
	forwarded      *service.Counter
	forwardShed    *service.Counter
	forwardErrors  *service.Counter
	rerouted       *service.Counter
	handoffErrors  *service.Counter
	promotions     *service.Counter
	promotedRecs   *service.Counter
	replSyncErrors *service.Counter
	restarts       *service.Counter
	shardUp        *service.GaugeVec
	shardRestarts  *service.GaugeVec
	submitLatency  *service.HistogramVec
	mergeScrapeErr *service.Counter
}

// NewCoordinator builds a coordinator over the declared shards. Shards
// are added to the ring immediately; ones with an empty BaseURL start
// out not-live and become routable via SetShardURL/SetShardLive.
func NewCoordinator(cfg CoordinatorConfig, shards []Shard) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(shards) == 0 {
		return nil, errors.New("fleet: no shards declared")
	}
	if cfg.AckQuorum > cfg.Replicas {
		return nil, fmt.Errorf("fleet: ack quorum %d exceeds replicas %d", cfg.AckQuorum, cfg.Replicas)
	}
	if cfg.Replicas > len(shards) {
		return nil, fmt.Errorf("fleet: %d replicas need %d shards, got %d", cfg.Replicas, cfg.Replicas, len(shards))
	}
	c := &Coordinator{
		cfg:    cfg,
		ring:   NewRing(cfg.VirtualNodes),
		client: &http.Client{Timeout: cfg.ForwardTimeout},
		mux:    http.NewServeMux(),
		start:  hostNow(),
		shards: map[string]*shardState{},
		routes: map[string]route{},
		reg:    service.NewRegistry(),
	}
	for _, sh := range shards {
		if !shardNameRe.MatchString(sh.Name) {
			return nil, fmt.Errorf("fleet: invalid shard name %q (want ^[a-z0-9]+$)", sh.Name)
		}
		if _, dup := c.shards[sh.Name]; dup {
			return nil, fmt.Errorf("fleet: duplicate shard name %q", sh.Name)
		}
		if cfg.Replicas > 1 && (sh.DataDir == "" || sh.JournalPath == "") {
			return nil, fmt.Errorf("fleet: replication needs shard %s to declare DataDir and JournalPath", sh.Name)
		}
		st := &shardState{decl: sh, baseURL: sh.BaseURL, live: sh.BaseURL != ""}
		c.shards[sh.Name] = st
		c.ring.Add(sh.Name)
		c.ring.SetLive(sh.Name, st.live)
	}

	c.forwarded = c.reg.Counter("fleet_forwarded_total", "Job submissions proxied to an owning shard (any outcome).")
	c.forwardShed = c.reg.Counter("fleet_forward_shed_total", "Submissions the owning shard shed with 429; the shard's Retry-After is relayed verbatim.")
	c.forwardErrors = c.reg.Counter("fleet_forward_errors_total", "Proxied requests that failed at the transport layer (shard unreachable mid-request).")
	c.rerouted = c.reg.Counter("fleet_rerouted_jobs_total", "Unfinished jobs re-enqueued onto surviving shards from a dead shard's journal.")
	c.handoffErrors = c.reg.Counter("fleet_handoff_errors_total", "Jobs a journal handoff could not re-enqueue (no live shard, resubmission rejected).")
	c.promotions = c.reg.Counter("fleet_promotions_total", "Replica journals promoted to primary after a shard lost its disk.")
	c.promotedRecs = c.reg.Counter("fleet_promoted_records_total", "Journal records recovered into promoted journals.")
	c.replSyncErrors = c.reg.Counter("fleet_replication_sync_errors_total", "Failed attempts to push a shard's follower set (shard unreachable or rejected the peer set).")
	c.restarts = c.reg.Counter("fleet_shard_restarts_total", "Shard child processes respawned by the supervisor.")
	c.mergeScrapeErr = c.reg.Counter("fleet_scrape_errors_total", "Per-shard /metrics or /healthz fetches that failed during a fleet merge.")
	c.shardUp = c.reg.GaugeVec("fleet_shard_up", "Per-shard routability: 1 live, 0 down or dead.", "shard")
	c.shardRestarts = c.reg.GaugeVec("fleet_shard_restart_count", "Supervisor restarts consumed per shard.", "shard")
	c.reg.GaugeFunc("fleet_live_shards", "Shards currently routable.", func() float64 {
		n := 0
		for _, live := range c.ring.Shards() {
			if live {
				n++
			}
		}
		return float64(n)
	})
	c.reg.GaugeFunc("fleet_known_shards", "Shards on the ring (live or down, excluding permanently dead).", func() float64 {
		return float64(len(c.ring.Shards()))
	})
	c.submitLatency = c.reg.HistogramVec("fleet_forward_latency_seconds",
		"Coordinator-observed latency of proxied submissions by outcome (accepted, cached, shed, rejected, error).", "outcome",
		[]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5})
	for _, sh := range shards {
		c.shardUp.Set(sh.Name, boolGauge(c.shards[sh.Name].live))
		c.shardRestarts.Set(sh.Name, 0)
	}

	c.mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	c.mux.HandleFunc("GET /v1/jobs", c.handleList)
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)
	c.mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleJob)
	c.mux.HandleFunc("GET /v1/healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /v1/metrics", c.handleMetrics)
	c.mux.HandleFunc("GET /v1/kinds", c.handlePassthrough)
	c.mux.HandleFunc("GET /v1/machines", c.handlePassthrough)
	c.mux.HandleFunc("GET /v1/fleet", c.handleFleet)
	return c, nil
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

// Registry exposes the coordinator's own metrics registry.
func (c *Coordinator) Registry() *service.Registry { return c.reg }

// shard returns the state for name, nil when unknown.
func (c *Coordinator) shard(name string) *shardState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shards[name]
}

// SetShardURL (re)binds a shard's base URL — supervised shards call this
// each time a child announces its listen address.
func (c *Coordinator) SetShardURL(name, baseURL string) {
	if st := c.shard(name); st != nil {
		st.mu.Lock()
		st.baseURL = baseURL
		st.mu.Unlock()
	}
}

// SetShardPID records the supervised child's PID for /v1/fleet.
func (c *Coordinator) SetShardPID(name string, pid int) {
	if st := c.shard(name); st != nil {
		st.mu.Lock()
		st.pid = pid
		st.mu.Unlock()
	}
}

// SetShardLive flips a shard's routability. While down, its key range
// flows to ring successors; reviving flows it back.
func (c *Coordinator) SetShardLive(name string, live bool) {
	st := c.shard(name)
	if st == nil {
		return
	}
	st.mu.Lock()
	if st.dead {
		st.mu.Unlock()
		return
	}
	st.live = live
	st.mu.Unlock()
	c.ring.SetLive(name, live)
	c.shardUp.Set(name, boolGauge(live))
}

// NoteRestart counts one supervisor respawn of the named shard.
func (c *Coordinator) NoteRestart(name string, count int) {
	c.restarts.Inc()
	c.shardRestarts.Set(name, float64(count))
}

// liveShards returns the currently routable shard states, sorted by name.
func (c *Coordinator) liveShards() []*shardState {
	c.mu.Lock()
	names := make([]string, 0, len(c.shards))
	for n := range c.shards {
		names = append(names, n)
	}
	c.mu.Unlock()
	sort.Strings(names)
	var out []*shardState
	for _, n := range names {
		st := c.shard(n)
		st.mu.Lock()
		ok := st.live && !st.dead && st.baseURL != ""
		st.mu.Unlock()
		if ok {
			out = append(out, st)
		}
	}
	return out
}

// allShards returns every shard state, sorted by name.
func (c *Coordinator) allShards() []*shardState {
	c.mu.Lock()
	names := make([]string, 0, len(c.shards))
	for n := range c.shards {
		names = append(names, n)
	}
	c.mu.Unlock()
	sort.Strings(names)
	out := make([]*shardState, 0, len(names))
	for _, n := range names {
		out = append(out, c.shard(n))
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// handleSubmit canonicalizes the spec locally (the same registry code the
// shard runs, so a 400 never costs a proxy hop), looks the cache key up
// on the ring and forwards the normalized spec to the owning shard. A
// shard that fails at the transport layer is marked down and the next
// ring successor tried, so a mid-request crash degrades to a retry
// instead of an error. Shard verdicts are relayed faithfully — in
// particular a 429 keeps the shard's own Retry-After header.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	began := hostNow()
	var spec experiment.Spec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: "+err.Error())
		return
	}
	norm, key, err := experiment.Canonicalize(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	body, err := json.Marshal(norm)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "re-encoding spec: "+err.Error())
		return
	}

	// Walk the ring until a live shard answers; each transport failure
	// marks that shard down, so the next Lookup lands on its successor.
	tried := map[string]bool{}
	for {
		name, ok := c.ring.Lookup(key)
		if !ok || tried[name] {
			c.observeSubmit(began, "rejected")
			writeError(w, http.StatusServiceUnavailable, "fleet: no live shard owns this key range")
			return
		}
		tried[name] = true
		st := c.shard(name)
		if st == nil {
			continue
		}
		resp, err := c.forward(r.Context(), st, http.MethodPost, "/v1/jobs", body)
		if err != nil {
			c.forwardErrors.Inc()
			c.SetShardLive(name, false)
			continue
		}
		c.forwarded.Inc()
		c.relaySubmit(w, resp, name, began)
		return
	}
}

// relaySubmit rewrites the shard's answer for the fleet surface: job IDs
// gain the shard prefix, shed verdicts keep the shard's Retry-After.
func (c *Coordinator) relaySubmit(w http.ResponseWriter, resp *http.Response, shardName string, began time.Time) {
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		c.observeSubmit(began, "error")
		writeError(w, http.StatusBadGateway, "fleet: reading shard response: "+err.Error())
		return
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		view, localID, derr := rewriteView(payload, shardName)
		if derr != nil {
			c.observeSubmit(began, "error")
			writeError(w, http.StatusBadGateway, "fleet: undecodable shard response: "+derr.Error())
			return
		}
		c.mu.Lock()
		c.routes[fleetID(shardName, localID)] = route{shard: shardName, localID: localID}
		c.mu.Unlock()
		if resp.StatusCode == http.StatusOK {
			c.observeSubmit(began, "cached")
		} else {
			c.observeSubmit(began, "accepted")
		}
		writeJSON(w, resp.StatusCode, view)
	case http.StatusTooManyRequests:
		// The owning shard shed the submission. Relay its verdict — and
		// crucially its Retry-After, which encodes the shard's own backoff
		// judgement (queue pressure or breaker cooldown) — rather than
		// synthesizing one here.
		c.forwardShed.Inc()
		c.observeSubmit(began, "shed")
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			w.Header().Set("Retry-After", ra)
		}
		copyJSON(w, resp.StatusCode, payload)
	default:
		c.observeSubmit(began, "rejected")
		copyJSON(w, resp.StatusCode, payload)
	}
}

func (c *Coordinator) observeSubmit(began time.Time, outcome string) {
	c.submitLatency.With(outcome).Observe(hostSince(began).Seconds())
}

// copyJSON relays a shard's JSON payload with its original status code.
func copyJSON(w http.ResponseWriter, code int, payload []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(payload)
}

// fleetID prefixes a shard-local job ID with its shard name.
func fleetID(shard, localID string) string { return shard + "-" + localID }

// splitFleetID parses "s0-j000042" into its shard and local halves.
func splitFleetID(id string) (shard, localID string, ok bool) {
	shard, localID, found := strings.Cut(id, "-")
	if !found || shard == "" || localID == "" {
		return "", "", false
	}
	return shard, localID, true
}

// rewriteView decodes a shard JobView payload, rewrites its id onto the
// fleet namespace and returns the decoded view plus the original local
// id. Decoding into a generic map keeps the coordinator agnostic to
// JobView's exact field set.
func rewriteView(payload []byte, shardName string) (map[string]any, string, error) {
	var view map[string]any
	if err := json.Unmarshal(payload, &view); err != nil {
		return nil, "", fmt.Errorf("fleet: shard job view: %w", err)
	}
	localID, _ := view["id"].(string)
	if localID == "" {
		return nil, "", errors.New("fleet: shard job view carries no id")
	}
	view["id"] = fleetID(shardName, localID)
	view["shard"] = shardName
	return view, localID, nil
}

// forward issues one proxied request to a shard.
func (c *Coordinator) forward(ctx context.Context, st *shardState, method, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = strings.NewReader(string(body))
	}
	req, err := http.NewRequestWithContext(ctx, method, st.url()+path, rd)
	if err != nil {
		return nil, fmt.Errorf("fleet: building %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.client.Do(req)
}

// resolve finds where a fleet job ID lives: the route table first (it
// tracks handoffs), falling back to the ID's own shard prefix for jobs
// submitted before this coordinator process started (fleet restarts keep
// IDs resolvable because shards recover their own journals).
func (c *Coordinator) resolve(id string) (route, bool) {
	c.mu.Lock()
	rt, ok := c.routes[id]
	c.mu.Unlock()
	if ok {
		return rt, true
	}
	shard, localID, ok := splitFleetID(id)
	if !ok {
		return route{}, false
	}
	if c.shard(shard) == nil {
		return route{}, false
	}
	return route{shard: shard, localID: localID}, true
}

// handleJob proxies GET/DELETE of one job to the shard that owns it.
func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rt, ok := c.resolve(id)
	if !ok {
		writeError(w, http.StatusNotFound, "fleet: no such job "+id)
		return
	}
	st := c.shard(rt.shard)
	st.mu.Lock()
	ready := st.live && st.baseURL != ""
	dead := st.dead
	st.mu.Unlock()
	if dead {
		// The shard is gone for good and this job was not handed off
		// (handoff rewrites the route table), so it finished before the
		// death and its result died with the shard. The simulation is
		// deterministic: resubmitting the spec recomputes it elsewhere.
		writeError(w, http.StatusGone,
			fmt.Sprintf("fleet: shard %s is dead; job %s finished before the failure and its result was lost — resubmit the spec to recompute", rt.shard, id))
		return
	}
	if !ready {
		// The owning shard is down (likely restarting under the
		// supervisor). The job is not lost — its journal will replay — so
		// answer "come back shortly" rather than 404.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("fleet: shard %s is down (restarting); job %s will be recovered", rt.shard, id))
		return
	}
	resp, err := c.forward(r.Context(), st, r.Method, "/v1/jobs/"+rt.localID, nil)
	if err != nil {
		c.forwardErrors.Inc()
		c.SetShardLive(rt.shard, false)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "fleet: shard "+rt.shard+" unreachable: "+err.Error())
		return
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		writeError(w, http.StatusBadGateway, "fleet: reading shard response: "+err.Error())
		return
	}
	if resp.StatusCode == http.StatusOK {
		if view, _, derr := rewriteView(payload, rt.shard); derr == nil {
			// Handed-off jobs keep their original public ID.
			view["id"] = id
			writeJSON(w, http.StatusOK, view)
			return
		}
	}
	copyJSON(w, resp.StatusCode, payload)
}

// handleList merges every live shard's job listing, IDs rewritten onto
// the fleet namespace, ordered by shard then the shard's own submission
// order.
func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	var merged []map[string]any
	downShards := []string{}
	for _, st := range c.allShards() {
		st.mu.Lock()
		name := st.decl.Name
		ready := st.live && !st.dead && st.baseURL != ""
		st.mu.Unlock()
		if !ready {
			downShards = append(downShards, name)
			continue
		}
		resp, err := c.forward(r.Context(), st, http.MethodGet, "/v1/jobs", nil)
		if err != nil {
			c.forwardErrors.Inc()
			downShards = append(downShards, name)
			continue
		}
		var body struct {
			Jobs []map[string]any `json:"jobs"`
		}
		err = json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&body)
		resp.Body.Close()
		if err != nil {
			downShards = append(downShards, name)
			continue
		}
		for _, v := range body.Jobs {
			if localID, _ := v["id"].(string); localID != "" {
				v["id"] = fleetID(name, localID)
				v["shard"] = name
			}
			merged = append(merged, v)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs":         merged,
		"shards_down":  downShards,
		"shards_total": len(c.allShards()),
	})
}

// handlePassthrough forwards registry-shaped reads (/v1/kinds,
// /v1/machines) to the first live shard — every shard runs the same
// binary, so any one's answer is the fleet's.
func (c *Coordinator) handlePassthrough(w http.ResponseWriter, r *http.Request) {
	for _, st := range c.liveShards() {
		resp, err := c.forward(r.Context(), st, http.MethodGet, r.URL.Path, nil)
		if err != nil {
			c.forwardErrors.Inc()
			continue
		}
		defer resp.Body.Close()
		payload, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		if err != nil {
			continue
		}
		copyJSON(w, resp.StatusCode, payload)
		return
	}
	writeError(w, http.StatusServiceUnavailable, "fleet: no live shard")
}

// handleFleet reports the fleet topology: per-shard liveness, URLs,
// PIDs, restart counts and the route-table size.
func (c *Coordinator) handleFleet(w http.ResponseWriter, _ *http.Request) {
	type shardInfo struct {
		Name      string   `json:"name"`
		BaseURL   string   `json:"base_url,omitempty"`
		Live      bool     `json:"live"`
		Dead      bool     `json:"dead,omitempty"`
		PID       int      `json:"pid,omitempty"`
		Journal   string   `json:"journal,omitempty"`
		Followers []string `json:"followers,omitempty"`
	}
	out := []shardInfo{}
	for _, st := range c.allShards() {
		st.mu.Lock()
		info := shardInfo{
			Name: st.decl.Name, BaseURL: st.baseURL, Live: st.live,
			Dead: st.dead, PID: st.pid, Journal: st.decl.JournalPath,
		}
		st.mu.Unlock()
		if c.ReplicationEnabled() {
			info.Followers = c.Followers(info.Name)
		}
		out = append(out, info)
	}
	c.mu.Lock()
	routes := len(c.routes)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"shards":           out,
		"virtual_nodes":    c.cfg.VirtualNodes,
		"replicas":         c.cfg.Replicas,
		"ack_quorum":       c.cfg.AckQuorum,
		"routes":           routes,
		"rerouted_total":   c.rerouted.Value(),
		"promotions_total": c.promotions.Value(),
	})
}

// Run drives the background health poll until ctx is cancelled: every
// ProbeInterval each non-dead shard's /v1/healthz is probed and its
// routability updated, so shards that crash between requests are caught
// quickly and restarted ones rejoin the ring without supervisor help.
func (c *Coordinator) Run(ctx context.Context) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		c.ProbeOnce(ctx)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-sleepCh(c.cfg.ProbeInterval):
		}
	}
}

// sleepCh adapts the injected sleep to a select-able channel.
func sleepCh(d time.Duration) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		hostSleep(d)
		close(ch)
	}()
	return ch
}

// ProbeOnce health-checks every non-dead shard once and updates
// liveness.
func (c *Coordinator) ProbeOnce(ctx context.Context) {
	for _, st := range c.allShards() {
		st.mu.Lock()
		name := st.decl.Name
		dead := st.dead
		url := st.baseURL
		st.mu.Unlock()
		if dead || url == "" {
			continue
		}
		probeCtx, cancel := context.WithTimeout(ctx, c.cfg.ForwardTimeout)
		resp, err := c.forward(probeCtx, st, http.MethodGet, "/v1/healthz", nil)
		if err == nil {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
		}
		cancel()
		c.SetShardLive(name, err == nil && resp.StatusCode == http.StatusOK)
	}
}

// FailShard declares a shard permanently dead: it leaves the ring for
// good and, when a journal path is declared, every unfinished job in that
// journal is re-enqueued onto the surviving shards with the route table
// rewritten so the jobs' public fleet IDs keep resolving. Returns the
// number of jobs rerouted. Calling it twice is a no-op.
func (c *Coordinator) FailShard(ctx context.Context, name string) (int, error) {
	st := c.shard(name)
	if st == nil {
		return 0, fmt.Errorf("fleet: unknown shard %q", name)
	}
	st.mu.Lock()
	if st.dead {
		st.mu.Unlock()
		return 0, nil
	}
	st.dead = true
	st.live = false
	journalPath := st.decl.JournalPath
	st.mu.Unlock()
	c.ring.Remove(name)
	c.shardUp.Set(name, 0)

	if journalPath == "" {
		return 0, nil
	}
	unfinished, err := UnfinishedJobs(journalPath)
	if err != nil {
		return 0, fmt.Errorf("fleet: reading dead shard %s journal: %w", name, err)
	}
	moved := 0
	for _, u := range unfinished {
		if err := c.reenqueue(ctx, name, u); err != nil {
			c.handoffErrors.Inc()
			continue
		}
		moved++
	}
	return moved, nil
}

// reenqueue resubmits one orphaned job to the ring's current owner and
// points the old fleet ID at its new home.
func (c *Coordinator) reenqueue(ctx context.Context, deadShard string, u Unfinished) error {
	tried := map[string]bool{}
	for {
		owner, ok := c.ring.Lookup(u.Key)
		if !ok || tried[owner] {
			return fmt.Errorf("fleet: no live shard to re-enqueue job %s", u.ID)
		}
		tried[owner] = true
		st := c.shard(owner)
		if st == nil {
			continue
		}
		resp, err := c.forward(ctx, st, http.MethodPost, "/v1/jobs", u.Spec)
		if err != nil {
			c.forwardErrors.Inc()
			c.SetShardLive(owner, false)
			continue
		}
		payload, rerr := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		resp.Body.Close()
		if rerr != nil {
			return fmt.Errorf("fleet: reading re-enqueue response: %w", rerr)
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("fleet: shard %s refused re-enqueued job %s: HTTP %d", owner, u.ID, resp.StatusCode)
		}
		_, localID, derr := rewriteView(payload, owner)
		if derr != nil {
			return derr
		}
		c.mu.Lock()
		c.routes[fleetID(deadShard, u.ID)] = route{shard: owner, localID: localID}
		c.routes[fleetID(owner, localID)] = route{shard: owner, localID: localID}
		c.mu.Unlock()
		c.rerouted.Inc()
		return nil
	}
}

// Uptime reports how long the coordinator has been up.
func (c *Coordinator) Uptime() time.Duration { return hostSince(c.start) }
