// Package fleet runs N clusterd shards behind one coordinator, turning
// the single durable daemon into a horizontally scaled service.
//
// Canonical cache keys — the same content addresses that make the result
// cache safe — are consistent-hashed (with virtual nodes, see Ring) onto
// shards. The Coordinator owns the ring: it forwards POST /v1/jobs to the
// key's owning shard, relays the shard's verdict byte-for-byte (including
// 429 + Retry-After when the owner sheds), merges every shard's /metrics
// and /healthz into per-shard and aggregate fleet series, and keeps a
// route table from fleet job IDs ("s0-j000042") back to the shard that
// ran them.
//
// Failure handling is two-staged, mirroring grendel's serve+watch idiom:
// the Supervisor spawns shards as child processes and restarts a dead one
// with exponential backoff — its write-ahead journal replays, so in-flight
// jobs re-run on the same shard and no work is lost. While a shard is
// down, the ring routes its key range to the next live successor, so new
// submissions keep flowing. A shard that exhausts its restart budget is
// declared dead: the coordinator reads the corpse's journal
// (UnfinishedJobs), re-enqueues every non-terminal job on the surviving
// shards, and rewrites the route table so existing fleet job IDs keep
// resolving.
//
// The package is process-agnostic: the Coordinator talks plain HTTP to
// shard base URLs, so tests back shards with httptest servers while
// cmd/clusterfleet backs them with supervised clusterd children.
package fleet
