package fleet

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"clustereval/internal/xrand"
)

// SupervisorConfig shapes the spawn/watch/restart loop.
type SupervisorConfig struct {
	// Bin is the clusterd binary to spawn.
	Bin string
	// BaseArgs are flags every shard gets (workers, queue, breaker
	// tuning). The supervisor appends -addr, -journal and -shard itself.
	BaseArgs []string
	// RestartBackoff is the base respawn delay, doubled per consecutive
	// failure up to MaxBackoff and scaled by a deterministic per-shard
	// jitter (see restartBackoff); 0 means 100ms.
	RestartBackoff time.Duration
	// MaxBackoff caps the doubling; 0 means 5s.
	MaxBackoff time.Duration
	// MaxRestarts is how many consecutive fast failures a shard may
	// consume before it is declared permanently dead and its journal
	// handed off; 0 means 5. A shard that stays up past StableAfter
	// resets its budget.
	MaxRestarts int
	// StableAfter is how long a child must stay alive for its crash
	// counter to reset; 0 means 10s.
	StableAfter time.Duration
	// Stdout/Stderr receive the children's output (prefixed per shard);
	// nil means os.Stdout/os.Stderr.
	Stdout io.Writer
	Stderr io.Writer
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 5
	}
	if c.StableAfter <= 0 {
		c.StableAfter = 10 * time.Second
	}
	if c.Stdout == nil {
		c.Stdout = os.Stdout
	}
	if c.Stderr == nil {
		c.Stderr = os.Stderr
	}
	return c
}

// Supervisor spawns one clusterd child per shard and keeps it alive,
// grendel-style: serve, watch the process, restart on exit with
// exponential backoff. Every lifecycle event is pushed into the
// coordinator — URL on banner, liveness on exit, permanent death (and
// journal handoff) once the restart budget is gone.
type Supervisor struct {
	cfg   SupervisorConfig
	coord *Coordinator

	mu   sync.Mutex
	pids map[string]int // live child PID per shard
}

// NewSupervisor wires a supervisor to the coordinator whose shards it
// will run. Each supervised shard must have been declared to the
// coordinator with its JournalPath.
func NewSupervisor(cfg SupervisorConfig, coord *Coordinator) *Supervisor {
	return &Supervisor{cfg: cfg.withDefaults(), coord: coord, pids: map[string]int{}}
}

// PID returns the named shard's current child PID (0 when not running).
func (s *Supervisor) PID(shard string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pids[shard]
}

// Run supervises every declared shard until ctx is cancelled; children
// are SIGKILLed on the way out (callers drain via the shards' own
// -drain-timeout by cancelling and waiting). It returns the first
// spawn-setup error, or ctx.Err().
func (s *Supervisor) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	errCh := make(chan error, len(s.coord.allShards()))
	for _, st := range s.coord.allShards() {
		st.mu.Lock()
		shard := st.decl
		st.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.superviseShard(ctx, shard); err != nil && !errors.Is(err, context.Canceled) {
				errCh <- fmt.Errorf("fleet: shard %s: %w", shard.Name, err)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return err
	}
	return ctx.Err()
}

// restartBackoff computes the delay before restart attempt (1-based):
// RestartBackoff doubled per attempt, capped at MaxBackoff, then scaled
// by a jitter in [0.75, 1.25) drawn deterministically from the shard
// name and attempt number. The jitter keeps a fleet-wide crash from
// lining every shard's respawn (and its thundering re-announce) on the
// same instant, while staying a pure function of its inputs so tests
// can predict the exact schedule.
func restartBackoff(base, max time.Duration, shard string, attempt int) time.Duration {
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	scale := 0.75 + float64(xrand.MixN(hashPoint(shard, 0), uint64(attempt))%1024)/2048.0
	return time.Duration(float64(d) * scale)
}

// superviseShard is one shard's serve+watch loop.
func (s *Supervisor) superviseShard(ctx context.Context, shard Shard) error {
	restarts := 0
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		began := hostNow()
		err := s.runChildOnce(ctx, shard)
		s.coord.SetShardLive(shard.Name, false)
		s.mu.Lock()
		delete(s.pids, shard.Name)
		s.mu.Unlock()
		if ctx.Err() != nil {
			return ctx.Err()
		}

		// A child that served for a while earned a fresh budget; only
		// rapid crash loops burn through MaxRestarts.
		if hostSince(began) >= s.cfg.StableAfter {
			restarts = 0
		}

		// Disk loss looks different from a crash: the journal the child
		// was appending to is gone from under it. With replication on,
		// rebuild it from the best follower replica and grant a fresh
		// budget — the respawn replays the promoted journal under the
		// shard's own identity, losing nothing the quorum acknowledged.
		if s.coord.ReplicationEnabled() && shard.JournalPath != "" {
			if _, statErr := os.Stat(shard.JournalPath); errors.Is(statErr, os.ErrNotExist) {
				n, from, perr := s.coord.PromoteShard(shard.Name)
				switch {
				case perr == nil:
					fmt.Fprintf(s.cfg.Stderr, "fleet: shard %s lost its journal; promoted %d record(s) from follower %s\n",
						shard.Name, n, from)
					restarts = 0
				case errors.Is(perr, ErrNoReplica):
					// Nothing was ever replicated (or the journal never
					// existed): starting fresh is the correct recovery.
				default:
					fmt.Fprintf(s.cfg.Stderr, "fleet: shard %s replica promotion failed: %v\n", shard.Name, perr)
				}
			}
		}
		restarts++
		if restarts > s.cfg.MaxRestarts {
			fmt.Fprintf(s.cfg.Stderr, "fleet: shard %s exhausted %d restarts; declaring dead and handing off journal\n",
				shard.Name, s.cfg.MaxRestarts)
			moved, ferr := s.coord.FailShard(ctx, shard.Name)
			if ferr != nil {
				return fmt.Errorf("handoff after restart budget: %w (child exit: %v)", ferr, err)
			}
			fmt.Fprintf(s.cfg.Stderr, "fleet: shard %s journal handoff re-enqueued %d job(s)\n", shard.Name, moved)
			return fmt.Errorf("shard dead after %d restarts (last exit: %v)", s.cfg.MaxRestarts, err)
		}
		delay := restartBackoff(s.cfg.RestartBackoff, s.cfg.MaxBackoff, shard.Name, restarts)
		fmt.Fprintf(s.cfg.Stderr, "fleet: shard %s exited (%v); restart %d/%d in %v\n",
			shard.Name, err, restarts, s.cfg.MaxRestarts, delay)
		s.coord.NoteRestart(shard.Name, restarts)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-sleepCh(delay):
		}
	}
}

// runChildOnce spawns one clusterd child for the shard, waits for its
// banner to learn the listen address, publishes it to the coordinator
// and blocks until the child exits (or ctx cancels, which kills it).
func (s *Supervisor) runChildOnce(ctx context.Context, shard Shard) error {
	args := append([]string{}, s.cfg.BaseArgs...)
	args = append(args, "-addr", "127.0.0.1:0", "-shard", shard.Name)
	if shard.JournalPath != "" {
		args = append(args, "-journal", shard.JournalPath)
	}
	if s.coord.ReplicationEnabled() && shard.DataDir != "" {
		args = append(args, "-replica-dir", shard.DataDir)
	}
	cmd := exec.CommandContext(ctx, s.cfg.Bin, args...)
	cmd.Cancel = func() error { return cmd.Process.Kill() }
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return fmt.Errorf("stdout pipe: %w", err)
	}
	cmd.Stderr = prefixWriter(s.cfg.Stderr, shard.Name)
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting %s: %w", s.cfg.Bin, err)
	}
	s.mu.Lock()
	s.pids[shard.Name] = cmd.Process.Pid
	s.mu.Unlock()
	s.coord.SetShardPID(shard.Name, cmd.Process.Pid)

	// Scan the banner for the bound address, then keep draining output.
	out := prefixWriter(s.cfg.Stdout, shard.Name)
	sc := bufio.NewScanner(stdout)
	announced := false
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(out, line)
		if announced {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "clusterd listening on "); ok {
			if i := strings.IndexByte(rest, ' '); i > 0 {
				addr := rest[:i]
				s.coord.SetShardURL(shard.Name, "http://"+addr)
				s.coord.SetShardLive(shard.Name, true)
				announced = true
				// Every announce changes this child's address, which
				// invalidates peer sets fleet-wide: re-point every live
				// primary at the current follower URLs.
				s.coord.SyncReplication(ctx)
			}
		}
	}
	return cmd.Wait()
}

// prefixWriter tags each child's output lines with its shard name.
func prefixWriter(w io.Writer, shard string) io.Writer {
	return &lineTagger{w: w, tag: "[" + shard + "] "}
}

type lineTagger struct {
	w   io.Writer
	tag string
	buf []byte
}

func (t *lineTagger) Write(p []byte) (int, error) {
	t.buf = append(t.buf, p...)
	for {
		i := strings.IndexByte(string(t.buf), '\n')
		if i < 0 {
			break
		}
		line := t.buf[:i+1]
		if _, err := io.WriteString(t.w, t.tag+string(line)); err != nil {
			return len(p), err
		}
		t.buf = t.buf[i+1:]
	}
	return len(p), nil
}
