package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"clustereval/internal/journal"
	"clustereval/internal/service"
)

// replShard declares one shard with the on-disk layout replication
// expects: <dir>/<name>/journal.wal plus replicas of other shards
// alongside it.
func replShard(t *testing.T, dir, name string) Shard {
	t.Helper()
	d := filepath.Join(dir, name)
	if err := os.MkdirAll(d, 0o755); err != nil {
		t.Fatal(err)
	}
	return Shard{Name: name, DataDir: d, JournalPath: filepath.Join(d, "journal.wal")}
}

// seedReplica writes a replica of src's journal holding n records into
// the follower's data dir, through the same store the daemon uses.
func seedReplica(t *testing.T, followerDir, src string, n int) {
	t.Helper()
	store, err := journal.OpenReplicaStore(followerDir)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]journal.Frame, n)
	for i := range frames {
		frames[i] = journal.Frame{Src: src, Seq: uint64(i + 1), Rec: journal.Record{
			Type: journal.TypeSubmitted, JobID: fmt.Sprintf("j%03d", i),
			Key: fmt.Sprintf("k%03d", i), Spec: json.RawMessage(`{"kind":"net"}`),
		}}
	}
	if _, err := store.Ingest(frames); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
}

// Promotion must pick the follower holding the most records (the only
// copy that can contain every quorum-acknowledged submit) and rebuild a
// plain journal the shard's normal recovery replays.
func TestPromoteShardPicksBestReplica(t *testing.T) {
	dir := t.TempDir()
	shards := []Shard{replShard(t, dir, "s0"), replShard(t, dir, "s1"), replShard(t, dir, "s2")}
	coord, err := NewCoordinator(CoordinatorConfig{VirtualNodes: 32, Replicas: 3, AckQuorum: 2}, shards)
	if err != nil {
		t.Fatal(err)
	}

	followers := coord.Followers("s0")
	if len(followers) != 2 {
		t.Fatalf("Followers(s0) = %v, want both other shards", followers)
	}
	// The second follower is one record ahead: it must win the vote.
	seedReplica(t, filepath.Join(dir, followers[0]), "s0", 4)
	seedReplica(t, filepath.Join(dir, followers[1]), "s0", 5)

	n, from, err := coord.PromoteShard("s0")
	if err != nil {
		t.Fatalf("PromoteShard: %v", err)
	}
	if n != 5 || from != followers[1] {
		t.Fatalf("promoted %d record(s) from %s, want 5 from %s", n, from, followers[1])
	}
	jnl, recs, err := journal.Open(filepath.Join(dir, "s0", "journal.wal"))
	if err != nil {
		t.Fatalf("opening promoted journal: %v", err)
	}
	defer jnl.Close()
	if len(recs) != 5 {
		t.Fatalf("promoted journal replays %d record(s), want 5", len(recs))
	}
	if coord.promotions.Value() != 1 || coord.promotedRecs.Value() != 5 {
		t.Fatalf("promotion metrics = %d/%d, want 1/5",
			coord.promotions.Value(), coord.promotedRecs.Value())
	}

	// A shard nobody ever replicated has nothing to promote.
	if _, _, err := coord.PromoteShard("s1"); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("PromoteShard(s1) = %v, want ErrNoReplica", err)
	}
}

// replFleet builds a real durable fleet: per-shard clusterd services
// (journal + replica store) behind httptest, fronted by a replicating
// coordinator.
type replFleet struct {
	coord   *Coordinator
	servers map[string]*httptest.Server
	svcs    map[string]*service.Service
}

func newReplFleet(t *testing.T, n, replicas, quorum int) *replFleet {
	t.Helper()
	dir := t.TempDir()
	rf := &replFleet{servers: map[string]*httptest.Server{}, svcs: map[string]*service.Service{}}
	shards := make([]Shard, 0, n)
	for i := 0; i < n; i++ {
		sh := replShard(t, dir, fmt.Sprintf("s%d", i))
		svc, err := service.OpenDurable(service.Config{
			Workers: 2, QueueDepth: 256, ShardName: sh.Name, ReplicaDir: sh.DataDir,
		}, sh.JournalPath)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(service.NewServer(svc))
		sh.BaseURL = srv.URL
		rf.svcs[sh.Name] = svc
		rf.servers[sh.Name] = srv
		shards = append(shards, sh)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		VirtualNodes: 32, Replicas: replicas, AckQuorum: quorum,
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	rf.coord = coord
	t.Cleanup(func() {
		for _, srv := range rf.servers {
			srv.Close()
		}
		for _, svc := range rf.svcs {
			_ = svc.Close(context.Background())
		}
	})
	return rf
}

// SyncReplication must leave every primary shipping to exactly its ring
// successors, and a routine submit must then reach a full quorum before
// it is acknowledged.
func TestSyncReplicationWiresFollowers(t *testing.T) {
	rf := newReplFleet(t, 3, 2, 2)
	rf.coord.SyncReplication(context.Background())

	for name, svc := range rf.svcs {
		status := svc.ReplicationStatus()
		if !status.Enabled || status.Quorum != 2 {
			t.Fatalf("shard %s: replication status %+v, want enabled with quorum 2", name, status)
		}
		want := rf.coord.Followers(name)
		if len(status.Peers) != len(want) {
			t.Fatalf("shard %s ships to %d peer(s), want %v", name, len(status.Peers), want)
		}
		for i, p := range status.Peers {
			if p.Shard != want[i] {
				t.Fatalf("shard %s peer %d is %s, want %s", name, i, p.Shard, want[i])
			}
		}
	}
	if v := rf.coord.replSyncErrors.Value(); v != 0 {
		t.Fatalf("SyncReplication counted %d errors against a healthy fleet", v)
	}

	front := httptest.NewServer(rf.coord)
	defer front.Close()
	ids := make([]string, 0, 10)
	for i := 0; i < 10; i++ {
		v, resp := postJob(t, front.URL, netSpec(i))
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		if v := waitDone(t, front.URL, id); v.State != "done" {
			t.Fatalf("job %s ended %q", id, v.State)
		}
	}
	// Every journaled record must be quorum-held by the shard's follower.
	for name, svc := range rf.svcs {
		status := svc.ReplicationStatus()
		for _, p := range status.Peers {
			if p.AckedSeq != status.LastSeq {
				t.Fatalf("shard %s: follower %s acked %d of %d journal records",
					name, p.Shard, p.AckedSeq, status.LastSeq)
			}
		}
	}
}

// FailShard racing in-flight coordinator forwarding (satellite for the
// replication issue, run under -race): while writers hammer the fleet,
// the victim's server dies mid-request and the shard is declared dead.
// Every submission must either land (200/202 with a resolvable ID) or
// come back retryable (429/503) — an acknowledged job must never 404.
func TestFailShardDuringConcurrentSubmits(t *testing.T) {
	dir := t.TempDir()
	shards := make([]Shard, 0, 3)
	svcs := map[string]*service.Service{}
	servers := map[string]*httptest.Server{}
	for i := 0; i < 3; i++ {
		sh := replShard(t, dir, fmt.Sprintf("s%d", i))
		svc, err := service.OpenDurable(service.Config{
			Workers: 2, QueueDepth: 256, ShardName: sh.Name,
		}, sh.JournalPath)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(service.NewServer(svc))
		sh.BaseURL = srv.URL
		svcs[sh.Name] = svc
		servers[sh.Name] = srv
		shards = append(shards, sh)
	}
	t.Cleanup(func() {
		for _, srv := range servers {
			srv.Close()
		}
		for _, svc := range svcs {
			_ = svc.Close(context.Background())
		}
	})
	coord, err := NewCoordinator(CoordinatorConfig{VirtualNodes: 32}, shards)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(coord)
	t.Cleanup(front.Close)

	submit := func(spec string) (string, int, error) {
		resp, err := http.Post(front.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			return "", 0, err
		}
		defer resp.Body.Close()
		var v struct {
			ID string `json:"id"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&v)
		return v.ID, resp.StatusCode, nil
	}

	const writers = 8
	var (
		mu       sync.Mutex
		accepted []string
		bad      []int
	)
	start := make(chan struct{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id, code, err := submit(netSpec(w*10000 + i))
				if err != nil {
					// The coordinator itself never went away; a transport
					// error here is a real failure.
					mu.Lock()
					bad = append(bad, -1)
					mu.Unlock()
					return
				}
				mu.Lock()
				switch code {
				case http.StatusOK, http.StatusAccepted:
					accepted = append(accepted, id)
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					// Retryable mid-failover verdicts are the contract.
				default:
					bad = append(bad, code)
				}
				mu.Unlock()
			}
		}(w)
	}
	close(start)
	time.Sleep(50 * time.Millisecond) // let forwards get in flight

	victim := "s1"
	servers[victim].Close() // in-flight forwards now fail at the transport
	if _, err := coord.FailShard(context.Background(), victim); err != nil {
		t.Fatalf("FailShard(%s): %v", victim, err)
	}

	time.Sleep(100 * time.Millisecond) // keep racing after the death
	close(stop)
	wg.Wait()

	if len(bad) > 0 {
		t.Fatalf("submissions returned non-retryable verdicts %v during failover", bad)
	}
	if len(accepted) == 0 {
		t.Fatal("test is vacuous: no submission was accepted")
	}
	// Acknowledged IDs must keep resolving: rerouted onto a survivor, still
	// runnable, or explicitly 410 (finished before the death, result lost
	// with the shard) — never an unexplained 404.
	for _, id := range accepted {
		_, code := getJob(t, front.URL, id)
		if code == http.StatusNotFound {
			t.Fatalf("job %s vanished after concurrent FailShard", id)
		}
	}
}
