package fleet

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
	}
	return keys
}

func TestRingSpreadsKeys(t *testing.T) {
	r := NewRing(64)
	for _, s := range []string{"s0", "s1", "s2"} {
		r.Add(s)
	}
	counts := map[string]int{}
	for _, k := range ringKeys(3000) {
		owner, ok := r.Lookup(k)
		if !ok {
			t.Fatalf("no owner for %s", k)
		}
		counts[owner]++
	}
	for _, s := range []string{"s0", "s1", "s2"} {
		if counts[s] < 500 {
			t.Fatalf("shard %s owns only %d/3000 keys; ring is badly imbalanced (%v)", s, counts[s], counts)
		}
	}
}

func TestRingLookupIsDeterministic(t *testing.T) {
	build := func() *Ring {
		r := NewRing(32)
		r.Add("s2")
		r.Add("s0")
		r.Add("s1")
		return r
	}
	a, b := build(), build()
	for _, k := range ringKeys(200) {
		oa, _ := a.Lookup(k)
		ob, _ := b.Lookup(k)
		if oa != ob {
			t.Fatalf("key %s: ring A says %s, ring B says %s", k, oa, ob)
		}
	}
}

// A down shard must shed exactly its own key range: keys owned by live
// shards keep their owner, and reviving the shard restores the original
// placement bit-for-bit.
func TestRingRerouteIsLocal(t *testing.T) {
	r := NewRing(64)
	for _, s := range []string{"s0", "s1", "s2"} {
		r.Add(s)
	}
	keys := ringKeys(1000)
	before := map[string]string{}
	for _, k := range keys {
		before[k], _ = r.Lookup(k)
	}

	r.SetLive("s1", false)
	moved := 0
	for _, k := range keys {
		owner, ok := r.Lookup(k)
		if !ok {
			t.Fatalf("no owner for %s with s1 down", k)
		}
		if owner == "s1" {
			t.Fatalf("key %s routed to down shard s1", k)
		}
		if before[k] != "s1" && owner != before[k] {
			t.Fatalf("key %s moved %s -> %s although its owner never went down", k, before[k], owner)
		}
		if before[k] == "s1" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("test is vacuous: s1 owned no keys")
	}

	r.SetLive("s1", true)
	for _, k := range keys {
		owner, _ := r.Lookup(k)
		if owner != before[k] {
			t.Fatalf("key %s did not return to %s after revival (got %s)", k, before[k], owner)
		}
	}
}

func TestRingRemoveForgetsShard(t *testing.T) {
	r := NewRing(16)
	r.Add("s0")
	r.Add("s1")
	r.Remove("s0")
	for _, k := range ringKeys(100) {
		owner, ok := r.Lookup(k)
		if !ok || owner != "s1" {
			t.Fatalf("key %s: owner %q ok=%v, want s1 after removal", k, owner, ok)
		}
	}
	if shards := r.Shards(); len(shards) != 1 || !shards["s1"] {
		t.Fatalf("Shards() = %v, want only live s1", shards)
	}
	// Removing again (or an unknown shard) is a no-op.
	r.Remove("s0")
	r.Remove("nope")
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Lookup("k"); ok {
		t.Fatal("empty ring claims an owner")
	}
	if _, ok := r.Owner("k"); ok {
		t.Fatal("empty ring claims a home owner")
	}
}

// Successors is the replica-placement primitive: it must be
// deterministic across construction order, exclude the shard itself,
// ignore liveness (a flapping follower keeps its on-disk replica) and
// drop permanently removed shards.
func TestRingSuccessors(t *testing.T) {
	names := []string{"s0", "s1", "s2", "s3"}
	r := NewRing(32)
	for _, s := range names {
		r.Add(s)
	}
	for _, s := range names {
		succ := r.Successors(s, 2)
		if len(succ) != 2 {
			t.Fatalf("Successors(%s, 2) = %v, want 2 shards", s, succ)
		}
		seen := map[string]bool{s: true}
		for _, f := range succ {
			if seen[f] {
				t.Fatalf("Successors(%s, 2) = %v repeats a shard or includes the shard itself", s, succ)
			}
			seen[f] = true
		}
	}

	// Same membership added in a different order places identically.
	r2 := NewRing(32)
	for _, s := range []string{"s3", "s1", "s0", "s2"} {
		r2.Add(s)
	}
	for _, s := range names {
		a, b := fmt.Sprintf("%v", r.Successors(s, 2)), fmt.Sprintf("%v", r2.Successors(s, 2))
		if a != b {
			t.Fatalf("Successors(%s) depends on Add order: %s vs %s", s, a, b)
		}
	}

	// A down follower keeps its placement; a removed one loses it.
	before := fmt.Sprintf("%v", r.Successors("s0", 2))
	r.SetLive("s1", false)
	if got := fmt.Sprintf("%v", r.Successors("s0", 2)); got != before {
		t.Fatalf("marking a shard down moved replica placement: %s -> %s", before, got)
	}
	r.Remove("s1")
	for _, f := range r.Successors("s0", 3) {
		if f == "s1" {
			t.Fatal("removed shard still listed as a successor")
		}
	}
	if got := r.Successors("s0", 10); len(got) != 2 {
		t.Fatalf("Successors(s0, 10) = %v, want the 2 remaining shards", got)
	}
	if got := r.Successors("nope", 2); got != nil {
		t.Fatalf("Successors of an unknown shard = %v, want nil", got)
	}
	if got := r.Successors("s0", 0); got != nil {
		t.Fatalf("Successors(s0, 0) = %v, want nil", got)
	}
}

func TestRingOwnerIgnoresLiveness(t *testing.T) {
	r := NewRing(64)
	r.Add("s0")
	r.Add("s1")
	key := "some-canonical-key"
	home, _ := r.Owner(key)
	r.SetLive(home, false)
	if got, _ := r.Owner(key); got != home {
		t.Fatalf("Owner moved %s -> %s when %s went down; home placement must be liveness-independent", home, got, home)
	}
	if got, _ := r.Lookup(key); got == home {
		t.Fatalf("Lookup still routes to down shard %s", home)
	}
}
