package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"clustereval/internal/journal"
	"clustereval/internal/service"
)

// writeJournal builds a shard journal from records (test fixture for a
// crashed shard).
func writeJournal(t *testing.T, path string, recs ...journal.Record) {
	t.Helper()
	jnl, _, err := journal.Open(path)
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	if err := jnl.Append(recs...); err != nil {
		t.Fatalf("journal.Append: %v", err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatalf("journal.Close: %v", err)
	}
}

func specAndKey(t *testing.T, specJSON string) (json.RawMessage, string) {
	t.Helper()
	var spec service.JobSpec
	if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
		t.Fatal(err)
	}
	norm, key, err := service.Canonicalize(spec)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(norm)
	if err != nil {
		t.Fatal(err)
	}
	return buf, key
}

var journalEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestUnfinishedJobs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s1.wal")
	doneSpec, doneKey := specAndKey(t, `{"kind":"net","size_bytes":1024,"iters":5,"dst_node":1}`)
	runSpec, runKey := specAndKey(t, `{"kind":"net","size_bytes":2048,"iters":5,"dst_node":2}`)
	qSpec, qKey := specAndKey(t, `{"kind":"net","size_bytes":4096,"iters":5,"dst_node":3}`)
	writeJournal(t, path,
		journal.Record{Type: journal.TypeSubmitted, JobID: "j000001", At: journalEpoch, Spec: doneSpec, Key: doneKey},
		journal.Record{Type: journal.TypeStarted, JobID: "j000001", At: journalEpoch},
		journal.Record{Type: journal.TypeDone, JobID: "j000001", At: journalEpoch, Result: json.RawMessage(`{}`)},
		journal.Record{Type: journal.TypeSubmitted, JobID: "j000002", At: journalEpoch, Spec: runSpec, Key: runKey},
		journal.Record{Type: journal.TypeStarted, JobID: "j000002", At: journalEpoch},
		journal.Record{Type: journal.TypeSubmitted, JobID: "j000003", At: journalEpoch, Spec: qSpec, Key: qKey},
	)

	got, err := UnfinishedJobs(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d unfinished jobs, want 2 (running + queued): %+v", len(got), got)
	}
	if got[0].ID != "j000002" || got[0].Key != runKey {
		t.Fatalf("first unfinished = %+v, want the running job j000002", got[0])
	}
	if got[1].ID != "j000003" || got[1].Key != qKey {
		t.Fatalf("second unfinished = %+v, want the queued job j000003", got[1])
	}
}

func TestUnfinishedJobsCleanShutdownYieldsNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s1.wal")
	spec, key := specAndKey(t, `{"kind":"net","size_bytes":2048,"iters":5,"dst_node":2}`)
	writeJournal(t, path,
		journal.Record{Type: journal.TypeSubmitted, JobID: "j000001", At: journalEpoch, Spec: spec, Key: key},
		journal.Record{Type: journal.TypeShutdown, At: journalEpoch},
	)
	got, err := UnfinishedJobs(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("clean shutdown yielded %d jobs to move, want 0", len(got))
	}
}

func TestUnfinishedJobsMissingJournal(t *testing.T) {
	got, err := UnfinishedJobs(filepath.Join(t.TempDir(), "never-written.wal"))
	if err != nil || len(got) != 0 {
		t.Fatalf("missing journal: got %v, %v; want empty, nil", got, err)
	}
}

// FailShard on a crashed shard must re-enqueue its unfinished jobs onto
// survivors and keep the dead shard's fleet job IDs resolvable.
func TestFailShardHandsOffJournal(t *testing.T) {
	dir := t.TempDir()
	deadJournal := filepath.Join(dir, "s9.wal")
	spec1, key1 := specAndKey(t, `{"kind":"net","size_bytes":2048,"iters":5,"dst_node":2}`)
	spec2, key2 := specAndKey(t, `{"kind":"net","size_bytes":8192,"iters":5,"dst_node":4}`)
	writeJournal(t, deadJournal,
		journal.Record{Type: journal.TypeSubmitted, JobID: "j000001", At: journalEpoch, Spec: spec1, Key: key1},
		journal.Record{Type: journal.TypeStarted, JobID: "j000001", At: journalEpoch},
		journal.Record{Type: journal.TypeSubmitted, JobID: "j000002", At: journalEpoch, Spec: spec2, Key: key2},
	)

	// One live shard to inherit the work, one dead shard with the journal.
	svc := service.New(service.Config{Workers: 2})
	srv := httptest.NewServer(service.NewServer(svc))
	defer srv.Close()
	coord, err := NewCoordinator(CoordinatorConfig{}, []Shard{
		{Name: "s0", BaseURL: srv.URL},
		{Name: "s9", JournalPath: deadJournal}, // never came up
	})
	if err != nil {
		t.Fatal(err)
	}

	moved, err := coord.FailShard(context.Background(), "s9")
	if err != nil {
		t.Fatal(err)
	}
	if moved != 2 {
		t.Fatalf("handoff moved %d jobs, want 2", moved)
	}
	if got := coord.rerouted.Value(); got != 2 {
		t.Fatalf("fleet_rerouted_jobs_total = %d, want 2", got)
	}

	// The dead shard's public IDs must resolve to the new home.
	front := httptest.NewServer(coord)
	defer front.Close()
	for _, oldID := range []string{"s9-j000001", "s9-j000002"} {
		v := waitDone(t, front.URL, oldID)
		if v.State != "done" {
			t.Fatalf("handed-off job %s ended %q (%s)", oldID, v.State, v.Error)
		}
	}

	// Failing the same shard again must be a no-op, not a double-submit.
	moved, err = coord.FailShard(context.Background(), "s9")
	if err != nil || moved != 0 {
		t.Fatalf("second FailShard: moved=%d err=%v, want 0, nil", moved, err)
	}

	// A dead shard can never be revived into the ring.
	coord.SetShardLive("s9", true)
	if coord.ring.Shards()["s9"] {
		t.Fatal("dead shard rejoined the ring via SetShardLive")
	}

	_ = svc.Close(context.Background())
}

func TestFailShardUnknown(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	srv := httptest.NewServer(service.NewServer(svc))
	defer srv.Close()
	coord, err := NewCoordinator(CoordinatorConfig{}, []Shard{{Name: "s0", BaseURL: srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.FailShard(context.Background(), "nope"); err == nil {
		t.Fatal("FailShard on an unknown shard succeeded")
	}
	_ = svc.Close(context.Background())
}

// A handoff with no surviving shard counts errors instead of losing the
// jobs silently.
func TestFailShardNoSurvivors(t *testing.T) {
	dir := t.TempDir()
	deadJournal := filepath.Join(dir, "s0.wal")
	spec, key := specAndKey(t, `{"kind":"net","size_bytes":2048,"iters":5,"dst_node":2}`)
	writeJournal(t, deadJournal,
		journal.Record{Type: journal.TypeSubmitted, JobID: "j000001", At: journalEpoch, Spec: spec, Key: key},
	)
	coord, err := NewCoordinator(CoordinatorConfig{}, []Shard{{Name: "s0", JournalPath: deadJournal}})
	if err != nil {
		t.Fatal(err)
	}
	moved, err := coord.FailShard(context.Background(), "s0")
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Fatalf("moved %d jobs with no survivors", moved)
	}
	if got := coord.handoffErrors.Value(); got != 1 {
		t.Fatalf("fleet_handoff_errors_total = %d, want 1", got)
	}
}

// End-to-end: a shard crashes mid-workload (simulated by killing its
// listener), its journal is handed off, and every job still reaches
// exactly one terminal state via its original fleet ID.
//
// To make the crash deterministic rather than a race against s1's
// workers, s1 runs a single worker with a long retry backoff and its
// first job carries a node fault: the job fails with a retryable fault
// and parks the worker in a multi-second backoff, so everything behind
// it is still queued when the crash lands.
func TestHandoffAfterSimulatedCrash(t *testing.T) {
	dir := t.TempDir()
	crashJournal := filepath.Join(dir, "s1.wal")

	// Shard s1 runs durable, accepts work, then "crashes": we stop its
	// HTTP server without draining the service, leaving a journal whose
	// tail has no shutdown marker.
	svc0 := service.New(service.Config{Workers: 2})
	srv0 := httptest.NewServer(service.NewServer(svc0))
	defer srv0.Close()
	svc1, err := service.OpenDurable(service.Config{
		Workers: 1, MaxRetries: 5, RetryBackoff: 30 * time.Second,
	}, crashJournal)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(service.NewServer(svc1))

	coord, err := NewCoordinator(CoordinatorConfig{VirtualNodes: 32}, []Shard{
		{Name: "s0", BaseURL: srv0.URL},
		{Name: "s1", BaseURL: srv1.URL, JournalPath: crashJournal},
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(coord)
	defer front.Close()

	// The plug: a fault-carrying spec that routes to s1. It fails with a
	// retryable *NodeFailedError and holds s1's only worker in the 30s
	// retry backoff for the rest of the test.
	plugSpec := ""
	for i := 0; i < 4096 && plugSpec == ""; i++ {
		candidate := fmt.Sprintf(
			`{"kind":"net","size_bytes":%d,"iters":5,"dst_node":1,"faults":{"nodes":[{"node":1,"failed":true}]}}`,
			1024+i*64)
		if owner, _ := coord.ring.Lookup(canonicalKeyForTest(t, candidate)); owner == "s1" {
			plugSpec = candidate
		}
	}
	if plugSpec == "" {
		t.Fatal("could not find a fault spec owned by s1")
	}
	plug, resp := postJob(t, front.URL, plugSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("plug submit: HTTP %d", resp.StatusCode)
	}

	// Queue clean jobs behind the plug — they cannot finish on s1 — and
	// keep whatever lands on s0 as the control group.
	s1IDs := []string{}
	s0IDs := []string{}
	for i := 0; (len(s1IDs) < 3 || len(s0IDs) < 1) && i < 400; i++ {
		v, resp := postJob(t, front.URL, fmt.Sprintf(`{"kind":"net","size_bytes":%d,"iters":5,"dst_node":9}`, 1024+i*128))
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		if shard, _, _ := splitFleetID(v.ID); shard == "s1" {
			s1IDs = append(s1IDs, v.ID)
		} else {
			s0IDs = append(s0IDs, v.ID)
		}
	}
	if len(s1IDs) < 3 {
		t.Fatalf("could not land 3 jobs on s1 (got %d)", len(s1IDs))
	}

	// Crash s1: the listener dies; the service (and its journal handle)
	// is abandoned exactly as a SIGKILL would leave it, except the test
	// keeps holding the journal file handle, which FailShard tolerates
	// because the handoff reads the journal without opening it for append.
	srv1.CloseClientConnections()
	srv1.Close()

	moved, err := coord.FailShard(context.Background(), "s1")
	if err != nil {
		t.Fatal(err)
	}
	if want := len(s1IDs) + 1; moved != want {
		t.Fatalf("FailShard moved %d jobs, want %d (plug + queued)", moved, want)
	}

	// Every clean job — including those originally on s1 — must reach
	// "done" exactly once via its original fleet ID. The plug must reach
	// a terminal state too: "failed", since its fault is deterministic.
	for _, id := range append(append([]string{}, s0IDs...), s1IDs...) {
		v := waitDone(t, front.URL, id)
		if v.State != "done" {
			t.Fatalf("job %s ended %q (%s) after handoff", id, v.State, v.Error)
		}
	}
	if v := waitDone(t, front.URL, plug.ID); v.State != "failed" {
		t.Fatalf("plug job %s ended %q, want failed (deterministic fault)", plug.ID, v.State)
	}

	_ = svc0.Close(context.Background())
	// s1's worker is parked in the 30s retry backoff; a cancelled context
	// makes Close flip the per-job contexts instead of waiting it out.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	_ = svc1.Close(cancelled)
}
