package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file merges the shards' observability surfaces into fleet-wide
// views: /v1/metrics re-labels every shard series with shard="<name>"
// and sums counters into aggregate fleet_* series; /v1/healthz nests the
// per-shard reports under one fleet judgement.

// promFamily is one parsed metric family from a shard's exposition.
type promFamily struct {
	name    string
	help    string
	typ     string
	samples []promSample
}

type promSample struct {
	// series is the full series name including any label set, e.g.
	// `clusterd_job_duration_seconds_bucket{kind="net",le="0.1"}`.
	series string
	value  float64
}

// parsePromText parses the subset of the Prometheus text format the
// in-repo registry emits: # HELP / # TYPE lines and `series value`
// samples. Unknown lines are skipped rather than failing the merge — a
// scrape that half-parses still beats a blind spot.
func parsePromText(text string) map[string]*promFamily {
	fams := map[string]*promFamily{}
	family := func(name string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{name: name}
			fams[name] = f
		}
		return f
	}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, _ := strings.Cut(rest, " ")
			family(name).help = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, _ := strings.Cut(rest, " ")
			family(name).typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		series, valText := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			continue
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
		}
		// Histogram children belong to their base family for TYPE
		// grouping.
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		f := family(base)
		if f.typ != "histogram" {
			f = family(name)
		}
		f.samples = append(f.samples, promSample{series: series, value: val})
	}
	return fams
}

// withShardLabel injects shard="name" into a series, after any existing
// labels.
func withShardLabel(series, shard string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		// name{k="v"} -> name{k="v",shard="s0"}
		return series[:len(series)-1] + `,shard="` + shard + `"}`
	}
	return series + `{shard="` + shard + `"}`
}

// handleMetrics renders the fleet-wide exposition: the coordinator's own
// registry first, then aggregate fleet_<name> sums of every label-less
// shard counter, then each shard family re-labeled with shard="<name>".
// Ordering is fully deterministic (families and shards sorted) so
// consecutive scrapes diff cleanly.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = c.reg.WriteText(w)

	type shardScrape struct {
		name string
		fams map[string]*promFamily
	}
	var scrapes []shardScrape
	for _, st := range c.liveShards() {
		resp, err := c.forward(r.Context(), st, http.MethodGet, "/v1/metrics", nil)
		if err != nil {
			c.mergeScrapeErr.Inc()
			continue
		}
		text, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		if err != nil {
			c.mergeScrapeErr.Inc()
			continue
		}
		st.mu.Lock()
		name := st.decl.Name
		st.mu.Unlock()
		scrapes = append(scrapes, shardScrape{name: name, fams: parsePromText(string(text))})
	}

	// Aggregates: sum every counter (and the queue-depth gauge, whose sum
	// is the fleet's total backlog) across shards. Labeled counters like
	// clusterd_energy_joules_total{kind="hpl"} sum per label set, so the
	// fleet exposes one per-kind energy series over all shards.
	type agg struct {
		help, typ string
		sums      map[string]float64 // keyed by series, labels included
		shards    int
	}
	aggs := map[string]*agg{}
	for _, s := range scrapes {
		famNames := sortedKeys(s.fams)
		for _, fn := range famNames {
			f := s.fams[fn]
			if f.typ != "counter" && f.name != "clusterd_queue_depth" {
				continue
			}
			a, ok := aggs[f.name]
			if !ok {
				a = &agg{help: f.help, typ: f.typ, sums: map[string]float64{}}
				aggs[f.name] = a
			}
			a.shards++
			for _, smp := range f.samples {
				a.sums[smp.series] += smp.value
			}
		}
	}
	for _, name := range sortedKeys(aggs) {
		a := aggs[name]
		if len(a.sums) == 0 {
			continue
		}
		fmt.Fprintf(w, "# HELP fleet_%s Fleet-wide sum over %d shard(s): %s\n", name, a.shards, a.help)
		fmt.Fprintf(w, "# TYPE fleet_%s %s\n", name, a.typ)
		series := make([]string, 0, len(a.sums))
		for s := range a.sums {
			series = append(series, s)
		}
		sort.Strings(series)
		for _, s := range series {
			fmt.Fprintf(w, "fleet_%s %s\n", s, formatFloat(a.sums[s]))
		}
	}

	// Per-shard series, grouped per family so each family's TYPE header
	// appears once with every shard's samples beneath it.
	famNames := map[string]*promFamily{}
	for _, s := range scrapes {
		for fn, f := range s.fams {
			if _, ok := famNames[fn]; !ok {
				famNames[fn] = f
			}
		}
	}
	for _, fn := range sortedKeys(famNames) {
		f := famNames[fn]
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		if f.typ != "" {
			fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		}
		for _, s := range scrapes {
			sf, ok := s.fams[fn]
			if !ok {
				continue
			}
			for _, smp := range sf.samples {
				fmt.Fprintf(w, "%s %s\n", withShardLabel(smp.series, s.name), formatFloat(smp.value))
			}
		}
	}
}

// sortedKeys returns a map's keys in sorted order — ranging over the map
// directly while writing would leak Go's randomized iteration order into
// the exposition.
func sortedKeys[V any](m map[string]*V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// handleHealthz merges every shard's health report: per-shard JSON under
// "shards", plus fleet aggregates — total workers, summed queue depth
// and capacity, the worst saturation, and each shard's breaker state.
// The fleet is "ok" when every known shard is live and ok, "degraded"
// when any shard is down, dead or degraded — the fleet still serves, so
// the status code stays 200 either way.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type shardHealth struct {
		Live   bool           `json:"live"`
		Dead   bool           `json:"dead,omitempty"`
		Report map[string]any `json:"report,omitempty"`
		Error  string         `json:"error,omitempty"`
	}
	shards := map[string]shardHealth{}
	status := "ok"
	workers, queueDepth, queueCap := 0.0, 0.0, 0.0
	maxSaturation := 0.0
	liveCount := 0
	for _, st := range c.allShards() {
		st.mu.Lock()
		name := st.decl.Name
		live, dead, url := st.live, st.dead, st.baseURL
		st.mu.Unlock()
		sh := shardHealth{Live: live, Dead: dead}
		if !live || url == "" {
			status = "degraded"
			shards[name] = sh
			continue
		}
		resp, err := c.forward(r.Context(), st, http.MethodGet, "/v1/healthz", nil)
		if err != nil {
			c.mergeScrapeErr.Inc()
			sh.Error = err.Error()
			status = "degraded"
			shards[name] = sh
			continue
		}
		var report map[string]any
		err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&report)
		resp.Body.Close()
		if err != nil {
			sh.Error = "undecodable healthz: " + err.Error()
			status = "degraded"
			shards[name] = sh
			continue
		}
		sh.Report = report
		shards[name] = sh
		liveCount++
		if s, _ := report["status"].(string); s != "ok" {
			status = "degraded"
		}
		if v, ok := report["workers"].(float64); ok {
			workers += v
		}
		if v, ok := report["queue_depth"].(float64); ok {
			queueDepth += v
		}
		if v, ok := report["queue_capacity"].(float64); ok {
			queueCap += v
		}
		if v, ok := report["queue_saturation"].(float64); ok && v > maxSaturation {
			maxSaturation = v
		}
	}
	if liveCount == 0 {
		status = "down"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":               status,
		"uptime_seconds":       c.Uptime().Seconds(),
		"live_shards":          liveCount,
		"known_shards":         len(c.allShards()),
		"workers":              workers,
		"queue_depth":          queueDepth,
		"queue_capacity":       queueCap,
		"max_queue_saturation": maxSaturation,
		"shards":               shards,
	})
}
