package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// Ring is a consistent-hash ring mapping canonical cache keys onto shard
// names. Each shard contributes Virtual points ("virtual nodes") placed
// by hashing "<shard>#<i>", which evens out the key ranges: with v
// virtual nodes per shard the largest shard owns O(log n / v) more than
// its fair share instead of O(n). Lookups walk clockwise from the key's
// hash to the first point owned by a live shard, so marking a shard down
// reroutes exactly its key range to its ring successors and nothing else
// — the property that makes shard loss a local event instead of a fleet-
// wide reshuffle.
//
// The ring hashes with SHA-256 (truncated to 64 bits): keys are already
// hex SHA-256 content addresses, and reusing the family keeps placement
// independent of Go's randomized map/hash state — the same fleet layout
// reproduces run after run.
type Ring struct {
	mu      sync.RWMutex
	virtual int
	points  []ringPoint // sorted by hash
	live    map[string]bool
}

type ringPoint struct {
	hash  uint64
	shard string
}

// NewRing returns an empty ring with v virtual nodes per shard (v <= 0
// means 64, enough to keep imbalance under a few percent for small
// fleets).
func NewRing(v int) *Ring {
	if v <= 0 {
		v = 64
	}
	return &Ring{virtual: v, live: map[string]bool{}}
}

// hashPoint places one virtual node deterministically.
func hashPoint(shard string, i int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", shard, i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// hashKey places a cache key on the ring.
func hashKey(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a shard's virtual nodes and marks it live. Adding an
// existing shard only revives it.
func (r *Ring) Add(shard string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, known := r.live[shard]; known {
		r.live[shard] = true
		return
	}
	r.live[shard] = true
	for i := 0; i < r.virtual; i++ {
		r.points = append(r.points, ringPoint{hashPoint(shard, i), shard})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
}

// SetLive marks a shard routable or not without disturbing its ring
// points: a down shard's range flows to its successors, and flows back
// the moment it revives.
func (r *Ring) SetLive(shard string, live bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, known := r.live[shard]; known {
		r.live[shard] = live
	}
}

// Remove deletes a shard's virtual nodes entirely (permanent death, after
// journal handoff).
func (r *Ring) Remove(shard string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, known := r.live[shard]; !known {
		return
	}
	delete(r.live, shard)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Shards returns every known shard name, sorted, with its liveness.
func (r *Ring) Shards() map[string]bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]bool, len(r.live))
	for s, l := range r.live {
		out[s] = l
	}
	return out
}

// Successors returns up to n distinct shards that follow shard's first
// virtual point clockwise — the deterministic follower set journal
// replication ships to. Placement deliberately ignores liveness: a
// follower that is briefly down still holds its replica on disk, and
// flapping must not reshuffle where copies live. Permanently removed
// shards no longer appear. The shard itself is excluded; an unknown
// shard yields nil.
func (r *Ring) Successors(shard string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	if _, known := r.live[shard]; !known {
		return nil
	}
	h := hashPoint(shard, 0)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := map[string]bool{shard: true}
	var out []string
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.shard] {
			continue
		}
		seen[p.shard] = true
		out = append(out, p.shard)
	}
	return out
}

// Lookup returns the live shard owning key, walking clockwise from the
// key's hash past points of down shards. ok is false when no live shard
// exists.
func (r *Ring) Lookup(key string) (shard string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if r.live[p.shard] {
			return p.shard, true
		}
	}
	return "", false
}

// Owner returns the shard that owns key when every shard is live — the
// key's home placement, independent of current liveness. ok is false on
// an empty ring.
func (r *Ring) Owner(key string) (shard string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	return r.points[i%len(r.points)].shard, true
}
