package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const stubExpoS0 = `# HELP clusterd_jobs_total Total jobs accepted.
# TYPE clusterd_jobs_total counter
clusterd_jobs_total 10
# HELP clusterd_queue_depth Jobs waiting in the queue.
# TYPE clusterd_queue_depth gauge
clusterd_queue_depth 1
# HELP clusterd_queue_capacity Queue capacity.
# TYPE clusterd_queue_capacity gauge
clusterd_queue_capacity 256
# HELP clusterd_job_duration_seconds Job runtime.
# TYPE clusterd_job_duration_seconds histogram
clusterd_job_duration_seconds_bucket{kind="net",le="0.1"} 4
clusterd_job_duration_seconds_sum{kind="net"} 0.2
clusterd_job_duration_seconds_count{kind="net"} 4
`

const stubExpoS1 = `# HELP clusterd_jobs_total Total jobs accepted.
# TYPE clusterd_jobs_total counter
clusterd_jobs_total 20
# HELP clusterd_queue_depth Jobs waiting in the queue.
# TYPE clusterd_queue_depth gauge
clusterd_queue_depth 2
# HELP clusterd_queue_capacity Queue capacity.
# TYPE clusterd_queue_capacity gauge
clusterd_queue_capacity 256
`

func TestParsePromText(t *testing.T) {
	fams := parsePromText(stubExpoS0 + "garbage line without value x\n# odd comment\n")
	f, ok := fams["clusterd_jobs_total"]
	if !ok {
		t.Fatal("clusterd_jobs_total family missing")
	}
	if f.typ != "counter" || f.help != "Total jobs accepted." {
		t.Fatalf("family parsed as typ=%q help=%q", f.typ, f.help)
	}
	if len(f.samples) != 1 || f.samples[0].value != 10 {
		t.Fatalf("samples = %+v, want one sample of 10", f.samples)
	}
	// Histogram children must group under the base family, not spawn
	// families of their own.
	h, ok := fams["clusterd_job_duration_seconds"]
	if !ok {
		t.Fatal("histogram family missing")
	}
	if h.typ != "histogram" || len(h.samples) != 3 {
		t.Fatalf("histogram family typ=%q with %d samples, want 3", h.typ, len(h.samples))
	}
	for _, spawned := range []string{"clusterd_job_duration_seconds_bucket", "clusterd_job_duration_seconds_sum", "clusterd_job_duration_seconds_count"} {
		if _, ok := fams[spawned]; ok {
			t.Fatalf("histogram child %s became its own family", spawned)
		}
	}
}

func TestWithShardLabel(t *testing.T) {
	if got := withShardLabel("clusterd_jobs_total", "s0"); got != `clusterd_jobs_total{shard="s0"}` {
		t.Fatalf("bare series: %s", got)
	}
	if got := withShardLabel(`m{kind="net",le="0.1"}`, "s1"); got != `m{kind="net",le="0.1",shard="s1"}` {
		t.Fatalf("labeled series: %s", got)
	}
}

// stubShard serves a fixed Prometheus exposition on /v1/metrics.
func stubShard(t *testing.T, expo string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = io.WriteString(w, expo)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func scrapeFleet(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatalf("GET /v1/metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestFleetMetricsMerge(t *testing.T) {
	s0 := stubShard(t, stubExpoS0)
	s1 := stubShard(t, stubExpoS1)
	coord, err := NewCoordinator(CoordinatorConfig{VirtualNodes: 16}, []Shard{
		{Name: "s0", BaseURL: s0.URL},
		{Name: "s1", BaseURL: s1.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(coord)
	defer front.Close()

	body := scrapeFleet(t, front.URL)

	// Aggregates: counters sum across shards, and so does the queue-depth
	// gauge (the fleet's total backlog). Other gauges must not be summed —
	// a fleet-wide "capacity 512" would be an invented series.
	for _, want := range []string{
		"fleet_clusterd_jobs_total 30\n",
		"fleet_clusterd_queue_depth 3\n",
		"# TYPE fleet_clusterd_jobs_total counter\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("merged exposition missing %q", want)
		}
	}
	if strings.Contains(body, "fleet_clusterd_queue_capacity") {
		t.Error("non-backlog gauge clusterd_queue_capacity was aggregated")
	}

	// Per-shard series carry the shard label; labeled series get it
	// appended after the existing labels.
	for _, want := range []string{
		`clusterd_jobs_total{shard="s0"} 10` + "\n",
		`clusterd_jobs_total{shard="s1"} 20` + "\n",
		`clusterd_job_duration_seconds_bucket{kind="net",le="0.1",shard="s0"} 4` + "\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("merged exposition missing %q", want)
		}
	}

	// Each family's TYPE header appears exactly once even though two
	// shards report it.
	if n := strings.Count(body, "# TYPE clusterd_jobs_total counter\n"); n != 1 {
		t.Errorf("TYPE header for clusterd_jobs_total appears %d times, want 1", n)
	}

	// The coordinator's own registry leads the exposition.
	if !strings.Contains(body, "fleet_live_shards 2\n") {
		t.Error("coordinator registry series fleet_live_shards missing")
	}

	// Determinism: a second scrape is byte-identical (families and shards
	// are sorted; nothing changed in between).
	if again := scrapeFleet(t, front.URL); again != body {
		t.Error("two idle scrapes differ; exposition ordering is not deterministic")
	}
}

// A shard that stops answering must not break the merge: its series
// disappear, the scrape error is counted, and the aggregate drops to the
// survivors' sum.
func TestFleetMetricsMergeSkipsDownShard(t *testing.T) {
	s0 := stubShard(t, stubExpoS0)
	s1 := stubShard(t, stubExpoS1)
	coord, err := NewCoordinator(CoordinatorConfig{VirtualNodes: 16}, []Shard{
		{Name: "s0", BaseURL: s0.URL},
		{Name: "s1", BaseURL: s1.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(coord)
	defer front.Close()

	coord.SetShardLive("s1", false)
	body := scrapeFleet(t, front.URL)
	if !strings.Contains(body, "fleet_clusterd_jobs_total 10\n") {
		t.Error("aggregate should cover only the live shard")
	}
	if strings.Contains(body, `clusterd_jobs_total{shard="s1"}`) {
		t.Error("down shard still contributes series")
	}
	// The coordinator's own view still names the down shard.
	if !strings.Contains(body, `fleet_shard_up{shard="s1"} 0`+"\n") {
		t.Error("fleet_shard_up gauge does not report s1 down")
	}
}

func fleetHealthz(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatalf("GET /v1/healthz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz HTTP %d", resp.StatusCode)
	}
	var report map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	return report
}

func TestFleetHealthzMerge(t *testing.T) {
	tf := newTestFleet(t, 2)
	front := tf.front(t)

	report := fleetHealthz(t, front.URL)
	if report["status"] != "ok" {
		t.Fatalf("fresh fleet status = %v, want ok", report["status"])
	}
	if got := report["live_shards"].(float64); got != 2 {
		t.Fatalf("live_shards = %v, want 2", got)
	}
	// Workers aggregate across shards (2 per test shard).
	if got := report["workers"].(float64); got != 4 {
		t.Fatalf("workers = %v, want 4", got)
	}
	shards, ok := report["shards"].(map[string]any)
	if !ok || len(shards) != 2 {
		t.Fatalf("shards = %v, want 2 entries", report["shards"])
	}
	s0 := shards["s0"].(map[string]any)
	if s0["live"] != true {
		t.Fatalf("s0 = %v, want live", s0)
	}
	// Each nested report is the shard's own healthz, shard identity
	// included.
	if rep := s0["report"].(map[string]any); rep["shard"] != "s0" {
		t.Fatalf("s0 report = %v, want shard identity s0", rep)
	}

	// One shard down: the fleet degrades but keeps serving 200.
	tf.coord.SetShardLive("s1", false)
	report = fleetHealthz(t, front.URL)
	if report["status"] != "degraded" {
		t.Fatalf("status with s1 down = %v, want degraded", report["status"])
	}
	if got := report["live_shards"].(float64); got != 1 {
		t.Fatalf("live_shards with s1 down = %v, want 1", got)
	}

	// Every shard down: the fleet is down.
	tf.coord.SetShardLive("s0", false)
	report = fleetHealthz(t, front.URL)
	if report["status"] != "down" {
		t.Fatalf("status with all shards down = %v, want down", report["status"])
	}
}
