// Package journal implements clusterd's write-ahead job journal: an
// append-only log of job lifecycle records, one CRC-framed JSON record
// per line, fsynced before the corresponding state change is
// acknowledged to a client.
//
// The framing is deliberately boring — `crc32c(json) SP json LF` — so a
// journal survives being inspected (and repaired) with a text editor.
// Decoding is tolerant of exactly the damage a crash can inflict: a torn
// final record (the write the machine died in the middle of) is dropped
// and truncated away on the next open. Damage anywhere *before* intact
// records cannot be produced by a crash of this writer, only by external
// corruption, so it is refused with ErrCorrupt rather than silently
// skipped — recovery must never invent a job history.
package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// Type tags one lifecycle record.
type Type string

// The record vocabulary. One job emits submitted → started →
// (done|failed|cancelled); started repeats per retry attempt. A shutdown
// record carries no job: it marks a clean drain, letting recovery
// distinguish "the daemon chose to stop" from "the daemon died".
const (
	TypeSubmitted Type = "submitted"
	TypeStarted   Type = "started"
	TypeDone      Type = "done"
	TypeFailed    Type = "failed"
	TypeCancelled Type = "cancelled"
	TypeShutdown  Type = "shutdown"
)

// known vocabulary for decode-time validation.
var knownTypes = map[Type]bool{
	TypeSubmitted: true, TypeStarted: true, TypeDone: true,
	TypeFailed: true, TypeCancelled: true, TypeShutdown: true,
}

// Record is one journal entry. Spec and Result are raw JSON so this
// package stays independent of the service's types; the service owns
// their schemas.
type Record struct {
	Type  Type      `json:"type"`
	JobID string    `json:"job,omitempty"`
	At    time.Time `json:"at,omitzero"`
	// Spec and Key accompany a submitted record.
	Spec json.RawMessage `json:"spec,omitempty"`
	Key  string          `json:"key,omitempty"`
	// Attempt is the 0-based attempt number on a started record and the
	// total attempts consumed on a terminal record.
	Attempt int `json:"attempt,omitempty"`
	// Cached marks a done record answered from the result cache.
	Cached bool `json:"cached,omitempty"`
	// Degraded marks a failed record that exhausted its fault retries.
	Degraded bool            `json:"degraded,omitempty"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// validate rejects records no writer of this package produces.
func (r Record) validate() error {
	if !knownTypes[r.Type] {
		return fmt.Errorf("journal: unknown record type %q", r.Type)
	}
	if r.Type != TypeShutdown && r.JobID == "" {
		return fmt.Errorf("journal: %s record without a job id", r.Type)
	}
	return nil
}

// ErrCorrupt reports a damaged record that is followed by further intact
// records — damage a crash of this writer cannot produce.
var ErrCorrupt = errors.New("journal: corrupt record before end of journal")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameLine wraps one JSON body in the journal framing: 8 hex digits of
// CRC-32C over the body, a space, the body, a newline. The replication
// stream (replica.go) reuses the same discipline so both kinds of file
// survive inspection with a text editor and tolerate exactly the same
// crash damage.
func frameLine(body []byte) []byte {
	line := make([]byte, 0, len(body)+10)
	line = fmt.Appendf(line, "%08x ", crc32.Checksum(body, castagnoli))
	line = append(line, body...)
	line = append(line, '\n')
	return line
}

// unframeLine checks one framed line (without its newline) and returns
// the JSON body.
func unframeLine(line []byte) ([]byte, error) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, fmt.Errorf("journal: malformed frame (%d bytes)", len(line))
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return nil, fmt.Errorf("journal: malformed checksum: %w", err)
	}
	body := line[9:]
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, fmt.Errorf("journal: checksum mismatch: frame says %08x, body hashes to %08x", want, got)
	}
	return body, nil
}

// encode frames one record: 8 hex digits of CRC-32C over the JSON body,
// a space, the body, a newline.
func encode(r Record) ([]byte, error) {
	if err := r.validate(); err != nil {
		return nil, err
	}
	body, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("journal: encoding record: %w", err)
	}
	return frameLine(body), nil
}

// decodeLine parses one framed line (without its newline).
func decodeLine(line []byte) (Record, error) {
	body, err := unframeLine(line)
	if err != nil {
		return Record{}, err
	}
	var r Record
	if err := json.Unmarshal(body, &r); err != nil {
		return Record{}, fmt.Errorf("journal: undecodable record body: %w", err)
	}
	if err := r.validate(); err != nil {
		return Record{}, err
	}
	return r, nil
}

// Decode parses a journal image and returns the records of its longest
// valid prefix plus the byte length of that prefix. A damaged or
// unterminated *tail* — the signature of a crash mid-append — is
// reported via torn=true and is not an error; Open truncates it away. A
// damaged record with intact records after it means external corruption
// and yields ErrCorrupt: the prefix before the damage is still returned,
// but the journal must not be silently reused.
func Decode(data []byte) (recs []Record, goodLen int, torn bool, err error) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Unterminated tail: the newline is written (and fsynced) with
			// its record, so an unterminated record was never acknowledged.
			return recs, off, true, nil
		}
		rec, derr := decodeLine(data[off : off+nl])
		if derr != nil {
			if intactRecordAfter(data[off+nl+1:]) {
				return recs, off, false, fmt.Errorf("%w at byte %d: %w", ErrCorrupt, off, derr)
			}
			return recs, off, true, nil
		}
		recs = append(recs, rec)
		off += nl + 1
	}
	return recs, off, false, nil
}

// intactRecordAfter reports whether any complete, valid record follows.
func intactRecordAfter(data []byte) bool {
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			return false
		}
		if _, err := decodeLine(data[:nl]); err == nil {
			return true
		}
		data = data[nl+1:]
	}
	return false
}

// fsync is the journal's one hook into the platter. A package variable
// so tests can inject a failing sync and exercise the fail-stop path
// without needing a broken disk.
var fsync = func(f *os.File) error { return f.Sync() }

// ErrPoisoned wraps the first write or fsync failure of a journal (or a
// replica store file). Once poisoned, every subsequent append returns
// the same sticky error: a journal that cannot prove a record reached
// the platter must never acknowledge another one, because the service
// above it treats a successful append as permission to ack the client.
var ErrPoisoned = errors.New("journal: poisoned by an earlier write or fsync failure")

// Journal is an open write-ahead journal. Append is safe for concurrent
// use; each record is fsynced before Append returns, so an acknowledged
// record survives any subsequent crash. A failed write or fsync poisons
// the journal: the error is sticky and every later Append fails with it,
// rather than silently resuming on a file whose tail state is unknown.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	appended uint64
	poisoned error // sticky first write/fsync failure
}

// Open opens (creating if absent) the journal at path and replays its
// records. A torn final record is truncated away; mid-file corruption is
// refused with ErrCorrupt. The returned journal is positioned for
// appending.
func Open(path string) (*Journal, []Record, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	recs, good, torn, err := Decode(data)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: opening %s: %w", path, err)
	}
	if torn || good < len(data) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncating torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: seeking %s: %w", path, err)
	}
	return &Journal{f: f, path: path}, recs, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Appended returns the number of records written through this handle.
func (j *Journal) Appended() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// Err returns the sticky poison error, nil while the journal is healthy.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.poisoned
}

// Append writes the records and fsyncs once. Either every record is
// committed or (on error) the journal is poisoned: the failure is sticky
// and every subsequent Append returns it, so a record that may never
// have hit the platter can never be followed by an acknowledged one.
// Partial writes surface as a torn tail on the next Open.
func (j *Journal) Append(recs ...Record) error {
	var buf []byte
	for _, r := range recs {
		line, err := encode(r)
		if err != nil {
			return err
		}
		buf = append(buf, line...)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.poisoned != nil {
		return j.poisoned
	}
	if j.f == nil {
		return errors.New("journal: closed")
	}
	if _, err := j.f.Write(buf); err != nil {
		j.poisoned = fmt.Errorf("%w: appending to %s: %w", ErrPoisoned, j.path, err)
		return fmt.Errorf("journal: appending to %s: %w", j.path, err)
	}
	if err := fsync(j.f); err != nil {
		j.poisoned = fmt.Errorf("%w: fsync %s: %w", ErrPoisoned, j.path, err)
		return fmt.Errorf("journal: fsync %s: %w", j.path, err)
	}
	j.appended += uint64(len(recs))
	return nil
}

// Close syncs and closes the journal. It is idempotent. A poisoned
// journal is closed without the final sync — its durability promise is
// already void and the poison error explains why.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	f := j.f
	j.f = nil
	if j.poisoned != nil {
		_ = f.Close()
		return j.poisoned
	}
	if err := fsync(f); err != nil {
		f.Close()
		return fmt.Errorf("journal: fsync %s: %w", j.path, err)
	}
	return f.Close()
}
