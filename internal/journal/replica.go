// Replication stream and replica store.
//
// A shard's primary journal is an ordered record stream; replication
// ships that stream to follower shards as framed Frames, each carrying
// the source shard, the record's 1-based sequence number in the source
// journal, and the record itself. A follower appends incoming frames to
// one replica file per source (`replica-<src>.wal` in its data
// directory) with the same CRC/torn-tail discipline as the primary
// journal: fsync before ack, a torn tail is truncated on open, mid-file
// damage is refused.
//
// Sequence numbers make the stream self-verifying: a follower only
// appends the frame that extends its replica by exactly one record.
// Duplicates (Seq at or below what it holds) are acknowledged and
// dropped — a primary retrying a batch is harmless — and a gap (Seq
// jumping ahead) is refused with ErrGap plus the follower's current
// position, which the primary uses to re-ship the missing records from
// its own journal. The result is that every replica is a strict prefix
// of its source journal, which is exactly what failover promotion
// needs: promoting a replica is rewriting its frames back into a plain
// journal and replaying it through the normal OpenDurable path.
package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Frame is one replication stream element: record Seq (1-based) of the
// Src shard's primary journal.
type Frame struct {
	Src string `json:"src"`
	Seq uint64 `json:"seq"`
	Rec Record `json:"rec"`
}

// validate rejects frames no replicator of this package produces.
func (f Frame) validate() error {
	if f.Src == "" {
		return errors.New("journal: replication frame without a source shard")
	}
	if f.Seq == 0 {
		return fmt.Errorf("journal: replication frame from %s with zero sequence", f.Src)
	}
	return f.Rec.validate()
}

// EncodeFrame frames one replication element with the journal's CRC
// framing.
func EncodeFrame(f Frame) ([]byte, error) {
	if err := f.validate(); err != nil {
		return nil, err
	}
	body, err := json.Marshal(f)
	if err != nil {
		return nil, fmt.Errorf("journal: encoding replication frame: %w", err)
	}
	return frameLine(body), nil
}

// EncodeFrames frames a batch, in order.
func EncodeFrames(frames []Frame) ([]byte, error) {
	var buf []byte
	for _, f := range frames {
		line, err := EncodeFrame(f)
		if err != nil {
			return nil, err
		}
		buf = append(buf, line...)
	}
	return buf, nil
}

// decodeFrameLine parses one framed line (without its newline).
func decodeFrameLine(line []byte) (Frame, error) {
	body, err := unframeLine(line)
	if err != nil {
		return Frame{}, err
	}
	var f Frame
	if err := json.Unmarshal(body, &f); err != nil {
		return Frame{}, fmt.Errorf("journal: undecodable replication frame: %w", err)
	}
	if err := f.validate(); err != nil {
		return Frame{}, err
	}
	return f, nil
}

// DecodeFrames parses a replication stream image with the same damage
// tolerance as Decode: the frames of the longest valid prefix are
// returned with the prefix's byte length; a damaged or unterminated
// tail is reported via torn=true (the crash signature — truncate and
// keep going) while damage before intact frames yields ErrCorrupt.
func DecodeFrames(data []byte) (frames []Frame, goodLen int, torn bool, err error) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			return frames, off, true, nil
		}
		f, derr := decodeFrameLine(data[off : off+nl])
		if derr != nil {
			if intactFrameAfter(data[off+nl+1:]) {
				return frames, off, false, fmt.Errorf("%w at byte %d: %w", ErrCorrupt, off, derr)
			}
			return frames, off, true, nil
		}
		frames = append(frames, f)
		off += nl + 1
	}
	return frames, off, false, nil
}

// intactFrameAfter reports whether any complete, valid frame follows.
func intactFrameAfter(data []byte) bool {
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			return false
		}
		if _, err := decodeFrameLine(data[:nl]); err == nil {
			return true
		}
		data = data[nl+1:]
	}
	return false
}

// ErrGap reports an ingest batch whose first new frame does not extend
// the replica by exactly one record. The primary resolves it by
// re-shipping from the follower's last sequence.
var ErrGap = errors.New("journal: replication frame gap")

// replicaPrefix and replicaSuffix shape replica file names.
const (
	replicaPrefix = "replica-"
	replicaSuffix = ".wal"
)

// ReplicaPath locates the replica file a follower keeps for src inside
// dir.
func ReplicaPath(dir, src string) string {
	return filepath.Join(dir, replicaPrefix+src+replicaSuffix)
}

// replicaFile is one open per-source replica with its append position.
type replicaFile struct {
	f        *os.File
	path     string
	seq      uint64 // highest contiguous sequence held
	poisoned error  // sticky first write/fsync failure
}

// ReplicaStore holds a follower's replica files, one per source shard,
// under a single directory. Ingest is safe for concurrent use.
type ReplicaStore struct {
	mu    sync.Mutex
	dir   string
	files map[string]*replicaFile
}

// OpenReplicaStore opens (creating if absent) the replica directory and
// every replica-*.wal inside it, truncating torn tails exactly like
// Open. Mid-file corruption in any replica is refused: a follower must
// never ack frames onto a replica whose history it cannot vouch for.
func OpenReplicaStore(dir string) (*ReplicaStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: replica dir %s: %w", dir, err)
	}
	s := &ReplicaStore{dir: dir, files: map[string]*replicaFile{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: scanning replica dir %s: %w", dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		src, ok := strings.CutPrefix(name, replicaPrefix)
		if !ok {
			continue
		}
		src, ok = strings.CutSuffix(src, replicaSuffix)
		if !ok || src == "" {
			continue
		}
		if _, err := s.open(src); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// open opens (creating if absent) the replica file for src. Caller need
// not hold s.mu for OpenReplicaStore's sequential scan; Ingest calls it
// under the lock.
func (s *ReplicaStore) open(src string) (*replicaFile, error) {
	if rf, ok := s.files[src]; ok {
		return rf, nil
	}
	path := ReplicaPath(s.dir, src)
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("journal: reading replica %s: %w", path, err)
	}
	frames, good, torn, err := DecodeFrames(data)
	if err != nil {
		return nil, fmt.Errorf("journal: replica %s: %w", path, err)
	}
	seq := uint64(0)
	for _, f := range frames {
		if f.Src != src {
			return nil, fmt.Errorf("%w: replica %s holds a frame from %q", ErrCorrupt, path, f.Src)
		}
		if f.Seq != seq+1 {
			return nil, fmt.Errorf("%w: replica %s jumps from seq %d to %d", ErrCorrupt, path, seq, f.Seq)
		}
		seq = f.Seq
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: opening replica %s: %w", path, err)
	}
	if torn || good < len(data) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: truncating torn tail of replica %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: seeking replica %s: %w", path, err)
	}
	rf := &replicaFile{f: f, path: path, seq: seq}
	s.files[src] = rf
	return rf, nil
}

// Ingest appends a batch of frames from one source, fsyncing once
// before it returns. Frames at or below the replica's position are
// dropped as duplicates; the batch must otherwise extend the replica
// contiguously or the whole batch is refused with ErrGap. Either way
// the returned lastSeq is the replica's position afterwards, which the
// follower's ingest endpoint reports back so the primary can tell
// exactly where to resume. A write or fsync failure poisons the
// replica: like the primary journal, it never acks a frame it cannot
// prove durable.
func (s *ReplicaStore) Ingest(frames []Frame) (lastSeq uint64, err error) {
	if len(frames) == 0 {
		return 0, errors.New("journal: empty replication batch")
	}
	src := frames[0].Src
	for _, f := range frames {
		if err := f.validate(); err != nil {
			return 0, err
		}
		if f.Src != src {
			return 0, fmt.Errorf("journal: replication batch mixes sources %q and %q", src, f.Src)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	rf, err := s.open(src)
	if err != nil {
		return 0, err
	}
	if rf.poisoned != nil {
		return rf.seq, rf.poisoned
	}

	var buf []byte
	seq := rf.seq
	for _, f := range frames {
		if f.Seq <= seq {
			continue // duplicate of a frame already held
		}
		if f.Seq != seq+1 {
			return rf.seq, fmt.Errorf("%w: replica of %s holds seq %d, batch offers %d", ErrGap, src, rf.seq, f.Seq)
		}
		line, err := EncodeFrame(f)
		if err != nil {
			return rf.seq, err
		}
		buf = append(buf, line...)
		seq = f.Seq
	}
	if len(buf) == 0 {
		return rf.seq, nil // pure duplicate batch: ack without touching the disk
	}
	if _, err := rf.f.Write(buf); err != nil {
		rf.poisoned = fmt.Errorf("%w: appending to replica %s: %w", ErrPoisoned, rf.path, err)
		return rf.seq, rf.poisoned
	}
	if err := fsync(rf.f); err != nil {
		rf.poisoned = fmt.Errorf("%w: fsync replica %s: %w", ErrPoisoned, rf.path, err)
		return rf.seq, rf.poisoned
	}
	rf.seq = seq
	return rf.seq, nil
}

// LastSeq returns the highest contiguous sequence held for src, 0 when
// no replica exists.
func (s *ReplicaStore) LastSeq(src string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rf, ok := s.files[src]; ok {
		return rf.seq
	}
	return 0
}

// Sources returns every source shard with a replica here and its
// position, sorted by shard name.
func (s *ReplicaStore) Sources() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.files))
	for src, rf := range s.files {
		out[src] = rf.seq
	}
	return out
}

// Dir returns the store's directory.
func (s *ReplicaStore) Dir() string {
	return s.dir
}

// Close closes every replica file. It is idempotent.
func (s *ReplicaStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	names := make([]string, 0, len(s.files))
	for src := range s.files {
		names = append(names, src)
	}
	sort.Strings(names)
	for _, src := range names {
		rf := s.files[src]
		if rf.f != nil {
			if err := rf.f.Close(); err != nil && first == nil {
				first = fmt.Errorf("journal: closing replica %s: %w", rf.path, err)
			}
			rf.f = nil
		}
		delete(s.files, src)
	}
	return first
}

// ReadReplica decodes a replica file offline (no open handles, torn
// tail tolerated) and returns its records in sequence order plus the
// highest sequence held. Failover promotion uses it to size up each
// follower's copy of a dead shard's journal; a missing file is simply
// an empty replica.
func ReadReplica(path string) (recs []Record, lastSeq uint64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("journal: reading replica %s: %w", path, err)
	}
	frames, _, _, err := DecodeFrames(data)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: replica %s: %w", path, err)
	}
	seq := uint64(0)
	for _, f := range frames {
		if f.Seq != seq+1 {
			return nil, 0, fmt.Errorf("%w: replica %s jumps from seq %d to %d", ErrCorrupt, path, seq, f.Seq)
		}
		seq = f.Seq
		recs = append(recs, f.Rec)
	}
	return recs, seq, nil
}

// WriteJournal writes records as a plain journal image at path,
// atomically: the image lands in a temp file, is fsynced, and renamed
// into place, so a crash mid-promotion leaves either no journal or a
// complete one — never a half-written history presented as whole.
func WriteJournal(path string, recs []Record) error {
	var buf []byte
	for _, r := range recs {
		line, err := encode(r)
		if err != nil {
			return err
		}
		buf = append(buf, line...)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: creating %s: %w", tmp, err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("journal: writing %s: %w", tmp, err)
	}
	if err := fsync(f); err != nil {
		f.Close()
		return fmt.Errorf("journal: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("journal: installing %s: %w", path, err)
	}
	return nil
}

// PromoteReplica rewrites the replica at replicaPath into a plain
// journal at journalPath and returns how many records it carried. The
// promoted journal replays through the ordinary OpenDurable recovery
// path: terminal jobs rehydrate with their results, unfinished jobs
// re-enqueue and run again.
func PromoteReplica(replicaPath, journalPath string) (int, error) {
	recs, _, err := ReadReplica(replicaPath)
	if err != nil {
		return 0, err
	}
	if err := WriteJournal(journalPath, recs); err != nil {
		return 0, err
	}
	return len(recs), nil
}
