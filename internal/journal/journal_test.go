package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// sample builds a plausible lifecycle record.
func sample(typ Type, id string) Record {
	r := Record{Type: typ, JobID: id, At: time.Date(2021, 9, 7, 12, 0, 0, 0, time.UTC)}
	switch typ {
	case TypeSubmitted:
		r.Spec = json.RawMessage(`{"kind":"hpl","nodes":4}`)
		r.Key = "deadbeef"
	case TypeDone:
		r.Result = json.RawMessage(`{"kind":"hpl","summary":"ok"}`)
		r.Attempt = 1
	case TypeFailed:
		r.Error = "model exploded"
		r.Degraded = true
	case TypeShutdown:
		r.JobID = ""
	}
	return r
}

func mustOpen(t *testing.T, path string) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return j, recs
}

func TestAppendReplayRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, recs := mustOpen(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []Record{
		sample(TypeSubmitted, "j000001"),
		sample(TypeStarted, "j000001"),
		sample(TypeDone, "j000001"),
		sample(TypeShutdown, ""),
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append(%s): %v", r.Type, err)
		}
	}
	if got := j.Appended(); got != uint64(len(want)) {
		t.Errorf("Appended() = %d, want %d", got, len(want))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}

	j2, got := mustOpen(t, path)
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		a, _ := json.Marshal(want[i])
		b, _ := json.Marshal(got[i])
		if !bytes.Equal(a, b) {
			t.Errorf("record %d: got %s, want %s", i, b, a)
		}
	}
}

func TestEmptyJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs := mustOpen(t, path)
	defer j.Close()
	if len(recs) != 0 {
		t.Errorf("empty journal replayed %d records", len(recs))
	}
	if err := j.Append(sample(TypeSubmitted, "j000001")); err != nil {
		t.Errorf("append to reopened empty journal: %v", err)
	}
}

// TestTruncatedFinalRecord chops bytes off a valid journal at every
// possible point within the last record: each truncation must replay the
// intact prefix, report no error, and leave the file appendable.
func TestTruncatedFinalRecord(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full")
	j, _ := mustOpen(t, full)
	for i, r := range []Record{sample(TypeSubmitted, "j000001"), sample(TypeStarted, "j000001")} {
		if err := j.Append(r); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	j.Close()
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := bytes.IndexByte(data, '\n') + 1

	for cut := firstLen; cut < len(data); cut++ {
		path := filepath.Join(dir, "torn")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		jt, recs, err := Open(path)
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		if len(recs) != 1 {
			t.Fatalf("cut=%d: replayed %d records, want 1 (torn tail dropped)", cut, len(recs))
		}
		// The torn tail must be gone: an append must produce a journal
		// that replays cleanly.
		if err := jt.Append(sample(TypeDone, "j000001")); err != nil {
			t.Fatalf("cut=%d: append after truncation: %v", cut, err)
		}
		jt.Close()
		_, recs, err = Open(path)
		if err != nil {
			t.Fatalf("cut=%d: reopen after repair: %v", cut, err)
		}
		if len(recs) != 2 || recs[1].Type != TypeDone {
			t.Fatalf("cut=%d: repaired journal replayed %d records", cut, len(recs))
		}
	}
}

// TestCorruptMidFile flips a byte inside an early record: damage before
// intact records is external corruption and must be refused, not skipped.
func TestCorruptMidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := mustOpen(t, path)
	for _, r := range []Record{
		sample(TypeSubmitted, "j000001"),
		sample(TypeStarted, "j000001"),
		sample(TypeDone, "j000001"),
	} {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	second := bytes.IndexByte(data, '\n') + 1
	corrupted := append([]byte(nil), data...)
	corrupted[second+12] ^= 0xff // inside record 2's JSON body
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(path)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open(corrupt mid-file) = %v, want ErrCorrupt", err)
	}
	// The file must be left untouched for forensics.
	after, _ := os.ReadFile(path)
	if !bytes.Equal(after, corrupted) {
		t.Error("Open modified a journal it refused to use")
	}
}

// TestShutdownMarkerRoundtrip pins the marker semantics recovery keys
// on: present only when the last writer drained cleanly.
func TestShutdownMarkerRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := mustOpen(t, path)
	j.Append(sample(TypeSubmitted, "j000001"))
	j.Append(sample(TypeShutdown, ""))
	j.Close()

	j2, recs := mustOpen(t, path)
	if recs[len(recs)-1].Type != TypeShutdown {
		t.Errorf("last record = %s, want shutdown", recs[len(recs)-1].Type)
	}
	// The next incarnation appends past the marker; the marker is then
	// no longer last, i.e. the newest run did NOT shut down cleanly.
	j2.Append(sample(TypeSubmitted, "j000002"))
	j2.Close()
	_, recs = mustOpen(t, path)
	if recs[len(recs)-1].Type == TypeShutdown {
		t.Error("stale shutdown marker still terminal after new appends")
	}
}

func TestAppendAtomicBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := mustOpen(t, path)
	defer j.Close()
	err := j.Append(sample(TypeSubmitted, "j000001"), sample(TypeDone, "j000001"))
	if err != nil {
		t.Fatal(err)
	}
	if j.Appended() != 2 {
		t.Errorf("Appended() = %d after batch of 2", j.Appended())
	}
}

func TestAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := mustOpen(t, path)
	j.Close()
	if err := j.Append(sample(TypeSubmitted, "j000001")); err == nil {
		t.Error("Append after Close succeeded")
	}
}

func TestRejectsInvalidRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := mustOpen(t, path)
	defer j.Close()
	if err := j.Append(Record{Type: "resubmitted", JobID: "j1"}); err == nil {
		t.Error("unknown record type accepted")
	}
	if err := j.Append(Record{Type: TypeStarted}); err == nil {
		t.Error("job record without id accepted")
	}
}

func TestFsyncFailurePoisonsJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _ := mustOpen(t, path)
	defer j.Close()
	if err := j.Append(sample(TypeSubmitted, "j000001")); err != nil {
		t.Fatal(err)
	}

	failing := errors.New("platter on fire")
	orig := fsync
	fsync = func(*os.File) error { return failing }
	err := j.Append(sample(TypeStarted, "j000001"))
	fsync = orig
	if !errors.Is(err, failing) {
		t.Fatalf("Append during fsync failure err = %v, want cause wrapped", err)
	}

	// The journal is poisoned: the sticky error survives fsync healing,
	// because the tail state of the file is unknown and a journal that
	// cannot prove a record durable must never acknowledge another one.
	if err := j.Err(); !errors.Is(err, ErrPoisoned) || !errors.Is(err, failing) {
		t.Fatalf("Err() = %v, want ErrPoisoned wrapping cause", err)
	}
	if err := j.Append(sample(TypeDone, "j000001")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Append after poison err = %v, want sticky ErrPoisoned", err)
	}
	if got := j.Appended(); got != 1 {
		t.Errorf("Appended() = %d after poisoned appends, want 1", got)
	}
	if err := j.Close(); !errors.Is(err, ErrPoisoned) {
		t.Errorf("Close of poisoned journal err = %v, want ErrPoisoned", err)
	}
}
