package journal

import (
	"bytes"
	"testing"
)

// FuzzJournalDecode throws arbitrary bytes at the replay path. Decode
// must never panic, and whatever records it does accept must re-encode
// into a prefix that decodes back to the same records — the invariant
// Open relies on when it truncates a torn tail and keeps appending.
func FuzzJournalDecode(f *testing.F) {
	seed := func(recs ...Record) []byte {
		var buf []byte
		for _, r := range recs {
			line, err := encode(r)
			if err != nil {
				f.Fatal(err)
			}
			buf = append(buf, line...)
		}
		return buf
	}
	f.Add([]byte(nil))
	f.Add([]byte("\n"))
	f.Add([]byte("not a journal at all"))
	f.Add(seed(Record{Type: TypeSubmitted, JobID: "j000001"}))
	full := seed(
		Record{Type: TypeSubmitted, JobID: "j000001"},
		Record{Type: TypeStarted, JobID: "j000001"},
		Record{Type: TypeDone, JobID: "j000001"},
		Record{Type: TypeShutdown},
	)
	f.Add(full)
	f.Add(full[:len(full)-3])            // torn tail
	f.Add(append(full[:8], full[9:]...)) // mid-file damage

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, goodLen, torn, err := Decode(data)
		if goodLen < 0 || goodLen > len(data) {
			t.Fatalf("goodLen %d out of range [0, %d]", goodLen, len(data))
		}
		if err != nil {
			return
		}
		if torn && goodLen == len(data) {
			t.Fatal("torn reported but goodLen covers the whole input")
		}
		// The accepted prefix must be self-consistent: decoding it alone
		// yields the same records, cleanly.
		again, againLen, againTorn, err := Decode(data[:goodLen])
		if err != nil || againTorn || againLen != goodLen {
			t.Fatalf("accepted prefix does not re-decode cleanly: err=%v torn=%v len=%d/%d",
				err, againTorn, againLen, goodLen)
		}
		if len(again) != len(recs) {
			t.Fatalf("prefix re-decode yields %d records, first pass %d", len(again), len(recs))
		}
		// Re-encoding the records must reproduce the accepted bytes.
		var rebuilt []byte
		for _, r := range recs {
			line, err := encode(r)
			if err != nil {
				t.Fatalf("accepted record does not re-encode: %v", err)
			}
			rebuilt = append(rebuilt, line...)
		}
		if !bytes.Equal(rebuilt, data[:goodLen]) {
			// Records may legitimately re-encode differently if the input
			// used different JSON formatting; what must hold is that the
			// rebuilt bytes decode to the same records.
			r2, _, torn2, err2 := Decode(rebuilt)
			if err2 != nil || torn2 || len(r2) != len(recs) {
				t.Fatalf("re-encoded records do not round-trip: err=%v torn=%v n=%d/%d",
					err2, torn2, len(r2), len(recs))
			}
		}
	})
}

// FuzzReplicaDecode throws arbitrary bytes at the replication-stream
// decoder. Same contract as FuzzJournalDecode — no panics, accepted
// prefixes are self-consistent and round-trip — plus the frame-level
// invariant that whatever DecodeFrames accepts re-frames through
// EncodeFrame.
func FuzzReplicaDecode(f *testing.F) {
	seed := func(frames ...Frame) []byte {
		buf, err := EncodeFrames(frames)
		if err != nil {
			f.Fatal(err)
		}
		return buf
	}
	fr := func(seq uint64, typ Type, id string) Frame {
		return Frame{Src: "s1", Seq: seq, Rec: Record{Type: typ, JobID: id}}
	}
	f.Add([]byte(nil))
	f.Add([]byte("\n"))
	f.Add([]byte("not a replica stream"))
	full := seed(
		fr(1, TypeSubmitted, "j000001"),
		fr(2, TypeStarted, "j000001"),
		fr(3, TypeDone, "j000001"),
	)
	f.Add(full)
	f.Add(full[:len(full)-5]) // truncated final frame
	one := seed(fr(1, TypeSubmitted, "j000001"))
	f.Add(append(append([]byte{}, one...), one...))                             // duplicated frame
	f.Add(seed(fr(2, TypeStarted, "j000001"), fr(1, TypeSubmitted, "j000001"))) // reordered
	f.Add(append(append([]byte{}, full[:8]...), full[9:]...))                   // mid-stream damage

	f.Fuzz(func(t *testing.T, data []byte) {
		frames, goodLen, torn, err := DecodeFrames(data)
		if goodLen < 0 || goodLen > len(data) {
			t.Fatalf("goodLen %d out of range [0, %d]", goodLen, len(data))
		}
		if err != nil {
			return
		}
		if torn && goodLen == len(data) {
			t.Fatal("torn reported but goodLen covers the whole input")
		}
		again, againLen, againTorn, err := DecodeFrames(data[:goodLen])
		if err != nil || againTorn || againLen != goodLen {
			t.Fatalf("accepted prefix does not re-decode cleanly: err=%v torn=%v len=%d/%d",
				err, againTorn, againLen, goodLen)
		}
		if len(again) != len(frames) {
			t.Fatalf("prefix re-decode yields %d frames, first pass %d", len(again), len(frames))
		}
		// Every accepted frame must survive re-framing: a decoded frame
		// the encoder refuses would wedge catch-up resends.
		rebuilt, err := EncodeFrames(frames)
		if err != nil {
			t.Fatalf("accepted frames do not re-encode: %v", err)
		}
		if !bytes.Equal(rebuilt, data[:goodLen]) {
			r2, _, torn2, err2 := DecodeFrames(rebuilt)
			if err2 != nil || torn2 || len(r2) != len(frames) {
				t.Fatalf("re-encoded frames do not round-trip: err=%v torn=%v n=%d/%d",
					err2, torn2, len(r2), len(frames))
			}
		}
	})
}
