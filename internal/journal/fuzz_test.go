package journal

import (
	"bytes"
	"testing"
)

// FuzzJournalDecode throws arbitrary bytes at the replay path. Decode
// must never panic, and whatever records it does accept must re-encode
// into a prefix that decodes back to the same records — the invariant
// Open relies on when it truncates a torn tail and keeps appending.
func FuzzJournalDecode(f *testing.F) {
	seed := func(recs ...Record) []byte {
		var buf []byte
		for _, r := range recs {
			line, err := encode(r)
			if err != nil {
				f.Fatal(err)
			}
			buf = append(buf, line...)
		}
		return buf
	}
	f.Add([]byte(nil))
	f.Add([]byte("\n"))
	f.Add([]byte("not a journal at all"))
	f.Add(seed(Record{Type: TypeSubmitted, JobID: "j000001"}))
	full := seed(
		Record{Type: TypeSubmitted, JobID: "j000001"},
		Record{Type: TypeStarted, JobID: "j000001"},
		Record{Type: TypeDone, JobID: "j000001"},
		Record{Type: TypeShutdown},
	)
	f.Add(full)
	f.Add(full[:len(full)-3])            // torn tail
	f.Add(append(full[:8], full[9:]...)) // mid-file damage

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, goodLen, torn, err := Decode(data)
		if goodLen < 0 || goodLen > len(data) {
			t.Fatalf("goodLen %d out of range [0, %d]", goodLen, len(data))
		}
		if err != nil {
			return
		}
		if torn && goodLen == len(data) {
			t.Fatal("torn reported but goodLen covers the whole input")
		}
		// The accepted prefix must be self-consistent: decoding it alone
		// yields the same records, cleanly.
		again, againLen, againTorn, err := Decode(data[:goodLen])
		if err != nil || againTorn || againLen != goodLen {
			t.Fatalf("accepted prefix does not re-decode cleanly: err=%v torn=%v len=%d/%d",
				err, againTorn, againLen, goodLen)
		}
		if len(again) != len(recs) {
			t.Fatalf("prefix re-decode yields %d records, first pass %d", len(again), len(recs))
		}
		// Re-encoding the records must reproduce the accepted bytes.
		var rebuilt []byte
		for _, r := range recs {
			line, err := encode(r)
			if err != nil {
				t.Fatalf("accepted record does not re-encode: %v", err)
			}
			rebuilt = append(rebuilt, line...)
		}
		if !bytes.Equal(rebuilt, data[:goodLen]) {
			// Records may legitimately re-encode differently if the input
			// used different JSON formatting; what must hold is that the
			// rebuilt bytes decode to the same records.
			r2, _, torn2, err2 := Decode(rebuilt)
			if err2 != nil || torn2 || len(r2) != len(recs) {
				t.Fatalf("re-encoded records do not round-trip: err=%v torn=%v n=%d/%d",
					err2, torn2, len(r2), len(recs))
			}
		}
	})
}
