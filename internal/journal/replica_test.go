package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// frame builds a replication frame around a sample record.
func frame(src string, seq uint64, typ Type, id string) Frame {
	return Frame{Src: src, Seq: seq, Rec: sample(typ, id)}
}

func mustStore(t *testing.T, dir string) *ReplicaStore {
	t.Helper()
	s, err := OpenReplicaStore(dir)
	if err != nil {
		t.Fatalf("OpenReplicaStore(%s): %v", dir, err)
	}
	return s
}

func TestReplicaIngestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := mustStore(t, dir)
	batch := []Frame{
		frame("s1", 1, TypeSubmitted, "j000001"),
		frame("s1", 2, TypeStarted, "j000001"),
		frame("s1", 3, TypeDone, "j000001"),
	}
	last, err := s.Ingest(batch)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if last != 3 {
		t.Fatalf("Ingest lastSeq = %d, want 3", last)
	}
	if got := s.LastSeq("s1"); got != 3 {
		t.Errorf("LastSeq = %d, want 3", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A reopened store resumes at the same position, and the replica
	// reads back record-for-record.
	s2 := mustStore(t, dir)
	defer s2.Close()
	if got := s2.LastSeq("s1"); got != 3 {
		t.Errorf("reopened LastSeq = %d, want 3", got)
	}
	recs, seq, err := ReadReplica(ReplicaPath(dir, "s1"))
	if err != nil {
		t.Fatalf("ReadReplica: %v", err)
	}
	if seq != 3 || len(recs) != 3 {
		t.Fatalf("ReadReplica = %d recs, seq %d; want 3, 3", len(recs), seq)
	}
	for i, f := range batch {
		a, _ := json.Marshal(f.Rec)
		b, _ := json.Marshal(recs[i])
		if !bytes.Equal(a, b) {
			t.Errorf("record %d: got %s, want %s", i, b, a)
		}
	}
}

func TestReplicaIngestDuplicatesAndGaps(t *testing.T) {
	s := mustStore(t, t.TempDir())
	defer s.Close()
	if _, err := s.Ingest([]Frame{frame("s1", 1, TypeSubmitted, "j000001")}); err != nil {
		t.Fatal(err)
	}

	// A retried batch overlapping what we hold is acked, not re-appended.
	last, err := s.Ingest([]Frame{
		frame("s1", 1, TypeSubmitted, "j000001"),
		frame("s1", 2, TypeStarted, "j000001"),
	})
	if err != nil || last != 2 {
		t.Fatalf("overlapping Ingest = %d, %v; want 2, nil", last, err)
	}

	// A pure duplicate batch is a no-op ack.
	last, err = s.Ingest([]Frame{frame("s1", 2, TypeStarted, "j000001")})
	if err != nil || last != 2 {
		t.Fatalf("duplicate Ingest = %d, %v; want 2, nil", last, err)
	}

	// A gap is refused wholesale with our position.
	last, err = s.Ingest([]Frame{frame("s1", 4, TypeDone, "j000001")})
	if !errors.Is(err, ErrGap) {
		t.Fatalf("gap Ingest err = %v, want ErrGap", err)
	}
	if last != 2 {
		t.Errorf("gap Ingest lastSeq = %d, want 2", last)
	}
	if got := s.LastSeq("s1"); got != 2 {
		t.Errorf("LastSeq after refused gap = %d, want 2", got)
	}

	// The first frame for an unknown source must be seq 1: a replica
	// missing its prefix would be useless for promotion.
	if _, err := s.Ingest([]Frame{frame("s9", 5, TypeSubmitted, "j000009")}); !errors.Is(err, ErrGap) {
		t.Fatalf("unknown-source mid-stream Ingest err = %v, want ErrGap", err)
	}

	// Mixed-source batches are refused before touching disk.
	if _, err := s.Ingest([]Frame{
		frame("s1", 3, TypeDone, "j000001"),
		frame("s2", 1, TypeSubmitted, "j000002"),
	}); err == nil {
		t.Fatal("mixed-source Ingest succeeded")
	}
}

func TestReplicaTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := mustStore(t, dir)
	if _, err := s.Ingest([]Frame{
		frame("s1", 1, TypeSubmitted, "j000001"),
		frame("s1", 2, TypeStarted, "j000001"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a torn half-frame on the tail.
	path := ReplicaPath(dir, "s1")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("deadbeef {\"src\":\"s1\",\"seq"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := mustStore(t, dir)
	defer s2.Close()
	if got := s2.LastSeq("s1"); got != 2 {
		t.Fatalf("LastSeq after torn tail = %d, want 2", got)
	}
	// The tail was truncated: the next ingest extends cleanly.
	if _, err := s2.Ingest([]Frame{frame("s1", 3, TypeDone, "j000001")}); err != nil {
		t.Fatalf("Ingest after torn-tail truncation: %v", err)
	}
}

func TestReplicaMidFileCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	s := mustStore(t, dir)
	if _, err := s.Ingest([]Frame{
		frame("s1", 1, TypeSubmitted, "j000001"),
		frame("s1", 2, TypeStarted, "j000001"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	path := ReplicaPath(dir, "s1")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[2] ^= 0xff // flip a checksum digit of the first frame
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenReplicaStore(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenReplicaStore over corrupt replica err = %v, want ErrCorrupt", err)
	}
	if _, _, err := ReadReplica(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadReplica over corrupt replica err = %v, want ErrCorrupt", err)
	}
}

func TestPromoteReplica(t *testing.T) {
	dir := t.TempDir()
	s := mustStore(t, dir)
	want := []Record{
		sample(TypeSubmitted, "j000001"),
		sample(TypeStarted, "j000001"),
		sample(TypeDone, "j000001"),
		sample(TypeSubmitted, "j000002"),
	}
	frames := make([]Frame, len(want))
	for i, r := range want {
		frames[i] = Frame{Src: "s1", Seq: uint64(i + 1), Rec: r}
	}
	if _, err := s.Ingest(frames); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Promotion rewrites the replica as a plain journal that Open
	// replays like any other.
	journalPath := filepath.Join(t.TempDir(), "journal.wal")
	n, err := PromoteReplica(ReplicaPath(dir, "s1"), journalPath)
	if err != nil {
		t.Fatalf("PromoteReplica: %v", err)
	}
	if n != len(want) {
		t.Fatalf("PromoteReplica = %d records, want %d", n, len(want))
	}
	j, got := mustOpen(t, journalPath)
	defer j.Close()
	if len(got) != len(want) {
		t.Fatalf("promoted journal replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		a, _ := json.Marshal(want[i])
		b, _ := json.Marshal(got[i])
		if !bytes.Equal(a, b) {
			t.Errorf("record %d: got %s, want %s", i, b, a)
		}
	}
	if _, err := os.Stat(journalPath + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("promotion left temp file behind: %v", err)
	}
}

func TestPromoteMissingReplicaIsEmpty(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.wal")
	n, err := PromoteReplica(ReplicaPath(dir, "never"), journalPath)
	if err != nil {
		t.Fatalf("PromoteReplica of missing replica: %v", err)
	}
	if n != 0 {
		t.Fatalf("PromoteReplica of missing replica = %d records, want 0", n)
	}
	j, recs := mustOpen(t, journalPath)
	defer j.Close()
	if len(recs) != 0 {
		t.Fatalf("empty promotion replayed %d records", len(recs))
	}
}

func TestReplicaIngestPoisonSticks(t *testing.T) {
	s := mustStore(t, t.TempDir())
	defer s.Close()
	if _, err := s.Ingest([]Frame{frame("s1", 1, TypeSubmitted, "j000001")}); err != nil {
		t.Fatal(err)
	}

	failing := errors.New("platter on fire")
	orig := fsync
	fsync = func(*os.File) error { return failing }
	_, err := s.Ingest([]Frame{frame("s1", 2, TypeStarted, "j000001")})
	fsync = orig
	if !errors.Is(err, ErrPoisoned) || !errors.Is(err, failing) {
		t.Fatalf("Ingest during fsync failure err = %v, want ErrPoisoned wrapping cause", err)
	}
	if got := s.LastSeq("s1"); got != 1 {
		t.Errorf("LastSeq after failed fsync = %d, want 1", got)
	}

	// The poison is sticky even after fsync heals: the file's tail state
	// is unknown, so the store must never ack another frame onto it.
	if _, err := s.Ingest([]Frame{frame("s1", 2, TypeStarted, "j000001")}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Ingest after poison err = %v, want sticky ErrPoisoned", err)
	}

	// Other sources are unaffected.
	if _, err := s.Ingest([]Frame{frame("s2", 1, TypeSubmitted, "j000002")}); err != nil {
		t.Fatalf("Ingest to healthy source after poison: %v", err)
	}
}

func TestDecodeFramesRejectsInvalid(t *testing.T) {
	line, err := EncodeFrame(frame("s1", 1, TypeSubmitted, "j000001"))
	if err != nil {
		t.Fatal(err)
	}

	// Zero seq and empty src never leave a healthy encoder.
	if _, err := EncodeFrame(Frame{Src: "s1", Rec: sample(TypeSubmitted, "j1")}); err == nil {
		t.Error("EncodeFrame accepted zero seq")
	}
	if _, err := EncodeFrame(Frame{Seq: 1, Rec: sample(TypeSubmitted, "j1")}); err == nil {
		t.Error("EncodeFrame accepted empty src")
	}

	// A corrupt first frame with an intact frame after it is ErrCorrupt,
	// not a torn tail.
	bad := append([]byte("00000000 {}\n"), line...)
	if _, _, _, err := DecodeFrames(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("DecodeFrames err = %v, want ErrCorrupt", err)
	}

	// A damaged tail alone is torn, and the prefix survives.
	torn := append(append([]byte{}, line...), []byte("00000000 {}\n")...)
	frames, good, isTorn, err := DecodeFrames(torn)
	if err != nil || !isTorn {
		t.Fatalf("DecodeFrames(torn) = torn=%v err=%v, want torn=true err=nil", isTorn, err)
	}
	if len(frames) != 1 || good != len(line) {
		t.Fatalf("DecodeFrames(torn) kept %d frames / %d bytes, want 1 / %d", len(frames), good, len(line))
	}
}
