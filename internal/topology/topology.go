// Package topology models cluster interconnect topologies at the level the
// paper's network experiments require: the hop distance between any pair of
// nodes. CTE-Arm's TofuD is a six-dimensional torus — hop distance varies
// with node placement, which produces the diagonal banding of Fig. 4 — while
// MareNostrum 4's OmniPath is a two-level fat tree where distance is the
// nearly uniform 2-or-4 links.
package topology

import (
	"fmt"
)

// Topology exposes what the message cost model needs from a network graph.
type Topology interface {
	// Name identifies the topology kind.
	Name() string
	// Nodes returns the number of endpoints.
	Nodes() int
	// Hops returns the number of links a minimal route between a and b
	// traverses; 0 iff a == b.
	Hops(a, b int) int
	// Diameter returns the maximum Hops over all pairs.
	Diameter() int
}

// Torus is an N-dimensional torus/mesh. Dimensions with wrap=true are rings
// (distance min(d, size-d)); the others are lines.
type Torus struct {
	dims []int
	wrap []bool
	name string
}

// NewTorus builds a torus with the given per-dimension sizes and wrap flags.
func NewTorus(name string, dims []int, wrap []bool) (*Torus, error) {
	if len(dims) == 0 || len(dims) != len(wrap) {
		return nil, fmt.Errorf("topology: need matching non-empty dims/wrap, got %d/%d", len(dims), len(wrap))
	}
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("topology: dimension %d has size %d", i, d)
		}
	}
	return &Torus{name: name, dims: append([]int(nil), dims...), wrap: append([]bool(nil), wrap...)}, nil
}

// NewTofuD builds the TofuD topology for the given node count. TofuD is a
// (X, Y, Z, a, b, c) network whose inner unit is a 2x3x2 group of 12 nodes
// (a and c are meshes of 2, b is a ring of 3); the outer X, Y, Z dimensions
// are rings. nodes must therefore be a multiple of 12.
func NewTofuD(nodes int) (*Torus, error) {
	if nodes <= 0 || nodes%12 != 0 {
		return nil, fmt.Errorf("topology: TofuD needs a positive multiple of 12 nodes, got %d", nodes)
	}
	x, y, z := balancedTriple(nodes / 12)
	dims := []int{x, y, z, 2, 3, 2}
	wrap := []bool{true, true, true, false, true, false}
	return NewTorus("TofuD", dims, wrap)
}

// balancedTriple factors m into x >= y >= z minimizing the largest factor
// (ties broken by minimizing x+y+z). m is small (<= a few hundred), so a
// brute-force scan is fine.
func balancedTriple(m int) (int, int, int) {
	bx, by, bz := m, 1, 1
	for z := 1; z*z*z <= m; z++ {
		if m%z != 0 {
			continue
		}
		mz := m / z
		for y := z; y*y <= mz; y++ {
			if mz%y != 0 {
				continue
			}
			x := mz / y
			if x < bx || (x == bx && x+y+z < bx+by+bz) {
				bx, by, bz = x, y, z
			}
		}
	}
	return bx, by, bz
}

// Name implements Topology.
func (t *Torus) Name() string { return t.name }

// Nodes implements Topology.
func (t *Torus) Nodes() int {
	n := 1
	for _, d := range t.dims {
		n *= d
	}
	return n
}

// Dims returns a copy of the per-dimension sizes.
func (t *Torus) Dims() []int { return append([]int(nil), t.dims...) }

// Coords returns the coordinates of node i (row-major, first dimension
// slowest). It panics on an out-of-range index.
func (t *Torus) Coords(i int) []int {
	if i < 0 || i >= t.Nodes() {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", i, t.Nodes()))
	}
	c := make([]int, len(t.dims))
	for d := len(t.dims) - 1; d >= 0; d-- {
		c[d] = i % t.dims[d]
		i /= t.dims[d]
	}
	return c
}

// Index is the inverse of Coords.
func (t *Torus) Index(coords []int) int {
	if len(coords) != len(t.dims) {
		panic("topology: coordinate arity mismatch")
	}
	i := 0
	for d, c := range coords {
		if c < 0 || c >= t.dims[d] {
			panic(fmt.Sprintf("topology: coordinate %d out of range for dimension %d", c, d))
		}
		i = i*t.dims[d] + c
	}
	return i
}

// Hops implements Topology with dimension-order minimal routing.
func (t *Torus) Hops(a, b int) int {
	ca, cb := t.Coords(a), t.Coords(b)
	h := 0
	for d := range t.dims {
		diff := ca[d] - cb[d]
		if diff < 0 {
			diff = -diff
		}
		if t.wrap[d] {
			if alt := t.dims[d] - diff; alt < diff {
				diff = alt
			}
		}
		h += diff
	}
	return h
}

// Diameter implements Topology.
func (t *Torus) Diameter() int {
	d := 0
	for i, size := range t.dims {
		if t.wrap[i] {
			d += size / 2
		} else {
			d += size - 1
		}
	}
	return d
}

// TofuNodeName renders the CTE-Arm node naming scheme: node i of the cluster
// sits in rack i/48, board (i/12)%4, slot i%12, named "arms<rack>b<board>-<slot>c".
// The degraded node the paper identifies, arms0b1-11c, is index 23.
func TofuNodeName(i int) string {
	return fmt.Sprintf("arms%db%d-%dc", i/48, (i/12)%4, i%12)
}

// FatTree is a two-level fat tree: leafSize nodes per edge switch, a core
// layer assumed non-blocking. Hop counts are 2 within a leaf and 4 across.
type FatTree struct {
	nodes    int
	leafSize int
}

// NewFatTree builds a two-level fat tree.
func NewFatTree(nodes, leafSize int) (*FatTree, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("topology: fat tree needs nodes > 0, got %d", nodes)
	}
	if leafSize <= 0 {
		return nil, fmt.Errorf("topology: fat tree needs leafSize > 0, got %d", leafSize)
	}
	return &FatTree{nodes: nodes, leafSize: leafSize}, nil
}

// Name implements Topology.
func (f *FatTree) Name() string { return "fat-tree" }

// Nodes implements Topology.
func (f *FatTree) Nodes() int { return f.nodes }

// Leaf returns the edge-switch index of node i.
func (f *FatTree) Leaf(i int) int {
	if i < 0 || i >= f.nodes {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", i, f.nodes))
	}
	return i / f.leafSize
}

// Hops implements Topology.
func (f *FatTree) Hops(a, b int) int {
	if a == b {
		return 0
	}
	if f.Leaf(a) == f.Leaf(b) {
		return 2
	}
	return 4
}

// Diameter implements Topology.
func (f *FatTree) Diameter() int {
	if f.nodes == 1 {
		return 0
	}
	if f.nodes <= f.leafSize {
		return 2
	}
	return 4
}
