package topology

import (
	"testing"
	"testing/quick"

	"clustereval/internal/xrand"
)

func TestTofuD192(t *testing.T) {
	tf, err := NewTofuD(192)
	if err != nil {
		t.Fatal(err)
	}
	if tf.Nodes() != 192 {
		t.Fatalf("nodes = %d", tf.Nodes())
	}
	dims := tf.Dims()
	if len(dims) != 6 {
		t.Fatalf("TofuD must be six-dimensional, got %v", dims)
	}
	// Inner unit 2x3x2.
	if dims[3] != 2 || dims[4] != 3 || dims[5] != 2 {
		t.Errorf("inner dims = %v, want [... 2 3 2]", dims)
	}
	// Outer 16 nodes factored 4x2x2.
	if dims[0]*dims[1]*dims[2] != 16 {
		t.Errorf("outer product = %d, want 16", dims[0]*dims[1]*dims[2])
	}
	if dims[0] != 4 {
		t.Errorf("balanced factorization of 16 should lead with 4, got %v", dims)
	}
}

func TestTofuDRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -12, 7, 100} {
		if _, err := NewTofuD(n); err == nil {
			t.Errorf("NewTofuD(%d) accepted", n)
		}
	}
}

func TestBalancedTriple(t *testing.T) {
	cases := []struct{ m, x, y, z int }{
		{1, 1, 1, 1},
		{8, 2, 2, 2},
		{16, 4, 2, 2},
		{12, 3, 2, 2},
		{7, 7, 1, 1},
		{288, 8, 6, 6},
	}
	for _, c := range cases {
		x, y, z := balancedTriple(c.m)
		if x*y*z != c.m {
			t.Errorf("balancedTriple(%d) = %d*%d*%d != %d", c.m, x, y, z, c.m)
		}
		if x != c.x || y != c.y || z != c.z {
			t.Errorf("balancedTriple(%d) = (%d,%d,%d), want (%d,%d,%d)", c.m, x, y, z, c.x, c.y, c.z)
		}
	}
}

func TestCoordsIndexRoundTrip(t *testing.T) {
	tf, err := NewTofuD(192)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tf.Nodes(); i++ {
		if got := tf.Index(tf.Coords(i)); got != i {
			t.Fatalf("round trip %d -> %v -> %d", i, tf.Coords(i), got)
		}
	}
}

func TestTorusHopsProperties(t *testing.T) {
	tf, err := NewTofuD(192)
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw, bRaw uint16) bool {
		a := int(aRaw) % tf.Nodes()
		b := int(bRaw) % tf.Nodes()
		h := tf.Hops(a, b)
		// Symmetric; zero iff same node; bounded by diameter.
		if h != tf.Hops(b, a) {
			return false
		}
		if (h == 0) != (a == b) {
			return false
		}
		return h <= tf.Diameter()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTorusTriangleInequality(t *testing.T) {
	tf, err := NewTofuD(24)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(9)
	for trial := 0; trial < 2000; trial++ {
		a, b, c := r.Intn(24), r.Intn(24), r.Intn(24)
		if tf.Hops(a, c) > tf.Hops(a, b)+tf.Hops(b, c) {
			t.Fatalf("triangle inequality violated for %d,%d,%d", a, b, c)
		}
	}
}

func TestTorusWrapDistance(t *testing.T) {
	// A ring of 4: distance from 0 to 3 must be 1, not 3.
	tr, err := NewTorus("ring", []int{4}, []bool{true})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Hops(0, 3); got != 1 {
		t.Errorf("ring wrap distance = %d, want 1", got)
	}
	// A line of 4: distance is 3.
	ln, err := NewTorus("line", []int{4}, []bool{false})
	if err != nil {
		t.Fatal(err)
	}
	if got := ln.Hops(0, 3); got != 3 {
		t.Errorf("line distance = %d, want 3", got)
	}
}

func TestTorusDiameter(t *testing.T) {
	tf, _ := NewTofuD(192)
	// dims [4 2 2 2 3 2], wrap [T T T F T F]: 2+1+1+1+1+1 = 7.
	if got := tf.Diameter(); got != 7 {
		t.Errorf("TofuD(192) diameter = %d, want 7", got)
	}
	// The diameter must actually be attained.
	max := 0
	for i := 0; i < tf.Nodes(); i++ {
		for j := i; j < tf.Nodes(); j++ {
			if h := tf.Hops(i, j); h > max {
				max = h
			}
		}
	}
	if max != tf.Diameter() {
		t.Errorf("observed max hops %d != Diameter() %d", max, tf.Diameter())
	}
}

func TestDiagonalBanding(t *testing.T) {
	// The paper's Fig. 4 shows recurring diagonal patterns: pairs (i, i+k)
	// at fixed stride k share hop distances periodically. Coordinates below
	// the outermost dimension repeat every 48 indices, so the hop count
	// along any fixed-stride diagonal has period 48.
	tf, _ := NewTofuD(192)
	for _, k := range []int{1, 2, 5, 12} {
		for i := 0; i+k+48 < tf.Nodes(); i++ {
			if tf.Hops(i, i+k) != tf.Hops(i+48, i+48+k) {
				t.Fatalf("no periodic banding at i=%d stride=%d", i, k)
			}
		}
	}
}

func TestNodeNames(t *testing.T) {
	if got := TofuNodeName(0); got != "arms0b0-0c" {
		t.Errorf("node 0 = %s", got)
	}
	// The degraded node of Fig. 4.
	if got := TofuNodeName(23); got != "arms0b1-11c" {
		t.Errorf("node 23 = %s, want arms0b1-11c", got)
	}
	if got := TofuNodeName(48); got != "arms1b0-0c" {
		t.Errorf("node 48 = %s", got)
	}
}

func TestFatTree(t *testing.T) {
	ft, err := NewFatTree(96, 24)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Nodes() != 96 {
		t.Fatalf("nodes = %d", ft.Nodes())
	}
	if got := ft.Hops(0, 0); got != 0 {
		t.Errorf("self hops = %d", got)
	}
	if got := ft.Hops(0, 5); got != 2 {
		t.Errorf("same-leaf hops = %d, want 2", got)
	}
	if got := ft.Hops(0, 30); got != 4 {
		t.Errorf("cross-leaf hops = %d, want 4", got)
	}
	if got := ft.Diameter(); got != 4 {
		t.Errorf("diameter = %d", got)
	}
}

func TestFatTreeSmall(t *testing.T) {
	ft, _ := NewFatTree(1, 24)
	if ft.Diameter() != 0 {
		t.Error("single-node fat tree diameter should be 0")
	}
	ft, _ = NewFatTree(10, 24)
	if ft.Diameter() != 2 {
		t.Error("single-leaf fat tree diameter should be 2")
	}
}

func TestFatTreeErrors(t *testing.T) {
	if _, err := NewFatTree(0, 24); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewFatTree(10, 0); err == nil {
		t.Error("zero leaf accepted")
	}
}

func TestTorusErrors(t *testing.T) {
	if _, err := NewTorus("x", []int{2, 3}, []bool{true}); err == nil {
		t.Error("mismatched wrap accepted")
	}
	if _, err := NewTorus("x", nil, nil); err == nil {
		t.Error("empty dims accepted")
	}
	if _, err := NewTorus("x", []int{0}, []bool{true}); err == nil {
		t.Error("zero dim accepted")
	}
}

func TestCoordsPanics(t *testing.T) {
	tf, _ := NewTofuD(24)
	for _, f := range []func(){
		func() { tf.Coords(-1) },
		func() { tf.Coords(24) },
		func() { tf.Index([]int{0}) },
		func() { tf.Index([]int{9, 0, 0, 0, 0, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
