// Journal replication: the service-side half of the fleet's durability
// upgrade. A shard with replication configured ships every journal
// record it commits to a set of follower peers (chosen by the fleet
// layer from the consistent-hash ring) and refuses to acknowledge a
// submission until a write quorum — the local fsync plus enough peer
// fsyncs — holds the record. The follower side is a thin door onto
// journal.ReplicaStore: ingest a framed batch, fsync, answer with the
// position held so the primary always knows where to resume.
//
// The protocol is deliberately minimal. Frames carry (src, seq, record)
// where seq is the record's 1-based position in the source journal, so
// a follower can verify contiguity locally; a gap answer (HTTP 409 +
// the follower's position) makes the primary re-ship the missing suffix
// from its own journal file, which is the single source of truth. There
// is no election and no log compaction: the fleet supervisor decides
// promotions, and journals are bounded by the workload like they always
// were.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"clustereval/internal/journal"
)

// Peer is one replication follower: a shard name and the base URL of
// its daemon.
type Peer struct {
	Shard string `json:"shard"`
	URL   string `json:"url"`
}

// DurabilityError reports a submission the service accepted in memory
// but could not make durable — a poisoned journal or a missed write
// quorum. The HTTP layer maps it to 503: the client should retry, and
// by then the fleet has usually re-routed or healed the replica set.
type DurabilityError struct {
	Op  string
	Err error
}

func (e *DurabilityError) Error() string { return "service: " + e.Op + ": " + e.Err.Error() }

// Unwrap exposes the cause for errors.Is/As.
func (e *DurabilityError) Unwrap() error { return e.Err }

// replicator ships journal records to follower peers and tracks how far
// each has acknowledged. Ship calls are serialized by the service's
// commit lock, so the replicator itself only guards its peer set.
type replicator struct {
	src     string
	quorum  int // total acks required, local fsync included
	timeout time.Duration
	client  *http.Client
	// history reads frames [from, to] back out of the primary journal
	// for catch-up resends; called under the commit lock, where the
	// journal file is stable.
	history func(from, to uint64) ([]journal.Frame, error)

	mu    sync.Mutex
	peers []Peer
	acked map[string]uint64 // peer shard -> last acknowledged seq
}

// peerAck is one peer's outcome for a shipped batch.
type peerAck struct {
	peer Peer
	seq  uint64 // position the peer holds (valid when err == nil)
	err  error
}

// ship sends frames (ending at seq last) to every peer concurrently and
// returns each peer's outcome. It never fails as a whole: quorum
// arithmetic belongs to the caller.
func (r *replicator) ship(frames []journal.Frame, last uint64) []peerAck {
	r.mu.Lock()
	peers := append([]Peer(nil), r.peers...)
	r.mu.Unlock()
	acks := make([]peerAck, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p Peer) {
			defer wg.Done()
			seq, err := r.shipPeer(p, frames, last)
			acks[i] = peerAck{peer: p, seq: seq, err: err}
		}(i, p)
	}
	wg.Wait()
	r.mu.Lock()
	for _, a := range acks {
		if a.err == nil {
			r.acked[a.peer.Shard] = a.seq
		}
	}
	r.mu.Unlock()
	return acks
}

// shipPeer delivers one batch to one peer, resolving at most one gap by
// re-shipping the missing suffix from the primary journal.
func (r *replicator) shipPeer(p Peer, frames []journal.Frame, last uint64) (uint64, error) {
	seq, retryFrom, err := r.post(p, frames)
	if err != nil {
		return 0, err
	}
	if retryFrom > 0 {
		// The peer is behind (a fresh follower, or one that missed
		// batches while down): resend everything it lacks. The journal
		// file already holds the records we just appended, so one read
		// covers both the backlog and this batch.
		if retryFrom > last {
			return 0, fmt.Errorf("service: replica of %s on %s claims seq %d beyond journal end %d", r.src, p.Shard, retryFrom-1, last)
		}
		catchup, herr := r.history(retryFrom, last)
		if herr != nil {
			return 0, herr
		}
		seq, retryFrom, err = r.post(p, catchup)
		if err != nil {
			return 0, err
		}
		if retryFrom > 0 {
			return 0, fmt.Errorf("service: replica of %s on %s still gapped at seq %d after catch-up", r.src, p.Shard, seq)
		}
	}
	if seq != last {
		// A peer holding more than the primary journal means the peer
		// kept a replica from a previous life of this shard that the
		// primary no longer remembers — acking against it would hide
		// lost records, so it is an error, not a success.
		return 0, fmt.Errorf("service: replica of %s on %s holds seq %d, journal ends at %d", r.src, p.Shard, seq, last)
	}
	return seq, nil
}

// ingestReply is the follower's answer: the position it durably holds.
type ingestReply struct {
	LastSeq uint64 `json:"last_seq"`
}

// post delivers one framed batch. A 200 reply acks through the returned
// seq; a 409 reply reports the peer's position and asks for a resend
// from retryFrom = seq+1.
func (r *replicator) post(p Peer, frames []journal.Frame) (seq, retryFrom uint64, err error) {
	body, err := journal.EncodeFrames(frames)
	if err != nil {
		return 0, 0, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.URL+"/v1/replication/ingest", bytes.NewReader(body))
	if err != nil {
		return 0, 0, fmt.Errorf("service: replication request to %s: %w", p.Shard, err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, 0, fmt.Errorf("service: shipping to %s: %w", p.Shard, err)
	}
	defer resp.Body.Close()
	var reply ingestReply
	switch resp.StatusCode {
	case http.StatusOK:
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			return 0, 0, fmt.Errorf("service: undecodable ack from %s: %w", p.Shard, err)
		}
		return reply.LastSeq, 0, nil
	case http.StatusConflict:
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			return 0, 0, fmt.Errorf("service: undecodable gap reply from %s: %w", p.Shard, err)
		}
		return reply.LastSeq, reply.LastSeq + 1, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return 0, 0, fmt.Errorf("service: %s refused replication batch: %s: %s", p.Shard, resp.Status, bytes.TrimSpace(msg))
	}
}

// replicator returns the current replicator, nil when replication is
// off.
func (s *Service) replicator() *replicator {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return s.repl
}

// SetReplication (re)configures this shard's replication peer set and
// write quorum. quorum counts the local fsync, so quorum=1 with no
// peers is exactly the pre-replication behavior; quorum may be at most
// 1+len(peers). The fleet layer calls this whenever follower addresses
// change (children restart on ephemeral ports), carrying acknowledged
// positions over so a re-push is not a re-send.
func (s *Service) SetReplication(quorum int, peers []Peer) error {
	if len(peers) == 0 && quorum <= 1 {
		s.replMu.Lock()
		s.repl = nil
		s.replMu.Unlock()
		return nil
	}
	if s.jnl == nil {
		return errors.New("service: replication requires a durable journal")
	}
	if s.cfg.ShardName == "" {
		return errors.New("service: replication requires a shard name")
	}
	if quorum < 1 || quorum > 1+len(peers) {
		return fmt.Errorf("service: write quorum %d outside [1, %d]", quorum, 1+len(peers))
	}
	for _, p := range peers {
		if p.Shard == "" || p.URL == "" {
			return fmt.Errorf("service: replication peer %+v missing shard or url", p)
		}
		if p.Shard == s.cfg.ShardName {
			return fmt.Errorf("service: shard %s cannot replicate to itself", p.Shard)
		}
	}
	s.replMu.Lock()
	defer s.replMu.Unlock()
	acked := map[string]uint64{}
	if s.repl != nil {
		s.repl.mu.Lock()
		for _, p := range peers {
			if seq, ok := s.repl.acked[p.Shard]; ok {
				acked[p.Shard] = seq
			}
		}
		s.repl.mu.Unlock()
	}
	s.repl = &replicator{
		src:     s.cfg.ShardName,
		quorum:  quorum,
		timeout: s.cfg.ReplicationTimeout,
		client:  &http.Client{},
		history: s.journalFrames,
		peers:   append([]Peer(nil), peers...),
		acked:   acked,
	}
	return nil
}

// journalFrames reads records [from, to] back out of the primary
// journal as replication frames. Only called under commitMu, where the
// file cannot grow or shrink underfoot.
func (s *Service) journalFrames(from, to uint64) ([]journal.Frame, error) {
	data, err := os.ReadFile(s.jnl.Path())
	if err != nil {
		return nil, fmt.Errorf("service: reading journal for catch-up: %w", err)
	}
	recs, _, _, err := journal.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("service: decoding journal for catch-up: %w", err)
	}
	if uint64(len(recs)) < to || from < 1 || from > to {
		return nil, fmt.Errorf("service: catch-up range [%d, %d] outside journal of %d records", from, to, len(recs))
	}
	frames := make([]journal.Frame, 0, to-from+1)
	for i := from; i <= to; i++ {
		frames = append(frames, journal.Frame{Src: s.cfg.ShardName, Seq: i, Rec: recs[i-1]})
	}
	return frames, nil
}

// replicate ships freshly-committed records (ending at journal position
// last) and enforces the write quorum. Called under commitMu.
func (s *Service) replicate(r *replicator, recs []journal.Record, first, last uint64) error {
	frames := make([]journal.Frame, len(recs))
	for i, rec := range recs {
		frames[i] = journal.Frame{Src: r.src, Seq: first + uint64(i), Rec: rec}
	}
	acks := 1 // the local fsync Append just performed
	for _, a := range r.ship(frames, last) {
		if a.err != nil {
			s.replErrors.Inc()
			s.replLag.Set(a.peer.Shard, float64(last-r.ackedSeq(a.peer.Shard)))
			continue
		}
		acks++
		s.replLag.Set(a.peer.Shard, float64(last-a.seq))
	}
	if acks < r.quorum {
		return fmt.Errorf("service: write quorum not met: %d/%d acks for journal records %d..%d", acks, r.quorum, first, last)
	}
	s.replShipped.Add(uint64(len(recs)))
	return nil
}

// ackedSeq returns the last acknowledged position for a peer, 0 when it
// has never acked.
func (r *replicator) ackedSeq(shard string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.acked[shard]
}

// IngestReplica appends one framed replication batch to this shard's
// replica store and returns the position now held for the batch's
// source. A journal.ErrGap error means the batch does not extend the
// replica contiguously; the returned position still tells the primary
// where to resume. Damaged batches are refused outright — the network
// layer has no business delivering torn frames.
func (s *Service) IngestReplica(data []byte) (uint64, error) {
	if s.store == nil {
		return 0, errors.New("service: no replica store on this shard")
	}
	frames, good, torn, err := journal.DecodeFrames(data)
	if err != nil {
		return 0, fmt.Errorf("service: replication batch: %w", err)
	}
	if torn || good != len(data) {
		return 0, fmt.Errorf("service: replication batch damaged after %d of %d bytes", good, len(data))
	}
	if len(frames) == 0 {
		return 0, errors.New("service: empty replication batch")
	}
	before := s.store.LastSeq(frames[0].Src)
	last, err := s.store.Ingest(frames)
	if last > before {
		s.replIngested.Add(last - before)
	}
	if err != nil {
		return last, fmt.Errorf("service: replica ingest: %w", err)
	}
	return last, nil
}

// PeerStatus reports one follower's replication progress on /healthz.
type PeerStatus struct {
	Shard    string `json:"shard"`
	URL      string `json:"url"`
	AckedSeq uint64 `json:"acked_seq"`
}

// ReplicationStatus is the /healthz replication block: this shard's
// journal position, the quorum it enforces, each peer's acknowledged
// position, and the replicas it holds for other shards.
type ReplicationStatus struct {
	Enabled bool              `json:"enabled"`
	Quorum  int               `json:"quorum,omitempty"`
	LastSeq uint64            `json:"last_seq"`
	Peers   []PeerStatus      `json:"peers,omitempty"`
	Held    map[string]uint64 `json:"held,omitempty"`
}

// ReplicationStatus snapshots the shard's replication state. Enabled is
// false (and the block omitted from /healthz) unless the shard ships to
// peers or hosts a replica store.
func (s *Service) ReplicationStatus() ReplicationStatus {
	st := ReplicationStatus{}
	s.commitMu.Lock()
	st.LastSeq = s.journalSeq
	s.commitMu.Unlock()
	if r := s.replicator(); r != nil {
		st.Enabled = true
		st.Quorum = r.quorum
		r.mu.Lock()
		for _, p := range r.peers {
			st.Peers = append(st.Peers, PeerStatus{Shard: p.Shard, URL: p.URL, AckedSeq: r.acked[p.Shard]})
		}
		r.mu.Unlock()
	}
	if s.store != nil {
		st.Enabled = true
		st.Held = s.store.Sources()
	}
	return st
}
