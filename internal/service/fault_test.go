package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"clustereval/internal/faultsim"
)

func TestNormalizeFaultSpec(t *testing.T) {
	// Canonicalization folds a no-op fault spec to nil, so it shares the
	// cache key of the unfaulted job.
	noop := JobSpec{Kind: "net", Faults: &faultsim.Spec{
		Seed:  9,
		Nodes: []faultsim.NodeFault{{Node: 0, Slowdown: 1}},
	}}
	n, err := noop.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Faults != nil {
		t.Errorf("no-op fault spec survived normalization: %+v", n.Faults)
	}
	_, keyNoop, err := Canonicalize(noop)
	if err != nil {
		t.Fatal(err)
	}
	_, keyPlain, err := Canonicalize(JobSpec{Kind: "net"})
	if err != nil {
		t.Fatal(err)
	}
	if keyNoop != keyPlain {
		t.Error("no-op fault spec split the cache key")
	}

	// A real fault spec changes the key and survives (sorted).
	faulted := JobSpec{Kind: "net", Faults: &faultsim.Spec{
		Nodes: []faultsim.NodeFault{{Node: 5, Slowdown: 2}, {Node: 1, Slowdown: 3}},
	}}
	nf, keyFaulted, err := Canonicalize(faulted)
	if err != nil {
		t.Fatal(err)
	}
	if keyFaulted == keyPlain {
		t.Error("faulted spec collided with the unfaulted cache key")
	}
	if nf.Faults.Nodes[0].Node != 1 || nf.Faults.Nodes[1].Node != 5 {
		t.Errorf("fault nodes not sorted: %+v", nf.Faults.Nodes)
	}

	// Two orderings of the same faults collapse onto one key.
	swapped := JobSpec{Kind: "net", Faults: &faultsim.Spec{
		Nodes: []faultsim.NodeFault{{Node: 1, Slowdown: 3}, {Node: 5, Slowdown: 2}},
	}}
	if _, keySwapped, _ := Canonicalize(swapped); keySwapped != keyFaulted {
		t.Error("fault entry order leaked into the cache key")
	}
}

func TestNormalizeFaultSpecRejects(t *testing.T) {
	cases := []JobSpec{
		// Kinds without a fabric cannot take faults.
		{Kind: "hpl", Faults: &faultsim.Spec{FailProb: 0.1}},
		{Kind: "stream", Faults: &faultsim.Spec{OSNoise: 0.1}},
		{Kind: "fpu", Faults: &faultsim.Spec{Nodes: []faultsim.NodeFault{{Node: 0, Failed: true}}}},
		// Invalid fault content on a faultable kind.
		{Kind: "net", Faults: &faultsim.Spec{FailProb: 1.5}},
		{Kind: "net", Faults: &faultsim.Spec{Nodes: []faultsim.NodeFault{{Node: 99999, Failed: true}}}},
		{Kind: "app", App: "alya", Faults: &faultsim.Spec{Nodes: []faultsim.NodeFault{{Node: 0, Slowdown: 0.5}}}},
	}
	for _, spec := range cases {
		if _, err := spec.Normalize(); err == nil {
			t.Errorf("Normalize accepted %+v", spec)
		} else if !errors.As(err, new(*ValidationError)) {
			t.Errorf("%+v: error %v is not a ValidationError", spec, err)
		}
	}
	// A zero-effect spec is tolerated even on a non-faultable kind (it is
	// indistinguishable from absent).
	ok := JobSpec{Kind: "hpl", Faults: &faultsim.Spec{}}
	if _, err := ok.Normalize(); err != nil {
		t.Errorf("zero fault spec rejected on hpl: %v", err)
	}
}

func TestRetrySucceedsAfterTransientFault(t *testing.T) {
	var mu sync.Mutex
	var attempts []int
	s := New(Config{
		Workers: 1, MaxRetries: 3, RetryBackoff: time.Microsecond,
		runnerAttempt: func(_ context.Context, spec JobSpec, attempt int) (*Result, error) {
			mu.Lock()
			attempts = append(attempts, attempt)
			mu.Unlock()
			if attempt < 2 {
				return nil, &faultsim.NodeFailedError{Node: 7}
			}
			return &Result{Kind: spec.Kind, Summary: "recovered"}, nil
		},
	})
	defer closeNow(t, s)

	v, err := s.Submit(JobSpec{Kind: "net"})
	if err != nil {
		t.Fatal(err)
	}
	v = waitTerminal(t, s, v.ID)
	if v.State != StateDone {
		t.Fatalf("state = %s (%s), want done", v.State, v.Error)
	}
	if v.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", v.Attempts)
	}
	if v.Degraded {
		t.Error("successful retry marked degraded")
	}
	mu.Lock()
	got := append([]int(nil), attempts...)
	mu.Unlock()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("attempt sequence = %v, want [0 1 2]", got)
	}
	if n := s.retries.Value(); n != 2 {
		t.Errorf("retries counter = %d, want 2", n)
	}
	// The recovered result is cached like any success.
	v2, err := s.Submit(JobSpec{Kind: "net"})
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Cached {
		t.Error("recovered result not served from cache")
	}
}

func TestRetriesExhaustedDegraded(t *testing.T) {
	s := New(Config{
		Workers: 1, MaxRetries: 2, RetryBackoff: time.Microsecond,
		runnerAttempt: func(_ context.Context, _ JobSpec, _ int) (*Result, error) {
			return nil, &faultsim.NodeFailedError{Node: 3}
		},
	})
	defer closeNow(t, s)

	v, err := s.Submit(JobSpec{Kind: "net"})
	if err != nil {
		t.Fatal(err)
	}
	v = waitTerminal(t, s, v.ID)
	if v.State != StateFailed {
		t.Fatalf("state = %s, want failed", v.State)
	}
	if !v.Degraded {
		t.Error("exhausted fault retries not marked degraded")
	}
	if v.Attempts != 3 { // initial + 2 retries
		t.Errorf("attempts = %d, want 3", v.Attempts)
	}
	if !strings.HasPrefix(v.Error, "degraded:") || !strings.Contains(v.Error, "node 3") {
		t.Errorf("error = %q, want degraded: ... node 3 ...", v.Error)
	}
	if n := s.degraded.Value(); n != 1 {
		t.Errorf("degraded counter = %d, want 1", n)
	}

	// A failed fault run must never be cached: resubmission re-executes.
	before := s.cacheHits.Value()
	v2, err := s.Submit(JobSpec{Kind: "net"})
	if err != nil {
		t.Fatal(err)
	}
	v2 = waitTerminal(t, s, v2.ID)
	if v2.Cached || s.cacheHits.Value() != before {
		t.Error("failed degraded run was served from cache")
	}
	if v2.State != StateFailed {
		t.Errorf("resubmission state = %s, want failed", v2.State)
	}
}

func TestNonFaultErrorsNotRetried(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	s := New(Config{
		Workers: 1, MaxRetries: 3, RetryBackoff: time.Microsecond,
		runnerAttempt: func(_ context.Context, _ JobSpec, _ int) (*Result, error) {
			mu.Lock()
			calls++
			mu.Unlock()
			return nil, errors.New("model exploded")
		},
	})
	defer closeNow(t, s)

	v, err := s.Submit(JobSpec{Kind: "net"})
	if err != nil {
		t.Fatal(err)
	}
	v = waitTerminal(t, s, v.ID)
	if v.State != StateFailed || v.Degraded {
		t.Errorf("state = %s degraded=%v, want plain failure", v.State, v.Degraded)
	}
	mu.Lock()
	got := calls
	mu.Unlock()
	if got != 1 {
		t.Errorf("non-fault error retried: %d calls", got)
	}
	if n := s.retries.Value(); n != 0 {
		t.Errorf("retries counter = %d, want 0", n)
	}
}

func TestRetryDelayDeterministic(t *testing.T) {
	key := strings.Repeat("ab12", 16)
	a := retryDelay(50*time.Millisecond, key, 0)
	b := retryDelay(50*time.Millisecond, key, 0)
	if a != b {
		t.Errorf("retryDelay not deterministic: %v != %v", a, b)
	}
	// Jitter stays within [0.75, 1.25) of the doubled base.
	for attempt := 0; attempt < 4; attempt++ {
		base := 50 * time.Millisecond << uint(attempt)
		d := retryDelay(50*time.Millisecond, key, attempt)
		if d < time.Duration(float64(base)*0.75) || d >= time.Duration(float64(base)*1.25) {
			t.Errorf("attempt %d: delay %v outside jitter band of %v", attempt, d, base)
		}
	}
	if retryDelay(0, key, 1) != 0 {
		t.Error("zero base must mean no delay")
	}
}

func TestEndToEndFaultedNetJob(t *testing.T) {
	// No runner stub: the real simulation pipeline, a dead destination
	// node, the real retry policy. Explicit failures persist across
	// attempts, so the job must come back degraded — quickly, not hanging.
	s := New(Config{Workers: 1, MaxRetries: 1, RetryBackoff: time.Microsecond})
	defer closeNow(t, s)

	v, err := s.Submit(JobSpec{Kind: "net", Faults: &faultsim.Spec{
		Nodes: []faultsim.NodeFault{{Node: 1, Failed: true}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	v = waitTerminal(t, s, v.ID)
	if v.State != StateFailed || !v.Degraded {
		t.Fatalf("state = %s degraded=%v (%s), want degraded failure", v.State, v.Degraded, v.Error)
	}
	if !strings.Contains(v.Error, "node 1") {
		t.Errorf("error %q does not name the dead node", v.Error)
	}

	// The same spec without the dead node runs clean.
	ok, err := s.Submit(JobSpec{Kind: "net"})
	if err != nil {
		t.Fatal(err)
	}
	if ok = waitTerminal(t, s, ok.ID); ok.State != StateDone {
		t.Errorf("unfaulted spec failed: %s (%s)", ok.State, ok.Error)
	}
}

func TestEndToEndFaultedJobDeterministic(t *testing.T) {
	// A slowed link changes the measured bandwidth deterministically: two
	// fresh services agree bit-for-bit, and both disagree with pristine.
	run := func(spec JobSpec) *Result {
		s := New(Config{Workers: 1, CacheSize: -1})
		defer closeNow(t, s)
		v, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		v = waitTerminal(t, s, v.ID)
		if v.State != StateDone {
			t.Fatalf("job failed: %s", v.Error)
		}
		return v.Result
	}
	faulted := JobSpec{Kind: "net", SizeBytes: 1 << 20, Faults: &faultsim.Spec{
		Links: []faultsim.LinkFault{{Src: 0, Dst: 1, BandwidthFactor: 0.25}},
	}}
	a := run(faulted)
	b := run(faulted)
	if a.Net.BandwidthGBps != b.Net.BandwidthGBps {
		t.Errorf("faulted run not deterministic: %v != %v", a.Net.BandwidthGBps, b.Net.BandwidthGBps)
	}
	clean := run(JobSpec{Kind: "net", SizeBytes: 1 << 20})
	if a.Net.BandwidthGBps >= clean.Net.BandwidthGBps {
		t.Errorf("degraded link did not lower bandwidth: %v >= %v",
			a.Net.BandwidthGBps, clean.Net.BandwidthGBps)
	}
}

func TestHealthzDegradedMode(t *testing.T) {
	ts, svc := newTestServer(t, Config{
		Workers: 1, MaxRetries: 0, RetryBackoff: -1,
		runnerAttempt: func(_ context.Context, _ JobSpec, _ int) (*Result, error) {
			return nil, &faultsim.NodeFailedError{Node: 0}
		},
	})

	health := func() map[string]any {
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status %d, want 200 even when degraded", resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("healthz not JSON: %v", err)
		}
		return m
	}

	h := health()
	if h["status"] != "ok" {
		t.Errorf("fresh service status = %v, want ok", h["status"])
	}
	for _, key := range []string{"queue_saturation", "recent_failure_rate", "recent_samples", "queue_capacity"} {
		if _, ok := h[key]; !ok {
			t.Errorf("healthz missing %q", key)
		}
	}

	// Fail enough jobs to trip the recent-failure-rate threshold. Distinct
	// specs dodge the cache; each fails instantly.
	for i := 0; i < healthMinSamples; i++ {
		v, err := svc.Submit(JobSpec{Kind: "net", SizeBytes: int64(1024 + i)})
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, svc, v.ID)
	}
	h = health()
	if h["status"] != "degraded" {
		t.Errorf("status after %d failures = %v, want degraded (rate %v over %v samples)",
			healthMinSamples, h["status"], h["recent_failure_rate"], h["recent_samples"])
	}
	if rate := h["recent_failure_rate"].(float64); rate != 1.0 {
		t.Errorf("recent_failure_rate = %v, want 1", rate)
	}
}

func TestFaultMetricsExposed(t *testing.T) {
	ts, svc := newTestServer(t, Config{
		Workers: 1, MaxRetries: 1, RetryBackoff: time.Microsecond,
		runnerAttempt: func(_ context.Context, _ JobSpec, _ int) (*Result, error) {
			return nil, &faultsim.NodeFailedError{Node: 2}
		},
	})
	v, err := svc.Submit(JobSpec{Kind: "net"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, svc, v.ID)

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"clusterd_job_retries_total 1",
		"clusterd_jobs_degraded_total 1",
		"clusterd_queue_saturation",
		"clusterd_recent_failure_rate",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
