package service

import (
	"strings"
	"testing"
)

func TestRegistryText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "A counter.")
	c.Add(3)
	r.GaugeFunc("test_depth", "A gauge.", func() float64 { return 1.5 })
	hv := r.HistogramVec("test_seconds", "A histogram.", "kind", []float64{0.1, 1})
	hv.With("stream").Observe(0.05)
	hv.With("stream").Observe(0.5)
	hv.With("stream").Observe(5)
	cv := r.CounterVec("test_joules_total", "A float counter family.", "kind")
	cv.Add("hpl", 1200.5)
	cv.Add("hpl", 99.5)
	cv.Add("net", 3)
	cv.Add("net", -7) // ignored: counters only go up

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP test_total A counter.",
		"# TYPE test_total counter",
		"test_total 3",
		"# TYPE test_depth gauge",
		"test_depth 1.5",
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{kind="stream",le="0.1"} 1`,
		`test_seconds_bucket{kind="stream",le="1"} 2`,
		`test_seconds_bucket{kind="stream",le="+Inf"} 3`,
		`test_seconds_sum{kind="stream"} 5.55`,
		`test_seconds_count{kind="stream"} 3`,
		"# TYPE test_joules_total counter",
		`test_joules_total{kind="hpl"} 1300`,
		`test_joules_total{kind="net"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n---\n%s", want, out)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("dup_total", "first")
	r.Counter("dup_total", "second")
}
