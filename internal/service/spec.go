package service

import "clustereval/internal/experiment"

// The service's job vocabulary is the experiment registry's: specs,
// validation, canonicalisation and cache keys are all defined once in
// internal/experiment. The aliases below keep the service API (and its
// wire format) unchanged while making clusterd a thin client of the
// registry — a kind registered there is immediately submittable here.

// JobSpec is the canonical description of one simulation job; see
// experiment.Spec for the field semantics and the cache-key contract.
type JobSpec = experiment.Spec

// ValidationError marks a spec the registry refuses to run; the HTTP
// layer turns it into a 400.
type ValidationError = experiment.ValidationError

// Job kinds the service accepts, re-exported from the registry.
const (
	KindStream       = experiment.KindStream
	KindHybridStream = experiment.KindHybridStream
	KindFPU          = experiment.KindFPU
	KindNet          = experiment.KindNet
	KindHPL          = experiment.KindHPL
	KindHPCG         = experiment.KindHPCG
	KindApp          = experiment.KindApp
)

// Kinds returns every job kind the service accepts, in the registry's
// stable order.
func Kinds() []string { return experiment.Kinds() }

// Canonicalize normalises the spec and derives its content address (the
// cache key); see experiment.Canonicalize.
func Canonicalize(spec JobSpec) (JobSpec, string, error) {
	return experiment.Canonicalize(spec)
}
