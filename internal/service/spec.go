package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"clustereval/internal/faultsim"
	"clustereval/internal/machine"
)

// Job kinds the service can execute. Each maps onto one of the repo's
// evaluation layers.
const (
	KindStream       = "stream"        // Fig. 2 OpenMP STREAM Triad sweep
	KindHybridStream = "hybrid-stream" // Fig. 3 MPI+OpenMP STREAM Triad sweep
	KindFPU          = "fpu"           // Fig. 1 FPU µKernel variants
	KindNet          = "net"           // OSU-style point-to-point bandwidth
	KindHPL          = "hpl"           // Fig. 6 Linpack prediction
	KindHPCG         = "hpcg"          // Fig. 7 HPCG prediction
	KindApp          = "app"           // Section V application scalability
)

// Kinds returns every job kind the service accepts, in a stable order.
func Kinds() []string {
	return []string{KindStream, KindHybridStream, KindFPU, KindNet, KindHPL, KindHPCG, KindApp}
}

// apps the "app" kind accepts, matching cmd/appbench.
var knownApps = map[string]bool{
	"alya": true, "nemo": true, "gromacs": true, "openifs": true, "wrf": true,
}

// JobSpec is the canonical description of one simulation job. Two specs
// that normalise to the same canonical form are the same deterministic
// simulation, so their results are interchangeable — that property is what
// makes the result cache safe.
type JobSpec struct {
	// Kind selects the experiment; see Kinds().
	Kind string `json:"kind"`
	// Machine is a preset slug ("cte-arm", "mn4", or an alias).
	Machine string `json:"machine,omitempty"`
	// App names the application for kind "app".
	App string `json:"app,omitempty"`
	// Language is "c" or "fortran" for the STREAM kinds.
	Language string `json:"language,omitempty"`
	// Version is "vanilla" or "optimized" for kind "hpcg".
	Version string `json:"version,omitempty"`
	// Nodes is the node count for "hpl" and "hpcg", and an optional probe
	// point for "app" (0 = whole paper sweep).
	Nodes int `json:"nodes,omitempty"`
	// Ranks restricts the "stream" sweep to one thread count (0 = full
	// sweep 1..cores).
	Ranks int `json:"ranks,omitempty"`
	// SizeBytes is the message size for kind "net".
	SizeBytes int64 `json:"size_bytes,omitempty"`
	// Iters is the iteration count for "net" and "fpu" (0 = default).
	Iters int `json:"iters,omitempty"`
	// SrcNode and DstNode are the endpoints for kind "net".
	SrcNode int `json:"src_node,omitempty"`
	DstNode int `json:"dst_node,omitempty"`
	// Seed reseeds the deterministic interconnect noise (0 = paper
	// default). Identical spec+seed always produce identical results.
	Seed uint64 `json:"seed,omitempty"`
	// Faults injects a deterministic fault scenario (straggler nodes,
	// degraded links, hard node failures) into the simulated cluster for
	// kinds that run through the interconnect ("net", "app"). A spec whose
	// faults have no effect canonicalizes to nil, so it shares a cache
	// entry with the unfaulted job.
	Faults *faultsim.Spec `json:"faults,omitempty"`
	// DeadlineMS bounds the job's total lifetime — queue wait plus
	// execution — in milliseconds from submission; 0 means no deadline
	// (the service's JobTimeout still applies). Every kind accepts it.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// ValidationError marks a spec the service refuses to run; the HTTP layer
// turns it into a 400.
type ValidationError struct{ msg string }

func (e *ValidationError) Error() string { return e.msg }

func invalidf(format string, args ...any) error {
	return &ValidationError{msg: fmt.Sprintf(format, args...)}
}

// fieldUse lists which optional fields each kind consumes. Nonzero values
// in unused fields are rejected rather than ignored: silently dropping
// them would let two different-looking specs collide on one cache entry.
var fieldUse = map[string]struct {
	app, language, version, nodes, ranks, size, iters, endpoints, faults bool
}{
	KindStream:       {language: true, ranks: true},
	KindHybridStream: {language: true},
	KindFPU:          {iters: true},
	KindNet:          {size: true, iters: true, endpoints: true, faults: true},
	KindHPL:          {nodes: true},
	KindHPCG:         {nodes: true, version: true},
	KindApp:          {app: true, nodes: true, faults: true},
}

// Defaults applied during normalisation.
const (
	defaultNetSize  = 256
	defaultNetIters = 100
	defaultFPUIters = 20000
)

// Normalize validates spec and returns its canonical form: names folded to
// their canonical slugs and every defaultable field filled in, so equal
// simulations map to equal specs.
func (s JobSpec) Normalize() (JobSpec, error) {
	n := s
	n.Kind = strings.ToLower(strings.TrimSpace(s.Kind))
	n.App = strings.ToLower(strings.TrimSpace(s.App))
	n.Language = strings.ToLower(strings.TrimSpace(s.Language))
	n.Version = strings.ToLower(strings.TrimSpace(s.Version))

	use, ok := fieldUse[n.Kind]
	if !ok {
		return JobSpec{}, invalidf("unknown kind %q (valid: %s)", s.Kind, strings.Join(Kinds(), " "))
	}

	m, err := resolveMachine(n.Machine)
	if err != nil {
		return JobSpec{}, err
	}
	n.Machine = canonicalSlug(n.Machine)

	// Reject nonzero fields the kind does not consume.
	if !use.app && n.App != "" {
		return JobSpec{}, invalidf("field app not used by kind %q", n.Kind)
	}
	if !use.language && n.Language != "" {
		return JobSpec{}, invalidf("field language not used by kind %q", n.Kind)
	}
	if !use.version && n.Version != "" {
		return JobSpec{}, invalidf("field version not used by kind %q", n.Kind)
	}
	if !use.nodes && n.Nodes != 0 {
		return JobSpec{}, invalidf("field nodes not used by kind %q", n.Kind)
	}
	if !use.ranks && n.Ranks != 0 {
		return JobSpec{}, invalidf("field ranks not used by kind %q", n.Kind)
	}
	if !use.size && n.SizeBytes != 0 {
		return JobSpec{}, invalidf("field size_bytes not used by kind %q", n.Kind)
	}
	if !use.iters && n.Iters != 0 {
		return JobSpec{}, invalidf("field iters not used by kind %q", n.Kind)
	}
	if !use.endpoints && (n.SrcNode != 0 || n.DstNode != 0) {
		return JobSpec{}, invalidf("fields src_node/dst_node not used by kind %q", n.Kind)
	}
	if !use.faults && !n.Faults.Zero() {
		return JobSpec{}, invalidf("field faults not used by kind %q", n.Kind)
	}
	if use.faults && n.Faults != nil {
		if err := n.Faults.Validate(m.Nodes); err != nil {
			return JobSpec{}, invalidf("invalid fault spec on %s: %v", m.Name, err)
		}
	}
	// Canonicalize the fault spec: entries sorted, no-op entries dropped,
	// and an effect-free spec folded to nil so it cannot split the cache.
	n.Faults = n.Faults.Canonical()

	if n.DeadlineMS < 0 {
		return JobSpec{}, invalidf("negative deadline_ms %d", n.DeadlineMS)
	}

	// Per-kind validation and defaults.
	switch n.Kind {
	case KindStream, KindHybridStream:
		switch n.Language {
		case "":
			n.Language = "c"
		case "c", "fortran":
		default:
			return JobSpec{}, invalidf("unknown language %q (valid: c fortran)", s.Language)
		}
		if n.Ranks < 0 || n.Ranks > m.Node.Cores() {
			return JobSpec{}, invalidf("ranks %d out of [0, %d] on %s", n.Ranks, m.Node.Cores(), m.Name)
		}
	case KindFPU:
		if n.Iters < 0 {
			return JobSpec{}, invalidf("negative iters %d", n.Iters)
		}
		if n.Iters == 0 {
			n.Iters = defaultFPUIters
		}
	case KindNet:
		if n.SizeBytes < 0 {
			return JobSpec{}, invalidf("negative size_bytes %d", n.SizeBytes)
		}
		if n.SizeBytes == 0 {
			n.SizeBytes = defaultNetSize
		}
		if n.Iters < 0 {
			return JobSpec{}, invalidf("negative iters %d", n.Iters)
		}
		if n.Iters == 0 {
			n.Iters = defaultNetIters
		}
		if n.SrcNode < 0 || n.SrcNode >= m.Nodes || n.DstNode < 0 || n.DstNode >= m.Nodes {
			return JobSpec{}, invalidf("endpoints %d->%d out of [0, %d) on %s",
				n.SrcNode, n.DstNode, m.Nodes, m.Name)
		}
		if n.SrcNode == 0 && n.DstNode == 0 {
			// Unspecified endpoints default to a node pair; same-node
			// transfers are still reachable via any src == dst != 0.
			n.DstNode = 1
		}
	case KindHPL, KindHPCG:
		if n.Nodes < 0 || n.Nodes > m.Nodes {
			return JobSpec{}, invalidf("nodes %d out of [0, %d] on %s", n.Nodes, m.Nodes, m.Name)
		}
		if n.Nodes == 0 {
			n.Nodes = 1
		}
		if n.Kind == KindHPCG {
			switch n.Version {
			case "":
				n.Version = "optimized"
			case "vanilla", "optimized":
			default:
				return JobSpec{}, invalidf("unknown hpcg version %q (valid: vanilla optimized)", s.Version)
			}
		}
	case KindApp:
		if !knownApps[n.App] {
			return JobSpec{}, invalidf("unknown app %q (valid: alya nemo gromacs openifs wrf)", s.App)
		}
		if n.Nodes < 0 || n.Nodes > m.Nodes {
			return JobSpec{}, invalidf("nodes %d out of [0, %d] on %s", n.Nodes, m.Nodes, m.Name)
		}
	}
	return n, nil
}

// resolveMachine maps the spec's machine field (empty = cte-arm) to its
// preset descriptor.
func resolveMachine(name string) (machine.Machine, error) {
	if name == "" {
		name = "cte-arm"
	}
	m, ok := machine.Preset(name)
	if !ok {
		return machine.Machine{}, invalidf("unknown machine %q (valid: %s)",
			name, strings.Join(machine.PresetNames(), " "))
	}
	return m, nil
}

// canonicalSlug folds a machine name/alias to its canonical preset slug.
func canonicalSlug(name string) string {
	if name == "" {
		name = "cte-arm"
	}
	if slug, ok := machine.PresetSlug(name); ok {
		return slug
	}
	return strings.ToLower(strings.TrimSpace(name))
}

// Canonicalize normalises the spec and derives its content address: the
// SHA-256 of the canonical JSON encoding. The address is the cache key, so
// any two submissions of the same deterministic simulation — whatever
// aliases or omitted defaults they used — collapse onto one cache entry.
//
// The deadline is stripped before hashing: it can only change *whether* a
// job finishes, never what result it produces, and only successful runs
// — where the deadline demonstrably did not change the outcome — are
// ever cached. Folding it away lets a deadlined resubmission of a
// previously completed spec answer from the cache in microseconds.
func Canonicalize(spec JobSpec) (JobSpec, string, error) {
	n, err := spec.Normalize()
	if err != nil {
		return JobSpec{}, "", err
	}
	keySpec := n
	keySpec.DeadlineMS = 0
	buf, err := json.Marshal(keySpec)
	if err != nil {
		return JobSpec{}, "", fmt.Errorf("service: encoding canonical spec: %w", err)
	}
	sum := sha256.Sum256(buf)
	return n, hex.EncodeToString(sum[:]), nil
}
