package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clustereval/internal/faultsim"
	"clustereval/internal/journal"
)

// openDurable is OpenDurable with the test boilerplate folded in.
func openDurable(t *testing.T, cfg Config, path string) *Service {
	t.Helper()
	s, err := OpenDurable(cfg, path)
	if err != nil {
		t.Fatalf("OpenDurable(%s): %v", path, err)
	}
	return s
}

// TestDurableSurvivesCleanRestart drives the full lifecycle across two
// service incarnations over one journal: submit, run, cache-hit, drain,
// reopen — everything must come back with results intact and nothing may
// re-run.
func TestDurableSurvivesCleanRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	var calls atomic.Int64
	counting := func(ctx context.Context, spec JobSpec) (*Result, error) {
		calls.Add(1)
		return fastRunner(ctx, spec)
	}

	s := openDurable(t, Config{Workers: 1, runner: counting}, path)
	spec := JobSpec{Kind: "hpl", Nodes: 4}
	v1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, v1.ID)
	v2, err := s.Submit(spec) // cache hit, journaled as submitted+done
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Cached {
		t.Fatal("resubmission missed the cache")
	}
	closeNow(t, s)

	s2 := openDurable(t, Config{Workers: 1, runner: counting}, path)
	defer closeNow(t, s2)
	if got := s2.RecoveredJobs(); got != 2 {
		t.Errorf("RecoveredJobs = %d, want 2", got)
	}
	for _, id := range []string{v1.ID, v2.ID} {
		v, err := s2.Get(id)
		if err != nil {
			t.Fatalf("Get(%s) after restart: %v", id, err)
		}
		if v.State != StateDone || v.Result == nil || !v.Recovered {
			t.Errorf("job %s after restart: state %s, recovered %v, result %v",
				id, v.State, v.Recovered, v.Result)
		}
	}
	// The cache was rehydrated from the journaled result: a third
	// submission must hit it without touching the runner.
	v3, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !v3.Cached {
		t.Error("post-restart resubmission missed the rehydrated cache")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("runner called %d times across restarts, want 1", got)
	}
}

// TestDurableReenqueuesCrashVictims replays a journal that ends mid-job
// (submitted + started, no terminal record, no shutdown marker): exactly
// what a SIGKILL leaves behind. The job must run again to completion.
func TestDurableReenqueuesCrashVictims(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Now().Add(-time.Minute)
	err = j.Append(
		journal.Record{Type: journal.TypeSubmitted, JobID: "j000001", At: at,
			Spec: json.RawMessage(`{"kind":"fpu","seed":7}`)},
		journal.Record{Type: journal.TypeStarted, JobID: "j000001", At: at},
	)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	var firstSpec atomic.Value
	s := openDurable(t, Config{Workers: 1, runner: func(ctx context.Context, spec JobSpec) (*Result, error) {
		firstSpec.CompareAndSwap(nil, spec)
		return fastRunner(ctx, spec)
	}}, path)
	if got := s.RecoveredJobs(); got != 1 {
		t.Errorf("RecoveredJobs = %d, want 1", got)
	}
	final := waitTerminal(t, s, "j000001")
	if final.State != StateDone || final.Result == nil || !final.Recovered {
		t.Errorf("crash victim ended %s (recovered %v)", final.State, final.Recovered)
	}
	if spec, ok := firstSpec.Load().(JobSpec); !ok || spec.Kind != "fpu" || spec.Seed != 7 {
		t.Errorf("first executed spec = %+v, want the recovered fpu/seed=7 job", firstSpec.Load())
	}
	// The ID counter must continue past recovered IDs, not collide.
	v, err := s.Submit(JobSpec{Kind: "fpu", Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != "j000002" {
		t.Errorf("next ID after recovery = %s, want j000002", v.ID)
	}
	closeNow(t, s)

	// Third incarnation: the re-run's result must now be terminal state,
	// not another re-execution.
	s2 := openDurable(t, Config{Workers: 1, runner: func(context.Context, JobSpec) (*Result, error) {
		t.Error("runner called after recovered journal already holds terminal states")
		return nil, errors.New("unreachable")
	}}, path)
	defer closeNow(t, s2)
	v1, err := s2.Get("j000001")
	if err != nil {
		t.Fatal(err)
	}
	if v1.State != StateDone || v1.Result == nil {
		t.Errorf("after second restart job = %s, result %v", v1.State, v1.Result)
	}
}

// TestDurableCleanShutdownNeverReruns: a journal ending with the shutdown
// marker cannot hold crash victims, so an unfinished job there is closed
// out as cancelled instead of silently re-executed.
func TestDurableCleanShutdownNeverReruns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Now().Add(-time.Minute)
	err = j.Append(
		journal.Record{Type: journal.TypeSubmitted, JobID: "j000001", At: at,
			Spec: json.RawMessage(`{"kind":"fpu"}`)},
		journal.Record{Type: journal.TypeShutdown, At: at.Add(time.Second)},
	)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	s := openDurable(t, Config{Workers: 1, runner: func(context.Context, JobSpec) (*Result, error) {
		t.Error("runner called for a job unfinished at clean shutdown")
		return nil, errors.New("unreachable")
	}}, path)
	defer closeNow(t, s)
	v, err := s.Get("j000001")
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateCancelled || !strings.Contains(v.Error, "clean shutdown") {
		t.Errorf("job = %s (%q), want cancelled at clean shutdown", v.State, v.Error)
	}
}

// TestDurableRefusesCorruptJournal: mid-file damage is not ours to repair.
func TestDurableRefusesCorruptJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(
		journal.Record{Type: journal.TypeSubmitted, JobID: "j000001", At: time.Now(),
			Spec: json.RawMessage(`{"kind":"fpu"}`)},
		journal.Record{Type: journal.TypeStarted, JobID: "j000001", At: time.Now()},
	)
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[4] ^= 0xff // inside the first record's CRC prefix
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(Config{Workers: 1, runner: fastRunner}, path); !errors.Is(err, journal.ErrCorrupt) {
		t.Errorf("OpenDurable(corrupt) = %v, want ErrCorrupt", err)
	}
}

// TestDeadlineAbortsJob: a deadline_ms far below the job timeout must
// terminate the job with a deadline error well before the timeout would.
func TestDeadlineAbortsJob(t *testing.T) {
	s := New(Config{Workers: 1, CacheSize: -1, JobTimeout: time.Minute,
		runner: func(ctx context.Context, spec JobSpec) (*Result, error) {
			<-ctx.Done() // runs until aborted
			return nil, ctx.Err()
		}})
	defer closeNow(t, s)

	start := time.Now()
	v, err := s.Submit(JobSpec{Kind: "fpu", DeadlineMS: 30})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, v.ID)
	elapsed := time.Since(start)
	if final.State != StateFailed {
		t.Fatalf("deadlined job ended %s (%s)", final.State, final.Error)
	}
	if !strings.Contains(final.Error, "deadline exceeded") || !strings.Contains(final.Error, "deadline_ms=30") {
		t.Errorf("error %q does not name the deadline", final.Error)
	}
	if elapsed > 10*time.Second {
		t.Errorf("deadlined job took %v, nowhere near the 30ms deadline", elapsed)
	}
}

// TestDeadlineDoesNotSplitCache: deadline_ms is stripped from the cache
// key, so a deadlined resubmission of a completed spec is a pure hit.
func TestDeadlineDoesNotSplitCache(t *testing.T) {
	_, k1, err := Canonicalize(JobSpec{Kind: "fpu", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	_, k2, err := Canonicalize(JobSpec{Kind: "fpu", Seed: 9, DeadlineMS: 60000})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("deadline changed the cache key: %s vs %s", k1, k2)
	}
	if _, _, err := Canonicalize(JobSpec{Kind: "fpu", DeadlineMS: -1}); err == nil {
		t.Error("negative deadline_ms accepted")
	}

	var calls atomic.Int64
	s := New(Config{Workers: 1, runner: func(ctx context.Context, spec JobSpec) (*Result, error) {
		calls.Add(1)
		return fastRunner(ctx, spec)
	}})
	defer closeNow(t, s)
	v, err := s.Submit(JobSpec{Kind: "fpu", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, v.ID)
	hit, err := s.Submit(JobSpec{Kind: "fpu", Seed: 9, DeadlineMS: 60000})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || calls.Load() != 1 {
		t.Errorf("deadlined resubmission: cached %v, runner calls %d", hit.Cached, calls.Load())
	}
}

// TestLoadShedding fills the queue past the shed threshold and expects an
// *OverloadError with a retry hint, while a genuinely full queue keeps its
// distinct ErrQueueFull answer.
func TestLoadShedding(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 4, CacheSize: -1, ShedThreshold: 0.5,
		runner: func(ctx context.Context, spec JobSpec) (*Result, error) {
			<-release
			return fastRunner(ctx, spec)
		}})
	defer closeNow(t, s)
	defer close(release) // LIFO: unblock the runner before the drain

	// Worker takes job 1; jobs 2 and 3 bring the queue to saturation 0.5.
	if _, err := s.Submit(JobSpec{Kind: "fpu", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueDepth() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for seed := uint64(2); seed <= 3; seed++ {
		if _, err := s.Submit(JobSpec{Kind: "fpu", Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}

	_, err := s.Submit(JobSpec{Kind: "fpu", Seed: 4})
	var overload *OverloadError
	if !errors.As(err, &overload) {
		t.Fatalf("submit at saturation = %v, want *OverloadError", err)
	}
	if overload.RetryAfter <= 0 || !strings.Contains(overload.Reason, "shedding") {
		t.Errorf("overload hint = %+v", overload)
	}
	if got := s.shed.Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
}

// TestBreakerLifecycle walks the circuit breaker through all three states:
// failures open it, the cooldown admits exactly one half-open probe, and
// the probe's success closes it. Specs without faults are never gated.
func TestBreakerLifecycle(t *testing.T) {
	faulty := func() JobSpec {
		return JobSpec{Kind: "net", Faults: &faultsim.Spec{
			Nodes: []faultsim.NodeFault{{Node: 1, Failed: true}},
		}}
	}
	var failing atomic.Bool
	failing.Store(true)
	probeRunning := make(chan struct{})
	var probeOnce sync.Once
	release := make(chan struct{})

	const cooldown = 50 * time.Millisecond
	s := New(Config{Workers: 1, CacheSize: -1, MaxRetries: -1,
		BreakerThreshold: 0.5, BreakerMinSamples: 4, BreakerCooldown: cooldown,
		runner: func(ctx context.Context, spec JobSpec) (*Result, error) {
			if spec.Faults == nil {
				return fastRunner(ctx, spec)
			}
			if failing.Load() {
				return nil, &faultsim.NodeFailedError{Node: 1}
			}
			probeOnce.Do(func() { close(probeRunning) })
			select {
			case <-release:
				return fastRunner(ctx, spec)
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}})
	defer closeNow(t, s)

	// Four failing fault jobs fill the outcome window past the trip point.
	for i := 0; i < 4; i++ {
		v, err := s.Submit(faulty())
		if err != nil {
			t.Fatalf("failing submit %d: %v", i, err)
		}
		if final := waitTerminal(t, s, v.ID); final.State != StateFailed || !final.Degraded {
			t.Fatalf("fault job %d ended %s (degraded %v)", i, final.State, final.Degraded)
		}
	}
	if state := s.BreakerState(); state != "closed" {
		t.Errorf("breaker tripped before any admission decision: %s", state)
	}

	// The next fault-carrying spec trips and is rejected; plain specs pass.
	_, err := s.Submit(faulty())
	var overload *OverloadError
	if !errors.As(err, &overload) || !strings.Contains(overload.Reason, "circuit breaker") {
		t.Fatalf("submit against failing cluster = %v, want breaker OverloadError", err)
	}
	if state := s.BreakerState(); state != "open" {
		t.Errorf("breaker = %s after trip, want open", state)
	}
	if got := s.shed.Value(); got != 1 {
		t.Errorf("shed counter = %d after breaker rejection, want 1", got)
	}
	plain, err := s.Submit(JobSpec{Kind: "fpu", Seed: 99})
	if err != nil {
		t.Fatalf("fault-free spec gated by open breaker: %v", err)
	}
	waitTerminal(t, s, plain.ID)

	// After the cooldown one probe goes through; a second fault spec is
	// still rejected while it runs.
	failing.Store(false)
	time.Sleep(cooldown + 20*time.Millisecond)
	probe, err := s.Submit(faulty())
	if err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	<-probeRunning
	if state := s.BreakerState(); state != "half-open" {
		t.Errorf("breaker = %s during probe, want half-open", state)
	}
	if _, err := s.Submit(faulty()); !errors.As(err, &overload) {
		t.Errorf("second fault spec during probe = %v, want OverloadError", err)
	}

	close(release)
	if final := waitTerminal(t, s, probe.ID); final.State != StateDone {
		t.Fatalf("probe ended %s (%s)", final.State, final.Error)
	}
	if state := s.BreakerState(); state != "closed" {
		t.Errorf("breaker = %s after successful probe, want closed", state)
	}
}

// TestShedOverHTTP pins the wire contract: a shed submission answers 429
// with a Retry-After header and shows up in /v1/metrics.
func TestShedOverHTTP(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	ts, svc := newTestServer(t, Config{Workers: 1, QueueDepth: 4, CacheSize: -1, ShedThreshold: 0.5,
		runner: func(ctx context.Context, spec JobSpec) (*Result, error) {
			<-release
			return fastRunner(ctx, spec)
		}})

	postJob(t, ts, JobSpec{Kind: "fpu", Seed: 1})
	deadline := time.Now().Add(5 * time.Second)
	for svc.QueueDepth() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for seed := uint64(2); seed <= 3; seed++ {
		if resp, body := postJob(t, ts, JobSpec{Kind: "fpu", Seed: seed}); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST seed %d = %d: %s", seed, resp.StatusCode, body)
		}
	}

	resp, body := postJob(t, ts, JobSpec{Kind: "fpu", Seed: 4})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("POST at saturation = %d, want 429: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e["error"], "shedding") {
		t.Errorf("429 body = %s", body)
	}

	var metrics strings.Builder
	if err := svc.Registry().WriteText(&metrics); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"clusterd_shed_total 1", "clusterd_breaker_state 0"} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestDurableMetricsOverHTTP: the journal counters are visible on the wire.
func TestDurableMetricsOverHTTP(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	svc := openDurable(t, Config{Workers: 1, runner: fastRunner}, path)
	v, err := svc.Submit(JobSpec{Kind: "fpu", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, svc, v.ID)
	closeNow(t, svc)

	svc2 := openDurable(t, Config{Workers: 1, runner: fastRunner}, path)
	defer closeNow(t, svc2)
	var metrics strings.Builder
	if err := svc2.Registry().WriteText(&metrics); err != nil {
		t.Fatal(err)
	}
	// submitted + started + done + shutdown replayed = 4 records.
	for _, want := range []string{
		"clusterd_recovered_jobs_total 1",
		"clusterd_journal_records_total 4",
		"clusterd_journal_errors_total 0",
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("metrics missing %q\n---\n%s", want, metrics.String())
		}
	}
}
