package service

import (
	"encoding/json"
	"reflect"
	"testing"

	"clustereval/internal/faultsim"
)

// seedSpecs is the corpus of interesting JSON specs the fuzzers start
// from; testdata/fuzz holds additional committed inputs.
func seedSpecs() []string {
	return []string{
		`{}`,
		`{"kind":"stream"}`,
		`{"kind":"hpl","nodes":192,"machine":"cte-arm"}`,
		`{"kind":"net","size_bytes":65536,"iters":100,"src_node":0,"dst_node":23}`,
		`{"kind":"app","app":"wrf","machine":"mn4"}`,
		`{"kind":"hpcg","version":"vanilla","nodes":1}`,
		`{"kind":"NET","machine":"CTE-ARM"}`,
		`{"kind":"net","faults":{"seed":7,"fail_prob":0.1,"os_noise":0.05}}`,
		`{"kind":"net","faults":{"nodes":[{"node":3,"slowdown":2},{"node":1,"failed":true}]}}`,
		`{"kind":"net","faults":{"links":[{"src":0,"dst":1,"bandwidth_factor":0.5,"extra_latency_seconds":1e-6}]}}`,
		`{"kind":"app","app":"alya","faults":{"nodes":[{"node":0,"fail_at_seconds":1.5}]}}`,
		`{"kind":"net","faults":{"nodes":[{"node":3,"slowdown":1}],"links":[{"src":0,"dst":1,"bandwidth_factor":1}]}}`,
		`{"kind":"hpl","faults":{"fail_prob":0.2}}`,
		`{"kind":"net","faults":{"nodes":[{"node":-1}]}}`,
		`{"kind":"net","seed":18446744073709551615}`,
	}
}

// FuzzNormalize feeds arbitrary JSON through JobSpec.Normalize: whatever
// the bytes, it must never panic, and a spec it accepts must normalize
// idempotently (Normalize of the output is the output).
func FuzzNormalize(f *testing.F) {
	for _, s := range seedSpecs() {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec JobSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return // not a spec; nothing to check
		}
		n, err := spec.Normalize()
		if err != nil {
			return // rejected is fine — panicking is not
		}
		again, err := n.Normalize()
		if err != nil {
			t.Fatalf("normalized spec rejected on re-normalize: %v (spec %+v)", err, n)
		}
		if !reflect.DeepEqual(again, n) {
			t.Fatalf("Normalize not idempotent: %+v -> %+v", n, again)
		}
	})
}

// FuzzCanonicalize checks the cache-key contract on arbitrary inputs: the
// canonical form is a fixed point, and its key is stable.
func FuzzCanonicalize(f *testing.F) {
	for _, s := range seedSpecs() {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec JobSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		n, key, err := Canonicalize(spec)
		if err != nil {
			return
		}
		if len(key) != 64 {
			t.Fatalf("key %q is not a sha256 hex digest", key)
		}
		n2, key2, err := Canonicalize(n)
		if err != nil {
			t.Fatalf("canonical spec rejected: %v (spec %+v)", err, n)
		}
		if key2 != key {
			t.Fatalf("canonicalization unstable: key %s -> %s (spec %+v)", key, key2, n)
		}
		if !reflect.DeepEqual(n2, n) {
			t.Fatalf("canonical spec not a fixed point: %+v -> %+v", n, n2)
		}
	})
}

// FuzzFaultSpec drives the fault-spec parser and compiler with arbitrary
// JSON: no panics, Canonical is idempotent, and every spec Validate
// accepts must compile.
func FuzzFaultSpec(f *testing.F) {
	for _, s := range []string{
		`{}`,
		`{"seed":7}`,
		`{"fail_prob":0.1,"os_noise":0.05,"seed":42}`,
		`{"nodes":[{"node":3,"slowdown":2},{"node":1,"failed":true},{"node":2,"fail_at_seconds":1.5}]}`,
		`{"links":[{"src":0,"dst":1,"bandwidth_factor":0.5},{"src":1,"dst":0,"extra_latency_seconds":1e-6}]}`,
		`{"nodes":[{"node":0,"slowdown":1}],"links":[{"src":0,"dst":1,"bandwidth_factor":1}]}`,
		`{"nodes":[{"node":0,"failed":true,"fail_at_seconds":2}]}`,
		`{"fail_prob":-1}`,
		`{"os_noise":2}`,
		`{"nodes":[{"node":63,"slowdown":1e308}]}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec faultsim.Spec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		const nodes = 64
		if err := spec.Validate(nodes); err != nil {
			return
		}
		c := spec.Canonical()
		if c != nil {
			if err := c.Validate(nodes); err != nil {
				t.Fatalf("canonical form invalid: %v (spec %+v)", err, c)
			}
			if again := c.Canonical(); !reflect.DeepEqual(again, c) {
				t.Fatalf("Canonical not idempotent: %+v -> %+v", c, again)
			}
		}
		for attempt := 0; attempt < 2; attempt++ {
			m, err := spec.Compile(nodes, attempt)
			if err != nil {
				t.Fatalf("validated spec failed to compile: %v (spec %+v)", err, spec)
			}
			// Model lookups must stay in their documented ranges.
			for n := 0; n < nodes; n++ {
				if sl := m.Slowdown(n); sl < 1 {
					t.Fatalf("node %d slowdown %v below 1", n, sl)
				}
				if at, ok := m.FailTime(n); ok && at < 0 {
					t.Fatalf("node %d negative fail time %v", n, at)
				}
			}
		}
		if spec.Zero() {
			// A zero-effect spec may keep its explicit magnitude-1 entries
			// in the model, but the model must be effect-free, and the
			// canonical form must compile away entirely.
			m, _ := spec.Compile(nodes, 0)
			for n := 0; n < nodes; n++ {
				if m.Slowdown(n) != 1 {
					t.Fatalf("zero spec slowed node %d: %+v", n, spec)
				}
			}
			if failed := m.FailedNodes(); len(failed) > 0 {
				t.Fatalf("zero spec failed nodes %v: %+v", failed, spec)
			}
			if cm, _ := spec.Canonical().Compile(nodes, 0); cm != nil {
				t.Fatalf("canonical zero spec compiled to non-nil model: %+v", spec)
			}
		}
	})
}
