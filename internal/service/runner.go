package service

import (
	"context"
	"fmt"

	"clustereval/internal/apps/scaling"
	"clustereval/internal/bench/fpu"
	"clustereval/internal/bench/osu"
	"clustereval/internal/figures"
	"clustereval/internal/hpcg"
	"clustereval/internal/hpl"
	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/toolchain"
	"clustereval/internal/units"
)

// Result is the JSON payload of a completed job. Exactly one of the typed
// sub-results is populated, matching the spec's kind.
type Result struct {
	Kind    string        `json:"kind"`
	Machine string        `json:"machine"`
	Summary string        `json:"summary"`
	Stream  *StreamResult `json:"stream,omitempty"`
	Hybrid  *HybridResult `json:"hybrid,omitempty"`
	FPU     []FPUBar      `json:"fpu,omitempty"`
	Net     *NetResult    `json:"net,omitempty"`
	HPL     *HPLResult    `json:"hpl,omitempty"`
	HPCG    *HPCGResult   `json:"hpcg,omitempty"`
	App     *AppResult    `json:"app,omitempty"`
}

// StreamPoint is one thread count of the Fig. 2 sweep.
type StreamPoint struct {
	Threads int     `json:"threads"`
	GBps    float64 `json:"gbps"`
}

// StreamResult is the Fig. 2 OpenMP sweep for one machine/language.
type StreamResult struct {
	Language      string        `json:"language"`
	Elements      int           `json:"elements"`
	Points        []StreamPoint `json:"points"`
	BestThreads   int           `json:"best_threads"`
	BestGBps      float64       `json:"best_gbps"`
	PercentOfPeak float64       `json:"percent_of_peak"`
}

// HybridResult is the Fig. 3 hybrid MPI+OpenMP sweep outcome.
type HybridResult struct {
	Language      string  `json:"language"`
	BestConfig    string  `json:"best_config"` // "ranks x threads"
	BestGBps      float64 `json:"best_gbps"`
	PercentOfPeak float64 `json:"percent_of_peak"`
}

// FPUBar is one variant of the Fig. 1 µKernel run.
type FPUBar struct {
	Variant         string  `json:"variant"`
	Supported       bool    `json:"supported"`
	SustainedGFlops float64 `json:"sustained_gflops,omitempty"`
	PeakGFlops      float64 `json:"peak_gflops,omitempty"`
	PercentOfPeak   float64 `json:"percent_of_peak,omitempty"`
}

// NetResult is one OSU-style point-to-point measurement.
type NetResult struct {
	SrcNode       int     `json:"src_node"`
	DstNode       int     `json:"dst_node"`
	SizeBytes     int64   `json:"size_bytes"`
	Iters         int     `json:"iters"`
	BandwidthGBps float64 `json:"bandwidth_gbps"`
	LatencyMicros float64 `json:"latency_us"` // zero-byte latency
}

// HPLResult is one Fig. 6 Linpack prediction.
type HPLResult struct {
	Nodes         int     `json:"nodes"`
	N             int     `json:"n"`
	P             int     `json:"p"`
	Q             int     `json:"q"`
	TimeSeconds   float64 `json:"time_seconds"`
	GFlops        float64 `json:"gflops"`
	PercentOfPeak float64 `json:"percent_of_peak"`
}

// HPCGResult is one Fig. 7 HPCG prediction.
type HPCGResult struct {
	Nodes         int     `json:"nodes"`
	Version       string  `json:"version"`
	GFlops        float64 `json:"gflops"`
	PercentOfPeak float64 `json:"percent_of_peak"`
}

// AppPoint is one node count of an application scalability sweep.
type AppPoint struct {
	Nodes   int     `json:"nodes"`
	Seconds float64 `json:"seconds"`
}

// AppSeries is one curve of an application figure (WRF contributes two per
// machine: with and without IO).
type AppSeries struct {
	Label  string     `json:"label,omitempty"`
	Points []AppPoint `json:"points"`
}

// AppResult is the paper's scalability sweep for one application on one
// machine.
type AppResult struct {
	App         string      `json:"app"`
	Figure      string      `json:"figure"`
	Series      []AppSeries `json:"series"`
	TimeAtNodes float64     `json:"time_at_nodes,omitempty"` // set when the spec probed one node count
}

// Run executes one normalised job spec against the evaluation layers. It
// is a pure function of the spec: identical specs produce identical
// results, the invariant the result cache relies on. The context is
// honoured between model phases; the individual model calls are seconds at
// worst, so cancellation latency is bounded by the longest single phase.
func Run(ctx context.Context, spec JobSpec) (*Result, error) {
	return RunAttempt(ctx, spec, 0)
}

// RunAttempt is Run with an explicit 0-based attempt number: the attempt
// salts the *stochastic* part of the spec's fault scenario (FailProb and
// OSNoise draws), so a retry of a transiently failed job re-rolls the dice
// while explicitly injected faults — a named dead node, a pinned slow link
// — persist across attempts, exactly like real hardware. With a nil or
// effect-free fault spec every attempt is the same pure function of the
// spec that Run documents.
func RunAttempt(ctx context.Context, spec JobSpec, attempt int) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m, err := resolveMachine(spec.Machine)
	if err != nil {
		return nil, err
	}
	pair := figures.WithSeed(spec.Seed)

	if spec.Faults != nil {
		model, err := spec.Faults.Compile(m.Nodes, attempt)
		if err != nil {
			return nil, invalidf("fault spec: %v", err)
		}
		m.Faults = model
		// The pair's copy of the machine is what runNet and runApp resolve,
		// so the compiled scenario has to ride on it too.
		switch m.Name {
		case pair.Arm.Name:
			pair.Arm.Faults = model
		case pair.Ref.Name:
			pair.Ref.Faults = model
		}
	}

	switch spec.Kind {
	case KindStream:
		return runStream(ctx, pair, m, spec)
	case KindHybridStream:
		return runHybrid(pair, m, spec)
	case KindFPU:
		return runFPU(m, spec)
	case KindNet:
		return runNet(ctx, pair, m, spec)
	case KindHPL:
		return runHPL(m, spec)
	case KindHPCG:
		return runHPCG(m, spec)
	case KindApp:
		return runApp(pair, m, spec)
	default:
		return nil, invalidf("unknown kind %q", spec.Kind)
	}
}

func language(s string) toolchain.Language {
	if s == "fortran" {
		return toolchain.Fortran
	}
	return toolchain.C
}

func runStream(ctx context.Context, pair figures.Pair, m machine.Machine, spec JobSpec) (*Result, error) {
	series, err := pair.StreamSeries(m.Name, language(spec.Language))
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sr := &StreamResult{
		Language:      spec.Language,
		Elements:      series.Elements,
		BestThreads:   series.Best.Threads,
		BestGBps:      series.Best.Bandwidth.GB(),
		PercentOfPeak: series.PercentOfPeak,
	}
	for _, p := range series.Points {
		if spec.Ranks != 0 && p.Threads != spec.Ranks {
			continue
		}
		sr.Points = append(sr.Points, StreamPoint{Threads: p.Threads, GBps: p.Bandwidth.GB()})
	}
	summary := fmt.Sprintf("STREAM Triad on %s (%s): best %.1f GB/s @ %d threads (%.0f%% of peak)",
		m.Name, spec.Language, sr.BestGBps, sr.BestThreads, sr.PercentOfPeak)
	if spec.Ranks != 0 && len(sr.Points) == 1 {
		summary = fmt.Sprintf("STREAM Triad on %s (%s): %.1f GB/s @ %d threads",
			m.Name, spec.Language, sr.Points[0].GBps, spec.Ranks)
	}
	return &Result{Kind: spec.Kind, Machine: m.Name, Summary: summary, Stream: sr}, nil
}

func runHybrid(pair figures.Pair, m machine.Machine, spec JobSpec) (*Result, error) {
	series, err := pair.HybridStreamSeries(m.Name, language(spec.Language))
	if err != nil {
		return nil, err
	}
	hr := &HybridResult{
		Language:      spec.Language,
		BestConfig:    series.Best.Label(),
		BestGBps:      series.Best.Bandwidth.GB(),
		PercentOfPeak: series.PercentOfPeak,
	}
	return &Result{
		Kind: spec.Kind, Machine: m.Name,
		Summary: fmt.Sprintf("hybrid STREAM Triad on %s (%s): best %s = %.1f GB/s (%.0f%% of peak)",
			m.Name, spec.Language, hr.BestConfig, hr.BestGBps, hr.PercentOfPeak),
		Hybrid: hr,
	}, nil
}

func runFPU(m machine.Machine, spec JobSpec) (*Result, error) {
	bars, err := fpu.Figure1([]machine.Machine{m}, spec.Iters)
	if err != nil {
		return nil, err
	}
	var out []FPUBar
	best := 0.0
	for _, b := range bars {
		fb := FPUBar{Variant: b.Variant.Name(), Supported: b.Supported}
		if b.Supported {
			fb.SustainedGFlops = b.Sustained.Giga()
			fb.PeakGFlops = b.Peak.Giga()
			fb.PercentOfPeak = b.PercentOfPeak
			if fb.SustainedGFlops > best {
				best = fb.SustainedGFlops
			}
		}
		out = append(out, fb)
	}
	return &Result{
		Kind: spec.Kind, Machine: m.Name,
		Summary: fmt.Sprintf("FPU µKernel on %s: %d variants, best %.1f GFlop/s sustained", m.Name, len(out), best),
		FPU:     out,
	}, nil
}

func runNet(ctx context.Context, pair figures.Pair, m machine.Machine, spec JobSpec) (*Result, error) {
	// Use the seeded pair's descriptor so the fabric noise follows the
	// spec's seed exactly like the CLI -seed flag.
	seeded, err := pair.MachineByName(m.Name)
	if err != nil {
		return nil, err
	}
	fab, err := interconnect.New(seeded, seeded.Nodes)
	if err != nil {
		return nil, err
	}
	// The context reaches the DES event loop: a deadline aborts the
	// simulated Sendrecv loop mid-run, not at the next attempt boundary.
	bw, err := osu.MeasurePairContext(ctx, fab, spec.SrcNode, spec.DstNode, units.Bytes(spec.SizeBytes), spec.Iters)
	if err != nil {
		return nil, err
	}
	nr := &NetResult{
		SrcNode: spec.SrcNode, DstNode: spec.DstNode,
		SizeBytes: spec.SizeBytes, Iters: spec.Iters,
		BandwidthGBps: bw.GB(),
		LatencyMicros: fab.Latency(spec.SrcNode, spec.DstNode).Micro(),
	}
	return &Result{
		Kind: spec.Kind, Machine: m.Name,
		Summary: fmt.Sprintf("%s nodes %d->%d, %v x %d iters: %.2f GB/s, %.2f us zero-byte latency",
			m.Name, nr.SrcNode, nr.DstNode, units.Bytes(nr.SizeBytes), nr.Iters, nr.BandwidthGBps, nr.LatencyMicros),
		Net: nr,
	}, nil
}

func runHPL(m machine.Machine, spec JobSpec) (*Result, error) {
	run, err := hpl.Predict(m, spec.Nodes)
	if err != nil {
		return nil, err
	}
	hr := &HPLResult{
		Nodes: run.Nodes, N: run.N, P: run.P, Q: run.Q,
		TimeSeconds:   float64(run.Time),
		GFlops:        run.Perf.Giga(),
		PercentOfPeak: run.PercentOfPeak,
	}
	return &Result{
		Kind: spec.Kind, Machine: m.Name,
		Summary: fmt.Sprintf("HPL on %d %s nodes: N=%d, %.0f GFlop/s (%.0f%% of peak)",
			hr.Nodes, m.Name, hr.N, hr.GFlops, hr.PercentOfPeak),
		HPL: hr,
	}, nil
}

func runHPCG(m machine.Machine, spec JobSpec) (*Result, error) {
	v := hpcg.Optimized
	if spec.Version == "vanilla" {
		v = hpcg.Vanilla
	}
	run, err := hpcg.Predict(m, v, spec.Nodes)
	if err != nil {
		return nil, err
	}
	hr := &HPCGResult{
		Nodes: run.Nodes, Version: spec.Version,
		GFlops:        run.Perf.Giga(),
		PercentOfPeak: run.PercentOfPeak,
	}
	return &Result{
		Kind: spec.Kind, Machine: m.Name,
		Summary: fmt.Sprintf("HPCG (%s) on %d %s nodes: %.1f GFlop/s (%.2f%% of peak)",
			hr.Version, hr.Nodes, m.Name, hr.GFlops, hr.PercentOfPeak),
		HPCG: hr,
	}, nil
}

// appFigure names the primary scalability figure each app job reproduces.
var appFigure = map[string]string{
	"alya":    "Fig. 8",
	"nemo":    "Fig. 11",
	"gromacs": "Fig. 13",
	"openifs": "Fig. 15",
	"wrf":     "Fig. 16",
}

func runApp(pair figures.Pair, m machine.Machine, spec JobSpec) (*Result, error) {
	series, err := pair.AppSeries(spec.App)
	if err != nil {
		return nil, err
	}
	ar := &AppResult{App: spec.App, Figure: appFigure[spec.App]}
	for _, s := range series {
		if s.Machine != m.Name {
			continue
		}
		as := AppSeries{Label: s.Label}
		for _, p := range s.Sorted() {
			as.Points = append(as.Points, AppPoint{Nodes: p.Nodes, Seconds: float64(p.Time)})
		}
		ar.Series = append(ar.Series, as)
	}
	if len(ar.Series) == 0 {
		return nil, fmt.Errorf("service: %s has no %s series", spec.App, m.Name)
	}
	summary := fmt.Sprintf("%s (%s) on %s: %d-point scalability sweep",
		spec.App, ar.Figure, m.Name, len(ar.Series[0].Points))
	if spec.Nodes > 0 {
		t, ok := timeAt(series, m.Name, spec.Nodes)
		if !ok {
			return nil, invalidf("%s has no %d-node point on %s in the paper's sweep",
				spec.App, spec.Nodes, m.Name)
		}
		ar.TimeAtNodes = float64(t)
		summary = fmt.Sprintf("%s (%s) on %d %s nodes: %v per iteration unit",
			spec.App, ar.Figure, spec.Nodes, m.Name, t)
	}
	return &Result{Kind: spec.Kind, Machine: m.Name, Summary: summary, App: ar}, nil
}

// timeAt finds the sweep time of machineName's first series at nodes.
func timeAt(series []scaling.Series, machineName string, nodes int) (units.Seconds, bool) {
	for _, s := range series {
		if s.Machine != machineName {
			continue
		}
		if t, ok := s.TimeAt(nodes); ok {
			return t, true
		}
	}
	return 0, false
}
