package service

import (
	"context"

	"clustereval/internal/experiment"
)

// Result is the JSON payload of a completed job; the typed sub-results
// are defined alongside each kind in internal/experiment.
type Result = experiment.Result

// Per-kind result shapes, re-exported so service clients keep compiling.
type (
	StreamPoint  = experiment.StreamPoint
	StreamResult = experiment.StreamResult
	HybridResult = experiment.HybridResult
	FPUBar       = experiment.FPUBar
	NetResult    = experiment.NetResult
	HPLResult    = experiment.HPLResult
	HPCGResult   = experiment.HPCGResult
	AppPoint     = experiment.AppPoint
	AppSeries    = experiment.AppSeries
	AppResult    = experiment.AppResult
)

// Run executes one normalised job spec through the experiment registry.
// It is a pure function of the spec: identical specs produce identical
// results, the invariant the result cache relies on.
func Run(ctx context.Context, spec JobSpec) (*Result, error) {
	return experiment.Run(ctx, spec)
}

// RunAttempt is Run with an explicit 0-based attempt number salting the
// stochastic part of the spec's fault scenario; see experiment.RunAttempt.
func RunAttempt(ctx context.Context, spec JobSpec, attempt int) (*Result, error) {
	return experiment.RunAttempt(ctx, spec, attempt)
}
