package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"clustereval/internal/journal"
)

// newFollower starts a durable shard with a replica store behind an
// httptest server — the receiving half of a replication pair.
func newFollower(t *testing.T, shard string) (*Service, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	svc := openDurable(t, Config{
		ShardName:  shard,
		Workers:    1,
		ReplicaDir: dir,
		runner:     fastRunner,
	}, filepath.Join(dir, "journal.wal"))
	ts := httptest.NewServer(NewServer(svc))
	t.Cleanup(func() {
		ts.Close()
		closeNow(t, svc)
	})
	return svc, ts
}

// pollHeld waits until the follower holds at least want frames for src.
func pollHeld(t *testing.T, follower *Service, src string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if follower.ReplicationStatus().Held[src] >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("follower never held %d frames for %s (has %d)", want, src, follower.ReplicationStatus().Held[src])
}

// TestReplicationShipsEveryRecordAndPromotes is the service-level
// tentpole check: a primary shipping to one follower under quorum 2
// replicates its whole journal, and promoting the follower's replica
// yields a journal OpenDurable replays exactly — the terminal job comes
// back with its result and does not re-run, the in-flight job re-runs.
func TestReplicationShipsEveryRecordAndPromotes(t *testing.T) {
	fsvc, followerTS := newFollower(t, "s1")

	gate := make(chan struct{})
	var calls atomic.Int64
	runner := func(ctx context.Context, spec JobSpec) (*Result, error) {
		calls.Add(1)
		if spec.Nodes >= 8 { // the job we strand mid-flight
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return fastRunner(ctx, spec)
	}
	primary := openDurable(t, Config{
		ShardName: "s0",
		Workers:   1,
		runner:    runner,
	}, filepath.Join(t.TempDir(), "journal.wal"))
	defer closeNow(t, primary)
	defer close(gate) // unblock the stranded job before the drain

	if err := primary.SetReplication(2, []Peer{{Shard: "s1", URL: followerTS.URL}}); err != nil {
		t.Fatalf("SetReplication: %v", err)
	}

	done, err := primary.Submit(JobSpec{Kind: "hpl", Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, primary, done.ID)
	stranded, err := primary.Submit(JobSpec{Kind: "hpl", Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	// j1: submitted+started+done, j2: submitted+started = 5 records.
	pollHeld(t, fsvc, "s0", 5)

	st := primary.ReplicationStatus()
	if !st.Enabled || st.Quorum != 2 || len(st.Peers) != 1 {
		t.Fatalf("primary replication status = %+v", st)
	}
	if st.Peers[0].AckedSeq != st.LastSeq {
		t.Fatalf("peer acked %d, journal at %d", st.Peers[0].AckedSeq, st.LastSeq)
	}
	if got := primary.replShipped.Value(); got != 5 {
		t.Errorf("clusterd_journal_replicated_total = %d, want 5", got)
	}

	// "Destroy" the primary: promote the follower's replica into a
	// fresh journal and replay it.
	promoted := filepath.Join(t.TempDir(), "journal.wal")
	n, err := journal.PromoteReplica(journal.ReplicaPath(fsvc.store.Dir(), "s0"), promoted)
	if err != nil {
		t.Fatalf("PromoteReplica: %v", err)
	}
	if n != 5 {
		t.Fatalf("promoted %d records, want 5", n)
	}
	counting := func(ctx context.Context, spec JobSpec) (*Result, error) {
		calls.Add(1)
		return fastRunner(ctx, spec)
	}
	revived := openDurable(t, Config{ShardName: "s0", Workers: 1, runner: counting}, promoted)
	defer closeNow(t, revived)
	if got := revived.RecoveredJobs(); got != 2 {
		t.Fatalf("revived shard recovered %d jobs, want 2", got)
	}
	v, err := revived.Get(done.ID)
	if err != nil || v.State != StateDone || v.Result == nil {
		t.Fatalf("terminal job after promotion: %+v, %v", v, err)
	}
	before := calls.Load()
	rerun := waitTerminal(t, revived, stranded.ID)
	if rerun.State != StateDone {
		t.Fatalf("stranded job after promotion = %s, want done", rerun.State)
	}
	if !rerun.Recovered {
		t.Error("stranded job not marked recovered")
	}
	if calls.Load() != before+1 {
		t.Errorf("revived shard made %d runner calls, want exactly 1 (the stranded job)", calls.Load()-before)
	}
}

func getJSONT(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReplicationCatchUpAfterLateJoin points a primary with existing
// history at a fresh follower: the first ship hits a gap, the catch-up
// resend delivers the whole journal.
func TestReplicationCatchUpAfterLateJoin(t *testing.T) {
	fsvc, followerTS := newFollower(t, "s1")

	primary := openDurable(t, Config{ShardName: "s0", Workers: 1, runner: fastRunner},
		filepath.Join(t.TempDir(), "journal.wal"))
	defer closeNow(t, primary)

	// History accumulates before the follower exists.
	v, err := primary.Submit(JobSpec{Kind: "hpl", Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, primary, v.ID)

	if err := primary.SetReplication(2, []Peer{{Shard: "s1", URL: followerTS.URL}}); err != nil {
		t.Fatal(err)
	}
	v2, err := primary.Submit(JobSpec{Kind: "hpl", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, primary, v2.ID)
	// Both jobs' full lifecycles — including the records from before the
	// follower joined — must be replicated: 3 + 3 = 6.
	pollHeld(t, fsvc, "s0", 6)
}

// TestReplicationQuorumFailureRejectsSubmit starves the quorum (the
// only peer is unreachable) and expects a DurabilityError from Submit —
// and a 503 with Retry-After through the HTTP layer. Dropping the
// quorum to 1 heals admission without touching the dead peer.
func TestReplicationQuorumFailureRejectsSubmit(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // nothing listens: every ship errors fast

	primary := openDurable(t, Config{
		ShardName:          "s0",
		Workers:            1,
		runner:             fastRunner,
		ReplicationTimeout: 500 * time.Millisecond,
	}, filepath.Join(t.TempDir(), "journal.wal"))
	defer closeNow(t, primary)
	ts := httptest.NewServer(NewServer(primary))
	defer ts.Close()

	if err := primary.SetReplication(2, []Peer{{Shard: "s1", URL: dead.URL}}); err != nil {
		t.Fatal(err)
	}
	_, err := primary.Submit(JobSpec{Kind: "hpl", Nodes: 4})
	var derr *DurabilityError
	if !errors.As(err, &derr) {
		t.Fatalf("Submit with starved quorum err = %v, want DurabilityError", err)
	}
	if primary.replErrors.Value() == 0 {
		t.Error("clusterd_replication_errors_total stayed 0")
	}

	// Through HTTP: 503 + Retry-After, the coordinator's retry signal.
	buf, _ := json.Marshal(JobSpec{Kind: "hpl", Nodes: 2})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit over HTTP = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	// Quorum 1 = local fsync only: submissions flow again.
	if err := primary.SetReplication(1, []Peer{{Shard: "s1", URL: dead.URL}}); err != nil {
		t.Fatal(err)
	}
	v, err := primary.Submit(JobSpec{Kind: "hpl", Nodes: 4})
	if err != nil {
		t.Fatalf("Submit with quorum 1: %v", err)
	}
	waitTerminal(t, primary, v.ID)
}

// TestSetReplicationValidation exercises the misconfigurations the
// fleet layer must never be able to push.
func TestSetReplicationValidation(t *testing.T) {
	nondurable := New(Config{Workers: 1, runner: fastRunner})
	defer closeNow(t, nondurable)
	if err := nondurable.SetReplication(2, []Peer{{Shard: "s1", URL: "http://x"}}); err == nil {
		t.Error("replication accepted without a journal")
	}
	if err := nondurable.SetReplication(1, nil); err != nil {
		t.Errorf("disabling replication on a non-durable service: %v", err)
	}

	s := openDurable(t, Config{ShardName: "s0", Workers: 1, runner: fastRunner},
		filepath.Join(t.TempDir(), "journal.wal"))
	defer closeNow(t, s)
	if err := s.SetReplication(3, []Peer{{Shard: "s1", URL: "http://x"}}); err == nil {
		t.Error("quorum 3 accepted with one peer")
	}
	if err := s.SetReplication(2, []Peer{{Shard: "s0", URL: "http://x"}}); err == nil {
		t.Error("self-replication accepted")
	}
	if err := s.SetReplication(2, []Peer{{Shard: "", URL: "http://x"}}); err == nil {
		t.Error("anonymous peer accepted")
	}
}

// TestIngestEndpointGapAndGarbage drives the follower's wire contract
// directly: a gapped batch answers 409 with the held position, damaged
// bytes are refused, and /healthz grows the replication block.
func TestIngestEndpointGapAndGarbage(t *testing.T) {
	_, ts := newFollower(t, "s1")

	post := func(body []byte) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/replication/ingest", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&m)
		return resp, m
	}

	mkBatch := func(seqs ...uint64) []byte {
		frames := make([]journal.Frame, len(seqs))
		for i, q := range seqs {
			frames[i] = journal.Frame{Src: "s0", Seq: q, Rec: journal.Record{Type: journal.TypeSubmitted, JobID: "j000001", Spec: json.RawMessage(`{}`)}}
		}
		buf, err := journal.EncodeFrames(frames)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}

	resp, m := post(mkBatch(1, 2))
	if resp.StatusCode != http.StatusOK || m["last_seq"] != float64(2) {
		t.Fatalf("contiguous batch = %d %v, want 200 last_seq=2", resp.StatusCode, m)
	}
	resp, m = post(mkBatch(5))
	if resp.StatusCode != http.StatusConflict || m["last_seq"] != float64(2) {
		t.Fatalf("gapped batch = %d %v, want 409 last_seq=2", resp.StatusCode, m)
	}
	resp, _ = post([]byte("deadbeef not a frame\n"))
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusConflict {
		t.Fatalf("garbage batch accepted with %d", resp.StatusCode)
	}

	var health struct {
		Replication *ReplicationStatus `json:"replication"`
	}
	getJSONT(t, ts, "/v1/healthz", &health)
	if health.Replication == nil || health.Replication.Held["s0"] != 2 {
		t.Fatalf("healthz replication block = %+v, want held s0=2", health.Replication)
	}
}

// TestPeersEndpoint pushes a peer set over HTTP the way the fleet
// supervisor does and reads the resulting status back.
func TestPeersEndpoint(t *testing.T) {
	_, followerTS := newFollower(t, "s1")
	primary := openDurable(t, Config{ShardName: "s0", Workers: 1, runner: fastRunner},
		filepath.Join(t.TempDir(), "journal.wal"))
	defer closeNow(t, primary)
	ts := httptest.NewServer(NewServer(primary))
	defer ts.Close()

	put := func(body string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/replication/peers", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := put(`{"quorum":2,"peers":[{"shard":"s1","url":"` + followerTS.URL + `"}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT peers = %d, want 200", resp.StatusCode)
	}
	if st := primary.ReplicationStatus(); !st.Enabled || st.Quorum != 2 {
		t.Fatalf("status after PUT = %+v", st)
	}
	if resp := put(`{"quorum":9,"peers":[{"shard":"s1","url":"x"}]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad quorum PUT = %d, want 400", resp.StatusCode)
	}
	if resp := put(`{"quorum":1,"peers":[]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("disable PUT = %d, want 200", resp.StatusCode)
	}
	if st := primary.ReplicationStatus(); st.Enabled {
		t.Fatal("replication still enabled after disable PUT")
	}
}
