package service

import (
	"container/list"
	"sync"
)

// resultCache is a content-addressed LRU over completed job results. Keys
// are canonical spec hashes (see Canonicalize), so the cache can only ever
// serve a result to a spec that describes the exact same deterministic
// simulation — which is what makes a hit indistinguishable from a rerun,
// except that it answers in microseconds instead of seconds.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *Result
}

// newResultCache returns a cache holding at most capacity results; a
// non-positive capacity disables caching entirely (every Get misses).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: map[string]*list.Element{},
	}
}

// Get returns the cached result for key, refreshing its recency.
func (c *resultCache) Get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores a result under key, evicting the least recently used entry
// when the cache is full.
func (c *resultCache) Put(key string, res *Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the current entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
