// Package service implements clusterd's evaluation engine: a bounded job
// queue feeding a worker pool that replays the paper's simulations on
// demand, a content-addressed LRU cache over their (deterministic)
// results, and a Prometheus-text-format metrics registry. The HTTP layer
// in server.go is a thin translation onto this engine; cmd/clusterd wires
// it to a listener and signals.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// JobState is the lifecycle phase of a submitted job.
type JobState string

// The job lifecycle: queued -> running -> done | failed | cancelled.
// Cache hits are born done.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether no further transitions can happen.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull is returned when the bounded queue cannot accept the
	// job; clients should back off and retry.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrClosed is returned once the service has begun draining.
	ErrClosed = errors.New("service: shutting down")
	// ErrNotFound is returned for unknown job IDs.
	ErrNotFound = errors.New("service: no such job")
)

// Config sizes the service.
type Config struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of jobs waiting to run; 0 means 256.
	QueueDepth int
	// CacheSize bounds the result cache entry count; 0 means 1024,
	// negative disables caching.
	CacheSize int
	// JobTimeout bounds one job's execution; 0 means 2 minutes.
	JobTimeout time.Duration
	// MaxJobs bounds the finished-job history kept for GET /v1/jobs;
	// 0 means 4096. Queued and running jobs are never evicted.
	MaxJobs int
	// runner overrides job execution in tests.
	runner func(context.Context, JobSpec) (*Result, error)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.runner == nil {
		c.runner = Run
	}
	return c
}

// Job is one submitted simulation with its lifecycle state. All mutable
// fields are guarded by mu; View snapshots them for the HTTP layer.
type Job struct {
	ID   string
	Spec JobSpec // normalised
	Key  string  // canonical spec hash (cache key)

	mu         sync.Mutex
	state      JobState
	cached     bool
	result     *Result
	errMsg     string
	submitted  time.Time
	started    time.Time
	finished   time.Time
	cancelFn   context.CancelFunc // set while running
	cancelWant bool               // cancel requested before the job started
}

// JobView is an immutable snapshot of a job, shaped for JSON.
type JobView struct {
	ID              string    `json:"id"`
	State           JobState  `json:"state"`
	Spec            JobSpec   `json:"spec"`
	SpecHash        string    `json:"spec_hash"`
	Cached          bool      `json:"cached"`
	Error           string    `json:"error,omitempty"`
	Result          *Result   `json:"result,omitempty"`
	SubmittedAt     time.Time `json:"submitted_at"`
	StartedAt       time.Time `json:"started_at,omitzero"`
	FinishedAt      time.Time `json:"finished_at,omitzero"`
	DurationSeconds float64   `json:"duration_seconds,omitempty"`
}

// View snapshots the job under its lock.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID: j.ID, State: j.state, Spec: j.Spec, SpecHash: j.Key,
		Cached: j.cached, Error: j.errMsg, Result: j.result,
		SubmittedAt: j.submitted, StartedAt: j.started, FinishedAt: j.finished,
	}
	if !j.started.IsZero() && !j.finished.IsZero() {
		v.DurationSeconds = j.finished.Sub(j.started).Seconds()
	}
	return v
}

// Service is the running evaluation engine.
type Service struct {
	cfg   Config
	cache *resultCache
	queue chan *Job

	mu     sync.Mutex
	closed bool
	jobs   map[string]*Job
	order  []string // submission order, for history eviction and listing
	nextID uint64

	wg        sync.WaitGroup
	baseCtx   context.Context
	cancelAll context.CancelFunc

	reg           *Registry
	submitted     *Counter
	completed     *Counter
	failed        *Counter
	cancelled     *Counter
	cacheHits     *Counter
	cacheMisses   *Counter
	queueRejected *Counter
	durations     *HistogramVec
}

// New builds the service and starts its worker pool.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:       cfg,
		cache:     newResultCache(cfg.CacheSize),
		queue:     make(chan *Job, cfg.QueueDepth),
		jobs:      map[string]*Job{},
		baseCtx:   ctx,
		cancelAll: cancel,
		reg:       NewRegistry(),
	}
	s.submitted = s.reg.Counter("clusterd_jobs_submitted_total", "Jobs accepted for execution or served from cache.")
	s.completed = s.reg.Counter("clusterd_jobs_completed_total", "Jobs that finished successfully (cache hits included).")
	s.failed = s.reg.Counter("clusterd_jobs_failed_total", "Jobs that errored or timed out.")
	s.cancelled = s.reg.Counter("clusterd_jobs_cancelled_total", "Jobs cancelled by the client or during drain.")
	s.cacheHits = s.reg.Counter("clusterd_cache_hits_total", "Submissions answered from the result cache.")
	s.cacheMisses = s.reg.Counter("clusterd_cache_misses_total", "Submissions that required a simulation run.")
	s.queueRejected = s.reg.Counter("clusterd_queue_rejected_total", "Submissions rejected because the queue was full.")
	s.reg.GaugeFunc("clusterd_queue_depth", "Jobs currently waiting in the queue.",
		func() float64 { return float64(len(s.queue)) })
	s.reg.GaugeFunc("clusterd_cache_entries", "Results currently held by the LRU cache.",
		func() float64 { return float64(s.cache.Len()) })
	s.reg.GaugeFunc("clusterd_cache_hit_ratio", "Lifetime cache hits / (hits + misses); 0 before any lookup.",
		func() float64 {
			h, m := float64(s.cacheHits.Value()), float64(s.cacheMisses.Value())
			if h+m == 0 {
				return 0
			}
			return h / (h + m)
		})
	s.durations = s.reg.HistogramVec("clusterd_job_duration_seconds",
		"Wall-clock execution time of completed jobs by kind (cache hits excluded).", "kind",
		[]float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60})

	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Registry exposes the metrics registry (the /v1/metrics handler renders
// it; tests can add collectors).
func (s *Service) Registry() *Registry { return s.reg }

// QueueDepth returns the number of queued-but-not-running jobs.
func (s *Service) QueueDepth() int { return len(s.queue) }

// Workers returns the worker-pool size.
func (s *Service) Workers() int { return s.cfg.Workers }

// Submit validates, canonicalises and either answers spec from the result
// cache or enqueues it. The returned view reflects the job's state at
// return time: StateDone for cache hits, StateQueued otherwise.
func (s *Service) Submit(spec JobSpec) (JobView, error) {
	norm, key, err := Canonicalize(spec)
	if err != nil {
		return JobView{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobView{}, ErrClosed
	}
	s.submitted.Inc()

	now := time.Now()
	s.nextID++
	job := &Job{
		ID:        fmt.Sprintf("j%06d", s.nextID),
		Spec:      norm,
		Key:       key,
		submitted: now,
	}

	if res, ok := s.cache.Get(key); ok {
		s.cacheHits.Inc()
		s.completed.Inc()
		job.state = StateDone
		job.cached = true
		job.result = res
		job.started = now
		job.finished = now
		s.registerLocked(job)
		return job.View(), nil
	}
	s.cacheMisses.Inc()

	job.state = StateQueued
	select {
	case s.queue <- job:
		s.registerLocked(job)
		return job.View(), nil
	default:
		s.queueRejected.Inc()
		return JobView{}, ErrQueueFull
	}
}

// registerLocked records the job and prunes the oldest finished jobs
// beyond the history bound. Caller holds s.mu.
func (s *Service) registerLocked(job *Job) {
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	if len(s.order) <= s.cfg.MaxJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.cfg.MaxJobs
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j != nil && j.terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Terminal()
}

// Get returns a snapshot of the job with the given ID.
func (s *Service) Get(id string) (JobView, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, ErrNotFound
	}
	return job.View(), nil
}

// Jobs returns snapshots of all retained jobs in submission order.
func (s *Service) Jobs() []JobView {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View()
	}
	return views
}

// Cancel requests cancellation of a queued or running job. Cancelling a
// terminal job is a no-op (its view is returned unchanged).
func (s *Service) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, ErrNotFound
	}

	job.mu.Lock()
	switch job.state {
	case StateQueued:
		job.cancelWant = true
		job.state = StateCancelled
		job.finished = time.Now()
		job.errMsg = "cancelled while queued"
		s.cancelled.Inc()
	case StateRunning:
		job.cancelWant = true
		if job.cancelFn != nil {
			job.cancelFn()
		}
	}
	job.mu.Unlock()
	return job.View(), nil
}

// worker drains the queue until it is closed, running one job at a time.
func (s *Service) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.execute(job)
	}
}

// execute runs one job with a per-job timeout, records its outcome and
// populates the cache.
func (s *Service) execute(job *Job) {
	job.mu.Lock()
	if job.state != StateQueued { // cancelled while waiting
		job.mu.Unlock()
		return
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
	job.state = StateRunning
	job.started = time.Now()
	job.cancelFn = cancel
	job.mu.Unlock()
	defer cancel()

	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := s.cfg.runner(ctx, job.Spec)
		ch <- outcome{res, err}
	}()

	var out outcome
	select {
	case out = <-ch:
	case <-ctx.Done():
		// The runner goroutine keeps computing in the background and its
		// result is discarded; model runs are bounded so this is cheap.
		out = outcome{nil, ctx.Err()}
	}

	now := time.Now()
	job.mu.Lock()
	job.finished = now
	job.cancelFn = nil
	elapsed := now.Sub(job.started)
	switch {
	case out.err == nil:
		job.state = StateDone
		job.result = out.res
		s.cache.Put(job.Key, out.res)
		s.completed.Inc()
		s.durations.With(job.Spec.Kind).Observe(elapsed.Seconds())
	case errors.Is(out.err, context.DeadlineExceeded) && !job.cancelWant:
		job.state = StateFailed
		job.errMsg = fmt.Sprintf("job timed out after %v", s.cfg.JobTimeout)
		s.failed.Inc()
	case errors.Is(out.err, context.Canceled) || job.cancelWant:
		job.state = StateCancelled
		job.errMsg = "cancelled while running"
		s.cancelled.Inc()
	default:
		job.state = StateFailed
		job.errMsg = out.err.Error()
		s.failed.Inc()
	}
	job.mu.Unlock()
}

// Close drains the service: no new submissions are accepted, queued jobs
// are still executed, and Close returns when the pool is idle. If ctx
// expires first, in-flight and remaining queued jobs are cancelled and
// Close waits for the (now fast) drain before returning ctx's error.
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	if !already {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	if already {
		return nil
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelAll() // flip every per-job context; workers finish promptly
		<-done
		return ctx.Err()
	}
}
