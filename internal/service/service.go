// Package service implements clusterd's evaluation engine: a bounded job
// queue feeding a worker pool that replays the paper's simulations on
// demand, a content-addressed LRU cache over their (deterministic)
// results, and a Prometheus-text-format metrics registry. The HTTP layer
// in server.go is a thin translation onto this engine; cmd/clusterd wires
// it to a listener and signals.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"clustereval/internal/faultsim"
	"clustereval/internal/journal"
	"clustereval/internal/xrand"
)

// JobState is the lifecycle phase of a submitted job.
type JobState string

// The job lifecycle: queued -> running -> done | failed | cancelled.
// Cache hits are born done.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether no further transitions can happen.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull is returned when the bounded queue cannot accept the
	// job; clients should back off and retry.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrClosed is returned once the service has begun draining.
	ErrClosed = errors.New("service: shutting down")
	// ErrNotFound is returned for unknown job IDs.
	ErrNotFound = errors.New("service: no such job")
)

// OverloadError is returned when admission control rejects a submission
// before it reaches the queue — load shedding above the saturation
// threshold, or the circuit breaker refusing fault-carrying specs. The
// HTTP layer maps it to 429 with a Retry-After header from the hint.
type OverloadError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string { return "service: " + e.Reason }

// Config sizes the service.
type Config struct {
	// ShardName is this daemon's identity inside a clusterfleet ("s0");
	// empty for a standalone daemon. It is reported on /v1/healthz and in
	// the startup banner so fleet tooling can tie a process to its ring
	// position.
	ShardName string
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of jobs waiting to run; 0 means 256.
	QueueDepth int
	// CacheSize bounds the result cache entry count; 0 means 1024,
	// negative disables caching.
	CacheSize int
	// JobTimeout bounds one job's execution; 0 means 2 minutes.
	JobTimeout time.Duration
	// MaxJobs bounds the finished-job history kept for GET /v1/jobs;
	// 0 means 4096. Queued and running jobs are never evicted.
	MaxJobs int
	// MaxRetries bounds the extra attempts a job failing with a retryable
	// fault error (faultsim.Retryable) gets before it is declared
	// degraded; 0 means 2, negative disables retries.
	MaxRetries int
	// RetryBackoff is the base of the exponential backoff between
	// attempts (doubled per retry, scaled by a deterministic jitter drawn
	// from the job's spec hash); 0 means 50ms, negative means no delay.
	RetryBackoff time.Duration
	// ShedThreshold is the queue saturation in (0, 1] at or above which
	// new queue-bound submissions are load-shed with an *OverloadError
	// (cache hits are never shed — they consume no queue slot); 0 means
	// 0.9, and 1 sheds only when the queue is already full.
	ShedThreshold float64
	// BreakerThreshold is the recent failure rate at or above which the
	// circuit breaker opens for fault-carrying specs; 0 means 0.5.
	BreakerThreshold float64
	// BreakerMinSamples is the minimum number of outcomes the recent
	// window must hold before the breaker may open; 0 means 16.
	BreakerMinSamples int
	// BreakerCooldown is how long the breaker stays open before
	// admitting a half-open probe; 0 means 5s.
	BreakerCooldown time.Duration
	// ReplicaDir, when set on a durable daemon, opens a replica store in
	// that directory and serves the fleet's replication ingest endpoint:
	// this shard then holds follower copies of its ring neighbours'
	// journals. Requires a journal (OpenDurable).
	ReplicaDir string
	// ReplicationTimeout bounds one replication ship (including a
	// catch-up resend) to one peer; 0 means 2s.
	ReplicationTimeout time.Duration
	// runner overrides job execution in tests.
	runner func(context.Context, JobSpec) (*Result, error)
	// runnerAttempt overrides job execution in tests that exercise the
	// retry policy; it additionally receives the 0-based attempt number.
	runnerAttempt func(context.Context, JobSpec, int) (*Result, error)
	// clock supplies wall-clock timestamps (job lifecycle times, journal
	// record times, uptime). It defaults to time.Now; binding it here
	// keeps every wall-clock read in the service behind one injection
	// point, overridable in tests.
	clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.RetryBackoff < 0 {
		c.RetryBackoff = 0
	}
	if c.ShedThreshold <= 0 {
		c.ShedThreshold = 0.9
	}
	if c.ShedThreshold > 1 {
		c.ShedThreshold = 1
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 0.5
	}
	if c.BreakerMinSamples <= 0 {
		c.BreakerMinSamples = 16
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.ReplicationTimeout <= 0 {
		c.ReplicationTimeout = 2 * time.Second
	}
	if c.clock == nil {
		c.clock = time.Now
	}
	if c.runnerAttempt == nil {
		if c.runner != nil {
			fn := c.runner
			c.runnerAttempt = func(ctx context.Context, spec JobSpec, _ int) (*Result, error) {
				return fn(ctx, spec)
			}
		} else {
			c.runnerAttempt = RunAttempt
		}
	}
	return c
}

// Job is one submitted simulation with its lifecycle state. All mutable
// fields are guarded by mu; View snapshots them for the HTTP layer.
type Job struct {
	ID   string
	Spec JobSpec // normalised
	Key  string  // canonical spec hash (cache key)

	// deadline is the absolute per-job deadline derived from the spec's
	// DeadlineMS at submission (zero = none); probe marks the job as the
	// circuit breaker's half-open probe; recovered marks a job replayed
	// from the journal. All three are set before the job is shared and
	// immutable after.
	deadline  time.Time
	probe     bool
	recovered bool

	mu         sync.Mutex
	state      JobState
	cached     bool
	result     *Result
	errMsg     string
	attempts   int  // execution attempts consumed (0 for cache hits)
	degraded   bool // failed with a fault error after exhausting retries
	submitted  time.Time
	started    time.Time
	finished   time.Time
	cancelFn   context.CancelFunc // set while running
	cancelWant bool               // cancel requested before the job started
}

// JobView is an immutable snapshot of a job, shaped for JSON.
type JobView struct {
	ID              string    `json:"id"`
	State           JobState  `json:"state"`
	Spec            JobSpec   `json:"spec"`
	SpecHash        string    `json:"spec_hash"`
	Cached          bool      `json:"cached"`
	Recovered       bool      `json:"recovered,omitempty"`
	Attempts        int       `json:"attempts,omitempty"`
	Degraded        bool      `json:"degraded,omitempty"`
	Error           string    `json:"error,omitempty"`
	Result          *Result   `json:"result,omitempty"`
	SubmittedAt     time.Time `json:"submitted_at"`
	StartedAt       time.Time `json:"started_at,omitzero"`
	FinishedAt      time.Time `json:"finished_at,omitzero"`
	DurationSeconds float64   `json:"duration_seconds,omitempty"`
}

// View snapshots the job under its lock.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID: j.ID, State: j.state, Spec: j.Spec, SpecHash: j.Key,
		Cached: j.cached, Recovered: j.recovered,
		Attempts: j.attempts, Degraded: j.degraded,
		Error: j.errMsg, Result: j.result,
		SubmittedAt: j.submitted, StartedAt: j.started, FinishedAt: j.finished,
	}
	if !j.started.IsZero() && !j.finished.IsZero() {
		v.DurationSeconds = j.finished.Sub(j.started).Seconds()
	}
	return v
}

// Service is the running evaluation engine.
type Service struct {
	cfg   Config
	cache *resultCache
	queue chan *Job
	jnl   *journal.Journal      // nil without durability
	store *journal.ReplicaStore // nil unless this shard hosts replicas
	brk   *breaker

	// commitMu serializes the commit pipeline — local journal append,
	// sequence assignment, replication ship, quorum wait — so the frame
	// order every follower sees is exactly the journal's record order.
	commitMu   sync.Mutex
	journalSeq uint64 // records in the journal file; guarded by commitMu

	replMu sync.Mutex
	repl   *replicator // nil while replication is off

	mu     sync.Mutex
	closed bool
	jobs   map[string]*Job
	order  []string // submission order, for history eviction and listing
	nextID uint64

	wg        sync.WaitGroup
	baseCtx   context.Context
	cancelAll context.CancelFunc

	reg            *Registry
	submitted      *Counter
	completed      *Counter
	failed         *Counter
	cancelled      *Counter
	cacheHits      *Counter
	cacheMisses    *Counter
	queueRejected  *Counter
	retries        *Counter
	degraded       *Counter
	shed           *Counter
	journalRecords *Counter
	journalErrors  *Counter
	recovered      *Counter
	replShipped    *Counter
	replErrors     *Counter
	replIngested   *Counter
	replLag        *GaugeVec
	energyJoules   *CounterVec
	durations      *HistogramVec
	recent         *outcomeWindow
}

// outcomeWindow is a fixed-size ring of recent job outcomes backing the
// /healthz failure-rate signal and the clusterd_recent_failure_rate gauge.
type outcomeWindow struct {
	mu     sync.Mutex
	buf    []bool // true = failed
	next   int
	filled int
}

func newOutcomeWindow(size int) *outcomeWindow {
	return &outcomeWindow{buf: make([]bool, size)}
}

// record appends one outcome, evicting the oldest once the window is full.
func (w *outcomeWindow) record(failed bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf[w.next] = failed
	w.next = (w.next + 1) % len(w.buf)
	if w.filled < len(w.buf) {
		w.filled++
	}
}

// rate returns the fraction of failures among the recorded outcomes and
// how many outcomes back it (0, 0 before any job finishes).
func (w *outcomeWindow) rate() (float64, int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.filled == 0 {
		return 0, 0
	}
	fails := 0
	for i := 0; i < w.filled; i++ {
		if w.buf[i] {
			fails++
		}
	}
	return float64(fails) / float64(w.filled), w.filled
}

// New builds the service and starts its worker pool. The service is not
// durable: queued and running jobs are lost on a crash. Use OpenDurable
// for a journal-backed service that survives one.
func New(cfg Config) *Service {
	s, pending := newService(cfg, nil, nil)
	s.start(pending)
	return s
}

// OpenDurable builds the service on top of the write-ahead journal at
// path. Existing records are replayed before the worker pool starts:
// terminal jobs rehydrate the registry (and done results the cache),
// unfinished jobs re-enqueue and run again — unless the journal ends
// with a clean-shutdown marker, in which case an unfinished job cannot
// be a crash victim and is closed out as cancelled instead of re-run.
// Every subsequent lifecycle transition is journaled and fsynced before
// it is acknowledged.
func OpenDurable(cfg Config, path string) (*Service, error) {
	jnl, recs, err := journal.Open(path)
	if err != nil {
		return nil, err
	}
	var store *journal.ReplicaStore
	if cfg.ReplicaDir != "" {
		store, err = journal.OpenReplicaStore(cfg.ReplicaDir)
		if err != nil {
			jnl.Close()
			return nil, err
		}
	}
	s, pending := newService(cfg, jnl, recs)
	s.store = store
	s.start(pending)
	return s, nil
}

// newService builds the service, replaying any journal records into the
// registry. It returns the jobs that must re-enqueue; start() runs them.
func newService(cfg Config, jnl *journal.Journal, recs []journal.Record) (*Service, []*Job) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:       cfg,
		cache:     newResultCache(cfg.CacheSize),
		queue:     make(chan *Job, cfg.QueueDepth),
		jnl:       jnl,
		brk:       newBreaker(cfg.BreakerThreshold, cfg.BreakerMinSamples, cfg.BreakerCooldown),
		jobs:      map[string]*Job{},
		baseCtx:   ctx,
		cancelAll: cancel,
		reg:       NewRegistry(),
		recent:    newOutcomeWindow(128),
	}
	s.submitted = s.reg.Counter("clusterd_jobs_submitted_total", "Jobs accepted for execution or served from cache.")
	s.completed = s.reg.Counter("clusterd_jobs_completed_total", "Jobs that finished successfully (cache hits included).")
	s.failed = s.reg.Counter("clusterd_jobs_failed_total", "Jobs that errored or timed out.")
	s.cancelled = s.reg.Counter("clusterd_jobs_cancelled_total", "Jobs cancelled by the client or during drain.")
	s.cacheHits = s.reg.Counter("clusterd_cache_hits_total", "Submissions answered from the result cache.")
	s.cacheMisses = s.reg.Counter("clusterd_cache_misses_total", "Submissions that required a simulation run.")
	s.queueRejected = s.reg.Counter("clusterd_queue_rejected_total", "Submissions rejected because the queue was full.")
	s.retries = s.reg.Counter("clusterd_job_retries_total", "Re-executions of jobs that failed with a retryable fault error.")
	s.degraded = s.reg.Counter("clusterd_jobs_degraded_total", "Jobs that exhausted their retries against an injected fault and failed degraded.")
	s.shed = s.reg.Counter("clusterd_shed_total", "Submissions load-shed because queue saturation crossed the shed threshold.")
	s.journalRecords = s.reg.Counter("clusterd_journal_records_total", "Write-ahead journal records: replayed at startup plus appended since.")
	s.journalErrors = s.reg.Counter("clusterd_journal_errors_total", "Failed journal appends (the in-memory state machine keeps going).")
	s.recovered = s.reg.Counter("clusterd_recovered_jobs_total", "Jobs rehydrated or re-enqueued from the write-ahead journal at startup.")
	s.replShipped = s.reg.Counter("clusterd_journal_replicated_total", "Journal records acknowledged by the replication write quorum.")
	s.replErrors = s.reg.Counter("clusterd_replication_errors_total", "Replication ship attempts that failed (per peer, per batch).")
	s.replIngested = s.reg.Counter("clusterd_replica_frames_ingested_total", "Replication frames appended to this shard's replica store for other shards.")
	s.reg.GaugeFunc("clusterd_breaker_state", "Admission circuit breaker state: 0 closed, 1 half-open, 2 open.",
		func() float64 { return float64(s.brk.current()) })
	s.reg.GaugeFunc("clusterd_queue_depth", "Jobs currently waiting in the queue.",
		func() float64 { return float64(len(s.queue)) })
	s.reg.GaugeFunc("clusterd_cache_entries", "Results currently held by the LRU cache.",
		func() float64 { return float64(s.cache.Len()) })
	s.reg.GaugeFunc("clusterd_cache_hit_ratio", "Lifetime cache hits / (hits + misses); 0 before any lookup.",
		func() float64 {
			h, m := float64(s.cacheHits.Value()), float64(s.cacheMisses.Value())
			if h+m == 0 {
				return 0
			}
			return h / (h + m)
		})
	s.reg.GaugeFunc("clusterd_queue_saturation", "Queued jobs / queue capacity, 0..1.",
		s.QueueSaturation)
	s.reg.GaugeFunc("clusterd_recent_failure_rate", "Failed fraction of the most recent executed jobs (window of 128).",
		func() float64 { r, _ := s.recent.rate(); return r })
	s.replLag = s.reg.GaugeVec("clusterd_replica_lag",
		"Primary journal records not yet acknowledged by each replication peer.", "peer")
	s.energyJoules = s.reg.CounterVec("clusterd_energy_joules_total",
		"Modeled energy-to-solution accumulated over executed jobs by kind (cache hits excluded).", "kind")
	s.durations = s.reg.HistogramVec("clusterd_job_duration_seconds",
		"Wall-clock execution time of completed jobs by kind (cache hits excluded).", "kind",
		[]float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60})

	if jnl != nil {
		// Replicated frames are numbered by journal position, so the
		// commit sequence resumes where the on-disk record stream ends.
		s.journalSeq = uint64(len(recs))
	}
	pending := s.replay(recs)
	return s, pending
}

// start launches the worker pool and re-enqueues the recovered jobs. The
// sends block when the recovered backlog exceeds the queue depth; the
// already-running workers drain it, so they always complete.
func (s *Service) start(pending []*Job) {
	s.wg.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker()
	}
	for _, job := range pending {
		s.queue <- job
	}
}

// replay folds the journal records into jobs, registers them, rehydrates
// the cache from done results, and returns the unfinished jobs that must
// re-enqueue. A trailing shutdown marker means the previous process
// drained cleanly, so an unfinished job there is a bookkeeping casualty,
// not a crash victim: it is closed out as cancelled rather than re-run.
func (s *Service) replay(recs []journal.Record) []*Job {
	if len(recs) == 0 {
		return nil
	}
	s.journalRecords.Add(uint64(len(recs)))
	cleanShutdown := recs[len(recs)-1].Type == journal.TypeShutdown

	byID := map[string]*Job{}
	var order []string
	for _, r := range recs {
		if r.Type == journal.TypeSubmitted {
			var spec JobSpec
			job := &Job{ID: r.JobID, recovered: true, submitted: r.At, state: StateQueued}
			if err := json.Unmarshal(r.Spec, &spec); err != nil {
				job.state = StateFailed
				job.errMsg = fmt.Sprintf("recovery: undecodable spec: %v", err)
			} else if norm, key, err := Canonicalize(spec); err != nil {
				job.state = StateFailed
				job.errMsg = fmt.Sprintf("recovery: spec no longer valid: %v", err)
			} else {
				job.Spec, job.Key = norm, key
				if norm.DeadlineMS > 0 {
					job.deadline = r.At.Add(time.Duration(norm.DeadlineMS) * time.Millisecond)
				}
			}
			if _, dup := byID[r.JobID]; !dup {
				order = append(order, r.JobID)
			}
			byID[r.JobID] = job
			if n, err := strconv.ParseUint(strings.TrimLeft(r.JobID, "j"), 10, 64); err == nil && n > s.nextID {
				s.nextID = n
			}
			continue
		}
		job, ok := byID[r.JobID]
		if !ok {
			continue // terminal record for a job outside the journal's horizon
		}
		switch r.Type {
		case journal.TypeStarted:
			job.state = StateRunning
			job.started = r.At
			job.attempts = r.Attempt + 1
		case journal.TypeDone:
			job.state = StateDone
			job.cached = r.Cached
			job.attempts = r.Attempt
			job.finished = r.At
			if len(r.Result) > 0 {
				var res Result
				if err := json.Unmarshal(r.Result, &res); err == nil {
					job.result = &res
				}
			}
		case journal.TypeFailed:
			job.state = StateFailed
			job.errMsg = r.Error
			job.degraded = r.Degraded
			job.attempts = r.Attempt
			job.finished = r.At
		case journal.TypeCancelled:
			job.state = StateCancelled
			job.errMsg = r.Error
			job.attempts = r.Attempt
			job.finished = r.At
		}
	}

	var pending []*Job
	for _, id := range order {
		job := byID[id]
		if !job.state.Terminal() {
			if cleanShutdown {
				job.state = StateCancelled
				job.errMsg = "recovery: unfinished at clean shutdown"
				job.finished = recs[len(recs)-1].At
			} else {
				// Crash victim: wind the job back to queued and run it again.
				job.state = StateQueued
				job.started = time.Time{}
				job.attempts = 0
				pending = append(pending, job)
			}
		}
		if job.state == StateDone && job.result != nil && !job.cached {
			s.cache.Put(job.Key, job.result)
		}
		s.registerLocked(job) // no concurrency yet: workers are not running
		s.recovered.Inc()
	}
	return pending
}

// Registry exposes the metrics registry (the /v1/metrics handler renders
// it; tests can add collectors).
func (s *Service) Registry() *Registry { return s.reg }

// QueueDepth returns the number of queued-but-not-running jobs.
func (s *Service) QueueDepth() int { return len(s.queue) }

// QueueCapacity returns the bounded queue's size.
func (s *Service) QueueCapacity() int { return cap(s.queue) }

// QueueSaturation returns queue depth over capacity, in [0, 1].
func (s *Service) QueueSaturation() float64 {
	return float64(len(s.queue)) / float64(cap(s.queue))
}

// RecentFailureRate returns the failed fraction of the most recently
// executed jobs and the number of outcomes the window holds.
func (s *Service) RecentFailureRate() (float64, int) { return s.recent.rate() }

// BreakerState reports the admission circuit breaker's state:
// "closed", "half-open" or "open".
func (s *Service) BreakerState() string { return s.brk.current().String() }

// RecoveredJobs returns how many jobs were replayed from the journal at
// startup.
func (s *Service) RecoveredJobs() uint64 { return s.recovered.Value() }

// Durable reports whether a write-ahead journal is attached.
func (s *Service) Durable() bool { return s.jnl != nil }

// Workers returns the worker-pool size.
func (s *Service) Workers() int { return s.cfg.Workers }

// ShardName returns this daemon's fleet identity ("" standalone).
func (s *Service) ShardName() string { return s.cfg.ShardName }

// Submit validates, canonicalises and either answers spec from the result
// cache or enqueues it. The returned view reflects the job's state at
// return time: StateDone for cache hits, StateQueued otherwise.
//
// Queue-bound submissions pass admission control first: saturation above
// the shed threshold or an open circuit breaker (for fault-carrying
// specs) rejects with *OverloadError before the job consumes anything.
// Admitted jobs are journaled — submission record fsynced — before the
// view is returned, so an acknowledged job survives a crash.
func (s *Service) Submit(spec JobSpec) (JobView, error) {
	norm, key, err := Canonicalize(spec)
	if err != nil {
		return JobView{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobView{}, ErrClosed
	}
	s.submitted.Inc()

	now := s.cfg.clock()
	newJob := func() *Job {
		s.nextID++
		job := &Job{
			ID:        fmt.Sprintf("j%06d", s.nextID),
			Spec:      norm,
			Key:       key,
			submitted: now,
		}
		if norm.DeadlineMS > 0 {
			job.deadline = now.Add(time.Duration(norm.DeadlineMS) * time.Millisecond)
		}
		return job
	}

	if res, ok := s.cache.Get(key); ok {
		job := newJob()
		job.state = StateDone
		job.cached = true
		job.result = res
		job.started = now
		job.finished = now
		//lint:allow lockorder acknowledged-before-durable is the bug this guards: the cache-hit ack must not race a crash, so the fsync stays inside the submission critical section by design
		if err := s.journalAppend(
			journal.Record{Type: journal.TypeSubmitted, JobID: job.ID, At: now, Spec: mustJSON(norm), Key: key},
			journal.Record{Type: journal.TypeDone, JobID: job.ID, At: now, Cached: true, Result: mustJSON(res)},
		); err != nil {
			return JobView{}, err
		}
		s.cacheHits.Inc()
		s.completed.Inc()
		s.registerLocked(job)
		return job.View(), nil
	}
	s.cacheMisses.Inc()

	// Admission control, cheapest signal first. The saturation read is
	// stable enough to act on: only workers drain the queue, so a depth
	// below capacity here cannot grow before our own enqueue below.
	if sat := float64(len(s.queue)) / float64(cap(s.queue)); sat >= s.cfg.ShedThreshold && len(s.queue) < cap(s.queue) {
		s.shed.Inc()
		return JobView{}, &OverloadError{
			Reason:     fmt.Sprintf("shedding load: queue saturation %.2f >= %.2f", sat, s.cfg.ShedThreshold),
			RetryAfter: time.Second,
		}
	}
	isProbe := false
	if norm.Faults != nil {
		rate, samples := s.recent.rate()
		admit, probe, wait := s.brk.allow(now, rate, samples)
		if !admit {
			s.shed.Inc()
			return JobView{}, &OverloadError{
				Reason:     fmt.Sprintf("circuit breaker %s for fault-carrying specs (recent failure rate %.2f)", s.brk.current(), rate),
				RetryAfter: wait,
			}
		}
		isProbe = probe
	}

	job := newJob()
	job.probe = isProbe
	job.state = StateQueued
	if len(s.queue) == cap(s.queue) {
		if isProbe {
			s.brk.abandonProbe()
		}
		s.queueRejected.Inc()
		return JobView{}, ErrQueueFull
	}
	// The journal commit (and, when replication is on, its quorum wait)
	// happens before the enqueue so a journaled job is always accepted:
	// the capacity check above cannot go stale because only workers
	// drain the queue and every other sender holds s.mu.
	//lint:allow lockorder commit-before-enqueue under s.mu is the durability ordering documented above; releasing the lock would let the capacity check go stale
	if err := s.journalAppend(journal.Record{
		Type: journal.TypeSubmitted, JobID: job.ID, At: now, Spec: mustJSON(norm), Key: key,
	}); err != nil {
		if isProbe {
			s.brk.abandonProbe()
		}
		return JobView{}, err
	}
	//lint:allow lockorder non-blocking by construction: the capacity check above ran under the same s.mu hold and only workers (which never take s.mu first) drain the queue
	s.queue <- job
	s.registerLocked(job)
	return job.View(), nil
}

// mustJSON marshals values that are JSON round-trip safe by construction
// (normalised specs, results the HTTP layer already serves as JSON).
func mustJSON(v any) json.RawMessage {
	buf, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("service: unencodable journal payload: %v", err))
	}
	return buf
}

// journalAppend commits lifecycle records: local journal append (fsync
// included), then — when replication is configured — a ship to the
// follower peers that blocks until the write quorum holds the records.
// The commit lock makes the pipeline a single serialized stream, so
// followers observe frames in exactly journal order.
//
// The error contract splits by caller. Submission paths propagate the
// error (as a DurabilityError, mapped to 503): a job the journal cannot
// vouch for must not be acknowledged, which is what makes a poisoned
// journal fail-stop instead of fail-quiet. Mid-run transitions
// (started, terminal records, shutdown) have no client to refuse, so
// those callers count the error and keep the in-memory state machine
// going.
func (s *Service) journalAppend(recs ...journal.Record) error {
	if s.jnl == nil {
		return nil
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	//lint:allow lockorder serializing append+replicate into one fsynced stream is commitMu's entire purpose; followers must observe frames in journal order
	if err := s.jnl.Append(recs...); err != nil {
		s.journalErrors.Inc()
		return &DurabilityError{Op: "journal append", Err: err}
	}
	s.journalRecords.Add(uint64(len(recs)))
	first := s.journalSeq + 1
	s.journalSeq += uint64(len(recs))
	r := s.replicator()
	if r == nil {
		return nil
	}
	if err := s.replicate(r, recs, first, s.journalSeq); err != nil {
		return &DurabilityError{Op: "replication", Err: err}
	}
	return nil
}

// registerLocked records the job and prunes the oldest finished jobs
// beyond the history bound. Caller holds s.mu.
func (s *Service) registerLocked(job *Job) {
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	if len(s.order) <= s.cfg.MaxJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.cfg.MaxJobs
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j != nil && j.terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Terminal()
}

// Get returns a snapshot of the job with the given ID.
func (s *Service) Get(id string) (JobView, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, ErrNotFound
	}
	return job.View(), nil
}

// Jobs returns snapshots of all retained jobs in submission order.
func (s *Service) Jobs() []JobView {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View()
	}
	return views
}

// Cancel requests cancellation of a queued or running job. Cancelling a
// terminal job is a no-op (its view is returned unchanged).
func (s *Service) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, ErrNotFound
	}

	job.mu.Lock()
	switch job.state {
	case StateQueued:
		job.cancelWant = true
		job.state = StateCancelled
		job.finished = s.cfg.clock()
		job.errMsg = "cancelled while queued"
		s.cancelled.Inc()
		// A cancellation the journal missed re-runs the job after a
		// crash instead of losing it; counted, not fatal.
		//lint:allow lockorder the queued->cancelled transition and its journal record must be atomic under job.mu, or a concurrent worker could start a job already acknowledged as cancelled
		_ = s.journalAppend(journal.Record{
			Type: journal.TypeCancelled, JobID: job.ID, At: job.finished, Error: job.errMsg,
		})
		if job.probe {
			s.brk.abandonProbe()
		}
	case StateRunning:
		job.cancelWant = true
		if job.cancelFn != nil {
			job.cancelFn()
		}
	}
	job.mu.Unlock()
	return job.View(), nil
}

// worker drains the queue until it is closed, running one job at a time.
func (s *Service) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.execute(job)
	}
}

// execute runs one job with a per-job timeout (and, when the spec set
// deadline_ms, a per-job deadline measured from submission), records its
// outcome, journals the transitions and populates the cache.
func (s *Service) execute(job *Job) {
	job.mu.Lock()
	if job.state != StateQueued { // cancelled while waiting
		job.mu.Unlock()
		return
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
	if !job.deadline.IsZero() {
		// The spec deadline covers queue wait too, so it is anchored at
		// submission; nesting under the timeout ctx keeps cancelFn (the
		// outer cancel) propagating to the whole chain.
		var cancelDl context.CancelFunc
		ctx, cancelDl = context.WithDeadline(ctx, job.deadline)
		defer cancelDl()
	}
	job.state = StateRunning
	job.started = s.cfg.clock()
	job.cancelFn = cancel
	job.mu.Unlock()
	defer cancel()
	_ = s.journalAppend(journal.Record{
		Type: journal.TypeStarted, JobID: job.ID, At: job.started,
	})

	type outcome struct {
		res      *Result
		err      error
		attempts int
	}
	ch := make(chan outcome, 1)
	go func() {
		// Retry loop: a job failing with a retryable fault error
		// (faultsim.Retryable) is re-executed up to MaxRetries times with
		// exponential backoff and deterministic jitter. Each attempt
		// re-draws the stochastic faults from (seed, attempt), so a
		// transient fault can clear while a hard-coded dead node fails
		// every attempt and surfaces as a degraded result.
		attempt := 0
		for {
			res, err := s.cfg.runnerAttempt(ctx, job.Spec, attempt)
			if err == nil || ctx.Err() != nil ||
				!faultsim.Retryable(err) || attempt >= s.cfg.MaxRetries {
				ch <- outcome{res, err, attempt + 1}
				return
			}
			s.retries.Inc()
			timer := time.NewTimer(retryDelay(s.cfg.RetryBackoff, job.Key, attempt))
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				ch <- outcome{nil, ctx.Err(), attempt + 1}
				return
			}
			attempt++
		}
	}()

	var out outcome
	select {
	case out = <-ch:
	case <-ctx.Done():
		// The runner goroutine keeps computing in the background and its
		// result is discarded; model runs are bounded so this is cheap.
		out = outcome{nil, ctx.Err(), 0}
	}

	now := s.cfg.clock()
	job.mu.Lock()
	job.finished = now
	job.cancelFn = nil
	job.attempts = out.attempts
	elapsed := now.Sub(job.started)
	switch {
	case out.err == nil:
		job.state = StateDone
		job.result = out.res
		s.cache.Put(job.Key, out.res)
		s.completed.Inc()
		s.durations.With(job.Spec.Kind).Observe(elapsed.Seconds())
		if out.res.Energy != nil {
			s.energyJoules.Add(job.Spec.Kind, out.res.Energy.Joules)
		}
		s.recent.record(false)
	case errors.Is(out.err, context.DeadlineExceeded) && !job.cancelWant:
		job.state = StateFailed
		if !job.deadline.IsZero() && !now.Before(job.deadline) {
			job.errMsg = fmt.Sprintf("deadline exceeded: deadline_ms=%d elapsed since submission",
				job.Spec.DeadlineMS)
		} else {
			job.errMsg = fmt.Sprintf("job timed out after %v", s.cfg.JobTimeout)
		}
		s.failed.Inc()
		s.recent.record(true)
	case errors.Is(out.err, context.Canceled) || job.cancelWant:
		job.state = StateCancelled
		job.errMsg = "cancelled while running"
		s.cancelled.Inc()
	case faultsim.Retryable(out.err):
		// Fault errors are never cached, so a later resubmission (against
		// a hopefully-recovered cluster spec) re-runs the simulation.
		job.state = StateFailed
		job.degraded = true
		job.errMsg = fmt.Sprintf("degraded: %v (after %d attempt(s))", out.err, out.attempts)
		s.failed.Inc()
		s.degraded.Inc()
		s.recent.record(true)
	default:
		job.state = StateFailed
		job.errMsg = out.err.Error()
		s.failed.Inc()
		s.recent.record(true)
	}
	rec := journal.Record{JobID: job.ID, At: now, Attempt: out.attempts, Error: job.errMsg}
	switch job.state {
	case StateDone:
		rec.Type = journal.TypeDone
		rec.Result = mustJSON(job.result)
	case StateCancelled:
		rec.Type = journal.TypeCancelled
	default:
		rec.Type = journal.TypeFailed
		rec.Degraded = job.degraded
	}
	state := job.state
	isProbe := job.probe
	job.mu.Unlock()
	_ = s.journalAppend(rec)
	if isProbe {
		// The half-open probe's outcome decides the breaker: a fresh
		// success closes it, any failure re-opens it; a cancelled probe
		// judged nothing and just frees the probe slot.
		switch state {
		case StateDone:
			s.brk.onProbe(now, false)
		case StateFailed:
			s.brk.onProbe(now, true)
		default:
			s.brk.abandonProbe()
		}
	}
}

// retryDelay computes the backoff before retry `attempt` (0-based): the
// base doubled per attempt, scaled by a deterministic jitter in [0.75, 1.25)
// drawn from the job's spec hash — reproducible, yet decorrelated across
// jobs so synchronized retries of a hot spec fan out.
func retryDelay(base time.Duration, key string, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base << uint(attempt)
	h := uint64(0)
	if len(key) >= 16 {
		if v, err := strconv.ParseUint(key[:16], 16, 64); err == nil {
			h = v
		}
	}
	jitter := 0.75 + float64(xrand.MixN(h, uint64(attempt))%1024)/2048.0
	return time.Duration(float64(d) * jitter)
}

// Close drains the service: no new submissions are accepted, queued jobs
// are still executed, and Close returns when the pool is idle. If ctx
// expires first, in-flight and remaining queued jobs are cancelled and
// Close waits for the (now fast) drain before returning ctx's error.
//
// Once the pool is idle every job is terminal, so a clean-shutdown
// marker is journaled and the journal closed: the next OpenDurable can
// tell this drain apart from a crash and knows not to re-run anything.
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	if !already {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	if already {
		return nil
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.cancelAll() // flip every per-job context; workers finish promptly
		<-done
		err = ctx.Err()
	}
	_ = s.journalAppend(journal.Record{Type: journal.TypeShutdown, At: s.cfg.clock()})
	if s.jnl != nil {
		if cerr := s.jnl.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if s.store != nil {
		if cerr := s.store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
