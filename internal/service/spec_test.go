package service

import (
	"errors"
	"strings"
	"testing"
)

func TestNormalizeDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   JobSpec
		want JobSpec
	}{
		{
			name: "stream fills machine and language",
			in:   JobSpec{Kind: "stream"},
			want: JobSpec{Kind: "stream", Machine: "cte-arm", Language: "c"},
		},
		{
			name: "aliases fold to canonical slug",
			in:   JobSpec{Kind: "Stream", Machine: "A64FX", Language: "C"},
			want: JobSpec{Kind: "stream", Machine: "cte-arm", Language: "c"},
		},
		{
			name: "net fills size, iters and endpoints",
			in:   JobSpec{Kind: "net", Machine: "mn4"},
			want: JobSpec{Kind: "net", Machine: "mn4", SizeBytes: 256, Iters: 100, DstNode: 1},
		},
		{
			name: "hpcg fills version and nodes",
			in:   JobSpec{Kind: "hpcg", Machine: "marenostrum4"},
			want: JobSpec{Kind: "hpcg", Machine: "mn4", Version: "optimized", Nodes: 1},
		},
		{
			name: "fpu fills iters",
			in:   JobSpec{Kind: "fpu"},
			want: JobSpec{Kind: "fpu", Machine: "cte-arm", Iters: 20000},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.in.Normalize()
			if err != nil {
				t.Fatalf("Normalize(%+v): %v", tc.in, err)
			}
			if got != tc.want {
				t.Errorf("Normalize(%+v) = %+v, want %+v", tc.in, got, tc.want)
			}
		})
	}
}

func TestNormalizeRejects(t *testing.T) {
	cases := []struct {
		name string
		in   JobSpec
		frag string // expected error fragment
	}{
		{"unknown kind", JobSpec{Kind: "dgemm"}, "unknown kind"},
		{"unknown machine", JobSpec{Kind: "stream", Machine: "summit"}, "unknown machine"},
		{"unknown app", JobSpec{Kind: "app", App: "lammps"}, "unknown app"},
		{"unknown language", JobSpec{Kind: "stream", Language: "rust"}, "unknown language"},
		{"unknown hpcg version", JobSpec{Kind: "hpcg", Version: "turbo"}, "unknown hpcg version"},
		{"stray field", JobSpec{Kind: "hpl", SizeBytes: 64}, "not used by kind"},
		{"stray endpoints", JobSpec{Kind: "stream", DstNode: 3}, "not used by kind"},
		{"ranks beyond node", JobSpec{Kind: "stream", Ranks: 500}, "out of"},
		{"nodes beyond machine", JobSpec{Kind: "hpl", Nodes: 1 << 20}, "out of"},
		{"net endpoint beyond machine", JobSpec{Kind: "net", DstNode: 1 << 20}, "out of"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.in.Normalize()
			if err == nil {
				t.Fatalf("Normalize(%+v) succeeded, want error", tc.in)
			}
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Errorf("error %T is not a *ValidationError", err)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Errorf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

// TestCanonicalizeCollapsesAliases is the cache-safety property: any two
// spellings of the same simulation must produce the same content address.
func TestCanonicalizeCollapsesAliases(t *testing.T) {
	a := JobSpec{Kind: "STREAM", Machine: "a64fx"}
	b := JobSpec{Kind: "stream", Machine: "CTE-Arm", Language: "c"}
	_, ka, err := Canonicalize(a)
	if err != nil {
		t.Fatal(err)
	}
	_, kb, err := Canonicalize(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Errorf("aliased specs hash differently: %s vs %s", ka, kb)
	}

	c := JobSpec{Kind: "stream", Machine: "mn4"}
	_, kc, err := Canonicalize(c)
	if err != nil {
		t.Fatal(err)
	}
	if kc == ka {
		t.Error("different machines share a content address")
	}

	d := JobSpec{Kind: "stream", Machine: "a64fx", Seed: 7}
	_, kd, err := Canonicalize(d)
	if err != nil {
		t.Fatal(err)
	}
	if kd == ka {
		t.Error("different seeds share a content address")
	}
}
