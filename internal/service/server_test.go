package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"clustereval/internal/figures"
	"clustereval/internal/toolchain"
)

// newTestServer spins up a service (with the real runner unless overridden)
// behind an httptest server.
func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Service) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(NewServer(svc))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = svc.Close(ctx)
	})
	return ts, svc
}

func postJob(t *testing.T, ts *httptest.Server, spec any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decoding: %v", path, err)
		}
	}
	return resp
}

// pollDone polls GET /v1/jobs/{id} until the job is terminal.
func pollDone(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var v JobView
		resp := getJSON(t, ts, "/v1/jobs/"+id, &v)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job %s: %d", id, resp.StatusCode)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobView{}
}

// TestEndToEndStreamMatchesFigures is the acceptance check: a STREAM job on
// CTE-Arm submitted over HTTP must report exactly the bandwidth the CLI
// figure pipeline computes, and resubmitting the identical spec must be a
// cache hit visible in /v1/metrics.
func TestEndToEndStreamMatchesFigures(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 2})

	resp, body := postJob(t, ts, JobSpec{Kind: "stream", Machine: "cte-arm"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d, want 202: %s", resp.StatusCode, body)
	}
	var queued JobView
	if err := json.Unmarshal(body, &queued); err != nil {
		t.Fatal(err)
	}
	if queued.State != StateQueued {
		t.Fatalf("fresh job state = %s, want queued", queued.State)
	}

	done := pollDone(t, ts, queued.ID)
	if done.State != StateDone {
		t.Fatalf("job failed: %s (%s)", done.State, done.Error)
	}
	if done.Result == nil || done.Result.Stream == nil {
		t.Fatal("done job carries no stream result")
	}

	// The service must agree bit-for-bit with the figure pipeline the CLI
	// uses (same build config, element count and noise seeds).
	want, err := figures.Default().StreamSeries("CTE-Arm", toolchain.C)
	if err != nil {
		t.Fatal(err)
	}
	got := done.Result.Stream
	if got.BestThreads != want.Best.Threads {
		t.Errorf("best threads = %d, CLI pipeline says %d", got.BestThreads, want.Best.Threads)
	}
	if math.Abs(got.BestGBps-want.Best.Bandwidth.GB()) > 1e-9 {
		t.Errorf("best bandwidth = %v GB/s, CLI pipeline says %v", got.BestGBps, want.Best.Bandwidth.GB())
	}
	if len(got.Points) != len(want.Points) {
		t.Errorf("point count = %d, CLI pipeline has %d", len(got.Points), len(want.Points))
	}

	// Identical spec again: answered from cache, 200, cached flag set.
	resp2, body2 := postJob(t, ts, JobSpec{Kind: "stream", Machine: "cte-arm"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cached POST = %d, want 200: %s", resp2.StatusCode, body2)
	}
	var hit JobView
	if err := json.Unmarshal(body2, &hit); err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.State != StateDone || hit.Result == nil {
		t.Errorf("resubmission not served from cache: %+v", hit)
	}
	if hit.Result.Stream.BestGBps != got.BestGBps {
		t.Error("cached result differs from the original run")
	}

	// The hit must show up on /v1/metrics.
	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	for _, want := range []string{
		"clusterd_cache_hits_total 1",
		"clusterd_cache_misses_total 1",
		"clusterd_cache_hit_ratio 0.5",
		"clusterd_jobs_submitted_total 2",
		"clusterd_jobs_completed_total 2",
		`clusterd_job_duration_seconds_count{kind="stream"} 1`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q\n---\n%s", want, metrics)
		}
	}
	// The executed run accumulated modeled energy; the cache hit did not
	// add a second helping (one executed stream job, one energy sample).
	if !strings.Contains(string(metrics), `clusterd_energy_joules_total{kind="stream"} `) {
		t.Errorf("metrics missing per-kind energy counter\n---\n%s", metrics)
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})

	cases := []struct {
		name string
		body string
	}{
		{"malformed json", `{"kind": `},
		{"unknown field", `{"kind":"stream","flux_capacitor":1}`},
		{"unknown kind", `{"kind":"dgemm"}`},
		{"unknown machine", `{"kind":"stream","machine":"summit"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", resp.StatusCode)
			}
			var e map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatal(err)
			}
			if e["error"] == "" {
				t.Error("error body missing the error field")
			}
		})
	}
}

func TestJobLifecycleOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, runner: fastRunner})

	resp, body := postJob(t, ts, JobSpec{Kind: "hpcg", Machine: "mn4", Nodes: 16})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Spec.Version != "optimized" || v.Spec.Machine != "mn4" {
		t.Errorf("returned spec not normalised: %+v", v.Spec)
	}
	done := pollDone(t, ts, v.ID)
	if done.State != StateDone {
		t.Fatalf("state %s (%s)", done.State, done.Error)
	}

	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	getJSON(t, ts, "/v1/jobs", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != v.ID {
		t.Errorf("job listing = %+v", list.Jobs)
	}

	if resp := getJSON(t, ts, "/v1/jobs/junk", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown job = %d, want 404", resp.StatusCode)
	}
}

func TestCancelOverHTTP(t *testing.T) {
	release := make(chan struct{})
	ts, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 4, CacheSize: -1,
		runner: func(ctx context.Context, spec JobSpec) (*Result, error) {
			<-release
			return fastRunner(ctx, spec)
		}})
	defer close(release)

	_, body1 := postJob(t, ts, JobSpec{Kind: "fpu", Seed: 1})
	_ = body1
	_, body2 := postJob(t, ts, JobSpec{Kind: "fpu", Seed: 2})
	var queued JobView
	if err := json.Unmarshal(body2, &queued); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.State != StateCancelled {
		t.Errorf("cancelled job state = %s", v.State)
	}
}

func TestMachinesAndHealth(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, runner: fastRunner})

	var machines struct {
		Machines []struct {
			Name         string `json:"name"`
			Preset       string `json:"preset"`
			CoresPerNode int    `json:"cores_per_node"`
			Network      string `json:"network"`
		} `json:"machines"`
		Kinds []string `json:"kinds"`
	}
	if resp := getJSON(t, ts, "/v1/machines", &machines); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/machines = %d", resp.StatusCode)
	}
	if len(machines.Machines) != 4 {
		t.Fatalf("machine count = %d, want 4", len(machines.Machines))
	}
	byPreset := map[string]int{}
	for _, m := range machines.Machines {
		byPreset[m.Preset] = m.CoresPerNode
	}
	if byPreset["cte-arm"] != 48 {
		t.Errorf("cte-arm cores/node = %d, want 48", byPreset["cte-arm"])
	}
	if byPreset["mn4"] != 48 {
		t.Errorf("mn4 cores/node = %d, want 48", byPreset["mn4"])
	}
	if byPreset["thunderx2"] != 64 {
		t.Errorf("thunderx2 cores/node = %d, want 64", byPreset["thunderx2"])
	}
	if byPreset["fugaku"] != 48 {
		t.Errorf("fugaku cores/node = %d, want 48", byPreset["fugaku"])
	}
	if fmt.Sprint(machines.Kinds) != fmt.Sprint(Kinds()) {
		t.Errorf("kinds = %v, want %v", machines.Kinds, Kinds())
	}

	var health struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if resp := getJSON(t, ts, "/v1/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/healthz = %d", resp.StatusCode)
	}
	if health.Status != "ok" || health.Workers != 1 {
		t.Errorf("health = %+v", health)
	}
}

// TestKindsEndpoint pins GET /v1/kinds onto the experiment registry:
// all seven kinds, in registry order, each carrying its parameter
// schema, plus the shared fields every kind accepts.
func TestKindsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, runner: fastRunner})

	var listing struct {
		Kinds []struct {
			Kind   string `json:"kind"`
			Title  string `json:"title"`
			Figure string `json:"figure"`
			Fields []struct {
				Name  string `json:"name"`
				Type  string `json:"type"`
				Usage string `json:"usage"`
			} `json:"fields"`
		} `json:"kinds"`
		SharedFields []struct {
			Name string `json:"name"`
		} `json:"shared_fields"`
	}
	if resp := getJSON(t, ts, "/v1/kinds", &listing); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/kinds = %d", resp.StatusCode)
	}
	want := Kinds()
	if len(listing.Kinds) != len(want) {
		t.Fatalf("kind count = %d, want %d", len(listing.Kinds), len(want))
	}
	fieldsByKind := map[string][]string{}
	for i, k := range listing.Kinds {
		if k.Kind != want[i] {
			t.Errorf("kinds[%d] = %q, want %q (registry order)", i, k.Kind, want[i])
		}
		if k.Title == "" || k.Figure == "" {
			t.Errorf("kind %q missing title or figure", k.Kind)
		}
		for _, f := range k.Fields {
			if f.Type == "" || f.Usage == "" {
				t.Errorf("kind %q field %q missing type or usage", k.Kind, f.Name)
			}
			fieldsByKind[k.Kind] = append(fieldsByKind[k.Kind], f.Name)
		}
	}
	if got := fmt.Sprint(fieldsByKind["net"]); got != "[size_bytes iters src_node dst_node faults]" {
		t.Errorf("net schema fields = %v", got)
	}
	shared := map[string]bool{}
	for _, f := range listing.SharedFields {
		shared[f.Name] = true
	}
	for _, name := range []string{"machine", "seed", "deadline_ms"} {
		if !shared[name] {
			t.Errorf("shared_fields missing %q", name)
		}
	}
}

// TestAllKindsRunEndToEnd sweeps one real job of each kind through the
// HTTP API, proving every evaluation layer is reachable from the daemon.
func TestAllKindsRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every simulation layer")
	}
	ts, _ := newTestServer(t, Config{Workers: 4, JobTimeout: 5 * time.Minute})

	specs := []JobSpec{
		{Kind: "stream", Machine: "mn4", Language: "fortran", Ranks: 8},
		{Kind: "hybrid-stream", Machine: "cte-arm"},
		{Kind: "fpu", Machine: "cte-arm", Iters: 2000},
		{Kind: "net", Machine: "cte-arm", SizeBytes: 65536, SrcNode: 0, DstNode: 100},
		{Kind: "hpl", Machine: "cte-arm", Nodes: 16},
		{Kind: "hpcg", Machine: "mn4", Nodes: 8, Version: "vanilla"},
		{Kind: "app", App: "nemo", Machine: "cte-arm"},
	}
	ids := make([]string, len(specs))
	for i, spec := range specs {
		resp, body := postJob(t, ts, spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST %+v = %d: %s", spec, resp.StatusCode, body)
		}
		var v JobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		ids[i] = v.ID
	}
	for i, id := range ids {
		v := pollDone(t, ts, id)
		if v.State != StateDone {
			t.Errorf("%s job: %s (%s)", specs[i].Kind, v.State, v.Error)
			continue
		}
		if v.Result == nil || v.Result.Summary == "" {
			t.Errorf("%s job has no summary", specs[i].Kind)
		}
	}
}
