package service

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker automaton.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerHalfOpen
	breakerOpen
)

// String renders the state for /v1/healthz.
func (s breakerState) String() string {
	switch s {
	case breakerHalfOpen:
		return "half-open"
	case breakerOpen:
		return "open"
	default:
		return "closed"
	}
}

// breaker gates fault-carrying specs on the service's recent-outcome
// window: when the recent failure rate crosses the threshold the breaker
// opens and such specs are rejected at admission — they are the
// submissions most likely to burn a full retry budget against a cluster
// that the window already shows to be failing. After the cooldown one
// probe job is admitted (half-open); its outcome closes or reopens the
// breaker. Specs without faults are never gated: they run against the
// unperturbed simulated cluster and cannot trip node-failure retries.
type breaker struct {
	threshold  float64
	minSamples int
	cooldown   time.Duration

	mu       sync.Mutex
	state    breakerState
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

func newBreaker(threshold float64, minSamples int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, minSamples: minSamples, cooldown: cooldown}
}

// allow decides admission for one fault-carrying spec given the current
// failure-rate window. probe marks the admitted job as the half-open
// probe; retryAfter hints when a rejected client should try again.
func (b *breaker) allow(now time.Time, rate float64, samples int) (admit, probe bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if wait := b.cooldown - now.Sub(b.openedAt); wait > 0 {
			return false, false, wait
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, true, 0
	case breakerHalfOpen:
		if b.probing {
			return false, false, b.cooldown
		}
		b.probing = true
		return true, true, 0
	default: // closed: trip lazily off the shared outcome window
		if samples >= b.minSamples && rate >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			return false, false, b.cooldown
		}
		return true, false, 0
	}
}

// onProbe reports the half-open probe's outcome: success closes the
// breaker, failure reopens it and restarts the cooldown.
func (b *breaker) onProbe(now time.Time, failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerHalfOpen {
		return
	}
	b.probing = false
	if failed {
		b.state = breakerOpen
		b.openedAt = now
	} else {
		b.state = breakerClosed
	}
}

// abandonProbe releases the probe slot without judging the cluster — a
// cancelled probe says nothing about fault health, so the breaker stays
// half-open and the next fault-carrying spec becomes the probe.
func (b *breaker) abandonProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
}

// current returns the state for the clusterd_breaker_state gauge.
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
