package service

import "testing"

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	ra, rb, rc := &Result{Summary: "a"}, &Result{Summary: "b"}, &Result{Summary: "c"}

	c.Put("a", ra)
	c.Put("b", rb)
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing before eviction")
	}
	c.Put("c", rc)

	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction despite being least recently used")
	}
	if got, ok := c.Get("a"); !ok || got != ra {
		t.Error("a evicted despite recent use")
	}
	if got, ok := c.Get("c"); !ok || got != rc {
		t.Error("c missing right after insert")
	}
	if c.Len() != 2 {
		t.Errorf("Len() = %d, want 2", c.Len())
	}
}

func TestCacheUpdateInPlace(t *testing.T) {
	c := newResultCache(2)
	c.Put("k", &Result{Summary: "old"})
	c.Put("k", &Result{Summary: "new"})
	if c.Len() != 1 {
		t.Fatalf("Len() = %d after double Put, want 1", c.Len())
	}
	if got, _ := c.Get("k"); got.Summary != "new" {
		t.Errorf("Get returned %q, want the updated result", got.Summary)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(0)
	c.Put("k", &Result{})
	if _, ok := c.Get("k"); ok {
		t.Error("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Errorf("Len() = %d on disabled cache", c.Len())
	}
}
