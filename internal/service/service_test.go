package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fastRunner replaces the real simulation with an instant result so the
// queueing machinery can be exercised in microseconds.
func fastRunner(_ context.Context, spec JobSpec) (*Result, error) {
	return &Result{Kind: spec.Kind, Machine: spec.Machine, Summary: "fake"}, nil
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, s *Service, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		v, err := s.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobView{}
}

func closeNow(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestSubmitRunAndCacheHit(t *testing.T) {
	calls := 0
	var mu sync.Mutex
	s := New(Config{Workers: 2, runner: func(ctx context.Context, spec JobSpec) (*Result, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return fastRunner(ctx, spec)
	}})
	defer closeNow(t, s)

	spec := JobSpec{Kind: "hpl", Nodes: 4}
	v1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Cached {
		t.Error("first submission reported cached")
	}
	done := waitTerminal(t, s, v1.ID)
	if done.State != StateDone || done.Result == nil {
		t.Fatalf("first job state %s, result %v", done.State, done.Result)
	}

	v2, err := s.Submit(JobSpec{Kind: "HPL", Machine: "a64fx", Nodes: 4}) // alias spelling
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Cached || v2.State != StateDone || v2.Result == nil {
		t.Errorf("aliased resubmission missed the cache: %+v", v2)
	}
	if v2.SpecHash != v1.SpecHash {
		t.Errorf("spec hashes differ: %s vs %s", v1.SpecHash, v2.SpecHash)
	}

	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Errorf("runner called %d times, want 1", calls)
	}
	if got := s.cacheHits.Value(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := New(Config{Workers: 1, runner: fastRunner})
	defer closeNow(t, s)

	_, err := s.Submit(JobSpec{Kind: "nope"})
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Errorf("Submit(bad kind) error = %v, want *ValidationError", err)
	}
}

func TestQueueFull(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 1, CacheSize: -1,
		runner: func(ctx context.Context, spec JobSpec) (*Result, error) {
			<-release
			return fastRunner(ctx, spec)
		}})
	defer closeNow(t, s)
	defer close(release)

	// Worker grabs the first job and blocks; the second fills the queue;
	// the third must be rejected. Distinct seeds keep the cache out of it.
	if _, err := s.Submit(JobSpec{Kind: "fpu", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick up job 1 so job 2 reliably sits in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueDepth() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(JobSpec{Kind: "fpu", Seed: 2}); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(JobSpec{Kind: "fpu", Seed: 3})
	if !errors.Is(err, ErrQueueFull) {
		t.Errorf("third submit error = %v, want ErrQueueFull", err)
	}
	if got := s.queueRejected.Value(); got != 1 {
		t.Errorf("queue rejections = %d, want 1", got)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 4, CacheSize: -1,
		runner: func(ctx context.Context, spec JobSpec) (*Result, error) {
			<-release
			return fastRunner(ctx, spec)
		}})
	defer closeNow(t, s)

	if _, err := s.Submit(JobSpec{Kind: "fpu", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(JobSpec{Kind: "fpu", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateCancelled {
		t.Errorf("cancelled queued job state = %s", v.State)
	}
	close(release)
	// The worker must skip the cancelled job, not run it.
	if final := waitTerminal(t, s, queued.ID); final.State != StateCancelled || final.Result != nil {
		t.Errorf("cancelled job reached %s with result %v", final.State, final.Result)
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{})
	s := New(Config{Workers: 1, CacheSize: -1,
		runner: func(ctx context.Context, spec JobSpec) (*Result, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		}})
	defer closeNow(t, s)

	v, err := s.Submit(JobSpec{Kind: "fpu"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := s.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	if final := waitTerminal(t, s, v.ID); final.State != StateCancelled {
		t.Errorf("state = %s, want cancelled", final.State)
	}
	if got := s.cancelled.Value(); got != 1 {
		t.Errorf("cancelled counter = %d, want 1", got)
	}
}

func TestJobTimeout(t *testing.T) {
	s := New(Config{Workers: 1, CacheSize: -1, JobTimeout: 20 * time.Millisecond,
		runner: func(ctx context.Context, spec JobSpec) (*Result, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		}})
	defer closeNow(t, s)

	v, err := s.Submit(JobSpec{Kind: "fpu"})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, v.ID)
	if final.State != StateFailed {
		t.Errorf("state = %s, want failed", final.State)
	}
	if final.Error == "" {
		t.Error("timed-out job has no error message")
	}
}

func TestRunnerError(t *testing.T) {
	s := New(Config{Workers: 1, CacheSize: -1,
		runner: func(context.Context, JobSpec) (*Result, error) {
			return nil, errors.New("model exploded")
		}})
	defer closeNow(t, s)

	v, err := s.Submit(JobSpec{Kind: "fpu"})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, v.ID)
	if final.State != StateFailed || final.Error != "model exploded" {
		t.Errorf("state %s, error %q", final.State, final.Error)
	}
	if got := s.failed.Value(); got != 1 {
		t.Errorf("failed counter = %d, want 1", got)
	}
}

// TestConcurrentSubmitters is the race-detector workout: many goroutines
// submitting, polling and listing at once, against a mix of fresh and
// cache-hitting specs.
func TestConcurrentSubmitters(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 1024, runner: fastRunner})

	const submitters = 8
	const perSubmitter = 25
	var wg sync.WaitGroup
	ids := make(chan string, submitters*perSubmitter)
	wg.Add(submitters)
	for g := 0; g < submitters; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				// Half the specs repeat across goroutines (cache hits), half
				// are unique (fresh runs).
				seed := uint64(i % 5)
				if i%2 == 1 {
					seed = uint64(g*1000 + i)
				}
				v, err := s.Submit(JobSpec{Kind: "hpcg", Seed: seed})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				ids <- v.ID
				if i%7 == 0 {
					s.Jobs()
				}
			}
		}(g)
	}
	wg.Wait()
	close(ids)

	for id := range ids {
		if v := waitTerminal(t, s, id); v.State != StateDone {
			t.Errorf("job %s: state %s (%s)", id, v.State, v.Error)
		}
	}
	total := s.completed.Value()
	if want := uint64(submitters * perSubmitter); total != want {
		t.Errorf("completed = %d, want %d", total, want)
	}
	// With every job drained, a repeated spec is now a guaranteed hit.
	v, err := s.Submit(JobSpec{Kind: "hpcg", Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Cached {
		t.Error("post-drain resubmission missed the cache")
	}
	closeNow(t, s)

	if _, err := s.Submit(JobSpec{Kind: "fpu"}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close error = %v, want ErrClosed", err)
	}
}

func TestCloseDrainsQueuedJobs(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 16, CacheSize: -1,
		runner: func(ctx context.Context, spec JobSpec) (*Result, error) {
			time.Sleep(2 * time.Millisecond)
			return fastRunner(ctx, spec)
		}})

	var ids []string
	for i := 0; i < 8; i++ {
		v, err := s.Submit(JobSpec{Kind: "fpu", Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	closeNow(t, s)
	for _, id := range ids {
		v, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != StateDone {
			t.Errorf("job %s not drained: %s", id, v.State)
		}
	}
	// Close is idempotent.
	if err := s.Close(context.Background()); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestCloseDeadlineCancelsStragglers(t *testing.T) {
	s := New(Config{Workers: 1, CacheSize: -1,
		runner: func(ctx context.Context, spec JobSpec) (*Result, error) {
			<-ctx.Done() // runs until cancelled
			return nil, ctx.Err()
		}})
	v, err := s.Submit(JobSpec{Kind: "fpu"})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Close error = %v, want DeadlineExceeded", err)
	}
	final, err := s.Get(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !final.State.Terminal() {
		t.Errorf("straggler left in state %s after forced drain", final.State)
	}
}

func TestHistoryEviction(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 64, CacheSize: -1, MaxJobs: 5, runner: fastRunner})
	defer closeNow(t, s)

	var last string
	for i := 0; i < 12; i++ {
		v, err := s.Submit(JobSpec{Kind: "fpu", Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		last = v.ID
		waitTerminal(t, s, v.ID)
	}
	jobs := s.Jobs()
	if len(jobs) > 5 {
		t.Errorf("history holds %d jobs, want <= 5", len(jobs))
	}
	if _, err := s.Get(last); err != nil {
		t.Errorf("most recent job evicted: %v", err)
	}
	if _, err := s.Get("j000001"); !errors.Is(err, ErrNotFound) {
		t.Errorf("oldest job still present, err = %v", err)
	}
}

func TestGetUnknown(t *testing.T) {
	s := New(Config{Workers: 1, runner: fastRunner})
	defer closeNow(t, s)
	if _, err := s.Get("jffffff"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(unknown) = %v, want ErrNotFound", err)
	}
	if _, err := s.Cancel("jffffff"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Cancel(unknown) = %v, want ErrNotFound", err)
	}
}

// sanity check that IDs are unique and ordered under concurrency.
func TestIDsAreUnique(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 256, CacheSize: -1, runner: fastRunner})
	defer closeNow(t, s)

	var mu sync.Mutex
	seen := map[string]bool{}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				v, err := s.Submit(JobSpec{Kind: "fpu", Seed: uint64(g*100 + i + 1)})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				mu.Lock()
				if seen[v.ID] {
					t.Errorf("duplicate job ID %s", v.ID)
				}
				seen[v.ID] = true
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if len(seen) != 80 {
		t.Errorf("saw %d distinct IDs, want 80", len(seen))
	}
}
